// Shared helpers for the paper-figure benchmark binaries.
//
// Every bench_fig*.cc regenerates one table or figure from the paper's
// evaluation (§6). Binaries print self-describing rows to stdout; see
// EXPERIMENTS.md for the mapping to the paper's plots and the expected
// shapes. Set WEAVER_BENCH_SCALE=quick|full (default quick) to control
// experiment sizes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "client/weaver_client.h"
#include "common/histogram.h"
#include "core/weaver.h"
#include "obs/metrics.h"
#include "workload/blockchain.h"
#include "workload/social_graph.h"

namespace weaver {
namespace bench {

/// True when WEAVER_BENCH_SCALE=full (longer, bigger runs).
bool FullScale();

/// Prints the standard bench header (binary name + figure id + scale).
void PrintHeader(const std::string& name, const std::string& figure);

/// Loads a generated graph into a (not yet started) deployment via bulk
/// load; edges get "rel"="follows".
void LoadGraph(Weaver* db, const workload::GeneratedGraph& graph);

/// Loads a synthetic blockchain into a (not yet started) deployment using
/// the CoinGraph schema (block --in_block--> tx --spend--> tx).
void LoadBlockchain(Weaver* db, const workload::Blockchain& chain);

/// Runs `op` from `num_clients` threads for `duration_ms`, returning total
/// completed operations and filling `latencies` (merged across threads)
/// when non-null. `op` receives the client index and returns true when
/// the operation counts toward throughput.
std::uint64_t RunClients(std::size_t num_clients, std::uint64_t duration_ms,
                         const std::function<bool(std::size_t)>& op,
                         Histogram* latencies = nullptr);

/// Formats ops/sec with thousands separators for table rows.
std::string FormatRate(double ops_per_sec);

/// Prints the deployment's backpressure signals: per-gatekeeper adaptive
/// NOP backoff (multiplier + skipped rounds) and per-shard inbox depth /
/// queued transactions. All values come from one metrics-registry
/// snapshot (docs/observability.md) -- the bench reads the same
/// instruments an operator would scrape, not private component state.
void PrintBackpressure(Weaver* db);

/// Prints one summary line of the decentralized-execution accounting
/// (docs/node_programs.md) -- programs, waves, hops, shard hop batches,
/// coordinator accounting messages, vertices (per-program averages in
/// parentheses) plus the ingress prune/coalesce counters -- read from
/// the deployment's metrics registry (coord.* and shard<N>.* names).
/// Counts cover every program the deployment has run, so call it on a
/// deployment whose only programs are the ones under measurement.
void PrintProgramAccounting(Weaver* db, const char* label);

// --- Open-loop session mode -------------------------------------------------
//
// Benches drive pipelined load through WeaverClient sessions in addition
// to the classic one-blocked-thread-per-client mode: each of N driver
// threads owns one session and keeps K async requests in flight.
// --sessions=N --inflight=K override the 8x8 default.

struct OpenLoopOptions {
  std::size_t sessions = 8;
  std::size_t inflight = 8;
};

/// Parses --sessions= / --inflight= (defaults 8x8 when absent).
OpenLoopOptions ParseOpenLoop(int argc, char** argv);

/// Parses --clients=N (closed-loop client thread count); `fallback`
/// when absent.
std::size_t ParseClients(int argc, char** argv, std::size_t fallback);

/// Completion handle for one submitted async operation: blocks until the
/// operation finishes, returns true when it counts toward throughput.
using OpenLoopWait = std::function<bool()>;

/// Runs `submit` from `num_sessions` driver threads for `duration_ms`,
/// each keeping `inflight` requests outstanding on its own session.
/// `submit` must return without blocking (CommitAsync/RunProgramAsync).
/// Returns completed operations; latencies are submit-to-completion.
std::uint64_t RunOpenLoopSessions(
    WeaverClient* client, std::size_t num_sessions, std::size_t inflight,
    std::uint64_t duration_ms,
    const std::function<OpenLoopWait(std::size_t, Session&)>& submit,
    Histogram* latencies = nullptr);

// --- Durability knob --------------------------------------------------------
//
// Benches accept --durability={off,buffered,fsync} (or the
// WEAVER_BENCH_DURABILITY env var) so persistence overhead is tracked
// across PRs:
//   off      -- in-memory backing store (historical behavior; default)
//   buffered -- WAL enabled, records reach the OS page cache per commit
//   fsync    -- WAL enabled, group-commit fdatasync covers every commit

enum class Durability { kOff, kBuffered, kFsync };

const char* DurabilityName(Durability d);

/// Parses argv/env as described above; unknown values fall back to kOff.
Durability ParseDurability(int argc, char** argv);

/// Sets the process-wide mode applied by ApplyDurability (benches call
/// this once from main with ParseDurability's result).
void SetDurability(Durability d);
Durability CurrentDurability();

/// Points options->storage at a fresh temp data dir per the current mode
/// (no-op for kOff). Returns the data dir ("" when off). Dirs live under
/// the system temp root and are cleaned up by RemoveBenchDataDirs().
std::string ApplyDurability(WeaverOptions* options);

/// Removes every data dir this process created via ApplyDurability.
void RemoveBenchDataDirs();

// --- Machine-readable results (--json) --------------------------------------
//
// --json=<dir> (or `--json <dir>`, or the WEAVER_BENCH_JSON env var)
// makes every fig bench write its headline numbers next to the human
// tables as <dir>/BENCH_<name>.json: throughput, latency percentiles
// (p50/p95/p99), and the deployment's metrics snapshot. Without the
// flag the benches stay print-only and BenchJson is a no-op.

/// Parses the flag/env described above; remembered process-wide.
void ParseJsonOutput(int argc, char** argv);

/// True when a --json destination is set.
bool JsonEnabled();

/// Collects one bench's results; the destructor writes BENCH_<name>.json
/// (creating the directory if needed) when --json is set. Fields land in
/// insertion order; keys must be unique.
class BenchJson {
 public:
  explicit BenchJson(std::string name);
  ~BenchJson();  // writes the file (no-op without --json)
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  void Number(const std::string& key, double value);
  void Integer(const std::string& key, std::uint64_t value);
  void Text(const std::string& key, const std::string& value);
  /// Expands a nanosecond latency histogram into
  /// `key: {count, mean_ms, p50_ms, p95_ms, p99_ms, max_ms}`.
  void Latency(const std::string& key, const Histogram& h);
  /// Embeds a deployment metrics snapshot under "metrics"
  /// (obs::MetricsSnapshot::ToJson; the last call wins).
  void Metrics(const obs::MetricsSnapshot& snapshot);

 private:
  struct Field {
    std::string key;
    std::string literal;  // pre-rendered JSON value
  };
  std::string name_;
  std::vector<Field> fields_;
  std::string metrics_json_;  // empty = no "metrics" key
};

}  // namespace bench
}  // namespace weaver
