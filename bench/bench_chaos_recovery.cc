// Chaos recovery bench (docs/fault_tolerance.md#chaos): a multi-process
// deployment under sustained transactional + traversal load while every
// shard-server process is hard-killed once, at a deterministic point in
// its frame stream (net/fault_injector.h), and -- with --chaos -- the
// timeline-oracle service (weaver-oracled) is SIGKILLed once mid-load.
// Measures what the paper's fault-tolerance story promises an operator:
//
//   * availability -- commits and programs keep completing through the
//     outages (bounded retries on Unavailable, bounded waits via
//     Pending<T>::WaitFor -> DeadlineExceeded);
//   * durability   -- every ACKNOWLEDGED write is read back after the
//     cluster heals (kv-first commit + partition replay), and every
//     timeline-order decision acknowledged before the oracle died reads
//     back identically from the respawn's replayed changelog (no order
//     inversions);
//   * recovery     -- supervisor.* metrics show one recovery per shard
//     plus one oracle recovery, none failed, and the recovery latency
//     distribution.
//
// Run with --chaos to inject the kills (CI's recovery smoke); without it
// the binary is the same workload on an undisturbed multi-process
// deployment (the baseline for the availability numbers). Not a paper
// figure: Weaver's evaluation (§6) measures steady state; this bench
// guards the robustness layer the deployment needs around it.
//
// With --exec the deployment bootstraps over TCP instead of the fork
// protocol (docs/transport.md#cluster-bootstrap): every server process
// -- shards, the oracle service, AND out-of-parent gatekeepers -- is an
// exec'd weaver-serverd that joined through the cluster listener's
// handshake, and the supervisor respawns crashed processes by exec
// (release slot -> re-open at the bumped epoch -> spawn -> accept join)
// instead of consuming a warm-spare pool. --exec --chaos additionally
// SIGKILLs one gatekeeper process mid-load: the supervisor must fence
// it, advance the epoch, exec a replacement, and re-route -- with zero
// acknowledged writes lost and zero order inversions, same as ever.
#include <signal.h>

#include <stdlib.h>
#include <sys/wait.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "client/weaver_client.h"
#include "cluster/bootstrap.h"
#include "coord/serverd.h"
#include "core/weaver.h"
#include "harness.h"
#include "net/fault_injector.h"
#include "oracle/oracle_client.h"
#include "programs/standard_programs.h"
#include "vclock/vclock.h"

namespace weaver {
namespace bench {
namespace {

constexpr std::size_t kShards = 2;
constexpr std::size_t kGatekeepers = 2;
constexpr int kRingVertices = 64;

/// One fault per shard, staggered so the recoveries do not overlap: the
/// trigger is a cumulative frame count on that shard's own link, which
/// lands at the same point in the message stream on every run.
std::uint64_t TriggerFrames(ShardId shard) {
  return 1'000 + static_cast<std::uint64_t>(shard) * 4'000;
}

struct ChaosStats {
  std::atomic<std::uint64_t> commits_acked{0};
  std::atomic<std::uint64_t> programs_ok{0};
  std::atomic<std::uint64_t> unavailable_retries{0};
  std::atomic<std::uint64_t> deadline_waits{0};
};

/// Commits `tx`, riding out recoveries: DeadlineExceeded from WaitFor
/// means "still in flight" (keep waiting -- the request is not lost);
/// Unavailable means "failed fast against a down shard" (rebuild and
/// resubmit). Returns false only when the budget is exhausted.
bool CommitAcknowledged(Session* session, NodeId ring_anchor,
                        const std::string& tag, ChaosStats* stats,
                        NodeId* created) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    Transaction tx = session->BeginTx();
    const NodeId n = tx.CreateNode();
    tx.AssignNodeProperty(n, "tag", tag);
    tx.CreateEdge(ring_anchor, n);
    auto pending = session->CommitAsync(std::move(tx));
    while (pending.WaitFor(std::chrono::milliseconds(250)).IsDeadlineExceeded()) {
      stats->deadline_waits.fetch_add(1, std::memory_order_relaxed);
    }
    const CommitResult& result = pending.Wait();
    if (result.ok()) {
      *created = n;
      stats->commits_acked.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (!result.status.IsUnavailable() && !result.status.IsAborted()) {
      std::fprintf(stderr, "chaos: commit failed hard: %s\n",
                   result.status.ToString().c_str());
      return false;
    }
    stats->unavailable_retries.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

Result<ProgramResult> RunProgramAcknowledged(Session* session,
                                             std::string_view name,
                                             NodeId start, std::string params,
                                             ChaosStats* stats) {
  Result<ProgramResult> r = Status::Internal("never ran");
  for (int attempt = 0; attempt < 200; ++attempt) {
    auto pending = session->RunProgramAsync(name, start, params);
    while (pending.WaitFor(std::chrono::milliseconds(250)).IsDeadlineExceeded()) {
      stats->deadline_waits.fetch_add(1, std::memory_order_relaxed);
    }
    r = pending.Take();
    if (r.ok()) {
      stats->programs_ok.fetch_add(1, std::memory_order_relaxed);
      return r;
    }
    if (!r.status().IsUnavailable()) return r;
    stats->unavailable_retries.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return r;
}

bool AwaitRecoveries(Weaver* db, std::uint64_t want_shards,
                     std::uint64_t want_oracle, std::uint64_t want_gks,
                     std::chrono::seconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    auto cluster = db->CollectMetrics(/*timeout_micros=*/500'000);
    if (cluster.ok() &&
        cluster->local.CounterValue("supervisor.recoveries") >= want_shards &&
        cluster->local.CounterValue("supervisor.oracle_recoveries") >=
            want_oracle &&
        cluster->local.CounterValue("supervisor.gk_recoveries") >= want_gks &&
        cluster->local.GaugeValue("supervisor.shards_down") == 0 &&
        cluster->local.GaugeValue("supervisor.oracle_down") == 0 &&
        cluster->local.GaugeValue("supervisor.gks_down") == 0) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

// --- TCP-bootstrap (--exec) mode --------------------------------------------

/// Everything the exec'd deployment shares between initial bootstrap and
/// the supervisor's respawn hook: the listener, the assignment image,
/// and the pid ledger for final reaping (processes the supervisor fenced
/// are reaped by it; everything else is reaped at teardown).
struct ExecCluster {
  std::unique_ptr<cluster::ClusterListener> listener;
  RoleAssignMessage assign;
  std::string token = "chaos-secret";
  std::vector<int> shard_fds;
  std::vector<pid_t> shard_pids;
  std::vector<int> gk_fds;
  std::vector<pid_t> gk_pids;
  int oracle_fd = -1;
  pid_t oracle_pid = -1;
  std::mutex mu;
  std::vector<pid_t> all_pids;
};

bool BootExecCluster(const serverd::ShardServerOptions& so, ExecCluster* ec) {
  cluster::ClusterListener::Options lo;
  lo.token = ec->token;
  auto listener = cluster::ClusterListener::Open(lo);
  if (!listener.ok()) {
    std::fprintf(stderr, "exec: listener open failed: %s\n",
                 listener.status().ToString().c_str());
    return false;
  }
  ec->listener = std::move(*listener);
  ec->assign = serverd::AssignmentFromOptions(so);
  cluster::ClusterListener& l = *ec->listener;
  for (std::size_t s = 0; s < kShards; ++s) {
    if (!l.OpenSlot(NodeRole::kShard, s, ec->assign).ok()) return false;
  }
  for (std::size_t g = 0; g < kGatekeepers; ++g) {
    if (!l.OpenSlot(NodeRole::kGatekeeper, g, ec->assign).ok()) return false;
  }
  if (!l.OpenSlot(NodeRole::kOracle, 0, ec->assign).ok()) return false;

  auto spawn = [&](NodeRole role, std::uint32_t id) {
    auto pid =
        cluster::SpawnServerd(WEAVER_SERVERD_BIN, l.port(), ec->token, role, id);
    if (!pid.ok()) {
      std::fprintf(stderr, "exec: spawn failed: %s\n",
                   pid.status().ToString().c_str());
      return false;
    }
    ec->all_pids.push_back(*pid);
    return true;
  };
  for (std::size_t s = 0; s < kShards; ++s) {
    if (!spawn(NodeRole::kShard, s)) return false;
  }
  for (std::size_t g = 0; g < kGatekeepers; ++g) {
    if (!spawn(NodeRole::kGatekeeper, g)) return false;
  }
  if (!spawn(NodeRole::kOracle, 0)) return false;

  ec->shard_fds.assign(kShards, -1);
  ec->shard_pids.assign(kShards, -1);
  ec->gk_fds.assign(kGatekeepers, -1);
  ec->gk_pids.assign(kGatekeepers, -1);
  for (std::size_t i = 0; i < kShards + kGatekeepers + 1; ++i) {
    auto joined = l.AcceptJoin();
    if (!joined.ok()) {
      std::fprintf(stderr, "exec: join failed: %s\n",
                   joined.status().ToString().c_str());
      return false;
    }
    switch (joined->role) {
      case NodeRole::kShard:
        ec->shard_fds[joined->shard_id] = joined->fd;
        ec->shard_pids[joined->shard_id] = static_cast<pid_t>(joined->pid);
        break;
      case NodeRole::kGatekeeper:
        ec->gk_fds[joined->shard_id] = joined->fd;
        ec->gk_pids[joined->shard_id] = static_cast<pid_t>(joined->pid);
        break;
      case NodeRole::kOracle:
        ec->oracle_fd = joined->fd;
        ec->oracle_pid = static_cast<pid_t>(joined->pid);
        break;
      case NodeRole::kSpare:
        std::fprintf(stderr, "exec: unexpected spare join\n");
        return false;
    }
  }
  return true;
}

/// The supervisor's exec respawn hook: release the dead slot, re-open it
/// at the bumped epoch, spawn a fresh serverd, and accept its join.
Result<serverd::ShardProcess> ExecRespawn(const std::shared_ptr<ExecCluster>& ec,
                                          NodeRole role, std::uint32_t id,
                                          bool rehydrate,
                                          std::uint32_t epoch) {
  cluster::ClusterListener& l = *ec->listener;
  l.ReleaseRole(role, id);
  l.set_cluster_epoch(epoch);
  RoleAssignMessage assign = ec->assign;
  assign.rehydrate = rehydrate;
  Status st = l.OpenSlot(role, id, std::move(assign));
  if (!st.ok()) return st;
  auto pid = cluster::SpawnServerd(WEAVER_SERVERD_BIN, l.port(), ec->token,
                                   role, id);
  if (!pid.ok()) return pid.status();
  {
    std::lock_guard<std::mutex> lk(ec->mu);
    ec->all_pids.push_back(*pid);
  }
  auto joined = l.AcceptJoin();
  if (!joined.ok()) return joined.status();
  serverd::ShardProcess process;
  process.pid = *pid;
  process.parent_fd = joined->fd;
  return process;
}

/// Synthetic timestamps for the timeline-order ledger: pairwise
/// concurrent (distinct gatekeepers, incomparable counters) in an epoch
/// far above anything the deployment's GC watermark can reach, so the
/// service never collects them mid-run.
constexpr std::uint32_t kLedgerEpoch = 1'000'000;

RefinableTimestamp LedgerTs(std::uint64_t counter, GatekeeperId gk) {
  std::vector<std::uint64_t> counters(kGatekeepers, 0);
  counters[gk] = counter;
  VectorClock clock(kLedgerEpoch, std::move(counters));
  return RefinableTimestamp(clock, gk, counter);
}

int Run(bool chaos, bool exec_mode) {
  PrintHeader("bench_chaos_recovery",
              exec_mode ? (chaos ? "exec chaos (--exec --chaos)"
                                 : "exec baseline (--exec)")
                        : (chaos ? "chaos (--chaos)"
                                 : "baseline (no faults)"));

  serverd::ShardServerOptions so;
  so.num_shards = kShards;
  so.num_gatekeepers = kGatekeepers;
  so.remote_oracle = true;
  std::string oracle_dir;
  {
    std::string templ =
        (std::filesystem::temp_directory_path() / "weaver_oracled_XXXXXX")
            .string();
    char* dir = ::mkdtemp(templ.data());
    if (dir == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return 1;
    }
    oracle_dir = dir;
  }
  so.oracle_data_dir = oracle_dir;

  // Either bootstrap shape yields connected fds + pids for the parent.
  std::vector<int> shard_fds;
  std::vector<pid_t> shard_pids;
  int oracle_fd = -1;
  pid_t oracle_pid = -1;
  std::vector<serverd::ShardProcess> fork_children;
  std::vector<serverd::ShardProcess> fork_spares;
  serverd::ShardProcess fork_oracled;
  auto ec = std::make_shared<ExecCluster>();
  if (exec_mode) {
    // TCP bootstrap: everything is an exec'd weaver-serverd, including
    // out-of-parent gatekeepers; respawn is by exec, so no spare pool.
    so.remote_gatekeepers = true;
    so.tau_micros = 300;        // must mirror the parent WeaverOptions:
    so.nop_period_micros = 300;  // the assignment is the children's config
    if (!BootExecCluster(so, ec.get())) return 1;
    shard_fds = ec->shard_fds;
    shard_pids = ec->shard_pids;
    oracle_fd = ec->oracle_fd;
    oracle_pid = ec->oracle_pid;
  } else {
    // Fork shard servers, the oracle service, and the spare pool BEFORE
    // any thread exists. The spares are generic: each can become a shard
    // or the oracle, so one pool covers both failure kinds.
    auto children = serverd::SpawnShardServers(so);
    if (!children.ok()) {
      std::fprintf(stderr, "spawn failed: %s\n",
                   children.status().ToString().c_str());
      return 1;
    }
    fork_children = *children;
    auto oracled = serverd::SpawnOracleServer(so);
    if (!oracled.ok()) {
      std::fprintf(stderr, "oracle spawn failed: %s\n",
                   oracled.status().ToString().c_str());
      return 1;
    }
    fork_oracled = *oracled;
    auto spares = serverd::SpawnSpareServers(so, kShards + 1);
    if (!spares.ok()) {
      std::fprintf(stderr, "spare spawn failed: %s\n",
                   spares.status().ToString().c_str());
      return 1;
    }
    fork_spares = *spares;
    for (const auto& child : fork_children) {
      shard_fds.push_back(child.parent_fd);
      shard_pids.push_back(child.pid);
    }
    oracle_fd = fork_oracled.parent_fd;
    oracle_pid = fork_oracled.pid;
  }

  ChaosStats stats;
  std::uint64_t healed_ms = 0;
  bool all_reads_ok = true;
  obs::MetricsSnapshot final_metrics;
  {
    WeaverOptions o;
    o.num_shards = kShards;
    o.num_gatekeepers = kGatekeepers;
    o.tau_micros = 300;
    o.nop_period_micros = 300;
    o.metrics_poll_period_micros = 0;
    o.supervision.enabled = true;
    o.supervision.poll_period_micros = 5'000;
    o.oracle_service.enabled = true;
    o.oracle_service.pid = oracle_pid;
    o.oracle_service.fd = oracle_fd;
    o.remote_shard_fds = shard_fds;
    o.supervision.shard_pids = shard_pids;
    if (exec_mode) {
      o.remote_gatekeeper_fds = ec->gk_fds;
      o.supervision.gatekeeper_pids = ec->gk_pids;
      o.supervision.exec_respawn = [ec](NodeRole role, std::uint32_t id,
                                        bool rehydrate, std::uint32_t epoch) {
        return ExecRespawn(ec, role, id, rehydrate, epoch);
      };
    } else {
      for (const auto& spare : fork_spares) {
        o.supervision.spare_pids.push_back(spare.pid);
        o.supervision.spare_fds.push_back(spare.parent_fd);
      }
    }
    // Each shard's ORIGINAL transport gets a one-shot kill plan; the
    // respawned spare's transport is left bare (each shard dies once).
    auto armed = std::make_shared<std::mutex>();
    auto armed_shards = std::make_shared<std::vector<bool>>(kShards, false);
    if (chaos) {
      const std::vector<pid_t> pids = o.supervision.shard_pids;
      o.shard_transport_decorator =
          [armed, armed_shards, pids](
              std::shared_ptr<Transport> inner,
              ShardId shard) -> std::shared_ptr<Transport> {
        std::lock_guard<std::mutex> lk(*armed);
        if ((*armed_shards)[shard]) return inner;
        (*armed_shards)[shard] = true;
        FaultPlan plan;
        plan.kind = FaultPlan::Kind::kKillPid;
        plan.after_frames = TriggerFrames(shard);
        plan.pid = pids[shard];
        return std::make_shared<FaultInjectingTransport>(std::move(inner),
                                                         plan);
      };
    }
    auto db = Weaver::Open(o);
    if (db == nullptr) {
      std::fprintf(stderr, "Weaver::Open failed\n");
      return 1;
    }

    WeaverClient client(db.get());
    auto session = client.OpenSession();

    // Seed ring (remote deployments commit; no bulk load).
    std::vector<NodeId> ring;
    {
      Transaction tx = session->BeginTx();
      for (int i = 0; i < kRingVertices; ++i) ring.push_back(tx.CreateNode());
      if (!session->Commit(&tx).ok()) return 1;
      Transaction etx = session->BeginTx();
      for (int i = 0; i < kRingVertices; ++i) {
        etx.CreateEdge(ring[i], ring[(i + 1) % kRingVertices]);
      }
      if (!session->Commit(&etx).ok()) return 1;
    }

    // Timeline-order ledger: every decision acknowledged here is logged
    // in the oracle's changelog; after the oracle is killed and
    // respawned, each must read back identically (no inversions).
    constexpr int kLedgerPairs = 16;
    std::vector<std::pair<RefinableTimestamp, RefinableTimestamp>> ledger;
    std::vector<ClockOrder> decided;
    for (int i = 1; i <= kLedgerPairs; ++i) {
      const auto a = LedgerTs(static_cast<std::uint64_t>(i), 0);
      const auto b = LedgerTs(static_cast<std::uint64_t>(i), 1);
      auto order = db->oracle_client().OrderPair(
          a, b,
          (i % 2) != 0 ? OrderPreference::kPreferFirst
                       : OrderPreference::kPreferSecond);
      if (!order.ok()) {
        std::fprintf(stderr, "chaos: ledger order failed: %s\n",
                     order.status().ToString().c_str());
        return 1;
      }
      ledger.emplace_back(a, b);
      decided.push_back(*order);
    }

    // Sustained load: every acknowledged vertex is a durability promise
    // we verify after the cluster heals. The frame triggers fire during
    // this loop; the loop keeps making progress through both outages.
    const int kRounds = FullScale() ? 4'000 : 1'200;
    std::vector<NodeId> acknowledged;
    acknowledged.reserve(kRounds);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kRounds; ++i) {
      if (chaos && exec_mode && i == kRounds / 3) {
        // Hard-kill a gatekeeper process mid-load: the supervisor must
        // fence it (failing its in-flight client waiters), advance the
        // epoch, exec a replacement, and re-route -- while clients retry
        // through Unavailable with no acknowledged write lost.
        ::kill(ec->gk_pids[0], SIGKILL);
      }
      if (chaos && i == kRounds / 2) {
        // Hard-kill the oracle service mid-load: the supervisor must
        // fence it, respawn a replacement (a spare, or by exec), and
        // replay the changelog while shard-side callers retry through
        // Unavailable.
        ::kill(oracle_pid, SIGKILL);
      }
      NodeId created = kInvalidNodeId;
      if (!CommitAcknowledged(session.get(), ring[i % kRingVertices],
                              "w" + std::to_string(i), &stats, &created)) {
        std::fprintf(stderr, "chaos: commit budget exhausted at round %d\n", i);
        return 1;
      }
      acknowledged.push_back(created);
      if (i % 50 == 0) {
        programs::BfsParams params;
        auto r = RunProgramAcknowledged(session.get(), programs::kBfs,
                                        ring[0], params.Encode(), &stats);
        if (!r.ok()) {
          std::fprintf(stderr, "chaos: traversal failed hard: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
      }
    }

    // The cluster must heal: one recovery per shard plus one oracle
    // recovery under --chaos, plus one gatekeeper recovery under
    // --exec --chaos.
    const std::uint64_t want = chaos ? kShards : 0;
    if (!AwaitRecoveries(db.get(), want, chaos ? 1 : 0,
                         (chaos && exec_mode) ? 1 : 0,
                         std::chrono::seconds(60))) {
      std::fprintf(stderr, "chaos: cluster never healed\n");
      return 1;
    }
    healed_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());

    // Read-back: every acknowledged write must be visible post-recovery.
    std::uint64_t missing = 0;
    for (std::size_t i = 0; i < acknowledged.size(); ++i) {
      auto r = RunProgramAcknowledged(session.get(), programs::kGetNode,
                                      acknowledged[i], "", &stats);
      if (!r.ok() || r->returns.empty()) {
        ++missing;
        all_reads_ok = false;
      }
    }

    // Order read-back: wipe the parent's replica first, so every
    // re-query below must consult the (respawned) service's DAG rather
    // than a warm local cache. Each re-query flips the operands and
    // prefers the opposite answer -- a service that lost the changelog
    // edge would happily establish the inverted order.
    std::uint64_t order_inversions = 0;
    db->oracle_client().CollectBefore(
        VectorClock(kLedgerEpoch + 1,
                    std::vector<std::uint64_t>(kGatekeepers, 1)));
    for (std::size_t i = 0; i < ledger.size(); ++i) {
      auto again = db->oracle_client().OrderPair(
          ledger[i].second, ledger[i].first, OrderPreference::kPreferFirst);
      if (!again.ok() || *again != FlipOrder(decided[i])) {
        ++order_inversions;
        all_reads_ok = false;
      }
    }

    auto cluster = db->CollectMetrics();
    if (!cluster.ok()) {
      std::fprintf(stderr, "metrics collection failed: %s\n",
                   cluster.status().ToString().c_str());
      return 1;
    }
    final_metrics = cluster->Merged();
    const obs::MetricsSnapshot& local = cluster->local;

    // The respawned oracle's own report (shard == kOracleMetricsSource):
    // under --chaos it must show a changelog replay.
    std::uint64_t oracle_replayed = 0;
    for (const auto& report : cluster->remote) {
      if (report.shard == kOracleMetricsSource) {
        oracle_replayed =
            report.snapshot.CounterValue("oracle.service.replayed_records");
      }
    }
    if (chaos && oracle_replayed == 0) {
      std::fprintf(stderr,
                   "chaos: respawned oracle reports no replayed changelog "
                   "records\n");
      all_reads_ok = false;
    }
    // Under --exec every recovery (shards + oracle + gatekeeper) must
    // have gone through the exec hook -- there is no spare pool to
    // silently absorb one.
    if (chaos && exec_mode &&
        local.CounterValue("supervisor.exec_respawns") < kShards + 2) {
      std::fprintf(stderr,
                   "chaos: expected %zu exec respawns, saw %llu\n",
                   kShards + 2,
                   static_cast<unsigned long long>(
                       local.CounterValue("supervisor.exec_respawns")));
      all_reads_ok = false;
    }

    std::printf("\n%-34s %12s\n", "metric", "value");
    auto row = [](const char* name, std::uint64_t v) {
      std::printf("%-34s %12llu\n", name,
                  static_cast<unsigned long long>(v));
    };
    row("commits_acknowledged", stats.commits_acked.load());
    row("programs_completed", stats.programs_ok.load());
    row("unavailable_retries", stats.unavailable_retries.load());
    row("deadline_waits_250ms", stats.deadline_waits.load());
    row("acknowledged_missing_after_heal", missing);
    row("order_inversions_after_heal", order_inversions);
    row("oracle.service.replayed_records", oracle_replayed);
    row("supervisor.oracle_recoveries",
        local.CounterValue("supervisor.oracle_recoveries"));
    row("oracle.client.unavailable",
        final_metrics.CounterValue("oracle.client.unavailable"));
    row("supervisor.recoveries", local.CounterValue("supervisor.recoveries"));
    row("supervisor.gk_recoveries",
        local.CounterValue("supervisor.gk_recoveries"));
    row("supervisor.exec_respawns",
        local.CounterValue("supervisor.exec_respawns"));
    row("supervisor.recoveries_failed",
        local.CounterValue("supervisor.recoveries_failed"));
    row("supervisor.replayed_vertices",
        local.CounterValue("supervisor.replayed_vertices"));
    row("supervisor.sigkills", local.CounterValue("supervisor.sigkills"));
    row("supervisor.reset_ack_timeouts",
        local.CounterValue("supervisor.reset_ack_timeouts"));
    row("gk.slice_send_failures",
        local.CounterValue("gk0.slice_send_failures") +
            local.CounterValue("gk1.slice_send_failures"));
    if (const obs::HistogramSnapshot* h =
            local.FindHistogram("supervisor.recovery_latency")) {
      std::printf("%-34s %s\n", "supervisor.recovery_latency",
                  h->Summary().c_str());
    }

    {
      BenchJson json("chaos_recovery");
      json.Text("mode", chaos ? "chaos" : "baseline");
      json.Integer("commits_acknowledged", stats.commits_acked.load());
      json.Integer("unavailable_retries", stats.unavailable_retries.load());
      json.Integer("deadline_waits", stats.deadline_waits.load());
      json.Integer("acknowledged_missing_after_heal", missing);
      json.Integer("order_inversions_after_heal", order_inversions);
      json.Integer("oracle_recoveries",
                   local.CounterValue("supervisor.oracle_recoveries"));
      json.Integer("oracle_replayed_records", oracle_replayed);
      json.Integer("recoveries", local.CounterValue("supervisor.recoveries"));
      json.Integer("gk_recoveries",
                   local.CounterValue("supervisor.gk_recoveries"));
      json.Integer("exec_respawns",
                   local.CounterValue("supervisor.exec_respawns"));
      json.Integer("recoveries_failed",
                   local.CounterValue("supervisor.recoveries_failed"));
      json.Integer("replayed_vertices",
                   local.CounterValue("supervisor.replayed_vertices"));
      json.Integer("workload_ms", healed_ms);
      json.Metrics(final_metrics);
    }
    db->Shutdown();
  }
  if (exec_mode) {
    // Reap everything the exec path spawned. Processes the supervisor
    // fenced were reaped by it (waitpid fails with ECHILD -- skip);
    // everything still alive exits 0 once the parent tears down.
    for (const pid_t pid : ec->all_pids) {
      int status = 0;
      if (::waitpid(pid, &status, 0) != pid) continue;
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::fprintf(stderr,
                     "chaos: serverd pid %d exited abnormally (status %d)\n",
                     static_cast<int>(pid), status);
        return 1;
      }
    }
  } else if (!serverd::WaitShardServers(fork_children).ok() ||
             !serverd::WaitShardServers({fork_oracled}).ok() ||
             !serverd::WaitShardServers(fork_spares).ok()) {
    std::fprintf(stderr, "chaos: a shard process exited abnormally\n");
    return 1;
  }
  std::error_code fs_ec;
  std::filesystem::remove_all(oracle_dir, fs_ec);
  if (!all_reads_ok) {
    std::fprintf(stderr,
                 "chaos: ACKNOWLEDGED WRITES OR ORDER DECISIONS WERE LOST\n");
    return 1;
  }
  std::printf("\nresult: %s -- all acknowledged writes survived\n",
              chaos ? "PASS (chaos)" : "PASS (baseline)");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace weaver

int main(int argc, char** argv) {
  bool chaos = false;
  bool exec_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chaos") == 0) chaos = true;
    if (std::strcmp(argv[i], "--exec") == 0) exec_mode = true;
  }
  weaver::bench::ParseJsonOutput(argc, argv);
  return weaver::bench::Run(chaos, exec_mode);
}
