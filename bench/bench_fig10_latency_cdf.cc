// Figure 10: CDF of transaction latency on the social-network workload,
// Weaver vs the Titan-like baseline, at 99.8% and 75% read mixes.
//
// Paper result: Weaver's reads (node programs) are much faster than its
// writes (which pay a backing-store transaction), and both are far below
// Titan, whose per-operation locking + 2PC puts even reads in the
// tens-of-milliseconds band. Shape to reproduce: Weaver's CDF lies left
// of (below) Titan's for all reads and most writes; Weaver's latency
// grows with the write fraction.
#include <cstdio>

#include "baselines/titan_like.h"
#include "harness.h"
#include "programs/standard_programs.h"
#include "workload/tao_workload.h"

using namespace weaver;
using namespace weaver::bench;

namespace {

void PrintCdf(const char* label, const Histogram& h) {
  std::printf("%s: %s\n", label, h.Summary().c_str());
  std::printf("  CDF(ms):");
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    std::printf(" p%.1f=%.3f", p, h.Percentile(p) / 1e6);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  ParseJsonOutput(argc, argv);
  BenchJson json("fig10_latency_cdf");
  PrintHeader("bench_fig10_latency_cdf", "Fig 10 (transaction latency CDF)");

  const auto graph =
      workload::MakePowerLawGraph(FullScale() ? 50000 : 10000, 10, 7);
  const std::size_t clients = FullScale() ? 32 : 8;
  const std::uint64_t duration_ms = FullScale() ? 6000 : 2000;

  for (double read_fraction : {0.998, 0.75}) {
    std::printf("\n---- %.1f%% reads ----\n", read_fraction * 100);
    const std::string mix_key = read_fraction > 0.9 ? "tao998" : "r75";

    // Weaver.
    {
      WeaverOptions options;
      options.num_gatekeepers = 2;
      options.num_shards = 2;
      options.start = false;
      // Durable bulk load: this workload WRITES to loaded vertices, and
      // transactional writes read the vertex blobs from the backing store.
      // Model the HyperDex Warp network round trip writes pay in the
      // paper's deployment (EXPERIMENTS.md documents the calibration).
      options.kv_commit_delay_micros = 5000;
      auto db = Weaver::Open(options);
      LoadGraph(db.get(), graph);
      db->Start();
      std::vector<workload::TaoWorkload> mixes;
      for (std::size_t c = 0; c < clients; ++c) {
        mixes.emplace_back(graph.num_nodes, read_fraction, 0.8, 300 + c);
      }
      Histogram latencies;
      RunClients(
          clients, duration_ms,
          [&](std::size_t c) {
            auto& mix = mixes[c];
            const auto op = mix.NextOp();
            const NodeId n = mix.PickNode();
            if (workload::IsRead(op)) {
              return db->RunProgram(programs::kGetNode, n).ok();
            }
            return db
                ->RunTransaction([&](Transaction& tx) {
                  tx.CreateEdge(n, mix.PickUniformNode());
                  return Status::Ok();
                })
                .ok();
          },
          &latencies);
      PrintCdf("  weaver", latencies);
      json.Latency("weaver_" + mix_key, latencies);
      json.Metrics(db->metrics().Snapshot());  // last mix wins
    }

    // Titan-like.
    {
      baselines::TitanLikeDb titan;
      for (NodeId v = 1; v <= graph.num_nodes; ++v) titan.LoadNode(v);
      for (const auto& [src, dst] : graph.edges) titan.LoadEdge(src, dst);
      std::vector<workload::TaoWorkload> mixes;
      for (std::size_t c = 0; c < clients; ++c) {
        mixes.emplace_back(graph.num_nodes, read_fraction, 0.8, 400 + c);
      }
      Histogram latencies;
      RunClients(
          clients, duration_ms,
          [&](std::size_t c) {
            auto& mix = mixes[c];
            const auto op = mix.NextOp();
            const NodeId n = mix.PickNode();
            std::uint64_t count = 0;
            if (workload::IsRead(op)) return titan.GetNode(n, &count).ok();
            return titan.CreateEdge(n, mix.PickUniformNode()).ok();
          },
          &latencies);
      PrintCdf("  titan ", latencies);
      json.Latency("titan_" + mix_key, latencies);
    }
  }
  std::printf(
      "\nexpected shape: Weaver's CDF left of Titan's at every percentile "
      "for\nreads and most writes; Weaver latency grows with write "
      "fraction.\n");
  return 0;
}
