// Figure 13: throughput of local-clustering-coefficient node programs as
// a function of the number of shard servers (gatekeepers fixed).
//
// Paper result: clustering-coefficient queries fan out to every neighbor
// and back, so the shards do the heavy lifting; adding shard servers
// (gatekeepers fixed) scales throughput linearly, to ~18k tx/s at 9
// shards on the paper's cluster.
//
// Same single-core substitution as Fig 12 (see that bench's header and
// EXPERIMENTS.md): the real deployment executes every query; the modeled
// throughput applies the measured per-component service times to the
// paper's one-server-per-machine topology:
//
//   throughput(S) = ops / max(gk_busy/G, shard_busy/S)
#include <cstdio>

#include "harness.h"
#include "programs/standard_programs.h"
#include "workload/tao_workload.h"

using namespace weaver;
using namespace weaver::bench;

int main(int argc, char** argv) {
  ParseJsonOutput(argc, argv);
  BenchJson json("fig13_scale_shards");
  PrintHeader("bench_fig13_scale_shards",
              "Fig 13 (shard scalability, clustering coefficient)");

  // Paper: small Twitter graph (1.76M edges), scaled down.
  const std::uint64_t num_nodes = FullScale() ? 40000 : 8000;
  const auto graph = workload::MakeUniformGraph(
      num_nodes, FullScale() ? 400000 : 64000, 9);
  const std::uint64_t duration_ms = FullScale() ? 4000 : 1200;
  const std::size_t num_gks = 4;  // fixed tier sized so it is not the bottleneck (as in the paper)

  std::printf("%8s | %14s | %12s | %14s\n", "shards", "measured_ops/s",
              "shard_us/op", "modeled_tx/s");
  for (std::size_t shards = 1; shards <= 9; shards += (shards < 3 ? 1 : 2)) {
    WeaverOptions options;
    options.num_gatekeepers = num_gks;
    options.num_shards = shards;
    options.start = false;
    options.bulk_load_durable = false;
    // Background timer noise is per-machine in the paper's topology; on a
    // single host it would otherwise dominate. Calmer cadences keep the
    // protocol identical while leaving CPU for the measured operations.
    options.tau_micros = 1000;
    options.nop_period_micros = 2000;
    auto db = Weaver::Open(options);
    LoadGraph(db.get(), graph);
    db->Start();
    WeaverClient client(db.get());

    // One session per client thread, pinned round-robin across the fixed
    // gatekeeper bank (the sessions are the paper's client fleet).
    std::vector<std::unique_ptr<Session>> sessions;
    std::vector<workload::TaoWorkload> mixes;
    const std::size_t clients = 4;
    for (std::size_t c = 0; c < clients; ++c) {
      sessions.push_back(client.OpenSession());
      mixes.emplace_back(graph.num_nodes, 1.0, 0.8, 55 + c);
    }
    Histogram query_lat;
    const std::uint64_t ops = RunClients(
        clients, duration_ms,
        [&](std::size_t c) {
          programs::ClusteringParams params;  // kGather phase
          return sessions[c]
              ->RunProgram(programs::kClustering, mixes[c].PickNode(),
                           params.Encode())
              .ok();
        },
        &query_lat);

    std::uint64_t gk_busy = 0, shard_busy = 0;
    for (std::size_t g = 0; g < db->num_gatekeepers(); ++g) {
      gk_busy += db->gatekeeper(static_cast<GatekeeperId>(g))
                     .stats()
                     .busy_ns.load();
    }
    for (std::size_t s = 0; s < db->num_shards(); ++s) {
      shard_busy +=
          db->shard(static_cast<ShardId>(s)).stats().op_work_ns.load();
    }
    const double shard_us_per_op =
        ops ? shard_busy / 1e3 / static_cast<double>(ops) : 0;
    const double bottleneck_ns = std::max(
        static_cast<double>(gk_busy) / static_cast<double>(num_gks),
        static_cast<double>(shard_busy) / static_cast<double>(shards));
    const double modeled_tps =
        bottleneck_ns > 0 ? static_cast<double>(ops) * 1e9 / bottleneck_ns
                          : 0;
    const double measured_tps = ops / (duration_ms / 1e3);
    std::printf("%8zu | %14s | %12.2f | %14s\n", shards,
                FormatRate(measured_tps).c_str(), shard_us_per_op,
                FormatRate(modeled_tps).c_str());
    const std::string key = "shards" + std::to_string(shards);
    json.Number(key + "_modeled_tps", modeled_tps);
    json.Number(key + "_shard_us_per_op", shard_us_per_op);
    json.Latency(key + "_clustering", query_lat);
    json.Metrics(db->metrics().Snapshot());  // largest config wins
  }
  std::printf(
      "\nexpected shape: modeled_tx/s grows ~linearly with shards (shards "
      "are the\nbottleneck for fan-out queries; paper reaches ~18k tx/s "
      "at 9 shards).\n");
  return 0;
}
