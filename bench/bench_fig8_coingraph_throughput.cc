// Figure 8: throughput of CoinGraph block render queries as a function of
// block height, reported both as queries/sec and vertices read/sec.
//
// Paper result: query throughput falls as block height grows (higher
// blocks hold more transactions, so each query reads more vertices),
// while the vertex-read rate stays in a sustained band (5k-20k node reads
// per second on the paper's testbed). The shape to reproduce: tx/s
// decreasing with height; nodes/s roughly flat by comparison.
#include <cstdio>

#include "common/random.h"
#include "harness.h"
#include "programs/standard_programs.h"

using namespace weaver;
using namespace weaver::bench;

int main(int argc, char** argv) {
  ParseJsonOutput(argc, argv);
  BenchJson json("fig8_coingraph_throughput");
  PrintHeader("bench_fig8_coingraph_throughput",
              "Fig 8 (block query throughput)");

  workload::BlockchainOptions chain_opts;
  chain_opts.num_blocks = FullScale() ? 2000 : 600;
  chain_opts.min_txs = 1;
  chain_opts.max_txs = FullScale() ? 1200 : 300;
  const auto chain = workload::MakeBlockchain(chain_opts);

  WeaverOptions options;
  options.num_gatekeepers = 2;
  options.num_shards = 3;
  options.start = false;
  options.bulk_load_durable = false;
  auto db = Weaver::Open(options);
  LoadBlockchain(db.get(), chain);
  db->Start();

  const std::uint64_t duration_ms = FullScale() ? 4000 : 1500;
  const std::size_t clients = 4;
  const std::uint32_t max_h =
      static_cast<std::uint32_t>(chain.blocks.size() - 1);
  const std::uint32_t window = 100;  // paper: blocks chosen in [x, x+100]

  Histogram query_lat;  // all queries, all height bands
  std::printf("%10s | %10s %14s | %10s\n", "block", "queries/s",
              "vertices/s", "avg_tx/blk");
  for (double frac : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const std::uint32_t base = static_cast<std::uint32_t>(frac * max_h);
    const std::uint32_t hi = std::min(base + window, max_h);
    std::atomic<std::uint64_t> vertices{0};
    std::vector<Rng> rngs;
    for (std::size_t c = 0; c < clients; ++c) rngs.emplace_back(base + c);
    const std::uint64_t queries = RunClients(
        clients, duration_ms,
        [&](std::size_t c) {
          const std::uint32_t h =
              base + static_cast<std::uint32_t>(
                         rngs[c].Uniform(hi - base + 1));
          auto result =
              db->RunProgram(programs::kBlockRender, chain.blocks[h].id,
                             programs::BlockRenderParams{}.Encode());
          if (!result.ok()) return false;
          vertices.fetch_add(result->vertices_visited,
                             std::memory_order_relaxed);
          return true;
        },
        &query_lat);
    const double secs = duration_ms / 1e3;
    double avg_tx = 0;
    for (std::uint32_t h = base; h <= hi; ++h) {
      avg_tx += static_cast<double>(chain.blocks[h].txs.size());
    }
    avg_tx /= (hi - base + 1);
    std::printf("%10u | %10s %14s | %10.0f\n", base,
                FormatRate(queries / secs).c_str(),
                FormatRate(vertices.load() / secs).c_str(), avg_tx);
    json.Number("queries_per_sec_block" + std::to_string(base),
                queries / secs);
    json.Number("vertices_per_sec_block" + std::to_string(base),
                vertices.load() / secs);
  }
  json.Latency("block_render", query_lat);
  json.Metrics(db->metrics().Snapshot());
  std::printf(
      "\nexpected shape: queries/s falls with block height (bigger "
      "blocks);\nvertices/s stays in a sustained band.\n");
  return 0;
}
