// Figure 7: average latency of a Bitcoin block query, CoinGraph (Weaver
// block_render node program) vs Blockchain.info (row store + joins).
//
// Paper result: both systems' latency grows linearly with the number of
// transactions in the block, but CoinGraph's per-transaction marginal
// cost (0.6-0.8 ms/tx on the paper's 2008-era testbed) is an order of
// magnitude below Blockchain.info's (5-8 ms/tx, dominated by MySQL
// joins). The shape to reproduce: linear growth in both systems with
// CoinGraph's slope clearly below the baseline's, the gap widening with
// block size. Absolute values differ (in-memory simulation vs WAN MySQL
// service).
#include <cstdio>

#include "baselines/blockchain_info_like.h"
#include "common/clock.h"
#include "harness.h"
#include "programs/standard_programs.h"

using namespace weaver;
using namespace weaver::bench;

int main(int argc, char** argv) {
  ParseJsonOutput(argc, argv);
  BenchJson json("fig7_coingraph_latency");
  PrintHeader("bench_fig7_coingraph_latency", "Fig 7 (block query latency)");

  workload::BlockchainOptions chain_opts;
  chain_opts.num_blocks = FullScale() ? 2000 : 600;
  chain_opts.min_txs = 1;
  chain_opts.max_txs = FullScale() ? 1800 : 400;
  const auto chain = workload::MakeBlockchain(chain_opts);
  std::printf("chain: %zu blocks, %llu txs, %llu edges\n\n",
              chain.blocks.size(),
              static_cast<unsigned long long>(chain.total_txs),
              static_cast<unsigned long long>(chain.total_edges));

  // CoinGraph: blockchain in Weaver.
  WeaverOptions options;
  options.num_gatekeepers = 2;
  options.num_shards = 3;
  options.start = false;
  options.bulk_load_durable = false;  // throughput bench; no recovery
  auto db = Weaver::Open(options);
  LoadBlockchain(db.get(), chain);
  db->Start();

  // Blockchain.info: same chain in the relational baseline.
  baselines::BlockchainInfoLikeDb bcinfo(chain);

  const int kRuns = 20;  // paper: averaged over 20 runs
  Histogram render_lat;  // all renders, all block sizes
  std::printf("%10s %8s | %12s %12s | %12s %12s\n", "block", "txs",
              "coingraph_ms", "ms_per_tx", "bcinfo_ms", "ms_per_tx");
  const std::uint32_t max_h =
      static_cast<std::uint32_t>(chain.blocks.size() - 1);
  for (double frac : {0.05, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const std::uint32_t h = static_cast<std::uint32_t>(frac * max_h);
    const NodeId block_vertex = chain.blocks[h].id;
    const double ntx = static_cast<double>(chain.blocks[h].txs.size());

    // CoinGraph block render.
    double weaver_ms = 0;
    for (int r = 0; r < kRuns; ++r) {
      const std::uint64_t t0 = NowNanos();
      auto result = db->RunProgram(programs::kBlockRender, block_vertex,
                                   programs::BlockRenderParams{}.Encode());
      const std::uint64_t dt = NowNanos() - t0;
      render_lat.Record(dt);
      weaver_ms += dt / 1e6;
      if (!result.ok() ||
          result->returns.size() != chain.blocks[h].txs.size() + 1) {
        std::fprintf(stderr, "coingraph render mismatch at block %u\n", h);
        return 1;
      }
    }
    weaver_ms /= kRuns;

    // Blockchain.info query.
    double bcinfo_ms = 0;
    for (int r = 0; r < kRuns; ++r) {
      const std::uint64_t t0 = NowNanos();
      const std::string json = bcinfo.QueryBlockJson(h);
      bcinfo_ms += (NowNanos() - t0) / 1e6;
      if (json.size() < 2) return 1;
    }
    bcinfo_ms /= kRuns;

    std::printf("%10u %8.0f | %12.3f %12.4f | %12.3f %12.4f\n", h, ntx,
                weaver_ms, weaver_ms / ntx, bcinfo_ms, bcinfo_ms / ntx);
    json.Number("coingraph_ms_per_tx_block" + std::to_string(h),
                weaver_ms / ntx);
    json.Number("bcinfo_ms_per_tx_block" + std::to_string(h),
                bcinfo_ms / ntx);
  }
  json.Latency("block_render", render_lat);
  json.Metrics(db->metrics().Snapshot());
  std::printf(
      "\nexpected shape: latency linear in block size for both systems;\n"
      "CoinGraph's ms/tx below the baseline's, gap widest at large "
      "blocks.\n");
  return 0;
}
