// Figure 12: throughput of get_node node programs as a function of the
// number of gatekeeper servers (shards fixed).
//
// Paper result: get_node queries are vertex-local, so the shards do
// little work and the gatekeepers (timestamping) are the bottleneck;
// adding gatekeepers scales throughput linearly, to ~250k tx/s at 6
// gatekeepers on the paper's EC2 cluster.
//
// Substitution note (see DESIGN.md / EXPERIMENTS.md): the paper gives
// each gatekeeper its own 8-core machine; this host has a single core, so
// wall-clock throughput cannot exhibit hardware parallelism. The bench
// therefore drives the REAL deployment (every config processes the same
// operations through gatekeepers, oracle, bus, and shards), measures each
// component's per-operation service time from its busy-time counters, and
// reports the throughput the measured service times support when each
// server runs on its own machine:
//
//   throughput(G) = ops / max(gk_busy/G, shard_busy/S)
//
// This is the standard service-demand bound (utilization law); linearity
// holds exactly until the shard side becomes the bottleneck, which is the
// effect Fig 12 vs Fig 13 contrasts.
#include <cstdio>

#include "harness.h"
#include "programs/standard_programs.h"
#include "workload/tao_workload.h"

using namespace weaver;
using namespace weaver::bench;

int main(int argc, char** argv) {
  ParseJsonOutput(argc, argv);
  BenchJson json("fig12_scale_gatekeepers");
  PrintHeader("bench_fig12_scale_gatekeepers",
              "Fig 12 (gatekeeper scalability, get_node)");

  const auto graph =
      workload::MakePowerLawGraph(FullScale() ? 100000 : 20000, 10, 3);
  const std::uint64_t duration_ms = FullScale() ? 4000 : 1500;
  const std::size_t num_shards = 4;  // fixed tier sized so it is not the bottleneck (as in the paper)

  std::printf("%12s | %14s | %12s | %14s\n", "gatekeepers",
              "measured_ops/s", "gk_us/op", "modeled_tx/s");
  for (std::size_t gks = 1; gks <= 6; ++gks) {
    WeaverOptions options;
    options.num_gatekeepers = gks;
    options.num_shards = num_shards;
    options.start = false;
    options.bulk_load_durable = false;
    // Background timer noise is per-machine in the paper's topology; on a
    // single host it would otherwise dominate. Calmer cadences keep the
    // protocol identical while leaving CPU for the measured operations.
    options.tau_micros = 1000;
    options.nop_period_micros = 2000;
    auto db = Weaver::Open(options);
    LoadGraph(db.get(), graph);
    db->Start();
    WeaverClient client(db.get());

    // One session per client thread; sessions pin round-robin across the
    // gatekeeper bank, so queries spread exactly like the paper's client
    // fleet.
    std::vector<std::unique_ptr<Session>> sessions;
    std::vector<workload::TaoWorkload> mixes;
    const std::size_t clients = 4;
    for (std::size_t c = 0; c < clients; ++c) {
      sessions.push_back(client.OpenSession());
      mixes.emplace_back(graph.num_nodes, 1.0, 0.8, 77 + c);
    }
    Histogram query_lat;
    const std::uint64_t ops = RunClients(
        clients, duration_ms,
        [&](std::size_t c) {
          return sessions[c]
              ->RunProgram(programs::kGetNode, mixes[c].PickNode())
              .ok();
        },
        &query_lat);

    // Service-time model: see header comment.
    std::uint64_t gk_busy = 0, shard_busy = 0;
    for (std::size_t g = 0; g < db->num_gatekeepers(); ++g) {
      gk_busy += db->gatekeeper(static_cast<GatekeeperId>(g))
                     .stats()
                     .busy_ns.load();
    }
    for (std::size_t s = 0; s < db->num_shards(); ++s) {
      shard_busy +=
          db->shard(static_cast<ShardId>(s)).stats().op_work_ns.load();
    }
    const double gk_us_per_op =
        ops ? gk_busy / 1e3 / static_cast<double>(ops) : 0;
    const double bottleneck_ns = std::max(
        static_cast<double>(gk_busy) / static_cast<double>(gks),
        static_cast<double>(shard_busy) / static_cast<double>(num_shards));
    const double modeled_tps =
        bottleneck_ns > 0 ? static_cast<double>(ops) * 1e9 / bottleneck_ns
                          : 0;
    const double measured_tps = ops / (duration_ms / 1e3);
    std::printf("%12zu | %14s | %12.2f | %14s\n", gks,
                FormatRate(measured_tps).c_str(), gk_us_per_op,
                FormatRate(modeled_tps).c_str());
    const std::string key = "gk" + std::to_string(gks);
    json.Number(key + "_modeled_tps", modeled_tps);
    json.Number(key + "_gk_us_per_op", gk_us_per_op);
    json.Latency(key + "_get_node", query_lat);
    json.Metrics(db->metrics().Snapshot());  // largest config wins
  }
  std::printf(
      "\nexpected shape: modeled_tx/s grows ~linearly with gatekeepers "
      "(gatekeepers\nare the bottleneck for vertex-local queries; paper "
      "reaches ~250k tx/s at 6).\n");
  return 0;
}
