// Figure 14: coordination overhead vs the clock synchronization period
// tau -- the proactive/reactive tradeoff at the heart of refinable
// timestamps (paper §3.5, §6.5).
//
// Paper result: with small tau, gatekeepers announce very frequently, so
// nearly all timestamp pairs are clock-comparable and the timeline oracle
// is barely used -- but announce traffic per query is high. As tau grows,
// announce overhead falls and oracle ordering requests per query rise.
// Both extremes are wasteful; an intermediate tau balances them. Shape to
// reproduce: announce msgs/query monotonically falling in tau; oracle
// msgs/query monotonically rising; the curves crossing in the middle.
//
// Method: two gatekeepers commit write transactions to a small hot vertex
// set (forcing genuine read/write overlap). We pump announces at the
// configured tau and count (a) announce messages and (b) oracle ordering
// requests, normalized per query, exactly the two curves of Fig 14.
#include <atomic>
#include <cstdio>
#include <thread>

#include "common/clock.h"
#include "harness.h"
#include "programs/extended_programs.h"
#include "workload/tao_workload.h"

using namespace weaver;
using namespace weaver::bench;

int main(int argc, char** argv) {
  ParseJsonOutput(argc, argv);
  BenchJson json("fig14_coordination");
  PrintHeader("bench_fig14_coordination",
              "Fig 14 (proactive vs reactive coordination overhead)");

  const std::uint64_t kQueries = FullScale() ? 6000 : 2000;
  // tau expressed as "announce every K transactions" to make the sweep
  // deterministic on one core; the paper's microsecond x-axis maps to K
  // via the transaction arrival rate.
  std::printf("%18s | %18s | %20s\n", "announce_every_K_tx",
              "announces_per_query", "oracle_msgs_per_query");
  for (std::uint64_t every :
       {1ULL, 2ULL, 4ULL, 16ULL, 64ULL, 256ULL, 1024ULL, 1ULL << 62}) {
    WeaverOptions options;
    options.num_gatekeepers = 2;
    options.num_shards = 2;
    options.start = false;  // manual control of announce cadence
    options.tau_micros = 0;
    options.nop_period_micros = 0;
    auto db = Weaver::Open(options);
    constexpr NodeId kHotSet = 32;
    for (NodeId v = 1; v <= kHotSet; ++v) db->BulkCreateNode(v);
    db->FinishBulkLoad();
    db->Start();

    db->oracle().ResetStats();
    workload::TaoWorkload mix(kHotSet, 0.0, 0.8, 123);  // all writes
    std::uint64_t announces = 0;
    Histogram tx_lat;
    for (std::uint64_t q = 0; q < kQueries; ++q) {
      const NodeId n = mix.PickNode();
      const std::uint64_t t0 = NowNanos();
      (void)db->RunTransaction([&](Transaction& tx) {
        return tx.AssignNodeProperty(n, "v", std::to_string(q));
      });
      tx_lat.Record(NowNanos() - t0);
      if (every != (1ULL << 62) && q % every == 0) {
        for (std::size_t g = 0; g < db->num_gatekeepers(); ++g) {
          db->gatekeeper(static_cast<GatekeeperId>(g)).PumpAnnounce();
          ++announces;
        }
      }
      // Keep shard queues draining (NOPs as in the live system).
      if (q % 8 == 0) {
        for (std::size_t g = 0; g < db->num_gatekeepers(); ++g) {
          db->gatekeeper(static_cast<GatekeeperId>(g)).PumpNop();
        }
      }
    }
    // Drain all remaining queue entries so every ordering decision lands.
    for (int i = 0; i < 3; ++i) {
      for (std::size_t g = 0; g < db->num_gatekeepers(); ++g) {
        db->gatekeeper(static_cast<GatekeeperId>(g)).PumpNop();
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    const double per_query_announce =
        static_cast<double>(announces) * 2 /  // each announce = 1 message
        static_cast<double>(kQueries);
    const double per_query_oracle =
        static_cast<double>(db->oracle().stats().order_requests.load() +
                            db->oracle().stats().queries.load()) /
        static_cast<double>(kQueries);
    char label[32];
    if (every == (1ULL << 62)) {
      std::snprintf(label, sizeof(label), "never");
    } else {
      std::snprintf(label, sizeof(label), "%llu",
                    static_cast<unsigned long long>(every));
    }
    std::printf("%18s | %18.3f | %20.3f\n", label, per_query_announce,
                per_query_oracle);
    json.Number(std::string("announces_per_query_") + label,
                per_query_announce);
    json.Number(std::string("oracle_msgs_per_query_") + label,
                per_query_oracle);
    json.Latency(std::string("tx_latency_every_") + label, tx_lat);
    // At the densest sweep point, also surface the backpressure signals
    // (ROADMAP item: adaptive NOP backoff in bench output) and the
    // decentralized node-program accounting over the written hot set --
    // the write-vs-read ordering here is exactly what the delay rule
    // arbitrates.
    if (every == 1) {
      PrintBackpressure(db.get());
      // This sweep runs with the clock/NOP timers disabled (manual
      // cadence), but program eligibility needs queue heads ordered
      // after the program timestamp -- which takes both NOPs (heads
      // advance) and announces (peer clocks merge the issuer's
      // components, else peer NOPs stay concurrent forever). Pump both
      // from a side thread exactly like the live timers would.
      std::atomic<bool> stop_pump{false};
      std::thread pump([&] {
        while (!stop_pump.load()) {
          for (std::size_t g = 0; g < db->num_gatekeepers(); ++g) {
            db->gatekeeper(static_cast<GatekeeperId>(g)).PumpAnnounce();
            db->gatekeeper(static_cast<GatekeeperId>(g)).PumpNop();
          }
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      });
      for (NodeId v = 1; v <= kHotSet; ++v) {
        programs::KHopParams khop;
        khop.remaining = 2;
        (void)db->RunProgram(programs::kKHop, v, khop.Encode());
      }
      stop_pump.store(true);
      pump.join();
      // These khops are the only programs this deployment has run, so
      // the registry's coord.*/shard<N>.* accounting is exactly theirs.
      PrintProgramAccounting(db.get(), "  khop accounting");
      json.Metrics(db->metrics().Snapshot());
    }
  }
  std::printf(
      "\nexpected shape: announces/query falls as tau grows (announce "
      "less often);\noracle msgs/query rises; both extremes are "
      "expensive, the middle balances.\n");
  return 0;
}
