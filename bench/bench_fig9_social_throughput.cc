// Figure 9 (and Table 1): transaction throughput on the social-network
// workload, Weaver vs the Titan-like 2PL baseline.
//
//   * Fig 9a -- TAO mix (99.8% reads): paper measures Weaver ~10.9x Titan.
//   * Fig 9b -- 75% reads: paper measures Weaver ~1.5x Titan.
//
// Paper explanation (§6.2): Titan pessimistically locks every object a
// transaction touches -- reads included -- and holds the locks through the
// two-phase commit against its storage backend, so its throughput is
// roughly flat (~2k tx/s) regardless of read fraction. Weaver's refinable
// timestamps let reads (node programs) run on snapshots without blocking,
// so its throughput is far higher on read-heavy mixes and degrades as the
// write fraction grows. The shape to reproduce: Weaver >> Titan at 99.8%
// reads; the ratio compressing substantially at 75% reads; Titan roughly
// flat across both mixes.
//
// Client modes (both drive WeaverClient sessions, docs/client_api.md):
//   * closed-loop -- --clients=N blocked threads, one blocking op each
//     (the paper's one-thread-per-client harness);
//   * open-loop   -- --sessions=N --inflight=K pipelined async requests
//     per session (defaults 8x8). Pipelined commits share the simulated
//     backing-store round trip per ingress batch, the way a real client
//     overlaps its in-flight commits on the wire.
#include <cstdio>

#include "baselines/titan_like.h"
#include "harness.h"
#include "programs/standard_programs.h"
#include "workload/tao_workload.h"

using namespace weaver;
using namespace weaver::bench;

namespace {

struct MixResult {
  double weaver_tps = 0;           // closed-loop blocking sessions
  double weaver_openloop_tps = 0;  // pipelined sessions
  double titan_tps = 0;
};

MixResult RunMix(const workload::GeneratedGraph& graph, double read_fraction,
                 std::size_t clients, const OpenLoopOptions& open_loop,
                 std::uint64_t duration_ms, const std::string& label,
                 BenchJson* json) {
  MixResult out;

  // ---- Weaver ------------------------------------------------------------
  {
    WeaverOptions options;
    options.num_gatekeepers = 2;
    options.num_shards = 2;
    options.start = false;
    // Durable bulk load: this workload WRITES to loaded vertices, and
    // transactional writes read the vertex blobs from the backing store.
    // Model the HyperDex Warp network round trip writes pay in the
    // paper's deployment (EXPERIMENTS.md documents the calibration).
    options.kv_commit_delay_micros = 5000;
    ApplyDurability(&options);
    auto db = Weaver::Open(options);
    LoadGraph(db.get(), graph);
    db->Start();
    WeaverClient client(db.get());

    // Closed-loop: one session per blocked client thread.
    {
      std::vector<std::unique_ptr<Session>> sessions;
      std::vector<workload::TaoWorkload> mixes;
      for (std::size_t c = 0; c < clients; ++c) {
        sessions.push_back(client.OpenSession());
        mixes.emplace_back(graph.num_nodes, read_fraction, 0.8, 1000 + c);
      }
      Histogram closed_lat;
      const std::uint64_t ops = RunClients(
          clients, duration_ms,
          [&](std::size_t c) {
            auto& mix = mixes[c];
            Session& session = *sessions[c];
            const auto op = mix.NextOp();
            const NodeId n = mix.PickNode();
            switch (op) {
              case workload::TaoOp::kGetEdges:
                return session.RunProgram(programs::kGetEdges, n).ok();
              case workload::TaoOp::kCountEdges:
                return session.RunProgram(programs::kCountEdges, n).ok();
              case workload::TaoOp::kGetNode:
                return session.RunProgram(programs::kGetNode, n).ok();
              case workload::TaoOp::kCreateEdge:
                return session
                    .RunTransaction([&](Transaction& tx) {
                      tx.CreateEdge(n, mix.PickUniformNode());
                      return Status::Ok();
                    })
                    .ok();
              case workload::TaoOp::kDeleteEdge:
                return session
                    .RunTransaction([&](Transaction& tx) {
                      auto snap = tx.GetNode(n);
                      if (!snap.ok()) return snap.status();
                      if (snap->edges.empty()) return Status::Ok();
                      return tx.DeleteEdge(n, snap->edges[0].id);
                    })
                    .ok();
            }
            return false;
          },
          &closed_lat);
      out.weaver_tps = ops / (duration_ms / 1e3);
      json->Latency(label + "_closed_loop", closed_lat);
    }

    // Open-loop: N sessions x K pipelined requests. Only successful
    // commits count, matching the closed-loop arm (which retries aborts
    // and counts the final success); open-loop drivers do not retry, so
    // an aborted write is simply a lost op.
    {
      std::vector<workload::TaoWorkload> mixes;
      for (std::size_t s = 0; s < open_loop.sessions; ++s) {
        mixes.emplace_back(graph.num_nodes, read_fraction, 0.8, 3000 + s);
      }
      Histogram open_lat;
      const std::uint64_t ops = RunOpenLoopSessions(
          &client, open_loop.sessions, open_loop.inflight, duration_ms,
          [&](std::size_t s, Session& session) -> OpenLoopWait {
            auto& mix = mixes[s];
            const auto op = mix.NextOp();
            const NodeId n = mix.PickNode();
            switch (op) {
              case workload::TaoOp::kGetEdges:
              case workload::TaoOp::kCountEdges:
              case workload::TaoOp::kGetNode: {
                const std::string_view name =
                    op == workload::TaoOp::kGetEdges
                        ? programs::kGetEdges
                        : op == workload::TaoOp::kCountEdges
                              ? programs::kCountEdges
                              : programs::kGetNode;
                auto pending = session.RunProgramAsync(name, n);
                return [pending]() mutable { return pending.Wait().ok(); };
              }
              case workload::TaoOp::kCreateEdge: {
                Transaction tx = session.BeginTx();
                tx.CreateEdge(n, mix.PickUniformNode());
                auto pending = session.CommitAsync(std::move(tx));
                return [pending]() mutable { return pending.Wait().ok(); };
              }
              case workload::TaoOp::kDeleteEdge: {
                Transaction tx = session.BeginTx();
                auto snap = tx.GetNode(n);
                if (!snap.ok() || snap->edges.empty()) {
                  return [] { return true; };  // nothing to delete
                }
                (void)tx.DeleteEdge(n, snap->edges[0].id);
                auto pending = session.CommitAsync(std::move(tx));
                return [pending]() mutable { return pending.Wait().ok(); };
              }
            }
            return [] { return false; };
          },
          &open_lat);
      out.weaver_openloop_tps = ops / (duration_ms / 1e3);
      json->Latency(label + "_open_loop", open_lat);
    }
    // Last mix wins the embedded snapshot (one deployment per mix).
    json->Metrics(db->metrics().Snapshot());
  }

  // ---- Titan-like --------------------------------------------------------
  {
    baselines::TitanLikeDb titan;  // default simulated 2PC phase delay
    for (NodeId v = 1; v <= graph.num_nodes; ++v) titan.LoadNode(v);
    for (const auto& [src, dst] : graph.edges) titan.LoadEdge(src, dst);

    std::vector<workload::TaoWorkload> mixes;
    for (std::size_t c = 0; c < clients; ++c) {
      mixes.emplace_back(graph.num_nodes, read_fraction, 0.8, 2000 + c);
    }
    const std::uint64_t ops = RunClients(
        clients, duration_ms,
        [&](std::size_t c) {
          auto& mix = mixes[c];
          const auto op = mix.NextOp();
          const NodeId n = mix.PickNode();
          std::uint64_t scratch_count = 0;
          std::vector<NodeId> scratch_targets;
          switch (op) {
            case workload::TaoOp::kGetEdges:
              return titan.GetEdges(n, &scratch_targets).ok();
            case workload::TaoOp::kCountEdges:
              return titan.CountEdges(n, &scratch_count).ok();
            case workload::TaoOp::kGetNode:
              return titan.GetNode(n, &scratch_count).ok();
            case workload::TaoOp::kCreateEdge:
              return titan.CreateEdge(n, mix.PickUniformNode()).ok();
            case workload::TaoOp::kDeleteEdge: {
              if (!titan.GetEdges(n, &scratch_targets).ok() ||
                  scratch_targets.empty()) {
                return true;  // nothing to delete
              }
              return titan.DeleteEdge(n, scratch_targets[0]).ok();
            }
          }
          return false;
        });
    out.titan_tps = ops / (duration_ms / 1e3);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  SetDurability(ParseDurability(argc, argv));
  OpenLoopOptions open_loop = ParseOpenLoop(argc, argv);
  ParseJsonOutput(argc, argv);
  BenchJson json("fig9_social_throughput");
  PrintHeader("bench_fig9_social_throughput",
              "Fig 9a/9b + Table 1 (social network throughput)");

  const auto graph = workload::MakePowerLawGraph(
      FullScale() ? 100000 : 20000, 10, 42);
  const std::size_t clients =
      ParseClients(argc, argv, FullScale() ? 50 : 16);
  const std::uint64_t duration_ms = FullScale() ? 8000 : 2500;
  std::printf(
      "graph: %llu vertices, %zu edges; %zu blocking clients; open loop "
      "%zux%zu; durability=%s\n\n",
      static_cast<unsigned long long>(graph.num_nodes), graph.edges.size(),
      clients, open_loop.sessions, open_loop.inflight,
      DurabilityName(CurrentDurability()));

  std::printf("%22s | %12s | %14s | %12s | %7s | %8s\n", "workload",
              "weaver_tx/s", "pipelined_tx/s", "titan_tx/s", "ratio",
              "pipeline");
  const struct {
    const char* name;
    const char* key;  // BenchJson field prefix
    double read_fraction;
  } kMixes[] = {
      {"Fig9a TAO 99.8% reads", "tao998", 0.998},
      {"Fig9b 75% reads", "r75", 0.75},
  };
  for (const auto& mix : kMixes) {
    const MixResult r = RunMix(graph, mix.read_fraction, clients, open_loop,
                               duration_ms, mix.key, &json);
    json.Number(std::string(mix.key) + "_weaver_tps", r.weaver_tps);
    json.Number(std::string(mix.key) + "_weaver_openloop_tps",
                r.weaver_openloop_tps);
    json.Number(std::string(mix.key) + "_titan_tps", r.titan_tps);
    std::printf("%22s | %12s | %14s | %12s | %6.1fx | %7.2fx\n", mix.name,
                FormatRate(r.weaver_tps).c_str(),
                FormatRate(r.weaver_openloop_tps).c_str(),
                FormatRate(r.titan_tps).c_str(),
                r.weaver_tps / (r.titan_tps > 0 ? r.titan_tps : 1),
                r.weaver_openloop_tps /
                    (r.weaver_tps > 0 ? r.weaver_tps : 1));
  }
  std::printf(
      "\nexpected shape: Weaver >> Titan on the read-heavy TAO mix "
      "(paper: 10.9x);\nratio compresses at 75%% reads (paper: 1.5x); "
      "Titan roughly flat across mixes;\npipelined sessions sustain >= "
      "the blocking-client rate (pipeline column).\n");
  RemoveBenchDataDirs();
  return 0;
}
