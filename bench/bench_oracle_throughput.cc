// Timeline-oracle microbenchmark (paper §3.4): the oracle is chain
// replicated; updates execute at the head while read-only order queries
// are served by any replica, scaling reads to ~6M queries/sec on the
// paper's 12-server chain.
//
// This bench measures (a) single-replica query throughput over a
// pre-populated dependency DAG, (b) multi-threaded read scaling through
// the simulated chain, and (c) order-establishment (write) throughput at
// the head. Uses google-benchmark.
// Also home to the backing-store group-commit benchmark: persistence
// overhead (off vs buffered WAL vs group-commit fsync) tracked across PRs
// via the shared --durability knob machinery (bench/harness.h).
#include <benchmark/benchmark.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "common/random.h"
#include "harness.h"
#include "kvstore/kvstore.h"
#include "oracle/chain.h"
#include "oracle/timeline_oracle.h"

namespace weaver {
namespace {

std::vector<RefinableTimestamp> MakeEvents(std::size_t n,
                                           std::size_t num_gks) {
  std::vector<RefinableTimestamp> events;
  std::vector<VectorClock> clocks(num_gks, VectorClock(num_gks));
  Rng rng(4);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t gk = rng.Uniform(num_gks);
    if (rng.Chance(0.3)) clocks[gk].Merge(clocks[rng.Uniform(num_gks)]);
    const std::uint64_t seq = clocks[gk].Tick(gk);
    events.emplace_back(clocks[gk], static_cast<GatekeeperId>(gk), seq);
  }
  return events;
}

void BM_OracleQueryClockComparable(benchmark::State& state) {
  auto events = MakeEvents(1024, 2);
  TimelineOracle oracle;
  Rng rng(1);
  for (auto _ : state) {
    const auto& a = events[rng.Uniform(events.size())];
    const auto& b = events[rng.Uniform(events.size())];
    benchmark::DoNotOptimize(oracle.QueryOrder(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OracleQueryClockComparable);

void BM_OracleQueryDagResolved(benchmark::State& state) {
  // All events pairwise concurrent (one per gatekeeper), pre-ordered into
  // a chain: queries hit the DAG search path.
  constexpr std::size_t kEvents = 64;
  std::vector<RefinableTimestamp> events;
  for (std::size_t i = 0; i < kEvents; ++i) {
    std::vector<std::uint64_t> c(kEvents, 0);
    c[i] = 1;
    events.emplace_back(VectorClock(0, std::move(c)),
                        static_cast<GatekeeperId>(i), 1);
  }
  TimelineOracle oracle;
  for (std::size_t i = 0; i + 1 < kEvents; ++i) {
    oracle.OrderPair(events[i], events[i + 1],
                     OrderPreference::kPreferFirst);
  }
  Rng rng(2);
  for (auto _ : state) {
    const std::size_t i = rng.Uniform(kEvents);
    const std::size_t j = rng.Uniform(kEvents);
    if (i == j) continue;
    benchmark::DoNotOptimize(oracle.QueryOrder(events[i], events[j]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OracleQueryDagResolved);

void BM_OracleChainReadScaling(benchmark::State& state) {
  static OracleChain* chain = nullptr;
  static std::vector<RefinableTimestamp>* events = nullptr;
  if (state.thread_index() == 0) {
    chain = new OracleChain(12);  // the paper's 12-server chain
    events = new std::vector<RefinableTimestamp>(MakeEvents(1024, 3));
    for (std::size_t i = 0; i + 1 < 64; ++i) {
      chain->OrderAtHead((*events)[i], (*events)[i + 1],
                         OrderPreference::kPreferFirst);
    }
  }
  Rng rng(100 + static_cast<std::uint64_t>(state.thread_index()));
  for (auto _ : state) {
    const auto& a = (*events)[rng.Uniform(events->size())];
    const auto& b = (*events)[rng.Uniform(events->size())];
    benchmark::DoNotOptimize(chain->QueryAnyReplica(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  if (state.thread_index() == 0) {
    delete chain;
    delete events;
  }
}
BENCHMARK(BM_OracleChainReadScaling)->Threads(1)->Threads(2)->Threads(4);

void BM_OracleOrderEstablishment(benchmark::State& state) {
  // Fresh concurrent pairs each iteration: the expensive head-of-chain
  // write path.
  std::uint64_t seq = 1;
  TimelineOracle oracle;
  for (auto _ : state) {
    RefinableTimestamp a(VectorClock(0, {seq, 0}), 0, seq);
    RefinableTimestamp b(VectorClock(0, {0, seq}), 1, seq);
    benchmark::DoNotOptimize(
        oracle.OrderPair(a, b, OrderPreference::kPreferFirst));
    ++seq;
    if (seq % 4096 == 0) {
      // GC in the background keeps the DAG bounded, as in deployment.
      oracle.CollectBefore(VectorClock(0, {seq - 1024, seq - 1024}));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OracleOrderEstablishment);

// --- Backing-store group commit ---------------------------------------------
//
// Each iteration runs `threads` client threads, each committing
// `kCommitsPerThread` small read-modify-write transactions against one
// KvStore configured per the durability arg. With --durability-style
// fsync, concurrent committers share fdatasync rounds; the reported
// wal_group_size counter (appends per sync) shows how well group commit
// amortizes the sync cost as client parallelism grows.
void BM_BackingStoreGroupCommit(benchmark::State& state) {
  using bench::Durability;
  const auto mode = static_cast<Durability>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  constexpr int kCommitsPerThread = 64;

  std::string dir;
  std::unique_ptr<KvStore> kv;
  if (mode == Durability::kOff) {
    kv = std::make_unique<KvStore>(64);
  } else {
    std::string templ =
        (std::filesystem::temp_directory_path() / "weaver_gc_XXXXXX")
            .string();
    const char* made = ::mkdtemp(templ.data());
    if (made == nullptr) {
      state.SkipWithError("mkdtemp failed");
      return;
    }
    dir = made;
    StorageOptions opts;
    opts.data_dir = dir;
    opts.fsync = mode == Durability::kFsync ? FsyncPolicy::kAlways
                                            : FsyncPolicy::kNever;
    auto opened = KvStore::Open(64, opts);
    if (!opened.ok()) {
      state.SkipWithError(opened.status().ToString().c_str());
      return;
    }
    kv = std::move(opened).value();
  }

  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < kCommitsPerThread; ++i) {
          auto tx = kv->Begin();
          tx.Put("w" + std::to_string(t) + ":" + std::to_string(i & 7),
                 std::to_string(i));
          benchmark::DoNotOptimize(tx.Commit());
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  state.SetItemsProcessed(state.iterations() * threads * kCommitsPerThread);
  state.SetLabel(std::string("durability=") +
                 bench::DurabilityName(mode));
  if (kv->durable()) {
    const auto& wal = kv->storage_engine()->wal_stats();
    const auto syncs = wal.syncs.load();
    state.counters["wal_appends"] =
        static_cast<double>(wal.appends.load());
    state.counters["wal_syncs"] = static_cast<double>(syncs);
    state.counters["wal_group_size"] =
        syncs > 0 ? static_cast<double>(wal.appends.load()) /
                        static_cast<double>(syncs)
                  : 0.0;
  }
  kv.reset();
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
}
BENCHMARK(BM_BackingStoreGroupCommit)
    ->ArgNames({"durability", "clients"})
    ->ArgsProduct({{0, 1, 2}, {1, 4, 16}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace weaver

BENCHMARK_MAIN();
