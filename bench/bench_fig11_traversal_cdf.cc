// Figure 11: CDF of reachability-query latency on a small Twitter-like
// graph, Weaver vs GraphLab (sync and async engines).
//
// Paper result: Weaver achieves 4.3x lower average traversal latency than
// async GraphLab and 9.4x lower than sync GraphLab, despite supporting
// concurrent transactional updates; latency variance is high for all
// systems because the work per query varies wildly. The structural causes
// reproduced here: GraphLab pays a per-query engine run over the whole
// vertex set plus per-superstep barriers (sync) or per-edge neighbor
// locking (async), while Weaver's node program touches only the vertices
// the query actually reaches.
//
// As in the paper, queries are reachability checks between vertices chosen
// uniformly at random, executed sequentially by a single client.
#include <cstdio>

#include "baselines/graphlab_like.h"
#include "common/clock.h"
#include "common/random.h"
#include "harness.h"
#include "programs/standard_programs.h"

using namespace weaver;
using namespace weaver::bench;

int main(int argc, char** argv) {
  ParseJsonOutput(argc, argv);
  BenchJson json("fig11_traversal_cdf");
  PrintHeader("bench_fig11_traversal_cdf", "Fig 11 (traversal latency CDF)");

  // Paper: 1.76M edges between uniformly random vertices. Scaled down.
  const std::uint64_t num_nodes = FullScale() ? 80000 : 20000;
  const std::uint64_t num_edges = FullScale() ? 700000 : 120000;
  const auto graph = workload::MakeUniformGraph(num_nodes, num_edges, 21);
  const int kQueries = FullScale() ? 60 : 25;
  std::printf("graph: %llu vertices, %zu edges; %d sequential queries\n\n",
              static_cast<unsigned long long>(num_nodes), graph.edges.size(),
              kQueries);

  // Query set: identical for all three systems.
  Rng rng(5);
  std::vector<std::pair<NodeId, NodeId>> queries;
  for (int i = 0; i < kQueries; ++i) {
    queries.emplace_back(1 + rng.Uniform(num_nodes),
                         1 + rng.Uniform(num_nodes));
  }

  // ---- Weaver --------------------------------------------------------------
  Histogram weaver_lat;
  std::uint64_t weaver_reachable = 0;
  {
    WeaverOptions options;
    options.num_gatekeepers = 2;
    options.num_shards = 2;
    options.start = false;
    options.bulk_load_durable = false;
    options.max_program_waves = 1 << 20;
    auto db = Weaver::Open(options);
    LoadGraph(db.get(), graph);
    db->Start();
    for (const auto& [src, dst] : queries) {
      programs::BfsParams params;
      params.target = dst;
      const std::uint64_t t0 = NowNanos();
      auto result = db->RunProgram(programs::kBfs, src, params.Encode());
      weaver_lat.Record(NowNanos() - t0);
      if (result.ok()) {
        for (const auto& [_, ret] : result->returns) {
          if (ret == "found") {
            ++weaver_reachable;
            break;
          }
        }
      }
    }
    // Decentralized-execution accounting (docs/node_programs.md), read
    // from the metrics registry: the old barrier design paid 2 blocking
    // coordinator round trips per wave per touched shard; now the
    // coordinator only receives one-way accounting deltas
    // (coord.accounting_msgs).
    PrintProgramAccounting(db.get(), "weaver accounting");
    PrintBackpressure(db.get());
    json.Metrics(db->metrics().Snapshot());
    std::printf("\n");
  }

  // ---- GraphLab-like (sync + async) ------------------------------------------
  baselines::GraphLabLikeEngine::Options glopts;
  glopts.num_workers = 4;
  // Distributed-cost calibration (see EXPERIMENTS.md): 2 ms job launch,
  // 3 ms cluster barrier per gather/apply/scatter phase, 3 us per
  // cross-partition edge message.
  glopts.engine_start_micros = 2000;
  glopts.barrier_micros = 3000;
  glopts.remote_edge_micros = 3;
  baselines::GraphLabLikeEngine engine(num_nodes, graph.edges, glopts);
  Histogram sync_lat, async_lat;
  std::uint64_t sync_reachable = 0, async_reachable = 0;
  for (const auto& [src, dst] : queries) {
    const std::uint64_t t0 = NowNanos();
    sync_reachable += engine.ReachableSync(src, dst) ? 1 : 0;
    sync_lat.Record(NowNanos() - t0);
  }
  for (const auto& [src, dst] : queries) {
    const std::uint64_t t0 = NowNanos();
    async_reachable += engine.ReachableAsync(src, dst) ? 1 : 0;
    async_lat.Record(NowNanos() - t0);
  }

  // Same answers everywhere (sanity).
  if (sync_reachable != async_reachable ||
      sync_reachable != weaver_reachable) {
    std::printf("WARNING: systems disagree on reachability counts "
                "(weaver=%llu sync=%llu async=%llu)\n",
                static_cast<unsigned long long>(weaver_reachable),
                static_cast<unsigned long long>(sync_reachable),
                static_cast<unsigned long long>(async_reachable));
  }

  auto print_cdf = [](const char* label, const Histogram& h) {
    std::printf("%-18s %s\n", label, h.Summary().c_str());
    std::printf("  CDF(s):");
    for (double p : {25.0, 50.0, 75.0, 90.0, 99.0}) {
      std::printf(" p%.0f=%.4f", p, h.Percentile(p) / 1e9);
    }
    std::printf("\n");
  };
  print_cdf("weaver", weaver_lat);
  print_cdf("graphlab(async)", async_lat);
  print_cdf("graphlab(sync)", sync_lat);

  json.Latency("weaver_traversal", weaver_lat);
  json.Latency("graphlab_async", async_lat);
  json.Latency("graphlab_sync", sync_lat);
  json.Number("async_over_weaver_mean", async_lat.Mean() / weaver_lat.Mean());
  json.Number("sync_over_weaver_mean", sync_lat.Mean() / weaver_lat.Mean());
  std::printf("\nmean latency ratios: async/weaver=%.1fx sync/weaver=%.1fx "
              "(paper: 4.3x / 9.4x)\n",
              async_lat.Mean() / weaver_lat.Mean(),
              sync_lat.Mean() / weaver_lat.Mean());
  std::printf("expected shape: weaver lowest; async between; sync highest; "
              "high variance everywhere.\n");
  return 0;
}
