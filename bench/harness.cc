#include "harness.h"

#include <stdlib.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>

#include "common/clock.h"

namespace weaver {
namespace bench {

bool FullScale() {
  const char* scale = std::getenv("WEAVER_BENCH_SCALE");
  return scale != nullptr && std::string(scale) == "full";
}

void PrintHeader(const std::string& name, const std::string& figure) {
  std::printf("==============================================================\n");
  std::printf("%s  --  reproduces %s  (scale: %s)\n", name.c_str(),
              figure.c_str(), FullScale() ? "full" : "quick");
  std::printf("==============================================================\n");
}

void LoadGraph(Weaver* db, const workload::GeneratedGraph& graph) {
  for (NodeId v = 1; v <= graph.num_nodes; ++v) {
    db->BulkCreateNode(v);
  }
  for (const auto& [src, dst] : graph.edges) {
    db->BulkCreateEdge(src, dst, {{"rel", "follows"}});
  }
  db->FinishBulkLoad();
}

void LoadBlockchain(Weaver* db, const workload::Blockchain& chain) {
  for (const auto& block : chain.blocks) {
    db->BulkCreateNode(block.id,
                       {{"height", std::to_string(block.height)},
                        {"ntx", std::to_string(block.txs.size())}});
    for (const auto& tx : block.txs) {
      db->BulkCreateNode(tx.id, {{"size", std::to_string(tx.size_bytes)},
                                 {"fee", std::to_string(tx.fee)}});
      db->BulkCreateEdge(block.id, tx.id, {{"type", "in_block"}});
      for (const auto& [target, value] : tx.outputs) {
        db->BulkCreateEdge(tx.id, target,
                           {{"type", "spend"},
                            {"value", std::to_string(value)}});
      }
    }
  }
  db->FinishBulkLoad();
}

std::uint64_t RunClients(std::size_t num_clients, std::uint64_t duration_ms,
                         const std::function<bool(std::size_t)>& op,
                         Histogram* latencies) {
  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> stop{false};
  std::vector<Histogram> per_thread(num_clients);
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t t0 = NowNanos();
        const bool counted = op(c);
        const std::uint64_t dt = NowNanos() - t0;
        if (counted) {
          completed.fetch_add(1, std::memory_order_relaxed);
          per_thread[c].Record(dt);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (auto& c : clients) c.join();
  if (latencies != nullptr) {
    for (const auto& h : per_thread) latencies->Merge(h);
  }
  return completed.load();
}

namespace {

Durability g_durability = Durability::kOff;
std::mutex g_data_dirs_mu;
std::vector<std::string> g_data_dirs;

Durability DurabilityFromName(const std::string& name) {
  if (name == "buffered") return Durability::kBuffered;
  if (name == "fsync") return Durability::kFsync;
  return Durability::kOff;
}

}  // namespace

const char* DurabilityName(Durability d) {
  switch (d) {
    case Durability::kOff:
      return "off";
    case Durability::kBuffered:
      return "buffered";
    case Durability::kFsync:
      return "fsync";
  }
  return "off";
}

Durability ParseDurability(int argc, char** argv) {
  constexpr std::string_view kFlag = "--durability=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, kFlag.size()) == kFlag) {
      return DurabilityFromName(std::string(arg.substr(kFlag.size())));
    }
  }
  const char* env = std::getenv("WEAVER_BENCH_DURABILITY");
  return env != nullptr ? DurabilityFromName(env) : Durability::kOff;
}

void SetDurability(Durability d) { g_durability = d; }

Durability CurrentDurability() { return g_durability; }

std::string ApplyDurability(WeaverOptions* options) {
  if (g_durability == Durability::kOff) return "";
  std::string templ =
      (std::filesystem::temp_directory_path() / "weaver_bench_XXXXXX")
          .string();
  char* dir = ::mkdtemp(templ.data());
  if (dir == nullptr) return "";
  options->storage.data_dir = dir;
  options->storage.fsync = g_durability == Durability::kFsync
                               ? FsyncPolicy::kAlways
                               : FsyncPolicy::kNever;
  {
    std::lock_guard<std::mutex> lk(g_data_dirs_mu);
    g_data_dirs.push_back(dir);
  }
  return dir;
}

void RemoveBenchDataDirs() {
  std::lock_guard<std::mutex> lk(g_data_dirs_mu);
  for (const std::string& dir : g_data_dirs) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  g_data_dirs.clear();
}

namespace {

std::size_t ParseSizeFlag(int argc, char** argv, std::string_view flag,
                          std::size_t fallback) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, flag.size()) == flag) {
      return static_cast<std::size_t>(
          std::strtoull(arg.data() + flag.size(), nullptr, 10));
    }
  }
  return fallback;
}

}  // namespace

OpenLoopOptions ParseOpenLoop(int argc, char** argv) {
  OpenLoopOptions o;
  o.sessions = ParseSizeFlag(argc, argv, "--sessions=", o.sessions);
  o.inflight = ParseSizeFlag(argc, argv, "--inflight=", o.inflight);
  if (o.sessions == 0) o.sessions = 1;
  if (o.inflight == 0) o.inflight = 1;
  return o;
}

std::size_t ParseClients(int argc, char** argv, std::size_t fallback) {
  return ParseSizeFlag(argc, argv, "--clients=", fallback);
}

std::uint64_t RunOpenLoopSessions(
    WeaverClient* client, std::size_t num_sessions, std::size_t inflight,
    std::uint64_t duration_ms,
    const std::function<OpenLoopWait(std::size_t, Session&)>& submit,
    Histogram* latencies) {
  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> stop{false};
  std::vector<Histogram> per_session(num_sessions);
  std::vector<std::thread> drivers;
  drivers.reserve(num_sessions);
  for (std::size_t s = 0; s < num_sessions; ++s) {
    drivers.emplace_back([&, s] {
      auto session = client->OpenSession();
      std::deque<std::pair<std::uint64_t, OpenLoopWait>> window;
      while (!stop.load(std::memory_order_relaxed)) {
        while (window.size() < inflight &&
               !stop.load(std::memory_order_relaxed)) {
          // Sequence the clock read before submit(): as function
          // arguments the two calls would be unsequenced, and submit may
          // do synchronous work (reads) that belongs in the latency.
          const std::uint64_t t0 = NowNanos();
          window.emplace_back(t0, submit(s, *session));
        }
        if (window.empty()) break;
        auto [t0, wait] = std::move(window.front());
        window.pop_front();
        if (wait()) {
          completed.fetch_add(1, std::memory_order_relaxed);
          per_session[s].Record(NowNanos() - t0);
        }
      }
      // Drain: everything submitted inside the window still completes.
      for (auto& [t0, wait] : window) {
        if (wait()) {
          completed.fetch_add(1, std::memory_order_relaxed);
          per_session[s].Record(NowNanos() - t0);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (auto& d : drivers) d.join();
  if (latencies != nullptr) {
    for (const auto& h : per_session) latencies->Merge(h);
  }
  return completed.load();
}

namespace {

/// Sums "<instance>.<suffix>" over every instance in the snapshot (e.g.
/// every shard's waves_executed). Matches on the ".suffix" tail, so
/// suffixes must not collide across instrument families.
std::uint64_t SumCounterSuffix(const obs::MetricsSnapshot& snap,
                               const std::string& suffix) {
  const std::string tail = "." + suffix;
  std::uint64_t total = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.size() > tail.size() &&
        name.compare(name.size() - tail.size(), tail.size(), tail) == 0) {
      total += value;
    }
  }
  return total;
}

}  // namespace

void PrintBackpressure(Weaver* db) {
  const obs::MetricsSnapshot snap = db->metrics().Snapshot();
  for (std::size_t g = 0; g < db->num_gatekeepers(); ++g) {
    const std::string p = "gk" + std::to_string(g) + ".";
    std::printf("  gk%zu: nop_backoff=x%lld nops_skipped=%llu nops_sent=%llu\n",
                g, static_cast<long long>(snap.GaugeValue(p + "nop_backoff")),
                static_cast<unsigned long long>(
                    snap.CounterValue(p + "nops_skipped")),
                static_cast<unsigned long long>(
                    snap.CounterValue(p + "nops_sent")));
  }
  for (std::size_t s = 0; s < db->num_shards(); ++s) {
    const std::string p = "shard" + std::to_string(s) + ".";
    std::printf("  shard%zu: inbox_depth=%lld queued_txs=%lld\n", s,
                static_cast<long long>(snap.GaugeValue(p + "inbox_depth")),
                static_cast<long long>(snap.GaugeValue(p + "queued_txs")));
  }
}

void PrintProgramAccounting(Weaver* db, const char* label) {
  const obs::MetricsSnapshot snap = db->metrics().Snapshot();
  const std::uint64_t programs =
      snap.CounterValue("coord.programs_completed") +
      snap.CounterValue("coord.programs_aborted");
  if (programs == 0) return;
  const double n = static_cast<double>(programs);
  const std::uint64_t waves = SumCounterSuffix(snap, "waves_executed");
  const std::uint64_t hops = snap.CounterValue("coord.program_hops");
  const std::uint64_t vertices = SumCounterSuffix(snap, "vertices_executed");
  const std::uint64_t batches = SumCounterSuffix(snap, "hop_batches_sent");
  const std::uint64_t coord_msgs = snap.CounterValue("coord.accounting_msgs");
  std::printf(
      "%s: programs=%llu waves=%llu (%.1f/q) hops=%llu (%.0f/q) "
      "vertices=%llu (%.0f/q) shard_batches=%llu (%.1f/q) "
      "coordinator_msgs=%llu (%.1f/q)\n",
      label, static_cast<unsigned long long>(programs),
      static_cast<unsigned long long>(waves), waves / n,
      static_cast<unsigned long long>(hops), hops / n,
      static_cast<unsigned long long>(vertices), vertices / n,
      static_cast<unsigned long long>(batches), batches / n,
      static_cast<unsigned long long>(coord_msgs), coord_msgs / n);
  std::printf("%s ingress: hops_pruned=%llu hops_coalesced=%llu\n", label,
              static_cast<unsigned long long>(
                  SumCounterSuffix(snap, "hops_pruned")),
              static_cast<unsigned long long>(
                  SumCounterSuffix(snap, "hops_coalesced")));
}

namespace {

std::string g_json_dir;  // empty = --json not given

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void ParseJsonOutput(int argc, char** argv) {
  constexpr std::string_view kFlag = "--json=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, kFlag.size()) == kFlag) {
      g_json_dir = std::string(arg.substr(kFlag.size()));
    } else if (arg == "--json" && i + 1 < argc) {
      g_json_dir = argv[i + 1];
    }
  }
  if (g_json_dir.empty()) {
    const char* env = std::getenv("WEAVER_BENCH_JSON");
    if (env != nullptr) g_json_dir = env;
  }
}

bool JsonEnabled() { return !g_json_dir.empty(); }

BenchJson::BenchJson(std::string name) : name_(std::move(name)) {
  Text("bench", name_);
  Text("scale", FullScale() ? "full" : "quick");
}

BenchJson::~BenchJson() {
  if (!JsonEnabled()) return;
  std::error_code ec;
  std::filesystem::create_directories(g_json_dir, ec);
  const std::string path =
      (std::filesystem::path(g_json_dir) / ("BENCH_" + name_ + ".json"))
          .string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  bool first = true;
  for (const Field& field : fields_) {
    std::fprintf(f, "%s  \"%s\": %s", first ? "" : ",\n",
                 JsonEscape(field.key).c_str(), field.literal.c_str());
    first = false;
  }
  if (!metrics_json_.empty()) {
    std::fprintf(f, "%s  \"metrics\": %s", first ? "" : ",\n",
                 metrics_json_.c_str());
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

void BenchJson::Number(const std::string& key, double value) {
  fields_.push_back(Field{key, JsonDouble(value)});
}

void BenchJson::Integer(const std::string& key, std::uint64_t value) {
  fields_.push_back(Field{key, std::to_string(value)});
}

void BenchJson::Text(const std::string& key, const std::string& value) {
  fields_.push_back(Field{key, "\"" + JsonEscape(value) + "\""});
}

void BenchJson::Latency(const std::string& key, const Histogram& h) {
  std::string obj = "{\"count\": " + std::to_string(h.count()) +
                    ", \"mean_ms\": " + JsonDouble(h.Mean() / 1e6) +
                    ", \"p50_ms\": " + JsonDouble(h.Percentile(50) / 1e6) +
                    ", \"p95_ms\": " + JsonDouble(h.Percentile(95) / 1e6) +
                    ", \"p99_ms\": " + JsonDouble(h.Percentile(99) / 1e6) +
                    ", \"max_ms\": " + JsonDouble(h.max() / 1e6) + "}";
  fields_.push_back(Field{key, std::move(obj)});
}

void BenchJson::Metrics(const obs::MetricsSnapshot& snapshot) {
  metrics_json_ = snapshot.ToJson();
}

std::string FormatRate(double ops_per_sec) {
  char buf[64];
  if (ops_per_sec >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", ops_per_sec / 1e6);
  } else if (ops_per_sec >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", ops_per_sec / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", ops_per_sec);
  }
  return buf;
}

}  // namespace bench
}  // namespace weaver
