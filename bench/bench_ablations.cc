// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   1. Ordering-decision caching at shards (paper §4.2: "shard servers can
//      cache these decisions"): resolver with vs without a cache.
//   2. Refinable timestamps vs oracle-only ordering (paper §3.5's first
//      extreme: "use the timeline oracle for maintaining the global
//      timeline for all requests"): per-pair ordering cost when clocks
//      resolve most pairs vs when every pair goes to the oracle.
//   3. Vector clock width: timestamp comparison cost as the gatekeeper
//      bank grows.
//   4. Multi-version read cost: property lookup vs version-chain length
//      (the price of historical queries, mitigated by GC §4.5).
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "graph/property.h"
#include "oracle/timeline_oracle.h"
#include "order/resolver.h"

namespace weaver {
namespace {

std::vector<RefinableTimestamp> ConcurrentEvents(std::size_t n) {
  std::vector<RefinableTimestamp> events;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::uint64_t> c(n, 0);
    c[i] = 1;
    events.emplace_back(VectorClock(0, std::move(c)),
                        static_cast<GatekeeperId>(i), 1);
  }
  return events;
}

// --- Ablation 1: decision cache on/off --------------------------------------

void BM_ResolveConcurrentWithCache(benchmark::State& state) {
  auto events = ConcurrentEvents(32);
  TimelineOracle oracle;
  OrderResolver resolver(&oracle);
  Rng rng(1);
  for (auto _ : state) {
    const auto& a = events[rng.Uniform(events.size())];
    const auto& b = events[rng.Uniform(events.size())];
    if (a.event_id() == b.event_id()) continue;
    benchmark::DoNotOptimize(
        resolver.Resolve(a, b, OrderPreference::kPreferFirst));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ResolveConcurrentWithCache);

void BM_ResolveConcurrentNoCache(benchmark::State& state) {
  auto events = ConcurrentEvents(32);
  TimelineOracle oracle;
  Rng rng(1);
  for (auto _ : state) {
    const auto& a = events[rng.Uniform(events.size())];
    const auto& b = events[rng.Uniform(events.size())];
    if (a.event_id() == b.event_id()) continue;
    // Every request goes to the oracle (no shard-side cache).
    benchmark::DoNotOptimize(
        oracle.OrderPair(a, b, OrderPreference::kPreferFirst));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ResolveConcurrentNoCache);

// --- Ablation 2: refinable timestamps vs oracle-only ordering ----------------

void BM_OrderingRefinable(benchmark::State& state) {
  // 95% of pairs clock-comparable (the announce-kept-up regime): the
  // proactive stage absorbs them; only the rest touch the oracle.
  TimelineOracle oracle;
  OrderResolver resolver(&oracle);
  std::vector<VectorClock> clocks(2, VectorClock(2));
  std::vector<RefinableTimestamp> comparable;
  Rng rng(2);
  for (int i = 0; i < 512; ++i) {
    const std::size_t gk = rng.Uniform(2);
    clocks[gk].Merge(clocks[1 - gk]);  // announce before every tick
    const std::uint64_t seq = clocks[gk].Tick(gk);
    comparable.emplace_back(clocks[gk], static_cast<GatekeeperId>(gk), seq);
  }
  auto concurrent = ConcurrentEvents(16);
  for (auto _ : state) {
    const bool hot = rng.Chance(0.05);
    const auto& pool = hot ? concurrent : comparable;
    const auto& a = pool[rng.Uniform(pool.size())];
    const auto& b = pool[rng.Uniform(pool.size())];
    if (a.event_id() == b.event_id()) continue;
    benchmark::DoNotOptimize(
        resolver.Resolve(a, b, OrderPreference::kPreferFirst));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OrderingRefinable);

void BM_OrderingOracleOnly(benchmark::State& state) {
  // The §3.5 extreme: every pair ordered by the (serialized) oracle DAG,
  // no vector-clock fast path. Modeled by forcing all-concurrent events.
  TimelineOracle oracle;
  auto events = ConcurrentEvents(64);
  Rng rng(3);
  for (auto _ : state) {
    const auto& a = events[rng.Uniform(events.size())];
    const auto& b = events[rng.Uniform(events.size())];
    if (a.event_id() == b.event_id()) continue;
    benchmark::DoNotOptimize(
        oracle.OrderPair(a, b, OrderPreference::kPreferFirst));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OrderingOracleOnly);

// --- Ablation 3: vector clock width -------------------------------------------

void BM_VClockCompare(benchmark::State& state) {
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<std::uint64_t> ca(width), cb(width);
  for (std::size_t i = 0; i < width; ++i) {
    ca[i] = rng.Uniform(1000);
    cb[i] = rng.Uniform(1000);
  }
  VectorClock a(0, ca), b(0, cb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Compare(b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_VClockCompare)->Arg(2)->Arg(6)->Arg(16)->Arg(64);

// --- Ablation 4: multi-version chain length ------------------------------------

void BM_PropertyReadVsChainLength(benchmark::State& state) {
  const int versions = static_cast<int>(state.range(0));
  PropertySet props;
  auto ts = [](std::uint64_t seq) {
    return RefinableTimestamp(VectorClock(0, {seq}), 0, seq);
  };
  for (int i = 1; i <= versions; ++i) {
    props.Assign("v", std::to_string(i), ts(static_cast<std::uint64_t>(i)));
  }
  OrderFn order = [](const RefinableTimestamp& a,
                     const RefinableTimestamp& b) { return a.Compare(b); };
  const auto read_ts = ts(static_cast<std::uint64_t>(versions) + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(props.ValueAt("v", read_ts, order));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PropertyReadVsChainLength)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

}  // namespace
}  // namespace weaver

BENCHMARK_MAIN();
