// Component tests of gatekeepers and shard servers, using deterministic
// deployments (start = false) driven by manual pumping.
#include <gtest/gtest.h>

#include "core/weaver.h"
#include "order/gatekeeper.h"
#include "shard/shard.h"

namespace weaver {
namespace {

WeaverOptions ManualOptions(std::size_t gks = 2, std::size_t shards = 2) {
  WeaverOptions o;
  o.num_gatekeepers = gks;
  o.num_shards = shards;
  o.start = false;  // no timers, no event loop threads
  o.tau_micros = 0;
  o.nop_period_micros = 0;
  return o;
}

TEST(GatekeeperTest, TimestampsAreMonotonicPerGatekeeper) {
  auto db = Weaver::Open(ManualOptions());
  Gatekeeper& gk = db->gatekeeper(0);
  RefinableTimestamp prev = gk.BeginProgram();
  for (int i = 0; i < 20; ++i) {
    const RefinableTimestamp cur = gk.BeginProgram();
    EXPECT_EQ(prev.Compare(cur), ClockOrder::kBefore);
    prev = cur;
  }
}

TEST(GatekeeperTest, AnnounceMergesPeerClocks) {
  auto db = Weaver::Open(ManualOptions(3, 1));
  Gatekeeper& gk0 = db->gatekeeper(0);
  Gatekeeper& gk1 = db->gatekeeper(1);
  // gk0 advances alone; gk1 knows nothing of it.
  for (int i = 0; i < 5; ++i) gk0.BeginProgram();
  EXPECT_EQ(gk1.SnapshotClock().Component(0), 0u);
  gk0.PumpAnnounce();
  EXPECT_EQ(gk1.SnapshotClock().Component(0), 5u);
  EXPECT_EQ(db->gatekeeper(2).SnapshotClock().Component(0), 5u);
  EXPECT_GE(gk0.stats().announces_sent.load(), 2u);
  EXPECT_GE(gk1.stats().announces_received.load(), 1u);
}

TEST(GatekeeperTest, TimestampsComparableAfterAnnounce) {
  auto db = Weaver::Open(ManualOptions(2, 1));
  const RefinableTimestamp t1 = db->gatekeeper(0).BeginProgram();
  // Without announce: concurrent.
  const RefinableTimestamp t2 = db->gatekeeper(1).BeginProgram();
  EXPECT_EQ(t1.Compare(t2), ClockOrder::kConcurrent);
  // After announce: gk1's next timestamp dominates t1.
  db->gatekeeper(0).PumpAnnounce();
  const RefinableTimestamp t3 = db->gatekeeper(1).BeginProgram();
  EXPECT_EQ(t1.Compare(t3), ClockOrder::kBefore);
}

TEST(GatekeeperTest, NopsAdvanceShardQueues) {
  auto db = Weaver::Open(ManualOptions(2, 2));
  db->gatekeeper(0).PumpNop();
  db->gatekeeper(1).PumpNop();
  db->shard(0).ProcessUntilIdle();
  // The shard executes the smaller head, then stops: once one queue goes
  // empty it cannot rule out a smaller timestamp still in flight from
  // that gatekeeper (this is exactly why NOPs must keep flowing, §4.2).
  EXPECT_EQ(db->shard(0).stats().nops_processed.load(), 1u);
  EXPECT_EQ(db->shard(0).QueuedTransactions(), 1u);
  // Another NOP round unblocks the remainder.
  db->gatekeeper(0).PumpNop();
  db->gatekeeper(1).PumpNop();
  db->shard(0).ProcessUntilIdle();
  EXPECT_EQ(db->shard(0).stats().nops_processed.load(), 3u);
}

TEST(GatekeeperTest, OldestActiveTracksPrograms) {
  auto db = Weaver::Open(ManualOptions(2, 1));
  Gatekeeper& gk = db->gatekeeper(0);
  const RefinableTimestamp p1 = gk.BeginProgram();
  for (int i = 0; i < 5; ++i) gk.BeginProgram();  // later programs
  const RefinableTimestamp oldest = gk.OldestActive();
  EXPECT_LE(oldest.clock.Component(0), p1.clock.Component(0));
  gk.EndProgram(p1);
  // With p1 gone the watermark may advance (it tracks live programs).
  const RefinableTimestamp next = gk.OldestActive();
  EXPECT_GE(next.clock.Component(0), oldest.clock.Component(0));
}

TEST(ShardTest, TransactionsApplyInTimestampOrderAcrossGatekeepers) {
  auto db = Weaver::Open(ManualOptions(2, 1));
  // Two writes to the same vertex via different gatekeepers; the second
  // is issued after an announce, so its timestamp strictly dominates.
  auto tx1 = db->BeginTx();
  const NodeId n = tx1.CreateNode();
  ASSERT_TRUE(tx1.AssignNodeProperty(n, "v", "first").ok());
  ASSERT_TRUE(db->Commit(&tx1).ok());
  auto tx2 = db->BeginTx();
  ASSERT_TRUE(tx2.AssignNodeProperty(n, "v", "second").ok());
  ASSERT_TRUE(db->Commit(&tx2).ok());

  db->PumpAll();
  Shard& shard = db->shard(0);
  EXPECT_GE(shard.stats().txs_applied.load(), 2u);
  const Node* node = shard.graph().FindNode(n);
  ASSERT_NE(node, nullptr);
  OrderFn plain = [](const RefinableTimestamp& a,
                     const RefinableTimestamp& b) { return a.Compare(b); };
  const RefinableTimestamp read_ts = db->gatekeeper(0).BeginProgram();
  EXPECT_EQ(node->props.ValueAt("v", read_ts, plain), "second");
}

TEST(ShardTest, EmptySlicesActAsNops) {
  auto db = Weaver::Open(ManualOptions(2, 2));
  // A transaction whose ops all land on shard 0 still advances shard 1's
  // queue head via the empty slice.
  auto tx = db->BeginTx();
  (void)tx.CreateNode();
  ASSERT_TRUE(db->Commit(&tx).ok());
  db->gatekeeper(0).PumpNop();
  db->gatekeeper(1).PumpNop();
  db->shard(1).ProcessUntilIdle();
  EXPECT_GE(db->shard(1).stats().nops_processed.load(), 1u);
}

TEST(ShardTest, NoSequenceViolationsUnderManualPumping) {
  auto db = Weaver::Open(ManualOptions(2, 2));
  for (int i = 0; i < 10; ++i) {
    auto tx = db->BeginTx();
    (void)tx.CreateNode();
    ASSERT_TRUE(db->Commit(&tx).ok());
    if (i % 3 == 0) db->PumpAll();
  }
  db->PumpAll();
  EXPECT_EQ(db->shard(0).stats().seq_violations.load(), 0u);
  EXPECT_EQ(db->shard(1).stats().seq_violations.load(), 0u);
}

TEST(ShardTest, ConcurrentHeadsExecuteWithoutOracleCommitment) {
  // Two gatekeepers commit without announcing: their timestamps are
  // concurrent. Concurrent transactions can never conflict (the
  // gatekeeper's last-update check forces conflicting writes onto
  // comparable timestamps), so the shard executes concurrent heads in
  // arrival order WITHOUT asking the oracle to commit an order --
  // committing one per concurrent pair made queue backlogs O(n^2) oracle
  // work and let a NOP flood outrun the drain rate. Both transactions
  // must still apply; the oracle stays out of it.
  auto db = Weaver::Open(ManualOptions(2, 1));
  auto seed = db->BeginTx();
  const NodeId a = seed.CreateNode();
  const NodeId b = seed.CreateNode();
  ASSERT_TRUE(db->Commit(&seed).ok());
  db->PumpAll();
  const auto oracle_before = db->oracle().stats().order_requests.load();

  // Round-robin sends tx1 to gk1 and tx2 to gk0 (seed used gk0).
  auto tx1 = db->BeginTx();
  ASSERT_TRUE(tx1.AssignNodeProperty(a, "k", "1").ok());
  ASSERT_TRUE(db->Commit(&tx1).ok());
  auto tx2 = db->BeginTx();
  ASSERT_TRUE(tx2.AssignNodeProperty(b, "k", "2").ok());
  ASSERT_TRUE(db->Commit(&tx2).ok());
  ASSERT_EQ(tx1.timestamp().Compare(tx2.timestamp()),
            ClockOrder::kConcurrent);

  db->gatekeeper(0).PumpNop();
  db->gatekeeper(1).PumpNop();
  db->shard(0).ProcessUntilIdle();
  EXPECT_EQ(db->oracle().stats().order_requests.load(), oracle_before);
  EXPECT_GE(db->shard(0).stats().txs_applied.load(), 3u);

  // Both writes are visible: execution order between the concurrent,
  // non-conflicting transactions did not matter.
  auto check = db->BeginTx();
  auto snap_a = check.GetNode(a);
  auto snap_b = check.GetNode(b);
  ASSERT_TRUE(snap_a.ok());
  ASSERT_TRUE(snap_b.ok());
  EXPECT_EQ(snap_a->GetProperty("k").value_or(""), "1");
  EXPECT_EQ(snap_b->GetProperty("k").value_or(""), "2");
}

TEST(ShardTest, ResolverCachesOracleDecisions) {
  TimelineOracle oracle;
  OrderResolver resolver(&oracle);
  const RefinableTimestamp a(VectorClock(0, {1, 0}), 0, 1);
  const RefinableTimestamp b(VectorClock(0, {0, 1}), 1, 1);
  const ClockOrder o1 = resolver.Resolve(a, b, OrderPreference::kPreferFirst);
  const auto requests = resolver.stats().oracle_requests;
  const ClockOrder o2 = resolver.Resolve(a, b, OrderPreference::kPreferFirst);
  const ClockOrder o3 = resolver.Resolve(b, a, OrderPreference::kPreferFirst);
  EXPECT_EQ(o1, o2);
  EXPECT_EQ(o3, FlipOrder(o1));
  EXPECT_EQ(resolver.stats().oracle_requests, requests);  // cache hits
  EXPECT_GE(resolver.stats().cache_hits, 2u);
}

TEST(ShardTest, ResolverVclockFastPathSkipsOracle) {
  TimelineOracle oracle;
  OrderResolver resolver(&oracle);
  const RefinableTimestamp a(VectorClock(0, {1, 0}), 0, 1);
  const RefinableTimestamp b(VectorClock(0, {2, 0}), 0, 2);
  EXPECT_EQ(resolver.Resolve(a, b, OrderPreference::kPreferFirst),
            ClockOrder::kBefore);
  EXPECT_EQ(resolver.stats().oracle_requests, 0u);
  EXPECT_EQ(oracle.stats().order_requests.load(), 0u);
}

TEST(ShardTest, ResolverTrimBeforeDropsDeadPairs) {
  TimelineOracle oracle;
  OrderResolver resolver(&oracle);
  const RefinableTimestamp a(VectorClock(0, {1, 0}), 0, 1);
  const RefinableTimestamp b(VectorClock(0, {0, 1}), 1, 1);
  resolver.Resolve(a, b, OrderPreference::kPreferFirst);
  EXPECT_EQ(resolver.CacheSize(), 2u);
  resolver.TrimBefore(VectorClock(0, {5, 5}));
  EXPECT_EQ(resolver.CacheSize(), 0u);
}

TEST(ShardTest, GcMessageCollapsesVersions) {
  auto db = Weaver::Open(ManualOptions(1, 1));
  auto tx = db->BeginTx();
  const NodeId n = tx.CreateNode();
  ASSERT_TRUE(db->Commit(&tx).ok());
  for (int i = 0; i < 5; ++i) {
    auto t = db->BeginTx();
    ASSERT_TRUE(t.AssignNodeProperty(n, "k", std::to_string(i)).ok());
    ASSERT_TRUE(db->Commit(&t).ok());
  }
  db->PumpAll();
  Shard& shard = db->shard(0);
  const Node* node = shard.graph().FindNode(n);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->props.VersionCount(), 5u);
  db->RunGarbageCollection();
  db->shard(0).ProcessUntilIdle();
  EXPECT_EQ(node->props.VersionCount(), 1u);
  EXPECT_GE(shard.stats().gc_rounds.load(), 1u);
}

}  // namespace
}  // namespace weaver
