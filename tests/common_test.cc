// Tests for histogram, serde, blocking queue, thread pool, sync
// primitives, and partitioners.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/histogram.h"
#include "common/queue.h"
#include "common/serde.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "partition/partitioner.h"

namespace weaver {
namespace {

// ---- Histogram -------------------------------------------------------------

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.Mean(), 1000.0, 0.01);
  // Bucketed percentile is within 5% of the true value.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 1000.0, 50.0);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  for (std::uint64_t i = 1; i <= 10000; ++i) h.Record(i * 100);
  EXPECT_LE(h.Percentile(50), h.Percentile(90));
  EXPECT_LE(h.Percentile(90), h.Percentile(99));
  EXPECT_LE(h.Percentile(99), h.max());
  // p50 of uniform 100..1000000 is ~500000 (within bucket error).
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 500000.0, 25000.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(100);
  b.Record(300);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 100u);
  EXPECT_EQ(a.max(), 300u);
  EXPECT_NEAR(a.Mean(), 200.0, 0.01);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Record(~0ULL);
  h.Record(1ULL << 62);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.Percentile(99), 0u);
}

TEST(HistogramTest, NonZeroBucketsCoverCount) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(1000 + i);
  std::uint64_t total = 0;
  for (const auto& [bound, count] : h.NonZeroBuckets()) total += count;
  EXPECT_EQ(total, 100u);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Record(1'000'000);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
}

// ---- Serde -----------------------------------------------------------------

TEST(SerdeTest, RoundTripScalars) {
  ByteWriter w;
  w.PutU8(7);
  w.PutU32(123456);
  w.PutU64(~0ULL);
  w.PutDouble(3.5);
  w.PutString("hello");
  ByteReader r(w.str());
  std::uint8_t u8;
  std::uint32_t u32;
  std::uint64_t u64;
  double d;
  std::string s;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 123456u);
  EXPECT_EQ(u64, ~0ULL);
  EXPECT_EQ(d, 3.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, EmptyString) {
  ByteWriter w;
  w.PutString("");
  ByteReader r(w.str());
  std::string s = "junk";
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, "");
}

TEST(SerdeTest, BinaryStringPreserved) {
  std::string bin("\x00\x01\xff\x7f", 4);
  ByteWriter w;
  w.PutString(bin);
  ByteReader r(w.str());
  std::string s;
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, bin);
}

TEST(SerdeTest, TruncatedReadsFail) {
  ByteWriter w;
  w.PutU64(42);
  std::string bytes = w.Take();
  bytes.resize(4);
  ByteReader r(bytes);
  std::uint64_t v;
  EXPECT_TRUE(r.GetU64(&v).IsInternal());
}

TEST(SerdeTest, TruncatedStringLengthFails) {
  ByteWriter w;
  w.PutString("abcdef");
  std::string bytes = w.Take();
  bytes.resize(6);  // length says 6 but only 2 payload bytes remain
  ByteReader r(bytes);
  std::string s;
  EXPECT_TRUE(r.GetString(&s).IsInternal());
}

// ---- BlockingQueue -----------------------------------------------------------

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) q.Push(i);
  for (int i = 0; i < 10; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BlockingQueueTest, TryPopEmptyReturnsNothing) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, CloseWakesBlockedPop) {
  BlockingQueue<int> q;
  std::thread t([&] {
    auto v = q.Pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.Close();
  t.join();
}

TEST(BlockingQueueTest, PushAfterCloseRejected) {
  BlockingQueue<int> q;
  q.Close();
  EXPECT_FALSE(q.Push(1));
}

TEST(BlockingQueueTest, DrainsAfterClose) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, BoundedBlocksProducer) {
  BlockingQueue<int> q(2);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  std::atomic<bool> third_pushed{false};
  std::thread t([&] {
    q.Push(3);
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(third_pushed.load());
  (void)q.Pop();
  t.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(BlockingQueueTest, MpmcStress) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4, kItems = 1000;
  std::atomic<long long> sum{0};
  std::vector<std::thread> producers, consumers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 1; i <= kItems; ++i) q.Push(i);
    });
  }
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) sum.fetch_add(*v);
    });
  }
  for (auto& p : producers) p.join();
  q.Close();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(sum.load(),
            static_cast<long long>(kProducers) * kItems * (kItems + 1) / 2);
}

// ---- ThreadPool ---------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesSubmittedWork) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, AsyncReturnsFutures) {
  ThreadPool pool(2);
  auto f1 = pool.Async([] { return 6 * 7; });
  auto f2 = pool.Async([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto f = pool.Async([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

// ---- SpinLock / ResettableLatch -----------------------------------------------

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  long long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        std::lock_guard<SpinLock> lk(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(ResettableLatchTest, WaitsForCount) {
  ResettableLatch latch(3);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    latch.Wait();
    released.store(true);
  });
  latch.CountDown();
  latch.CountDown();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(released.load());
  latch.CountDown();
  waiter.join();
  EXPECT_TRUE(released.load());
}

// ---- Partitioners ---------------------------------------------------------------

TEST(PartitionerTest, HashCoversAllShards) {
  HashPartitioner p(4);
  std::vector<int> counts(4, 0);
  for (NodeId n = 1; n <= 4000; ++n) {
    const ShardId s = p.Place(n, {}, {});
    ASSERT_LT(s, 4u);
    counts[s]++;
  }
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(PartitionerTest, HashIsDeterministic) {
  HashPartitioner p(8);
  for (NodeId n = 1; n <= 100; ++n) {
    EXPECT_EQ(p.Place(n, {}, {}), p.Place(n, {}, {}));
  }
}

TEST(PartitionerTest, LdgPrefersNeighborShard) {
  LdgPartitioner p(4, 1000);
  std::vector<std::size_t> loads(4, 10);
  // All placed neighbors on shard 2 and plenty of capacity there.
  const ShardId s = p.Place(42, {2, 2, 2}, loads);
  EXPECT_EQ(s, 2u);
}

TEST(PartitionerTest, LdgCapacityPenaltyRedirects) {
  LdgPartitioner p(2, 100);  // capacity ~51 per shard
  std::vector<std::size_t> loads = {51, 0};  // shard 0 full
  // Neighbors on shard 0, but it is at capacity: score 0 there; shard 1
  // has no neighbors (score 0) -- tie broken to least loaded = shard 1.
  const ShardId s = p.Place(7, {0, 0}, loads);
  EXPECT_EQ(s, 1u);
}

TEST(PartitionerTest, LdgBalancesWithoutNeighbors) {
  LdgPartitioner p(4, 10000);
  std::vector<std::size_t> loads(4, 0);
  for (NodeId n = 1; n <= 2000; ++n) {
    const ShardId s = p.Place(n, {}, loads);
    ASSERT_LT(s, 4u);
    loads[s]++;
  }
  for (std::size_t l : loads) {
    EXPECT_GT(l, 300u);
    EXPECT_LT(l, 700u);
  }
}

}  // namespace
}  // namespace weaver
