// Tests for vector clocks: the partial order that powers the proactive
// stage of refinable timestamps (paper §3.3).
#include "vclock/vclock.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace weaver {
namespace {

VectorClock Make(std::initializer_list<std::uint64_t> counters,
                 std::uint32_t epoch = 0) {
  return VectorClock(epoch, std::vector<std::uint64_t>(counters));
}

TEST(VectorClockTest, ZeroClocksAreEqual) {
  VectorClock a(3), b(3);
  EXPECT_EQ(a.Compare(b), ClockOrder::kEqual);
  EXPECT_EQ(a, b);
}

TEST(VectorClockTest, TickAdvancesOwnComponent) {
  VectorClock c(3);
  EXPECT_EQ(c.Tick(1), 1u);
  EXPECT_EQ(c.Tick(1), 2u);
  EXPECT_EQ(c.Component(1), 2u);
  EXPECT_EQ(c.Component(0), 0u);
}

TEST(VectorClockTest, PaperFig5Orderings) {
  // T1<1,1,0> < T2<3,4,2>; T3<0,1,3> < T4<3,1,5>; T2 ~ T4 (concurrent).
  const auto t1 = Make({1, 1, 0});
  const auto t2 = Make({3, 4, 2});
  const auto t3 = Make({0, 1, 3});
  const auto t4 = Make({3, 1, 5});
  EXPECT_EQ(t1.Compare(t2), ClockOrder::kBefore);
  EXPECT_EQ(t2.Compare(t1), ClockOrder::kAfter);
  EXPECT_EQ(t3.Compare(t4), ClockOrder::kBefore);
  EXPECT_EQ(t2.Compare(t4), ClockOrder::kConcurrent);
  EXPECT_EQ(t4.Compare(t2), ClockOrder::kConcurrent);
}

TEST(VectorClockTest, HappensBeforeHelpers) {
  const auto a = Make({1, 0});
  const auto b = Make({1, 1});
  EXPECT_TRUE(a.HappensBefore(b));
  EXPECT_FALSE(b.HappensBefore(a));
  EXPECT_FALSE(a.ConcurrentWith(b));
  EXPECT_TRUE(Make({1, 0}).ConcurrentWith(Make({0, 1})));
}

TEST(VectorClockTest, MergeTakesPointwiseMax) {
  auto a = Make({3, 1, 0});
  const auto b = Make({1, 4, 2});
  a.Merge(b);
  EXPECT_EQ(a, Make({3, 4, 2}));
}

TEST(VectorClockTest, MergeIsIdempotent) {
  auto a = Make({3, 1});
  a.Merge(a);
  EXPECT_EQ(a, Make({3, 1}));
}

TEST(VectorClockTest, MergedClockDominatesBoth) {
  auto a = Make({5, 0, 2});
  const auto b = Make({1, 7, 2});
  auto merged = a;
  merged.Merge(b);
  EXPECT_NE(merged.Compare(a), ClockOrder::kBefore);
  EXPECT_NE(merged.Compare(b), ClockOrder::kBefore);
}

TEST(VectorClockTest, EpochDominatesCounters) {
  const auto old_epoch = Make({100, 100}, 0);
  const auto new_epoch = Make({0, 0}, 1);
  EXPECT_EQ(old_epoch.Compare(new_epoch), ClockOrder::kBefore);
  EXPECT_EQ(new_epoch.Compare(old_epoch), ClockOrder::kAfter);
}

TEST(VectorClockTest, AdvanceEpochZerosCounters) {
  auto c = Make({4, 5});
  c.AdvanceEpoch(2);
  EXPECT_EQ(c.epoch(), 2u);
  EXPECT_EQ(c.Component(0), 0u);
  EXPECT_EQ(c.Component(1), 0u);
}

TEST(VectorClockTest, MergeIgnoresStaleEpoch) {
  auto c = Make({1, 1}, 2);
  c.Merge(Make({9, 9}, 1));  // pre-failover stragglers are ignored
  EXPECT_EQ(c.Component(0), 1u);
}

TEST(VectorClockTest, MergeAdoptsNewerEpoch) {
  auto c = Make({5, 5}, 0);
  c.Merge(Make({2, 0}, 1));
  EXPECT_EQ(c.epoch(), 1u);
  EXPECT_EQ(c.Component(0), 2u);  // old counters dropped with the epoch
  EXPECT_EQ(c.Component(1), 0u);
}

TEST(VectorClockTest, MagnitudeSumsComponents) {
  EXPECT_EQ(Make({1, 2, 3}).Magnitude(), 6u);
  EXPECT_EQ(VectorClock(4).Magnitude(), 0u);
}

TEST(VectorClockTest, ToStringFormat) {
  EXPECT_EQ(Make({1, 2}).ToString(), "e0<1,2>");
  EXPECT_EQ(Make({7}, 3).ToString(), "e3<7>");
}

TEST(VectorClockTest, SerializeRoundTrip) {
  const auto c = Make({9, 0, 12345678901234ULL}, 7);
  ByteWriter w;
  c.Serialize(&w);
  ByteReader r(w.str());
  VectorClock back;
  ASSERT_TRUE(VectorClock::Deserialize(&r, &back).ok());
  EXPECT_EQ(back, c);
  EXPECT_TRUE(r.AtEnd());
}

TEST(VectorClockTest, DeserializeTruncatedFails) {
  const auto c = Make({1, 2, 3});
  ByteWriter w;
  c.Serialize(&w);
  std::string bytes = w.Take();
  bytes.resize(bytes.size() - 3);
  ByteReader r(bytes);
  VectorClock back;
  EXPECT_FALSE(VectorClock::Deserialize(&r, &back).ok());
}

TEST(VectorClockTest, FlipOrder) {
  EXPECT_EQ(FlipOrder(ClockOrder::kBefore), ClockOrder::kAfter);
  EXPECT_EQ(FlipOrder(ClockOrder::kAfter), ClockOrder::kBefore);
  EXPECT_EQ(FlipOrder(ClockOrder::kConcurrent), ClockOrder::kConcurrent);
  EXPECT_EQ(FlipOrder(ClockOrder::kEqual), ClockOrder::kEqual);
}

// ---- Property tests: Compare is a strict partial order -------------------

class VClockPropertyTest : public ::testing::TestWithParam<int> {};

VectorClock RandomClock(Rng& rng, std::size_t width, std::uint64_t bound) {
  std::vector<std::uint64_t> counters(width);
  for (auto& c : counters) c = rng.Uniform(bound);
  return VectorClock(0, std::move(counters));
}

TEST_P(VClockPropertyTest, CompareIsAntisymmetric) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const auto a = RandomClock(rng, 4, 5);
    const auto b = RandomClock(rng, 4, 5);
    EXPECT_EQ(a.Compare(b), FlipOrder(b.Compare(a)));
  }
}

TEST_P(VClockPropertyTest, CompareIsTransitive) {
  Rng rng(GetParam() + 100);
  for (int i = 0; i < 500; ++i) {
    const auto a = RandomClock(rng, 3, 4);
    const auto b = RandomClock(rng, 3, 4);
    const auto c = RandomClock(rng, 3, 4);
    if (a.Compare(b) == ClockOrder::kBefore &&
        b.Compare(c) == ClockOrder::kBefore) {
      EXPECT_EQ(a.Compare(c), ClockOrder::kBefore)
          << a.ToString() << " " << b.ToString() << " " << c.ToString();
    }
  }
}

TEST_P(VClockPropertyTest, MergeIsLeastUpperBound) {
  Rng rng(GetParam() + 200);
  for (int i = 0; i < 500; ++i) {
    const auto a = RandomClock(rng, 4, 6);
    const auto b = RandomClock(rng, 4, 6);
    auto m = a;
    m.Merge(b);
    // Upper bound:
    EXPECT_NE(m.Compare(a), ClockOrder::kBefore);
    EXPECT_NE(m.Compare(b), ClockOrder::kBefore);
    // Least: every component equals a's or b's.
    for (std::size_t k = 0; k < m.width(); ++k) {
      EXPECT_EQ(m.Component(k),
                std::max(a.Component(k), b.Component(k)));
    }
  }
}

TEST_P(VClockPropertyTest, TickMakesStrictlyLater) {
  Rng rng(GetParam() + 300);
  for (int i = 0; i < 200; ++i) {
    auto a = RandomClock(rng, 3, 10);
    const auto before = a;
    a.Tick(rng.Uniform(3));
    EXPECT_EQ(before.Compare(a), ClockOrder::kBefore);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VClockPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace weaver
