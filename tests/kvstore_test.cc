// Tests for the transactional backing store (HyperDex Warp substitute):
// OCC semantics, tombstone versioning, and randomized serializability.
#include "kvstore/kvstore.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"

namespace weaver {
namespace {

TEST(KvStoreTest, GetMissingIsNotFound) {
  KvStore kv;
  EXPECT_TRUE(kv.Get("nope").status().IsNotFound());
}

TEST(KvStoreTest, PutGetRoundTrip) {
  KvStore kv;
  kv.Put("k", "v");
  auto r = kv.Get("k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "v");
}

TEST(KvStoreTest, OverwriteReplaces) {
  KvStore kv;
  kv.Put("k", "v1");
  kv.Put("k", "v2");
  EXPECT_EQ(*kv.Get("k"), "v2");
}

TEST(KvStoreTest, DeleteHidesValue) {
  KvStore kv;
  kv.Put("k", "v");
  kv.Delete("k");
  EXPECT_TRUE(kv.Get("k").status().IsNotFound());
  EXPECT_FALSE(kv.Contains("k"));
}

TEST(KvStoreTest, ScanPrefixSortedAndFiltered) {
  KvStore kv(4);
  kv.Put("v:3", "c");
  kv.Put("v:1", "a");
  kv.Put("m:1", "x");
  kv.Put("v:2", "b");
  const auto rows = kv.ScanPrefix("v:");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, "v:1");
  EXPECT_EQ(rows[2].first, "v:3");
}

TEST(KvStoreTest, ScanSkipsTombstones) {
  KvStore kv;
  kv.Put("v:1", "a");
  kv.Put("v:2", "b");
  kv.Delete("v:1");
  EXPECT_EQ(kv.ScanPrefix("v:").size(), 1u);
}

TEST(KvTransactionTest, CommitPublishesWrites) {
  KvStore kv;
  auto tx = kv.Begin();
  tx.Put("a", "1");
  tx.Put("b", "2");
  ASSERT_TRUE(tx.Commit().ok());
  EXPECT_EQ(*kv.Get("a"), "1");
  EXPECT_EQ(*kv.Get("b"), "2");
}

TEST(KvTransactionTest, UncommittedWritesInvisible) {
  KvStore kv;
  auto tx = kv.Begin();
  tx.Put("a", "1");
  EXPECT_TRUE(kv.Get("a").status().IsNotFound());
}

TEST(KvTransactionTest, ReadYourOwnWrites) {
  KvStore kv;
  kv.Put("a", "old");
  auto tx = kv.Begin();
  tx.Put("a", "new");
  EXPECT_EQ(*tx.Get("a"), "new");
  tx.Delete("a");
  EXPECT_TRUE(tx.Get("a").status().IsNotFound());
}

TEST(KvTransactionTest, ConflictingWriteAbortsReader) {
  KvStore kv;
  kv.Put("a", "0");
  auto tx = kv.Begin();
  ASSERT_TRUE(tx.Get("a").ok());  // records version
  kv.Put("a", "1");               // concurrent writer
  tx.Put("b", "x");
  EXPECT_TRUE(tx.Commit().IsAborted());
  EXPECT_TRUE(kv.Get("b").status().IsNotFound());  // nothing applied
}

TEST(KvTransactionTest, ConcurrentInsertAbortsNotFoundReader) {
  KvStore kv;
  auto tx = kv.Begin();
  EXPECT_TRUE(tx.Get("a").status().IsNotFound());  // version 0 recorded
  kv.Put("a", "1");
  EXPECT_TRUE(tx.Commit().IsAborted());
}

TEST(KvTransactionTest, DeleteThenReinsertAbortsStaleReader) {
  // The ABA hazard: reader pins version, key is deleted and re-inserted.
  KvStore kv;
  kv.Put("a", "v1");
  auto tx = kv.Begin();
  ASSERT_TRUE(tx.Get("a").ok());
  kv.Delete("a");
  kv.Put("a", "v1-again");
  tx.Put("out", "x");
  EXPECT_TRUE(tx.Commit().IsAborted());
}

TEST(KvTransactionTest, DisjointTransactionsBothCommit) {
  KvStore kv;
  auto t1 = kv.Begin();
  auto t2 = kv.Begin();
  t1.Put("a", "1");
  t2.Put("b", "2");
  EXPECT_TRUE(t1.Commit().ok());
  EXPECT_TRUE(t2.Commit().ok());
}

TEST(KvTransactionTest, BlindWritesLastWriterWins) {
  KvStore kv;
  auto t1 = kv.Begin();
  auto t2 = kv.Begin();
  t1.Put("a", "1");
  t2.Put("a", "2");
  EXPECT_TRUE(t1.Commit().ok());
  EXPECT_TRUE(t2.Commit().ok());  // no read set: blind write allowed
  EXPECT_EQ(*kv.Get("a"), "2");
}

TEST(KvTransactionTest, ReadModifyWriteConflictOneAborts) {
  KvStore kv;
  kv.Put("counter", "0");
  auto t1 = kv.Begin();
  auto t2 = kv.Begin();
  ASSERT_TRUE(t1.Get("counter").ok());
  ASSERT_TRUE(t2.Get("counter").ok());
  t1.Put("counter", "1");
  t2.Put("counter", "1");
  const bool c1 = t1.Commit().ok();
  const bool c2 = t2.Commit().ok();
  EXPECT_TRUE(c1);
  EXPECT_FALSE(c2);  // validated against the version t1 bumped
}

TEST(KvTransactionTest, TransactionalDelete) {
  KvStore kv;
  kv.Put("a", "x");
  auto tx = kv.Begin();
  tx.Delete("a");
  ASSERT_TRUE(tx.Commit().ok());
  EXPECT_FALSE(kv.Contains("a"));
}

TEST(KvTransactionTest, ReuseAfterCommitFails) {
  KvStore kv;
  auto tx = kv.Begin();
  tx.Put("a", "1");
  ASSERT_TRUE(tx.Commit().ok());
  EXPECT_TRUE(tx.Commit().IsFailedPrecondition());
  EXPECT_TRUE(tx.finished());
}

TEST(KvTransactionTest, DroppedTransactionRollsBack) {
  KvStore kv;
  {
    auto tx = kv.Begin();
    tx.Put("a", "1");
    // No Commit(): RAII rollback discards the buffered write set.
  }
  EXPECT_TRUE(kv.Get("a").status().IsNotFound());
  EXPECT_EQ(kv.stats().rollbacks.load(), 1u);
  EXPECT_EQ(kv.stats().commits.load(), 0u);
}

TEST(KvTransactionTest, ExplicitAbortIsIdempotent) {
  KvStore kv;
  auto tx = kv.Begin();
  tx.Put("a", "1");
  tx.Abort();
  tx.Abort();
  EXPECT_TRUE(tx.finished());
  EXPECT_TRUE(tx.Commit().IsFailedPrecondition());
  EXPECT_TRUE(kv.Get("a").status().IsNotFound());
  EXPECT_EQ(kv.stats().rollbacks.load(), 1u);
}

TEST(KvTransactionTest, MovedFromTransactionIsInert) {
  KvStore kv;
  auto tx = kv.Begin();
  tx.Put("a", "1");
  KvTransaction moved = std::move(tx);
  EXPECT_TRUE(tx.finished());  // NOLINT(bugprone-use-after-move)
  // Operations on the moved-from shell are inert, never a null deref.
  EXPECT_TRUE(tx.Get("a").status().IsFailedPrecondition());
  tx.Put("b", "2");
  tx.Delete("a");
  ASSERT_TRUE(moved.Commit().ok());
  EXPECT_TRUE(kv.Get("b").status().IsNotFound());
  EXPECT_EQ(*kv.Get("a"), "1");
  // The moved-from shell neither commits nor counts as a rollback.
  EXPECT_EQ(kv.stats().rollbacks.load(), 0u);
}

TEST(KvTransactionTest, StatsCountCommitsAndAborts) {
  KvStore kv;
  kv.Put("a", "0");
  auto t1 = kv.Begin();
  ASSERT_TRUE(t1.Get("a").ok());
  kv.Put("a", "1");
  t1.Put("a", "2");
  EXPECT_TRUE(t1.Commit().IsAborted());
  auto t2 = kv.Begin();
  t2.Put("b", "1");
  EXPECT_TRUE(t2.Commit().ok());
  EXPECT_GE(kv.stats().aborts.load(), 1u);
  EXPECT_GE(kv.stats().commits.load(), 1u);
}

// Serializability stress: N threads increment a set of counters via
// read-modify-write transactions with retry; the final sum must equal the
// number of successful increments (no lost updates).
class KvStressTest : public ::testing::TestWithParam<int> {};

TEST_P(KvStressTest, NoLostUpdates) {
  const int num_threads = GetParam();
  KvStore kv(8);
  constexpr int kKeys = 4;
  for (int k = 0; k < kKeys; ++k) {
    kv.Put("c" + std::to_string(k), "0");
  }
  std::atomic<std::uint64_t> successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 99);
      for (int i = 0; i < 300; ++i) {
        const std::string key = "c" + std::to_string(rng.Uniform(kKeys));
        while (true) {
          auto tx = kv.Begin();
          auto cur = tx.Get(key);
          if (!cur.ok()) break;
          tx.Put(key, std::to_string(std::stoi(*cur) + 1));
          if (tx.Commit().ok()) {
            successes.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  std::uint64_t total = 0;
  for (int k = 0; k < kKeys; ++k) {
    total += std::stoull(*kv.Get("c" + std::to_string(k)));
  }
  EXPECT_EQ(total, successes.load());
  EXPECT_EQ(total,
            static_cast<std::uint64_t>(num_threads) * 300u);
}

INSTANTIATE_TEST_SUITE_P(Threads, KvStressTest, ::testing::Values(2, 4, 8));

// Multi-key atomicity: transfers between accounts preserve the total.
TEST(KvStressTest, MultiKeyTransfersPreserveTotal) {
  KvStore kv(8);
  constexpr int kAccounts = 6;
  for (int a = 0; a < kAccounts; ++a) {
    kv.Put("acct" + std::to_string(a), "100");
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 7);
      for (int i = 0; i < 200; ++i) {
        const int from = static_cast<int>(rng.Uniform(kAccounts));
        int to = static_cast<int>(rng.Uniform(kAccounts));
        if (to == from) to = (to + 1) % kAccounts;
        auto tx = kv.Begin();
        auto f = tx.Get("acct" + std::to_string(from));
        auto g = tx.Get("acct" + std::to_string(to));
        if (!f.ok() || !g.ok()) continue;
        const int amount = 1 + static_cast<int>(rng.Uniform(10));
        tx.Put("acct" + std::to_string(from),
               std::to_string(std::stoi(*f) - amount));
        tx.Put("acct" + std::to_string(to),
               std::to_string(std::stoi(*g) + amount));
        (void)tx.Commit();  // aborts are fine; atomicity is the invariant
      }
    });
  }
  for (auto& t : threads) t.join();
  int total = 0;
  for (int a = 0; a < kAccounts; ++a) {
    total += std::stoi(*kv.Get("acct" + std::to_string(a)));
  }
  EXPECT_EQ(total, kAccounts * 100);
}

}  // namespace
}  // namespace weaver
