// Tests for the simulated interconnect: FIFO channels, sequence numbers,
// detach/reattach (crash semantics), and delay injection.
#include "net/bus.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace weaver {
namespace {

std::shared_ptr<int> Payload(int v) { return std::make_shared<int>(v); }

TEST(BusTest, DeliversToInbox) {
  MessageBus bus;
  auto inbox = std::make_shared<BlockingQueue<BusMessage>>();
  const EndpointId a = bus.RegisterHandler("a", [](const BusMessage&) {});
  const EndpointId b = bus.RegisterInbox("b", inbox);
  ASSERT_TRUE(bus.Send(a, b, 1, Payload(42)).ok());
  auto msg = inbox->Pop();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(*std::static_pointer_cast<int>(msg->payload), 42);
  EXPECT_EQ(msg->payload_tag, 1u);
  EXPECT_EQ(msg->src, a);
}

TEST(BusTest, DeliversToHandlerInline) {
  MessageBus bus;
  int received = 0;
  const EndpointId a = bus.RegisterHandler("a", [](const BusMessage&) {});
  const EndpointId b = bus.RegisterHandler("b", [&](const BusMessage& m) {
    received = *std::static_pointer_cast<int>(m.payload);
  });
  ASSERT_TRUE(bus.Send(a, b, 0, Payload(7)).ok());
  EXPECT_EQ(received, 7);
}

TEST(BusTest, ChannelSequencesAreDenseAndOrdered) {
  MessageBus bus;
  auto inbox = std::make_shared<BlockingQueue<BusMessage>>();
  const EndpointId a = bus.RegisterHandler("a", [](const BusMessage&) {});
  const EndpointId b = bus.RegisterInbox("b", inbox);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(bus.Send(a, b, 0, Payload(i)).ok());
  }
  for (std::uint64_t i = 1; i <= 100; ++i) {
    auto msg = inbox->Pop();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->channel_seq, i);
  }
}

TEST(BusTest, ChannelsAreIndependent) {
  MessageBus bus;
  auto inbox = std::make_shared<BlockingQueue<BusMessage>>();
  const EndpointId a = bus.RegisterHandler("a", [](const BusMessage&) {});
  const EndpointId b = bus.RegisterHandler("b", [](const BusMessage&) {});
  const EndpointId c = bus.RegisterInbox("c", inbox);
  bus.Send(a, c, 0, Payload(1));
  bus.Send(b, c, 0, Payload(2));
  auto m1 = inbox->Pop();
  auto m2 = inbox->Pop();
  EXPECT_EQ(m1->channel_seq, 1u);  // per (src,dst) channel
  EXPECT_EQ(m2->channel_seq, 1u);
}

TEST(BusTest, ConcurrentSendersStayFifoPerChannel) {
  MessageBus bus;
  auto inbox = std::make_shared<BlockingQueue<BusMessage>>();
  const EndpointId a = bus.RegisterHandler("a", [](const BusMessage&) {});
  const EndpointId b = bus.RegisterInbox("b", inbox);
  constexpr int kPerThread = 500;
  std::vector<std::thread> senders;
  for (int t = 0; t < 4; ++t) {
    senders.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) bus.Send(a, b, 0, Payload(i));
    });
  }
  for (auto& t : senders) t.join();
  std::uint64_t last = 0;
  for (int i = 0; i < 4 * kPerThread; ++i) {
    auto msg = inbox->Pop();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->channel_seq, last + 1);  // dense, monotonically ordered
    last = msg->channel_seq;
  }
}

TEST(BusTest, DetachedEndpointDropsMessages) {
  MessageBus bus;
  auto inbox = std::make_shared<BlockingQueue<BusMessage>>();
  const EndpointId a = bus.RegisterHandler("a", [](const BusMessage&) {});
  const EndpointId b = bus.RegisterInbox("b", inbox);
  bus.Detach(b);
  // The message is dropped and the sender learns it (program hop
  // forwarding relies on this to abort instead of hanging).
  ASSERT_TRUE(bus.Send(a, b, 0, Payload(1)).IsUnavailable());
  EXPECT_EQ(inbox->Size(), 0u);
}

TEST(BusTest, ReattachContinuesChannelSequence) {
  MessageBus bus;
  auto inbox1 = std::make_shared<BlockingQueue<BusMessage>>();
  const EndpointId a = bus.RegisterHandler("a", [](const BusMessage&) {});
  const EndpointId b = bus.RegisterInbox("b", inbox1);
  bus.Send(a, b, 0, Payload(1));
  bus.Detach(b);
  bus.Send(a, b, 0, Payload(2));  // dropped (crashed)
  auto inbox2 = std::make_shared<BlockingQueue<BusMessage>>();
  bus.ReattachInbox(b, inbox2);
  bus.Send(a, b, 0, Payload(3));
  auto msg = inbox2->Pop();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->channel_seq, 3u);  // sequence survived the crash
  EXPECT_EQ(*std::static_pointer_cast<int>(msg->payload), 3);
}

TEST(BusTest, DelayedDeliveryPreservesChannelFifo) {
  MessageBus bus;
  auto inbox = std::make_shared<BlockingQueue<BusMessage>>();
  const EndpointId a = bus.RegisterHandler("a", [](const BusMessage&) {});
  const EndpointId b = bus.RegisterInbox("b", inbox);
  // Decreasing delays would reorder without the per-channel clamp.
  std::atomic<int> call{0};
  bus.SetDelayFn([&](EndpointId, EndpointId) -> std::uint64_t {
    const int c = call.fetch_add(1);
    return c == 0 ? 3000 : 100;
  });
  bus.Send(a, b, 0, Payload(1));
  bus.Send(a, b, 0, Payload(2));
  auto m1 = inbox->Pop();
  auto m2 = inbox->Pop();
  EXPECT_EQ(*std::static_pointer_cast<int>(m1->payload), 1);
  EXPECT_EQ(*std::static_pointer_cast<int>(m2->payload), 2);
}

TEST(BusTest, BoundedHandlerShedsDeferredLoad) {
  MessageBus bus;
  std::atomic<int> handled{0};
  const EndpointId a = bus.RegisterHandler("a", [](const BusMessage&) {});
  const EndpointId slow = bus.RegisterHandler(
      "slow", [&](const BusMessage&) { handled.fetch_add(1); },
      /*capacity=*/4);

  // Without delays, deliveries are synchronous: capacity never triggers.
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(bus.Send(a, slow, 0, Payload(i)).ok());
  }
  EXPECT_EQ(handled.load(), 16);

  // With a long delivery delay, the deferred queue for the endpoint is
  // bounded: sends beyond capacity drop with ResourceExhausted instead
  // of growing the queue (the announce-path backpressure remnant).
  bus.SetDelayFn([](EndpointId, EndpointId) -> std::uint64_t {
    return 200000;  // 200ms: nothing delivers during the burst
  });
  int accepted = 0;
  int dropped = 0;
  for (int i = 0; i < 32; ++i) {
    const Status st = bus.Send(a, slow, 0, Payload(i));
    if (st.ok()) {
      ++accepted;
    } else {
      EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
      ++dropped;
    }
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(dropped, 28);
  EXPECT_EQ(bus.stats().handler_capacity_drops.load(), 28u);

  // The deferred messages eventually deliver and release their slots.
  for (int spin = 0; spin < 500 && handled.load() < 20; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(handled.load(), 20);
  bus.SetDelayFn(nullptr);
  EXPECT_TRUE(bus.Send(a, slow, 0, Payload(99)).ok());
  EXPECT_EQ(handled.load(), 21);
}

TEST(BusTest, StatsCountTraffic) {
  MessageBus bus;
  const EndpointId a = bus.RegisterHandler("a", [](const BusMessage&) {});
  const EndpointId b = bus.RegisterHandler("b", [](const BusMessage&) {});
  bus.Send(a, b, 0, Payload(1));
  bus.Send(a, b, 0, Payload(2));
  EXPECT_EQ(bus.stats().messages_sent.load(), 2u);
  EXPECT_EQ(bus.stats().messages_delivered.load(), 2u);
}

TEST(BusTest, NameLookup) {
  MessageBus bus;
  const EndpointId a = bus.RegisterHandler("gk0", [](const BusMessage&) {});
  EXPECT_EQ(bus.NameOf(a), "gk0");
  EXPECT_EQ(bus.NameOf(999), "?");
}

// Wire-delivery sequencing: strict channels demand a gap-free stream
// starting at 1; AllowFirstContact channels (idempotent oracle RPC,
// docs/oracle_service.md) baseline on the first observed frame and
// accept seq-1 restarts, but still reject mid-stream gaps.
TEST(BusTest, WireSequenceStrictByDefault) {
  MessageBus bus;
  const EndpointId a = bus.RegisterHandler("a", [](const BusMessage&) {});
  const EndpointId b = bus.RegisterHandler("b", [](const BusMessage&) {});
  const auto frame = [&](std::uint64_t seq) {
    BusMessage m;
    m.src = a;
    m.dst = b;
    m.payload_tag = 0;
    m.payload = Payload(0);
    m.channel_seq = seq;
    return m;
  };
  // A first frame above 1 means the link lost the start of the stream.
  EXPECT_TRUE(bus.DeliverWire(frame(2), false).IsInternal());
  EXPECT_TRUE(bus.DeliverWire(frame(1), false).ok());
  EXPECT_TRUE(bus.DeliverWire(frame(2), false).ok());
  EXPECT_TRUE(bus.DeliverWire(frame(4), false).IsInternal());  // gap
  EXPECT_TRUE(bus.DeliverWire(frame(1), false).IsInternal());  // restart
}

TEST(BusTest, WireSequenceFirstContactBaselineAndRestart) {
  MessageBus bus;
  const EndpointId a = bus.RegisterHandler("a", [](const BusMessage&) {});
  const EndpointId b = bus.RegisterHandler("b", [](const BusMessage&) {});
  bus.AllowFirstContact(b);
  const auto frame = [&](std::uint64_t seq) {
    BusMessage m;
    m.src = a;
    m.dst = b;
    m.payload_tag = 0;
    m.payload = Payload(0);
    m.channel_seq = seq;
    return m;
  };
  // Earlier frames were dropped while the receiver was fenced: the
  // first frame observed becomes the baseline.
  EXPECT_TRUE(bus.DeliverWire(frame(5), false).ok());
  EXPECT_TRUE(bus.DeliverWire(frame(6), false).ok());
  EXPECT_TRUE(bus.DeliverWire(frame(8), false).IsInternal());  // gap still fatal
  // The sender was reset after contact (straggling reset round): a
  // seq-1 restart re-baselines instead of failing the link.
  EXPECT_TRUE(bus.DeliverWire(frame(1), false).ok());
  EXPECT_TRUE(bus.DeliverWire(frame(2), false).ok());
  EXPECT_TRUE(bus.DeliverWire(frame(4), false).IsInternal());
}

}  // namespace
}  // namespace weaver
