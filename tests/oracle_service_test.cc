// Tests for the standalone timeline-oracle service (weaver-oracled,
// docs/oracle_service.md): the durable changelog (log-before-reply,
// replay equivalence, snapshot + WAL recovery, torn-tail tolerance),
// the batched RPC surface, and the client's retry/deadline contract.
#include "oracle/oracle_service.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/bus.h"
#include "oracle/oracle_client.h"
#include "oracle/timeline_oracle.h"

namespace weaver {
namespace {

namespace fs = std::filesystem;

RefinableTimestamp Ts(std::initializer_list<std::uint64_t> counters,
                      GatekeeperId gk, std::uint32_t epoch = 0) {
  VectorClock c(epoch, std::vector<std::uint64_t>(counters));
  return RefinableTimestamp(c, gk, c.Component(gk));
}

class OracleServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("oracled_" + std::string(
                              ::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()) +
             "_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::unique_ptr<OracleService> Open(std::uint64_t snapshot_every = 0) {
    OracleService::Options so;
    so.data_dir = dir_;
    so.snapshot_every_records = snapshot_every;
    auto service = OracleService::Open(so);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    return service.ok() ? std::move(*service) : nullptr;
  }

  /// One kOrderPair op through the batched surface.
  static ClockOrder OrderPair(OracleService* service,
                              const RefinableTimestamp& a,
                              const RefinableTimestamp& b,
                              OrderPreference prefer) {
    OracleRequestMessage req;
    req.request_id = 1;
    OracleOp op;
    op.type = OracleOp::kOrderPair;
    op.a = a;
    op.b = b;
    op.prefer = prefer == OrderPreference::kPreferFirst ? 0 : 1;
    req.ops.push_back(op);
    OracleReplyMessage reply;
    service->Handle(req, &reply);
    EXPECT_EQ(reply.decisions.size(), 1u);
    EXPECT_TRUE(reply.decisions[0].status.ok())
        << reply.decisions[0].status.ToString();
    return static_cast<ClockOrder>(reply.decisions[0].order);
  }

  std::string dir_;
};

/// The core durability contract: a fresh Open() on the same directory
/// rebuilds exactly the DAG the live service had -- every answered
/// decision reads back identically, and the edge dumps agree.
TEST_F(OracleServiceTest, ChangelogReplayEquivalentToLiveState) {
  std::vector<std::pair<RefinableTimestamp, RefinableTimestamp>> pairs;
  for (std::uint64_t i = 1; i <= 12; ++i) {
    pairs.emplace_back(Ts({i, 0, 0}, 0), Ts({0, i, 0}, 1));
    pairs.emplace_back(Ts({0, i, 0}, 1), Ts({0, 0, i}, 2));
  }
  std::vector<ClockOrder> decided;
  std::uint64_t live_records = 0;
  std::vector<std::pair<RefinableTimestamp, RefinableTimestamp>> live_edges;
  {
    auto service = Open();
    ASSERT_NE(service, nullptr);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      decided.push_back(OrderPair(service.get(), pairs[i].first,
                                  pairs[i].second,
                                  (i % 2) == 0
                                      ? OrderPreference::kPreferFirst
                                      : OrderPreference::kPreferSecond));
    }
    live_records = service->stats().changelog_records.load();
    live_edges = service->oracle().DumpEdges();
    EXPECT_GT(live_records, 0u);
  }
  auto reopened = Open();
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->stats().replayed_records.load(), live_records);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(
        reopened->oracle().QueryOrder(pairs[i].first, pairs[i].second),
        decided[i])
        << "decision " << i << " changed across replay";
  }
  // Same edge set (order-insensitive: the dump walks a hash map).
  auto key = [](const std::pair<RefinableTimestamp, RefinableTimestamp>& e) {
    return std::make_pair(e.first.event_id(), e.second.event_id());
  };
  std::vector<std::pair<EventId, EventId>> live_keys, replay_keys;
  for (const auto& e : live_edges) live_keys.push_back(key(e));
  for (const auto& e : reopened->oracle().DumpEdges()) {
    replay_keys.push_back(key(e));
  }
  std::sort(live_keys.begin(), live_keys.end());
  std::sort(replay_keys.begin(), replay_keys.end());
  EXPECT_EQ(live_keys, replay_keys);
}

/// Snapshots mid-stream must not change what recovery rebuilds: the
/// checkpoint + truncated WAL recover the same state as a pure replay.
TEST_F(OracleServiceTest, SnapshotPlusWalMatchesPureReplay) {
  std::vector<std::pair<RefinableTimestamp, RefinableTimestamp>> pairs;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    pairs.emplace_back(Ts({i, 0}, 0), Ts({0, i}, 1));
  }
  std::vector<ClockOrder> decided;
  {
    auto service = Open(/*snapshot_every=*/4);
    ASSERT_NE(service, nullptr);
    for (const auto& [a, b] : pairs) {
      decided.push_back(
          OrderPair(service.get(), a, b, OrderPreference::kPreferFirst));
    }
    EXPECT_GE(service->stats().snapshots.load(), 1u);
  }
  auto reopened = Open(/*snapshot_every=*/4);
  ASSERT_NE(reopened, nullptr);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(
        reopened->oracle().QueryOrder(pairs[i].first, pairs[i].second),
        decided[i]);
  }
}

/// A crash can tear the last changelog record. Recovery must drop ONLY
/// the torn tail and keep every record before it.
TEST_F(OracleServiceTest, TornTailLosesOnlyTheLastRecord) {
  std::vector<std::pair<RefinableTimestamp, RefinableTimestamp>> pairs;
  for (std::uint64_t i = 1; i <= 6; ++i) {
    pairs.emplace_back(Ts({i, 0}, 0), Ts({0, i}, 1));
  }
  {
    auto service = Open();
    ASSERT_NE(service, nullptr);
    for (const auto& [a, b] : pairs) {
      OrderPair(service.get(), a, b, OrderPreference::kPreferFirst);
    }
  }
  // Tear the tail: chop bytes off the newest WAL segment
  // (wal-<seq>.log; zero-padded, so lexicographic max == newest).
  fs::path newest;
  for (const auto& entry : fs::recursive_directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) != 0) continue;
    if (newest.empty() || name > newest.filename().string()) {
      newest = entry.path();
    }
  }
  ASSERT_FALSE(newest.empty()) << "no WAL segment found under " << dir_;
  const auto size = fs::file_size(newest);
  ASSERT_GT(size, 4u);
  fs::resize_file(newest, size - 3);

  auto reopened = Open();
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->stats().replay_torn_tails.load(), 1u);
  // Everything but the last decision survived.
  for (std::size_t i = 0; i + 1 < pairs.size(); ++i) {
    EXPECT_EQ(
        reopened->oracle().QueryOrder(pairs[i].first, pairs[i].second),
        ClockOrder::kBefore)
        << "pre-tear decision " << i << " lost";
  }
}

/// A rejected kAssignEdge (cycle) must never reach the changelog:
/// otherwise replay would poison the rebuilt DAG with an edge the live
/// service refused.
TEST_F(OracleServiceTest, RejectedEdgeNotLoggedNotReplayed) {
  const auto a = Ts({1, 0}, 0);
  const auto b = Ts({0, 1}, 1);
  std::uint64_t records = 0;
  {
    auto service = Open();
    ASSERT_NE(service, nullptr);
    OrderPair(service.get(), a, b, OrderPreference::kPreferFirst);  // a < b
    records = service->stats().changelog_records.load();
    OracleRequestMessage req;
    req.request_id = 2;
    OracleOp op;
    op.type = OracleOp::kAssignEdge;
    op.a = b;  // b -> a would close a cycle
    op.b = a;
    req.ops.push_back(op);
    OracleReplyMessage reply;
    service->Handle(req, &reply);
    ASSERT_EQ(reply.decisions.size(), 1u);
    EXPECT_TRUE(reply.decisions[0].status.IsFailedPrecondition());
    EXPECT_EQ(service->stats().changelog_records.load(), records)
        << "rejected edge was logged";
  }
  auto reopened = Open();
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->oracle().QueryOrder(a, b), ClockOrder::kBefore);
}

/// kCollect is a logged mutation: replay must re-run the GC, not
/// resurrect collected events.
TEST_F(OracleServiceTest, CollectIsReplayed) {
  {
    auto service = Open();
    ASSERT_NE(service, nullptr);
    OrderPair(service.get(), Ts({1, 0}, 0), Ts({0, 1}, 1),
              OrderPreference::kPreferFirst);
    OracleRequestMessage req;
    req.request_id = 3;
    OracleOp op;
    op.type = OracleOp::kCollect;
    op.watermark = VectorClock(0, {5, 5});
    req.ops.push_back(op);
    OracleReplyMessage reply;
    service->Handle(req, &reply);
    EXPECT_EQ(service->oracle().LiveEvents(), 0u);
  }
  auto reopened = Open();
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->oracle().LiveEvents(), 0u)
      << "replay resurrected collected events";
}

/// The client-service RPC loop over a real bus (inline handlers): a
/// remote-mode OracleClient resolves through the service, caches the
/// decision in its replica, and Sync() bulk-loads the edge dump.
TEST(OracleClientRpcTest, ResolvesThroughServiceAndSyncs) {
  OracleService::Options so;  // no data_dir: in-memory service
  auto service = OracleService::Open(so);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  MessageBus bus;
  OracleClient* client_ptr = nullptr;
  const EndpointId service_ep = bus.RegisterHandler(
      "oracled", [&](const BusMessage& msg) {
        if (msg.payload_tag != kMsgOracleRequest) return;
        auto req = std::static_pointer_cast<OracleRequestMessage>(msg.payload);
        auto reply = std::make_shared<OracleReplyMessage>();
        (*service)->Handle(*req, reply.get());
        (void)bus.Send(msg.dst, req->reply_to, kMsgOracleReply,
                       std::move(reply), /*never_block=*/true);
      });
  const EndpointId client_ep = bus.RegisterHandler(
      "client", [&](const BusMessage& msg) {
        if (msg.payload_tag != kMsgOracleReply || client_ptr == nullptr) {
          return;
        }
        client_ptr->OnReply(
            *std::static_pointer_cast<OracleReplyMessage>(msg.payload));
      });

  OracleClient::Options co;
  co.bus = &bus;
  co.self = client_ep;
  co.service = service_ep;
  OracleClient client(co);
  client_ptr = &client;

  const auto a = Ts({1, 0}, 0);
  const auto b = Ts({0, 1}, 1);
  auto order = client.OrderPair(a, b, OrderPreference::kPreferFirst);
  ASSERT_TRUE(order.ok()) << order.status().ToString();
  EXPECT_EQ(*order, ClockOrder::kBefore);
  EXPECT_EQ(client.stats().rpcs.load(), 1u);

  // Second ask: answered from the replica, no RPC.
  auto again = client.OrderPair(a, b, OrderPreference::kPreferFirst);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, ClockOrder::kBefore);
  EXPECT_EQ(client.stats().rpcs.load(), 1u);
  EXPECT_EQ(client.stats().local_hits.load(), 1u);

  // A cold client Syncs the full edge dump.
  OracleClient cold(co);
  client_ptr = &cold;
  ASSERT_TRUE(cold.Sync().ok());
  EXPECT_GE(cold.stats().sync_edges_applied.load(), 1u);
  EXPECT_EQ(cold.QueryOrder(a, b), ClockOrder::kBefore);
}

/// No service behind the endpoint: the client retries with backoff and
/// surfaces Unavailable once the total deadline passes -- the retriable
/// error shards hand to programs mid-failover.
TEST(OracleClientRpcTest, DeadlineSurfacesUnavailable) {
  MessageBus bus;
  // A black hole: requests are delivered and dropped, replies never come.
  const EndpointId service_ep =
      bus.RegisterHandler("blackhole", [](const BusMessage&) {});
  OracleClient* client_ptr = nullptr;
  const EndpointId client_ep =
      bus.RegisterHandler("client", [&](const BusMessage& msg) {
        if (client_ptr != nullptr && msg.payload_tag == kMsgOracleReply) {
          client_ptr->OnReply(
              *std::static_pointer_cast<OracleReplyMessage>(msg.payload));
        }
      });
  OracleClient::Options co;
  co.bus = &bus;
  co.self = client_ep;
  co.service = service_ep;
  co.rpc_timeout_micros = 2'000;
  co.total_deadline_micros = 20'000;
  co.backoff_initial_micros = 500;
  OracleClient client(co);
  client_ptr = &client;

  auto order = client.OrderPair(Ts({1, 0}, 0), Ts({0, 1}, 1),
                                OrderPreference::kPreferFirst);
  ASSERT_FALSE(order.ok());
  EXPECT_TRUE(order.status().IsUnavailable()) << order.status().ToString();
  EXPECT_GE(client.stats().retries.load(), 1u);
  EXPECT_EQ(client.stats().unavailable.load(), 1u);
}

}  // namespace
}  // namespace weaver
