// Strict-serializability-facing tests: the paper's Fig 1 phantom-path
// scenario, snapshot isolation of node programs against concurrent
// writers, atomic visibility of multi-object transactions, and read-
// your-writes across the transaction/program boundary (paper §4.4).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/weaver.h"
#include "programs/standard_programs.h"

namespace weaver {
namespace {

WeaverOptions FastOptions(std::size_t gks = 2, std::size_t shards = 2) {
  WeaverOptions o;
  o.num_gatekeepers = gks;
  o.num_shards = shards;
  o.tau_micros = 200;
  o.nop_period_micros = 100;
  return o;
}

// Fig 1: network n1 - n3 - n5 - n7. A transaction deletes (n3,n5) and
// creates (n5,n7) *atomically in the opposite order of the hazard*: the
// hazardous interleaving is delete (n3,n5) happens-after the traversal
// passed n3 but create (n5,n7) happens-before it reaches n5. With
// strictly serializable snapshots, a traversal must see either the old
// graph (path to n5, no n7 link) or the new one (n3-n5 gone): it may
// NEVER find the path n1-n3-n5-n7, which exists in neither.
TEST(ConsistencyTest, Fig1PhantomPathNeverObserved) {
  auto db = Weaver::Open(FastOptions(2, 3));
  NodeId n1, n3, n5, n7;
  EdgeId e35 = kInvalidEdgeId;
  {
    auto tx = db->BeginTx();
    n1 = tx.CreateNode();
    n3 = tx.CreateNode();
    n5 = tx.CreateNode();
    n7 = tx.CreateNode();
    const EdgeId e13 = tx.CreateEdge(n1, n3);
    e35 = tx.CreateEdge(n3, n5);
    ASSERT_TRUE(tx.AssignEdgeProperty(n1, e13, "link", "up").ok());
    ASSERT_TRUE(tx.AssignEdgeProperty(n3, e35, "link", "up").ok());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> phantom_paths{0};
  int traversals = 0;

  // Writer (background): atomically swap the topology back and forth. In
  // the "after" state the link (n3,n5) is down and (n5,n7) is up -- n7 is
  // unreachable from n1 in both states, so no correct traversal may ever
  // find it.
  std::thread writer([&] {
    EdgeId e = e35;
    while (!stop.load()) {
      EdgeId e57;
      {
        auto tx = db->BeginTx();
        if (!tx.DeleteEdge(n3, e).ok()) break;
        e57 = tx.CreateEdge(n5, n7);
        (void)tx.AssignEdgeProperty(n5, e57, "link", "up");
        if (!db->Commit(&tx).ok()) break;
      }
      {
        auto tx = db->BeginTx();
        if (!tx.DeleteEdge(n5, e57).ok()) break;
        e = tx.CreateEdge(n3, n5);
        (void)tx.AssignEdgeProperty(n3, e, "link", "up");
        if (!db->Commit(&tx).ok()) break;
      }
    }
  });

  // Reader: a fixed budget of traversals racing the writer.
  programs::BfsParams params;
  params.edge_prop_key = "link";
  params.edge_prop_value = "up";
  params.target = n7;
  const std::string blob = params.Encode();
  for (int i = 0; i < 60; ++i) {
    auto result = db->RunProgram(programs::kBfs, n1, blob);
    if (!result.ok()) continue;
    ++traversals;
    for (const auto& [_, ret] : result->returns) {
      if (ret == "found") phantom_paths.fetch_add(1);
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(traversals, 0);
  EXPECT_EQ(phantom_paths.load(), 0)
      << "a traversal observed a path that never existed";
}

// Atomic visibility: a transaction that writes k edges is seen entirely
// or not at all by count_edges programs.
TEST(ConsistencyTest, TransactionsAtomicUnderProgramReads) {
  auto db = Weaver::Open(FastOptions(2, 2));
  NodeId hub;
  std::vector<NodeId> spokes;
  {
    auto tx = db->BeginTx();
    hub = tx.CreateNode();
    for (int i = 0; i < 40; ++i) spokes.push_back(tx.CreateNode());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  constexpr int kBatch = 4;  // edges per transaction
  std::atomic<bool> stop{false};
  std::atomic<int> torn_reads{0};
  std::thread reader([&] {
    while (!stop.load()) {
      auto result = db->RunProgram(programs::kCountEdges, hub);
      if (!result.ok() || result->returns.empty()) continue;
      ByteReader r(result->returns[0].second);
      std::uint64_t count = 0;
      if (!r.GetU64(&count).ok()) continue;
      if (count % kBatch != 0) torn_reads.fetch_add(1);
    }
  });
  for (int round = 0; round < 10; ++round) {
    auto tx = db->BeginTx();
    for (int i = 0; i < kBatch; ++i) {
      tx.CreateEdge(hub, spokes[(round * kBatch + i) % spokes.size()]);
    }
    const Status st = db->Commit(&tx);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(torn_reads.load(), 0) << "program observed a half-applied tx";
}

// SS2 (paper §4.4): a node program invoked after a transaction's response
// must observe that transaction's effects.
TEST(ConsistencyTest, ProgramsNeverMissCompletedTransactions) {
  auto db = Weaver::Open(FastOptions(3, 2));
  NodeId n;
  {
    auto tx = db->BeginTx();
    n = tx.CreateNode();
    ASSERT_TRUE(tx.AssignNodeProperty(n, "v", "0").ok());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  // Alternate writes and reads; every read must see the preceding write.
  // Because Commit and RunProgram round-robin over different gatekeepers,
  // this exercises the concurrent-timestamp path through the oracle.
  for (int i = 1; i <= 50; ++i) {
    const Status st = db->RunTransaction([&](Transaction& tx) {
      return tx.AssignNodeProperty(n, "v", std::to_string(i));
    });
    ASSERT_TRUE(st.ok());
    auto result = db->RunProgram(programs::kGetNode, n);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->returns.size(), 1u);
    const auto decoded =
        programs::GetNodeResult::Decode(result->returns[0].second);
    ASSERT_EQ(decoded.properties.size(), 1u);
    EXPECT_EQ(decoded.properties[0].second, std::to_string(i))
        << "program missed a completed transaction's write (iteration "
        << i << ")";
  }
}

// A long-running traversal sees one consistent cut even while writers
// mutate disjoint parts of the graph (multi-version reads, paper §3.1).
TEST(ConsistencyTest, SnapshotStableAcrossWaves) {
  auto db = Weaver::Open(FastOptions(2, 3));
  // Ring of vertices all marked gen=0.
  constexpr int kRing = 24;
  std::vector<NodeId> ring;
  {
    auto tx = db->BeginTx();
    for (int i = 0; i < kRing; ++i) ring.push_back(tx.CreateNode());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  {
    auto tx = db->BeginTx();
    for (int i = 0; i < kRing; ++i) {
      const EdgeId e = tx.CreateEdge(ring[i], ring[(i + 1) % kRing]);
      ASSERT_TRUE(tx.AssignEdgeProperty(ring[i], e, "ring", "1").ok());
      ASSERT_TRUE(tx.AssignNodeProperty(ring[i], "gen", "0").ok());
    }
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> inconsistent{0};
  // Writer bumps the generation of ALL ring vertices atomically.
  std::thread writer([&] {
    int gen = 1;
    while (!stop.load()) {
      auto tx = db->BeginTx();
      for (int i = 0; i < kRing; ++i) {
        (void)tx.AssignNodeProperty(ring[i], "gen", std::to_string(gen));
      }
      if (db->Commit(&tx).ok()) ++gen;
    }
  });
  // Reader: BFS around the ring collecting gen values; all values in one
  // traversal must be equal (the traversal runs at one timestamp).
  for (int round = 0; round < 20; ++round) {
    programs::BfsParams params;
    params.edge_prop_key = "ring";
    params.edge_prop_value = "1";
    auto result = db->RunProgram(programs::kBfs, ring[0], params.Encode());
    if (!result.ok()) continue;
    // Visited ids are returned; fetch gen via a second pass at the same
    // timestamp is not possible from outside, so instead run get_node
    // checks through a fresh consistency probe: count distinct gens seen
    // by one clustering of returns. Here we approximate by checking the
    // traversal visited the whole ring (structure stable) -- structural
    // stability is the invariant BFS itself guarantees.
    int visited = 0;
    for (const auto& [_, ret] : result->returns) {
      if (!ret.empty()) ++visited;
    }
    if (visited != kRing) inconsistent.fetch_add(1);
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(inconsistent.load(), 0);
}

// Two concurrent transactions on the same vertex serialize: the final
// state reflects one of the two serial orders, never a mix.
TEST(ConsistencyTest, WriteWriteConflictsSerialize) {
  auto db = Weaver::Open(FastOptions(2, 2));
  NodeId n;
  {
    auto tx = db->BeginTx();
    n = tx.CreateNode();
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  std::atomic<int> committed{0};
  auto writer = [&](const std::string& a, const std::string& b) {
    const Status st = db->RunTransaction([&](Transaction& tx) {
      WEAVER_RETURN_IF_ERROR(tx.AssignNodeProperty(n, "x", a));
      WEAVER_RETURN_IF_ERROR(tx.AssignNodeProperty(n, "y", b));
      return Status::Ok();
    });
    if (st.ok()) committed.fetch_add(1);
  };
  std::thread t1(writer, "1", "1");
  std::thread t2(writer, "2", "2");
  t1.join();
  t2.join();
  ASSERT_EQ(committed.load(), 2);
  auto tx = db->BeginTx();
  auto snap = tx.GetNode(n);
  ASSERT_TRUE(snap.ok());
  // x and y must agree: both from tx1 or both from tx2.
  EXPECT_EQ(snap->GetProperty("x"), snap->GetProperty("y"));
}

}  // namespace
}  // namespace weaver
