// Cluster-bootstrap handshake tests (cluster/bootstrap.h): the refusal
// taxonomy a joining weaver-serverd can hit, the wildcard-slot path, and
// the invariant that a refused or half-finished joiner leaves no state
// behind -- the slot stays open and the next attempt succeeds.
//
// Everything here runs in-process: the "joiner" side is JoinCluster (the
// exact code path weaver-serverd uses) or a raw socket for the
// disconnect/garbage cases. Exec'ing a real serverd binary is covered by
// the multiprocess smoke test.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <future>
#include <string>

#include <gtest/gtest.h>

#include "cluster/bootstrap.h"
#include "cluster/handshake.h"
#include "coord/serverd.h"
#include "core/messages.h"

namespace weaver {
namespace cluster {
namespace {

constexpr std::uint64_t kJoinTimeout = 2'000'000;  // 2s per joiner attempt

ClusterListener::Options BaseOptions() {
  ClusterListener::Options o;
  o.token = "secret";
  o.cluster_epoch = 5;
  o.handshake_timeout_micros = 500'000;
  o.accept_timeout_micros = 5'000'000;
  return o;
}

// A plausible assignment image; the listener stamps role/shard/epoch at
// accept time, so the same image serves every slot.
RoleAssignMessage Assignment() {
  serverd::ShardServerOptions so;
  so.num_shards = 2;
  so.num_gatekeepers = 1;
  return serverd::AssignmentFromOptions(so);
}

JoinRequestMessage GoodRequest(NodeRole role, std::uint32_t shard_id) {
  JoinRequestMessage req;
  req.role = role;
  req.shard_id = shard_id;
  req.token = "secret";
  req.pid = 4242;
  return req;
}

// Connects a raw loopback socket to `port` (no handshake traffic).
int RawConnect(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

TEST(ClusterBootstrapTest, RefusalTaxonomyThenAcceptance) {
  auto listener = ClusterListener::Open(BaseOptions());
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  ClusterListener& l = **listener;
  ASSERT_TRUE(l.OpenSlot(NodeRole::kShard, 0, Assignment()).ok());

  // The accept loop must survive every refusal below and still hand back
  // the eventual valid joiner.
  auto accepted =
      std::async(std::launch::async, [&] { return l.AcceptJoin(); });

  // Codec-version skew.
  JoinRequestMessage bad_version = GoodRequest(NodeRole::kShard, 0);
  bad_version.codec_version = kWireCodecVersion + 1;
  auto r = JoinCluster(l.port(), bad_version, kJoinTimeout);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();

  // Wrong join token.
  JoinRequestMessage bad_token = GoodRequest(NodeRole::kShard, 0);
  bad_token.token = "wrong";
  r = JoinCluster(l.port(), bad_token, kJoinTimeout);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAborted()) << r.status().ToString();

  // Stale expected epoch (a respawn from a previous incarnation).
  JoinRequestMessage stale = GoodRequest(NodeRole::kShard, 0);
  stale.cluster_epoch = 4;  // listener is at 5
  r = JoinCluster(l.port(), stale, kJoinTimeout);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition()) << r.status().ToString();

  // No open slot for (role, id).
  r = JoinCluster(l.port(), GoodRequest(NodeRole::kShard, 7), kJoinTimeout);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound()) << r.status().ToString();
  r = JoinCluster(l.port(), GoodRequest(NodeRole::kOracle, 0), kJoinTimeout);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound()) << r.status().ToString();

  // The valid joiner, with no epoch expectation (fresh exec).
  auto good = JoinCluster(l.port(), GoodRequest(NodeRole::kShard, 0),
                          kJoinTimeout);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->assignment.role, NodeRole::kShard);
  EXPECT_EQ(good->assignment.shard_id, 0u);
  EXPECT_EQ(good->assignment.cluster_epoch, 5u);
  EXPECT_EQ(good->assignment.num_shards, 2u);
  EXPECT_EQ(good->assignment.num_gatekeepers, 1u);

  auto joined = accepted.get();
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_EQ(joined->role, NodeRole::kShard);
  EXPECT_EQ(joined->shard_id, 0u);
  EXPECT_EQ(joined->pid, 4242u);
  ASSERT_GE(joined->fd, 0);

  // Duplicate: the shard-0 slot is live now. Another accept loop (fed by
  // an open oracle slot so it can terminate) must refuse the duplicate.
  ASSERT_TRUE(l.OpenSlot(NodeRole::kOracle, 0, Assignment()).ok());
  auto accepted2 =
      std::async(std::launch::async, [&] { return l.AcceptJoin(); });
  r = JoinCluster(l.port(), GoodRequest(NodeRole::kShard, 0), kJoinTimeout);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAlreadyExists()) << r.status().ToString();
  auto oracle = JoinCluster(l.port(), GoodRequest(NodeRole::kOracle, 0),
                            kJoinTimeout);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_EQ(oracle->assignment.role, NodeRole::kOracle);
  auto joined2 = accepted2.get();
  ASSERT_TRUE(joined2.ok()) << joined2.status().ToString();
  EXPECT_EQ(joined2->role, NodeRole::kOracle);

  auto stats = l.stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected_version, 1u);
  EXPECT_EQ(stats.rejected_token, 1u);
  EXPECT_EQ(stats.rejected_epoch, 1u);
  EXPECT_EQ(stats.rejected_duplicate, 1u);
  EXPECT_EQ(stats.rejected_no_slot, 2u);
  EXPECT_EQ(stats.handshake_failures, 0u);

  ::close(good->fd);
  ::close(oracle->fd);
  ::close(joined->fd);
  ::close(joined2->fd);
}

TEST(ClusterBootstrapTest, WildcardShardIdFillsOpenSlot) {
  auto listener = ClusterListener::Open(BaseOptions());
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  ClusterListener& l = **listener;
  ASSERT_TRUE(l.OpenSlot(NodeRole::kShard, 3, Assignment()).ok());

  auto accepted =
      std::async(std::launch::async, [&] { return l.AcceptJoin(); });
  auto good = JoinCluster(l.port(), GoodRequest(NodeRole::kShard, kAnyShard),
                          kJoinTimeout);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  // The wildcard is resolved to the concrete open slot.
  EXPECT_EQ(good->assignment.shard_id, 3u);
  auto joined = accepted.get();
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_EQ(joined->shard_id, 3u);
  ::close(good->fd);
  ::close(joined->fd);
}

TEST(ClusterBootstrapTest, MidHandshakeDisconnectLeaksNoState) {
  auto listener = ClusterListener::Open(BaseOptions());
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  ClusterListener& l = **listener;
  ASSERT_TRUE(l.OpenSlot(NodeRole::kShard, 0, Assignment()).ok());

  auto accepted =
      std::async(std::launch::async, [&] { return l.AcceptJoin(); });

  // Connect and vanish before sending anything (EOF mid-handshake).
  int eof_fd = RawConnect(l.port());
  ::close(eof_fd);

  // Connect and spray garbage that can never parse as a wire frame.
  int garbage_fd = RawConnect(l.port());
  std::string garbage(64, 'x');
  ASSERT_EQ(::write(garbage_fd, garbage.data(), garbage.size()),
            static_cast<ssize_t>(garbage.size()));
  ::close(garbage_fd);

  // Neither attempt consumed the slot: a well-formed joiner still lands.
  auto good = JoinCluster(l.port(), GoodRequest(NodeRole::kShard, 0),
                          kJoinTimeout);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  auto joined = accepted.get();
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();

  auto stats = l.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_GE(stats.handshake_failures, 2u);
  EXPECT_EQ(stats.rejected_version + stats.rejected_token +
                stats.rejected_epoch + stats.rejected_duplicate +
                stats.rejected_no_slot,
            0u);

  ::close(good->fd);
  ::close(joined->fd);
}

TEST(ClusterBootstrapTest, ReleaseRoleReopensForRespawn) {
  auto listener = ClusterListener::Open(BaseOptions());
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  ClusterListener& l = **listener;
  ASSERT_TRUE(l.OpenSlot(NodeRole::kGatekeeper, 0, Assignment()).ok());

  auto accepted =
      std::async(std::launch::async, [&] { return l.AcceptJoin(); });
  auto first = JoinCluster(l.port(), GoodRequest(NodeRole::kGatekeeper, 0),
                           kJoinTimeout);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto joined = accepted.get();
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  ::close(first->fd);
  ::close(joined->fd);

  // Fence + release: the slot is gone entirely, so a joiner is refused
  // with NotFound (not AlreadyExists -- the dead incarnation holds
  // nothing).
  l.ReleaseRole(NodeRole::kGatekeeper, 0);
  ASSERT_TRUE(l.OpenSlot(NodeRole::kOracle, 0, Assignment()).ok());
  auto accepted2 =
      std::async(std::launch::async, [&] { return l.AcceptJoin(); });
  auto refused = JoinCluster(l.port(), GoodRequest(NodeRole::kGatekeeper, 0),
                             kJoinTimeout);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsNotFound()) << refused.status().ToString();
  auto oracle = JoinCluster(l.port(), GoodRequest(NodeRole::kOracle, 0),
                            kJoinTimeout);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  auto joined2 = accepted2.get();
  ASSERT_TRUE(joined2.ok()) << joined2.status().ToString();
  ::close(oracle->fd);
  ::close(joined2->fd);

  // Respawn path: re-open the slot (epoch bumped, as a recovery would)
  // and the replacement joins.
  l.set_cluster_epoch(6);
  ASSERT_TRUE(l.OpenSlot(NodeRole::kGatekeeper, 0, Assignment()).ok());
  auto accepted3 =
      std::async(std::launch::async, [&] { return l.AcceptJoin(); });
  auto second = JoinCluster(l.port(), GoodRequest(NodeRole::kGatekeeper, 0),
                            kJoinTimeout);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->assignment.cluster_epoch, 6u);
  auto joined3 = accepted3.get();
  ASSERT_TRUE(joined3.ok()) << joined3.status().ToString();
  ::close(second->fd);
  ::close(joined3->fd);

  // Double-open of a live or open slot is refused.
  EXPECT_TRUE(l.OpenSlot(NodeRole::kOracle, 0, Assignment())
                  .IsFailedPrecondition());
}

TEST(ClusterBootstrapTest, AcceptTimesOutWithNoJoiner) {
  auto opts = BaseOptions();
  opts.accept_timeout_micros = 200'000;
  auto listener = ClusterListener::Open(opts);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  ClusterListener& l = **listener;
  ASSERT_TRUE(l.OpenSlot(NodeRole::kShard, 0, Assignment()).ok());
  auto joined = l.AcceptJoin();
  ASSERT_FALSE(joined.ok());
  EXPECT_TRUE(joined.status().IsDeadlineExceeded())
      << joined.status().ToString();
}

}  // namespace
}  // namespace cluster
}  // namespace weaver
