// Tests for the multi-version property graph: PropertySet version chains,
// visibility at timestamps, GraphStore CRUD, serialization, GC.
#include "graph/graph_store.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/property.h"

namespace weaver {
namespace {

// All timestamps in this file come from a single logical gatekeeper, so
// plain vector-clock comparison is total; the order function is the
// trivial one.
RefinableTimestamp Ts(std::uint64_t seq) {
  VectorClock c(0, std::vector<std::uint64_t>{seq});
  return RefinableTimestamp(c, 0, seq);
}

OrderFn PlainOrder() {
  return [](const RefinableTimestamp& a, const RefinableTimestamp& b) {
    return a.Compare(b);
  };
}

// ---- PropertySet ----------------------------------------------------------

TEST(PropertySetTest, AssignThenReadBack) {
  PropertySet props;
  props.Assign("color", "red", Ts(1));
  EXPECT_EQ(props.ValueAt("color", Ts(2), PlainOrder()), "red");
}

TEST(PropertySetTest, InvisibleBeforeCreation) {
  PropertySet props;
  props.Assign("color", "red", Ts(5));
  EXPECT_EQ(props.ValueAt("color", Ts(4), PlainOrder()), std::nullopt);
}

TEST(PropertySetTest, VisibleAtExactCreationTimestamp) {
  PropertySet props;
  props.Assign("color", "red", Ts(5));
  EXPECT_EQ(props.ValueAt("color", Ts(5), PlainOrder()), "red");
}

TEST(PropertySetTest, ReassignmentSupersedes) {
  PropertySet props;
  props.Assign("color", "red", Ts(1));
  props.Assign("color", "blue", Ts(3));
  const auto order = PlainOrder();
  EXPECT_EQ(props.ValueAt("color", Ts(2), order), "red");
  EXPECT_EQ(props.ValueAt("color", Ts(4), order), "blue");
  EXPECT_EQ(props.VersionCount(), 2u);
}

TEST(PropertySetTest, RemoveHidesFromLaterReads) {
  PropertySet props;
  props.Assign("color", "red", Ts(1));
  EXPECT_TRUE(props.Remove("color", Ts(3)));
  const auto order = PlainOrder();
  EXPECT_EQ(props.ValueAt("color", Ts(2), order), "red");  // time travel
  EXPECT_EQ(props.ValueAt("color", Ts(4), order), std::nullopt);
}

TEST(PropertySetTest, RemoveMissingReturnsFalse) {
  PropertySet props;
  EXPECT_FALSE(props.Remove("nope", Ts(1)));
}

TEST(PropertySetTest, DistinctKeysIndependent) {
  PropertySet props;
  props.Assign("weight", "3.0", Ts(1));
  props.Assign("color", "red", Ts(1));
  props.Remove("weight", Ts(2));
  const auto order = PlainOrder();
  EXPECT_EQ(props.ValueAt("color", Ts(3), order), "red");
  EXPECT_EQ(props.ValueAt("weight", Ts(3), order), std::nullopt);
}

TEST(PropertySetTest, CheckMatchesKeyAndValue) {
  PropertySet props;
  props.Assign("color", "red", Ts(1));
  const auto order = PlainOrder();
  EXPECT_TRUE(props.Check("color", "red", Ts(2), order));
  EXPECT_FALSE(props.Check("color", "blue", Ts(2), order));
  EXPECT_FALSE(props.Check("shape", "red", Ts(2), order));
}

TEST(PropertySetTest, SnapshotAtReturnsAllLive) {
  PropertySet props;
  props.Assign("a", "1", Ts(1));
  props.Assign("b", "2", Ts(2));
  props.Remove("a", Ts(3));
  const auto snap = props.SnapshotAt(Ts(4), PlainOrder());
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].first, "b");
}

TEST(PropertySetTest, GcDropsDeadVersions) {
  PropertySet props;
  props.Assign("a", "1", Ts(1));
  props.Assign("a", "2", Ts(2));  // version 1 deleted at Ts(2)
  props.Assign("a", "3", Ts(3));  // version 2 deleted at Ts(3)
  EXPECT_EQ(props.VersionCount(), 3u);
  EXPECT_EQ(props.CollectBefore(Ts(10), PlainOrder()), 2u);
  EXPECT_EQ(props.VersionCount(), 1u);
  EXPECT_EQ(props.ValueAt("a", Ts(10), PlainOrder()), "3");
}

TEST(PropertySetTest, GcKeepsVersionsVisibleToWatermark) {
  PropertySet props;
  props.Assign("a", "1", Ts(1));
  props.Assign("a", "2", Ts(5));
  // Watermark at 3: version 1 (deleted at 5) is still visible to a reader
  // at 3 and must survive.
  EXPECT_EQ(props.CollectBefore(Ts(3), PlainOrder()), 0u);
  EXPECT_EQ(props.ValueAt("a", Ts(3), PlainOrder()), "1");
}

// ---- GraphStore ------------------------------------------------------------

TEST(GraphStoreTest, CreateAndFindNode) {
  GraphStore g;
  ASSERT_TRUE(g.CreateNode(1, Ts(1)).ok());
  const Node* n = g.FindNode(1);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->id, 1u);
  EXPECT_TRUE(n->VisibleAt(Ts(2), PlainOrder()));
  EXPECT_FALSE(n->VisibleAt(Ts(0), PlainOrder()));
}

TEST(GraphStoreTest, DuplicateCreateRejected) {
  GraphStore g;
  ASSERT_TRUE(g.CreateNode(1, Ts(1)).ok());
  EXPECT_TRUE(g.CreateNode(1, Ts(2)).IsAlreadyExists());
}

TEST(GraphStoreTest, DeleteNodeIsMarkNotErase) {
  GraphStore g;
  ASSERT_TRUE(g.CreateNode(1, Ts(1)).ok());
  ASSERT_TRUE(g.DeleteNode(1, Ts(5)).ok());
  const Node* n = g.FindNode(1);
  ASSERT_NE(n, nullptr);  // still present: multi-version
  EXPECT_TRUE(n->VisibleAt(Ts(3), PlainOrder()));   // historical read
  EXPECT_FALSE(n->VisibleAt(Ts(6), PlainOrder()));  // current read
}

TEST(GraphStoreTest, DoubleDeleteRejected) {
  GraphStore g;
  ASSERT_TRUE(g.CreateNode(1, Ts(1)).ok());
  ASSERT_TRUE(g.DeleteNode(1, Ts(2)).ok());
  EXPECT_TRUE(g.DeleteNode(1, Ts(3)).IsFailedPrecondition());
}

TEST(GraphStoreTest, EdgesVisibleAtTimestamps) {
  GraphStore g;
  ASSERT_TRUE(g.CreateNode(1, Ts(1)).ok());
  ASSERT_TRUE(g.CreateNode(2, Ts(1)).ok());
  ASSERT_TRUE(g.CreateEdge(100, 1, 2, Ts(3)).ok());
  ASSERT_TRUE(g.DeleteEdge(1, 100, Ts(7)).ok());
  const Node* n = g.FindNode(1);
  const auto order = PlainOrder();
  EXPECT_EQ(n->OutDegreeAt(Ts(2), order), 0u);
  EXPECT_EQ(n->OutDegreeAt(Ts(5), order), 1u);
  EXPECT_EQ(n->OutDegreeAt(Ts(8), order), 0u);
}

TEST(GraphStoreTest, EdgeOnDeletedNodeRejected) {
  GraphStore g;
  ASSERT_TRUE(g.CreateNode(1, Ts(1)).ok());
  ASSERT_TRUE(g.DeleteNode(1, Ts(2)).ok());
  EXPECT_TRUE(g.CreateEdge(100, 1, 2, Ts(3)).IsFailedPrecondition());
}

TEST(GraphStoreTest, EdgeOnMissingNodeNotFound) {
  GraphStore g;
  EXPECT_TRUE(g.CreateEdge(100, 9, 2, Ts(1)).IsNotFound());
  EXPECT_TRUE(g.DeleteEdge(9, 100, Ts(1)).IsNotFound());
}

TEST(GraphStoreTest, NodeAndEdgePropertiesAreVersioned) {
  GraphStore g;
  ASSERT_TRUE(g.CreateNode(1, Ts(1)).ok());
  ASSERT_TRUE(g.CreateEdge(100, 1, 2, Ts(1)).ok());
  ASSERT_TRUE(g.AssignNodeProperty(1, "name", "alice", Ts(2)).ok());
  ASSERT_TRUE(g.AssignEdgeProperty(1, 100, "weight", "3.0", Ts(2)).ok());
  ASSERT_TRUE(g.AssignEdgeProperty(1, 100, "weight", "4.0", Ts(4)).ok());
  const Node* n = g.FindNode(1);
  const auto order = PlainOrder();
  EXPECT_EQ(n->props.ValueAt("name", Ts(3), order), "alice");
  const Edge& e = n->out_edges.at(100);
  EXPECT_EQ(e.props.ValueAt("weight", Ts(3), order), "3.0");
  EXPECT_EQ(e.props.ValueAt("weight", Ts(5), order), "4.0");
}

TEST(GraphStoreTest, RemoveMissingPropertyNotFound) {
  GraphStore g;
  ASSERT_TRUE(g.CreateNode(1, Ts(1)).ok());
  EXPECT_TRUE(g.RemoveNodeProperty(1, "nope", Ts(2)).IsNotFound());
}

TEST(GraphStoreTest, LastUpdateTracksWrites) {
  GraphStore g;
  ASSERT_TRUE(g.CreateNode(1, Ts(1)).ok());
  ASSERT_TRUE(g.AssignNodeProperty(1, "k", "v", Ts(9)).ok());
  EXPECT_EQ(g.FindNode(1)->last_update.local_seq, 9u);
}

TEST(GraphStoreTest, SerializeDeserializeRoundTrip) {
  GraphStore g;
  ASSERT_TRUE(g.CreateNode(1, Ts(1)).ok());
  ASSERT_TRUE(g.AssignNodeProperty(1, "name", "alice", Ts(2)).ok());
  ASSERT_TRUE(g.CreateEdge(100, 1, 2, Ts(3)).ok());
  ASSERT_TRUE(g.AssignEdgeProperty(1, 100, "w", "1", Ts(3)).ok());
  ASSERT_TRUE(g.DeleteEdge(1, 100, Ts(5)).ok());

  const std::string blob = GraphStore::SerializeNode(*g.FindNode(1));
  auto restored = GraphStore::DeserializeNode(blob);
  ASSERT_TRUE(restored.ok());
  const auto order = PlainOrder();
  EXPECT_EQ(restored->id, 1u);
  EXPECT_EQ(restored->props.ValueAt("name", Ts(3), order), "alice");
  ASSERT_EQ(restored->out_edges.size(), 1u);
  // The deleted edge survives with its full version history.
  EXPECT_TRUE(restored->out_edges.at(100).VisibleAt(Ts(4), order));
  EXPECT_FALSE(restored->out_edges.at(100).VisibleAt(Ts(6), order));
  EXPECT_EQ(restored->last_update.local_seq, 5u);
}

TEST(GraphStoreTest, DeserializeGarbageFails) {
  EXPECT_FALSE(GraphStore::DeserializeNode("nonsense").ok());
}

TEST(GraphStoreTest, GcErasesDeletedObjects) {
  GraphStore g;
  ASSERT_TRUE(g.CreateNode(1, Ts(1)).ok());
  ASSERT_TRUE(g.CreateNode(2, Ts(1)).ok());
  ASSERT_TRUE(g.CreateEdge(100, 1, 2, Ts(2)).ok());
  ASSERT_TRUE(g.DeleteEdge(1, 100, Ts(3)).ok());
  ASSERT_TRUE(g.DeleteNode(2, Ts(3)).ok());
  EXPECT_GT(g.CollectBefore(Ts(10), PlainOrder()), 0u);
  EXPECT_EQ(g.FindNode(2), nullptr);                  // erased
  EXPECT_TRUE(g.FindNode(1)->out_edges.empty());      // edge erased
  EXPECT_NE(g.FindNode(1), nullptr);                  // live node kept
}

TEST(GraphStoreTest, GcKeepsObjectsVisibleAtWatermark) {
  GraphStore g;
  ASSERT_TRUE(g.CreateNode(1, Ts(1)).ok());
  ASSERT_TRUE(g.DeleteNode(1, Ts(8)).ok());
  EXPECT_EQ(g.CollectBefore(Ts(5), PlainOrder()), 0u);
  ASSERT_NE(g.FindNode(1), nullptr);
  EXPECT_TRUE(g.FindNode(1)->VisibleAt(Ts(5), PlainOrder()));
}

TEST(GraphStoreTest, InstallAndEvict) {
  GraphStore g;
  Node n;
  n.id = 42;
  n.created = Ts(1);
  g.InstallNode(std::move(n));
  EXPECT_TRUE(g.ContainsNode(42));
  g.EvictNode(42);
  EXPECT_FALSE(g.ContainsNode(42));
}

TEST(GraphStoreTest, AllNodeIdsEnumerates) {
  GraphStore g;
  ASSERT_TRUE(g.CreateNode(1, Ts(1)).ok());
  ASSERT_TRUE(g.CreateNode(2, Ts(1)).ok());
  auto ids = g.AllNodeIds();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<NodeId>{1, 2}));
}

}  // namespace
}  // namespace weaver
