// End-to-end tests of the full deployment: transactions, node programs,
// snapshot isolation, and the paper's motivating scenarios (Fig 1, Fig 2).
#include "core/weaver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "programs/standard_programs.h"

namespace weaver {
namespace {

// Sanitizer builds run the deployment an order of magnitude slower, and
// the aggressive timer periods below then produce announce/NOP messages
// faster than the instrumented shard loops can drain them (the bus has no
// backpressure; see ROADMAP). Relax the timers under sanitizers so the
// concurrency tests exercise the same interleavings at a survivable rate.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr std::uint64_t kTimerScale = 20;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr std::uint64_t kTimerScale = 20;
#else
constexpr std::uint64_t kTimerScale = 1;
#endif
#else
constexpr std::uint64_t kTimerScale = 1;
#endif

WeaverOptions FastOptions(std::size_t gks = 2, std::size_t shards = 2) {
  WeaverOptions o;
  o.num_gatekeepers = gks;
  o.num_shards = shards;
  o.tau_micros = 200 * kTimerScale;
  o.nop_period_micros = 100 * kTimerScale;
  return o;
}

TEST(WeaverE2E, OpenAndShutdown) {
  auto db = Weaver::Open(FastOptions());
  EXPECT_TRUE(db->started());
  EXPECT_EQ(db->num_gatekeepers(), 2u);
  EXPECT_EQ(db->num_shards(), 2u);
  db->Shutdown();
  EXPECT_FALSE(db->started());
}

TEST(WeaverE2E, CreateNodeAndReadBack) {
  auto db = Weaver::Open(FastOptions());
  auto tx = db->BeginTx();
  const NodeId n = tx.CreateNode();
  ASSERT_TRUE(tx.AssignNodeProperty(n, "name", "alice").ok());
  ASSERT_TRUE(db->Commit(&tx).ok());
  EXPECT_TRUE(tx.committed());
  EXPECT_TRUE(tx.timestamp().valid());

  auto tx2 = db->BeginTx();
  auto snap = tx2.GetNode(n);
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(snap->exists);
  EXPECT_EQ(snap->GetProperty("name"), "alice");
}

TEST(WeaverE2E, Fig2PhotoAclTransaction) {
  // The paper's Fig 2: post a photo and set up its ACL atomically.
  auto db = Weaver::Open(FastOptions());
  // Setup: a user and three friends.
  NodeId user, f1, f2, f3;
  {
    auto tx = db->BeginTx();
    user = tx.CreateNode();
    f1 = tx.CreateNode();
    f2 = tx.CreateNode();
    f3 = tx.CreateNode();
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  // The Fig 2 transaction.
  NodeId photo;
  {
    auto tx = db->BeginTx();
    photo = tx.CreateNode();
    const EdgeId own = tx.CreateEdge(user, photo);
    ASSERT_TRUE(tx.AssignEdgeProperty(user, own, "OWNS", "1").ok());
    for (NodeId nbr : {f1, f2}) {  // f3 not permitted
      const EdgeId access = tx.CreateEdge(photo, nbr);
      ASSERT_TRUE(tx.AssignEdgeProperty(photo, access, "VISIBLE", "1").ok());
    }
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  // Reads see the whole ACL or nothing (here: the whole thing).
  auto tx = db->BeginTx();
  auto snap = tx.GetNode(photo);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->edges.size(), 2u);
}

TEST(WeaverE2E, DeleteNodeThenOpsFail) {
  auto db = Weaver::Open(FastOptions());
  NodeId n;
  {
    auto tx = db->BeginTx();
    n = tx.CreateNode();
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  {
    auto tx = db->BeginTx();
    ASSERT_TRUE(tx.DeleteNode(n).ok());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  {
    auto tx = db->BeginTx();
    (void)tx.CreateEdge(n, n);
    EXPECT_FALSE(db->Commit(&tx).ok());  // source deleted
  }
  {
    auto tx = db->BeginTx();
    auto exists = tx.NodeExists(n);
    ASSERT_TRUE(exists.ok());
    EXPECT_FALSE(*exists);
  }
}

TEST(WeaverE2E, CommitOnUnknownVertexFails) {
  auto db = Weaver::Open(FastOptions());
  auto tx = db->BeginTx();
  ASSERT_TRUE(tx.AssignNodeProperty(999999, "k", "v").ok());
  EXPECT_TRUE(db->Commit(&tx).IsNotFound());
}

TEST(WeaverE2E, RunTransactionRetriesOnConflict) {
  auto db = Weaver::Open(FastOptions());
  NodeId counter;
  {
    auto tx = db->BeginTx();
    counter = tx.CreateNode();
    ASSERT_TRUE(tx.AssignNodeProperty(counter, "value", "0").ok());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  // Concurrent read-modify-write increments: every one must land.
  constexpr int kThreads = 4;
  constexpr int kIncrements = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        const Status st = db->RunTransaction(
            [&](Transaction& tx) -> Status {
              auto snap = tx.GetNode(counter);
              if (!snap.ok()) return snap.status();
              const int cur = std::stoi(*snap->GetProperty("value"));
              return tx.AssignNodeProperty(counter, "value",
                                           std::to_string(cur + 1));
            },
            /*max_attempts=*/100);
        if (!st.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto tx = db->BeginTx();
  auto snap = tx.GetNode(counter);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(*snap->GetProperty("value"),
            std::to_string(kThreads * kIncrements));
}

TEST(WeaverE2E, GetNodeProgramSeesCommittedWrites) {
  auto db = Weaver::Open(FastOptions());
  NodeId n;
  {
    auto tx = db->BeginTx();
    n = tx.CreateNode();
    ASSERT_TRUE(tx.AssignNodeProperty(n, "name", "bob").ok());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  auto result = db->RunProgram(programs::kGetNode, n);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->returns.size(), 1u);
  const auto decoded =
      programs::GetNodeResult::Decode(result->returns[0].second);
  EXPECT_TRUE(decoded.exists);
  ASSERT_EQ(decoded.properties.size(), 1u);
  EXPECT_EQ(decoded.properties[0].second, "bob");
}

TEST(WeaverE2E, ProgramOnMissingVertexReturnsNothing) {
  auto db = Weaver::Open(FastOptions());
  // Vertex id never created: locator lookup fails; no returns.
  auto result = db->RunProgram(programs::kGetNode, 424242);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->returns.empty());
}

TEST(WeaverE2E, UnknownProgramRejected) {
  auto db = Weaver::Open(FastOptions());
  EXPECT_TRUE(db->RunProgram("no_such_program", 1).status().IsNotFound());
}

TEST(WeaverE2E, BfsCrossShardTraversal) {
  auto db = Weaver::Open(FastOptions(2, 3));
  // Chain a -> b -> c -> d spread across shards.
  std::vector<NodeId> chain;
  {
    auto tx = db->BeginTx();
    for (int i = 0; i < 4; ++i) chain.push_back(tx.CreateNode());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  {
    auto tx = db->BeginTx();
    for (int i = 0; i < 3; ++i) {
      const EdgeId e = tx.CreateEdge(chain[i], chain[i + 1]);
      ASSERT_TRUE(tx.AssignEdgeProperty(chain[i], e, "rel", "follows").ok());
    }
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  programs::BfsParams params;
  params.edge_prop_key = "rel";
  params.edge_prop_value = "follows";
  params.target = chain[3];
  auto result =
      db->RunProgram(programs::kBfs, chain[0], params.Encode());
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const auto& [node, ret] : result->returns) {
    if (ret == "found") {
      found = true;
      EXPECT_EQ(node, chain[3]);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_GE(result->waves, 2u);  // crossed shard boundaries
}

TEST(WeaverE2E, BfsRespectsEdgePropertyFilter) {
  auto db = Weaver::Open(FastOptions());
  NodeId a, b;
  {
    auto tx = db->BeginTx();
    a = tx.CreateNode();
    b = tx.CreateNode();
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  {
    auto tx = db->BeginTx();
    const EdgeId e = tx.CreateEdge(a, b);
    ASSERT_TRUE(tx.AssignEdgeProperty(a, e, "rel", "blocks").ok());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  programs::BfsParams params;
  params.edge_prop_key = "rel";
  params.edge_prop_value = "follows";  // does not match "blocks"
  params.target = b;
  auto result = db->RunProgram(programs::kBfs, a, params.Encode());
  ASSERT_TRUE(result.ok());
  for (const auto& [_, ret] : result->returns) {
    EXPECT_NE(ret, "found");
  }
}

TEST(WeaverE2E, CountEdgesProgram) {
  auto db = Weaver::Open(FastOptions());
  NodeId hub;
  {
    auto tx = db->BeginTx();
    hub = tx.CreateNode();
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  {
    auto tx = db->BeginTx();
    for (int i = 0; i < 5; ++i) {
      const NodeId spoke = tx.CreateNode();
      tx.CreateEdge(hub, spoke);
    }
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  auto result = db->RunProgram(programs::kCountEdges, hub);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->returns.size(), 1u);
  ByteReader r(result->returns[0].second);
  std::uint64_t count = 0;
  ASSERT_TRUE(r.GetU64(&count).ok());
  EXPECT_EQ(count, 5u);
}

TEST(WeaverE2E, ShortestPathProgram) {
  auto db = Weaver::Open(FastOptions(2, 3));
  // Diamond with a long way around: a->b->d (2) and a->c1->c2->d (3).
  NodeId a, b, c1, c2, d;
  {
    auto tx = db->BeginTx();
    a = tx.CreateNode();
    b = tx.CreateNode();
    c1 = tx.CreateNode();
    c2 = tx.CreateNode();
    d = tx.CreateNode();
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  {
    auto tx = db->BeginTx();
    tx.CreateEdge(a, b);
    tx.CreateEdge(b, d);
    tx.CreateEdge(a, c1);
    tx.CreateEdge(c1, c2);
    tx.CreateEdge(c2, d);
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  programs::ShortestPathParams params;
  params.target = d;
  auto result = db->RunProgram(programs::kShortestPath, a, params.Encode());
  ASSERT_TRUE(result.ok());
  std::uint32_t best = ~0u;
  for (const auto& [node, ret] : result->returns) {
    EXPECT_EQ(node, d);
    ByteReader r(ret);
    std::uint32_t dist = 0;
    ASSERT_TRUE(r.GetU32(&dist).ok());
    best = std::min(best, dist);
  }
  EXPECT_EQ(best, 2u);
}

TEST(WeaverE2E, BulkLoadThenQuery) {
  WeaverOptions o = FastOptions(2, 2);
  o.start = false;
  auto db = Weaver::Open(o);
  ASSERT_TRUE(db->BulkCreateNode(1, {{"name", "a"}}).ok());
  ASSERT_TRUE(db->BulkCreateNode(2, {{"name", "b"}}).ok());
  auto e = db->BulkCreateEdge(1, 2, {{"rel", "follows"}});
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(db->FinishBulkLoad().ok());
  db->Start();

  auto result = db->RunProgram(programs::kGetEdges, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->returns.size(), 1u);
  const auto decoded =
      programs::GetEdgesResult::Decode(result->returns[0].second);
  ASSERT_EQ(decoded.edges.size(), 1u);
  EXPECT_EQ(decoded.edges[0].second, 2u);
}

TEST(WeaverE2E, BulkLoadAfterStartRejected) {
  auto db = Weaver::Open(FastOptions());
  EXPECT_TRUE(db->BulkCreateNode(1).IsFailedPrecondition());
}

TEST(WeaverE2E, HistoricalReads) {
  // Multi-version graph supports reads at old timestamps: a node program
  // issued before a delete (by timestamp) still sees the object.
  auto db = Weaver::Open(FastOptions());
  NodeId a, b;
  {
    auto tx = db->BeginTx();
    a = tx.CreateNode();
    b = tx.CreateNode();
    tx.CreateEdge(a, b);
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  // Delete the edge...
  {
    auto tx = db->BeginTx();
    auto snap = tx.GetNode(a);
    ASSERT_TRUE(snap.ok());
    ASSERT_EQ(snap->edges.size(), 1u);
    ASSERT_TRUE(tx.DeleteEdge(a, snap->edges[0].id).ok());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  // ...a fresh program (later timestamp) sees no edges,
  auto result = db->RunProgram(programs::kCountEdges, a);
  ASSERT_TRUE(result.ok());
  ByteReader r(result->returns[0].second);
  std::uint64_t count = 1;
  ASSERT_TRUE(r.GetU64(&count).ok());
  EXPECT_EQ(count, 0u);
  // ...but the version chain still holds the deleted edge until GC.
  db->RunGarbageCollection();
}

TEST(WeaverE2E, GarbageCollectionShrinksState) {
  auto db = Weaver::Open(FastOptions());
  NodeId n;
  {
    auto tx = db->BeginTx();
    n = tx.CreateNode();
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  // Churn some property versions.
  for (int i = 0; i < 10; ++i) {
    auto tx = db->BeginTx();
    ASSERT_TRUE(
        tx.AssignNodeProperty(n, "v", std::to_string(i)).ok());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  // Allow the shard loops to drain, then GC.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  db->RunGarbageCollection();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // The program still sees the latest value.
  auto result = db->RunProgram(programs::kGetNode, n);
  ASSERT_TRUE(result.ok());
  const auto decoded =
      programs::GetNodeResult::Decode(result->returns[0].second);
  ASSERT_EQ(decoded.properties.size(), 1u);
  EXPECT_EQ(decoded.properties[0].second, "9");
}

TEST(WeaverE2E, ManyConcurrentClients) {
  auto db = Weaver::Open(FastOptions(3, 3));
  // Seed a small graph.
  std::vector<NodeId> nodes;
  {
    auto tx = db->BeginTx();
    for (int i = 0; i < 20; ++i) nodes.push_back(tx.CreateNode());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  std::vector<std::thread> clients;
  std::atomic<int> commits{0}, reads{0};
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 30; ++i) {
        if ((i + t) % 3 == 0) {
          // Writer: add an edge.
          const Status st = db->RunTransaction([&](Transaction& tx) {
            tx.CreateEdge(nodes[(t * 7 + i) % nodes.size()],
                          nodes[(t * 11 + i + 1) % nodes.size()]);
            return Status::Ok();
          });
          if (st.ok()) commits.fetch_add(1);
        } else {
          auto r = db->RunProgram(programs::kCountEdges,
                                  nodes[(t * 13 + i) % nodes.size()]);
          if (r.ok()) reads.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_GT(commits.load(), 0);
  EXPECT_GT(reads.load(), 0);
  // No FIFO violations anywhere.
  for (std::size_t s = 0; s < db->num_shards(); ++s) {
    EXPECT_EQ(db->shard(static_cast<ShardId>(s)).stats().seq_violations.load(),
              0u);
  }
}

}  // namespace
}  // namespace weaver
