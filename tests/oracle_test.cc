// Tests for the timeline oracle: acyclicity, irrevocability, transitivity,
// vector-clock-implied ordering, GC contraction (paper §3.4, §4.1, §4.5).
#include "oracle/timeline_oracle.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "common/random.h"
#include "oracle/chain.h"

namespace weaver {
namespace {

RefinableTimestamp Ts(std::initializer_list<std::uint64_t> counters,
                      GatekeeperId gk, std::uint32_t epoch = 0) {
  VectorClock c(epoch, std::vector<std::uint64_t>(counters));
  return RefinableTimestamp(c, gk, c.Component(gk));
}

TEST(OracleTest, ComparableClocksNeedNoDag) {
  TimelineOracle oracle;
  const auto a = Ts({1, 0}, 0);
  const auto b = Ts({1, 1}, 1);
  EXPECT_EQ(oracle.QueryOrder(a, b), ClockOrder::kBefore);
  EXPECT_EQ(oracle.QueryOrder(b, a), ClockOrder::kAfter);
  EXPECT_EQ(oracle.LiveEvents(), 0u);  // nothing registered
}

TEST(OracleTest, ConcurrentUnknownUntilEstablished) {
  TimelineOracle oracle;
  const auto a = Ts({1, 0}, 0);
  const auto b = Ts({0, 1}, 1);
  EXPECT_EQ(oracle.QueryOrder(a, b), ClockOrder::kConcurrent);
  EXPECT_EQ(oracle.OrderPair(a, b, OrderPreference::kPreferFirst),
            ClockOrder::kBefore);
  // Irrevocable: both directions agree from now on.
  EXPECT_EQ(oracle.QueryOrder(a, b), ClockOrder::kBefore);
  EXPECT_EQ(oracle.QueryOrder(b, a), ClockOrder::kAfter);
}

TEST(OracleTest, PreferenceSecond) {
  TimelineOracle oracle;
  const auto a = Ts({1, 0}, 0);
  const auto b = Ts({0, 1}, 1);
  EXPECT_EQ(oracle.OrderPair(a, b, OrderPreference::kPreferSecond),
            ClockOrder::kAfter);
  EXPECT_EQ(oracle.QueryOrder(b, a), ClockOrder::kBefore);
}

TEST(OracleTest, PreferenceIgnoredWhenOrderExists) {
  TimelineOracle oracle;
  const auto a = Ts({1, 0}, 0);
  const auto b = Ts({0, 1}, 1);
  oracle.OrderPair(a, b, OrderPreference::kPreferFirst);  // a < b
  // A later request preferring b first must return the existing order.
  EXPECT_EQ(oracle.OrderPair(b, a, OrderPreference::kPreferFirst),
            ClockOrder::kAfter);
}

TEST(OracleTest, ExplicitTransitivity) {
  TimelineOracle oracle;
  const auto a = Ts({1, 0, 0}, 0);
  const auto b = Ts({0, 1, 0}, 1);
  const auto c = Ts({0, 0, 1}, 2);
  oracle.OrderPair(a, b, OrderPreference::kPreferFirst);  // a < b
  oracle.OrderPair(b, c, OrderPreference::kPreferFirst);  // b < c
  EXPECT_EQ(oracle.QueryOrder(a, c), ClockOrder::kBefore);
  // And the establishment path must respect it too.
  EXPECT_EQ(oracle.OrderPair(c, a, OrderPreference::kPreferFirst),
            ClockOrder::kAfter);
}

TEST(OracleTest, PaperSection41VclockImpliedTransitivity) {
  // Paper §4.1: oracle orders <0,1> < <1,0>; a later query for
  // (<0,1>, <2,0>) must answer <0,1> < <2,0> because <1,0> < <2,0> by
  // vector clocks.
  TimelineOracle oracle;
  const auto e01 = Ts({0, 1}, 1);
  const auto e10 = Ts({1, 0}, 0);
  const auto e20 = Ts({2, 0}, 0);
  EXPECT_EQ(oracle.OrderPair(e01, e10, OrderPreference::kPreferFirst),
            ClockOrder::kBefore);
  EXPECT_EQ(oracle.QueryOrder(e01, e20), ClockOrder::kBefore);
  EXPECT_EQ(oracle.QueryOrder(e20, e01), ClockOrder::kAfter);
}

TEST(OracleTest, MixedChainExplicitVclockExplicit) {
  // a <(dag) b <(clock) c <(dag) d  ==>  a < d.
  TimelineOracle oracle;
  const auto a = Ts({1, 0, 0}, 0);
  const auto b = Ts({0, 1, 0}, 1);
  const auto c = Ts({0, 2, 0}, 1);  // b < c by clock
  const auto d = Ts({0, 0, 1}, 2);
  oracle.OrderPair(a, b, OrderPreference::kPreferFirst);
  oracle.OrderPair(c, d, OrderPreference::kPreferFirst);
  EXPECT_EQ(oracle.QueryOrder(a, d), ClockOrder::kBefore);
}

TEST(OracleTest, AssignHappensBeforeRejectsCycle) {
  TimelineOracle oracle;
  const auto a = Ts({1, 0}, 0);
  const auto b = Ts({0, 1}, 1);
  ASSERT_TRUE(oracle.AssignHappensBefore(a, b).ok());
  EXPECT_TRUE(oracle.AssignHappensBefore(b, a).IsFailedPrecondition());
}

TEST(OracleTest, AssignHappensBeforeIdempotent) {
  TimelineOracle oracle;
  const auto a = Ts({1, 0}, 0);
  const auto b = Ts({0, 1}, 1);
  ASSERT_TRUE(oracle.AssignHappensBefore(a, b).ok());
  EXPECT_TRUE(oracle.AssignHappensBefore(a, b).ok());
}

TEST(OracleTest, AssignRejectsClockContradiction) {
  TimelineOracle oracle;
  const auto a = Ts({1, 1}, 0);
  const auto b = Ts({2, 1}, 0);  // a < b by clock
  EXPECT_TRUE(oracle.AssignHappensBefore(b, a).IsFailedPrecondition());
}

TEST(OracleTest, TransitiveCycleRejected) {
  TimelineOracle oracle;
  const auto a = Ts({1, 0, 0}, 0);
  const auto b = Ts({0, 1, 0}, 1);
  const auto c = Ts({0, 0, 1}, 2);
  ASSERT_TRUE(oracle.AssignHappensBefore(a, b).ok());
  ASSERT_TRUE(oracle.AssignHappensBefore(b, c).ok());
  EXPECT_TRUE(oracle.AssignHappensBefore(c, a).IsFailedPrecondition());
}

TEST(OracleTest, GcCollectsOldEvents) {
  TimelineOracle oracle;
  const auto a = Ts({1, 0}, 0);
  const auto b = Ts({0, 1}, 1);
  oracle.OrderPair(a, b, OrderPreference::kPreferFirst);
  EXPECT_EQ(oracle.LiveEvents(), 2u);
  VectorClock watermark(0, {5, 5});
  oracle.CollectBefore(watermark);
  EXPECT_EQ(oracle.LiveEvents(), 0u);
  EXPECT_EQ(oracle.stats().events_collected.load(), 2u);
}

TEST(OracleTest, GcPreservesTransitiveCommitments) {
  // a < b < c, then GC collects only b (a and c kept via watermark choice):
  // the a < c commitment must survive through the contraction shortcut.
  TimelineOracle oracle;
  const auto a = Ts({3, 0, 0}, 0);   // survives: component 0 high
  const auto b = Ts({0, 1, 0}, 1);   // collected
  const auto c = Ts({0, 0, 3}, 2);   // survives
  oracle.OrderPair(a, b, OrderPreference::kPreferFirst);
  oracle.OrderPair(b, c, OrderPreference::kPreferFirst);
  VectorClock watermark(0, {2, 2, 2});  // only b is fully before this
  oracle.CollectBefore(watermark);
  EXPECT_EQ(oracle.LiveEvents(), 2u);
  EXPECT_EQ(oracle.QueryOrder(a, c), ClockOrder::kBefore);
}

TEST(OracleTest, StatsCountResolutionPaths) {
  TimelineOracle oracle;
  const auto a = Ts({1, 0}, 0);
  const auto b = Ts({2, 0}, 0);
  const auto c = Ts({0, 1}, 1);
  oracle.QueryOrder(a, b);  // vclock resolved
  oracle.OrderPair(a, c, OrderPreference::kPreferFirst);  // established
  oracle.QueryOrder(a, c);  // dag resolved
  EXPECT_EQ(oracle.stats().vclock_resolved.load(), 1u);
  EXPECT_EQ(oracle.stats().edges_established.load(), 1u);
  EXPECT_GE(oracle.stats().dag_resolved.load(), 1u);
}

// Randomized: any sequence of OrderPair calls yields a coherent total
// order -- no pair may ever flip, and transitivity holds on sampled
// triples.
class OraclePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(OraclePropertyTest, DecisionsNeverFlip) {
  Rng rng(GetParam());
  TimelineOracle oracle;
  // Events on 3 gatekeepers whose clocks evolve causally: each gatekeeper
  // ticks its own component and occasionally merges a peer announce, so
  // knowledge is monotone (as real vector clocks are). Many events remain
  // pairwise concurrent.
  std::vector<RefinableTimestamp> events;
  std::vector<VectorClock> gk_clock(3, VectorClock(3));
  for (int i = 0; i < 60; ++i) {
    const std::size_t gk = rng.Uniform(3);
    if (rng.Chance(0.3)) {
      // Announce from a random peer.
      const std::size_t peer = rng.Uniform(3);
      gk_clock[gk].Merge(gk_clock[peer]);
    }
    const std::uint64_t seq = gk_clock[gk].Tick(gk);
    events.push_back(RefinableTimestamp(gk_clock[gk],
                                        static_cast<GatekeeperId>(gk), seq));
  }
  std::map<std::pair<EventId, EventId>, ClockOrder> decided;
  for (int i = 0; i < 2000; ++i) {
    const auto& a = events[rng.Uniform(events.size())];
    const auto& b = events[rng.Uniform(events.size())];
    if (a.event_id() == b.event_id()) continue;
    const ClockOrder o =
        oracle.OrderPair(a, b,
                         rng.Chance(0.5) ? OrderPreference::kPreferFirst
                                         : OrderPreference::kPreferSecond);
    ASSERT_NE(o, ClockOrder::kConcurrent);
    const auto key = std::make_pair(a.event_id(), b.event_id());
    auto it = decided.find(key);
    if (it != decided.end()) {
      ASSERT_EQ(it->second, o) << "decision flipped";
    }
    decided[key] = o;
    decided[{key.second, key.first}] = FlipOrder(o);
  }
  // Transitivity on sampled triples.
  for (int i = 0; i < 3000; ++i) {
    const auto& a = events[rng.Uniform(events.size())];
    const auto& b = events[rng.Uniform(events.size())];
    const auto& c = events[rng.Uniform(events.size())];
    if (oracle.QueryOrder(a, b) == ClockOrder::kBefore &&
        oracle.QueryOrder(b, c) == ClockOrder::kBefore) {
      EXPECT_EQ(oracle.QueryOrder(a, c), ClockOrder::kBefore);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OraclePropertyTest,
                         ::testing::Values(11, 22, 33));

TEST(OracleConcurrencyTest, ParallelOrderPairsStayCoherent) {
  TimelineOracle oracle;
  std::vector<RefinableTimestamp> events;
  for (int i = 1; i <= 8; ++i) {
    // All pairwise concurrent: distinct gatekeepers.
    std::vector<std::uint64_t> c(8, 0);
    c[static_cast<std::size_t>(i - 1)] = 1;
    events.push_back(RefinableTimestamp(VectorClock(0, c),
                                        static_cast<GatekeeperId>(i - 1), 1));
  }
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 1);
      for (int i = 0; i < 500; ++i) {
        const auto& a = events[rng.Uniform(events.size())];
        const auto& b = events[rng.Uniform(events.size())];
        if (a.event_id() == b.event_id()) continue;
        const ClockOrder o1 =
            oracle.OrderPair(a, b, OrderPreference::kPreferFirst);
        const ClockOrder o2 = oracle.QueryOrder(a, b);
        if (o1 != o2) failed.store(true);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  // Full pairwise coherence check after the dust settles.
  for (const auto& a : events) {
    for (const auto& b : events) {
      if (a.event_id() == b.event_id()) continue;
      EXPECT_EQ(oracle.QueryOrder(a, b),
                FlipOrder(oracle.QueryOrder(b, a)));
    }
  }
}

TEST(OracleConcurrencyTest, CollectBeforeRacesConcurrentAcquires) {
  // Watermark GC racing OrderPair/QueryOrder acquires: decisions among
  // events ABOVE every watermark must never flip or vanish, no matter
  // how the collector interleaves with the acquirers (the GC cadence the
  // deployment runs against weaver-oracled).
  TimelineOracle oracle;
  // High band: survives every watermark used below.
  std::vector<RefinableTimestamp> high;
  for (int i = 0; i < 6; ++i) {
    std::vector<std::uint64_t> c(6, 0);
    c[static_cast<std::size_t>(i)] = 1'000'000;
    high.push_back(RefinableTimestamp(VectorClock(0, c),
                                      static_cast<GatekeeperId>(i),
                                      1'000'000));
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> flipped{false};
  std::vector<std::thread> threads;
  // Acquirers: a churn band of short-lived concurrent events (collected
  // continuously) plus orders among the high band (never collected).
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      std::map<std::pair<EventId, EventId>, ClockOrder> seen;
      for (std::uint64_t i = 1; !stop.load(std::memory_order_relaxed); ++i) {
        std::vector<std::uint64_t> ca(6, 0), cb(6, 0);
        ca[0] = i * 3 + static_cast<std::uint64_t>(t);
        cb[1] = i * 3 + static_cast<std::uint64_t>(t);
        const RefinableTimestamp a(VectorClock(0, ca), 0, ca[0]);
        const RefinableTimestamp b(VectorClock(0, cb), 1, cb[1]);
        oracle.OrderPair(a, b, OrderPreference::kPreferFirst);
        const auto& ha = high[rng.Uniform(high.size())];
        const auto& hb = high[rng.Uniform(high.size())];
        if (ha.event_id() == hb.event_id()) continue;
        const ClockOrder o =
            oracle.OrderPair(ha, hb, OrderPreference::kPreferFirst);
        const auto key = std::make_pair(ha.event_id(), hb.event_id());
        auto it = seen.find(key);
        if (it != seen.end() && it->second != o) flipped.store(true);
        seen[key] = o;
        seen[{key.second, key.first}] = FlipOrder(o);
      }
    });
  }
  // Collector: advancing watermark sweeps the churn band, never the
  // high band.
  threads.emplace_back([&] {
    for (int round = 0; round < 200; ++round) {
      const std::uint64_t w = static_cast<std::uint64_t>(round + 1) * 50;
      oracle.CollectBefore(VectorClock(0, {w, w, w, w, w, w}));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    stop.store(true);
  });
  for (auto& t : threads) t.join();
  EXPECT_FALSE(flipped.load()) << "GC flipped a decision above the watermark";
  EXPECT_GT(oracle.stats().events_collected.load(), 0u);
  // Survivor coherence after the dust settles.
  for (const auto& a : high) {
    for (const auto& b : high) {
      if (a.event_id() == b.event_id()) continue;
      EXPECT_EQ(oracle.QueryOrder(a, b), FlipOrder(oracle.QueryOrder(b, a)));
    }
  }
}

TEST(OracleChainTest, RoundRobinAcrossReplicas) {
  OracleChain chain(3);
  const auto a = Ts({1, 0}, 0);
  const auto b = Ts({2, 0}, 0);
  for (int i = 0; i < 9; ++i) chain.QueryAnyReplica(a, b);
  EXPECT_EQ(chain.ReadsAtReplica(0), 3u);
  EXPECT_EQ(chain.ReadsAtReplica(1), 3u);
  EXPECT_EQ(chain.ReadsAtReplica(2), 3u);
}

TEST(OracleChainTest, HeadWritesVisibleToAllReplicas) {
  OracleChain chain(4);
  const auto a = Ts({1, 0}, 0);
  const auto b = Ts({0, 1}, 1);
  chain.OrderAtHead(a, b, OrderPreference::kPreferFirst);
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_EQ(chain.QueryAnyReplica(a, b), ClockOrder::kBefore);
  }
}

}  // namespace
}  // namespace weaver
