// Tests for the session-based async client API (src/client/): pipelined
// commit ordering, shutdown semantics of Pending<T>, backpressure
// rejection, and an N-sessions x K-in-flight stress run cross-checked
// against a serial replay of the committed timestamps.
#include "client/weaver_client.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "common/serde.h"
#include "core/weaver.h"
#include "programs/standard_programs.h"

namespace weaver {
namespace {

WeaverOptions FastOptions(std::size_t gks = 2, std::size_t shards = 2) {
  WeaverOptions o;
  o.num_gatekeepers = gks;
  o.num_shards = shards;
  o.tau_micros = 200;
  o.nop_period_micros = 200;
  return o;
}

TEST(ClientSession, AsyncCommitRoundTrip) {
  auto db = Weaver::Open(FastOptions());
  WeaverClient client(db.get());
  auto session = client.OpenSession();

  Transaction tx = session->BeginTx();
  const NodeId n = tx.CreateNode();
  ASSERT_TRUE(tx.AssignNodeProperty(n, "name", "async").ok());
  auto pending = session->CommitAsync(std::move(tx));
  const CommitResult& r = pending.Wait();
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_TRUE(r.timestamp.valid());

  Transaction check = session->BeginTx();
  auto snap = check.GetNode(n);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->GetProperty("name").value_or(""), "async");
}

TEST(ClientSession, AsyncProgramRoundTrip) {
  auto db = Weaver::Open(FastOptions());
  WeaverClient client(db.get());
  auto session = client.OpenSession();

  Transaction tx = session->BeginTx();
  const NodeId a = tx.CreateNode();
  const NodeId b = tx.CreateNode();
  tx.CreateEdge(a, b);
  ASSERT_TRUE(session->Commit(&tx).ok());
  EXPECT_TRUE(tx.committed());
  EXPECT_TRUE(tx.timestamp().valid());

  auto pending = session->RunProgramAsync(programs::kCountEdges, a);
  const Result<ProgramResult>& r = pending.Wait();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->returns.empty());
}

TEST(ClientSession, PipelinedCommitsPreserveSubmissionOrder) {
  auto db = Weaver::Open(FastOptions());
  WeaverClient client(db.get());
  auto session = client.OpenSession();

  Transaction setup = session->BeginTx();
  const NodeId n = setup.CreateNode();
  ASSERT_TRUE(session->Commit(&setup).ok());

  // Pipeline K commits against the same vertex without waiting. The
  // per-session FIFO lane must execute (and timestamp) them in submission
  // order; the last-update check would abort any reordering against the
  // same vertex outright.
  constexpr int kInFlight = 24;
  std::vector<Pending<CommitResult>> pendings;
  for (int i = 0; i < kInFlight; ++i) {
    Transaction tx = session->BeginTx();
    ASSERT_TRUE(tx.AssignNodeProperty(n, "seq", std::to_string(i)).ok());
    pendings.push_back(session->CommitAsync(std::move(tx)));
  }
  std::vector<RefinableTimestamp> stamps;
  for (int i = 0; i < kInFlight; ++i) {
    const CommitResult& r = pendings[i].Wait();
    ASSERT_TRUE(r.ok()) << "commit " << i << ": " << r.status.ToString();
    stamps.push_back(r.timestamp);
  }
  // Timestamps are strictly increasing in submission order.
  for (int i = 1; i < kInFlight; ++i) {
    EXPECT_EQ(stamps[i - 1].Compare(stamps[i]), ClockOrder::kBefore)
        << "timestamps out of submission order at " << i;
  }
  // The final committed state is the LAST submitted value.
  Transaction check = session->BeginTx();
  auto snap = check.GetNode(n);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->GetProperty("seq").value_or(""),
            std::to_string(kInFlight - 1));
}

TEST(ClientSession, WaitAfterShutdownReturnsError) {
  auto db = Weaver::Open(FastOptions());
  WeaverClient client(db.get());
  auto session = client.OpenSession();

  Transaction setup = session->BeginTx();
  const NodeId n = setup.CreateNode();
  ASSERT_TRUE(session->Commit(&setup).ok());

  // Queue a pile of commits and shut down immediately: every Pending must
  // become ready (executed or failed Unavailable) -- no Wait() may hang.
  std::vector<Pending<CommitResult>> pendings;
  for (int i = 0; i < 64; ++i) {
    Transaction tx = session->BeginTx();
    ASSERT_TRUE(tx.AssignNodeProperty(n, "k", std::to_string(i)).ok());
    pendings.push_back(session->CommitAsync(std::move(tx)));
  }
  db->Shutdown();
  for (auto& p : pendings) {
    const CommitResult& r = p.Wait();  // must not hang
    if (!r.ok()) {
      EXPECT_TRUE(r.status.IsUnavailable()) << r.status.ToString();
    }
  }

  // Submissions after shutdown fail immediately with a non-OK status
  // (FailedPrecondition from the session's fail-fast started() check, or
  // Unavailable from the stopped ingress if the shutdown raced).
  Transaction late = session->BeginTx();
  (void)late.AssignNodeProperty(n, "k", "late");
  auto p = session->CommitAsync(std::move(late));
  ASSERT_TRUE(p.WaitFor(std::chrono::seconds(5)).ok());
  EXPECT_FALSE(p.Wait().ok());
  EXPECT_TRUE(p.Wait().status.IsFailedPrecondition() ||
              p.Wait().status.IsUnavailable())
      << p.Wait().status.ToString();
}

TEST(ClientSession, LaneCapacityRejectsWithResourceExhausted) {
  WeaverOptions o = FastOptions();
  o.client_lane_capacity = 4;
  // Slow the ingress down so the lane actually fills: a large simulated
  // backing-store round trip per batch.
  o.kv_commit_delay_micros = 20000;
  o.client_ingress_batch = 1;
  auto db = Weaver::Open(o);
  WeaverClient client(db.get());
  auto session = client.OpenSession();

  Transaction setup = session->BeginTx();
  const NodeId n = setup.CreateNode();
  ASSERT_TRUE(session->Commit(&setup).ok());

  std::vector<Pending<CommitResult>> pendings;
  bool saw_rejection = false;
  for (int i = 0; i < 64; ++i) {
    Transaction tx = session->BeginTx();
    (void)tx.AssignNodeProperty(n, "k", std::to_string(i));
    pendings.push_back(session->CommitAsync(std::move(tx)));
    if (pendings.back().ready() &&
        pendings.back().Wait().status.IsResourceExhausted()) {
      saw_rejection = true;
      break;
    }
  }
  EXPECT_TRUE(saw_rejection) << "64 instant submissions against a "
                                "capacity-4 lane never saw backpressure";
  for (auto& p : pendings) (void)p.Wait();
}

TEST(ClientSession, ReadYourWritesFencesPrograms) {
  auto db = Weaver::Open(FastOptions());
  WeaverClient client(db.get());
  auto session = client.OpenSession();
  session->SetReadYourWrites(true);
  EXPECT_TRUE(session->read_your_writes());

  Transaction setup = session->BeginTx();
  const NodeId a = setup.CreateNode();
  const NodeId b = setup.CreateNode();
  setup.CreateEdge(a, b);
  ASSERT_TRUE(session->Commit(&setup).ok());

  // Pipeline a commit and IMMEDIATELY submit a program that reads the
  // written vertex: RYW mode must fence the program behind the commit,
  // so the snapshot observes the write every time.
  for (int round = 0; round < 16; ++round) {
    Transaction tx = session->BeginTx();
    const std::string value = "round-" + std::to_string(round);
    ASSERT_TRUE(tx.AssignNodeProperty(a, "v", value).ok());
    auto commit = session->CommitAsync(std::move(tx));
    auto read = session->RunProgramAsync(programs::kGetNode, a);
    const CommitResult& cr = commit.Wait();
    ASSERT_TRUE(cr.ok()) << cr.status.ToString();
    const Result<ProgramResult>& r = read.Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // The fenced program's timestamp happens-after the commit's.
    EXPECT_EQ(cr.timestamp.Compare(r->timestamp), ClockOrder::kBefore);
    ASSERT_EQ(r->returns.size(), 1u);
    const auto decoded = programs::GetNodeResult::Decode(r->returns[0].second);
    bool found = false;
    for (const auto& [k, v] : decoded.properties) {
      if (k == "v") {
        EXPECT_EQ(v, value) << "round " << round
                            << ": program missed its session's own write";
        found = true;
      }
    }
    EXPECT_TRUE(found) << "round " << round;
  }
}

TEST(ClientSession, BatchedProgramFanOut) {
  auto db = Weaver::Open(FastOptions());
  WeaverClient client(db.get());
  auto session = client.OpenSession();

  Transaction tx = session->BeginTx();
  std::vector<NodeId> nodes;
  for (int i = 0; i < 8; ++i) nodes.push_back(tx.CreateNode());
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j <= i; ++j) {
      tx.CreateEdge(nodes[i], nodes[(i + j + 1) % 8]);
    }
  }
  ASSERT_TRUE(session->Commit(&tx).ok());

  // N programs in ONE ClientProgram message: one bus crossing, one
  // ingress pass, results fan back per request id.
  const Gatekeeper::Stats& gk_stats =
      db->gatekeeper(session->gatekeeper()).stats();
  const std::uint64_t msgs_before = gk_stats.client_program_msgs.load();
  const std::uint64_t reqs_before = gk_stats.client_programs.load();
  std::vector<ProgramCall> calls;
  for (int i = 0; i < 8; ++i) {
    calls.push_back(ProgramCall{std::string(programs::kCountEdges),
                                {NextHop{nodes[i], ""}}});
  }
  auto pendings = session->RunProgramBatchAsync(std::move(calls));
  ASSERT_EQ(pendings.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    const Result<ProgramResult>& r = pendings[i].Wait();
    ASSERT_TRUE(r.ok()) << "call " << i << ": " << r.status().ToString();
    ASSERT_EQ(r->returns.size(), 1u);
    // count_edges returns the out-degree; vertex i has i+1 out-edges.
    ByteReader reader(r->returns[0].second);
    std::uint64_t degree = 0;
    ASSERT_TRUE(reader.GetU64(&degree).ok());
    EXPECT_EQ(degree, static_cast<std::uint64_t>(i + 1));
  }
  // The 8 requests crossed the bus as ONE ClientProgram message -- the
  // batching property itself, not just the results.
  EXPECT_EQ(gk_stats.client_program_msgs.load() - msgs_before, 1u);
  EXPECT_EQ(gk_stats.client_programs.load() - reqs_before, 8u);

  // An empty batch is a no-op.
  EXPECT_TRUE(session->RunProgramBatchAsync({}).empty());
}

TEST(ClientSession, MovedFromTransactionFailsCleanly) {
  auto db = Weaver::Open(FastOptions());
  WeaverClient client(db.get());
  auto session = client.OpenSession();

  Transaction tx = session->BeginTx();
  const NodeId n = tx.CreateNode();
  Transaction moved = std::move(tx);
  EXPECT_FALSE(tx.valid());  // NOLINT(bugprone-use-after-move): the point
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(tx.CreateNode(), kInvalidNodeId);
  EXPECT_TRUE(tx.AssignNodeProperty(n, "k", "v").IsFailedPrecondition());
  EXPECT_TRUE(session->Commit(&tx).IsFailedPrecondition());

  // Move-assignment transfers the buffered writes; the target commits.
  Transaction target;
  EXPECT_FALSE(target.valid());
  target = std::move(moved);
  ASSERT_TRUE(target.valid());
  ASSERT_TRUE(target.AssignNodeProperty(n, "k", "v").ok());
  EXPECT_TRUE(session->Commit(&target).ok());
}

// N sessions x K in-flight commits, cross-checked against a serial replay:
// sorting every committed (timestamp, value) pair on one shared vertex by
// timestamp must reproduce the final committed state, and each session's
// own vertex must reflect its last submission.
TEST(ClientSession, StressPipelinedSessionsMatchSerialReplay) {
  auto db = Weaver::Open(FastOptions(2, 2));
  WeaverClient client(db.get());

  constexpr std::size_t kSessions = 4;
  constexpr std::size_t kInFlight = 8;
  constexpr std::size_t kRounds = 6;  // kInFlight commits per round

  NodeId shared = kInvalidNodeId;
  std::vector<NodeId> own(kSessions);
  {
    auto setup = client.OpenSession();
    Transaction tx = setup->BeginTx();
    shared = tx.CreateNode();
    for (std::size_t s = 0; s < kSessions; ++s) own[s] = tx.CreateNode();
    ASSERT_TRUE(setup->Commit(&tx).ok());
  }

  struct Committed {
    RefinableTimestamp ts;
    std::string value;
  };
  std::vector<std::vector<Committed>> committed(kSessions);

  std::vector<std::thread> drivers;
  for (std::size_t s = 0; s < kSessions; ++s) {
    drivers.emplace_back([&, s] {
      auto session = client.OpenSession();
      for (std::size_t round = 0; round < kRounds; ++round) {
        std::vector<Pending<CommitResult>> window;
        std::vector<std::string> values;
        for (std::size_t k = 0; k < kInFlight; ++k) {
          const std::string value =
              std::to_string(s) + ":" + std::to_string(round * kInFlight + k);
          Transaction tx = session->BeginTx();
          (void)tx.AssignNodeProperty(own[s], "last", value);
          (void)tx.AssignNodeProperty(shared, "last", value);
          window.push_back(session->CommitAsync(std::move(tx)));
          values.push_back(value);
        }
        for (std::size_t k = 0; k < kInFlight; ++k) {
          const CommitResult& r = window[k].Wait();
          // Aborts are legal (shared-vertex conflicts across sessions);
          // record only what actually committed.
          if (r.ok()) {
            committed[s].push_back(Committed{r.timestamp, values[k]});
          }
        }
      }
    });
  }
  for (auto& d : drivers) d.join();

  // Per-session commits carry strictly increasing timestamps.
  std::vector<Committed> all;
  for (std::size_t s = 0; s < kSessions; ++s) {
    for (std::size_t i = 1; i < committed[s].size(); ++i) {
      EXPECT_EQ(committed[s][i - 1].ts.Compare(committed[s][i].ts),
                ClockOrder::kBefore)
          << "session " << s << " commit " << i;
    }
    for (auto& c : committed[s]) all.push_back(c);
  }
  ASSERT_FALSE(all.empty());

  // Serial replay: every commit against the shared vertex passed the
  // last-update check, so all its writes are totally ordered; replaying
  // them sorted by timestamp must land on the committed final state.
  std::sort(all.begin(), all.end(), [](const Committed& a,
                                       const Committed& b) {
    return a.ts.Compare(b.ts) == ClockOrder::kBefore;
  });
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_EQ(all[i - 1].ts.Compare(all[i].ts), ClockOrder::kBefore)
        << "shared-vertex commits not totally ordered at " << i;
  }

  auto check = client.OpenSession();
  Transaction read = check->BeginTx();
  auto snap = read.GetNode(shared);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->GetProperty("last").value_or(""), all.back().value);

  // Each session's own vertex holds that session's last committed value.
  for (std::size_t s = 0; s < kSessions; ++s) {
    if (committed[s].empty()) continue;
    auto own_snap = read.GetNode(own[s]);
    ASSERT_TRUE(own_snap.ok());
    EXPECT_EQ(own_snap->GetProperty("last").value_or(""),
              committed[s].back().value)
        << "session " << s;
  }
}

}  // namespace
}  // namespace weaver
