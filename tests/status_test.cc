// Tests for Status and Result<T> (src/common).
#include "common/result.h"
#include "common/status.h"

#include <gtest/gtest.h>

namespace weaver {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryMethodsSetCode) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::FailedPrecondition().IsFailedPrecondition());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::Cancelled().IsCancelled());
  EXPECT_TRUE(Status::Internal().IsInternal());
}

TEST(StatusTest, NonOkIsNotOk) {
  EXPECT_FALSE(Status::NotFound().ok());
  EXPECT_FALSE(Status::Aborted().ok());
}

TEST(StatusTest, MessagePreserved) {
  Status st = Status::Aborted("conflict on key v:42");
  EXPECT_EQ(st.message(), "conflict on key v:42");
  EXPECT_EQ(st.ToString(), "ABORTED: conflict on key v:42");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::Aborted());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kAborted), "ABORTED");
  EXPECT_EQ(StatusCodeName(StatusCode::kTimedOut), "TIMED_OUT");
}

Status Fails() { return Status::NotFound("inner"); }
Status PropagatesViaMacro() {
  WEAVER_RETURN_IF_ERROR(Fails());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(PropagatesViaMacro().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> good = 7;
  Result<int> bad = Status::Internal();
  EXPECT_EQ(good.ValueOr(-1), 7);
  EXPECT_EQ(bad.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}
Status UseAssignOrReturn(int x, int* out) {
  WEAVER_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(UseAssignOrReturn(-1, &out).IsInvalidArgument());
  EXPECT_EQ(out, 42);  // untouched on failure
}

}  // namespace
}  // namespace weaver
