// Codec tests (docs/transport.md): every message schema roundtrips
// byte-identically through encode/decode, malformed input is rejected
// without crashing (truncation, corruption, overflowing varints), and a
// deterministic frame fuzzer hammers the stream parser.
#include "core/message_codec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/wire.h"

namespace weaver {
namespace {

RefinableTimestamp MakeTs(std::uint32_t epoch, GatekeeperId gk,
                          std::vector<std::uint64_t> counters,
                          std::uint64_t seq) {
  return RefinableTimestamp(VectorClock(epoch, std::move(counters)), gk, seq);
}

/// encode -> decode -> encode must be byte-identical (the acceptance
/// criterion), and the decoded message must re-encode from a fresh
/// object, proving every field survived.
template <typename M>
void ExpectRoundtrip(const M& msg) {
  wire::Writer w1;
  Encode(msg, &w1);
  const std::string bytes = w1.Take();

  M decoded;
  wire::Reader r(bytes);
  ASSERT_TRUE(Decode(&r, &decoded).ok());
  EXPECT_TRUE(r.AtEnd()) << "decoder left trailing bytes";

  wire::Writer w2;
  Encode(decoded, &w2);
  EXPECT_EQ(bytes, w2.str()) << "re-encode is not byte-identical";

  // Every strict prefix must be rejected cleanly (truncation safety).
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    M victim;
    wire::Reader rr(std::string_view(bytes.data(), cut));
    const Status st = Decode(&rr, &victim);
    // Some prefixes decode "successfully" into fewer trailing fields
    // only if the schema is empty at that point; for non-trivial cuts
    // the decode must fail. Either way: no crash, no UB (ASan guards).
    (void)st;
  }
}

TEST(WireCodec, VarintBasics) {
  wire::Writer w;
  w.VarU64(0);
  w.VarU64(127);
  w.VarU64(128);
  w.VarU64(300);
  w.VarU64(~0ull);
  wire::Reader r(w.str());
  std::uint64_t v = 1;
  ASSERT_TRUE(r.VarU64(&v).ok());
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(r.VarU64(&v).ok());
  EXPECT_EQ(v, 127u);
  ASSERT_TRUE(r.VarU64(&v).ok());
  EXPECT_EQ(v, 128u);
  ASSERT_TRUE(r.VarU64(&v).ok());
  EXPECT_EQ(v, 300u);
  ASSERT_TRUE(r.VarU64(&v).ok());
  EXPECT_EQ(v, ~0ull);
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireCodec, VarintRejectsOverflow) {
  // 11 continuation bytes can encode more than 64 bits.
  std::string bad(10, '\xff');
  bad.push_back('\x7f');
  wire::Reader r(bad);
  std::uint64_t v = 0;
  EXPECT_FALSE(r.VarU64(&v).ok());
}

TEST(WireCodec, TxRoundtrip) {
  TxMessage m;
  m.ts = MakeTs(3, 1, {5, 9}, 5);
  m.ops.push_back(GraphOp::CreateNode(42));
  m.ops.push_back(GraphOp::CreateEdge(7, 42, 99));
  m.ops.push_back(GraphOp::AssignNodeProp(42, "name", "weaver"));
  m.ops.push_back(GraphOp::RemoveEdgeProp(42, 7, "weight"));
  m.ops.push_back(GraphOp::DeleteNode(42));
  ExpectRoundtrip(m);
}

TEST(WireCodec, TxEmptySliceRoundtrip) {
  TxMessage m;  // empty ops: the NOP-equivalent slice
  m.ts = MakeTs(0, 0, {1}, 1);
  ExpectRoundtrip(m);
}

TEST(WireCodec, NopRoundtrip) {
  NopMessage m;
  m.ts = MakeTs(1, 2, {10, 20, 30}, 30);
  ExpectRoundtrip(m);
}

TEST(WireCodec, AnnounceRoundtrip) {
  AnnounceMessage m;
  m.clock = VectorClock(7, {1, 2, 3, 4});
  m.from = 3;
  ExpectRoundtrip(m);
}

TEST(WireCodec, WaveHopBatchRoundtrip) {
  WaveHopBatchMessage m;
  m.program_id = 0xdeadbeefcafeull;
  m.ts = MakeTs(2, 0, {100, 50}, 100);
  m.program_name = "bfs";
  m.coordinator = 6;
  m.visit_once = true;
  m.hops.push_back(NextHop{1, ""});
  m.hops.push_back(NextHop{2, std::string("\x00\x01\xff binary", 10)});
  m.hops.push_back(NextHop{kInvalidNodeId, std::string(4096, 'p')});
  ExpectRoundtrip(m);
}

TEST(WireCodec, WaveAccountingRoundtrip) {
  WaveAccountingMessage m;
  m.program_id = 9;
  m.shard = 2;
  m.hops_consumed = 17;
  m.hops_spawned = 12;
  m.vertices_visited = 15;
  m.cycles = 1;
  m.forwarded_batches = 3;
  m.returns.emplace_back(4, "ret");
  m.returns.emplace_back(8, std::string(1000, 'r'));
  m.error = Status::Unavailable("peer shard is down");
  ExpectRoundtrip(m);

  m.error = Status::Ok();
  m.returns.clear();
  ExpectRoundtrip(m);
}

TEST(WireCodec, EndProgramAndGcRoundtrip) {
  EndProgramMessage e;
  e.program_id = 1234567;
  ExpectRoundtrip(e);

  GcMessage g;
  g.watermark = MakeTs(1, 1, {2, 2}, 2);
  ExpectRoundtrip(g);
}

TEST(WireCodec, ClientCommitRoundtrip) {
  ClientCommitMessage m;
  m.session_id = 11;
  m.request_id = 12;
  m.reply_to = 13;
  m.delay_paid = true;
  m.ops.push_back(GraphOp::AssignNodeProp(5, "k", std::string(512, 'v')));
  m.created_placements.emplace_back(5, 1);
  m.created_placements.emplace_back(6, 0);
  m.read_set.emplace_back("v:5", 3);
  m.read_set.emplace_back("u:5", 0);
  ExpectRoundtrip(m);

  ClientCommitMessage empty;  // all defaults / empty vectors
  ExpectRoundtrip(empty);
}

TEST(WireCodec, ClientProgramRoundtrip) {
  ClientProgramMessage m;
  m.session_id = 21;
  m.reply_to = 22;
  ProgramRequest a;
  a.request_id = 1;
  a.program_name = "get_node";
  a.starts.push_back(NextHop{10, "params"});
  ProgramRequest b;
  b.request_id = 2;
  b.program_name = "bfs";
  b.starts.push_back(NextHop{11, ""});
  b.starts.push_back(NextHop{12, "x"});
  b.fence = MakeTs(0, 1, {3, 4}, 4);  // read-your-writes fence rides along
  m.requests.push_back(std::move(a));
  m.requests.push_back(std::move(b));
  ExpectRoundtrip(m);
}

TEST(WireCodec, RepliesRoundtrip) {
  ClientCommitReplyMessage c;
  c.session_id = 31;
  c.request_id = 32;
  c.status = Status::Aborted("last-update conflict");
  c.timestamp = MakeTs(2, 0, {9, 9}, 9);
  ExpectRoundtrip(c);

  ClientProgramReplyMessage p;
  p.session_id = 41;
  p.request_id = 42;
  p.status = Status::Ok();
  p.result.returns.emplace_back(7, "blob");
  p.result.vertices_visited = 5;
  p.result.waves = 2;
  p.result.hops = 6;
  p.result.forwarded_batches = 1;
  p.result.coordinator_msgs = 3;
  p.result.timestamp = MakeTs(1, 1, {8, 8}, 8);
  ExpectRoundtrip(p);
}

TEST(WireCodec, MetricsMessagesRoundtrip) {
  MetricsRequestMessage req;
  req.request_id = 51;
  req.reply_to = 9;
  ExpectRoundtrip(req);

  MetricsReportMessage rep;
  rep.request_id = 51;
  rep.shard = 2;
  rep.inbox_depth = 17;
  rep.snapshot.counters.emplace_back("shard2.tx_applied", 123);
  rep.snapshot.gauges.emplace_back("shard2.inbox_depth", 17);
  obs::HistogramSnapshot h;
  h.count = 3;
  h.sum = 900;
  h.min = 100;
  h.max = 500;
  h.buckets = {{100, 1}, {250, 1}, {500, 1}};
  rep.snapshot.histograms.emplace_back("shard2.apply_latency", h);
  ExpectRoundtrip(rep);
}

TEST(WireCodec, ShardRecoveryMessagesRoundtrip) {
  ShardResetMessage reset;
  reset.target = 4;
  reset.token = 77;
  reset.reply_to = 8;
  ExpectRoundtrip(reset);

  ShardResetAckMessage ack;
  ack.shard = 1;
  ack.token = 77;
  ExpectRoundtrip(ack);

  PartitionReplayMessage replay;
  replay.shard = 1;
  replay.vertices.emplace_back(42, "serialized-vertex-blob");
  replay.vertices.emplace_back(43, "");
  ExpectRoundtrip(replay);
}

TEST(WireCodec, OracleMessagesRoundtrip) {
  OracleRequestMessage req;
  req.request_id = 61;
  req.reply_to = 12;
  OracleOp order;
  order.type = OracleOp::kOrderPair;
  order.a = MakeTs(1, 0, {4, 1}, 4);
  order.b = MakeTs(1, 1, {1, 3}, 3);
  order.prefer = 1;
  OracleOp assign;
  assign.type = OracleOp::kAssignEdge;
  assign.a = MakeTs(1, 0, {5, 1}, 5);
  assign.b = MakeTs(1, 1, {1, 6}, 6);
  OracleOp collect;
  collect.type = OracleOp::kCollect;
  collect.watermark = VectorClock(1, {3, 3});
  OracleOp sync;
  sync.type = OracleOp::kSync;
  req.ops.push_back(order);
  req.ops.push_back(assign);
  req.ops.push_back(collect);
  req.ops.push_back(sync);
  ExpectRoundtrip(req);

  OracleRequestMessage empty_req;  // all defaults
  ExpectRoundtrip(empty_req);

  OracleReplyMessage rep;
  rep.request_id = 61;
  rep.status = Status::Ok();
  OracleDecision d1;
  d1.order = 2;  // ClockOrder::kAfter
  OracleDecision d2;
  d2.status = Status::FailedPrecondition("would create a cycle");
  rep.decisions.push_back(d1);
  rep.decisions.push_back(d2);
  rep.edges.emplace_back(MakeTs(1, 0, {4, 1}, 4), MakeTs(1, 1, {1, 3}, 3));
  ExpectRoundtrip(rep);

  OracleReplyMessage unavailable;
  unavailable.request_id = 62;
  unavailable.status = Status::Unavailable("oracle restarting");
  ExpectRoundtrip(unavailable);
}

TEST(WireCodec, ClusterBootstrapMessagesRoundtrip) {
  JoinRequestMessage join;
  join.codec_version = kWireCodecVersion;
  join.cluster_epoch = 3;
  join.role = NodeRole::kGatekeeper;
  join.shard_id = 1;
  join.token = "cluster-secret";
  join.pid = 43210;
  ExpectRoundtrip(join);

  JoinRequestMessage wildcard;  // fresh-exec defaults: any slot, no epoch
  ExpectRoundtrip(wildcard);

  JoinAckMessage ack;
  ack.status = Status::Ok();
  ack.codec_version = kWireCodecVersion;
  ack.cluster_epoch = 7;
  ExpectRoundtrip(ack);

  JoinAckMessage refused;
  refused.status = Status::FailedPrecondition("stale cluster epoch");
  ExpectRoundtrip(refused);

  RoleAssignMessage assign;
  assign.role = NodeRole::kShard;
  assign.shard_id = 1;
  assign.cluster_epoch = 7;
  assign.rehydrate = true;
  assign.num_shards = 2;
  assign.num_gatekeepers = 2;
  assign.inbox_capacity = 8192;
  assign.queue_high_water = 4096;
  assign.max_hops_per_cycle = 2048;
  assign.remote_oracle = true;
  assign.remote_gatekeepers = true;
  assign.oracle_rpc_timeout_micros = 250000;
  assign.oracle_total_deadline_micros = 3000000;
  assign.oracle_data_dir = "/tmp/weaver-oracle";
  assign.oracle_snapshot_every = 8192;
  assign.oracle_fsync = 1;
  assign.tau_micros = 500;
  assign.nop_period_micros = 200;
  assign.client_workers = 8;
  assign.client_batch = 8;
  assign.client_lane_capacity = 256;
  assign.max_inflight_programs = 64;
  assign.nop_high_water = 4096;
  assign.announce_capacity = 8192;
  ExpectRoundtrip(assign);
}

TEST(WireCodec, JoinDecoderRejectsBadRole) {
  JoinRequestMessage join;
  wire::Writer w;
  Encode(join, &w);
  std::string bytes = w.Take();
  // Role byte follows codec_version (1 varint byte for small values) and
  // cluster_epoch (1 byte).
  bytes[2] = static_cast<char>(static_cast<std::uint8_t>(NodeRole::kSpare) + 1);
  JoinRequestMessage victim;
  wire::Reader r(bytes);
  EXPECT_FALSE(Decode(&r, &victim).ok());
}

TEST(WireCodec, GatekeeperProcessMessagesRoundtrip) {
  StoreCommitMessage commit;
  commit.gatekeeper = 1;
  commit.request_id = 99;
  commit.ts = MakeTs(2, 1, {4, 7}, 7);
  commit.pay_delay = true;
  commit.ops.push_back(GraphOp::CreateNode(11));
  commit.ops.push_back(GraphOp::AssignNodeProp(11, "k", std::string(256, 'x')));
  commit.created_placements.emplace_back(11, 1);
  commit.read_set.emplace_back("v:11", 2);
  ExpectRoundtrip(commit);

  StoreCommitMessage empty_commit;
  ExpectRoundtrip(empty_commit);

  StoreCommitReplyMessage reply;
  reply.gatekeeper = 1;
  reply.request_id = 99;
  reply.status = Status::Aborted("last-update conflict");
  reply.retry_timestamp = true;
  reply.kv_conflict = false;
  reply.conflict_clock = VectorClock(2, {9, 9});
  ExpectRoundtrip(reply);

  GkProgramStartMessage start;
  start.gatekeeper = 0;
  start.reply_to = 14;
  start.session_id = 5;
  start.request_id = 6;
  start.ts = MakeTs(1, 0, {3, 3}, 3);
  start.program_name = "bfs";
  start.starts.push_back(NextHop{21, "params"});
  start.starts.push_back(NextHop{22, ""});
  ExpectRoundtrip(start);

  GkEpochAdvanceMessage epoch;
  epoch.epoch = 12;
  ExpectRoundtrip(epoch);

  GkWatermarkMessage watermark;
  watermark.gatekeeper = 1;
  watermark.oldest_active = MakeTs(2, 1, {5, 6}, 6);
  ExpectRoundtrip(watermark);
}

TEST(WireCodec, OracleDecodersRejectBadEnums) {
  OracleRequestMessage req;
  OracleOp op;
  op.type = OracleOp::kOrderPair;
  req.ops.push_back(op);
  wire::Writer w;
  Encode(req, &w);
  std::string bytes = w.Take();
  // The op type byte follows request_id (1 byte) + reply_to (1 byte) +
  // count (1 byte) for these small values.
  bytes[3] = static_cast<char>(OracleOp::kSync + 1);
  OracleRequestMessage victim;
  wire::Reader r(bytes);
  EXPECT_FALSE(Decode(&r, &victim).ok());
}

TEST(WireCodec, PayloadCodecCoversEveryTag) {
  // Every schema tag must encode and decode through the type-erased
  // layer; unknown tags must be rejected.
  const std::uint32_t tags[] = {
      kMsgTx,           kMsgNop,           kMsgAnnounce,
      kMsgWaveHops,     kMsgEndProgram,    kMsgGc,
      kMsgClientCommit, kMsgClientProgram, kMsgWaveAccounting,
      kMsgClientCommitReply, kMsgClientProgramReply,
      kMsgMetricsRequest, kMsgMetricsReport, kMsgShardReset,
      kMsgShardResetAck, kMsgPartitionReplay,
      kMsgOracleRequest, kMsgOracleReply,
      kMsgJoinRequest, kMsgJoinAck, kMsgRoleAssign,
      kMsgStoreCommit, kMsgStoreCommitReply, kMsgGkProgramStart,
      kMsgGkEpochAdvance, kMsgGkWatermark};
  for (const std::uint32_t tag : tags) {
    auto fresh = DecodePayload(tag, [&] {
      // Encode a default-constructed message of the tag's schema first.
      std::shared_ptr<void> blank;
      switch (tag) {
        case kMsgTx: blank = std::make_shared<TxMessage>(); break;
        case kMsgNop: blank = std::make_shared<NopMessage>(); break;
        case kMsgAnnounce: blank = std::make_shared<AnnounceMessage>(); break;
        case kMsgWaveHops:
          blank = std::make_shared<WaveHopBatchMessage>();
          break;
        case kMsgEndProgram:
          blank = std::make_shared<EndProgramMessage>();
          break;
        case kMsgGc: blank = std::make_shared<GcMessage>(); break;
        case kMsgClientCommit:
          blank = std::make_shared<ClientCommitMessage>();
          break;
        case kMsgClientProgram:
          blank = std::make_shared<ClientProgramMessage>();
          break;
        case kMsgWaveAccounting:
          blank = std::make_shared<WaveAccountingMessage>();
          break;
        case kMsgClientCommitReply:
          blank = std::make_shared<ClientCommitReplyMessage>();
          break;
        case kMsgClientProgramReply:
          blank = std::make_shared<ClientProgramReplyMessage>();
          break;
        case kMsgMetricsRequest:
          blank = std::make_shared<MetricsRequestMessage>();
          break;
        case kMsgMetricsReport:
          blank = std::make_shared<MetricsReportMessage>();
          break;
        case kMsgShardReset:
          blank = std::make_shared<ShardResetMessage>();
          break;
        case kMsgShardResetAck:
          blank = std::make_shared<ShardResetAckMessage>();
          break;
        case kMsgPartitionReplay:
          blank = std::make_shared<PartitionReplayMessage>();
          break;
        case kMsgOracleRequest:
          blank = std::make_shared<OracleRequestMessage>();
          break;
        case kMsgOracleReply:
          blank = std::make_shared<OracleReplyMessage>();
          break;
        case kMsgJoinRequest:
          blank = std::make_shared<JoinRequestMessage>();
          break;
        case kMsgJoinAck:
          blank = std::make_shared<JoinAckMessage>();
          break;
        case kMsgRoleAssign:
          blank = std::make_shared<RoleAssignMessage>();
          break;
        case kMsgStoreCommit:
          blank = std::make_shared<StoreCommitMessage>();
          break;
        case kMsgStoreCommitReply:
          blank = std::make_shared<StoreCommitReplyMessage>();
          break;
        case kMsgGkProgramStart:
          blank = std::make_shared<GkProgramStartMessage>();
          break;
        case kMsgGkEpochAdvance:
          blank = std::make_shared<GkEpochAdvanceMessage>();
          break;
        case kMsgGkWatermark:
          blank = std::make_shared<GkWatermarkMessage>();
          break;
      }
      auto encoded = EncodePayload(tag, blank);
      EXPECT_TRUE(encoded.ok()) << "tag " << tag;
      return encoded.ok() ? *encoded : std::string();
    }());
    EXPECT_TRUE(fresh.ok()) << "tag " << tag;
  }
  EXPECT_TRUE(EncodePayload(kMsgStop, nullptr).ok());
  EXPECT_TRUE(DecodePayload(kMsgStop, "").ok());
  EXPECT_FALSE(EncodePayload(999, std::make_shared<TxMessage>()).ok());
  EXPECT_FALSE(DecodePayload(999, "").ok());
}

TEST(WireCodec, FrameRoundtrip) {
  wire::FrameHeader h;
  h.tag = kMsgTx;
  h.src = 3;
  h.dst = 0;
  h.channel_seq = 42;
  const std::string payload = "hello frame";
  const std::string frame = wire::EncodeFrame(h, payload);
  ASSERT_EQ(frame.size(), wire::kHeaderSize + payload.size());

  wire::FrameParser parser;
  // Feed byte-by-byte: the parser must tolerate arbitrary chunking.
  for (char c : frame) parser.Feed(&c, 1);
  wire::FrameHeader got;
  std::string body;
  bool ready = false;
  ASSERT_TRUE(parser.Next(&got, &body, &ready).ok());
  ASSERT_TRUE(ready);
  EXPECT_EQ(got.tag, h.tag);
  EXPECT_EQ(got.src, h.src);
  EXPECT_EQ(got.dst, h.dst);
  EXPECT_EQ(got.channel_seq, h.channel_seq);
  EXPECT_EQ(body, payload);
  ASSERT_TRUE(parser.Next(&got, &body, &ready).ok());
  EXPECT_FALSE(ready);  // stream drained
}

TEST(WireCodec, FrameParserRejectsCorruptPayload) {
  wire::FrameHeader h;
  h.tag = 1;
  std::string frame = wire::EncodeFrame(h, "payload-bytes");
  frame[wire::kHeaderSize + 3] ^= 0x40;  // flip a payload bit: CRC breaks
  wire::FrameParser parser;
  parser.Feed(frame.data(), frame.size());
  wire::FrameHeader got;
  std::string body;
  bool ready = false;
  const Status st = parser.Next(&got, &body, &ready);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(ready);
  // The parser stays poisoned: framing on a corrupt stream is gone.
  EXPECT_FALSE(parser.Next(&got, &body, &ready).ok());
}

TEST(WireCodec, FrameParserRejectsBadMagicAndVersion) {
  wire::FrameHeader h;
  std::string frame = wire::EncodeFrame(h, "x");
  {
    std::string bad = frame;
    bad[0] ^= 0xff;
    wire::FrameParser parser;
    parser.Feed(bad.data(), bad.size());
    wire::FrameHeader got;
    std::string body;
    bool ready = false;
    EXPECT_FALSE(parser.Next(&got, &body, &ready).ok());
  }
  {
    std::string bad = frame;
    bad[4] = static_cast<char>(wire::kWireVersion + 1);
    wire::FrameParser parser;
    parser.Feed(bad.data(), bad.size());
    wire::FrameHeader got;
    std::string body;
    bool ready = false;
    EXPECT_FALSE(parser.Next(&got, &body, &ready).ok());
  }
}

TEST(WireCodec, DecodersRejectTruncatedPayloads) {
  // A fully-populated message of each schema, truncated at every byte
  // boundary, must never crash and must fail for any cut inside required
  // fields. (ExpectRoundtrip already walks this; here we just assert the
  // interesting schema -- hop batches carry the most structure.)
  WaveHopBatchMessage m;
  m.program_id = 77;
  m.ts = MakeTs(1, 0, {3, 1}, 3);
  m.program_name = "path_discovery";
  m.hops.push_back(NextHop{5, "abcdefgh"});
  wire::Writer w;
  Encode(m, &w);
  const std::string bytes = w.Take();
  for (std::size_t cut = 0; cut + 1 < bytes.size(); ++cut) {
    WaveHopBatchMessage victim;
    wire::Reader r(std::string_view(bytes.data(), cut));
    EXPECT_FALSE(Decode(&r, &victim).ok()) << "cut at " << cut;
  }
}

// Deterministic frame fuzz: mutate valid frames and random garbage
// through the parser + payload decoders. The assertion is simply "no
// crash, no hang, no unbounded allocation" -- ASan/UBSan turn memory
// bugs into failures.
TEST(WireCodec, FrameFuzzRegression) {
  std::uint64_t rng = 0x2545F4914F6CDD1Dull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  // A corpus of valid frames to mutate.
  std::vector<std::string> corpus;
  {
    TxMessage tx;
    tx.ts = MakeTs(1, 0, {9, 4}, 9);
    tx.ops.push_back(GraphOp::AssignNodeProp(1, "k", "v"));
    wire::Writer w;
    Encode(tx, &w);
    wire::FrameHeader h;
    h.tag = kMsgTx;
    h.channel_seq = 1;
    corpus.push_back(wire::EncodeFrame(h, w.str()));

    ClientProgramMessage p;
    p.session_id = 5;
    ProgramRequest req;
    req.request_id = 1;
    req.program_name = "bfs";
    req.starts.push_back(NextHop{2, "pp"});
    p.requests.push_back(std::move(req));
    wire::Writer w2;
    Encode(p, &w2);
    wire::FrameHeader h2;
    h2.tag = kMsgClientProgram;
    h2.channel_seq = 2;
    corpus.push_back(wire::EncodeFrame(h2, w2.str()));
  }

  for (int round = 0; round < 2000; ++round) {
    std::string frame = corpus[next() % corpus.size()];
    const int mutations = 1 + static_cast<int>(next() % 8);
    for (int m = 0; m < mutations; ++m) {
      switch (next() % 3) {
        case 0:  // bit flip
          frame[next() % frame.size()] ^= static_cast<char>(1 << (next() % 8));
          break;
        case 1:  // truncate
          frame.resize(next() % (frame.size() + 1));
          break;
        case 2:  // append garbage
          frame.push_back(static_cast<char>(next()));
          break;
      }
      if (frame.empty()) frame.push_back(static_cast<char>(next()));
    }
    wire::FrameParser parser;
    // Feed in random chunk sizes.
    std::size_t pos = 0;
    while (pos < frame.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + next() % 7, frame.size() - pos);
      parser.Feed(frame.data() + pos, n);
      pos += n;
    }
    wire::FrameHeader h;
    std::string payload;
    bool ready = true;
    while (parser.Next(&h, &payload, &ready).ok() && ready) {
      // A frame that survived CRC: run it through the payload decoders.
      (void)DecodePayload(h.tag, payload);
    }
  }
}

}  // namespace
}  // namespace weaver
