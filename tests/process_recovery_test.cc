// Shard-process crash recovery, end to end (docs/fault_tolerance.md):
// a shard-server child is killed -9 mid-workload, the supervisor detects
// the death, respawns a warm spare, replays the partition from the
// backing store, and the deployment answers the same queries as an
// in-process run that never crashed. The invariant under test is the
// paper's durability contract: every ACKNOWLEDGED write survives the
// crash (commits publish to the kv store before their shard slices go
// out, so the replay scan covers them all).
//
// Lives in its own test binary: children are forked BEFORE the parent
// deployment creates any threads (threads do not survive fork).
//
// Skipped under ThreadSanitizer: TSan and fork are a known-bad pairing
// (same policy as multiprocess_smoke_test).
#include <gtest/gtest.h>

#include <signal.h>
#include <stdlib.h>
#include <sys/types.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "client/weaver_client.h"
#include "coord/serverd.h"
#include "core/weaver.h"
#include "net/fault_injector.h"
#include "oracle/oracle_client.h"
#include "programs/standard_programs.h"
#include "vclock/vclock.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define WEAVER_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define WEAVER_TSAN 1
#endif

namespace weaver {
namespace {

constexpr std::size_t kShards = 2;
constexpr std::size_t kGatekeepers = 2;
constexpr int kVertices = 96;
constexpr int kOutageWrites = 40;

WeaverOptions DeploymentOptions() {
  WeaverOptions o;
  o.num_shards = kShards;
  o.num_gatekeepers = kGatekeepers;
  o.tau_micros = 300;
  o.nop_period_micros = 300;
  o.metrics_poll_period_micros = 0;
  return o;
}

/// Deterministic ring + seeded chords, built through the transactional
/// client API (identical ids across deployments).
std::vector<NodeId> BuildGraph(Weaver* db) {
  WeaverClient client(db);
  auto session = client.OpenSession();
  std::vector<NodeId> nodes;
  {
    Transaction tx = session->BeginTx();
    for (int i = 0; i < kVertices; ++i) {
      const NodeId n = tx.CreateNode();
      EXPECT_NE(n, kInvalidNodeId);
      EXPECT_TRUE(tx.AssignNodeProperty(n, "idx", std::to_string(i)).ok());
      nodes.push_back(n);
    }
    EXPECT_TRUE(session->Commit(&tx).ok());
  }
  std::mt19937 rng(4242);
  std::uniform_int_distribution<int> pick(0, kVertices - 1);
  for (int base = 0; base < kVertices; base += 32) {
    Transaction tx = session->BeginTx();
    for (int i = base; i < std::min(base + 32, kVertices); ++i) {
      tx.CreateEdge(nodes[i], nodes[(i + 1) % kVertices]);
    }
    EXPECT_TRUE(session->Commit(&tx).ok());
  }
  for (int i = 0; i < 60; ++i) {
    Transaction tx = session->BeginTx();
    tx.CreateEdge(nodes[pick(rng)], nodes[pick(rng)]);
    EXPECT_TRUE(session->Commit(&tx).ok());
  }
  return nodes;
}

/// Writes committed while (or right after) a shard is down: new vertices
/// hung off the ring, one commit each so every acknowledgment is its own
/// durability promise. Returns the new ids.
std::vector<NodeId> ApplyOutageWrites(Weaver* db,
                                      const std::vector<NodeId>& nodes) {
  WeaverClient client(db);
  auto session = client.OpenSession();
  std::vector<NodeId> fresh;
  for (int i = 0; i < kOutageWrites; ++i) {
    Transaction tx = session->BeginTx();
    const NodeId n = tx.CreateNode();
    EXPECT_NE(n, kInvalidNodeId);
    EXPECT_TRUE(tx.AssignNodeProperty(n, "wave", "outage").ok());
    tx.CreateEdge(nodes[i % kVertices], n);
    EXPECT_TRUE(session->Commit(&tx).ok()) << "outage write " << i;
    fresh.push_back(n);
  }
  return fresh;
}

/// Runs `name` with bounded retries: a program raced against an ongoing
/// recovery fails fast with Unavailable and is retried after a backoff
/// (the chaos-mode client contract, docs/fault_tolerance.md#clients).
Result<ProgramResult> RunWithRetry(Session* session,
                                   std::string_view name, NodeId start,
                                   std::string params = "") {
  Result<ProgramResult> r = Status::Internal("never ran");
  for (int attempt = 0; attempt < 100; ++attempt) {
    r = session->RunProgram(name, start, params);
    if (r.ok() || !r.status().IsUnavailable()) return r;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return r;
}

struct WorkloadResults {
  std::vector<std::vector<std::pair<NodeId, std::string>>> queries;
};

/// Pure function of the settled graph: BFS reachability from several
/// sources (covers the outage vertices, which hang off the ring) plus
/// point lookups on both original and outage vertices.
WorkloadResults RunWorkload(Weaver* db, const std::vector<NodeId>& nodes,
                            const std::vector<NodeId>& outage_nodes) {
  WeaverClient client(db);
  auto session = client.OpenSession();
  WorkloadResults results;
  auto record = [&](Result<ProgramResult> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto returns = r->returns;
    std::sort(returns.begin(), returns.end());
    results.queries.push_back(std::move(returns));
  };
  for (const int src : {0, 31, 77}) {
    programs::BfsParams params;  // unbounded: every reachable vertex
    record(RunWithRetry(session.get(), programs::kBfs, nodes[src],
                        params.Encode()));
  }
  for (const int src : {3, 50}) {
    record(RunWithRetry(session.get(), programs::kCountEdges, nodes[src]));
    record(RunWithRetry(session.get(), programs::kGetNode, nodes[src]));
  }
  for (std::size_t i = 0; i < outage_nodes.size(); i += 7) {
    record(RunWithRetry(session.get(), programs::kGetNode, outage_nodes[i]));
  }
  return results;
}

/// Polls cluster metrics until the supervisor reports `want` completed
/// recoveries and no shard down. Returns false on deadline.
bool AwaitRecoveries(Weaver* db, std::uint64_t want,
                     std::chrono::seconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    auto cluster = db->CollectMetrics(/*timeout_micros=*/500'000);
    if (cluster.ok()) {
      const obs::MetricsSnapshot& local = cluster->local;
      if (local.CounterValue("supervisor.recoveries") >= want &&
          local.GaugeValue("supervisor.shards_down") == 0) {
        return true;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

#if !defined(WEAVER_TSAN)

/// kill -9 one shard child mid-workload; acknowledged writes survive and
/// the recovered deployment matches an in-process run that never crashed.
TEST(ProcessRecovery, KilledShardIsRespawnedAndReplayed) {
  // 1. Fork shard servers AND the warm spare pool first (no threads yet).
  serverd::ShardServerOptions so;
  so.num_shards = kShards;
  so.num_gatekeepers = kGatekeepers;
  auto children = serverd::SpawnShardServers(so);
  ASSERT_TRUE(children.ok()) << children.status().ToString();
  auto spares = serverd::SpawnSpareServers(so, /*count=*/2);
  ASSERT_TRUE(spares.ok()) << spares.status().ToString();

  WorkloadResults remote_results;
  std::vector<NodeId> remote_nodes;
  std::vector<NodeId> remote_outage;
  std::uint64_t replayed = 0;
  {
    WeaverOptions o = DeploymentOptions();
    o.supervision.enabled = true;
    o.supervision.poll_period_micros = 5'000;
    for (const auto& child : *children) {
      o.remote_shard_fds.push_back(child.parent_fd);
      o.supervision.shard_pids.push_back(child.pid);
    }
    for (const auto& spare : *spares) {
      o.supervision.spare_pids.push_back(spare.pid);
      o.supervision.spare_fds.push_back(spare.parent_fd);
    }
    auto db = Weaver::Open(o);
    ASSERT_NE(db, nullptr);

    // 2. Build the graph, then hard-kill shard 0's process.
    remote_nodes = BuildGraph(db.get());
    ASSERT_EQ(::kill((*children)[0].pid, SIGKILL), 0);

    // 3. Acknowledged writes while the shard is down (or recovering):
    // commits stay available -- durability comes from the kv store, the
    // dead shard's slices are the retries the replay makes whole.
    remote_outage = ApplyOutageWrites(db.get(), remote_nodes);

    // 4. The supervisor heals the cluster.
    ASSERT_TRUE(AwaitRecoveries(db.get(), 1, std::chrono::seconds(30)))
        << "supervisor never reported the recovery";

    // 5. Post-recovery traversals see every acknowledged write.
    remote_results = RunWorkload(db.get(), remote_nodes, remote_outage);
    EXPECT_EQ(db->bus().stats().wire_seq_violations.load(), 0u)
        << "recovery broke the wire FIFO contract";
    auto cluster = db->CollectMetrics();
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    const obs::MetricsSnapshot& local = cluster->local;
    EXPECT_EQ(local.CounterValue("supervisor.recoveries"), 1u);
    EXPECT_EQ(local.CounterValue("supervisor.recoveries_failed"), 0u);
    replayed = local.CounterValue("supervisor.replayed_vertices");
    EXPECT_GT(replayed, 0u) << "recovery replayed nothing";
    const obs::HistogramSnapshot* latency =
        local.FindHistogram("supervisor.recovery_latency");
    ASSERT_NE(latency, nullptr);
    EXPECT_EQ(latency->count, 1u);
    db->Shutdown();
  }
  // The killed child was reaped by the supervisor (ECHILD-skipped); the
  // survivor, the consumed spare, and the unused spare all exit 0.
  EXPECT_TRUE(serverd::WaitShardServers(*children).ok());
  EXPECT_TRUE(serverd::WaitShardServers(*spares).ok());

  // 6. The identical workload on an in-process deployment that never
  // crashed must produce identical results.
  auto db = Weaver::Open(DeploymentOptions());
  ASSERT_NE(db, nullptr);
  const std::vector<NodeId> nodes = BuildGraph(db.get());
  ASSERT_EQ(nodes, remote_nodes);
  const std::vector<NodeId> outage = ApplyOutageWrites(db.get(), nodes);
  ASSERT_EQ(outage, remote_outage);
  const WorkloadResults local_results =
      RunWorkload(db.get(), nodes, outage);
  ASSERT_EQ(remote_results.queries.size(), local_results.queries.size());
  for (std::size_t q = 0; q < local_results.queries.size(); ++q) {
    EXPECT_EQ(remote_results.queries[q], local_results.queries[q])
        << "query " << q << " diverged after crash recovery";
  }
  // The BFS really covered the post-crash graph: ring + outage vertices.
  ASSERT_FALSE(local_results.queries.empty());
  EXPECT_EQ(local_results.queries[0].size(),
            static_cast<std::size_t>(kVertices + kOutageWrites));
}

/// The deterministic fault-injection seam: a FaultInjectingTransport
/// drops shard 1's link at a fixed frame count. The process survives,
/// but the parent sees EOF -- the supervisor must SIGKILL the orphan and
/// recover exactly as for a real crash.
TEST(ProcessRecovery, DroppedLinkRecoversThroughInjectorSeam) {
  serverd::ShardServerOptions so;
  so.num_shards = kShards;
  so.num_gatekeepers = 1;
  auto children = serverd::SpawnShardServers(so);
  ASSERT_TRUE(children.ok()) << children.status().ToString();
  auto spares = serverd::SpawnSpareServers(so, /*count=*/1);
  ASSERT_TRUE(spares.ok()) << spares.status().ToString();

  std::shared_ptr<FaultInjectingTransport> injected;
  {
    WeaverOptions o = DeploymentOptions();
    o.num_gatekeepers = 1;
    o.supervision.enabled = true;
    o.supervision.poll_period_micros = 5'000;
    for (const auto& child : *children) {
      o.remote_shard_fds.push_back(child.parent_fd);
      o.supervision.shard_pids.push_back(child.pid);
    }
    for (const auto& spare : *spares) {
      o.supervision.spare_pids.push_back(spare.pid);
      o.supervision.spare_fds.push_back(spare.parent_fd);
    }
    o.shard_transport_decorator =
        [&injected](std::shared_ptr<Transport> inner,
                    ShardId shard) -> std::shared_ptr<Transport> {
      if (shard != 1 || injected != nullptr) return inner;
      FaultPlan plan;
      plan.kind = FaultPlan::Kind::kDropLink;
      plan.after_frames = 200;  // mid-build: reproducible on every run
      injected = std::make_shared<FaultInjectingTransport>(std::move(inner),
                                                           plan);
      return injected;
    };
    auto db = Weaver::Open(o);
    ASSERT_NE(db, nullptr);
    ASSERT_NE(injected, nullptr) << "decorator never ran";

    const std::vector<NodeId> nodes = BuildGraph(db.get());
    ASSERT_TRUE(AwaitRecoveries(db.get(), 1, std::chrono::seconds(30)))
        << "supervisor never recovered the dropped link (injector fired: "
        << injected->fired() << ", frames: " << injected->frames() << ")";
    EXPECT_TRUE(injected->fired());

    // The healed deployment still answers traversals over the full ring.
    WeaverClient client(db.get());
    auto session = client.OpenSession();
    programs::BfsParams params;
    auto r = RunWithRetry(session.get(), programs::kBfs, nodes[0],
                          params.Encode());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->returns.size(), static_cast<std::size_t>(kVertices));
    auto cluster = db->CollectMetrics();
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    EXPECT_GE(cluster->local.CounterValue("supervisor.recoveries"), 1u);
    db->Shutdown();
  }
  EXPECT_TRUE(serverd::WaitShardServers(*children).ok());
  EXPECT_TRUE(serverd::WaitShardServers(*spares).ok());
}

/// Synthetic concurrent timestamps in an epoch far above any watermark
/// the deployment can reach, so the oracle never GC-collects them.
RefinableTimestamp HighEpochTs(std::uint64_t counter, GatekeeperId gk) {
  std::vector<std::uint64_t> counters(kGatekeepers, 0);
  counters[gk] = counter;
  VectorClock clock(/*epoch=*/1'000'000, std::move(counters));
  return RefinableTimestamp(clock, gk, counter);
}

/// Polls until shard `shard`'s own metrics report shows at least `want`
/// oracle edges applied via Sync (the rehydration path).
bool AwaitSyncedEdges(Weaver* db, ShardId shard, std::uint64_t want,
                      std::chrono::seconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    auto cluster = db->CollectMetrics(/*timeout_micros=*/500'000);
    if (cluster.ok()) {
      for (const auto& report : cluster->remote) {
        if (report.shard == shard &&
            report.snapshot.CounterValue("oracle.client.sync_edges_applied") >=
                want) {
          return true;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

/// PR 7 gap, closed: with weaver-oracled running, a respawned shard
/// rehydrates its oracle replica from the service (Sync) before serving,
/// so timeline refinements established before its crash are visible to
/// it after REJOIN without one RPC per pair.
TEST(ProcessRecovery, RespawnedShardRehydratesOracleView) {
  constexpr std::uint64_t kPairs = 8;
  serverd::ShardServerOptions so;
  so.num_shards = kShards;
  so.num_gatekeepers = kGatekeepers;
  so.remote_oracle = true;
  std::string oracle_dir;
  {
    std::string templ =
        (std::filesystem::temp_directory_path() / "weaver_rehydrate_XXXXXX")
            .string();
    char* dir = ::mkdtemp(templ.data());
    ASSERT_NE(dir, nullptr);
    oracle_dir = dir;
  }
  so.oracle_data_dir = oracle_dir;
  auto children = serverd::SpawnShardServers(so);
  ASSERT_TRUE(children.ok()) << children.status().ToString();
  auto oracled = serverd::SpawnOracleServer(so);
  ASSERT_TRUE(oracled.ok()) << oracled.status().ToString();
  auto spares = serverd::SpawnSpareServers(so, /*count=*/1);
  ASSERT_TRUE(spares.ok()) << spares.status().ToString();
  {
    WeaverOptions o = DeploymentOptions();
    o.supervision.enabled = true;
    o.supervision.poll_period_micros = 5'000;
    o.oracle_service.enabled = true;
    o.oracle_service.pid = oracled->pid;
    o.oracle_service.fd = oracled->parent_fd;
    for (const auto& child : *children) {
      o.remote_shard_fds.push_back(child.parent_fd);
      o.supervision.shard_pids.push_back(child.pid);
    }
    for (const auto& spare : *spares) {
      o.supervision.spare_pids.push_back(spare.pid);
      o.supervision.spare_fds.push_back(spare.parent_fd);
    }
    auto db = Weaver::Open(o);
    ASSERT_NE(db, nullptr);

    // Refinements established BEFORE the crash, through the service (and
    // its changelog).
    std::vector<std::pair<RefinableTimestamp, RefinableTimestamp>> pairs;
    std::vector<ClockOrder> decided;
    for (std::uint64_t i = 1; i <= kPairs; ++i) {
      const auto a = HighEpochTs(i, 0);
      const auto b = HighEpochTs(i, 1);
      auto order =
          db->oracle_client().OrderPair(a, b, OrderPreference::kPreferFirst);
      ASSERT_TRUE(order.ok()) << order.status().ToString();
      pairs.emplace_back(a, b);
      decided.push_back(*order);
    }

    const std::vector<NodeId> nodes = BuildGraph(db.get());
    ASSERT_EQ(::kill((*children)[0].pid, SIGKILL), 0);
    const std::vector<NodeId> outage = ApplyOutageWrites(db.get(), nodes);
    ASSERT_TRUE(AwaitRecoveries(db.get(), 1, std::chrono::seconds(30)))
        << "supervisor never reported the recovery";

    // The respawn Sync'd the oracle's edge dump into its local replica:
    // every pre-crash refinement is locally answerable on shard 0.
    EXPECT_TRUE(
        AwaitSyncedEdges(db.get(), 0, kPairs, std::chrono::seconds(20)))
        << "respawned shard never reported rehydrated oracle edges";

    // And the decisions themselves read back un-inverted through the
    // service (parent replica wiped first so the queries cannot be
    // answered from a warm local cache).
    db->oracle_client().CollectBefore(VectorClock(
        1'000'001, std::vector<std::uint64_t>(kGatekeepers, 1)));
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      auto again = db->oracle_client().OrderPair(
          pairs[i].second, pairs[i].first, OrderPreference::kPreferFirst);
      ASSERT_TRUE(again.ok()) << again.status().ToString();
      EXPECT_EQ(*again, FlipOrder(decided[i])) << "order inverted at " << i;
    }

    // The healed deployment still answers traversals.
    WeaverClient client(db.get());
    auto session = client.OpenSession();
    programs::BfsParams params;
    auto r = RunWithRetry(session.get(), programs::kBfs, nodes[0],
                          params.Encode());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->returns.size(),
              static_cast<std::size_t>(kVertices + kOutageWrites));
    db->Shutdown();
  }
  EXPECT_TRUE(serverd::WaitShardServers(*children).ok());
  EXPECT_TRUE(serverd::WaitShardServers({*oracled}).ok());
  EXPECT_TRUE(serverd::WaitShardServers(*spares).ok());
  std::error_code ec;
  std::filesystem::remove_all(oracle_dir, ec);
}

#endif  // !WEAVER_TSAN

}  // namespace
}  // namespace weaver
