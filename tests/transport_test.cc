// Transport-layer tests (docs/transport.md): SocketTransport framing,
// WireLink delivery into a second bus, per-channel sequence enforcement
// (reordered frames fail loudly), hub forwarding, and a concurrent
// session-style stress over a socketpair (the TSan target).
#include "net/transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/message_codec.h"
#include "core/messages.h"
#include "net/bus.h"
#include "net/wire.h"
#include "net/wire_link.h"

namespace weaver {
namespace {

WireLink::Options LinkOptions(MessageBus* bus,
                              std::shared_ptr<Transport> transport,
                              std::string name) {
  WireLink::Options o;
  o.bus = bus;
  o.transport = std::move(transport);
  o.decode = DecodePayload;
  o.never_block = WireNeverBlock;
  o.name = std::move(name);
  return o;
}

TEST(Transport, SocketPairMovesBytes) {
  // Receiver-captured state outlives the transports (the receive thread
  // fires an end-of-stream callback during transport destruction).
  std::string received;
  std::mutex mu;
  std::condition_variable cv;

  auto pair = SocketTransport::CreatePair();
  ASSERT_TRUE(pair.ok());
  auto [a, b] = std::move(pair).value();

  b->StartReceiver([&](const char* data, std::size_t n) {
    if (data == nullptr) return;  // end-of-stream marker
    std::lock_guard<std::mutex> lk(mu);
    received.append(data, n);
    cv.notify_all();
  });
  ASSERT_TRUE(a->SendBytes("hello ").ok());
  ASSERT_TRUE(a->SendBytes("transport").ok());
  std::unique_lock<std::mutex> lk(mu);
  ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(5), [&] {
    return received.size() == 15;
  }));
  EXPECT_EQ(received, "hello transport");
}

TEST(Transport, LoopbackTcpMovesFrames) {
  // Receiver-captured state first: it must outlive the transports.
  std::mutex mu;
  std::condition_variable cv;
  wire::FrameParser parser;
  bool got = false;
  wire::FrameHeader header;
  std::string payload;

  auto listener = SocketTransport::ListenLoopback(0);
  ASSERT_TRUE(listener.ok());
  auto port = SocketTransport::ListenPort(*listener);
  ASSERT_TRUE(port.ok());

  std::unique_ptr<SocketTransport> server;
  std::thread accepter([&] {
    auto accepted = SocketTransport::AcceptOne(*listener);
    ASSERT_TRUE(accepted.ok());
    server = std::move(accepted).value();
  });
  auto client = SocketTransport::ConnectLoopback(*port);
  ASSERT_TRUE(client.ok());
  accepter.join();
  ASSERT_NE(server, nullptr);

  // One real frame over TCP, parsed on the server side.
  server->StartReceiver([&](const char* data, std::size_t n) {
    if (data == nullptr) return;  // end-of-stream marker
    std::lock_guard<std::mutex> lk(mu);
    parser.Feed(data, n);
    bool ready = false;
    if (parser.Next(&header, &payload, &ready).ok() && ready) {
      got = true;
      cv.notify_all();
    }
  });
  wire::FrameHeader h;
  h.tag = kMsgNop;
  h.src = 1;
  h.dst = 2;
  h.channel_seq = 1;
  ASSERT_TRUE((*client)->SendBytes(wire::EncodeFrame(h, "tcp")).ok());
  std::unique_lock<std::mutex> lk(mu);
  ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(5), [&] { return got; }));
  EXPECT_EQ(header.tag, static_cast<std::uint32_t>(kMsgNop));
  EXPECT_EQ(payload, "tcp");
  ::close(*listener);
}

// Two buses linked by a socketpair: bus A's remote endpoint proxies bus
// B's inbox endpoint. This is the two-process topology in one process.
TEST(Transport, BusToBusDeliveryPreservesPayloadAndSeq) {
  auto pair = SocketTransport::CreatePair();
  ASSERT_TRUE(pair.ok());
  std::shared_ptr<Transport> a_side = std::move(pair->first);
  std::shared_ptr<Transport> b_side = std::move(pair->second);

  MessageBus bus_a;
  bus_a.SetWireEncoder(EncodePayload);
  MessageBus bus_b;
  bus_b.SetWireEncoder(EncodePayload);

  // Mirrored layout: id 0 = the inbox (real on B, proxy on A).
  auto inbox = std::make_shared<BlockingQueue<BusMessage>>();
  const EndpointId remote_on_a = bus_a.RegisterRemote("b.inbox", a_side);
  const EndpointId real_on_b = bus_b.RegisterInbox("b.inbox", inbox);
  ASSERT_EQ(remote_on_a, real_on_b);
  const EndpointId sender =
      bus_a.RegisterHandler("sender", [](const BusMessage&) {});
  (void)bus_b.RegisterRemote("sender", b_side);  // mirror the id space

  WireLink link_b(LinkOptions(&bus_b, b_side, "b.uplink"));

  for (int i = 0; i < 100; ++i) {
    auto nop = std::make_shared<NopMessage>();
    nop->ts = RefinableTimestamp(VectorClock(0, {static_cast<uint64_t>(i)}),
                                 0, static_cast<uint64_t>(i));
    ASSERT_TRUE(
        bus_a.Send(sender, remote_on_a, kMsgNop, std::move(nop)).ok());
  }
  for (std::uint64_t i = 1; i <= 100; ++i) {
    auto msg = inbox->Pop();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->channel_seq, i);  // sender-side seq preserved
    EXPECT_EQ(msg->payload_tag, static_cast<std::uint32_t>(kMsgNop));
    auto nop = std::static_pointer_cast<NopMessage>(msg->payload);
    EXPECT_EQ(nop->ts.local_seq, i - 1);
  }
  EXPECT_EQ(bus_b.stats().wire_seq_violations.load(), 0u);
}

// The receiver must fail loudly when frames arrive out of order: craft
// two frames and swap them on the wire.
TEST(Transport, ReorderedFramesFailLoudly) {
  MessageBus bus;
  auto inbox = std::make_shared<BlockingQueue<BusMessage>>();
  const EndpointId dst = bus.RegisterInbox("shard", inbox);

  auto make = [&](std::uint64_t seq) {
    BusMessage msg;
    msg.src = 40;
    msg.dst = dst;
    msg.channel_seq = seq;
    msg.payload_tag = kMsgNop;
    msg.payload = std::make_shared<NopMessage>();
    return msg;
  };

  // In-order delivery is accepted...
  ASSERT_TRUE(bus.DeliverWire(make(1), false).ok());
  // ...a reordered (future) frame is rejected loudly...
  const Status gap = bus.DeliverWire(make(3), false);
  EXPECT_TRUE(gap.IsInternal()) << gap.ToString();
  EXPECT_EQ(bus.stats().wire_seq_violations.load(), 1u);
  // ...and so is the late frame that would have "filled" the gap after a
  // swap, plus any replay of an already-accepted sequence number.
  EXPECT_TRUE(bus.DeliverWire(make(1), false).IsInternal());
  EXPECT_EQ(bus.stats().wire_seq_violations.load(), 2u);
  // The in-order successor is still accepted (per-channel bookkeeping
  // was not corrupted by the rejected frames).
  EXPECT_TRUE(bus.DeliverWire(make(2), false).ok());
}

// End-to-end reorder through a WireLink: swap two encoded frames on the
// raw socket and watch the link fail loudly instead of delivering.
TEST(Transport, LinkRejectsSwappedFrames) {
  auto pair = SocketTransport::CreatePair();
  ASSERT_TRUE(pair.ok());
  std::shared_ptr<Transport> tx_side = std::move(pair->first);
  std::shared_ptr<Transport> rx_side = std::move(pair->second);

  MessageBus bus;
  auto inbox = std::make_shared<BlockingQueue<BusMessage>>();
  (void)bus.RegisterInbox("shard", inbox);

  WireLink link(LinkOptions(&bus, rx_side, "reorder.uplink"));

  auto frame = [&](std::uint64_t seq) {
    wire::Writer w;
    Encode(NopMessage{}, &w);
    wire::FrameHeader h;
    h.tag = kMsgNop;
    h.src = 9;
    h.dst = 0;
    h.channel_seq = seq;
    return wire::EncodeFrame(h, w.str());
  };
  // Seq 2 before seq 1: the link must reject and poison itself. The
  // second send may already fail -- the link tears the socket down as
  // soon as it sees the violation.
  ASSERT_TRUE(tx_side->SendBytes(frame(2)).ok());
  (void)tx_side->SendBytes(frame(1));
  link.WaitClosed();
  EXPECT_FALSE(link.error().ok());
  EXPECT_GE(bus.stats().wire_seq_violations.load(), 1u);
  EXPECT_EQ(inbox->Size(), 0u);  // nothing out-of-order was delivered
}

// Hub forwarding: frames addressed to a remote endpoint of the receiving
// bus transit it verbatim (parent-as-hub between two children).
TEST(Transport, HubForwardsFramesBetweenLinks) {
  // child A --pair1-- hub --pair2-- child B, all in one process.
  auto pair1 = SocketTransport::CreatePair();
  auto pair2 = SocketTransport::CreatePair();
  ASSERT_TRUE(pair1.ok() && pair2.ok());
  std::shared_ptr<Transport> a_to_hub = std::move(pair1->first);
  std::shared_ptr<Transport> hub_from_a = std::move(pair1->second);
  std::shared_ptr<Transport> hub_to_b = std::move(pair2->first);
  std::shared_ptr<Transport> b_from_hub = std::move(pair2->second);

  // Shared layout: 0 = shard A, 1 = shard B.
  MessageBus hub;
  hub.SetWireEncoder(EncodePayload);
  (void)hub.RegisterRemote("shardA", hub_from_a);
  (void)hub.RegisterRemote("shardB", hub_to_b);
  WireLink hub_link(LinkOptions(&hub, hub_from_a, "hub.fromA"));

  MessageBus bus_b;
  bus_b.SetWireEncoder(EncodePayload);
  auto inbox_b = std::make_shared<BlockingQueue<BusMessage>>();
  (void)bus_b.RegisterRemote("shardA", b_from_hub);
  const EndpointId shard_b = bus_b.RegisterInbox("shardB", inbox_b);
  ASSERT_EQ(shard_b, 1u);
  WireLink b_link(LinkOptions(&bus_b, b_from_hub, "b.uplink"));

  MessageBus bus_a;
  bus_a.SetWireEncoder(EncodePayload);
  const EndpointId self_a =
      bus_a.RegisterHandler("shardA", [](const BusMessage&) {});
  ASSERT_EQ(self_a, 0u);
  const EndpointId remote_b = bus_a.RegisterRemote("shardB", a_to_hub);
  ASSERT_EQ(remote_b, 1u);

  auto batch = std::make_shared<WaveHopBatchMessage>();
  batch->program_id = 5;
  batch->program_name = "bfs";
  batch->hops.push_back(NextHop{77, "deep"});
  ASSERT_TRUE(
      bus_a.Send(self_a, remote_b, kMsgWaveHops, std::move(batch)).ok());

  auto msg = inbox_b->Pop();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->src, 0u);
  EXPECT_EQ(msg->channel_seq, 1u);
  auto got = std::static_pointer_cast<WaveHopBatchMessage>(msg->payload);
  EXPECT_EQ(got->program_id, 5u);
  ASSERT_EQ(got->hops.size(), 1u);
  EXPECT_EQ(got->hops[0].node, 77u);
  EXPECT_EQ(got->hops[0].params, "deep");
  // The delivery to B can race ahead of the hub thread's own stats
  // update; give the counter a moment.
  for (int spin = 0;
       spin < 2000 && hub_link.stats().frames_forwarded.load() == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(hub_link.stats().frames_forwarded.load(), 1u);
}

// Session-style stress over a socketpair: several threads hammer one
// remote endpoint through the bus while a second bus delivers into a
// bounded inbox. This is the TSan target for the transport locking
// (write mutex, parser thread, seq bookkeeping).
TEST(Transport, ConcurrentSendersStressOverSocket) {
  auto pair = SocketTransport::CreatePair();
  ASSERT_TRUE(pair.ok());
  std::shared_ptr<Transport> send_side = std::move(pair->first);
  std::shared_ptr<Transport> recv_side = std::move(pair->second);

  MessageBus bus_tx;
  bus_tx.SetWireEncoder(EncodePayload);
  MessageBus bus_rx;
  bus_rx.SetWireEncoder(EncodePayload);

  auto inbox = std::make_shared<BlockingQueue<BusMessage>>(256);
  const EndpointId remote = bus_tx.RegisterRemote("sink", send_side);
  const EndpointId sink = bus_rx.RegisterInbox("sink", inbox);
  ASSERT_EQ(remote, sink);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<EndpointId> senders;
  for (int t = 0; t < kThreads; ++t) {
    senders.push_back(bus_tx.RegisterHandler("sender" + std::to_string(t),
                                             [](const BusMessage&) {}));
    (void)bus_rx.RegisterRemote("sender" + std::to_string(t), recv_side);
  }

  std::atomic<std::uint64_t> drained{0};
  std::thread consumer([&] {
    while (true) {
      auto msg = inbox->Pop();
      if (!msg.has_value()) return;
      drained.fetch_add(1);
    }
  });

  WireLink link(LinkOptions(&bus_rx, recv_side, "stress.uplink"));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto tx = std::make_shared<TxMessage>();
        tx->ops.push_back(GraphOp::AssignNodeProp(
            static_cast<NodeId>(i), "k", std::to_string(t)));
        ASSERT_TRUE(
            bus_tx.Send(senders[t], remote, kMsgTx, std::move(tx)).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (drained.load() < kThreads * kPerThread &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(drained.load(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(bus_rx.stats().wire_seq_violations.load(), 0u);
  inbox->Close();
  consumer.join();
}

}  // namespace
}  // namespace weaver
