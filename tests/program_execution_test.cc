// Tests for the decentralized node-program execution model
// (docs/node_programs.md): shard-to-shard hop forwarding, quiescence by
// credit-counting accounting, ingress coalescing / visited-vertex
// pruning, per-program state GC after async completion, and a
// writers-vs-programs stress (run under TSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <thread>

#include "client/weaver_client.h"
#include "common/random.h"
#include "core/weaver.h"
#include "programs/extended_programs.h"
#include "programs/standard_programs.h"

namespace weaver {
namespace {

WeaverOptions FastOptions(std::size_t gks, std::size_t shards) {
  WeaverOptions o;
  o.num_gatekeepers = gks;
  o.num_shards = shards;
  o.tau_micros = 200;
  o.nop_period_micros = 100;
  return o;
}

/// Builds the same pseudo-random graph on any deployment: `num_nodes`
/// vertices, `num_edges` directed edges chosen by a fixed-seed RNG.
void BuildGraph(Weaver* db, NodeId num_nodes, std::size_t num_edges,
                std::uint64_t seed, std::vector<NodeId>* nodes) {
  {
    auto tx = db->BeginTx();
    for (NodeId i = 0; i < num_nodes; ++i) nodes->push_back(tx.CreateNode());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  Rng rng(seed);
  // Several transactions so placements span every shard configuration.
  const std::size_t per_tx = 64;
  for (std::size_t done = 0; done < num_edges;) {
    auto tx = db->BeginTx();
    for (std::size_t i = 0; i < per_tx && done < num_edges; ++i, ++done) {
      const NodeId from = (*nodes)[rng.Uniform(num_nodes)];
      const NodeId to = (*nodes)[rng.Uniform(num_nodes)];
      tx.CreateEdge(from, to);
    }
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
}

std::vector<std::pair<NodeId, std::string>> Sorted(
    std::vector<std::pair<NodeId, std::string>> returns) {
  std::sort(returns.begin(), returns.end());
  return returns;
}

// The cross-check suite of the acceptance criteria: every program must
// produce identical results on a multi-shard deployment (decentralized
// forwarding) and on a single-shard one (trivially serial reference),
// given the same quiesced graph.
TEST(ProgramExecutionTest, MultiShardMatchesSingleShardReference) {
  constexpr NodeId kNodes = 120;
  constexpr std::size_t kEdges = 600;
  std::vector<NodeId> single_nodes, multi_nodes;
  auto single = Weaver::Open(FastOptions(1, 1));
  auto multi = Weaver::Open(FastOptions(2, 3));
  BuildGraph(single.get(), kNodes, kEdges, 42, &single_nodes);
  BuildGraph(multi.get(), kNodes, kEdges, 42, &multi_nodes);
  ASSERT_EQ(single_nodes, multi_nodes);  // same ids => comparable returns

  struct Case {
    std::string_view program;
    std::string params;
    /// Programs whose revisits return again (shortest path) emit a
    /// per-vertex return STREAM; the client-visible result is the
    /// per-vertex reduction (min here), which is how every consumer of
    /// these programs already reads them (see WeaverE2E.ShortestPath,
    /// LabelProp's "last one per vertex wins"). Visit-once programs
    /// return exactly once per vertex and compare raw.
    bool reduce_min_per_vertex = false;
  };
  programs::BfsParams bfs;
  bfs.target = single_nodes[kNodes - 1];
  programs::ShortestPathParams sp;
  sp.target = single_nodes[kNodes / 2];
  programs::KHopParams khop;
  khop.remaining = 3;
  const std::vector<Case> cases = {
      {programs::kBfs, bfs.Encode(), false},
      {programs::kShortestPath, sp.Encode(), true},
      {programs::kKHop, khop.Encode(), false},  // returns once per vertex
      {programs::kCountEdges, "", false},
      {programs::kGetNode, "", false},
  };
  auto reduce = [](const std::vector<std::pair<NodeId, std::string>>& returns,
                   bool min_per_vertex) {
    if (!min_per_vertex) return Sorted(returns);
    std::map<NodeId, std::string> best;
    for (const auto& [node, blob] : returns) {
      auto [it, fresh] = best.try_emplace(node, blob);
      if (!fresh && blob < it->second) it->second = blob;
    }
    return std::vector<std::pair<NodeId, std::string>>(best.begin(),
                                                       best.end());
  };
  for (const Case& c : cases) {
    for (NodeId start : {single_nodes[0], single_nodes[7]}) {
      auto ref = single->RunProgram(c.program, start, c.params);
      auto dec = multi->RunProgram(c.program, start, c.params);
      ASSERT_TRUE(ref.ok()) << c.program << ": " << ref.status().ToString();
      ASSERT_TRUE(dec.ok()) << c.program << ": " << dec.status().ToString();
      // Returns are compared as sorted multisets: within a shard the
      // order is visit order, across shards it is accounting order.
      EXPECT_EQ(reduce(ref->returns, c.reduce_min_per_vertex),
                reduce(dec->returns, c.reduce_min_per_vertex))
          << c.program << " diverged from the serial reference";
    }
  }
}

// Termination on cyclic graphs: quiescence accounting must balance even
// when the traversal loops back onto visited vertices across shards.
TEST(ProgramExecutionTest, TerminatesOnCyclicGraph) {
  auto db = Weaver::Open(FastOptions(2, 3));
  constexpr int kRing = 30;
  std::vector<NodeId> ring;
  {
    auto tx = db->BeginTx();
    for (int i = 0; i < kRing; ++i) ring.push_back(tx.CreateNode());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  {
    auto tx = db->BeginTx();
    for (int i = 0; i < kRing; ++i) {
      tx.CreateEdge(ring[i], ring[(i + 1) % kRing]);
      // Chords make the cycle structure denser than a plain ring.
      tx.CreateEdge(ring[i], ring[(i + 7) % kRing]);
    }
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  // VisitOnce traversal around the cycles.
  auto bfs = db->RunProgram(programs::kBfs, ring[0], programs::BfsParams{}.Encode());
  ASSERT_TRUE(bfs.ok()) << bfs.status().ToString();
  EXPECT_EQ(bfs->returns.size(), static_cast<std::size_t>(kRing));
  // Param-dependent revisits (shortest path) must also quiesce.
  programs::ShortestPathParams sp;
  sp.target = ring[kRing / 2];
  auto spr = db->RunProgram(programs::kShortestPath, ring[0], sp.Encode());
  ASSERT_TRUE(spr.ok()) << spr.status().ToString();
  ASSERT_FALSE(spr->returns.empty());
}

// Hop coalescing correctness: a diamond fan-in delivers multiple
// identical hops to one vertex; coalescing must drop the duplicates
// (counters) without changing the result (exactly one return per
// vertex).
TEST(ProgramExecutionTest, FanInCoalescesWithoutChangingResults) {
  auto db = Weaver::Open(FastOptions(2, 2));
  // a -> b1..b8 -> z : z receives 8 same-depth, same-params hops.
  NodeId a, z;
  std::vector<NodeId> mids;
  {
    auto tx = db->BeginTx();
    a = tx.CreateNode();
    for (int i = 0; i < 8; ++i) mids.push_back(tx.CreateNode());
    z = tx.CreateNode();
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  {
    auto tx = db->BeginTx();
    for (NodeId m : mids) {
      tx.CreateEdge(a, m);
      tx.CreateEdge(m, z);
    }
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  auto result =
      db->RunProgram(programs::kBfs, a, programs::BfsParams{}.Encode());
  ASSERT_TRUE(result.ok());
  std::vector<NodeId> returned;
  for (const auto& [node, _] : result->returns) returned.push_back(node);
  std::sort(returned.begin(), returned.end());
  EXPECT_TRUE(std::adjacent_find(returned.begin(), returned.end()) ==
              returned.end())
      << "a vertex produced two returns: duplicate hops were re-dispatched";
  EXPECT_EQ(returned.size(), mids.size() + 2);  // a + mids + z
  // The duplicates went somewhere: pruned or coalesced at ingress, and
  // strictly fewer hops consumed than edges traversed naively.
  std::uint64_t pruned = 0;
  for (std::size_t s = 0; s < db->num_shards(); ++s) {
    const auto& st = db->shard(static_cast<ShardId>(s)).stats();
    pruned += st.hops_pruned.load() + st.hops_coalesced.load();
  }
  EXPECT_GT(pruned, 0u);
  EXPECT_LT(result->hops, 1u + 2 * mids.size() + 1);
}

// Program scratch state is GC'd on every touched shard after an ASYNC
// (session API) completion -- the EndProgram broadcast of the
// accounting-driven teardown.
TEST(ProgramExecutionTest, StateGcAfterAsyncCompletion) {
  auto db = Weaver::Open(FastOptions(2, 3));
  std::vector<NodeId> chain;
  {
    auto tx = db->BeginTx();
    for (int i = 0; i < 12; ++i) chain.push_back(tx.CreateNode());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  {
    auto tx = db->BeginTx();
    for (int i = 0; i + 1 < 12; ++i) tx.CreateEdge(chain[i], chain[i + 1]);
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  WeaverClient client(db.get());
  auto session = client.OpenSession();
  for (int round = 0; round < 4; ++round) {
    auto pending = session->RunProgramAsync(
        programs::kBfs, {NextHop{chain[0], programs::BfsParams{}.Encode()}});
    auto result = pending.Take();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->returns.size(), chain.size());
  }
  // EndProgram is broadcast after the result is delivered; give the
  // shard loops a moment to drain it, then require zero retained state.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    std::size_t live = 0;
    for (std::size_t s = 0; s < db->num_shards(); ++s) {
      live += db->shard(static_cast<ShardId>(s)).ProgramStateCount();
      live += db->shard(static_cast<ShardId>(s)).ProgramContextCount();
    }
    if (live == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (std::size_t s = 0; s < db->num_shards(); ++s) {
    EXPECT_EQ(db->shard(static_cast<ShardId>(s)).ProgramStateCount(), 0u)
        << "shard " << s << " leaked program state";
    EXPECT_EQ(db->shard(static_cast<ShardId>(s)).ProgramContextCount(), 0u)
        << "shard " << s << " leaked a program context";
  }
}

// Concurrent writers vs. programs: the delay rule + decentralized
// forwarding under churn. TSan-clean is part of the acceptance criteria
// (this test is in CI's TSan suite).
TEST(ProgramExecutionTest, ConcurrentWritesVsProgramsStress) {
  auto db = Weaver::Open(FastOptions(2, 3));
  constexpr int kNodes = 40;
  std::vector<NodeId> nodes;
  {
    auto tx = db->BeginTx();
    for (int i = 0; i < kNodes; ++i) nodes.push_back(tx.CreateNode());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  {
    auto tx = db->BeginTx();
    for (int i = 0; i < kNodes; ++i) {
      tx.CreateEdge(nodes[i], nodes[(i + 1) % kNodes]);
      tx.CreateEdge(nodes[i], nodes[(i + 5) % kNodes]);
    }
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> commit_failures{0};
  std::thread writer([&] {
    Rng rng(7);
    while (!stop.load()) {
      const NodeId n = nodes[rng.Uniform(kNodes)];
      const Status st = db->RunTransaction([&](Transaction& tx) {
        return tx.AssignNodeProperty(n, "w", std::to_string(rng.Next()));
      });
      if (!st.ok()) commit_failures.fetch_add(1);
    }
  });
  std::thread program_runner([&] {
    Rng rng(11);
    for (int i = 0; i < 40; ++i) {
      auto r = db->RunProgram(programs::kBfs, nodes[rng.Uniform(kNodes)],
                              programs::BfsParams{}.Encode());
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      // The whole strongly-connected ring is reachable from any start.
      EXPECT_EQ(r->returns.size(), static_cast<std::size_t>(kNodes));
    }
  });
  program_runner.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(commit_failures.load(), 0);
}

// Forwarding is real messaging: a multi-shard traversal must move hop
// batches shard-to-shard and report more than one drain cycle, while a
// single-shard traversal completes in one cycle with zero forwards.
TEST(ProgramExecutionTest, AccountingCountersReflectTopology) {
  auto multi = Weaver::Open(FastOptions(2, 3));
  auto single = Weaver::Open(FastOptions(2, 1));
  for (Weaver* db : {multi.get(), single.get()}) {
    std::vector<NodeId> chain;
    {
      auto tx = db->BeginTx();
      for (int i = 0; i < 9; ++i) chain.push_back(tx.CreateNode());
      ASSERT_TRUE(db->Commit(&tx).ok());
    }
    {
      auto tx = db->BeginTx();
      for (int i = 0; i + 1 < 9; ++i) tx.CreateEdge(chain[i], chain[i + 1]);
      ASSERT_TRUE(db->Commit(&tx).ok());
    }
    auto r = db->RunProgram(programs::kBfs, chain[0],
                            programs::BfsParams{}.Encode());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->returns.size(), chain.size());
    EXPECT_EQ(r->hops, static_cast<std::uint64_t>(9));  // chain: no fan-in
    if (db == multi.get()) {
      EXPECT_GT(r->forwarded_batches, 0u) << "no shard-to-shard forwarding";
      EXPECT_GE(r->waves, 2u);
    } else {
      EXPECT_EQ(r->forwarded_batches, 0u);
      EXPECT_EQ(r->waves, 1u);  // one local worklist drain
    }
    EXPECT_GE(r->coordinator_msgs, r->waves);
  }
}

}  // namespace
}  // namespace weaver
