// Correctness tests for the comparison baselines: the Titan-like 2PL
// store, the GraphLab-like engines, and the Blockchain.info-like row
// store. Baselines must compute the same answers as Weaver; the benches
// only compare performance.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "baselines/blockchain_info_like.h"
#include "baselines/graphlab_like.h"
#include "baselines/titan_like.h"
#include "workload/social_graph.h"

namespace weaver {
namespace baselines {
namespace {

TEST(TitanLikeTest, BasicCrud) {
  TitanLikeDb::Options o;
  o.phase_delay_micros = 0;
  TitanLikeDb db(o);
  db.LoadNode(1);
  db.LoadNode(2);
  ASSERT_TRUE(db.CreateEdge(1, 2).ok());
  std::uint64_t degree = 0;
  ASSERT_TRUE(db.GetNode(1, &degree).ok());
  EXPECT_EQ(degree, 1u);
  std::vector<NodeId> targets;
  ASSERT_TRUE(db.GetEdges(1, &targets).ok());
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], 2u);
  ASSERT_TRUE(db.DeleteEdge(1, 2).ok());
  ASSERT_TRUE(db.CountEdges(1, &degree).ok());
  EXPECT_EQ(degree, 0u);
}

TEST(TitanLikeTest, MissingObjectsNotFound) {
  TitanLikeDb::Options o;
  o.phase_delay_micros = 0;
  TitanLikeDb db(o);
  std::uint64_t degree;
  EXPECT_TRUE(db.GetNode(9, &degree).IsNotFound());
  EXPECT_TRUE(db.CreateEdge(9, 10).IsNotFound());
  db.LoadNode(9);
  EXPECT_TRUE(db.DeleteEdge(9, 10).IsNotFound());
}

TEST(TitanLikeTest, ConcurrentWritersNoLostUpdates) {
  TitanLikeDb::Options o;
  o.phase_delay_micros = 0;
  TitanLikeDb db(o);
  db.LoadNode(1);
  constexpr int kThreads = 4, kOps = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        ASSERT_TRUE(db.CreateEdge(1, 100 + t * kOps + i).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  std::uint64_t degree = 0;
  ASSERT_TRUE(db.CountEdges(1, &degree).ok());
  EXPECT_EQ(degree, static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(db.stats().txs.load(),
            static_cast<std::uint64_t>(kThreads) * kOps + 1);
}

TEST(TitanLikeTest, CommitDelayIsPaid) {
  TitanLikeDb::Options o;
  o.phase_delay_micros = 2000;  // 2ms per phase, 2 phases
  TitanLikeDb db(o);
  db.LoadNode(1);
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t degree;
  ASSERT_TRUE(db.GetNode(1, &degree).ok());
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 4000);
}

GraphLabLikeEngine::Options FastEngineOptions() {
  GraphLabLikeEngine::Options o;
  o.engine_start_micros = 0;
  o.barrier_micros = 0;
  o.remote_edge_micros = 0;
  return o;
}

TEST(GraphLabLikeTest, SyncAndAsyncAgreeWithGroundTruth) {
  // Known graph: 1 -> 2 -> 3, 4 isolated.
  std::vector<std::pair<NodeId, NodeId>> edges = {{1, 2}, {2, 3}};
  GraphLabLikeEngine engine(4, edges, FastEngineOptions());
  EXPECT_TRUE(engine.ReachableSync(1, 3));
  EXPECT_TRUE(engine.ReachableAsync(1, 3));
  EXPECT_FALSE(engine.ReachableSync(3, 1));   // directed
  EXPECT_FALSE(engine.ReachableAsync(3, 1));
  EXPECT_FALSE(engine.ReachableSync(1, 4));
  EXPECT_FALSE(engine.ReachableAsync(1, 4));
  EXPECT_TRUE(engine.ReachableSync(2, 2));    // self
  EXPECT_TRUE(engine.ReachableAsync(2, 2));
}

TEST(GraphLabLikeTest, EnginesAgreeOnRandomGraphs) {
  const auto g = workload::MakeUniformGraph(200, 600, 11);
  GraphLabLikeEngine engine(g.num_nodes, g.edges, FastEngineOptions());
  Rng rng(13);
  for (int i = 0; i < 30; ++i) {
    const NodeId s = 1 + rng.Uniform(g.num_nodes);
    const NodeId t = 1 + rng.Uniform(g.num_nodes);
    EXPECT_EQ(engine.ReachableSync(s, t), engine.ReachableAsync(s, t))
        << "engines disagree on " << s << " -> " << t;
  }
}

TEST(GraphLabLikeTest, CsrConstruction) {
  std::vector<std::pair<NodeId, NodeId>> edges = {{1, 2}, {1, 3}, {2, 3}};
  GraphLabLikeEngine engine(3, edges, FastEngineOptions());
  EXPECT_EQ(engine.num_nodes(), 3u);
  EXPECT_EQ(engine.num_edges(), 3u);
}

TEST(BlockchainInfoLikeTest, RendersAllTransactions) {
  workload::BlockchainOptions opts;
  opts.num_blocks = 20;
  opts.min_txs = 2;
  opts.max_txs = 10;
  const auto chain = workload::MakeBlockchain(opts);
  BlockchainInfoLikeDb::Options db_opts;
  db_opts.disk_seek_micros = 0;
  BlockchainInfoLikeDb db(chain, db_opts);
  EXPECT_EQ(db.TxRows(), chain.total_txs);
  for (std::uint32_t h : {0u, 10u, 19u}) {
    const std::string json = db.QueryBlockJson(h);
    // Every transaction id of the block appears in the render.
    for (const auto& tx : chain.blocks[h].txs) {
      EXPECT_NE(json.find("\"tx\":" + std::to_string(tx.id)),
                std::string::npos);
    }
  }
}

TEST(BlockchainInfoLikeTest, MissingBlockRendersEmpty) {
  workload::BlockchainOptions opts;
  opts.num_blocks = 3;
  const auto chain = workload::MakeBlockchain(opts);
  BlockchainInfoLikeDb::Options db_opts;
  db_opts.disk_seek_micros = 0;
  BlockchainInfoLikeDb db(chain, db_opts);
  EXPECT_EQ(db.QueryBlockJson(999), "{}");
}

TEST(BlockchainInfoLikeTest, OutputsJoined) {
  workload::BlockchainOptions opts;
  opts.num_blocks = 10;
  opts.min_txs = 3;
  opts.max_txs = 8;
  const auto chain = workload::MakeBlockchain(opts);
  BlockchainInfoLikeDb::Options db_opts;
  db_opts.disk_seek_micros = 0;
  BlockchainInfoLikeDb db(chain, db_opts);
  // A later block's render includes output values (spend joins ran).
  const std::string json = db.QueryBlockJson(9);
  EXPECT_NE(json.find("\"value\":"), std::string::npos);
  EXPECT_NE(json.find("\"addr\":"), std::string::npos);
}

}  // namespace
}  // namespace baselines
}  // namespace weaver
