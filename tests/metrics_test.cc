// Observability subsystem tests (docs/observability.md): concurrent
// counter/histogram updates (TSan-covered), snapshot-merge associativity,
// byte-identical MetricsReport codec re-encode, trace sampling bounds,
// DropPrefix lifecycle, and the remote-inbox-depth staleness plumbing.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/message_codec.h"
#include "core/messages.h"
#include "net/bus.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/trace.h"

namespace weaver {
namespace {

void ExpectSnapshotEq(const obs::MetricsSnapshot& a,
                      const obs::MetricsSnapshot& b) {
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (std::size_t i = 0; i < a.histograms.size(); ++i) {
    EXPECT_EQ(a.histograms[i].first, b.histograms[i].first);
    const obs::HistogramSnapshot& ha = a.histograms[i].second;
    const obs::HistogramSnapshot& hb = b.histograms[i].second;
    EXPECT_EQ(ha.buckets, hb.buckets);
    EXPECT_EQ(ha.count, hb.count);
    EXPECT_EQ(ha.sum, hb.sum);
    EXPECT_EQ(ha.min, hb.min);
    EXPECT_EQ(ha.max, hb.max);
  }
}

TEST(Metrics, CounterConcurrentAdds) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.counter("t.adds");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c->Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), kThreads * kPerThread);
  EXPECT_EQ(reg.Snapshot().CounterValue("t.adds"), kThreads * kPerThread);
}

TEST(Metrics, HistogramConcurrentRecords) {
  obs::MetricsRegistry reg;
  obs::LatencyHistogram* h = reg.histogram("t.lat");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h->Record(1000 * (t + 1) + i % 100);
      }
    });
  }
  for (auto& t : threads) t.join();
  const obs::HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.min, 1000u);
  EXPECT_GE(snap.max, 8000u);
  EXPECT_GT(snap.Percentile(50), 0u);
  EXPECT_GE(snap.Percentile(99), snap.Percentile(50));
}

TEST(Metrics, SnapshotMergeIsAssociativeAndCommutative) {
  // Three snapshots with overlapping and disjoint names, built through
  // real registries so the sorted-name invariant holds.
  obs::MetricsRegistry ra, rb, rc;
  ra.counter("c.shared")->Add(1);
  ra.counter("c.a_only")->Add(10);
  ra.gauge("g.shared")->Set(5);
  ra.histogram("h.shared")->Record(1000);
  ra.histogram("h.shared")->Record(2000);

  rb.counter("c.shared")->Add(2);
  rb.counter("c.b_only")->Add(20);
  rb.gauge("g.shared")->Set(-3);
  rb.gauge("g.b_only")->Set(7);
  rb.histogram("h.shared")->Record(1000000);
  rb.histogram("h.b_only")->Record(5);

  rc.counter("c.shared")->Add(3);
  rc.histogram("h.shared")->Record(1000000000);

  const obs::MetricsSnapshot a = ra.Snapshot();
  const obs::MetricsSnapshot b = rb.Snapshot();
  const obs::MetricsSnapshot c = rc.Snapshot();

  obs::MetricsSnapshot left = a;  // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  obs::MetricsSnapshot bc = b;  // a + (b + c)
  bc.Merge(c);
  obs::MetricsSnapshot right = a;
  right.Merge(bc);
  ExpectSnapshotEq(left, right);

  obs::MetricsSnapshot ab = a;  // commutative too
  ab.Merge(b);
  obs::MetricsSnapshot ba = b;
  ba.Merge(a);
  ExpectSnapshotEq(ab, ba);

  EXPECT_EQ(left.CounterValue("c.shared"), 6u);
  EXPECT_EQ(left.CounterValue("c.a_only"), 10u);
  EXPECT_EQ(left.CounterValue("c.b_only"), 20u);
  EXPECT_EQ(left.GaugeValue("g.shared"), 2);  // cluster depth = sum
  const obs::HistogramSnapshot* h = left.FindHistogram("h.shared");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4u);  // 2 from a, 1 from b, 1 from c
  EXPECT_EQ(h->min, 1000u);
  EXPECT_EQ(h->max, 1000000000u);
}

TEST(Metrics, MetricsReportCodecReencodesByteIdentical) {
  obs::MetricsRegistry reg;
  reg.counter("shard1.txs_applied")->Add(17);
  reg.counter("bus.messages_sent")->Add(12345678);
  reg.gauge("shard1.queued_txs")->Set(-4);
  reg.histogram("storage.fsync_latency")->Record(250000);
  reg.histogram("storage.fsync_latency")->Record(1750000);

  MetricsReportMessage m;
  m.request_id = 77;
  m.shard = 1;
  m.inbox_depth = 42;
  m.snapshot = reg.Snapshot();

  wire::Writer w1;
  Encode(m, &w1);
  const std::string bytes = w1.Take();

  MetricsReportMessage decoded;
  wire::Reader r(bytes);
  ASSERT_TRUE(Decode(&r, &decoded).ok());
  EXPECT_TRUE(r.AtEnd()) << "decoder left trailing bytes";
  EXPECT_EQ(decoded.request_id, 77u);
  EXPECT_EQ(decoded.shard, 1u);
  EXPECT_EQ(decoded.inbox_depth, 42u);
  ExpectSnapshotEq(decoded.snapshot, m.snapshot);

  wire::Writer w2;
  Encode(decoded, &w2);
  EXPECT_EQ(bytes, w2.str()) << "re-encode is not byte-identical";

  // Truncation safety: every strict prefix decodes without crashing.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    MetricsReportMessage victim;
    wire::Reader rr(std::string_view(bytes.data(), cut));
    (void)Decode(&rr, &victim);
  }

  // The type-erased payload layer covers both metrics tags.
  auto enc = EncodePayload(kMsgMetricsReport,
                           std::make_shared<MetricsReportMessage>(m));
  ASSERT_TRUE(enc.ok());
  EXPECT_TRUE(DecodePayload(kMsgMetricsReport, *enc).ok());

  MetricsRequestMessage req;
  req.request_id = 9;
  req.reply_to = 13;
  wire::Writer wr;
  Encode(req, &wr);
  MetricsRequestMessage req2;
  wire::Reader rr(wr.str());
  ASSERT_TRUE(Decode(&rr, &req2).ok());
  EXPECT_EQ(req2.request_id, 9u);
  EXPECT_EQ(req2.reply_to, 13u);
  auto enc_req = EncodePayload(kMsgMetricsRequest,
                               std::make_shared<MetricsRequestMessage>(req));
  ASSERT_TRUE(enc_req.ok());
  EXPECT_TRUE(DecodePayload(kMsgMetricsRequest, *enc_req).ok());
}

TEST(Metrics, TraceSamplingBounds) {
  obs::TraceLog log;
  // Off by default: no hot-path sampling.
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(log.ShouldSample());

  log.SetSampleEvery(4);
  int sampled = 0;
  for (int i = 0; i < 100; ++i) sampled += log.ShouldSample() ? 1 : 0;
  EXPECT_EQ(sampled, 25);  // exact stride, not probabilistic

  log.SetSampleEvery(1);
  sampled = 0;
  for (int i = 0; i < 100; ++i) sampled += log.ShouldSample() ? 1 : 0;
  EXPECT_EQ(sampled, 100);

  log.SetSampleEvery(0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(log.ShouldSample());
}

TEST(Metrics, TraceRingEvictsOldest) {
  obs::TraceLog log(/*capacity=*/4);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    obs::TraceSpan span;
    span.kind = obs::TraceSpan::Kind::kProgram;
    span.id = i;
    span.begin_ns = i * 10;
    log.Append(span);
  }
  const std::vector<obs::TraceSpan> spans = log.Dump();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().id, 3u);  // 1 and 2 were evicted
  EXPECT_EQ(spans.back().id, 6u);
  EXPECT_EQ(log.sampled(), 6u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_FALSE(log.DumpText().empty());
}

TEST(Metrics, DropPrefixRemovesOnlyThatInstance) {
  obs::MetricsRegistry reg;
  reg.counter("gk0.txs_committed")->Add(3);
  reg.histogram("gk0.commit_latency")->Record(500);
  reg.AddCounterFn("gk0.nops_sent", [] { return 11u; });
  reg.AddGaugeFn("gk0.nop_backoff", [] { return 2; });
  reg.counter("gk1.txs_committed")->Add(9);

  reg.DropPrefix("gk0.");
  const obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("gk0.txs_committed"), 0u);
  EXPECT_EQ(snap.CounterValue("gk0.nops_sent"), 0u);
  EXPECT_EQ(snap.GaugeValue("gk0.nop_backoff"), 0);
  EXPECT_EQ(snap.FindHistogram("gk0.commit_latency"), nullptr);
  EXPECT_EQ(snap.CounterValue("gk1.txs_committed"), 9u);

  // Recovery re-registers the same names from scratch (KillShard /
  // RecoverShard does exactly this).
  reg.counter("gk0.txs_committed")->Add(1);
  EXPECT_EQ(reg.Snapshot().CounterValue("gk0.txs_committed"), 1u);
}

TEST(Metrics, RemoteEndpointDepthComesFromReports) {
  auto pair = SocketTransport::CreatePair();
  ASSERT_TRUE(pair.ok());
  std::shared_ptr<Transport> side = std::move(pair->first);

  obs::MetricsRegistry reg;
  MessageBus bus;
  bus.SetMetrics(&reg);
  bus.SetWireEncoder(EncodePayload);
  const EndpointId remote = bus.RegisterRemote("peer0", side);
  const EndpointId handler =
      bus.RegisterHandler("local", [](const BusMessage&) {});

  // Before any MetricsReport arrives the remote depth reads 0 (the
  // documented cold-start of the staleness contract).
  EXPECT_EQ(bus.QueueDepth(remote), 0u);
  bus.NoteRemoteDepth(remote, 7);
  EXPECT_EQ(bus.QueueDepth(remote), 7u);
  bus.NoteRemoteDepth(remote, 3);  // freshest report wins
  EXPECT_EQ(bus.QueueDepth(remote), 3u);
  // No-op for non-remote endpoints.
  bus.NoteRemoteDepth(handler, 99);
  EXPECT_EQ(bus.QueueDepth(handler), 0u);

  // The per-endpoint depth gauge reads through the same path.
  EXPECT_EQ(reg.Snapshot().GaugeValue("bus.peer0.depth"), 3);
}

TEST(Metrics, SnapshotJsonCarriesPercentiles) {
  obs::MetricsRegistry reg;
  obs::LatencyHistogram* h = reg.histogram("client.commit_latency");
  for (int i = 1; i <= 100; ++i) h->Record(i * 10000);
  const std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"client.commit_latency\""), std::string::npos);
  EXPECT_NE(json.find("p99_ms"), std::string::npos);
  EXPECT_NE(json.find("p50_ms"), std::string::npos);
}

}  // namespace
}  // namespace weaver
