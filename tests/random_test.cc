// Tests for the deterministic RNG, Zipf sampler, and discrete sampler.
#include "common/random.h"

#include "common/ids.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace weaver {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformBoundOneIsZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.Uniform(10)]++;
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - n / 50);
    EXPECT_LT(c, n / 10 + n / 50);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(ZipfTest, InRange) {
  Rng rng(3);
  ZipfSampler zipf(1000, 0.99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 1000u);
  }
}

TEST(ZipfTest, SkewsTowardSmallRanks) {
  Rng rng(4);
  ZipfSampler zipf(10000, 0.99);
  std::uint64_t in_top_100 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) < 100) ++in_top_100;
  }
  // Top 1% of keys should get far more than 1% of picks.
  EXPECT_GT(in_top_100, static_cast<std::uint64_t>(n) / 10);
}

TEST(ZipfTest, ThetaOneIsSupported) {
  Rng rng(5);
  ZipfSampler zipf(100, 1.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 100u);
  }
}

TEST(ZipfTest, SingleElementAlwaysZero) {
  Rng rng(6);
  ZipfSampler zipf(1, 0.9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(DiscreteSamplerTest, MatchesWeights) {
  // Table 1 read mix.
  Rng rng(7);
  DiscreteSampler mix({59.4, 11.7, 28.9});
  std::vector<int> counts(3, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[mix.Sample(rng)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.594, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.117, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.289, 0.01);
}

TEST(DiscreteSamplerTest, ZeroWeightNeverPicked) {
  Rng rng(8);
  DiscreteSampler mix({1.0, 0.0, 1.0});
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(mix.Sample(rng), 1u);
  }
}

TEST(MixHashTest, DistinctInputsDistinctOutputs) {
  std::map<std::uint64_t, std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const auto h = MixHash64(i);
    EXPECT_EQ(seen.count(h), 0u);
    seen[h] = i;
  }
}

}  // namespace
}  // namespace weaver
