// NEGATIVE case: must NOT compile under Clang -Werror=thread-safety.
// Releases a capability that is not held (double unlock) -- the
// lock-discipline misuse class, caught by the ACQUIRE/RELEASE
// annotations on weaver::Mutex.
#include "common/sync.h"

namespace {

void DoubleUnlock(weaver::Mutex& mu) {
  mu.lock();
  mu.unlock();
  mu.unlock();  // not held any more: error expected here
}

}  // namespace

void Use(weaver::Mutex& mu) { DoubleUnlock(mu); }
