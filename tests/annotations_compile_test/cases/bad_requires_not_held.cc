// NEGATIVE case: must NOT compile under Clang -Werror=thread-safety.
// Calls a REQUIRES(mu) helper without holding mu -- the locked-caller
// contract every *Locked() helper in src/ relies on.
#include "common/sync.h"

namespace {

struct Table {
  weaver::Mutex mu;
  int size GUARDED_BY(mu) = 0;

  int SizeLocked() const REQUIRES(mu) { return size; }
};

int CallWithoutLock(const Table& t) {
  return t.SizeLocked();  // caller does not hold mu: error expected here
}

}  // namespace

int Use() {
  Table t;
  return CallWithoutLock(t);
}
