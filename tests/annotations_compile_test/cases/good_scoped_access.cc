// POSITIVE control: must compile warning-clean under Clang
// -Werror=thread-safety. Exercises the full annotated vocabulary the
// codebase uses -- MutexLock over a GUARDED_BY field, a REQUIRES helper
// called under the lock, hand-over-hand Unlock/Lock, and reader/writer
// scopes -- proving the negative cases above fail because of the
// violations they contain, not because the harness is broken.
#include "common/sync.h"

namespace {

struct Counter {
  weaver::Mutex mu;
  int value GUARDED_BY(mu) = 0;

  int Bump() REQUIRES(mu) { return ++value; }
};

int UseExclusive(Counter& c) {
  weaver::MutexLock lk(c.mu);
  int v = c.Bump();
  lk.Unlock();  // hand-over-hand: drop, do unguarded work, retake
  v *= 2;
  lk.Lock();
  return v + c.value;
}

struct Snapshot {
  weaver::SharedMutex mu;
  int epoch GUARDED_BY(mu) = 0;
};

int UseShared(Snapshot& s) {
  {
    weaver::WriterLock wl(s.mu);
    ++s.epoch;
  }
  weaver::ReaderLock rl(s.mu);
  return s.epoch;
}

}  // namespace

int Use() {
  Counter c;
  Snapshot s;
  return UseExclusive(c) + UseShared(s);
}
