// NEGATIVE case: must NOT compile under Clang -Werror=thread-safety.
// Reads a GUARDED_BY field without holding its mutex -- the canonical
// violation the annotation vocabulary exists to reject. If this file
// ever compiles with the analysis on, the macros in
// common/annotations.h have silently become no-ops.
#include "common/sync.h"

namespace {

struct Counter {
  weaver::Mutex mu;
  int value GUARDED_BY(mu) = 0;
};

int ReadUnlocked(Counter& c) {
  return c.value;  // no lock held: thread-safety error expected here
}

}  // namespace

int Use() {
  Counter c;
  return ReadUnlocked(c);
}
