# Negative-compilation harness for the thread-safety annotations
# (docs/static_analysis.md#negative-compilation-test).
#
# Invoked by ctest (registered from the top-level CMakeLists.txt when a
# Clang compiler is available) as:
#
#   cmake -DCLANGXX=<clang++> -DREPO_SRC=<repo>/src \
#         -DCASES=<this dir>/cases -P run_cases.cmake
#
# Contract:
#   * good_*.cc must compile CLEAN with -Werror=thread-safety (positive
#     control: the harness and the annotated vocabulary work);
#   * bad_*.cc must compile WITHOUT the analysis (they are valid C++)
#     and must FAIL with -Werror=thread-safety (the annotations really
#     reject unlocked access / lock misuse -- they have not silently
#     become no-ops).
#
# Any deviation is a FATAL_ERROR, which ctest reports as a failure.

foreach(var CLANGXX REPO_SRC CASES)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_cases.cmake: -D${var}=... is required")
  endif()
endforeach()

set(BASE_FLAGS -std=c++20 -fsyntax-only "-I${REPO_SRC}")
set(TSA_FLAGS -Wthread-safety -Werror=thread-safety)

function(compile_case src with_tsa out_ok out_log)
  set(flags ${BASE_FLAGS})
  if(with_tsa)
    list(APPEND flags ${TSA_FLAGS})
  endif()
  execute_process(
    COMMAND "${CLANGXX}" ${flags} "${src}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rc EQUAL 0)
    set(${out_ok} TRUE PARENT_SCOPE)
  else()
    set(${out_ok} FALSE PARENT_SCOPE)
  endif()
  set(${out_log} "${out}${err}" PARENT_SCOPE)
endfunction()

file(GLOB good_cases "${CASES}/good_*.cc")
file(GLOB bad_cases "${CASES}/bad_*.cc")
if(NOT good_cases OR NOT bad_cases)
  message(FATAL_ERROR "run_cases.cmake: no cases found under ${CASES}")
endif()

foreach(src ${good_cases})
  get_filename_component(name "${src}" NAME)
  compile_case("${src}" TRUE ok log)
  if(NOT ok)
    message(FATAL_ERROR
      "${name}: positive control FAILED under -Werror=thread-safety "
      "(valid annotated code rejected):\n${log}")
  endif()
  message(STATUS "${name}: compiles clean with the analysis on (ok)")
endforeach()

foreach(src ${bad_cases})
  get_filename_component(name "${src}" NAME)
  compile_case("${src}" FALSE ok log)
  if(NOT ok)
    message(FATAL_ERROR
      "${name}: does not compile even WITHOUT the analysis -- the case "
      "is broken C++, not a thread-safety violation:\n${log}")
  endif()
  compile_case("${src}" TRUE ok log)
  if(ok)
    message(FATAL_ERROR
      "${name}: compiled despite its thread-safety violation -- the "
      "annotations have become no-ops under Clang")
  endif()
  if(NOT log MATCHES "thread-safety")
    message(FATAL_ERROR
      "${name}: failed for a reason other than thread-safety:\n${log}")
  endif()
  message(STATUS "${name}: rejected by -Werror=thread-safety (ok)")
endforeach()

message(STATUS "annotations_compile_test: all cases behaved as required")
