// Multi-process deployment smoke test (docs/transport.md): shard servers
// run in forked CHILD PROCESSES connected over SocketTransport, the
// parent runs gatekeepers + clients, and the whole fig11-style
// reachability workload (transactional graph build + BFS traversals +
// point lookups) must produce results identical to the in-process bus.
//
// Lives in its own test binary: the children are forked BEFORE the
// parent deployment creates any threads (threads do not survive fork),
// so the remote run goes first and nothing else may precede it.
//
// Skipped under ThreadSanitizer: TSan and fork are a known-bad pairing.
// The transport locking is TSan-covered by transport_test's socketpair
// stress, which exercises the same code without fork.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "client/weaver_client.h"
#include "cluster/bootstrap.h"
#include "coord/serverd.h"
#include "core/weaver.h"
#include "programs/standard_programs.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define WEAVER_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define WEAVER_TSAN 1
#endif

namespace weaver {
namespace {

constexpr std::size_t kShards = 2;
constexpr std::size_t kGatekeepers = 2;
constexpr int kVertices = 120;
constexpr int kExtraEdges = 200;

WeaverOptions DeploymentOptions() {
  WeaverOptions o;
  o.num_shards = kShards;
  o.num_gatekeepers = kGatekeepers;
  o.tau_micros = 300;
  o.nop_period_micros = 300;
  return o;
}

/// Builds the deterministic reachability graph through the transactional
/// client API (identical in both deployments: fresh deployments allocate
/// the same vertex ids, and the edge set comes from a fixed seed).
std::vector<NodeId> BuildGraph(Weaver* db) {
  WeaverClient client(db);
  auto session = client.OpenSession();

  std::vector<NodeId> nodes;
  {
    Transaction tx = session->BeginTx();
    for (int i = 0; i < kVertices; ++i) {
      const NodeId n = tx.CreateNode();
      EXPECT_NE(n, kInvalidNodeId);
      EXPECT_TRUE(
          tx.AssignNodeProperty(n, "idx", std::to_string(i)).ok());
      nodes.push_back(n);
    }
    EXPECT_TRUE(session->Commit(&tx).ok());
  }
  // Ring (guarantees one reachable component) + seeded random chords.
  std::mt19937 rng(4242);
  std::uniform_int_distribution<int> pick(0, kVertices - 1);
  for (int base = 0; base < kVertices; base += 40) {
    Transaction tx = session->BeginTx();
    for (int i = base; i < std::min(base + 40, kVertices); ++i) {
      tx.CreateEdge(nodes[i], nodes[(i + 1) % kVertices]);
    }
    EXPECT_TRUE(session->Commit(&tx).ok());
  }
  for (int chunk = 0; chunk < kExtraEdges; chunk += 50) {
    Transaction tx = session->BeginTx();
    for (int i = chunk; i < std::min(chunk + 50, kExtraEdges); ++i) {
      tx.CreateEdge(nodes[pick(rng)], nodes[pick(rng)]);
    }
    EXPECT_TRUE(session->Commit(&tx).ok());
  }
  return nodes;
}

struct WorkloadResults {
  /// Sorted (vertex, return blob) list per query.
  std::vector<std::vector<std::pair<NodeId, std::string>>> queries;
};

/// The fig11-style traversal workload: full-graph BFS reachability from
/// several sources, targeted BFS, and point lookups -- all on the
/// settled graph, so the results are a pure function of it.
WorkloadResults RunWorkload(Weaver* db, const std::vector<NodeId>& nodes) {
  WeaverClient client(db);
  auto session = client.OpenSession();
  WorkloadResults results;

  auto record = [&](Result<ProgramResult> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto returns = r->returns;
    std::sort(returns.begin(), returns.end());
    results.queries.push_back(std::move(returns));
  };

  for (const int src : {0, 17, 63, 101}) {
    programs::BfsParams params;  // unbounded exploration: returns every
                                 // reachable vertex id
    record(session->RunProgram(programs::kBfs, nodes[src], params.Encode()));
  }
  {
    programs::BfsParams params;
    params.target = nodes[77];
    record(session->RunProgram(programs::kBfs, nodes[3], params.Encode()));
  }
  for (const int src : {5, 40, 119}) {
    record(session->RunProgram(programs::kCountEdges, nodes[src]));
    record(session->RunProgram(programs::kGetNode, nodes[src]));
  }
  return results;
}

#if !defined(WEAVER_TSAN)
TEST(MultiProcessSmoke, RemoteShardsMatchInProcessBus) {
  // 1. Fork the shard-server children FIRST (no threads exist yet).
  serverd::ShardServerOptions so;
  so.num_shards = kShards;
  so.num_gatekeepers = kGatekeepers;
  auto children = serverd::SpawnShardServers(so);
  ASSERT_TRUE(children.ok()) << children.status().ToString();

  // 2. Parent deployment over the sockets.
  WorkloadResults remote_results;
  std::vector<NodeId> remote_nodes;
  {
    WeaverOptions o = DeploymentOptions();
    // No background metrics poll: the only MetricsReports in this test
    // are the ones CollectMetrics solicits, so the depth assertions
    // below are deterministic.
    o.metrics_poll_period_micros = 0;
    for (const auto& child : *children) {
      o.remote_shard_fds.push_back(child.parent_fd);
    }
    auto db = Weaver::Open(o);
    ASSERT_NE(db, nullptr);
    remote_nodes = BuildGraph(db.get());
    remote_results = RunWorkload(db.get(), remote_nodes);
    EXPECT_EQ(db->bus().stats().wire_seq_violations.load(), 0u)
        << "wire FIFO contract violated";
    EXPECT_GT(db->bus().stats().wire_frames_sent.load(), 0u)
        << "no traffic actually crossed the transport";

    // Cluster-wide metrics: every remote shard PROCESS ships a registry
    // snapshot plus its live inbox depth over the wire codec.
    auto cluster = db->CollectMetrics();
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    ASSERT_EQ(cluster->remote.size(), kShards);
    const serverd::EndpointLayout layout =
        serverd::EndpointLayout::Compute(kShards, kGatekeepers);
    for (std::size_t s = 0; s < kShards; ++s) {
      const MetricsReportMessage& report = cluster->remote[s];
      EXPECT_EQ(static_cast<std::size_t>(report.shard), s);
      EXPECT_GT(report.snapshot.CounterValue(
                    "shard" + std::to_string(s) + ".txs_applied"),
                0u)
          << "shard " << s << " reported no applied transactions";
      // The same report feeds MessageBus::QueueDepth for the remote
      // endpoint (with the poll disabled, no newer report can race in
      // between the collection and this read).
      EXPECT_EQ(db->bus().QueueDepth(layout.shards[s]), report.inbox_depth);
    }
    const obs::MetricsSnapshot merged = cluster->Merged();
    EXPECT_GT(merged.CounterValue("coord.programs_completed"), 0u);
    EXPECT_GT(merged.CounterValue("shard0.txs_applied") +
                  merged.CounterValue("shard1.txs_applied"),
              0u)
        << "merged cluster view lost the remote shard counters";
    db->Shutdown();
  }
  // 3. Children exit cleanly once the parent tears the links down.
  EXPECT_TRUE(serverd::WaitShardServers(*children).ok());

  // 4. The identical workload on an in-process deployment.
  auto db = Weaver::Open(DeploymentOptions());
  ASSERT_NE(db, nullptr);
  const std::vector<NodeId> nodes = BuildGraph(db.get());
  ASSERT_EQ(nodes, remote_nodes);  // same ids: the workloads are aligned
  const WorkloadResults local_results = RunWorkload(db.get(), nodes);

  // 5. Same results, query by query.
  ASSERT_EQ(remote_results.queries.size(), local_results.queries.size());
  for (std::size_t q = 0; q < local_results.queries.size(); ++q) {
    EXPECT_EQ(remote_results.queries[q], local_results.queries[q])
        << "query " << q << " diverged between remote and in-process";
  }
  // The reachability queries really traversed the graph (every ring
  // vertex is reachable from every source).
  ASSERT_FALSE(local_results.queries.empty());
  EXPECT_EQ(local_results.queries[0].size(),
            static_cast<std::size_t>(kVertices));
}

// A second, smaller fork exercise: commits spanning both shard processes
// are visible to subsequent transactional reads through the parent's
// backing store, and a remote deployment refuses bulk load.
TEST(MultiProcessSmoke, RemoteDeploymentGuards) {
  serverd::ShardServerOptions so;
  so.num_shards = kShards;
  so.num_gatekeepers = 1;
  auto children = serverd::SpawnShardServers(so);
  ASSERT_TRUE(children.ok());
  {
    WeaverOptions o = DeploymentOptions();
    o.num_gatekeepers = 1;
    o.start = false;  // bulk-load guard fires before Start
    for (const auto& child : *children) {
      o.remote_shard_fds.push_back(child.parent_fd);
    }
    auto db = Weaver::Open(o);
    ASSERT_NE(db, nullptr);
    EXPECT_TRUE(db->BulkCreateNode(1).IsFailedPrecondition());
    EXPECT_TRUE(db->KillShard(0).IsFailedPrecondition());
    db->Start();
    WeaverClient client(db.get());
    auto session = client.OpenSession();
    Transaction tx = session->BeginTx();
    const NodeId a = tx.CreateNode();
    const NodeId b = tx.CreateNode();
    tx.CreateEdge(a, b);
    ASSERT_TRUE(session->Commit(&tx).ok());
    Transaction check = session->BeginTx();
    auto exists = check.NodeExists(b);
    ASSERT_TRUE(exists.ok());
    EXPECT_TRUE(*exists);
    db->Shutdown();
  }
  EXPECT_TRUE(serverd::WaitShardServers(*children).ok());
}
// TCP-bootstrap mode (docs/transport.md#cluster-bootstrap): every server
// process is a real exec'd weaver-serverd binary that joined through the
// cluster listener's versioned handshake -- including the gatekeepers,
// which run OUT-OF-PARENT (the clock, sequencer, and client ingress live
// in the children; the parent keeps only the backing store and the
// per-gatekeeper agent endpoints). The workload must produce results
// identical to the in-process bus.
//
// Exec'ing after threads exist is safe (unlike the fork-protocol tests
// above): only async-signal-safe calls run between fork and exec.
TEST(MultiProcessSmoke, TcpBootstrapExecMatchesInProcessBus) {
  // 1. Listener with one slot per wanted process.
  cluster::ClusterListener::Options lo;
  lo.token = "smoke-secret";
  auto listener = cluster::ClusterListener::Open(lo);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  cluster::ClusterListener& l = **listener;

  serverd::ShardServerOptions so;
  so.num_shards = kShards;
  so.num_gatekeepers = kGatekeepers;
  so.remote_gatekeepers = true;
  so.tau_micros = 300;        // must mirror DeploymentOptions: the
  so.nop_period_micros = 300;  // assignment is the children's only config
  const RoleAssignMessage assign = serverd::AssignmentFromOptions(so);
  for (std::size_t s = 0; s < kShards; ++s) {
    ASSERT_TRUE(l.OpenSlot(NodeRole::kShard, s, assign).ok());
  }
  for (std::size_t g = 0; g < kGatekeepers; ++g) {
    ASSERT_TRUE(l.OpenSlot(NodeRole::kGatekeeper, g, assign).ok());
  }

  // 2. Exec the serverds; each connects its own socket and handshakes.
  std::vector<pid_t> pids;
  for (std::size_t s = 0; s < kShards; ++s) {
    auto pid = cluster::SpawnServerd(WEAVER_SERVERD_BIN, l.port(),
                                     lo.token, NodeRole::kShard, s);
    ASSERT_TRUE(pid.ok()) << pid.status().ToString();
    pids.push_back(*pid);
  }
  for (std::size_t g = 0; g < kGatekeepers; ++g) {
    auto pid = cluster::SpawnServerd(WEAVER_SERVERD_BIN, l.port(),
                                     lo.token, NodeRole::kGatekeeper, g);
    ASSERT_TRUE(pid.ok()) << pid.status().ToString();
    pids.push_back(*pid);
  }

  // 3. Admit them in whatever order they dial in.
  std::vector<int> shard_fds(kShards, -1);
  std::vector<int> gk_fds(kGatekeepers, -1);
  for (std::size_t i = 0; i < kShards + kGatekeepers; ++i) {
    auto joined = l.AcceptJoin();
    ASSERT_TRUE(joined.ok()) << joined.status().ToString();
    if (joined->role == NodeRole::kShard) {
      shard_fds[joined->shard_id] = joined->fd;
    } else {
      ASSERT_EQ(joined->role, NodeRole::kGatekeeper);
      gk_fds[joined->shard_id] = joined->fd;
    }
  }

  // 4. Parent deployment over the handshaken sockets.
  WorkloadResults remote_results;
  std::vector<NodeId> remote_nodes;
  {
    WeaverOptions o = DeploymentOptions();
    o.metrics_poll_period_micros = 0;
    o.remote_shard_fds = shard_fds;
    o.remote_gatekeeper_fds = gk_fds;
    auto db = Weaver::Open(o);
    ASSERT_NE(db, nullptr);
    remote_nodes = BuildGraph(db.get());
    remote_results = RunWorkload(db.get(), remote_nodes);
    EXPECT_EQ(db->bus().stats().wire_seq_violations.load(), 0u)
        << "wire FIFO contract violated";
    EXPECT_GT(db->bus().stats().wire_frames_sent.load(), 0u)
        << "no traffic actually crossed the transport";
    db->Shutdown();
  }

  // 5. The exec'd children exit 0 once the parent tears the links down.
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "serverd pid " << pid << " exited abnormally (status " << status
        << ")";
  }

  // 6. Identical workload in-process; identical results.
  auto db = Weaver::Open(DeploymentOptions());
  ASSERT_NE(db, nullptr);
  const std::vector<NodeId> nodes = BuildGraph(db.get());
  ASSERT_EQ(nodes, remote_nodes);
  const WorkloadResults local_results = RunWorkload(db.get(), nodes);
  ASSERT_EQ(remote_results.queries.size(), local_results.queries.size());
  for (std::size_t q = 0; q < local_results.queries.size(); ++q) {
    EXPECT_EQ(remote_results.queries[q], local_results.queries[q])
        << "query " << q << " diverged between TCP-bootstrap and in-process";
  }
  ASSERT_FALSE(local_results.queries.empty());
  EXPECT_EQ(local_results.queries[0].size(),
            static_cast<std::size_t>(kVertices));
}
#endif  // !WEAVER_TSAN

}  // namespace
}  // namespace weaver
