// Durable storage engine tests: WAL framing + group commit, torn-tail
// replay, checkpoint/manifest atomicity, checkpoint+replay equivalence,
// KvStore recovery, and full Weaver-deployment crash/reopen recovery
// (the persistence-backed counterpart of fault_tolerance_test.cc).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/weaver.h"
#include "kvstore/kvstore.h"
#include "programs/standard_programs.h"
#include "storage/checkpoint.h"
#include "storage/crc32.h"
#include "storage/storage_engine.h"
#include "storage/wal.h"

namespace weaver {
namespace {

namespace fs = std::filesystem;

/// Fresh empty directory under the test temp root, removed on teardown.
class TempDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::path(::testing::TempDir()) /
            (std::string("weaver_storage_") + info->test_suite_name() + "_" +
             info->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  StorageOptions Opts() const {
    StorageOptions o;
    o.data_dir = dir_;
    return o;
  }

  std::string dir_;
};

/// Newest WAL segment file in `dir` (by id), or empty string.
std::string NewestSegmentPath(const std::string& dir) {
  auto segments = storage::Wal::ListSegments(dir);
  if (segments.empty()) return "";
  return (fs::path(dir) / segments.back().second).string();
}

/// Newest segment that is non-empty (rotation leaves empty active files).
std::string NewestNonEmptySegmentPath(const std::string& dir) {
  auto segments = storage::Wal::ListSegments(dir);
  for (auto it = segments.rbegin(); it != segments.rend(); ++it) {
    const auto path = (fs::path(dir) / it->second).string();
    std::error_code ec;
    if (fs::file_size(path, ec) > 0 && !ec) return path;
  }
  return "";
}

void TruncateFileBy(const std::string& path, std::uint64_t bytes) {
  const auto size = fs::file_size(path);
  ASSERT_GT(size, bytes);
  fs::resize_file(path, size - bytes);
}

void FlipLastByte(const std::string& path) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(0, std::ios::end);
  const auto size = f.tellg();
  ASSERT_GT(size, 0);
  f.seekg(-1, std::ios::end);
  char c = 0;
  f.read(&c, 1);
  c ^= 0x5A;
  f.seekp(-1, std::ios::end);
  f.write(&c, 1);
}

// --- CRC32 -----------------------------------------------------------------

TEST(Crc32Test, KnownVectorsAndChunking) {
  // Standard IEEE CRC32 test vector.
  EXPECT_EQ(storage::Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(storage::Crc32(""), 0u);
  // Chunked checksum equals one-shot checksum.
  const std::uint32_t part = storage::Crc32("12345");
  EXPECT_EQ(storage::Crc32("6789", part), storage::Crc32("123456789"));
  EXPECT_NE(storage::Crc32("123456789"), storage::Crc32("123456780"));
}

// --- WAL -------------------------------------------------------------------

TEST_F(TempDirTest, WalAppendReplayRoundTrip) {
  {
    auto wal = storage::Wal::Open(dir_, Opts());
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*wal)->Append("record-" + std::to_string(i)).ok());
    }
  }
  std::vector<std::string> seen;
  auto replay =
      storage::Wal::Replay(dir_, 1, [&](std::string_view payload) {
        seen.emplace_back(payload);
        return Status::Ok();
      });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records, 100u);
  EXPECT_EQ(replay->torn_tails, 0u);
  ASSERT_EQ(seen.size(), 100u);
  EXPECT_EQ(seen[0], "record-0");
  EXPECT_EQ(seen[99], "record-99");
}

TEST_F(TempDirTest, WalRotatesSegmentsAndReplaysAcrossThem) {
  StorageOptions opts = Opts();
  opts.segment_size_bytes = 64;  // force frequent rotation
  {
    auto wal = storage::Wal::Open(dir_, opts);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*wal)->Append("padding-payload-" + std::to_string(i)).ok());
    }
    EXPECT_GT((*wal)->stats().rotations.load(), 5u);
  }
  EXPECT_GT(storage::Wal::ListSegments(dir_).size(), 5u);
  auto replay = storage::Wal::Replay(
      dir_, 1, [](std::string_view) { return Status::Ok(); });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records, 50u);
}

TEST_F(TempDirTest, WalTruncatedTailRecordIsTolerated) {
  {
    auto wal = storage::Wal::Open(dir_, Opts());
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*wal)->Append("record-" + std::to_string(i)).ok());
    }
  }
  // Tear the final record: chop 3 bytes off the newest segment.
  TruncateFileBy(NewestNonEmptySegmentPath(dir_), 3);
  std::vector<std::string> seen;
  auto replay =
      storage::Wal::Replay(dir_, 1, [&](std::string_view payload) {
        seen.emplace_back(payload);
        return Status::Ok();
      });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records, 9u);  // the torn record is dropped
  EXPECT_EQ(replay->torn_tails, 1u);
  EXPECT_EQ(seen.back(), "record-8");
}

TEST_F(TempDirTest, WalCorruptTailRecordIsTolerated) {
  {
    auto wal = storage::Wal::Open(dir_, Opts());
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*wal)->Append("record-" + std::to_string(i)).ok());
    }
  }
  FlipLastByte(NewestNonEmptySegmentPath(dir_));
  auto replay = storage::Wal::Replay(
      dir_, 1, [](std::string_view) { return Status::Ok(); });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records, 9u);  // CRC catches the flipped byte
  EXPECT_EQ(replay->torn_tails, 1u);
}

TEST_F(TempDirTest, WalTornSegmentDoesNotHideLaterRuns) {
  // Run 1 crashes with a torn tail; run 2 appends a fresh segment. Replay
  // must skip the tear and still deliver run 2's records.
  {
    auto wal = storage::Wal::Open(dir_, Opts());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("run1-a").ok());
    ASSERT_TRUE((*wal)->Append("run1-b").ok());
  }
  TruncateFileBy(NewestNonEmptySegmentPath(dir_), 2);
  {
    auto wal = storage::Wal::Open(dir_, Opts());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("run2-a").ok());
  }
  std::vector<std::string> seen;
  auto replay =
      storage::Wal::Replay(dir_, 1, [&](std::string_view payload) {
        seen.emplace_back(payload);
        return Status::Ok();
      });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->torn_tails, 1u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "run1-a");
  EXPECT_EQ(seen[1], "run2-a");
}

TEST_F(TempDirTest, WalGroupCommitFsyncSharesSyncs) {
  StorageOptions opts = Opts();
  opts.fsync = FsyncPolicy::kAlways;
  auto wal = storage::Wal::Open(dir_, opts);
  ASSERT_TRUE(wal.ok());
  constexpr int kThreads = 8;
  constexpr int kAppends = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAppends; ++i) {
        ASSERT_TRUE(
            (*wal)
                ->Append("t" + std::to_string(t) + "-" + std::to_string(i))
                .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ((*wal)->stats().appends.load(), kThreads * kAppends);
  // Every append was covered by some fdatasync, but concurrent appenders
  // share sync rounds, so there are at least as many appends as syncs.
  EXPECT_GE((*wal)->stats().syncs.load(), 1u);
  EXPECT_LE((*wal)->stats().syncs.load(), kThreads * kAppends);
  auto replay = storage::Wal::Replay(
      dir_, 1, [](std::string_view) { return Status::Ok(); });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records, kThreads * kAppends);
}

// --- Manifest / checkpoint files -------------------------------------------

TEST_F(TempDirTest, ManifestRoundTripAndCorruptionDetected) {
  EXPECT_TRUE(storage::ReadManifest(dir_).status().IsNotFound());
  storage::Manifest m;
  m.checkpoint_id = 7;
  m.wal_start = 42;
  m.epoch = 3;
  ASSERT_TRUE(storage::WriteManifest(dir_, m).ok());
  auto back = storage::ReadManifest(dir_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->checkpoint_id, 7u);
  EXPECT_EQ(back->wal_start, 42u);
  EXPECT_EQ(back->epoch, 3u);
  FlipLastByte(dir_ + "/MANIFEST");
  EXPECT_TRUE(storage::ReadManifest(dir_).status().IsInternal());
}

TEST_F(TempDirTest, CheckpointFileRoundTripSortedAndSealed) {
  std::vector<std::pair<std::string, std::string>> rows = {
      {"b", "2"}, {"a", "1"}, {"c", "3"}};
  ASSERT_TRUE(storage::WriteCheckpointFile(dir_, 1, &rows).ok());
  std::vector<std::pair<std::string, std::string>> back;
  ASSERT_TRUE(storage::ReadCheckpointFile(
                  dir_, 1,
                  [&](std::string&& k, std::string&& v) {
                    back.emplace_back(std::move(k), std::move(v));
                  })
                  .ok());
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].first, "a");  // sorted on disk
  EXPECT_EQ(back[2].second, "3");
  // A damaged checkpoint is an error, never silently partial.
  FlipLastByte(dir_ + "/" + storage::CheckpointFileName(1));
  EXPECT_FALSE(storage::ReadCheckpointFile(
                   dir_, 1, [](std::string&&, std::string&&) {})
                   .ok());
}

// --- KvStore recovery ------------------------------------------------------

TEST_F(TempDirTest, KvStoreRecoversPutsDeletesAndTransactions) {
  {
    auto kv = KvStore::Open(8, Opts());
    ASSERT_TRUE(kv.ok()) << kv.status().ToString();
    ASSERT_TRUE((*kv)->Put("a", "1").ok());
    ASSERT_TRUE((*kv)->Put("b", "2").ok());
    ASSERT_TRUE((*kv)->Delete("a").ok());
    auto tx = (*kv)->Begin();
    tx.Put("c", "3");
    tx.Put("d", "4");
    tx.Delete("b");
    ASSERT_TRUE(tx.Commit().ok());
  }
  auto kv = KvStore::Open(8, Opts());
  ASSERT_TRUE(kv.ok()) << kv.status().ToString();
  EXPECT_GT((*kv)->recovery_stats().wal_records, 0u);
  EXPECT_TRUE((*kv)->Get("a").status().IsNotFound());
  EXPECT_TRUE((*kv)->Get("b").status().IsNotFound());
  EXPECT_EQ(*(*kv)->Get("c"), "3");
  EXPECT_EQ(*(*kv)->Get("d"), "4");
}

TEST_F(TempDirTest, KvStoreTornTailLosesOnlyTheTornBatch) {
  {
    auto kv = KvStore::Open(8, Opts());
    ASSERT_TRUE(kv.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          (*kv)->Put("k" + std::to_string(i), std::to_string(i)).ok());
    }
  }
  // Simulate a crash mid-write of the final record.
  TruncateFileBy(NewestNonEmptySegmentPath(dir_), 4);
  auto kv = KvStore::Open(8, Opts());
  ASSERT_TRUE(kv.ok()) << kv.status().ToString();
  EXPECT_EQ((*kv)->recovery_stats().torn_tails, 1u);
  for (int i = 0; i < 19; ++i) {
    EXPECT_EQ(*(*kv)->Get("k" + std::to_string(i)), std::to_string(i));
  }
  EXPECT_TRUE((*kv)->Get("k19").status().IsNotFound());
}

TEST_F(TempDirTest, CheckpointPlusReplayEquivalentToPureReplay) {
  const std::string pure_dir = dir_ + "/pure";
  const std::string ckpt_dir = dir_ + "/ckpt";
  StorageOptions pure;
  pure.data_dir = pure_dir;
  pure.checkpoint_interval_bytes = 0;  // never checkpoint: pure WAL replay
  StorageOptions ckpt;
  ckpt.data_dir = ckpt_dir;
  ckpt.segment_size_bytes = 256;         // many tiny segments
  ckpt.checkpoint_interval_bytes = 512;  // checkpoint constantly

  auto run_workload = [](KvStore* kv) {
    for (int i = 0; i < 200; ++i) {
      const std::string key = "k" + std::to_string(i % 37);
      if (i % 11 == 3) {
        ASSERT_TRUE(kv->Delete(key).ok());
      } else {
        ASSERT_TRUE(kv->Put(key, "v" + std::to_string(i)).ok());
      }
      if (i % 5 == 0) {
        auto tx = kv->Begin();
        tx.Put("tx" + std::to_string(i % 17), std::to_string(i));
        ASSERT_TRUE(tx.Commit().ok());
      }
    }
  };
  {
    auto a = KvStore::Open(8, pure);
    auto b = KvStore::Open(8, ckpt);
    ASSERT_TRUE(a.ok() && b.ok());
    run_workload(a->get());
    run_workload(b->get());
    EXPECT_GT((*b)->storage_engine()->checkpoints_taken(), 0u);
  }
  auto a = KvStore::Open(8, pure);
  auto b = KvStore::Open(8, ckpt);
  ASSERT_TRUE(a.ok() && b.ok());
  // The checkpointing store recovered from snapshot + short WAL tail, the
  // other from the full log; the committed state must be identical.
  EXPECT_GT((*a)->recovery_stats().wal_records, 0u);
  EXPECT_GT((*b)->recovery_stats().checkpoint_rows, 0u);
  EXPECT_EQ((*a)->ScanPrefix(""), (*b)->ScanPrefix(""));
}

TEST_F(TempDirTest, CheckpointTruncatesObsoleteWalSegments) {
  StorageOptions opts = Opts();
  opts.segment_size_bytes = 128;
  opts.checkpoint_interval_bytes = 0;  // manual checkpoints only
  auto kv = KvStore::Open(8, opts);
  ASSERT_TRUE(kv.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*kv)->Put("k" + std::to_string(i), "v").ok());
  }
  const auto before = storage::Wal::ListSegments(dir_).size();
  ASSERT_GT(before, 3u);
  ASSERT_TRUE((*kv)->Checkpoint().ok());
  const auto after = storage::Wal::ListSegments(dir_).size();
  EXPECT_LT(after, before);
  // Post-checkpoint writes land in the fresh WAL tail and still recover.
  ASSERT_TRUE((*kv)->Put("post", "yes").ok());
  kv->reset();
  auto back = KvStore::Open(8, opts);
  ASSERT_TRUE(back.ok());
  EXPECT_GT((*back)->recovery_stats().checkpoint_rows, 0u);
  EXPECT_EQ(*(*back)->Get("k0"), "v");
  EXPECT_EQ(*(*back)->Get("post"), "yes");
}

TEST_F(TempDirTest, SecondConcurrentOpenOfDataDirRejected) {
  auto first = KvStore::Open(4, Opts());
  ASSERT_TRUE(first.ok());
  auto second = KvStore::Open(4, Opts());
  EXPECT_TRUE(second.status().IsFailedPrecondition())
      << second.status().ToString();
  first->reset();  // releasing the first engine frees the dir lock
  auto third = KvStore::Open(4, Opts());
  EXPECT_TRUE(third.ok()) << third.status().ToString();
}

TEST_F(TempDirTest, FsyncPolicyAlwaysSurvivesReopen) {
  StorageOptions opts = Opts();
  opts.fsync = FsyncPolicy::kAlways;
  {
    auto kv = KvStore::Open(4, opts);
    ASSERT_TRUE(kv.ok());
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 25; ++i) {
          auto tx = (*kv)->Begin();
          tx.Put("t" + std::to_string(t) + "-" + std::to_string(i), "x");
          ASSERT_TRUE(tx.Commit().ok());
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_GE((*kv)->storage_engine()->wal_stats().syncs.load(), 1u);
  }
  auto kv = KvStore::Open(4, opts);
  ASSERT_TRUE(kv.ok());
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 25; ++i) {
      EXPECT_TRUE((*kv)->Contains("t" + std::to_string(t) + "-" +
                                  std::to_string(i)));
    }
  }
}

// --- Weaver deployment recovery --------------------------------------------

WeaverOptions DurableOptions(const std::string& dir) {
  WeaverOptions o;
  o.num_gatekeepers = 2;
  o.num_shards = 2;
  o.tau_micros = 200;
  o.nop_period_micros = 100;
  o.storage.data_dir = dir;
  return o;
}

TEST_F(TempDirTest, WeaverReopenRecoversCommittedGraph) {
  std::vector<NodeId> nodes;
  std::uint32_t epoch_before = 0;
  {
    auto db = Weaver::Open(DurableOptions(dir_));
    ASSERT_NE(db, nullptr);
    {
      auto tx = db->BeginTx();
      for (int i = 0; i < 12; ++i) nodes.push_back(tx.CreateNode());
      ASSERT_TRUE(db->Commit(&tx).ok());
    }
    {
      auto tx = db->BeginTx();
      for (int i = 0; i < 11; ++i) {
        const EdgeId e = tx.CreateEdge(nodes[i], nodes[i + 1]);
        ASSERT_TRUE(tx.AssignEdgeProperty(nodes[i], e, "rel", "next").ok());
      }
      ASSERT_TRUE(tx.AssignNodeProperty(nodes[0], "name", "head").ok());
      ASSERT_TRUE(db->Commit(&tx).ok());
    }
    epoch_before = db->cluster().current_epoch();
    // Destructor shutdown == the process dies; the in-memory store and all
    // shard state are dropped. Only the data dir survives.
  }

  auto db = Weaver::Open(DurableOptions(dir_));
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->recovered_vertices(), nodes.size());
  // The rebooted deployment runs in a strictly later epoch, so every new
  // timestamp orders after all recovered writes.
  EXPECT_GT(db->cluster().current_epoch(), epoch_before);

  // Every committed vertex is readable; none were lost.
  for (NodeId n : nodes) {
    auto r = db->RunProgram(programs::kGetNode, n);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->returns.size(), 1u);
    EXPECT_TRUE(programs::GetNodeResult::Decode(r->returns[0].second).exists);
  }
  // Properties survived.
  {
    auto r = db->RunProgram(programs::kGetNode, nodes[0]);
    ASSERT_TRUE(r.ok());
    const auto decoded = programs::GetNodeResult::Decode(r->returns[0].second);
    ASSERT_EQ(decoded.properties.size(), 1u);
    EXPECT_EQ(decoded.properties[0].second, "head");
  }
  // Edges survived: the chain is traversable end to end.
  programs::BfsParams params;
  params.edge_prop_key = "rel";
  params.edge_prop_value = "next";
  params.target = nodes.back();
  auto result = db->RunProgram(programs::kBfs, nodes[0], params.Encode());
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const auto& [_, ret] : result->returns) found |= ret == "found";
  EXPECT_TRUE(found);

  // The deployment keeps serving writes, and fresh ids do not collide
  // with recovered ones.
  NodeId fresh = kInvalidNodeId;
  {
    auto tx = db->BeginTx();
    fresh = tx.CreateNode();
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  for (NodeId n : nodes) EXPECT_NE(fresh, n);
}

TEST_F(TempDirTest, WeaverRecoveryToleratesTornWalTail) {
  std::vector<NodeId> nodes;
  {
    auto db = Weaver::Open(DurableOptions(dir_));
    ASSERT_NE(db, nullptr);
    auto tx = db->BeginTx();
    for (int i = 0; i < 8; ++i) nodes.push_back(tx.CreateNode());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  // Crash mid-append: the last WAL record is half-written.
  TruncateFileBy(NewestNonEmptySegmentPath(dir_), 5);
  auto db = Weaver::Open(DurableOptions(dir_));
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->kv().recovery_stats().torn_tails, 1u);
  // The torn batch was never acknowledged; everything else must be intact
  // and the deployment must keep serving.
  const Status st = db->RunTransaction([&](Transaction& tx) {
    tx.CreateNode();
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_F(TempDirTest, PersistentShardRecoveryAfterKill) {
  // The persistence-backed variant of
  // FaultToleranceTest.ShardRecoversGraphFromBackingStore: the deployment
  // itself restarted from disk, and afterwards a shard crash + recovery
  // still restores the partition from the (recovered) backing store.
  std::vector<NodeId> nodes;
  {
    auto db = Weaver::Open(DurableOptions(dir_));
    ASSERT_NE(db, nullptr);
    auto tx = db->BeginTx();
    for (int i = 0; i < 10; ++i) nodes.push_back(tx.CreateNode());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  auto db = Weaver::Open(DurableOptions(dir_));
  ASSERT_NE(db, nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  ASSERT_TRUE(db->KillShard(0).ok());
  ASSERT_TRUE(db->RecoverShard(0).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  for (NodeId n : nodes) {
    auto r = db->RunProgram(programs::kGetNode, n);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(programs::GetNodeResult::Decode(r->returns[0].second).exists);
  }
}

TEST_F(TempDirTest, WeaverBulkLoadIsDurable) {
  {
    WeaverOptions o = DurableOptions(dir_);
    o.start = false;
    auto db = Weaver::Open(o);
    ASSERT_NE(db, nullptr);
    for (NodeId v = 1; v <= 6; ++v) {
      ASSERT_TRUE(db->BulkCreateNode(v).ok());
    }
    for (NodeId v = 1; v < 6; ++v) {
      ASSERT_TRUE(db->BulkCreateEdge(v, v + 1).ok());
    }
    ASSERT_TRUE(db->FinishBulkLoad().ok());
    db->Start();
  }
  auto db = Weaver::Open(DurableOptions(dir_));
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->recovered_vertices(), 6u);
  for (NodeId v = 1; v <= 6; ++v) {
    auto r = db->RunProgram(programs::kGetNode, v);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(programs::GetNodeResult::Decode(r->returns[0].second).exists);
  }
}

}  // namespace
}  // namespace weaver
