// Fault tolerance tests (paper §4.3): shard crash + recovery from the
// backing store, gatekeeper replacement behind the epoch barrier, and the
// cluster manager's failure detector.
#include <gtest/gtest.h>

#include <thread>

#include "coord/cluster_manager.h"
#include "core/weaver.h"
#include "programs/standard_programs.h"

namespace weaver {
namespace {

WeaverOptions FastOptions(std::size_t gks = 2, std::size_t shards = 2) {
  WeaverOptions o;
  o.num_gatekeepers = gks;
  o.num_shards = shards;
  o.tau_micros = 200;
  o.nop_period_micros = 100;
  return o;
}

TEST(FaultToleranceTest, ShardRecoversGraphFromBackingStore) {
  auto db = Weaver::Open(FastOptions(2, 2));
  // Build state across both shards.
  std::vector<NodeId> nodes;
  {
    auto tx = db->BeginTx();
    for (int i = 0; i < 12; ++i) nodes.push_back(tx.CreateNode());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  {
    auto tx = db->BeginTx();
    for (int i = 0; i < 11; ++i) {
      const EdgeId e = tx.CreateEdge(nodes[i], nodes[i + 1]);
      ASSERT_TRUE(tx.AssignEdgeProperty(nodes[i], e, "rel", "next").ok());
    }
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  // Let shard application settle so pre-crash reads work.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // Crash shard 0.
  ASSERT_TRUE(db->KillShard(0).ok());
  EXPECT_FALSE(db->cluster().IsAlive("shard0"));
  EXPECT_TRUE(db->KillShard(0).IsFailedPrecondition());

  // Programs touching the dead shard fail over to the client for re-run.
  bool saw_unavailable = false;
  for (NodeId n : nodes) {
    auto r = db->RunProgram(programs::kGetNode, n);
    if (!r.ok() && r.status().IsUnavailable()) saw_unavailable = true;
  }
  EXPECT_TRUE(saw_unavailable);

  // Recover: the replacement restores the partition from the backing
  // store and rejoins.
  ASSERT_TRUE(db->RecoverShard(0).ok());
  EXPECT_TRUE(db->cluster().IsAlive("shard0"));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // All committed data is readable again.
  for (NodeId n : nodes) {
    auto r = db->RunProgram(programs::kGetNode, n);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->returns.size(), 1u);
    EXPECT_TRUE(programs::GetNodeResult::Decode(r->returns[0].second).exists);
  }
  // Including edges: the chain is still traversable end to end.
  programs::BfsParams params;
  params.edge_prop_key = "rel";
  params.edge_prop_value = "next";
  params.target = nodes.back();
  auto result = db->RunProgram(programs::kBfs, nodes[0], params.Encode());
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const auto& [_, ret] : result->returns) found |= ret == "found";
  EXPECT_TRUE(found);
}

TEST(FaultToleranceTest, WritesDuringOutageSurviveRecovery) {
  auto db = Weaver::Open(FastOptions(2, 2));
  NodeId n;
  {
    auto tx = db->BeginTx();
    n = tx.CreateNode();
    ASSERT_TRUE(tx.AssignNodeProperty(n, "v", "before").ok());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  auto owner = db->locator().Lookup(n);
  ASSERT_TRUE(owner.has_value());
  ASSERT_TRUE(db->KillShard(*owner).ok());

  // Transactions keep committing during the outage: the backing store is
  // the source of truth (the shard message is dropped on the floor).
  {
    auto tx = db->BeginTx();
    ASSERT_TRUE(tx.AssignNodeProperty(n, "v", "during").ok());
    const Status st = db->Commit(&tx);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  ASSERT_TRUE(db->RecoverShard(*owner).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  auto r = db->RunProgram(programs::kGetNode, n);
  ASSERT_TRUE(r.ok());
  const auto decoded = programs::GetNodeResult::Decode(r->returns[0].second);
  ASSERT_EQ(decoded.properties.size(), 1u);
  EXPECT_EQ(decoded.properties[0].second, "during");
}

TEST(FaultToleranceTest, GatekeeperReplacementBumpsEpoch) {
  auto db = Weaver::Open(FastOptions(2, 2));
  NodeId n;
  {
    auto tx = db->BeginTx();
    n = tx.CreateNode();
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  const std::uint32_t before = db->cluster().current_epoch();
  ASSERT_TRUE(db->ReplaceGatekeeper(1).ok());
  EXPECT_EQ(db->cluster().current_epoch(), before + 1);
  // Every gatekeeper moved to the new epoch in unison.
  for (std::size_t g = 0; g < db->num_gatekeepers(); ++g) {
    EXPECT_EQ(db->gatekeeper(static_cast<GatekeeperId>(g))
                  .SnapshotClock()
                  .epoch(),
              before + 1);
  }
  // New-epoch transactions order after all old-epoch ones and the system
  // keeps serving.
  const Status st = db->RunTransaction([&](Transaction& tx) {
    return tx.AssignNodeProperty(n, "post_failover", "yes");
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto r = db->RunProgram(programs::kGetNode, n);
  ASSERT_TRUE(r.ok());
  const auto decoded = programs::GetNodeResult::Decode(r->returns[0].second);
  EXPECT_EQ(decoded.properties.size(), 1u);
}

TEST(FaultToleranceTest, EpochTimestampsOrderAfterOldEpoch) {
  auto db = Weaver::Open(FastOptions(2, 2));
  NodeId n;
  {
    auto tx = db->BeginTx();
    n = tx.CreateNode();
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  auto tx_old = db->BeginTx();
  ASSERT_TRUE(tx_old.AssignNodeProperty(n, "k", "old").ok());
  ASSERT_TRUE(db->Commit(&tx_old).ok());
  const RefinableTimestamp old_ts = tx_old.timestamp();

  ASSERT_TRUE(db->ReplaceGatekeeper(0).ok());

  auto tx_new = db->BeginTx();
  ASSERT_TRUE(tx_new.AssignNodeProperty(n, "k", "new").ok());
  ASSERT_TRUE(db->Commit(&tx_new).ok());
  EXPECT_EQ(old_ts.Compare(tx_new.timestamp()), ClockOrder::kBefore);
}

TEST(FaultToleranceTest, RecoverAliveShardRejected) {
  auto db = Weaver::Open(FastOptions());
  EXPECT_TRUE(db->RecoverShard(0).IsFailedPrecondition());
  EXPECT_TRUE(db->KillShard(99).IsInvalidArgument());
}

TEST(ClusterManagerTest, RegisterHeartbeatDetect) {
  ClusterManager cm;
  cm.Register("shard0", ServerKind::kShard, 0);
  cm.Register("gk0", ServerKind::kGatekeeper, 0);
  EXPECT_TRUE(cm.IsAlive("shard0"));
  // Nothing has timed out yet with a generous window.
  EXPECT_TRUE(cm.DetectFailures(60'000'000).empty());
  // Zero timeout: everything that has not heartbeated in the last instant
  // fails.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  cm.Heartbeat("gk0");
  const auto failed = cm.DetectFailures(1'000);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], "shard0");
  EXPECT_FALSE(cm.IsAlive("shard0"));
  EXPECT_TRUE(cm.IsAlive("gk0"));
  cm.MarkRecovered("shard0");
  EXPECT_TRUE(cm.IsAlive("shard0"));
}

TEST(ClusterManagerTest, MembersSortedSnapshot) {
  ClusterManager cm;
  cm.Register("shard1", ServerKind::kShard, 1);
  cm.Register("gk0", ServerKind::kGatekeeper, 0);
  const auto members = cm.Members();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0].name, "gk0");
  EXPECT_EQ(members[1].name, "shard1");
}

TEST(ClusterManagerTest, UnknownNamesIgnored) {
  ClusterManager cm;
  cm.Heartbeat("ghost");   // no crash
  cm.MarkFailed("ghost");  // no crash
  EXPECT_FALSE(cm.IsAlive("ghost"));
}

}  // namespace
}  // namespace weaver
