// Tests for the extension features: extended node programs (label
// propagation, k-hop, flow analysis), node-program result memoization
// (paper §4.6), and historical queries (paper §4.5).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

#include "core/program_cache.h"
#include "core/weaver.h"
#include "programs/extended_programs.h"
#include "programs/standard_programs.h"

namespace weaver {
namespace {

WeaverOptions FastOptions(std::size_t gks = 2, std::size_t shards = 2) {
  WeaverOptions o;
  o.num_gatekeepers = gks;
  o.num_shards = shards;
  o.tau_micros = 200;
  o.nop_period_micros = 100;
  return o;
}

// ---- Extended programs -----------------------------------------------------

TEST(ExtendedProgramsTest, LabelPropFindsComponentLabel) {
  auto db = Weaver::Open(FastOptions(2, 3));
  // Ring a-b-c-a plus isolated d.
  NodeId a, b, c, d;
  {
    auto tx = db->BeginTx();
    a = tx.CreateNode();
    b = tx.CreateNode();
    c = tx.CreateNode();
    d = tx.CreateNode();
    tx.CreateEdge(a, b);
    tx.CreateEdge(b, c);
    tx.CreateEdge(c, a);
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  programs::LabelPropParams params;
  params.label = b;  // start from b: the fixpoint label is min(a,b,c) = a
  auto result = db->RunProgram(programs::kLabelProp, b, params.Encode());
  ASSERT_TRUE(result.ok());
  std::map<NodeId, std::uint64_t> final_label;
  for (const auto& [node, blob] : result->returns) {
    ByteReader r(blob);
    std::uint64_t label = 0;
    ASSERT_TRUE(r.GetU64(&label).ok());
    final_label[node] = label;  // last write per vertex wins
  }
  EXPECT_EQ(final_label.size(), 3u);  // d untouched
  for (const auto& [node, label] : final_label) {
    EXPECT_EQ(label, a) << "vertex " << node;
  }
  EXPECT_EQ(final_label.count(d), 0u);
}

TEST(ExtendedProgramsTest, KHopRespectsBudget) {
  auto db = Weaver::Open(FastOptions());
  // Chain n0 -> n1 -> n2 -> n3.
  std::vector<NodeId> chain;
  {
    auto tx = db->BeginTx();
    for (int i = 0; i < 4; ++i) chain.push_back(tx.CreateNode());
    for (int i = 0; i < 3; ++i) tx.CreateEdge(chain[i], chain[i + 1]);
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  programs::KHopParams params;
  params.remaining = 2;
  auto result = db->RunProgram(programs::kKHop, chain[0], params.Encode());
  ASSERT_TRUE(result.ok());
  std::set<NodeId> reached;
  for (const auto& [node, _] : result->returns) reached.insert(node);
  EXPECT_EQ(reached, (std::set<NodeId>{chain[0], chain[1], chain[2]}));
}

TEST(ExtendedProgramsTest, KHopZeroIsJustTheStart) {
  auto db = Weaver::Open(FastOptions());
  NodeId a, b;
  {
    auto tx = db->BeginTx();
    a = tx.CreateNode();
    b = tx.CreateNode();
    tx.CreateEdge(a, b);
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  programs::KHopParams params;
  params.remaining = 0;
  auto result = db->RunProgram(programs::kKHop, a, params.Encode());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->returns.size(), 1u);
  EXPECT_EQ(result->returns[0].first, a);
}

TEST(ExtendedProgramsTest, FlowSumFollowsValueEdges) {
  auto db = Weaver::Open(FastOptions());
  NodeId src, mid, sink_v;
  {
    auto tx = db->BeginTx();
    src = tx.CreateNode();
    mid = tx.CreateNode();
    sink_v = tx.CreateNode();
    const EdgeId e1 = tx.CreateEdge(src, mid);
    tx.AssignEdgeProperty(src, e1, "value", "100");
    const EdgeId e2 = tx.CreateEdge(mid, sink_v);
    tx.AssignEdgeProperty(mid, e2, "value", "40");
    // Unvalued edge is not a flow edge.
    tx.CreateEdge(src, sink_v);
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  programs::FlowSumParams params;
  auto result = db->RunProgram(programs::kFlowSum, src, params.Encode());
  ASSERT_TRUE(result.ok());
  std::map<NodeId, std::uint64_t> inbound;
  for (const auto& [node, blob] : result->returns) {
    ByteReader r(blob);
    std::uint64_t v = 0;
    ASSERT_TRUE(r.GetU64(&v).ok());
    inbound[node] = v;
  }
  EXPECT_EQ(inbound[src], 0u);
  EXPECT_EQ(inbound[mid], 100u);
  EXPECT_EQ(inbound[sink_v], 40u);
}

TEST(ExtendedProgramsTest, RegisteredInDefaultRegistry) {
  auto registry = ProgramRegistry::WithStandardPrograms();
  EXPECT_NE(registry->Find(programs::kLabelProp), nullptr);
  EXPECT_NE(registry->Find(programs::kKHop), nullptr);
  EXPECT_NE(registry->Find(programs::kFlowSum), nullptr);
  EXPECT_NE(registry->Find(programs::kBfs), nullptr);
  EXPECT_GE(registry->Names().size(), 11u);
}

// ---- ProgramCache (paper §4.6) -----------------------------------------------

TEST(ProgramCacheTest, HitAfterInsert) {
  ProgramCache cache;
  ProgramResult result;
  result.returns.emplace_back(7, "blob");
  result.vertices_visited = 1;
  cache.Insert("bfs", 7, "p", result);
  auto hit = cache.Lookup("bfs", 7, "p");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->returns.size(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ProgramCacheTest, MissOnDifferentKey) {
  ProgramCache cache;
  ProgramResult result;
  cache.Insert("bfs", 7, "p", result);
  EXPECT_FALSE(cache.Lookup("bfs", 8, "p").has_value());
  EXPECT_FALSE(cache.Lookup("bfs", 7, "q").has_value());
  EXPECT_FALSE(cache.Lookup("get_node", 7, "p").has_value());
}

TEST(ProgramCacheTest, InvalidateByDependency) {
  // The paper's example: a cached path (V1..Vn) is discarded when any
  // vertex on the path changes.
  ProgramCache cache;
  ProgramResult path_result;
  path_result.returns.emplace_back(1, "r1");
  path_result.returns.emplace_back(2, "r2");
  path_result.returns.emplace_back(3, "r3");
  cache.Insert("path_discovery", 1, "", path_result);
  ASSERT_TRUE(cache.Lookup("path_discovery", 1, "").has_value());
  cache.InvalidateNode(2);  // middle of the path
  EXPECT_FALSE(cache.Lookup("path_discovery", 1, "").has_value());
  EXPECT_EQ(cache.Size(), 0u);
}

TEST(ProgramCacheTest, UnrelatedWriteKeepsEntry) {
  ProgramCache cache;
  ProgramResult result;
  result.returns.emplace_back(1, "r");
  cache.Insert("get_node", 1, "", result);
  cache.InvalidateNode(999);
  EXPECT_TRUE(cache.Lookup("get_node", 1, "").has_value());
}

TEST(ProgramCacheTest, CapacityValveClears) {
  ProgramCache cache(4);
  ProgramResult result;
  for (NodeId n = 1; n <= 5; ++n) {
    cache.Insert("p", n, "", result);
  }
  EXPECT_LE(cache.Size(), 4u);
}

TEST(ProgramCacheTest, EndToEndCachingAndInvalidation) {
  WeaverOptions o = FastOptions();
  o.enable_program_cache = true;
  auto db = Weaver::Open(o);
  NodeId n;
  {
    auto tx = db->BeginTx();
    n = tx.CreateNode();
    ASSERT_TRUE(tx.AssignNodeProperty(n, "v", "1").ok());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  // First read: miss + insert. Second: hit, identical result.
  auto r1 = db->RunProgram(programs::kGetNode, n);
  ASSERT_TRUE(r1.ok());
  auto r2 = db->RunProgram(programs::kGetNode, n);
  ASSERT_TRUE(r2.ok());
  EXPECT_GE(db->program_cache().stats().hits, 1u);
  EXPECT_EQ(r1->returns[0].second, r2->returns[0].second);
  // A write to n invalidates; the next read sees the new value.
  {
    auto tx = db->BeginTx();
    ASSERT_TRUE(tx.AssignNodeProperty(n, "v", "2").ok());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  auto r3 = db->RunProgram(programs::kGetNode, n);
  ASSERT_TRUE(r3.ok());
  const auto decoded = programs::GetNodeResult::Decode(r3->returns[0].second);
  ASSERT_EQ(decoded.properties.size(), 1u);
  EXPECT_EQ(decoded.properties[0].second, "2");
}

// ---- Historical queries (paper §4.5) -------------------------------------------

TEST(HistoricalTest, ReadsAtOldTimestampSeeOldState) {
  WeaverOptions o = FastOptions();
  o.gc_period_micros = 0;  // keep every version
  auto db = Weaver::Open(o);
  NodeId n;
  {
    auto tx = db->BeginTx();
    n = tx.CreateNode();
    ASSERT_TRUE(tx.AssignNodeProperty(n, "state", "old").ok());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  // Capture "now" between the two writes.
  auto probe = db->RunProgram(programs::kGetNode, n);
  ASSERT_TRUE(probe.ok());
  const RefinableTimestamp then = probe->timestamp;
  {
    auto tx = db->BeginTx();
    ASSERT_TRUE(tx.AssignNodeProperty(n, "state", "new").ok());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  // Present-time read sees "new"...
  auto now_read = db->RunProgram(programs::kGetNode, n);
  ASSERT_TRUE(now_read.ok());
  EXPECT_EQ(programs::GetNodeResult::Decode(now_read->returns[0].second)
                .properties[0]
                .second,
            "new");
  // ...the historical read at `then` sees "old".
  std::vector<NextHop> starts{NextHop{n, ""}};
  auto old_read = db->RunProgramAt(programs::kGetNode, starts, then);
  ASSERT_TRUE(old_read.ok());
  ASSERT_EQ(old_read->returns.size(), 1u);
  EXPECT_EQ(programs::GetNodeResult::Decode(old_read->returns[0].second)
                .properties[0]
                .second,
            "old");
}

TEST(HistoricalTest, DeletedEdgeVisibleInThePast) {
  WeaverOptions o = FastOptions();
  o.gc_period_micros = 0;
  auto db = Weaver::Open(o);
  NodeId a, b;
  EdgeId e;
  {
    auto tx = db->BeginTx();
    a = tx.CreateNode();
    b = tx.CreateNode();
    e = tx.CreateEdge(a, b);
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  auto probe = db->RunProgram(programs::kCountEdges, a);
  ASSERT_TRUE(probe.ok());
  const RefinableTimestamp then = probe->timestamp;
  {
    auto tx = db->BeginTx();
    ASSERT_TRUE(tx.DeleteEdge(a, e).ok());
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  std::vector<NextHop> starts{NextHop{a, ""}};
  auto old_read = db->RunProgramAt(programs::kCountEdges, starts, then);
  ASSERT_TRUE(old_read.ok());
  ByteReader r(old_read->returns[0].second);
  std::uint64_t count = 0;
  ASSERT_TRUE(r.GetU64(&count).ok());
  EXPECT_EQ(count, 1u);  // the edge existed at `then`
}

TEST(HistoricalTest, InvalidTimestampRejected) {
  auto db = Weaver::Open(FastOptions());
  std::vector<NextHop> starts{NextHop{1, ""}};
  EXPECT_TRUE(db->RunProgramAt(programs::kGetNode, starts,
                               RefinableTimestamp{})
                  .status()
                  .IsInvalidArgument());
}

TEST(HistoricalTest, BeforeCreationSeesNothing) {
  WeaverOptions o = FastOptions();
  o.gc_period_micros = 0;
  auto db = Weaver::Open(o);
  // Timestamp before the vertex exists.
  auto probe = db->RunProgram(programs::kGetNode, 12345);
  ASSERT_TRUE(probe.ok());
  const RefinableTimestamp before = probe->timestamp;
  // Let announces propagate so the creation's timestamp strictly
  // dominates `before` (a creation concurrent with the historical
  // timestamp would be ordered before it -- writes win ties, §4.1).
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  NodeId n;
  {
    auto tx = db->BeginTx();
    n = tx.CreateNode();
    ASSERT_TRUE(db->Commit(&tx).ok());
  }
  std::vector<NextHop> starts{NextHop{n, ""}};
  auto old_read = db->RunProgramAt(programs::kGetNode, starts, before);
  ASSERT_TRUE(old_read.ok());
  ASSERT_EQ(old_read->returns.size(), 1u);
  EXPECT_FALSE(
      programs::GetNodeResult::Decode(old_read->returns[0].second).exists);
}

}  // namespace
}  // namespace weaver
