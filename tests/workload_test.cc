// Tests for the workload generators: Table 1 proportions, graph shape
// properties, blockchain structure.
#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

#include "workload/blockchain.h"
#include "workload/social_graph.h"
#include "workload/tao_workload.h"

namespace weaver {
namespace workload {
namespace {

TEST(TaoWorkloadTest, Table1Proportions) {
  TaoWorkload wl(10000, /*read_fraction=*/0.998, 0.8, 1);
  std::map<TaoOp, int> counts;
  const int n = 300000;
  for (int i = 0; i < n; ++i) counts[wl.NextOp()]++;
  const double total = n;
  // Reads 99.8% split 59.4 / 11.7 / 28.9.
  EXPECT_NEAR(counts[TaoOp::kGetEdges] / total, 0.594 * 0.998, 0.01);
  EXPECT_NEAR(counts[TaoOp::kCountEdges] / total, 0.117 * 0.998, 0.01);
  EXPECT_NEAR(counts[TaoOp::kGetNode] / total, 0.289 * 0.998, 0.01);
  // Writes 0.2% split 80 / 20.
  const double writes =
      (counts[TaoOp::kCreateEdge] + counts[TaoOp::kDeleteEdge]) / total;
  EXPECT_NEAR(writes, 0.002, 0.001);
  if (counts[TaoOp::kCreateEdge] + counts[TaoOp::kDeleteEdge] > 100) {
    const double create_share =
        static_cast<double>(counts[TaoOp::kCreateEdge]) /
        (counts[TaoOp::kCreateEdge] + counts[TaoOp::kDeleteEdge]);
    EXPECT_NEAR(create_share, 0.8, 0.1);
  }
}

TEST(TaoWorkloadTest, CustomReadFraction) {
  TaoWorkload wl(1000, /*read_fraction=*/0.75, 0.8, 2);
  int reads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (IsRead(wl.NextOp())) ++reads;
  }
  EXPECT_NEAR(reads / static_cast<double>(n), 0.75, 0.01);
}

TEST(TaoWorkloadTest, PicksInRange) {
  TaoWorkload wl(500, 0.998, 0.8, 3);
  for (int i = 0; i < 10000; ++i) {
    const NodeId n = wl.PickNode();
    EXPECT_GE(n, 1u);
    EXPECT_LE(n, 500u);
    const NodeId u = wl.PickUniformNode();
    EXPECT_GE(u, 1u);
    EXPECT_LE(u, 500u);
  }
}

TEST(TaoWorkloadTest, OpNamesAndClassification) {
  EXPECT_STREQ(TaoOpName(TaoOp::kGetEdges), "get_edges");
  EXPECT_STREQ(TaoOpName(TaoOp::kCreateEdge), "create_edge");
  EXPECT_TRUE(IsRead(TaoOp::kGetNode));
  EXPECT_FALSE(IsRead(TaoOp::kDeleteEdge));
}

TEST(SocialGraphTest, PowerLawShape) {
  const auto g = MakePowerLawGraph(5000, 8, 42);
  EXPECT_EQ(g.num_nodes, 5000u);
  // (num_nodes - 1) * out_degree edges.
  EXPECT_EQ(g.edges.size(), 4999u * 8u);
  // Degree skew: the most popular vertex should collect far more than the
  // mean in-degree.
  std::map<NodeId, std::uint64_t> indeg;
  for (const auto& [src, dst] : g.edges) {
    EXPECT_GE(src, 1u);
    EXPECT_LE(src, 5000u);
    EXPECT_GE(dst, 1u);
    EXPECT_LE(dst, 5000u);
    EXPECT_NE(src, dst);  // no self loops
    indeg[dst]++;
  }
  std::uint64_t max_indeg = 0;
  for (const auto& [_, d] : indeg) max_indeg = std::max(max_indeg, d);
  const double mean = static_cast<double>(g.edges.size()) / 5000.0;
  EXPECT_GT(max_indeg, static_cast<std::uint64_t>(20 * mean));
}

TEST(SocialGraphTest, Deterministic) {
  const auto a = MakePowerLawGraph(500, 4, 7);
  const auto b = MakePowerLawGraph(500, 4, 7);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(SocialGraphTest, UniformGraphShape) {
  const auto g = MakeUniformGraph(1000, 20000, 5);
  EXPECT_EQ(g.edges.size(), 20000u);
  for (const auto& [src, dst] : g.edges) {
    EXPECT_NE(src, dst);
    EXPECT_LE(src, 1000u);
    EXPECT_LE(dst, 1000u);
  }
}

TEST(BlockchainTest, BlockSizesGrowWithHeight) {
  BlockchainOptions opts;
  opts.num_blocks = 100;
  opts.min_txs = 1;
  opts.max_txs = 50;
  const auto chain = MakeBlockchain(opts);
  ASSERT_EQ(chain.blocks.size(), 100u);
  EXPECT_EQ(chain.TxCount(0), 1u);
  EXPECT_EQ(chain.TxCount(99), 50u);
  EXPECT_LE(chain.TxCount(10), chain.TxCount(90));
}

TEST(BlockchainTest, SpendsReferenceEarlierTransactions) {
  BlockchainOptions opts;
  opts.num_blocks = 50;
  opts.max_txs = 20;
  const auto chain = MakeBlockchain(opts);
  std::unordered_set<NodeId> seen_txs;
  for (const auto& block : chain.blocks) {
    for (const auto& tx : block.txs) {
      for (const auto& [target, value] : tx.outputs) {
        EXPECT_TRUE(seen_txs.count(target))
            << "spend target must be an earlier transaction";
        EXPECT_GT(value, 0u);
      }
    }
    for (const auto& tx : block.txs) seen_txs.insert(tx.id);
  }
}

TEST(BlockchainTest, IdsAreUnique) {
  BlockchainOptions opts;
  opts.num_blocks = 30;
  opts.max_txs = 10;
  const auto chain = MakeBlockchain(opts);
  std::unordered_set<NodeId> ids;
  for (const auto& block : chain.blocks) {
    EXPECT_TRUE(ids.insert(block.id).second);
    for (const auto& tx : block.txs) {
      EXPECT_TRUE(ids.insert(tx.id).second);
    }
  }
  EXPECT_EQ(chain.total_txs + chain.blocks.size(), ids.size());
}

TEST(BlockchainTest, EdgeCountsConsistent) {
  BlockchainOptions opts;
  opts.num_blocks = 40;
  const auto chain = MakeBlockchain(opts);
  std::uint64_t edges = 0;
  for (const auto& block : chain.blocks) {
    edges += block.txs.size();  // block -> tx edges
    for (const auto& tx : block.txs) edges += tx.outputs.size();
  }
  EXPECT_EQ(edges, chain.total_edges);
}

}  // namespace
}  // namespace workload
}  // namespace weaver
