// weaver-serverd: the standalone cluster server binary
// (docs/transport.md#cluster-bootstrap).
//
// Launched by exec -- from a shell, a process supervisor, or the parent
// deployment's ShardSupervisor respawn path -- with NOTHING inherited
// but its command line. It dials the coordinator's cluster listener,
// runs the versioned join handshake (cluster/handshake.h), and becomes
// whatever the RoleAssign says: a shard server, the timeline-oracle
// service, or an out-of-parent gatekeeper. Every configuration knob
// arrives in the assignment; the command line only says where to join
// and what to ask for.
//
//   weaver-serverd --join=127.0.0.1:<port> [--token=<secret>]
//                  [--role=shard|oracle|gatekeeper|spare]
//                  [--shard=<id>]
//
// Omitting --shard wildcards the id: the coordinator fills any open slot
// of the requested role. A refusal (version mismatch, bad token, stale
// epoch, duplicate id) prints the coordinator's status and exits 2.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "cluster/handshake.h"
#include "coord/serverd.h"
#include "core/messages.h"

using namespace weaver;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --join=127.0.0.1:<port> [--token=<secret>]\n"
               "          [--role=shard|oracle|gatekeeper|spare] "
               "[--shard=<id>]\n",
               argv0);
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t join_port = 0;
  JoinRequestMessage request;
  request.pid = static_cast<std::uint64_t>(::getpid());

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--join=", 0) == 0) {
      const std::string_view addr = arg.substr(7);
      const std::size_t colon = addr.rfind(':');
      if (colon == std::string_view::npos) return Usage(argv[0]);
      const std::string_view host = addr.substr(0, colon);
      if (host != "127.0.0.1" && host != "localhost") {
        std::fprintf(stderr,
                     "weaver-serverd: only loopback coordinators are "
                     "supported (got %.*s)\n",
                     static_cast<int>(host.size()), host.data());
        return 64;
      }
      join_port = static_cast<std::uint16_t>(
          std::strtoul(std::string(addr.substr(colon + 1)).c_str(), nullptr,
                       10));
    } else if (arg.rfind("--token=", 0) == 0) {
      request.token = std::string(arg.substr(8));
    } else if (arg.rfind("--role=", 0) == 0) {
      auto role = cluster::ParseRole(std::string(arg.substr(7)));
      if (!role.ok()) {
        std::fprintf(stderr, "weaver-serverd: %s\n",
                     role.status().ToString().c_str());
        return 64;
      }
      request.role = *role;
    } else if (arg.rfind("--shard=", 0) == 0) {
      request.shard_id = static_cast<std::uint32_t>(
          std::strtoul(std::string(arg.substr(8)).c_str(), nullptr, 10));
    } else {
      return Usage(argv[0]);
    }
  }
  if (join_port == 0) return Usage(argv[0]);

  auto joined = cluster::JoinCluster(join_port, request,
                                     /*timeout_micros=*/10'000'000);
  if (!joined.ok()) {
    std::fprintf(stderr, "weaver-serverd: join refused: %s\n",
                 joined.status().ToString().c_str());
    return 2;
  }
  const RoleAssignMessage& assign = joined->assignment;
  const serverd::ShardServerOptions options =
      serverd::OptionsFromAssignment(assign);
  std::fprintf(stderr, "weaver-serverd: joined as %s/%u (epoch %u)\n",
               cluster::RoleName(assign.role), assign.shard_id,
               assign.cluster_epoch);

  switch (assign.role) {
    case NodeRole::kShard:
      return serverd::RunShardServer(joined->fd,
                                     static_cast<ShardId>(assign.shard_id),
                                     options, assign.rehydrate);
    case NodeRole::kOracle:
      return serverd::RunOracleServer(joined->fd, options);
    case NodeRole::kGatekeeper:
      return serverd::RunGatekeeperServer(
          joined->fd, static_cast<GatekeeperId>(assign.shard_id), options,
          assign.cluster_epoch);
    case NodeRole::kSpare:
      // The exec path has no warm spares: a process is spawned when (and
      // as what) it is needed. A spare assignment means misconfiguration.
      std::fprintf(stderr,
                   "weaver-serverd: exec mode has no spare role; ask for "
                   "shard, oracle, or gatekeeper\n");
      return 64;
  }
  return 64;
}
