#!/usr/bin/env python3
"""Wire-schema drift linter (docs/static_analysis.md#schema-linter).

Statically cross-checks the three files that must agree for the wire
protocol to be safe to evolve:

  src/core/messages.h        -- the schema definitions (MsgTag + structs)
  src/core/message_codec.h   -- per-schema Encode/Decode declarations
  src/core/message_codec.cc  -- codec definitions + the EncodePayload /
                                DecodePayload tag registries
  tests/wire_codec_test.cc   -- byte-identical re-encode tests

Checks enforced (each failure is one line on stderr; exit 1 on any):

  1. Every `*Message` struct in messages.h has an Encode(const X&, ...)
     declaration and a Decode(..., X*) declaration in message_codec.h.
  2. Every `*Message` struct has matching Encode/Decode DEFINITIONS in
     message_codec.cc.
  3. Every `*Message` struct is registered in BOTH payload registries in
     message_codec.cc (EncodeAs<X> and DecodeAs<X>).
  4. Every MsgTag enumerator (except the schema-less allowlist, e.g.
     kMsgStop) appears as a `case` in both payload registries.
  5. Every `*Message` struct has a roundtrip test: some TEST body in
     wire_codec_test.cc constructs an instance and passes it to
     ExpectRoundtrip() (the byte-identical re-encode helper).
  6. Every MsgTag enumerator appears somewhere in wire_codec_test.cc
     (the PayloadCodecCoversEveryTag registry walk).

Run from anywhere: paths are resolved relative to the repo root (the
directory holding this script's parent). `--self-test` exercises the
checker against synthetic drifted fixtures and exits non-zero if any
drift goes undetected -- CI runs both modes.
"""

import argparse
import pathlib
import re
import sys

# Tags that deliberately have no schema struct / no payload bytes.
SCHEMALESS_TAGS = {"kMsgStop"}

MESSAGES_H = "src/core/messages.h"
CODEC_H = "src/core/message_codec.h"
CODEC_CC = "src/core/message_codec.cc"
CODEC_TEST = "tests/wire_codec_test.cc"


def parse_schemas(messages_h: str):
    """Returns (tags, structs): MsgTag enumerator names and *Message structs."""
    enum_m = re.search(r"enum\s+MsgTag[^{]*\{(.*?)\}", messages_h, re.S)
    if not enum_m:
        raise SystemExit("lint_wire_schemas: no `enum MsgTag` in " + MESSAGES_H)
    tags = re.findall(r"\b(kMsg\w+)\s*=", enum_m.group(1))
    structs = re.findall(r"^struct\s+(\w+Message)\b", messages_h, re.M)
    return tags, structs


def parse_test_roundtrips(test_cc: str):
    """Struct names passed to ExpectRoundtrip() inside some TEST body."""
    covered = set()
    # Split at TEST( boundaries; within each body, map variable -> type for
    # declarations `XMessage var;` / `XMessage var{...}` and record the types
    # of variables later passed to ExpectRoundtrip(var).
    for body in re.split(r"\bTEST\s*\(", test_cc)[1:]:
        decls = dict(
            (var, typ)
            for typ, var in re.findall(r"\b(\w+Message)\s+(\w+)\s*[;{=]", body)
        )
        for var in re.findall(r"\bExpectRoundtrip\s*\(\s*(\w+)\s*\)", body):
            if var in decls:
                covered.add(decls[var])
    return covered


def check(files: dict) -> list:
    """Runs every check over {path: contents}; returns error strings."""
    errors = []
    tags, structs = parse_schemas(files[MESSAGES_H])
    codec_h = files[CODEC_H]
    codec_cc = files[CODEC_CC]
    test_cc = files[CODEC_TEST]

    for s in structs:
        if not re.search(r"void\s+Encode\(const\s+%s&" % s, codec_h):
            errors.append(f"{CODEC_H}: missing `void Encode(const {s}&, "
                          f"wire::Writer*)` declaration")
        if not re.search(r"Status\s+Decode\(wire::Reader\*\s*\w*,\s*%s\*" % s,
                         codec_h):
            errors.append(f"{CODEC_H}: missing `Status Decode(wire::Reader*, "
                          f"{s}*)` declaration")
        if not re.search(r"void\s+Encode\(const\s+%s&[^)]*\)\s*\{" % s,
                         codec_cc):
            errors.append(f"{CODEC_CC}: missing Encode definition for {s}")
        if not re.search(
                r"Status\s+Decode\(wire::Reader\*\s*\w*,\s*%s\*[^)]*\)\s*\{" % s,
                codec_cc):
            errors.append(f"{CODEC_CC}: missing Decode definition for {s}")
        if not re.search(r"EncodeAs<%s>" % s, codec_cc):
            errors.append(f"{CODEC_CC}: {s} not registered in EncodePayload")
        if not re.search(r"DecodeAs<%s>" % s, codec_cc):
            errors.append(f"{CODEC_CC}: {s} not registered in DecodePayload")

    # Tag registration: each schema-bearing tag must appear as a switch case
    # in both registries (EncodePayload and DecodePayload share the file;
    # require two case sites to cover both).
    for t in tags:
        if t in SCHEMALESS_TAGS:
            continue
        case_count = len(re.findall(r"case\s+%s\s*:" % t, codec_cc))
        if case_count < 2:
            errors.append(f"{CODEC_CC}: tag {t} not registered in both "
                          f"EncodePayload and DecodePayload "
                          f"(found {case_count} case site(s), need 2)")

    covered = parse_test_roundtrips(test_cc)
    for s in structs:
        if s not in covered:
            errors.append(f"{CODEC_TEST}: no ExpectRoundtrip() byte-identical "
                          f"re-encode test constructs a {s}")
    for t in tags:
        if not re.search(r"\b%s\b" % t, test_cc):
            errors.append(f"{CODEC_TEST}: tag {t} never exercised "
                          f"(PayloadCodecCoversEveryTag drift)")

    return errors


def load_repo_files(root: pathlib.Path) -> dict:
    files = {}
    for rel in (MESSAGES_H, CODEC_H, CODEC_CC, CODEC_TEST):
        p = root / rel
        if not p.is_file():
            raise SystemExit(f"lint_wire_schemas: {p} not found "
                             f"(run from the repo, or pass --root)")
        files[rel] = p.read_text()
    return files


def self_test(root: pathlib.Path) -> int:
    """Drifts the real files in-memory and asserts the checker objects."""
    base = load_repo_files(root)
    if check(base):
        # The repo itself must be clean before drift injection means anything.
        for e in check(base):
            print("self-test precondition (repo not clean):", e,
                  file=sys.stderr)
        return 1

    failures = 0

    def expect_drift(name: str, mutate):
        nonlocal failures
        drifted = dict(base)
        mutate(drifted)
        errs = check(drifted)
        if errs:
            print(f"self-test ok: {name} -> {len(errs)} error(s), e.g. "
                  f"{errs[0]}")
        else:
            print(f"self-test FAIL: {name} went undetected", file=sys.stderr)
            failures += 1

    # A brand-new schema nobody wired up anywhere (the ShardReset story).
    def add_schema(f):
        f[MESSAGES_H] = f[MESSAGES_H].replace(
            "}  // namespace weaver",
            "struct GhostMessage { std::uint64_t x = 0; };\n"
            "}  // namespace weaver")
    expect_drift("unwired new schema struct", add_schema)

    # A new tag with no codec registration.
    def add_tag(f):
        f[MESSAGES_H] = re.sub(r"\n\};", "\n  kMsgGhost = 99,\n};",
                               f[MESSAGES_H], count=1)
    expect_drift("unregistered new tag", add_tag)

    # Codec declaration deleted from the header.
    def drop_decl(f):
        f[CODEC_H] = f[CODEC_H].replace(
            "void Encode(const NopMessage& m, wire::Writer* w);", "")
    expect_drift("deleted Encode declaration", drop_decl)

    # Payload-registry entry deleted (tag still decodable one way only).
    def drop_case(f):
        f[CODEC_CC] = f[CODEC_CC].replace(
            "case kMsgNop:\n      return EncodeAs<NopMessage>(payload);", "", 1)
    expect_drift("tag dropped from EncodePayload switch", drop_case)

    # Roundtrip test deleted.
    def drop_test(f):
        f[CODEC_TEST] = re.sub(
            r"TEST\(WireCodec, NopRoundtrip\).*?\n\}\n", "", f[CODEC_TEST],
            flags=re.S)
    expect_drift("deleted roundtrip test", drop_test)

    if failures == 0:
        print("self-test passed: all injected drift detected")
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parent.parent,
                    help="repo root (default: this script's parent's parent)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the linter catches synthetic drift")
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.root)

    errors = check(load_repo_files(args.root))
    for e in errors:
        print("lint_wire_schemas:", e, file=sys.stderr)
    if errors:
        print(f"lint_wire_schemas: {len(errors)} schema drift problem(s); "
              f"see docs/static_analysis.md#schema-linter", file=sys.stderr)
        return 1
    print("lint_wire_schemas: all message schemas have codecs, registry "
          "entries, and byte-identical re-encode tests")
    return 0


if __name__ == "__main__":
    sys.exit(main())
