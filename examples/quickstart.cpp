// Quickstart: open a Weaver deployment, talk to it through a client
// session (the canonical API, docs/client_api.md), run a transaction
// (paper Fig 2 style), execute a node program (paper Fig 3 style), and
// pipeline async commits.
//
//   $ ./example_quickstart
#include <cstdio>
#include <vector>

#include "client/weaver_client.h"
#include "core/weaver.h"
#include "programs/standard_programs.h"

using namespace weaver;

int main() {
  // A deployment: 2 gatekeepers (the timeline coordinator bank), 2 shard
  // servers, a timeline oracle, and a transactional backing store -- all
  // in-process.
  WeaverOptions options;
  options.num_gatekeepers = 2;
  options.num_shards = 2;
  auto db = Weaver::Open(options);

  // Clients speak to gatekeepers through sessions; each session pins to
  // one gatekeeper and may pipeline many in-flight requests.
  WeaverClient client(db.get());
  auto session = client.OpenSession();

  // --- 1. A strictly serializable transaction --------------------------
  // Create two users and a 'follows' edge between them, atomically.
  NodeId alice = 0, bob = 0;
  {
    Transaction tx = session->BeginTx();
    alice = tx.CreateNode();
    bob = tx.CreateNode();
    tx.AssignNodeProperty(alice, "name", "alice");
    tx.AssignNodeProperty(bob, "name", "bob");
    const EdgeId follows = tx.CreateEdge(alice, bob);
    tx.AssignEdgeProperty(alice, follows, "rel", "follows");
    const Status st = session->Commit(&tx);
    if (!st.ok()) {
      std::fprintf(stderr, "commit failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("committed at timestamp %s\n",
                tx.timestamp().ToString().c_str());
  }

  // --- 2. A transactional read -----------------------------------------
  {
    Transaction tx = session->BeginTx();
    auto snap = tx.GetNode(alice);
    std::printf("alice: exists=%d properties=%zu edges=%zu\n",
                snap->exists, snap->properties.size(), snap->edges.size());
  }

  // --- 3. A node program (read-only graph analysis) --------------------
  // BFS from alice along 'follows' edges looking for bob (Fig 3).
  programs::BfsParams params;
  params.edge_prop_key = "rel";
  params.edge_prop_value = "follows";
  params.target = bob;
  auto result = session->RunProgram(programs::kBfs, alice, params.Encode());
  if (!result.ok()) {
    std::fprintf(stderr, "program failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  bool found = false;
  for (const auto& [node, ret] : result->returns) {
    if (ret == "found") found = true;
  }
  std::printf("bob reachable from alice: %s (visited %llu vertices in %llu "
              "waves)\n",
              found ? "yes" : "no",
              static_cast<unsigned long long>(result->vertices_visited),
              static_cast<unsigned long long>(result->waves));

  // --- 4. Retryable read-modify-write ----------------------------------
  const Status st = session->RunTransaction([&](Transaction& tx) -> Status {
    auto snap = tx.GetNode(bob);
    if (!snap.ok()) return snap.status();
    const int followers =
        snap->GetProperty("followers").has_value()
            ? std::stoi(*snap->GetProperty("followers"))
            : 0;
    return tx.AssignNodeProperty(bob, "followers",
                                 std::to_string(followers + 1));
  });
  std::printf("follower increment: %s\n", st.ToString().c_str());

  // --- 5. Pipelined async commits --------------------------------------
  // Submit a burst of follows without waiting for each round trip; the
  // session guarantees they commit in submission order.
  std::vector<Pending<CommitResult>> in_flight;
  for (int i = 0; i < 4; ++i) {
    Transaction tx = session->BeginTx();
    const NodeId fan = tx.CreateNode();
    tx.AssignNodeProperty(fan, "name", "fan" + std::to_string(i));
    const EdgeId e = tx.CreateEdge(fan, bob);
    tx.AssignEdgeProperty(fan, e, "rel", "follows");
    in_flight.push_back(session->CommitAsync(std::move(tx)));
  }
  int committed = 0;
  for (auto& pending : in_flight) {
    if (pending.Wait().ok()) ++committed;
  }
  std::printf("pipelined burst: %d/4 commits landed\n", committed);
  return 0;
}
