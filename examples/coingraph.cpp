// CoinGraph example (paper §5.2): a Bitcoin blockchain explorer on
// Weaver. Builds a synthetic blockchain as a directed graph (block
// vertices fan out to transaction vertices; spend edges connect
// transactions), serves block queries as node programs, appends new
// blocks transactionally as they "arrive", and runs a taint-tracking
// analysis -- all on consistent snapshots, so a reader can never observe
// a half-applied block (the hazard §5.4 describes for non-transactional
// explorers).
//
//   $ ./example_coingraph
#include <cstdio>
#include <string>
#include <vector>

#include "client/weaver_client.h"
#include "common/clock.h"
#include "core/weaver.h"
#include "programs/standard_programs.h"
#include "workload/blockchain.h"

using namespace weaver;

int main() {
  WeaverOptions options;
  options.num_gatekeepers = 2;
  options.num_shards = 3;
  options.start = false;
  auto db = Weaver::Open(options);

  // ---- Load a synthetic blockchain --------------------------------------
  workload::BlockchainOptions chain_opts;
  chain_opts.num_blocks = 300;
  chain_opts.min_txs = 1;
  chain_opts.max_txs = 60;
  const auto chain = workload::MakeBlockchain(chain_opts);
  std::printf("generated chain: %zu blocks, %llu txs, %llu edges\n",
              chain.blocks.size(),
              static_cast<unsigned long long>(chain.total_txs),
              static_cast<unsigned long long>(chain.total_edges));

  for (const auto& block : chain.blocks) {
    db->BulkCreateNode(block.id, {{"height", std::to_string(block.height)},
                                  {"ntx", std::to_string(block.txs.size())}});
    for (const auto& tx : block.txs) {
      db->BulkCreateNode(tx.id,
                         {{"size", std::to_string(tx.size_bytes)},
                          {"fee", std::to_string(tx.fee)}});
      db->BulkCreateEdge(block.id, tx.id, {{"type", "in_block"}});
      for (const auto& [target, value] : tx.outputs) {
        db->BulkCreateEdge(tx.id, target,
                           {{"type", "spend"},
                            {"value", std::to_string(value)}});
      }
    }
  }
  db->FinishBulkLoad();
  db->Start();
  WeaverClient client(db.get());
  auto session = client.OpenSession();

  // ---- Block queries (the Fig 7 workload) --------------------------------
  for (std::uint32_t height : {10u, 150u, 299u}) {
    const NodeId block_vertex = chain.blocks[height].id;
    const std::uint64_t t0 = NowNanos();
    auto result = session->RunProgram(programs::kBlockRender, block_vertex,
                                      programs::BlockRenderParams{}.Encode());
    const double ms = (NowNanos() - t0) / 1e6;
    if (!result.ok()) {
      std::fprintf(stderr, "block query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("block %4u: %3zu rows rendered in %7.3f ms (%.3f ms/tx)\n",
                height, result->returns.size() - 1, ms,
                ms / static_cast<double>(chain.blocks[height].txs.size()));
  }

  // ---- Appending blocks transactionally, pipelined -----------------------
  // New blocks arrive as atomic transactions: either the whole block (and
  // its spends) is visible, or none of it -- a blockchain fork can never
  // expose a half-written block. A syncing node receives bursts of
  // blocks; CommitAsync pipelines them on one session, which guarantees
  // they commit in chain order without waiting out one backing-store
  // round trip per block.
  {
    std::vector<Pending<CommitResult>> in_flight;
    for (int height = 300; height < 305; ++height) {
      Transaction tx = session->BeginTx();
      const NodeId new_block = tx.CreateNode();
      tx.AssignNodeProperty(new_block, "height", std::to_string(height));
      for (int i = 0; i < 5; ++i) {
        const NodeId new_tx = tx.CreateNode();
        tx.AssignNodeProperty(new_tx, "fee", "42");
        const EdgeId e = tx.CreateEdge(new_block, new_tx);
        tx.AssignEdgeProperty(new_block, e, "type", "in_block");
      }
      in_flight.push_back(session->CommitAsync(std::move(tx)));
    }
    int appended = 0;
    for (auto& pending : in_flight) {
      if (pending.Wait().ok()) ++appended;
    }
    std::printf("appended blocks 300-304 atomically, pipelined: %d/5\n",
                appended);
  }

  // ---- Taint tracking (paper §5.2's flow analyses) ------------------------
  // Which later transactions are reachable from a tainted coin via spend
  // edges? BFS restricted to "type"="spend".
  const NodeId tainted = chain.blocks[5].txs.front().id;
  programs::BfsParams taint;
  taint.edge_prop_key = "type";
  taint.edge_prop_value = "spend";
  const std::uint64_t t0 = NowNanos();
  auto flow = session->RunProgram(programs::kBfs, tainted, taint.Encode());
  const double ms = (NowNanos() - t0) / 1e6;
  if (flow.ok()) {
    std::printf("taint analysis from tx %llu: %zu transactions reached in "
                "%.2f ms (%llu waves)\n",
                static_cast<unsigned long long>(tainted),
                flow->returns.size(), ms,
                static_cast<unsigned long long>(flow->waves));
  }
  return 0;
}
