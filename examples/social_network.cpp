// Social-network backend example (paper §5.1): a TAO-style application on
// Weaver. Demonstrates the access-control pattern the paper's Fig 2
// motivates -- posting a photo and configuring who can see it in ONE
// atomic transaction -- plus the Table 1 operation mix running against a
// generated power-law social graph through a client session.
//
//   $ ./example_social_network
#include <cstdio>
#include <string>
#include <vector>

#include "client/weaver_client.h"
#include "common/clock.h"
#include "core/weaver.h"
#include "programs/standard_programs.h"
#include "workload/social_graph.h"
#include "workload/tao_workload.h"

using namespace weaver;

namespace {

/// Can `viewer` see `photo`? True iff an access edge photo -> viewer with
/// VISIBLE=1 exists -- evaluated by a get_edges node program, i.e. on a
/// consistent snapshot (no TOCTOU against concurrent ACL changes).
bool CanSee(Session& session, NodeId photo, NodeId viewer) {
  programs::GetEdgesParams params;
  params.edge_prop_key = "VISIBLE";
  params.edge_prop_value = "1";
  auto result =
      session.RunProgram(programs::kGetEdges, photo, params.Encode());
  if (!result.ok() || result->returns.empty()) return false;
  const auto decoded =
      programs::GetEdgesResult::Decode(result->returns[0].second);
  for (const auto& [eid, to] : decoded.edges) {
    if (to == viewer) return true;
  }
  return false;
}

}  // namespace

int main() {
  WeaverOptions options;
  options.num_gatekeepers = 2;
  options.num_shards = 2;
  auto db = Weaver::Open(options);
  WeaverClient client(db.get());
  auto session = client.OpenSession();

  // ---- Users ------------------------------------------------------------
  Transaction setup = session->BeginTx();
  const NodeId user = setup.CreateNode();
  const NodeId friend_a = setup.CreateNode();
  const NodeId friend_b = setup.CreateNode();
  const NodeId stranger = setup.CreateNode();
  setup.AssignNodeProperty(user, "name", "poster");
  if (!session->Commit(&setup).ok()) return 1;

  // ---- The Fig 2 transaction: post a photo + ACL atomically -------------
  NodeId photo = kInvalidNodeId;
  {
    Transaction tx = session->BeginTx();
    photo = tx.CreateNode();
    tx.AssignNodeProperty(photo, "type", "photo");
    const EdgeId own_edge = tx.CreateEdge(user, photo);
    tx.AssignEdgeProperty(user, own_edge, "OWNS", "1");
    for (NodeId nbr : {friend_a, friend_b}) {  // permitted_neighbors
      const EdgeId access_edge = tx.CreateEdge(photo, nbr);
      tx.AssignEdgeProperty(photo, access_edge, "VISIBLE", "1");
    }
    const Status st = session->Commit(&tx);
    std::printf("photo post + ACL commit: %s\n", st.ToString().c_str());
    if (!st.ok()) return 1;
  }
  std::printf("friend_a can see photo: %s\n",
              CanSee(*session, photo, friend_a) ? "yes" : "no");
  std::printf("stranger can see photo: %s\n",
              CanSee(*session, photo, stranger) ? "yes" : "no");

  // ---- Revoke access atomically while readers race ----------------------
  {
    Transaction tx = session->BeginTx();
    auto snap = tx.GetNode(photo);
    for (const auto& e : snap->edges) {
      if (e.to == friend_b) tx.DeleteEdge(photo, e.id);
    }
    const Status st = session->Commit(&tx);
    std::printf("ACL revoke commit: %s\n", st.ToString().c_str());
  }
  std::printf("friend_b can see photo after revoke: %s\n",
              CanSee(*session, photo, friend_b) ? "yes" : "no");

  // ---- Table 1 workload against a power-law graph -----------------------
  // Release the first deployment's threads before opening the second one
  // (a single machine hosting two full clusters starves both).
  session.reset();
  db->Shutdown();
  std::printf("\nrunning the TAO operation mix (Table 1) ...\n");
  const auto graph = workload::MakePowerLawGraph(2000, 8, 99);
  // Reload into a fresh deployment via bulk load for speed.
  WeaverOptions bulk_options = options;
  bulk_options.start = false;
  auto social = Weaver::Open(bulk_options);
  for (NodeId v = 1; v <= graph.num_nodes; ++v) {
    social->BulkCreateNode(v);
  }
  for (const auto& [src, dst] : graph.edges) {
    social->BulkCreateEdge(src, dst, {{"rel", "follows"}});
  }
  social->FinishBulkLoad();
  social->Start();
  WeaverClient social_client(social.get());
  auto feed = social_client.OpenSession();

  workload::TaoWorkload mix(graph.num_nodes);
  std::size_t reads = 0, writes = 0, aborted = 0;
  const std::uint64_t start_ns = NowNanos();
  for (int i = 0; i < 3000; ++i) {
    const auto op = mix.NextOp();
    const NodeId n = mix.PickNode();
    switch (op) {
      case workload::TaoOp::kGetEdges:
        (void)feed->RunProgram(programs::kGetEdges, n);
        ++reads;
        break;
      case workload::TaoOp::kCountEdges:
        (void)feed->RunProgram(programs::kCountEdges, n);
        ++reads;
        break;
      case workload::TaoOp::kGetNode:
        (void)feed->RunProgram(programs::kGetNode, n);
        ++reads;
        break;
      case workload::TaoOp::kCreateEdge: {
        const Status st = feed->RunTransaction([&](Transaction& tx) {
          tx.CreateEdge(n, mix.PickUniformNode());
          return Status::Ok();
        });
        if (!st.ok()) ++aborted;
        ++writes;
        break;
      }
      case workload::TaoOp::kDeleteEdge: {
        const Status st = feed->RunTransaction([&](Transaction& tx) {
          auto snap = tx.GetNode(n);
          if (!snap.ok()) return snap.status();
          if (snap->edges.empty()) return Status::Ok();
          return tx.DeleteEdge(n, snap->edges[0].id);
        });
        if (!st.ok() && !st.IsNotFound()) ++aborted;
        ++writes;
        break;
      }
    }
  }
  const double secs = (NowNanos() - start_ns) / 1e9;
  std::printf("%zu reads + %zu writes in %.2fs (%.0f ops/s, %zu aborts)\n",
              reads, writes, secs, (reads + writes) / secs, aborted);
  return 0;
}
