// weaver-serverd: the multi-process deployment example
// (docs/transport.md#multi-process).
//
// Boots a Weaver deployment whose SHARD SERVERS RUN AS SEPARATE OS
// PROCESSES, connected to the parent over stream sockets carrying wire
// frames (net/wire.h). The parent runs the gatekeeper bank, the backing
// store, the program coordinator, and the client sessions; each child
// runs one shard server (coord/serverd.h). Shard-to-shard node-program
// hop forwarding transits the parent as a hub, without being decoded.
//
//   ./example_weaver_serverd [num_shards] [--metrics | --metrics=json]
//
// (default 2 shards). --metrics dumps, after the workload, the parent
// process's registry plus a per-shard-process report collected over the
// wire codec (Weaver::CollectMetrics, docs/observability.md); =json
// emits the merged cluster view as JSON instead of text.
//
// The workload: build a small social graph through pipelined sessions,
// then run BFS reachability and point lookups -- every byte of
// shard-bound traffic crosses a real process boundary.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "client/weaver_client.h"
#include "coord/serverd.h"
#include "core/weaver.h"
#include "programs/standard_programs.h"

using namespace weaver;

int main(int argc, char** argv) {
  std::size_t num_shards = 2;
  bool dump_metrics = false;
  bool metrics_json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--metrics") {
      dump_metrics = true;
    } else if (arg == "--metrics=json") {
      dump_metrics = true;
      metrics_json = true;
    } else {
      num_shards = std::strtoul(argv[i], nullptr, 10);
    }
  }

  // 1. Fork the shard-server children FIRST: threads do not survive
  //    fork, so the parent deployment must not exist yet.
  serverd::ShardServerOptions so;
  so.num_shards = num_shards;
  so.num_gatekeepers = 2;
  auto children = serverd::SpawnShardServers(so);
  if (!children.ok()) {
    std::fprintf(stderr, "spawn failed: %s\n",
                 children.status().ToString().c_str());
    return 1;
  }
  std::printf("weaver-serverd: %zu shard server processes:", num_shards);
  for (const auto& child : *children) std::printf(" pid=%d", child.pid);
  std::printf("\n");

  // 2. The parent deployment speaks to them over the sockets.
  WeaverOptions options;
  options.num_shards = num_shards;
  options.num_gatekeepers = 2;
  for (const auto& child : *children) {
    options.remote_shard_fds.push_back(child.parent_fd);
  }
  auto db = Weaver::Open(options);
  if (db == nullptr) {
    std::fprintf(stderr, "deployment failed to open\n");
    return 1;
  }

  // 3. Build a follow graph through pipelined session commits. The
  // session lives in a scope: it must be closed before the deployment
  // is torn down.
  bool ok = false;
  constexpr int kUsers = 64;
  {
  WeaverClient client(db.get());
  auto session = client.OpenSession();
  std::vector<NodeId> users;
  {
    Transaction tx = session->BeginTx();
    for (int i = 0; i < kUsers; ++i) {
      const NodeId u = tx.CreateNode();
      tx.AssignNodeProperty(u, "handle", "user" + std::to_string(i));
      users.push_back(u);
    }
    const Status st = session->Commit(&tx);
    if (!st.ok()) {
      std::fprintf(stderr, "graph build failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::vector<Pending<CommitResult>> pendings;
  for (int i = 0; i < kUsers; ++i) {
    Transaction tx = session->BeginTx();
    tx.CreateEdge(users[i], users[(i + 1) % kUsers]);       // ring
    tx.CreateEdge(users[i], users[(i * 7 + 3) % kUsers]);   // chords
    pendings.push_back(session->CommitAsync(std::move(tx)));
  }
  for (auto& p : pendings) {
    if (!p.Wait().ok()) {
      std::fprintf(stderr, "edge commit failed: %s\n",
                   p.Wait().status.ToString().c_str());
      return 1;
    }
  }
  std::printf("weaver-serverd: committed %d users + %d follow edges over "
              "the wire\n",
              kUsers, 2 * kUsers);

  // 4. Traversals: BFS reachability from user0 must reach everyone.
  programs::BfsParams params;
  auto bfs = session->RunProgram(programs::kBfs, users[0], params.Encode());
  if (!bfs.ok()) {
    std::fprintf(stderr, "bfs failed: %s\n", bfs.status().ToString().c_str());
    return 1;
  }
  std::printf("weaver-serverd: BFS from user0 reached %zu vertices "
              "(%llu hops, %llu forwarded batches)\n",
              bfs->returns.size(),
              static_cast<unsigned long long>(bfs->hops),
              static_cast<unsigned long long>(bfs->forwarded_batches));

  const auto& stats = db->bus().stats();
  std::printf("weaver-serverd: %llu frames sent / %llu received, %llu "
              "sequence violations\n",
              static_cast<unsigned long long>(stats.wire_frames_sent.load()),
              static_cast<unsigned long long>(
                  stats.wire_frames_received.load()),
              static_cast<unsigned long long>(
                  stats.wire_seq_violations.load()));

  ok = bfs->returns.size() == static_cast<std::size_t>(kUsers) &&
       stats.wire_seq_violations.load() == 0;

  // 4b. Telemetry dump: one registry per PROCESS -- the parent's own,
  // plus a snapshot each shard server ships back as a MetricsReport over
  // its socket. The merged view is what an operator would scrape.
  if (dump_metrics) {
    auto cluster = db->CollectMetrics();
    if (!cluster.ok()) {
      std::fprintf(stderr, "metrics collection failed: %s\n",
                   cluster.status().ToString().c_str());
      ok = false;
    } else if (metrics_json) {
      std::printf("%s\n", cluster->Merged().ToJson().c_str());
    } else {
      std::printf("\n==== parent process ====\n%s",
                  cluster->local.ToText().c_str());
      for (const MetricsReportMessage& report : cluster->remote) {
        std::printf("==== shard process %u (inbox_depth=%llu) ====\n%s",
                    report.shard,
                    static_cast<unsigned long long>(report.inbox_depth),
                    report.snapshot.ToText().c_str());
      }
      ok = ok && cluster->remote.size() == num_shards;
    }
  }
  }

  // 5. Clean teardown: the deployment stops the links, the children see
  //    EOF and exit, and the parent reaps them.
  db->Shutdown();
  db.reset();
  const Status reaped = serverd::WaitShardServers(*children);
  if (!reaped.ok()) {
    std::fprintf(stderr, "child exit: %s\n", reaped.ToString().c_str());
    return 1;
  }
  std::printf("weaver-serverd: all shard processes exited cleanly; %s\n",
              ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
