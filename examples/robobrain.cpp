// RoboBrain example (paper §5.3): a knowledge graph on Weaver. Concepts
// are vertices; labeled relationships are property-annotated edges. The
// example demonstrates the two operations the paper highlights:
//
//   * transactional concept merge -- noisy observations are folded into an
//     existing concept, or concepts are merged, atomically, so ML readers
//     never see a half-merged knowledge graph;
//   * subgraph queries as node programs -- "how is cup related to
//     kitchen?" answered by path discovery on a consistent snapshot, with
//     the returned path memoized application-side and invalidated when a
//     later update touches it (the paper §4.6 caching pattern).
//
//   $ ./example_robobrain
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "client/weaver_client.h"
#include "core/weaver.h"
#include "programs/standard_programs.h"

using namespace weaver;

namespace {

std::vector<NodeId> DecodePath(const std::string& blob) {
  ByteReader r(blob);
  std::uint32_t n = 0;
  if (!r.GetU32(&n).ok()) return {};
  std::vector<NodeId> path;
  for (std::uint32_t i = 0; i < n; ++i) {
    NodeId id = 0;
    if (!r.GetU64(&id).ok()) break;
    path.push_back(id);
  }
  return path;
}

}  // namespace

int main() {
  auto db = Weaver::Open(WeaverOptions{});
  WeaverClient client(db.get());
  auto session = client.OpenSession();

  // ---- Seed concepts ------------------------------------------------------
  std::map<std::string, NodeId> concepts;
  {
    Transaction tx = session->BeginTx();
    for (const char* name :
         {"cup", "mug", "coffee", "kitchen", "table", "robot_arm"}) {
      const NodeId c = tx.CreateNode();
      tx.AssignNodeProperty(c, "concept", name);
      concepts[name] = c;
    }
    auto relate = [&](const char* a, const char* b, const char* rel) {
      const EdgeId e = tx.CreateEdge(concepts[a], concepts[b]);
      tx.AssignEdgeProperty(concepts[a], e, "rel", rel);
    };
    relate("cup", "coffee", "holds");
    relate("coffee", "kitchen", "found_in");
    relate("kitchen", "table", "contains");
    relate("robot_arm", "cup", "can_grasp");
    relate("mug", "coffee", "holds");
    if (!session->Commit(&tx).ok()) return 1;
  }

  // ---- Subgraph query: path from cup to kitchen ---------------------------
  auto discover = [&](NodeId from, NodeId to) -> std::vector<NodeId> {
    programs::PathDiscoveryParams params;
    params.target = to;
    params.max_depth = 8;
    auto result =
        session->RunProgram(programs::kPathDiscovery, from, params.Encode());
    if (!result.ok()) return {};
    std::vector<NodeId> best;
    for (const auto& [_, blob] : result->returns) {
      auto path = DecodePath(blob);
      if (best.empty() || (!path.empty() && path.size() < best.size())) {
        best = std::move(path);
      }
    }
    return best;
  };

  auto path = discover(concepts["cup"], concepts["kitchen"]);
  std::printf("cup -> kitchen path: %zu hops\n",
              path.empty() ? 0 : path.size() - 1);

  // Application-side memoization of the discovered path (paper §4.6): the
  // cache key is the (src, dst) pair; the invalidation token is the set of
  // vertices on the path. Any transaction that touches one of them drops
  // the entry.
  std::map<std::pair<NodeId, NodeId>, std::vector<NodeId>> path_cache;
  path_cache[{concepts["cup"], concepts["kitchen"]}] = path;

  // ---- Transactional concept merge ----------------------------------------
  // "mug" and "cup" turn out to be the same concept: move mug's relations
  // onto cup and delete mug, in one transaction. ML readers either see
  // both concepts or the merged one -- never a dangling half-merge.
  {
    Transaction tx = session->BeginTx();
    auto mug = tx.GetNode(concepts["mug"]);
    if (!mug.ok()) return 1;
    for (const auto& e : mug->edges) {
      const EdgeId moved = tx.CreateEdge(concepts["cup"], e.to);
      for (const auto& [k, v] : e.properties) {
        tx.AssignEdgeProperty(concepts["cup"], moved, k, v);
      }
      tx.DeleteEdge(concepts["mug"], e.id);
    }
    tx.DeleteNode(concepts["mug"]);
    const Status st = session->Commit(&tx);
    std::printf("concept merge (mug -> cup): %s\n", st.ToString().c_str());
  }

  // Merge touched "cup" -- invalidate cached paths through it, as the
  // paper's caching discussion prescribes.
  for (auto it = path_cache.begin(); it != path_cache.end();) {
    bool touches_cup = false;
    for (NodeId v : it->second) touches_cup |= v == concepts["cup"];
    it = touches_cup ? path_cache.erase(it) : std::next(it);
  }
  std::printf("path cache entries after invalidation: %zu\n",
              path_cache.size());

  // Re-discover on the post-merge graph.
  path = discover(concepts["cup"], concepts["kitchen"]);
  std::printf("cup -> kitchen after merge: %zu hops\n",
              path.empty() ? 0 : path.size() - 1);

  // ---- Degree census via node programs ------------------------------------
  for (const auto& [name, id] : concepts) {
    if (name == "mug") continue;  // merged away
    auto r = session->RunProgram(programs::kCountEdges, id);
    if (!r.ok() || r->returns.empty()) continue;
    ByteReader reader(r->returns[0].second);
    std::uint64_t degree = 0;
    (void)reader.GetU64(&degree);
    std::printf("  %-10s out-degree %llu\n", name.c_str(),
                static_cast<unsigned long long>(degree));
  }
  return 0;
}
