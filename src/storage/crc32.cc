#include "storage/crc32.h"

#include <array>

namespace weaver {
namespace storage {

namespace {

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace

std::uint32_t Crc32(std::string_view data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (char ch : data) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace storage
}  // namespace weaver
