// Low-level POSIX file helpers shared by the WAL and checkpoint writers.
#pragma once

#include <cstddef>
#include <string>

#include "common/status.h"

namespace weaver {
namespace storage {

/// write(2) loop tolerating short writes and EINTR.
Status WriteFully(int fd, const char* data, std::size_t n);

/// fsync of the directory itself, so freshly created/renamed entries
/// survive a machine crash. Best effort (some filesystems refuse).
void SyncDir(const std::string& dir);

}  // namespace storage
}  // namespace weaver
