#include "storage/storage_engine.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/clock.h"
#include "common/serde.h"

namespace weaver {
namespace storage {

namespace fs = std::filesystem;

std::string EncodeBatch(const std::vector<WalOp>& ops) {
  ByteWriter w;
  w.PutU32(static_cast<std::uint32_t>(ops.size()));
  for (const WalOp& op : ops) {
    w.PutU8(static_cast<std::uint8_t>(op.kind));
    w.PutString(op.key);
    if (op.kind == WalOp::Kind::kPut) w.PutString(op.value);
  }
  return w.Take();
}

Status DecodeBatch(std::string_view payload, std::vector<WalOp>* out) {
  ByteReader r(payload);
  std::uint32_t count = 0;
  WEAVER_RETURN_IF_ERROR(r.GetU32(&count));
  out->clear();
  out->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    WalOp op;
    std::uint8_t kind = 0;
    WEAVER_RETURN_IF_ERROR(r.GetU8(&kind));
    if (kind != static_cast<std::uint8_t>(WalOp::Kind::kPut) &&
        kind != static_cast<std::uint8_t>(WalOp::Kind::kDelete)) {
      return Status::Internal("bad WAL op kind");
    }
    op.kind = static_cast<WalOp::Kind>(kind);
    WEAVER_RETURN_IF_ERROR(r.GetString(&op.key));
    if (op.kind == WalOp::Kind::kPut) {
      WEAVER_RETURN_IF_ERROR(r.GetString(&op.value));
    }
    out->push_back(std::move(op));
  }
  if (!r.AtEnd()) return Status::Internal("trailing bytes in WAL batch");
  return Status::Ok();
}

StorageEngine::StorageEngine(StorageOptions options)
    : options_(std::move(options)) {}

StorageEngine::~StorageEngine() {
  if (metrics_ != nullptr) {
    if (wal_) wal_->SetFsyncHistogram(nullptr);
    checkpoint_duration_ = nullptr;
    metrics_->DropPrefix("storage.");
  }
  if (lock_fd_ >= 0) {
    ::flock(lock_fd_, LOCK_UN);
    ::close(lock_fd_);
  }
}

void StorageEngine::SetMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr || metrics_ != nullptr) return;
  metrics_ = registry;
  const Wal::Stats& ws = wal_->stats();
  const auto counter = [&](const char* name,
                           const std::atomic<std::uint64_t>& v) {
    registry->AddCounterFn(std::string("storage.") + name, [&v] {
      return v.load(std::memory_order_relaxed);
    });
  };
  counter("wal_appends", ws.appends);
  counter("wal_syncs", ws.syncs);
  counter("wal_bytes_appended", ws.bytes_appended);
  counter("wal_rotations", ws.rotations);
  counter("checkpoints_taken", checkpoints_taken_);
  registry->AddGaugeFn("storage.wal_bytes_since_checkpoint", [this] {
    return static_cast<std::int64_t>(
        wal_bytes_since_checkpoint_.load(std::memory_order_relaxed));
  });
  wal_->SetFsyncHistogram(registry->histogram("storage.fsync_latency"));
  checkpoint_duration_ = registry->histogram("storage.checkpoint_duration");
}

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    const StorageOptions& options) {
  if (!options.enabled()) {
    return Status::InvalidArgument("StorageEngine requires a data_dir");
  }
  std::error_code ec;
  fs::create_directories(options.data_dir, ec);
  if (ec) {
    return Status::Internal("cannot create data dir " + options.data_dir +
                            ": " + ec.message());
  }
  auto engine = std::unique_ptr<StorageEngine>(new StorageEngine(options));

  // One live engine per data dir: two concurrent writers would interleave
  // WAL segments and truncate each other's log at checkpoint time.
  const std::string lock_path = options.data_dir + "/LOCK";
  engine->lock_fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0644);
  if (engine->lock_fd_ < 0) {
    return Status::Internal("cannot open " + lock_path + ": " +
                            std::strerror(errno));
  }
  if (::flock(engine->lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    return Status::FailedPrecondition(
        "data dir " + options.data_dir +
        " is locked by another live storage engine");
  }

  auto manifest = ReadManifest(options.data_dir);
  std::uint64_t wal_start;
  {
    MutexLock lk(engine->manifest_mu_);
    if (manifest.ok()) {
      engine->manifest_ = *manifest;
    } else if (!manifest.status().IsNotFound()) {
      return manifest.status();  // corrupt manifest: refuse to guess
    }
    wal_start = engine->manifest_.wal_start;
  }

  auto wal = Wal::Open(options.data_dir, options, wal_start);
  if (!wal.ok()) return wal.status();
  engine->wal_ = std::move(wal).value();
  engine->wal_bytes_since_checkpoint_.store(
      Wal::SegmentBytes(options.data_dir, wal_start),
      std::memory_order_relaxed);
  return engine;
}

Status StorageEngine::Recover(
    const std::function<void(std::string&&, std::string&&)>& install,
    const std::function<void(const WalOp&)>& apply, RecoveryStats* stats) {
  RecoveryStats local;
  std::uint64_t checkpoint_id, wal_start;
  {
    // Recovery runs single-threaded at Open, but reading the manifest
    // under its lock keeps the invariant uniform (and free: uncontended).
    MutexLock lk(manifest_mu_);
    checkpoint_id = manifest_.checkpoint_id;
    wal_start = manifest_.wal_start;
  }
  if (checkpoint_id != 0) {
    WEAVER_RETURN_IF_ERROR(ReadCheckpointFile(
        options_.data_dir, checkpoint_id,
        [&](std::string&& key, std::string&& value) {
          ++local.checkpoint_rows;
          install(std::move(key), std::move(value));
        }));
  }
  std::vector<WalOp> batch;
  auto replay = Wal::Replay(
      options_.data_dir, wal_start, [&](std::string_view payload) {
        WEAVER_RETURN_IF_ERROR(DecodeBatch(payload, &batch));
        for (const WalOp& op : batch) {
          ++local.wal_ops;
          apply(op);
        }
        return Status::Ok();
      });
  if (!replay.ok()) return replay.status();
  local.wal_records = replay->records;
  local.torn_tails = replay->torn_tails;
  if (stats != nullptr) *stats = local;
  return Status::Ok();
}

Status StorageEngine::AppendBatch(const std::vector<WalOp>& ops) {
  if (ops.empty()) return Status::Ok();
  const std::string payload = EncodeBatch(ops);
  WEAVER_RETURN_IF_ERROR(wal_->Append(payload));
  wal_bytes_since_checkpoint_.fetch_add(payload.size() + 8,
                                        std::memory_order_relaxed);
  return Status::Ok();
}

bool StorageEngine::CheckpointDue() const {
  return options_.checkpoint_interval_bytes > 0 &&
         wal_bytes_since_checkpoint_.load(std::memory_order_relaxed) >=
             options_.checkpoint_interval_bytes;
}

std::uint64_t StorageEngine::PrepareCheckpoint() { return wal_->Rotate(); }

Status StorageEngine::CommitCheckpoint(
    std::vector<std::pair<std::string, std::string>> rows,
    std::uint64_t wal_start) {
  const std::uint64_t start_ns = NowNanos();
  MutexLock lk(manifest_mu_);
  const std::uint64_t id = manifest_.checkpoint_id + 1;
  WEAVER_RETURN_IF_ERROR(
      WriteCheckpointFile(options_.data_dir, id, &rows));
  Manifest next = manifest_;
  next.checkpoint_id = id;
  next.wal_start = wal_start;
  WEAVER_RETURN_IF_ERROR(WriteManifest(options_.data_dir, next));
  manifest_ = next;  // the manifest rename was the commit point
  checkpoints_taken_.fetch_add(1, std::memory_order_relaxed);
  wal_bytes_since_checkpoint_.store(
      Wal::SegmentBytes(options_.data_dir, wal_start),
      std::memory_order_relaxed);
  // Best-effort GC; stale files are harmless and re-collected next time.
  (void)wal_->DeleteSegmentsBefore(wal_start);
  DeleteCheckpointsExcept(options_.data_dir, id);
  if (checkpoint_duration_ != nullptr) {
    checkpoint_duration_->Record(NowNanos() - start_ns);
  }
  return Status::Ok();
}

Status StorageEngine::PersistEpoch(std::uint32_t epoch) {
  MutexLock lk(manifest_mu_);
  if (manifest_.epoch == epoch) return Status::Ok();
  Manifest next = manifest_;
  next.epoch = epoch;
  WEAVER_RETURN_IF_ERROR(WriteManifest(options_.data_dir, next));
  manifest_ = next;
  return Status::Ok();
}

const char* FsyncPolicyNameImpl(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "unknown";
}

}  // namespace storage

const char* FsyncPolicyName(FsyncPolicy policy) {
  return storage::FsyncPolicyNameImpl(policy);
}

}  // namespace weaver
