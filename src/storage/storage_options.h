// Configuration for the durable storage engine (WAL + checkpoints) that
// backs the KvStore. The paper's deployment delegates durability to
// HyperDex Warp (§3.2); this subsystem supplies the same guarantee
// in-process so a restarted deployment recovers every committed write.
#pragma once

#include <cstdint>
#include <string>

namespace weaver {

/// When appended log records are forced to stable storage.
enum class FsyncPolicy : std::uint8_t {
  /// Never fsync on the write path: records reach the OS page cache at
  /// append time and stable storage whenever the kernel flushes. A process
  /// crash loses nothing; a machine crash may lose the buffered tail.
  kNever = 0,
  /// Group commit: every committed batch is covered by an fdatasync before
  /// the commit returns. Concurrent committers share one sync (the first
  /// writer syncs the whole appended prefix; the rest wait for the
  /// watermark to pass their record).
  kAlways = 1,
};

struct StorageOptions {
  /// Root directory for WAL segments, checkpoints, and the manifest.
  /// Empty (default) disables durability entirely: the KvStore is a pure
  /// in-memory store, exactly as before this subsystem existed.
  std::string data_dir;

  FsyncPolicy fsync = FsyncPolicy::kNever;

  /// Active WAL segment is rotated once it grows past this size.
  std::uint64_t segment_size_bytes = 4ull << 20;

  /// A checkpoint is triggered automatically once this many WAL bytes have
  /// accumulated since the previous checkpoint. 0 disables automatic
  /// checkpoints (callers checkpoint manually).
  std::uint64_t checkpoint_interval_bytes = 16ull << 20;

  bool enabled() const { return !data_dir.empty(); }
};

const char* FsyncPolicyName(FsyncPolicy policy);

}  // namespace weaver
