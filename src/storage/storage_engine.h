// StorageEngine: the durable half of the backing store. Owns the WAL and
// checkpoint machinery and speaks in key-value operations; the KvStore
// layers its in-memory stripe map on top (kvstore/kvstore.cc) and calls:
//
//   * AppendBatch() before publishing any committed write batch -- the
//     write-ahead rule; durable per StorageOptions::fsync on return;
//   * Recover() once at open, to rebuild state from the newest checkpoint
//     plus the WAL tail (tolerating torn tail frames);
//   * PrepareCheckpoint()/CommitCheckpoint() around a consistent snapshot
//     of the committed state, after which obsolete WAL segments and old
//     snapshots are removed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "obs/metrics.h"
#include "storage/checkpoint.h"
#include "storage/storage_options.h"
#include "storage/wal.h"

namespace weaver {
namespace storage {

/// One logged key-value operation.
struct WalOp {
  enum class Kind : std::uint8_t { kPut = 1, kDelete = 2 };
  Kind kind = Kind::kPut;
  std::string key;
  std::string value;  // empty for deletes
};

/// Encodes a batch into one WAL record payload / decodes it back.
std::string EncodeBatch(const std::vector<WalOp>& ops);
Status DecodeBatch(std::string_view payload, std::vector<WalOp>* out);

class StorageEngine {
 public:
  struct RecoveryStats {
    std::uint64_t checkpoint_rows = 0;
    std::uint64_t wal_records = 0;
    std::uint64_t wal_ops = 0;
    std::uint64_t torn_tails = 0;
  };

  /// Opens (creating the directory if needed) the engine rooted at
  /// `options.data_dir`. Requires options.enabled(). The directory is
  /// flock()ed for the engine's lifetime: a second concurrent open fails
  /// with FailedPrecondition rather than letting two writers interleave
  /// segments and truncate each other's WAL at checkpoint time.
  static Result<std::unique_ptr<StorageEngine>> Open(
      const StorageOptions& options);
  ~StorageEngine();

  /// Replays the newest checkpoint (rows go to `install`) and then every
  /// WAL record past it (ops go to `apply`, in commit order). Call once,
  /// before the first AppendBatch.
  Status Recover(
      const std::function<void(std::string&&, std::string&&)>& install,
      const std::function<void(const WalOp&)>& apply, RecoveryStats* stats);

  /// Logs one committed batch as a single atomic WAL record.
  Status AppendBatch(const std::vector<WalOp>& ops);

  /// True once enough WAL has accumulated that the owner should take a
  /// checkpoint (per StorageOptions::checkpoint_interval_bytes).
  bool CheckpointDue() const;

  /// Phase 1 of a checkpoint: rotates the WAL and returns the replay lower
  /// bound to record in the manifest. The caller must hold whatever locks
  /// make its snapshot consistent across this call (KvStore holds every
  /// stripe lock), so that no write can land in a pre-rotation segment yet
  /// be missing from the snapshot.
  std::uint64_t PrepareCheckpoint();

  /// Phase 2: writes the snapshot file, commits it via the manifest, and
  /// garbage-collects WAL segments before `wal_start` plus old snapshots.
  Status CommitCheckpoint(
      std::vector<std::pair<std::string, std::string>> rows,
      std::uint64_t wal_start);

  /// Persists `epoch` in the manifest (cluster epoch survives restarts so
  /// gatekeeper clocks stay monotonic). Cheap: rewrites the tiny manifest.
  Status PersistEpoch(std::uint32_t epoch);
  std::uint32_t recovered_epoch() const {
    MutexLock lk(manifest_mu_);
    return manifest_.epoch;
  }

  std::uint64_t wal_bytes_since_checkpoint() const {
    return wal_bytes_since_checkpoint_.load(std::memory_order_relaxed);
  }
  std::uint64_t checkpoints_taken() const {
    return checkpoints_taken_.load(std::memory_order_relaxed);
  }
  const Wal::Stats& wal_stats() const { return wal_->stats(); }
  const StorageOptions& options() const { return options_; }

  /// Exports WAL / checkpoint instruments under "storage." names and
  /// installs the fsync-latency histogram on the WAL. The registry must
  /// outlive this engine (the destructor drops the names).
  void SetMetrics(obs::MetricsRegistry* registry);

 private:
  explicit StorageEngine(StorageOptions options);

  StorageOptions options_;
  int lock_fd_ = -1;  // flock()ed <data_dir>/LOCK
  std::unique_ptr<Wal> wal_;
  mutable Mutex manifest_mu_;
  Manifest manifest_ GUARDED_BY(manifest_mu_);
  std::atomic<std::uint64_t> wal_bytes_since_checkpoint_{0};
  std::atomic<std::uint64_t> checkpoints_taken_{0};
  obs::MetricsRegistry* metrics_ = nullptr;
  /// End-to-end CommitCheckpoint duration (snapshot write + manifest
  /// commit + GC). Owned by metrics_; null when metrics are off.
  obs::LatencyHistogram* checkpoint_duration_ = nullptr;
};

}  // namespace storage
}  // namespace weaver
