#include "storage/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/serde.h"
#include "storage/crc32.h"
#include "storage/io_util.h"

namespace weaver {
namespace storage {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x50435657;  // "WVCP"
constexpr std::uint32_t kManifestMagic = 0x464D5657;    // "WVMF"
constexpr const char* kManifestName = "MANIFEST";

/// Writes `content`, fsyncs, and renames onto `final_name` -- the standard
/// atomic-replace dance. The rename is the commit point.
Status AtomicWrite(const std::string& dir, const std::string& final_name,
                   const std::string& content) {
  const std::string tmp_path = dir + "/" + final_name + ".tmp";
  const std::string final_path = dir + "/" + final_name;
  const int fd = ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create " + tmp_path + ": " +
                            std::strerror(errno));
  }
  const Status written = WriteFully(fd, content.data(), content.size());
  if (!written.ok()) {
    ::close(fd);
    return written;
  }
  ::fsync(fd);
  ::close(fd);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Status::Internal("rename to " + final_path + " failed: " +
                            std::strerror(errno));
  }
  SyncDir(dir);  // persist the rename itself
  return Status::Ok();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot read " + path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

}  // namespace

std::string CheckpointFileName(std::uint64_t id) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "checkpoint-%020" PRIu64 ".snap", id);
  return buf;
}

Status WriteManifest(const std::string& dir, const Manifest& manifest) {
  ByteWriter w;
  w.PutU32(kManifestMagic);
  w.PutU64(manifest.checkpoint_id);
  w.PutU64(manifest.wal_start);
  w.PutU32(manifest.epoch);
  std::string body = w.Take();
  ByteWriter crc;
  crc.PutU32(Crc32(body));
  body += crc.Take();
  return AtomicWrite(dir, kManifestName, body);
}

Result<Manifest> ReadManifest(const std::string& dir) {
  auto data = ReadWholeFile(dir + "/" + kManifestName);
  if (!data.ok()) return data.status();
  if (data->size() < sizeof(std::uint32_t)) {
    return Status::Internal("MANIFEST truncated");
  }
  const std::string_view body(data->data(),
                              data->size() - sizeof(std::uint32_t));
  ByteReader tail(
      std::string_view(data->data() + body.size(), sizeof(std::uint32_t)));
  std::uint32_t crc = 0;
  WEAVER_RETURN_IF_ERROR(tail.GetU32(&crc));
  if (Crc32(body) != crc) return Status::Internal("MANIFEST checksum mismatch");

  ByteReader r(body);
  std::uint32_t magic = 0;
  Manifest manifest;
  WEAVER_RETURN_IF_ERROR(r.GetU32(&magic));
  if (magic != kManifestMagic) return Status::Internal("MANIFEST bad magic");
  WEAVER_RETURN_IF_ERROR(r.GetU64(&manifest.checkpoint_id));
  WEAVER_RETURN_IF_ERROR(r.GetU64(&manifest.wal_start));
  WEAVER_RETURN_IF_ERROR(r.GetU32(&manifest.epoch));
  return manifest;
}

Status WriteCheckpointFile(
    const std::string& dir, std::uint64_t id,
    std::vector<std::pair<std::string, std::string>>* rows) {
  std::sort(rows->begin(), rows->end());
  ByteWriter w;
  w.PutU32(kCheckpointMagic);
  w.PutU64(rows->size());
  for (const auto& [key, value] : *rows) {
    w.PutString(key);
    w.PutString(value);
  }
  std::string body = w.Take();
  ByteWriter crc;
  crc.PutU32(Crc32(body));
  body += crc.Take();
  return AtomicWrite(dir, CheckpointFileName(id), body);
}

Status ReadCheckpointFile(
    const std::string& dir, std::uint64_t id,
    const std::function<void(std::string&&, std::string&&)>& install) {
  const std::string name = CheckpointFileName(id);
  auto data = ReadWholeFile(dir + "/" + name);
  if (!data.ok()) return data.status();
  if (data->size() < sizeof(std::uint32_t)) {
    return Status::Internal(name + " truncated");
  }
  const std::string_view body(data->data(),
                              data->size() - sizeof(std::uint32_t));
  ByteReader tail(
      std::string_view(data->data() + body.size(), sizeof(std::uint32_t)));
  std::uint32_t crc = 0;
  WEAVER_RETURN_IF_ERROR(tail.GetU32(&crc));
  if (Crc32(body) != crc) {
    return Status::Internal(name + " checksum mismatch");
  }

  ByteReader r(body);
  std::uint32_t magic = 0;
  WEAVER_RETURN_IF_ERROR(r.GetU32(&magic));
  if (magic != kCheckpointMagic) return Status::Internal(name + " bad magic");
  std::uint64_t count = 0;
  WEAVER_RETURN_IF_ERROR(r.GetU64(&count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string key;
    std::string value;
    WEAVER_RETURN_IF_ERROR(r.GetString(&key));
    WEAVER_RETURN_IF_ERROR(r.GetString(&value));
    install(std::move(key), std::move(value));
  }
  return Status::Ok();
}

void DeleteCheckpointsExcept(const std::string& dir, std::uint64_t keep_id) {
  const std::string keep = CheckpointFileName(keep_id);
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    std::uint64_t id = 0;
    if (std::sscanf(name.c_str(), "checkpoint-%20" SCNu64 ".snap", &id) ==
            1 &&
        name != keep) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }
}

}  // namespace storage
}  // namespace weaver
