#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/clock.h"
#include "common/serde.h"
#include "storage/crc32.h"
#include "storage/io_util.h"

namespace weaver {
namespace storage {

namespace fs = std::filesystem;

namespace {

constexpr std::size_t kFrameHeaderBytes = 8;  // u32 crc + u32 len
constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;

}  // namespace

std::string Wal::SegmentFileName(std::uint64_t id) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020" PRIu64 ".log", id);
  return buf;
}

std::vector<std::pair<std::uint64_t, std::string>> Wal::ListSegments(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    std::uint64_t id = 0;
    if (std::sscanf(name.c_str(), "wal-%20" SCNu64 ".log", &id) == 1) {
      out.emplace_back(id, name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Wal::Wal(std::string dir, const StorageOptions& options)
    : dir_(std::move(dir)), options_(options) {}

Wal::~Wal() {
  MutexLock lk(mu_);
  if (fd_ >= 0) {
    if (options_.fsync == FsyncPolicy::kAlways) ::fdatasync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<Wal>> Wal::Open(std::string dir,
                                       const StorageOptions& options,
                                       std::uint64_t first_segment) {
  auto wal = std::unique_ptr<Wal>(new Wal(std::move(dir), options));
  std::uint64_t next = std::max<std::uint64_t>(first_segment, 1);
  for (const auto& [id, _] : ListSegments(wal->dir_)) {
    next = std::max(next, id + 1);
  }
  MutexLock lk(wal->mu_);
  WEAVER_RETURN_IF_ERROR(wal->OpenSegmentLocked(next));
  return wal;
}

Status Wal::OpenSegmentLocked(std::uint64_t id) {
  if (fd_ >= 0) {
    if (options_.fsync == FsyncPolicy::kAlways) ::fdatasync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  const std::string path = dir_ + "/" + SegmentFileName(id);
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open WAL segment " + path + ": " +
                            std::strerror(errno));
  }
  if (options_.fsync == FsyncPolicy::kAlways) SyncDir(dir_);
  fd_ = fd;
  active_segment_ = id;
  active_segment_bytes_ = 0;
  return Status::Ok();
}

std::uint64_t Wal::RotateLocked(MutexLock& lk) {
  // Wait out any in-flight group-commit sync: the leader holds the old fd.
  while (sync_in_progress_) sync_cv_.wait(lk.native());
  if (options_.fsync == FsyncPolicy::kAlways && fd_ >= 0) {
    // Everything appended so far lives in segments being retired; cover it
    // before the fd goes away so later leaders need only sync the new fd.
    ::fdatasync(fd_);
    durable_offset_ = appended_offset_;
    sync_cv_.notify_all();
  }
  const Status st = OpenSegmentLocked(active_segment_ + 1);
  (void)st;  // open failures surface on the next Append
  stats_.rotations.fetch_add(1, std::memory_order_relaxed);
  return active_segment_;
}

std::uint64_t Wal::Rotate() {
  MutexLock lk(mu_);
  return RotateLocked(lk);
}

Status Wal::Append(std::string_view payload) {
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("WAL payload too large");
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  {
    ByteWriter header;
    header.PutU32(Crc32(payload));
    header.PutU32(static_cast<std::uint32_t>(payload.size()));
    frame = header.Take();
  }
  frame.append(payload.data(), payload.size());

  MutexLock lk(mu_);
  if (fd_ < 0) return Status::Internal("WAL has no active segment");
  if (needs_rotate_ || (active_segment_bytes_ >= options_.segment_size_bytes &&
                        active_segment_bytes_ > 0)) {
    RotateLocked(lk);
    needs_rotate_ = false;
  }
  const Status written = WriteFully(fd_, frame.data(), frame.size());
  if (!written.ok()) {
    // A partial frame may now sit at the segment tail. Later appends must
    // not land after it -- replay stops a segment at its first bad frame,
    // so records behind the tear would be silently dropped. Cut the
    // segment back to its last good frame; if even that fails, poison the
    // segment so the next append starts a fresh one.
    if (::ftruncate(fd_, static_cast<off_t>(active_segment_bytes_)) != 0) {
      needs_rotate_ = true;
    }
    return written;
  }
  active_segment_bytes_ += frame.size();
  appended_offset_ += frame.size();
  const std::uint64_t my_offset = appended_offset_;
  stats_.appends.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_appended.fetch_add(frame.size(), std::memory_order_relaxed);

  if (options_.fsync != FsyncPolicy::kAlways) return Status::Ok();

  // Group commit: the first writer to arrive while no sync is running
  // becomes the leader and syncs the entire appended prefix; everyone else
  // waits for the durable watermark to pass their frame.
  while (durable_offset_ < my_offset) {
    if (!sync_in_progress_) {
      sync_in_progress_ = true;
      const std::uint64_t target = appended_offset_;
      const int fd = fd_;
      lk.Unlock();
      const std::uint64_t sync_start = NowNanos();
      ::fdatasync(fd);
      if (auto* hist = fsync_hist_.load(std::memory_order_acquire)) {
        hist->Record(NowNanos() - sync_start);
      }
      lk.Lock();
      durable_offset_ = std::max(durable_offset_, target);
      sync_in_progress_ = false;
      stats_.syncs.fetch_add(1, std::memory_order_relaxed);
      sync_cv_.notify_all();
    } else {
      sync_cv_.wait(lk.native());
    }
  }
  return Status::Ok();
}

Status Wal::DeleteSegmentsBefore(std::uint64_t segment_id) {
  for (const auto& [id, name] : ListSegments(dir_)) {
    if (id >= segment_id) continue;
    std::error_code ec;
    fs::remove(fs::path(dir_) / name, ec);
    if (ec) {
      return Status::Internal("cannot remove WAL segment " + name + ": " +
                              ec.message());
    }
  }
  return Status::Ok();
}

std::uint64_t Wal::SegmentBytes(const std::string& dir,
                                std::uint64_t from_segment) {
  std::uint64_t total = 0;
  for (const auto& [id, name] : ListSegments(dir)) {
    if (id < from_segment) continue;
    std::error_code ec;
    const auto size = fs::file_size(fs::path(dir) / name, ec);
    if (!ec) total += size;
  }
  return total;
}

Result<Wal::ReplayResult> Wal::Replay(
    const std::string& dir, std::uint64_t from_segment,
    const std::function<Status(std::string_view)>& apply) {
  ReplayResult result;
  for (const auto& [id, name] : ListSegments(dir)) {
    if (id < from_segment) continue;
    const std::string path = (fs::path(dir) / name).string();
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::Internal("cannot read WAL segment " + path);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    ++result.segments;

    std::size_t pos = 0;
    while (pos < data.size()) {
      if (data.size() - pos < kFrameHeaderBytes) {
        ++result.torn_tails;  // truncated header: torn tail
        break;
      }
      std::uint32_t crc = 0;
      std::uint32_t len = 0;
      std::memcpy(&crc, data.data() + pos, sizeof(crc));
      std::memcpy(&len, data.data() + pos + sizeof(crc), sizeof(len));
      if (len > kMaxPayloadBytes ||
          data.size() - pos - kFrameHeaderBytes < len) {
        ++result.torn_tails;  // payload runs past EOF: torn tail
        break;
      }
      const std::string_view payload(data.data() + pos + kFrameHeaderBytes,
                                     len);
      if (Crc32(payload) != crc) {
        // Corrupt or half-written frame. Everything after it in this
        // segment is untrustworthy; later segments were written by later
        // runs and carry independently-framed records, so keep going.
        ++result.torn_tails;
        break;
      }
      WEAVER_RETURN_IF_ERROR(apply(payload));
      ++result.records;
      pos += kFrameHeaderBytes + len;
    }
  }
  return result;
}

}  // namespace storage
}  // namespace weaver
