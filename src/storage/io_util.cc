#include "storage/io_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace weaver {
namespace storage {

Status WriteFully(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("write failed: ") +
                              std::strerror(errno));
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return Status::Ok();
}

void SyncDir(const std::string& dir) {
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace storage
}  // namespace weaver
