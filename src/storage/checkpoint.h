// Checkpoint files and the manifest that binds them to the WAL.
//
// A checkpoint is a full, sorted dump of the store's committed state at a
// consistent cut:
//
//   checkpoint-<20-digit id>.snap :=
//     [u32 magic "WVCP"] [u64 row_count]
//     row_count x ( [u32 klen][key bytes] [u32 vlen][value bytes] )
//     [u32 crc32(everything above)]
//
// The MANIFEST file records which checkpoint is current and the first WAL
// segment whose records are NOT covered by it:
//
//   MANIFEST := [u32 magic "WVMF"] [u64 checkpoint_id] [u64 wal_start]
//               [u32 epoch] [u32 crc32(everything above)]
//
// (checkpoint_id 0 means "no checkpoint yet: replay the WAL from
// wal_start". epoch is the cluster epoch persisted for gatekeeper clock
// monotonicity across restarts.) Both files are written to a temp name,
// fsynced, and renamed into place, so a crash mid-checkpoint leaves the
// previous manifest -- and therefore the previous checkpoint + longer WAL
// replay -- fully intact.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace weaver {
namespace storage {

struct Manifest {
  std::uint64_t checkpoint_id = 0;  // 0 = no checkpoint
  std::uint64_t wal_start = 1;      // first WAL segment to replay
  std::uint32_t epoch = 0;          // persisted cluster epoch
};

std::string CheckpointFileName(std::uint64_t id);

/// Atomically (tmp + fsync + rename) replaces the MANIFEST.
Status WriteManifest(const std::string& dir, const Manifest& manifest);
/// Reads the MANIFEST; NotFound when absent, Internal when corrupt.
Result<Manifest> ReadManifest(const std::string& dir);

/// Writes checkpoint `id` containing `rows` (sorted by key on disk;
/// `rows` is sorted in place). Atomic via tmp + fsync + rename.
Status WriteCheckpointFile(
    const std::string& dir, std::uint64_t id,
    std::vector<std::pair<std::string, std::string>>* rows);

/// Streams every row of checkpoint `id` into `install`. A truncated or
/// checksum-mismatched file is an error: unlike a WAL tail, a checkpoint
/// is renamed into place only after a full fsync, so damage means real
/// corruption, not a tolerable torn write.
Status ReadCheckpointFile(
    const std::string& dir, std::uint64_t id,
    const std::function<void(std::string&&, std::string&&)>& install);

/// Removes checkpoint files other than `keep_id` (obsolete snapshots).
void DeleteCheckpointsExcept(const std::string& dir, std::uint64_t keep_id);

}  // namespace storage
}  // namespace weaver
