// CRC32 (IEEE 802.3, polynomial 0xEDB88320), used to frame WAL records and
// seal checkpoint files so recovery can detect torn or corrupted data.
#pragma once

#include <cstdint>
#include <string_view>

namespace weaver {
namespace storage {

/// CRC of `data` continuing from `seed` (pass the previous return value to
/// checksum data in chunks; default seed starts a fresh checksum).
std::uint32_t Crc32(std::string_view data, std::uint32_t seed = 0);

}  // namespace storage
}  // namespace weaver
