// Segmented write-ahead log with CRC32-framed records and group commit.
//
// On-disk layout (see docs/storage.md): the log is a sequence of segment
// files named wal-<20-digit id>.log. Each segment is a stream of frames:
//
//   [u32 crc32(payload)] [u32 payload_len] [payload bytes]
//
// all little-endian. A frame whose header is truncated, whose payload runs
// past the end of the file, or whose CRC does not match terminates replay
// of that segment (the classic torn-tail rule: an incompletely written
// record was never acknowledged, so dropping it is correct). Replay then
// continues with the next segment -- every process run appends to a fresh
// segment, so at most the tail frame of each run's segment can be torn.
//
// Durability: with FsyncPolicy::kAlways, Append() returns only after an
// fdatasync covers the appended frame. Concurrent appenders share syncs
// (group commit): the first waiter becomes the sync leader and flushes the
// entire appended prefix; the rest simply wait for the durable watermark
// to pass their frame. With kNever, Append() returns once the frame is in
// the OS page cache.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "obs/metrics.h"
#include "storage/storage_options.h"

namespace weaver {
namespace storage {

class Wal {
 public:
  struct Stats {
    std::atomic<std::uint64_t> appends{0};
    std::atomic<std::uint64_t> syncs{0};
    std::atomic<std::uint64_t> bytes_appended{0};
    std::atomic<std::uint64_t> rotations{0};
  };

  struct ReplayResult {
    std::uint64_t records = 0;
    std::uint64_t segments = 0;
    /// Segments whose replay stopped at a torn or corrupt tail frame.
    std::uint64_t torn_tails = 0;
  };

  /// Opens the log rooted at `dir`, starting a fresh active segment with an
  /// id greater than every existing segment (and at least `first_segment`).
  /// Never appends to a pre-existing file: a crashed run may have left its
  /// last frame torn, and writing past the tear would corrupt the log.
  static Result<std::unique_ptr<Wal>> Open(std::string dir,
                                           const StorageOptions& options,
                                           std::uint64_t first_segment = 1);
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one framed record; durable per the fsync policy on return.
  /// Rotates to a new segment first when the active one is over-size.
  Status Append(std::string_view payload);

  /// Forces rotation to a fresh segment and returns its id. Records
  /// appended from now on land in segments >= the returned id, which makes
  /// the id a replay lower bound for a checkpoint taken "now" (the caller
  /// must exclude concurrent appenders across the snapshot + Rotate pair).
  std::uint64_t Rotate();

  /// Removes segment files with id < `segment_id` (obsoleted by a
  /// checkpoint whose manifest records `segment_id` as the replay start).
  Status DeleteSegmentsBefore(std::uint64_t segment_id);

  std::uint64_t active_segment() const {
    MutexLock lk(mu_);
    return active_segment_;
  }
  const Stats& stats() const { return stats_; }

  /// Installs a histogram that receives the duration of every group-commit
  /// fdatasync ("storage.fsync_latency"). The histogram must outlive this
  /// log (StorageEngine::SetMetrics owns the wiring).
  void SetFsyncHistogram(obs::LatencyHistogram* h) {
    fsync_hist_.store(h, std::memory_order_release);
  }

  /// Replays every frame of every segment with id >= `from_segment`, in
  /// segment order, invoking `apply` on each payload. Stops a segment at
  /// its first invalid frame (torn tail) and moves on; a failing `apply`
  /// aborts the whole replay with its status.
  static Result<ReplayResult> Replay(
      const std::string& dir, std::uint64_t from_segment,
      const std::function<Status(std::string_view)>& apply);

  /// Total size in bytes of segment files with id >= `from_segment`.
  static std::uint64_t SegmentBytes(const std::string& dir,
                                    std::uint64_t from_segment);

  static std::string SegmentFileName(std::uint64_t id);
  /// Sorted (id, filename) pairs of the segments present in `dir`.
  static std::vector<std::pair<std::uint64_t, std::string>> ListSegments(
      const std::string& dir);

 private:
  Wal(std::string dir, const StorageOptions& options);

  /// Opens segment file `id` for appending; requires mu_ held.
  Status OpenSegmentLocked(std::uint64_t id) REQUIRES(mu_);
  /// Rotates to a fresh segment; `lk` must hold mu_ (it is dropped and
  /// retaken while waiting out an in-flight group-commit sync).
  std::uint64_t RotateLocked(MutexLock& lk) REQUIRES(mu_);

  const std::string dir_;
  const StorageOptions options_;

  mutable Mutex mu_;
  std::condition_variable sync_cv_;
  int fd_ GUARDED_BY(mu_) = -1;
  std::uint64_t active_segment_ GUARDED_BY(mu_) = 0;
  std::uint64_t active_segment_bytes_ GUARDED_BY(mu_) = 0;
  /// Logical offset of the end of the last appended frame (monotonic
  /// across rotations) and the prefix known durable. Group commit works in
  /// terms of these watermarks.
  std::uint64_t appended_offset_ GUARDED_BY(mu_) = 0;
  std::uint64_t durable_offset_ GUARDED_BY(mu_) = 0;
  bool sync_in_progress_ GUARDED_BY(mu_) = false;
  /// Set when a failed append may have left a partial frame that could
  /// not be truncated away: the next append must rotate first so no
  /// acknowledged record lands behind a torn frame.
  bool needs_rotate_ GUARDED_BY(mu_) = false;

  Stats stats_;
  std::atomic<obs::LatencyHistogram*> fsync_hist_{nullptr};
};

}  // namespace storage
}  // namespace weaver
