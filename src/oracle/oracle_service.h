// OracleService: the timeline oracle as a crash-surviving state machine
// (docs/oracle_service.md).
//
// Wraps the authoritative TimelineOracle with (a) a batched request
// handler speaking the OracleRequest/OracleReply wire schemas and (b) a
// durable changelog built on the storage layer's WAL + checkpoint
// machinery. Every refinement the oracle commits to -- an explicit
// happens-before edge, a GC watermark -- is appended to the changelog
// BEFORE the decision is handed back to the requester, so an answered
// refinement can never be forgotten by a crash (the same WAL-first rule
// the kv store uses for acknowledged writes). On restart, Open() rebuilds
// the dependency DAG from the latest snapshot plus a torn-tail-tolerant
// WAL replay; periodic snapshots (checkpoint file + MANIFEST + segment
// truncation) bound replay time.
//
// The service is deliberately transport-agnostic: Handle() maps one
// request to one reply, and coord/serverd.cc owns the process shell that
// pumps bus messages through it (weaver-oracled). Handle() is safe to
// call from multiple threads; a single log mutex serializes state
// mutation with changelog append so the on-disk record order always
// matches the apply order (what makes replay equivalent to live state).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/annotations.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/messages.h"
#include "oracle/timeline_oracle.h"
#include "storage/storage_options.h"
#include "storage/wal.h"

namespace weaver {

class OracleService {
 public:
  struct Options {
    /// Changelog root directory. Empty disables durability: the service
    /// is a plain in-memory oracle behind the same RPC surface.
    std::string data_dir;
    FsyncPolicy fsync = FsyncPolicy::kNever;
    /// Snapshot (checkpoint + manifest + WAL truncation) after this many
    /// changelog records since the last snapshot. 0 = never snapshot.
    std::uint64_t snapshot_every_records = 8192;
  };

  struct Stats {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> changelog_records{0};
    std::atomic<std::uint64_t> snapshots{0};
    std::atomic<std::uint64_t> sync_dumps{0};
    /// Recovery: records applied from the snapshot + WAL at Open().
    std::atomic<std::uint64_t> replayed_records{0};
    std::atomic<std::uint64_t> replay_torn_tails{0};
  };

  /// Opens the service, replaying any durable state found under
  /// options.data_dir (snapshot first, then WAL segments from the
  /// manifest's replay start; a torn tail record is dropped, everything
  /// before it is applied).
  static Result<std::unique_ptr<OracleService>> Open(Options options);

  OracleService(const OracleService&) = delete;
  OracleService& operator=(const OracleService&) = delete;

  /// Applies one batched request and fills the reply positionally.
  /// Mutating ops are durable in the changelog before their decision is
  /// recorded in the reply. Thread-safe.
  void Handle(const OracleRequestMessage& req, OracleReplyMessage* reply);

  /// The wrapped oracle (metrics, tests). Queries through it bypass the
  /// changelog; mutations must go through Handle so they are logged.
  TimelineOracle& oracle() { return oracle_; }
  const TimelineOracle& oracle() const { return oracle_; }

  const Stats& stats() const { return stats_; }

 private:
  explicit OracleService(Options options);

  /// Replays snapshot + WAL into the oracle. Called once from Open().
  Status Recover();
  /// Applies one changelog record payload to the oracle.
  Status ApplyRecord(std::string_view payload);
  /// Appends one record; no-op when durability is disabled.
  Status AppendRecord(const std::string& payload) REQUIRES(log_mu_);
  void MaybeSnapshotLocked() REQUIRES(log_mu_);

  Options options_;
  TimelineOracle oracle_;

  /// Serializes oracle mutation + changelog append (and snapshots), so
  /// the changelog's record order is exactly the oracle's apply order.
  Mutex log_mu_;
  std::unique_ptr<storage::Wal> wal_ GUARDED_BY(log_mu_);
  std::uint64_t records_since_snapshot_ GUARDED_BY(log_mu_) = 0;
  std::uint64_t checkpoint_id_ GUARDED_BY(log_mu_) = 0;

  Stats stats_;
};

}  // namespace weaver
