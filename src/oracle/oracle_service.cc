#include "oracle/oracle_service.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "core/message_codec.h"
#include "storage/checkpoint.h"

namespace weaver {

namespace {

// Changelog record kinds. Records reuse the wire codec's canonical
// timestamp/clock encodings (message_codec.h), so a record is one kind
// byte followed by wire-encoded operands.
constexpr std::uint8_t kRecordEdge = 1;     // ts_before, ts_after
constexpr std::uint8_t kRecordCollect = 2;  // watermark clock

std::string EncodeEdgeRecord(const RefinableTimestamp& before,
                             const RefinableTimestamp& after) {
  wire::Writer w;
  w.U8(kRecordEdge);
  EncodeTimestamp(before, &w);
  EncodeTimestamp(after, &w);
  return w.Take();
}

std::string EncodeCollectRecord(const VectorClock& watermark) {
  wire::Writer w;
  w.U8(kRecordCollect);
  EncodeVectorClock(watermark, &w);
  return w.Take();
}

std::string CheckpointRowKey(std::uint64_t index) {
  char buf[21];
  std::snprintf(buf, sizeof buf, "%020llu",
                static_cast<unsigned long long>(index));
  return std::string(buf);
}

}  // namespace

OracleService::OracleService(Options options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<OracleService>> OracleService::Open(Options options) {
  std::unique_ptr<OracleService> service(new OracleService(std::move(options)));
  WEAVER_RETURN_IF_ERROR(service->Recover());
  return service;
}

Status OracleService::ApplyRecord(std::string_view payload) {
  wire::Reader r(payload);
  std::uint8_t kind = 0;
  WEAVER_RETURN_IF_ERROR(r.U8(&kind));
  switch (kind) {
    case kRecordEdge: {
      RefinableTimestamp before, after;
      WEAVER_RETURN_IF_ERROR(DecodeTimestamp(&r, &before));
      WEAVER_RETURN_IF_ERROR(DecodeTimestamp(&r, &after));
      // The live oracle only logged edges it established, so replaying
      // them in log order onto the rebuilt DAG can never cycle; a
      // FailedPrecondition here means a corrupt (not torn -- CRC passed)
      // log and must fail recovery loudly.
      return oracle_.AssignHappensBefore(before, after);
    }
    case kRecordCollect: {
      VectorClock watermark;
      WEAVER_RETURN_IF_ERROR(DecodeVectorClock(&r, &watermark));
      oracle_.CollectBefore(watermark);
      return Status::Ok();
    }
    default:
      return Status::InvalidArgument("unknown oracle changelog record kind " +
                                     std::to_string(kind));
  }
}

Status OracleService::Recover() {
  if (options_.data_dir.empty()) return Status::Ok();

  storage::Manifest manifest;
  auto read = storage::ReadManifest(options_.data_dir);
  if (read.ok()) {
    manifest = *read;
  } else if (!read.status().IsNotFound()) {
    return read.status();
  }

  if (manifest.checkpoint_id != 0) {
    Status apply_status = Status::Ok();
    WEAVER_RETURN_IF_ERROR(storage::ReadCheckpointFile(
        options_.data_dir, manifest.checkpoint_id,
        [&](std::string&& /*key*/, std::string&& value) {
          if (!apply_status.ok()) return;
          apply_status = ApplyRecord(value);
          if (apply_status.ok()) {
            stats_.replayed_records.fetch_add(1, std::memory_order_relaxed);
          }
        }));
    WEAVER_RETURN_IF_ERROR(apply_status);
  }

  auto replayed = storage::Wal::Replay(
      options_.data_dir, manifest.wal_start,
      [&](std::string_view payload) { return ApplyRecord(payload); });
  WEAVER_RETURN_IF_ERROR(replayed.status());
  stats_.replayed_records.fetch_add(replayed->records,
                                    std::memory_order_relaxed);
  stats_.replay_torn_tails.fetch_add(replayed->torn_tails,
                                     std::memory_order_relaxed);

  StorageOptions storage_options;
  storage_options.data_dir = options_.data_dir;
  storage_options.fsync = options_.fsync;
  auto wal = storage::Wal::Open(options_.data_dir, storage_options,
                                manifest.wal_start);
  WEAVER_RETURN_IF_ERROR(wal.status());
  MutexLock lk(log_mu_);
  wal_ = std::move(*wal);
  checkpoint_id_ = manifest.checkpoint_id;
  return Status::Ok();
}

Status OracleService::AppendRecord(const std::string& payload) {
  if (wal_ == nullptr) return Status::Ok();
  WEAVER_RETURN_IF_ERROR(wal_->Append(payload));
  stats_.changelog_records.fetch_add(1, std::memory_order_relaxed);
  ++records_since_snapshot_;
  // The snapshot trigger lives at the end of Handle, NOT here: the
  // caller has not yet applied this record to the DAG, and a snapshot
  // taken now would both miss its effect and truncate its WAL segment.
  return Status::Ok();
}

void OracleService::MaybeSnapshotLocked() {
  if (wal_ == nullptr || options_.snapshot_every_records == 0 ||
      records_since_snapshot_ < options_.snapshot_every_records) {
    return;
  }
  // Rotation first: records appended after this point land in segments
  // >= wal_start and are NOT covered by the snapshot about to be taken.
  // (We hold log_mu_, so no record can slip between the rotate and the
  // dump.) A crash anywhere in this sequence is safe: the manifest is
  // replaced atomically, so recovery either sees the old snapshot + the
  // full WAL or the new snapshot + the truncated WAL.
  const std::uint64_t wal_start = wal_->Rotate();
  const auto edges = oracle_.DumpEdges();
  std::vector<std::pair<std::string, std::string>> rows;
  rows.reserve(edges.size());
  std::uint64_t index = 0;
  for (const auto& [before, after] : edges) {
    rows.emplace_back(CheckpointRowKey(index++),
                      EncodeEdgeRecord(before, after));
  }
  const std::uint64_t id = checkpoint_id_ + 1;
  Status st = storage::WriteCheckpointFile(options_.data_dir, id, &rows);
  if (st.ok()) {
    storage::Manifest manifest;
    manifest.checkpoint_id = id;
    manifest.wal_start = wal_start;
    st = storage::WriteManifest(options_.data_dir, manifest);
  }
  if (!st.ok()) {
    // Snapshot failure is not fatal: the old manifest still covers the
    // full WAL. Try again after another snapshot interval.
    std::fprintf(stderr, "weaver-oracled: snapshot failed: %s\n",
                 st.ToString().c_str());
    records_since_snapshot_ = 0;
    return;
  }
  checkpoint_id_ = id;
  records_since_snapshot_ = 0;
  (void)wal_->DeleteSegmentsBefore(wal_start);
  storage::DeleteCheckpointsExcept(options_.data_dir, id);
  stats_.snapshots.fetch_add(1, std::memory_order_relaxed);
}

void OracleService::Handle(const OracleRequestMessage& req,
                           OracleReplyMessage* reply) {
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  stats_.ops.fetch_add(req.ops.size(), std::memory_order_relaxed);
  reply->request_id = req.request_id;
  reply->status = Status::Ok();
  reply->decisions.clear();
  reply->decisions.resize(req.ops.size());
  reply->edges.clear();

  MutexLock lk(log_mu_);
  for (std::size_t i = 0; i < req.ops.size(); ++i) {
    const OracleOp& op = req.ops[i];
    OracleDecision& decision = reply->decisions[i];
    switch (op.type) {
      case OracleOp::kOrderPair: {
        // Split OrderPair into query + explicit assignment so the
        // changelog records exactly the edges that were established
        // (already-determined pairs append nothing). log_mu_ makes the
        // two steps atomic with respect to other requests.
        ClockOrder order = oracle_.QueryOrder(op.a, op.b);
        if (order == ClockOrder::kConcurrent) {
          const bool a_first = op.prefer == 0;
          const RefinableTimestamp& first = a_first ? op.a : op.b;
          const RefinableTimestamp& second = a_first ? op.b : op.a;
          decision.status = AppendRecord(EncodeEdgeRecord(first, second));
          if (decision.status.ok()) {
            decision.status = oracle_.AssignHappensBefore(first, second);
          }
          order = a_first ? ClockOrder::kBefore : ClockOrder::kAfter;
        }
        decision.order = static_cast<std::uint8_t>(order);
        break;
      }
      case OracleOp::kAssignEdge: {
        // Query first so the changelog only grows for genuinely new
        // edges: an implied order appends nothing, and a cycle rejection
        // must be detected BEFORE logging -- a logged-but-rejected edge
        // would poison replay.
        const ClockOrder existing = oracle_.QueryOrder(op.a, op.b);
        if (existing == ClockOrder::kBefore ||
            existing == ClockOrder::kEqual) {
          decision.status = Status::Ok();
        } else if (existing == ClockOrder::kAfter) {
          decision.status = Status::FailedPrecondition(
              "happens-before assignment would create a cycle: " +
              op.b.ToString() + " already precedes " + op.a.ToString());
        } else {
          decision.status = AppendRecord(EncodeEdgeRecord(op.a, op.b));
          if (decision.status.ok()) {
            decision.status = oracle_.AssignHappensBefore(op.a, op.b);
          }
        }
        decision.order = static_cast<std::uint8_t>(
            decision.status.ok() ? ClockOrder::kBefore
                                 : ClockOrder::kConcurrent);
        break;
      }
      case OracleOp::kCollect: {
        decision.status = AppendRecord(EncodeCollectRecord(op.watermark));
        if (decision.status.ok()) oracle_.CollectBefore(op.watermark);
        break;
      }
      case OracleOp::kSync: {
        reply->edges = oracle_.DumpEdges();
        stats_.sync_dumps.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      default:
        decision.status =
            Status::InvalidArgument("unknown oracle op type " +
                                    std::to_string(op.type));
        break;
    }
  }
  // Snapshot only once every logged record's effect is in the DAG --
  // the dump must cover everything the rotated-away segments held.
  MaybeSnapshotLocked();
}

}  // namespace weaver
