// OracleClient: every process's handle on the timeline oracle
// (docs/oracle_service.md).
//
// Two modes behind one surface:
//
//   * Local -- wraps a TimelineOracle owned by the same process. Every
//     call is a passthrough; nothing can fail. This is the single-process
//     deployment, unchanged.
//
//   * Remote -- the oracle is authoritative in a weaver-oracled process.
//     The client owns a local TimelineOracle REPLICA that caches every
//     decision it has learned: refinements are irrevocable and monotonic
//     (paper §3.4), so a cached answer is always still correct, and the
//     paper's refinable-timestamps insight means most comparisons resolve
//     by vector clocks or the replica without ever leaving the process.
//     Only genuinely undetermined pairs become a batched OracleRequest
//     RPC; the authoritative decisions are folded back into the replica.
//
// Remote calls carry deadline/retry-with-backoff semantics: an attempt
// that gets no reply within rpc_timeout is retried (fresh request id, so
// a late reply to the old id is dropped) until total_deadline, after
// which the call surfaces `Unavailable` -- the caller-visible shape of an
// oracle failover in progress. Callers treat Unavailable as retriable
// (shards park the affected wave or abort the program; clients re-run).
//
// Threading: OrderPairs/OrderPair/AssignHappensBefore/Sync block the
// calling thread while an RPC is in flight. OnReply is called from the
// wire receive thread (the reply endpoint's inline bus handler) and only
// touches the pending-call table, so a blocked caller and the receiver
// never deadlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/messages.h"
#include "net/bus.h"
#include "oracle/timeline_oracle.h"

namespace weaver {

class OracleClient {
 public:
  struct Options {
    /// Local mode: the in-process authoritative oracle. When set, every
    /// other field is ignored.
    TimelineOracle* local = nullptr;

    /// Remote mode: the bus carrying OracleRequest/OracleReply frames.
    MessageBus* bus = nullptr;
    /// This client's reply endpoint (the owner registers an inline
    /// handler there that forwards OracleReplyMessages to OnReply).
    EndpointId self = 0;
    /// The oracle service's endpoint.
    EndpointId service = 0;

    /// Per-attempt reply timeout. An attempt that expires is retried
    /// with a fresh request id.
    std::uint64_t rpc_timeout_micros = 250'000;
    /// Total budget across attempts; exhausted -> Unavailable.
    std::uint64_t total_deadline_micros = 3'000'000;
    /// Exponential backoff between attempts, doubling up to 100ms.
    std::uint64_t backoff_initial_micros = 2'000;
  };

  struct Stats {
    /// Comparisons answered by the replica (or vector clocks) alone.
    std::atomic<std::uint64_t> local_hits{0};
    std::atomic<std::uint64_t> rpcs{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> unavailable{0};
    /// Edges folded into the replica by Sync() (rehydration).
    std::atomic<std::uint64_t> sync_edges_applied{0};
  };

  explicit OracleClient(Options options);
  OracleClient(const OracleClient&) = delete;
  OracleClient& operator=(const OracleClient&) = delete;

  bool remote() const { return options_.local == nullptr; }

  /// Batched definitive ordering: one RPC round trip covers every pair
  /// the local view cannot answer. Result is positional and never
  /// contains kConcurrent on success.
  Result<std::vector<ClockOrder>> OrderPairs(
      const std::vector<std::pair<RefinableTimestamp, RefinableTimestamp>>&
          pairs,
      OrderPreference prefer);

  /// Single-pair convenience over OrderPairs.
  Result<ClockOrder> OrderPair(const RefinableTimestamp& a,
                               const RefinableTimestamp& b,
                               OrderPreference prefer);

  /// Read-only, local-view-only: kConcurrent when this process does not
  /// know an order (conservative -- never wrong, possibly incomplete).
  ClockOrder QueryOrder(const RefinableTimestamp& a,
                        const RefinableTimestamp& b);

  /// Establishes (or confirms) a happens-before edge authoritatively.
  Status AssignHappensBefore(const RefinableTimestamp& before,
                             const RefinableTimestamp& after);

  void CreateEvent(const RefinableTimestamp& ts);

  /// Trims the LOCAL view only (replica or local oracle). Shards call
  /// this from their GC path; the watermark already reached the service
  /// via the parent's CollectService().
  void CollectBefore(const VectorClock& watermark);

  /// Durably records the GC watermark at the service (appends a collect
  /// record to its changelog) and trims the local view. Local mode:
  /// plain CollectBefore.
  Status CollectService(const VectorClock& watermark);

  /// Rehydrates the replica from the service's full edge dump. A
  /// respawned process calls this once at boot so refinements made
  /// before its predecessor crashed are visible again (the PR 7 gap).
  /// Local mode: no-op.
  Status Sync();

  /// Reply-endpoint entry point; called from the wire receive thread.
  void OnReply(const OracleReplyMessage& reply);

  /// The oracle answering local queries: the wrapped local oracle, or
  /// the replica in remote mode. For metrics and tests.
  const TimelineOracle& view() const {
    return options_.local != nullptr ? *options_.local : replica_;
  }

  const Stats& stats() const { return stats_; }

 private:
  struct PendingCall {
    bool done = false;
    OracleReplyMessage reply;
  };

  /// One RPC with retry/backoff/deadline. Returns the service's reply
  /// (request-level status OK) or Unavailable after deadline exhaustion.
  Result<OracleReplyMessage> Call(const std::vector<OracleOp>& ops);

  /// Folds an authoritative decision for (a, b) into the replica.
  void ApplyDecision(const RefinableTimestamp& a, const RefinableTimestamp& b,
                     ClockOrder order);

  Options options_;
  /// Remote-mode decision cache. Unused (empty) in local mode.
  TimelineOracle replica_;

  Mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::uint64_t, PendingCall> pending_ GUARDED_BY(mu_);
  std::uint64_t next_request_id_ GUARDED_BY(mu_) = 1;

  Stats stats_;
};

}  // namespace weaver
