#include "oracle/oracle_client.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

namespace weaver {

namespace {

std::uint8_t PreferByte(OrderPreference prefer) {
  return prefer == OrderPreference::kPreferFirst ? 0 : 1;
}

}  // namespace

OracleClient::OracleClient(Options options) : options_(options) {}

void OracleClient::ApplyDecision(const RefinableTimestamp& a,
                                 const RefinableTimestamp& b,
                                 ClockOrder order) {
  // Replica updates can never fail: the authoritative oracle's decisions
  // are mutually consistent, and an already-implied edge is a no-op.
  if (order == ClockOrder::kBefore) {
    (void)replica_.AssignHappensBefore(a, b);
  } else if (order == ClockOrder::kAfter) {
    (void)replica_.AssignHappensBefore(b, a);
  }
}

Result<OracleReplyMessage> OracleClient::Call(
    const std::vector<OracleOp>& ops) {
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::microseconds(options_.total_deadline_micros);
  std::uint64_t backoff = options_.backoff_initial_micros;
  bool first_attempt = true;

  while (true) {
    if (!first_attempt) stats_.retries.fetch_add(1, std::memory_order_relaxed);
    first_attempt = false;

    std::uint64_t id = 0;
    {
      MutexLock lk(mu_);
      id = next_request_id_++;
      pending_.emplace(id, PendingCall{});
    }
    auto request = std::make_shared<OracleRequestMessage>();
    request->request_id = id;
    request->reply_to = options_.self;
    request->ops = ops;
    const Status sent =
        options_.bus->Send(options_.self, options_.service, kMsgOracleRequest,
                           std::move(request), /*never_block=*/true);
    stats_.rpcs.fetch_add(1, std::memory_order_relaxed);

    bool answered = false;
    OracleReplyMessage reply;
    {
      MutexLock lk(mu_);
      if (sent.ok()) {
        const auto attempt_deadline = std::min(
            deadline,
            Clock::now() + std::chrono::microseconds(options_.rpc_timeout_micros));
        auto it = pending_.find(id);
        while (it != pending_.end() && !it->second.done) {
          if (cv_.wait_until(lk.native(), attempt_deadline) ==
              std::cv_status::timeout) {
            break;
          }
          // The map may rehash while unlocked; re-find after every wake.
          it = pending_.find(id);
        }
        it = pending_.find(id);
        if (it != pending_.end() && it->second.done) {
          answered = true;
          reply = std::move(it->second.reply);
        }
      }
      pending_.erase(id);
    }

    if (answered) {
      if (reply.status.ok()) return reply;
      if (!reply.status.IsUnavailable()) return reply.status;
      // Unavailable from the service (e.g. mid-restart): fall through to
      // the retry/backoff path like a lost reply.
    }

    const auto now = Clock::now();
    if (now + std::chrono::microseconds(backoff) >= deadline) {
      stats_.unavailable.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          "timeline oracle did not answer within the deadline (failover in "
          "progress?); retry");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    backoff = std::min<std::uint64_t>(backoff * 2, 100'000);
  }
}

void OracleClient::OnReply(const OracleReplyMessage& reply) {
  MutexLock lk(mu_);
  auto it = pending_.find(reply.request_id);
  if (it == pending_.end()) return;  // stale reply to a timed-out attempt
  it->second.reply = reply;
  it->second.done = true;
  cv_.notify_all();
}

Result<std::vector<ClockOrder>> OracleClient::OrderPairs(
    const std::vector<std::pair<RefinableTimestamp, RefinableTimestamp>>&
        pairs,
    OrderPreference prefer) {
  std::vector<ClockOrder> out(pairs.size(), ClockOrder::kConcurrent);
  if (options_.local != nullptr) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      out[i] = options_.local->OrderPair(pairs[i].first, pairs[i].second,
                                         prefer);
    }
    return out;
  }

  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const ClockOrder known =
        replica_.QueryOrder(pairs[i].first, pairs[i].second);
    if (known != ClockOrder::kConcurrent) {
      out[i] = known;
      stats_.local_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      misses.push_back(i);
    }
  }
  if (misses.empty()) return out;

  std::vector<OracleOp> ops;
  ops.reserve(misses.size());
  for (const std::size_t i : misses) {
    OracleOp op;
    op.type = OracleOp::kOrderPair;
    op.a = pairs[i].first;
    op.b = pairs[i].second;
    op.prefer = PreferByte(prefer);
    ops.push_back(std::move(op));
  }
  auto reply = Call(ops);
  if (!reply.ok()) return reply.status();
  if (reply->decisions.size() != misses.size()) {
    return Status::Internal("oracle reply decision count mismatch");
  }
  for (std::size_t j = 0; j < misses.size(); ++j) {
    const OracleDecision& decision = reply->decisions[j];
    if (!decision.status.ok()) return decision.status;
    const std::size_t i = misses[j];
    out[i] = static_cast<ClockOrder>(decision.order);
    ApplyDecision(pairs[i].first, pairs[i].second, out[i]);
  }
  return out;
}

Result<ClockOrder> OracleClient::OrderPair(const RefinableTimestamp& a,
                                           const RefinableTimestamp& b,
                                           OrderPreference prefer) {
  auto orders = OrderPairs({{a, b}}, prefer);
  if (!orders.ok()) return orders.status();
  return (*orders)[0];
}

ClockOrder OracleClient::QueryOrder(const RefinableTimestamp& a,
                                    const RefinableTimestamp& b) {
  return options_.local != nullptr ? options_.local->QueryOrder(a, b)
                                   : replica_.QueryOrder(a, b);
}

Status OracleClient::AssignHappensBefore(const RefinableTimestamp& before,
                                         const RefinableTimestamp& after) {
  if (options_.local != nullptr) {
    return options_.local->AssignHappensBefore(before, after);
  }
  if (replica_.QueryOrder(before, after) == ClockOrder::kBefore) {
    stats_.local_hits.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  OracleOp op;
  op.type = OracleOp::kAssignEdge;
  op.a = before;
  op.b = after;
  auto reply = Call({op});
  if (!reply.ok()) return reply.status();
  if (reply->decisions.size() != 1) {
    return Status::Internal("oracle reply decision count mismatch");
  }
  const Status st = reply->decisions[0].status;
  if (st.ok()) ApplyDecision(before, after, ClockOrder::kBefore);
  return st;
}

void OracleClient::CreateEvent(const RefinableTimestamp& ts) {
  if (options_.local != nullptr) {
    options_.local->CreateEvent(ts);
  } else {
    replica_.CreateEvent(ts);
  }
}

void OracleClient::CollectBefore(const VectorClock& watermark) {
  if (options_.local != nullptr) {
    options_.local->CollectBefore(watermark);
  } else {
    replica_.CollectBefore(watermark);
  }
}

Status OracleClient::CollectService(const VectorClock& watermark) {
  if (options_.local != nullptr) {
    options_.local->CollectBefore(watermark);
    return Status::Ok();
  }
  OracleOp op;
  op.type = OracleOp::kCollect;
  op.watermark = watermark;
  auto reply = Call({op});
  if (!reply.ok()) return reply.status();
  if (!reply->decisions.empty() && !reply->decisions[0].status.ok()) {
    return reply->decisions[0].status;
  }
  replica_.CollectBefore(watermark);
  return Status::Ok();
}

Status OracleClient::Sync() {
  if (options_.local != nullptr) return Status::Ok();
  OracleOp op;
  op.type = OracleOp::kSync;
  auto reply = Call({op});
  if (!reply.ok()) return reply.status();
  for (const auto& [before, after] : reply->edges) {
    (void)replica_.AssignHappensBefore(before, after);
  }
  stats_.sync_edges_applied.fetch_add(reply->edges.size(),
                                      std::memory_order_relaxed);
  return Status::Ok();
}

}  // namespace weaver
