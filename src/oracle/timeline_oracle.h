// TimelineOracle: the reactive half of refinable timestamps (paper §3.4).
//
// This is an event-ordering service in the style of Kronos [Escriva et al.,
// EuroSys 2014], the system the paper deploys. It maintains a dependency
// graph whose vertices are outstanding transactions (identified by their
// refinable timestamps) and whose edges are happens-before commitments.
// The oracle guarantees:
//
//   * Acyclicity  — an order, once established, can never be contradicted.
//   * Monotonicity — answers are irrevocable; repeated queries agree.
//   * Transitivity — if a < b and b < c are known, a < c is answered.
//   * Vector-clock awareness — because events are identified by vector
//     timestamps, implied orderings are honored: if <0,1> < <1,0> was
//     established and <1,0> < <2,0> holds by clock comparison, then
//     <0,1> < <2,0> is answered (paper §4.1).
//
// The paper's deployment chain-replicates the oracle for fault tolerance
// and read scaling (~6M queries/sec on a 12-server chain). Here the chain
// is simulated: writes (order establishment) take an exclusive lock ("the
// chain head") while read-only queries take a shared lock and may execute
// concurrently ("any replica"); OracleChain in oracle/chain.h models
// per-replica read dispatch for the throughput benchmark.
#pragma once

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/ids.h"
#include "common/status.h"
#include "common/sync.h"
#include "order/timestamp.h"
#include "vclock/vclock.h"

namespace weaver {

/// Which event the caller would prefer first when no order exists yet.
/// Shards pass kPreferFirst with the already-executed/arrived event first
/// ("arrival order"); for transaction-vs-node-program pairs the transaction
/// is preferred first so programs never miss committed writes (paper §4.1).
enum class OrderPreference : std::uint8_t {
  kPreferFirst,
  kPreferSecond,
};

class TimelineOracle {
 public:
  struct Stats {
    std::atomic<std::uint64_t> order_requests{0};   // OrderPair calls
    std::atomic<std::uint64_t> queries{0};          // QueryOrder calls
    std::atomic<std::uint64_t> edges_established{0};
    std::atomic<std::uint64_t> vclock_resolved{0};  // answered by clocks only
    std::atomic<std::uint64_t> dag_resolved{0};     // answered by DAG search
    std::atomic<std::uint64_t> events_collected{0};
  };

  TimelineOracle() = default;
  TimelineOracle(const TimelineOracle&) = delete;
  TimelineOracle& operator=(const TimelineOracle&) = delete;

  /// Registers an event (idempotent). Events are also auto-registered by
  /// OrderPair, so explicit creation is optional.
  void CreateEvent(const RefinableTimestamp& ts);

  /// Returns the order between a and b, establishing one (per `prefer`) if
  /// none exists. Never returns kConcurrent. This is the shard servers'
  /// entry point when committing concurrent transactions (paper §3.4).
  ClockOrder OrderPair(const RefinableTimestamp& a,
                       const RefinableTimestamp& b, OrderPreference prefer);

  /// Read-only: returns the order if determined (by clocks, established
  /// edges, transitivity, or their combination), else kConcurrent.
  ClockOrder QueryOrder(const RefinableTimestamp& a,
                        const RefinableTimestamp& b);

  /// Establishes a happens-before edge, failing with kFailedPrecondition if
  /// it would contradict existing knowledge (i.e. create a cycle).
  Status AssignHappensBefore(const RefinableTimestamp& before,
                             const RefinableTimestamp& after);

  /// Garbage-collects events whose clocks precede `watermark` (the oldest
  /// in-flight operation, paper §4.5). Transitive shortcuts are added so no
  /// ordering commitment between surviving events is lost.
  void CollectBefore(const VectorClock& watermark);

  /// Every explicit happens-before edge as (before, after) timestamp
  /// pairs. This is the oracle's replayable state: re-establishing each
  /// pair via AssignHappensBefore on an empty oracle rebuilds an
  /// equivalent DAG (clock-implied orderings need no edges). Snapshots
  /// and replica rehydration (docs/oracle_service.md) are built on it.
  std::vector<std::pair<RefinableTimestamp, RefinableTimestamp>> DumpEdges()
      const;

  std::size_t LiveEvents() const;
  const Stats& stats() const { return stats_; }
  void ResetStats();

 private:
  struct EventNode {
    RefinableTimestamp ts;
    std::unordered_set<EventId> succ;  // explicit happens-before edges
    std::unordered_set<EventId> pred;
  };

  // All helpers below require the caller to hold mu_ (shared is enough for
  // the const ones).
  const EventNode* Find(EventId id) const REQUIRES_SHARED(mu_);
  EventNode* FindOrCreate(const RefinableTimestamp& ts) REQUIRES(mu_);
  /// True iff a path from `from` to `to` exists using explicit edges and
  /// vector-clock-implied hops. Neither endpoint needs to be registered.
  bool Reaches(const RefinableTimestamp& from,
               const RefinableTimestamp& to) const REQUIRES_SHARED(mu_);
  ClockOrder ResolveLocked(const RefinableTimestamp& a,
                           const RefinableTimestamp& b) const
      REQUIRES_SHARED(mu_);

  mutable SharedMutex mu_;
  std::unordered_map<EventId, EventNode> events_ GUARDED_BY(mu_);
  Stats stats_;
};

}  // namespace weaver
