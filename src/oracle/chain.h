// OracleChain: simulated chain replication of the timeline oracle
// (paper §3.4: "chain replicated for fault tolerance... scales up to ~6M
// queries per second on a 12 8-core server chain").
//
// In the real deployment, updates enter at the head of the chain and
// propagate to the tail; read-only queries may be served by any replica.
// Here every replica shares the authoritative DAG (updates are synchronous,
// matching chain semantics where a query observes only fully-propagated
// updates) and each replica contributes an independent read path with its
// own query counter; QueryAnyReplica round-robins across replicas exactly
// as a client-side load balancer would.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "oracle/timeline_oracle.h"

namespace weaver {

class OracleChain {
 public:
  explicit OracleChain(std::size_t replicas)
      : replica_reads_(replicas == 0 ? 1 : replicas) {
    for (auto& c : replica_reads_) c.store(0);
  }

  std::size_t replica_count() const { return replica_reads_.size(); }

  /// Updates go through the head of the chain.
  ClockOrder OrderAtHead(const RefinableTimestamp& a,
                         const RefinableTimestamp& b,
                         OrderPreference prefer) {
    return oracle_.OrderPair(a, b, prefer);
  }

  /// Read-only queries are dispatched round-robin over the replicas.
  ClockOrder QueryAnyReplica(const RefinableTimestamp& a,
                             const RefinableTimestamp& b) {
    const std::size_t r =
        next_.fetch_add(1, std::memory_order_relaxed) % replica_reads_.size();
    replica_reads_[r].fetch_add(1, std::memory_order_relaxed);
    return oracle_.QueryOrder(a, b);
  }

  std::uint64_t ReadsAtReplica(std::size_t r) const {
    return replica_reads_[r].load(std::memory_order_relaxed);
  }

  TimelineOracle& oracle() { return oracle_; }

 private:
  TimelineOracle oracle_;
  std::atomic<std::size_t> next_{0};
  std::vector<std::atomic<std::uint64_t>> replica_reads_;
};

}  // namespace weaver
