#include "oracle/timeline_oracle.h"

#include <cassert>
#include <deque>
#include <mutex>

namespace weaver {

void TimelineOracle::CreateEvent(const RefinableTimestamp& ts) {
  WriterLock lk(mu_);
  FindOrCreate(ts);
}

const TimelineOracle::EventNode* TimelineOracle::Find(EventId id) const {
  auto it = events_.find(id);
  return it == events_.end() ? nullptr : &it->second;
}

TimelineOracle::EventNode* TimelineOracle::FindOrCreate(
    const RefinableTimestamp& ts) {
  auto [it, inserted] = events_.try_emplace(ts.event_id());
  if (inserted) it->second.ts = ts;
  return &it->second;
}

bool TimelineOracle::Reaches(const RefinableTimestamp& from,
                             const RefinableTimestamp& to) const {
  // BFS over explicit edges; from every visited event (and from the start
  // timestamp itself, which need not be registered) we may additionally
  // take a vector-clock hop to any live event whose clock dominates it.
  // Clock-implied relations compose transitively among themselves, and a
  // clock hop into `to` is checked directly, so alternating
  // explicit/implied paths are found even when `from` or `to` was never
  // registered in the dependency graph.
  std::deque<const EventNode*> frontier;
  std::unordered_set<EventId> visited;
  visited.insert(from.event_id());
  auto expand_clock_hops = [&](const RefinableTimestamp& ts) {
    // Only events with explicit out-edges are useful as hop targets (a hop
    // to a sink either hits `to` -- checked directly -- or dead-ends).
    for (const auto& [id, node] : events_) {
      if (node.succ.empty() || visited.count(id)) continue;
      if (ts.Compare(node.ts) == ClockOrder::kBefore) {
        visited.insert(id);
        frontier.push_back(&node);
      }
    }
  };
  if (const EventNode* start = Find(from.event_id())) {
    frontier.push_back(start);
  } else {
    expand_clock_hops(from);
  }
  while (!frontier.empty()) {
    const EventNode* cur = frontier.front();
    frontier.pop_front();
    if (cur->ts.event_id() != from.event_id()) {
      // A clock hop may land exactly on `to`, or on an event that precedes
      // it by clocks; both complete a path.
      if (cur->ts.event_id() == to.event_id() ||
          cur->ts.Compare(to) == ClockOrder::kBefore) {
        return true;
      }
    }
    for (EventId next_id : cur->succ) {
      if (next_id == to.event_id()) return true;
      if (!visited.insert(next_id).second) continue;
      const EventNode* next = Find(next_id);
      if (next != nullptr) frontier.push_back(next);
    }
    expand_clock_hops(cur->ts);
  }
  return false;
}

ClockOrder TimelineOracle::ResolveLocked(const RefinableTimestamp& a,
                                         const RefinableTimestamp& b) const {
  const ClockOrder by_clock = a.Compare(b);
  if (by_clock != ClockOrder::kConcurrent) return by_clock;
  if (Reaches(a, b)) return ClockOrder::kBefore;
  if (Reaches(b, a)) return ClockOrder::kAfter;
  return ClockOrder::kConcurrent;
}

ClockOrder TimelineOracle::QueryOrder(const RefinableTimestamp& a,
                                      const RefinableTimestamp& b) {
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  const ClockOrder by_clock = a.Compare(b);
  if (by_clock != ClockOrder::kConcurrent) {
    stats_.vclock_resolved.fetch_add(1, std::memory_order_relaxed);
    return by_clock;
  }
  ReaderLock lk(mu_);
  const ClockOrder o = ResolveLocked(a, b);
  if (o != ClockOrder::kConcurrent) {
    stats_.dag_resolved.fetch_add(1, std::memory_order_relaxed);
  }
  return o;
}

ClockOrder TimelineOracle::OrderPair(const RefinableTimestamp& a,
                                     const RefinableTimestamp& b,
                                     OrderPreference prefer) {
  stats_.order_requests.fetch_add(1, std::memory_order_relaxed);
  const ClockOrder by_clock = a.Compare(b);
  if (by_clock != ClockOrder::kConcurrent) {
    stats_.vclock_resolved.fetch_add(1, std::memory_order_relaxed);
    return by_clock;
  }
  WriterLock lk(mu_);
  const ClockOrder existing = ResolveLocked(a, b);
  if (existing != ClockOrder::kConcurrent) {
    stats_.dag_resolved.fetch_add(1, std::memory_order_relaxed);
    return existing;
  }
  // No order exists: establish one per the caller's preference. This
  // decision is irrevocable (it becomes an edge in the dependency DAG).
  EventNode* ea = FindOrCreate(a);
  EventNode* eb = FindOrCreate(b);
  EventNode* first = prefer == OrderPreference::kPreferFirst ? ea : eb;
  EventNode* second = prefer == OrderPreference::kPreferFirst ? eb : ea;
  first->succ.insert(second->ts.event_id());
  second->pred.insert(first->ts.event_id());
  stats_.edges_established.fetch_add(1, std::memory_order_relaxed);
  return prefer == OrderPreference::kPreferFirst ? ClockOrder::kBefore
                                                 : ClockOrder::kAfter;
}

Status TimelineOracle::AssignHappensBefore(const RefinableTimestamp& before,
                                           const RefinableTimestamp& after) {
  stats_.order_requests.fetch_add(1, std::memory_order_relaxed);
  WriterLock lk(mu_);
  const ClockOrder existing = ResolveLocked(before, after);
  if (existing == ClockOrder::kBefore || existing == ClockOrder::kEqual) {
    return Status::Ok();  // already implied
  }
  if (existing == ClockOrder::kAfter) {
    return Status::FailedPrecondition(
        "happens-before assignment would create a cycle: " +
        after.ToString() + " already precedes " + before.ToString());
  }
  EventNode* eb = FindOrCreate(before);
  EventNode* ea = FindOrCreate(after);
  eb->succ.insert(ea->ts.event_id());
  ea->pred.insert(eb->ts.event_id());
  stats_.edges_established.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

void TimelineOracle::CollectBefore(const VectorClock& watermark) {
  WriterLock lk(mu_);
  std::vector<EventId> dead;
  for (const auto& [id, node] : events_) {
    if (node.ts.clock.Compare(watermark) == ClockOrder::kBefore) {
      dead.push_back(id);
    }
  }
  for (EventId id : dead) {
    auto it = events_.find(id);
    if (it == events_.end()) continue;
    EventNode& node = it->second;
    // Preserve transitive commitments between survivors: connect every
    // predecessor to every successor before removing the event.
    for (EventId p : node.pred) {
      auto pit = events_.find(p);
      if (pit == events_.end()) continue;
      pit->second.succ.erase(id);
      for (EventId s : node.succ) {
        if (s == p) continue;
        pit->second.succ.insert(s);
        auto sit = events_.find(s);
        if (sit != events_.end()) sit->second.pred.insert(p);
      }
    }
    for (EventId s : node.succ) {
      auto sit = events_.find(s);
      if (sit == events_.end()) continue;
      sit->second.pred.erase(id);
    }
    events_.erase(it);
    stats_.events_collected.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<std::pair<RefinableTimestamp, RefinableTimestamp>>
TimelineOracle::DumpEdges() const {
  ReaderLock lk(mu_);
  std::vector<std::pair<RefinableTimestamp, RefinableTimestamp>> edges;
  for (const auto& [id, node] : events_) {
    for (EventId succ_id : node.succ) {
      const EventNode* succ = Find(succ_id);
      if (succ != nullptr) edges.emplace_back(node.ts, succ->ts);
    }
  }
  return edges;
}

std::size_t TimelineOracle::LiveEvents() const {
  ReaderLock lk(mu_);
  return events_.size();
}

void TimelineOracle::ResetStats() {
  stats_.order_requests.store(0);
  stats_.queries.store(0);
  stats_.edges_established.store(0);
  stats_.vclock_resolved.store(0);
  stats_.dag_resolved.store(0);
  stats_.events_collected.store(0);
}

}  // namespace weaver
