// Log-bucketed latency histogram (HdrHistogram-style, fixed footprint).
// Records values in nanoseconds; reports approximate percentiles with
// sub-3% relative error. Thread-compatible: callers synchronize externally
// or use one histogram per thread and Merge().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace weaver {

class Histogram {
 public:
  Histogram();

  void Record(std::uint64_t value_ns);
  void Merge(const Histogram& other);
  void Reset();

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double Mean() const;
  /// p in [0, 100]; returns an upper bound of the bucket containing the
  /// p-th percentile observation.
  std::uint64_t Percentile(double p) const;

  /// One-line summary: count / mean / p50 / p90 / p99 / max, in milliseconds.
  std::string Summary() const;

  /// All (bucket_upper_bound_ns, count) pairs with non-zero count, in order.
  /// Used to print CDFs for the figure-10/11 benches.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> NonZeroBuckets() const;

  // Bucket geometry, shared with the concurrent histogram in obs/metrics.h
  // so its sparse snapshots stay mergeable with (and interpretable as)
  // these buckets.
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per octave
  static constexpr int kBucketCount = 64 * (1 << kSubBucketBits);

  static int BucketIndex(std::uint64_t value);
  static std::uint64_t BucketUpperBound(int index);

 private:
 std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
};

}  // namespace weaver
