// Status: lightweight error-code-plus-message return type used across the
// Weaver codebase instead of exceptions (RocksDB/Arrow idiom).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace weaver {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kAborted,             // transaction conflict; caller should retry
  kInvalidArgument,
  kFailedPrecondition,  // e.g. operating on a deleted vertex
  kUnavailable,         // server down / failed over
  kTimedOut,
  kCancelled,
  kInternal,
  kResourceExhausted,   // backpressure: queue/lane over capacity
  kDeadlineExceeded,    // bounded wait expired; request may still land
};

/// Canonical result of a fallible Weaver operation.
///
/// A `Status` is cheap to copy in the common (OK) case: the message string is
/// empty and only a one-byte code is carried. Use `Result<T>` (result.h) when
/// a value must be returned alongside the status.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Cancelled(std::string msg = "") {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg = "") {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Human-readable name of a status code, e.g. "ABORTED".
std::string_view StatusCodeName(StatusCode code);

// Early-return helper: propagate a non-OK status to the caller.
#define WEAVER_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::weaver::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace weaver
