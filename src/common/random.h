// Deterministic pseudo-random utilities used by workload generators, the
// partitioner, and tests. All generators are seedable so experiments are
// reproducible run-to-run.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace weaver {

/// SplitMix64: tiny, fast generator; also used to seed Xoshiro.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the main PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t Uniform(std::uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      std::uint64_t t = -bound % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t UniformRange(std::uint64_t lo, std::uint64_t hi) {
    assert(hi >= lo);
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with success probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Zipf-distributed sampler over [0, n) with exponent `theta`, implemented
/// with Gray's rejection-inversion method: O(1) per sample, O(1) setup.
/// Used for skewed key selection in social-network workloads.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double theta);

  std::uint64_t Sample(Rng& rng);

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  std::uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
};

/// Samples a categorical distribution given cumulative weights.
/// Used for the TAO operation mix (Table 1 of the paper).
class DiscreteSampler {
 public:
  /// `weights` need not sum to 1; they are normalized internally.
  explicit DiscreteSampler(std::vector<double> weights);

  /// Returns an index in [0, weights.size()).
  std::size_t Sample(Rng& rng) const;

 private:
  std::vector<double> cumulative_;
};

}  // namespace weaver
