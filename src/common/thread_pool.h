// Fixed-size thread pool used by node-program coordinators, baseline
// engines, and bench client drivers.
#pragma once

#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/queue.h"

namespace weaver {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution on some worker thread.
  void Submit(std::function<void()> fn);

  /// Enqueues `fn` and returns a future for its result.
  template <typename F>
  auto Async(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    Submit([task] { (*task)(); });
    return task->get_future();
  }

  /// Stops accepting work, drains the queue, joins all workers.
  void Shutdown();

  std::size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop();

  BlockingQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
};

}  // namespace weaver
