// Clang Thread Safety Analysis annotations.
//
// These macros attach capability (lock) semantics to types, fields, and
// functions so that `clang -Wthread-safety` can prove lock discipline at
// compile time: every GUARDED_BY field access must happen with its mutex
// held, every REQUIRES function must be called with the named locks held,
// and scoped guards (SCOPED_CAPABILITY) are tracked through their
// constructor/destructor. Under any other compiler (or with
// WEAVER_NO_THREAD_SAFETY_ANNOTATIONS defined) every macro expands to
// nothing, so the annotations are zero-cost documentation.
//
// The vocabulary follows the Clang documentation's canonical mutex.h
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Conventions
// for this repo are in docs/static_analysis.md. Intentional escapes use
// NO_THREAD_SAFETY_ANALYSIS and must carry a `ts_unchecked:` rationale
// comment at the use site; the CMake option WEAVER_THREAD_SAFETY=ON turns
// the analysis on as -Werror so annotations cannot rot.
#pragma once

#if defined(__clang__) && !defined(WEAVER_NO_THREAD_SAFETY_ANNOTATIONS)
#define WEAVER_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define WEAVER_TS_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Marks a class as a capability (a lock). The string names the
/// capability kind in diagnostics, e.g. CAPABILITY("mutex").
#define CAPABILITY(x) WEAVER_TS_ATTRIBUTE(capability(x))

/// Marks a class as a scoped capability: its constructor acquires and its
/// destructor releases, like std::lock_guard.
#define SCOPED_CAPABILITY WEAVER_TS_ATTRIBUTE(scoped_lockable)

/// Field may only be read/written with the given capability held.
#define GUARDED_BY(x) WEAVER_TS_ATTRIBUTE(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed with the capability
/// held (the pointer itself is unguarded).
#define PT_GUARDED_BY(x) WEAVER_TS_ATTRIBUTE(pt_guarded_by(x))

/// Declares a required acquisition order between capabilities.
#define ACQUIRED_BEFORE(...) WEAVER_TS_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) WEAVER_TS_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Caller must hold the capability exclusively (resp. at least shared)
/// when invoking the function; the function does not release it.
#define REQUIRES(...) \
  WEAVER_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  WEAVER_TS_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires (resp. releases) the capability; caller must not
/// (resp. must) hold it at the call.
#define ACQUIRE(...) WEAVER_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  WEAVER_TS_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) WEAVER_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  WEAVER_TS_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
/// Releases a capability held in either exclusive or shared mode (used on
/// destructors of guards that can hold either).
#define RELEASE_GENERIC(...) \
  WEAVER_TS_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

/// Function attempts the acquisition and returns `ret` on success.
#define TRY_ACQUIRE(...) \
  WEAVER_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  WEAVER_TS_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (guards against self-deadlock on
/// non-reentrant locks).
#define EXCLUDES(...) WEAVER_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (tells the analysis to
/// assume it from here on).
#define ASSERT_CAPABILITY(x) WEAVER_TS_ATTRIBUTE(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  WEAVER_TS_ATTRIBUTE(assert_shared_capability(x))

/// Function returns a reference to the named capability (lets callers
/// lock through an accessor).
#define RETURN_CAPABILITY(x) WEAVER_TS_ATTRIBUTE(lock_returned(x))

/// Escape hatch: turns the analysis off for one function. Every use MUST
/// carry a `ts_unchecked:` comment explaining why the locking pattern is
/// correct but inexpressible (e.g. dynamic lock sets over a runtime
/// collection of mutexes, hand-over-hand locking across callbacks).
#define NO_THREAD_SAFETY_ANALYSIS \
  WEAVER_TS_ATTRIBUTE(no_thread_safety_analysis)
