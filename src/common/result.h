// Result<T>: value-or-Status, the Weaver analogue of arrow::Result /
// absl::StatusOr. Returned by operations that produce a value but may fail.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace weaver {

template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when this result is an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

// Assigns the value of a Result expression to `lhs`, or early-returns its
// status. `lhs` may be a declaration, e.g.
//   WEAVER_ASSIGN_OR_RETURN(auto node, store.GetNode(id));
#define WEAVER_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define WEAVER_ASSIGN_OR_RETURN(lhs, expr) \
  WEAVER_ASSIGN_OR_RETURN_IMPL(            \
      WEAVER_CONCAT_(_weaver_result_, __LINE__), lhs, expr)

#define WEAVER_CONCAT_INNER_(a, b) a##b
#define WEAVER_CONCAT_(a, b) WEAVER_CONCAT_INNER_(a, b)

}  // namespace weaver
