#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace weaver {

Histogram::Histogram() : buckets_(kBucketCount, 0) {}

// Bucket layout (kSubBucketBits = S): values below 2^S map exactly to
// their own bucket. Larger values fall in power-of-two groups g >= 1
// covering [2^(S+g-1), 2^(S+g)), each split into 2^S sub-buckets of width
// 2^(g-1). Relative bucket error is therefore < 2^-S (~3%).
int Histogram::BucketIndex(std::uint64_t value) {
  constexpr std::uint64_t kSub = 1ULL << kSubBucketBits;
  if (value < kSub) return static_cast<int>(value);
  const int msb = 63 - std::countl_zero(value);
  const int group = msb - kSubBucketBits + 1;
  const std::uint64_t sub = (value >> (msb - kSubBucketBits)) - kSub;
  const int idx =
      (group << kSubBucketBits) + static_cast<int>(sub);
  return std::min(idx, kBucketCount - 1);
}

std::uint64_t Histogram::BucketUpperBound(int index) {
  constexpr std::uint64_t kSub = 1ULL << kSubBucketBits;
  if (index < static_cast<int>(kSub)) return static_cast<std::uint64_t>(index);
  const int group = index >> kSubBucketBits;
  const std::uint64_t sub = static_cast<std::uint64_t>(index) & (kSub - 1);
  const int base_shift = kSubBucketBits + group - 1;
  if (base_shift >= 63) return ~0ULL;
  const std::uint64_t base = 1ULL << base_shift;
  const std::uint64_t step = 1ULL << (group - 1);
  return base + step * (sub + 1) - 1;
}

void Histogram::Record(std::uint64_t value_ns) {
  buckets_[static_cast<std::size_t>(BucketIndex(value_ns))]++;
  count_++;
  sum_ += value_ns;
  min_ = std::min(min_, value_ns);
  max_ = std::max(max_, value_ns);
}

void Histogram::Merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  const double rank = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (static_cast<double>(seen) >= rank) return BucketUpperBound(i);
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3fms p50=%.3fms p90=%.3fms p99=%.3fms "
                "max=%.3fms",
                static_cast<unsigned long long>(count_), Mean() / 1e6,
                Percentile(50) / 1e6, Percentile(90) / 1e6,
                Percentile(99) / 1e6, static_cast<double>(max_) / 1e6);
  return buf;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
Histogram::NonZeroBuckets() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (int i = 0; i < kBucketCount; ++i) {
    if (buckets_[static_cast<std::size_t>(i)] != 0) {
      out.emplace_back(BucketUpperBound(i), buckets_[static_cast<std::size_t>(i)]);
    }
  }
  return out;
}

}  // namespace weaver
