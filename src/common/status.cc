#include "common/status.h"

namespace weaver {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kTimedOut:
      return "TIMED_OUT";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace weaver
