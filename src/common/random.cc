#include "common/random.h"

#include <algorithm>

namespace weaver {

// Rejection-inversion sampling for Zipf (W. Hörmann & G. Derflinger,
// "Rejection-inversion to generate variates from monotone discrete
// distributions", ACM TOMACS 1996). theta != 1 handled via the generalized
// harmonic integral; theta == 1 degenerates to log.
ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n_ >= 1);
  assert(theta_ > 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta_));
}

double ZipfSampler::H(double x) const {
  if (theta_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
}

double ZipfSampler::HInverse(double x) const {
  if (theta_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - theta_), 1.0 / (1.0 - theta_));
}

std::uint64_t ZipfSampler::Sample(Rng& rng) {
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    k = std::clamp<std::uint64_t>(k, 1, n_);
    if (static_cast<double>(k) - x <= s_ ||
        u >= H(static_cast<double>(k) + 0.5) - std::pow(k, -theta_)) {
      return k - 1;  // zero-based rank
    }
  }
}

DiscreteSampler::DiscreteSampler(std::vector<double> weights) {
  assert(!weights.empty());
  cumulative_.reserve(weights.size());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
    cumulative_.push_back(total);
  }
  assert(total > 0.0);
  for (double& c : cumulative_) c /= total;
  cumulative_.back() = 1.0;  // guard against FP rounding
}

std::size_t DiscreteSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) --it;
  return static_cast<std::size_t>(it - cumulative_.begin());
}

}  // namespace weaver
