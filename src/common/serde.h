// Binary serialization helpers. Used to persist graph objects in the
// backing store (vertices are stored as opaque serialized blobs, exactly as
// Weaver stored them in HyperDex Warp).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace weaver {

/// Append-only little-endian encoder.
class ByteWriter {
 public:
  void PutU8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(std::uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(std::uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutString(std::string_view s) {
    PutU32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void PutRaw(const void* p, std::size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Sequential decoder over a byte string. All getters return
/// Status::Internal on truncated input rather than reading out of bounds.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status GetU8(std::uint8_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetU32(std::uint32_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetU64(std::uint64_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetDouble(double* out) { return GetRaw(out, sizeof(*out)); }
  Status GetString(std::string* out) {
    std::uint32_t len = 0;
    WEAVER_RETURN_IF_ERROR(GetU32(&len));
    if (pos_ + len > data_.size()) {
      return Status::Internal("truncated string in serialized payload");
    }
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::Ok();
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  Status GetRaw(void* out, std::size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::Internal("truncated serialized payload");
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return Status::Ok();
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace weaver
