// Small synchronization primitives shared across modules.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/ids.h"

namespace weaver {

/// Test-and-test-and-set spinlock for very short critical sections
/// (e.g. a vector-clock increment). Satisfies BasicLockable.
class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      while (flag_.test(std::memory_order_relaxed)) {
        // spin
      }
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }
  bool try_lock() { return !flag_.test_and_set(std::memory_order_acquire); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// A fixed bank of mutexes indexed by key hash. Used by the backing store's
/// OCC commit to lock keys in a canonical (index-sorted) order, avoiding
/// deadlock between concurrent committers.
class StripedMutex {
 public:
  explicit StripedMutex(std::size_t stripes = 64) : stripes_(stripes) {}

  std::size_t StripeFor(std::uint64_t key_hash) const {
    return MixHash64(key_hash) % stripes_.size();
  }
  std::mutex& Get(std::size_t stripe) { return stripes_[stripe].m; }
  std::size_t stripe_count() const { return stripes_.size(); }

 private:
  struct Padded {
    std::mutex m;
    char pad[48];
  };
  std::vector<Padded> stripes_;
};

/// Simple latch usable before C++20 std::latch was widely available; also
/// resettable (std::latch is not), which bench harnesses use between rounds.
class ResettableLatch {
 public:
  explicit ResettableLatch(std::ptrdiff_t count) : count_(count) {}

  void CountDown() {
    std::unique_lock<std::mutex> lk(mu_);
    if (--count_ == 0) cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return count_ <= 0; });
  }
  void Reset(std::ptrdiff_t count) {
    std::unique_lock<std::mutex> lk(mu_);
    count_ = count;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::ptrdiff_t count_;
};

}  // namespace weaver
