// Small synchronization primitives shared across modules.
//
// Everything here is annotated for Clang Thread Safety Analysis
// (common/annotations.h, docs/static_analysis.md): the lock types are
// capabilities, the guards are scoped capabilities, and the rest of the
// tree declares GUARDED_BY/REQUIRES against them so `-Wthread-safety`
// proves lock discipline at compile time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <new>
#include <shared_mutex>
#include <vector>

#include "common/annotations.h"
#include "common/ids.h"

namespace weaver {

/// Cache-line size used to pad per-stripe locks so neighbouring stripes
/// do not false-share. libstdc++ only exposes the real value when the
/// feature-test macro says so; 64 bytes is correct for every x86-64 and
/// most AArch64 parts we run on.
#if defined(__cpp_lib_hardware_interference_size)
// GCC warns that the value can vary with -mtune; we use it only to size
// private padding, never across an ABI boundary, so the variance is fine.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
#endif
inline constexpr std::size_t kDestructiveInterferenceSize =
    std::hardware_destructive_interference_size;
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#else
inline constexpr std::size_t kDestructiveInterferenceSize = 64;
#endif

/// std::mutex wrapped as a Clang TSA capability. Satisfies Lockable, so
/// std::lock_guard / std::unique_lock still work where needed, but
/// guarded code should prefer the annotated MutexLock below. native()
/// exposes the underlying std::mutex for the rare caller that must build
/// a dynamic lock set (and therefore steps outside the analysis).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// std::shared_mutex wrapped as a TSA capability (exclusive writers,
/// shared readers).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }

  std::shared_mutex& native() { return mu_; }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock over Mutex (the annotated std::unique_lock).
/// Internally holds a std::unique_lock over the native mutex so
/// condition variables can wait on it: the canonical wait shape is
///
///   MutexLock lk(mu_);
///   while (!condition_on_guarded_state()) cv_.wait(lk.native());
///
/// (an explicit while-loop instead of the predicate overload, because
/// TSA analyzes lambdas without the caller's capabilities). Unlock() /
/// Lock() support hand-over-hand sections that drop the lock around a
/// callback and retake it, with the analysis tracking the state.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lk_(mu.native()) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() RELEASE() { lk_.unlock(); }
  void Lock() ACQUIRE() { lk_.lock(); }

  /// The underlying unique_lock, for std::condition_variable::wait.
  std::unique_lock<std::mutex>& native() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
};

/// Scoped shared (reader) lock over SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu)
      : lk_(mu.native()) {}
  ~ReaderLock() RELEASE_GENERIC() = default;

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  std::shared_lock<std::shared_mutex> lk_;
};

/// Scoped exclusive (writer) lock over SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : lk_(mu.native()) {}
  ~WriterLock() RELEASE_GENERIC() = default;

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  std::unique_lock<std::shared_mutex> lk_;
};

/// Test-and-test-and-set spinlock for very short critical sections
/// (e.g. a vector-clock increment). Satisfies BasicLockable. A default-
/// initialized atomic_flag is clear since C++20; the old ATOMIC_FLAG_INIT
/// idiom is deprecated.
class CAPABILITY("mutex") SpinLock {
 public:
  void lock() ACQUIRE() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      while (flag_.test(std::memory_order_relaxed)) {
        // spin
      }
    }
  }
  void unlock() RELEASE() { flag_.clear(std::memory_order_release); }
  bool try_lock() TRY_ACQUIRE(true) {
    return !flag_.test_and_set(std::memory_order_acquire);
  }

 private:
  std::atomic_flag flag_;
};

/// A fixed bank of mutexes indexed by key hash. Used by the backing store's
/// OCC commit to lock keys in a canonical (index-sorted) order, avoiding
/// deadlock between concurrent committers.
class StripedMutex {
 public:
  explicit StripedMutex(std::size_t stripes = 64) : stripes_(stripes) {}

  std::size_t StripeFor(std::uint64_t key_hash) const {
    return MixHash64(key_hash) % stripes_.size();
  }
  Mutex& Get(std::size_t stripe) { return stripes_[stripe].m; }
  std::size_t stripe_count() const { return stripes_.size(); }

 private:
  /// Pads each stripe out to a multiple of the destructive-interference
  /// size so adjacent stripes never share a cache line. (When the mutex
  /// happens to fill a whole number of lines already, the pad still adds
  /// one line rather than a zero-length array.)
  struct Padded {
    Mutex m;
    char pad[kDestructiveInterferenceSize -
             (sizeof(Mutex) % kDestructiveInterferenceSize) +
             (sizeof(Mutex) % kDestructiveInterferenceSize == 0
                  ? kDestructiveInterferenceSize
                  : 0)];
  };
  static_assert(sizeof(Padded) % kDestructiveInterferenceSize == 0,
                "stripe padding must round the stripe up to whole "
                "cache lines to prevent false sharing");
  static_assert(sizeof(Padded) >= kDestructiveInterferenceSize,
                "a stripe must span at least one cache line");
  std::vector<Padded> stripes_;
};

/// Simple latch usable before C++20 std::latch was widely available; also
/// resettable (std::latch is not), which bench harnesses use between rounds.
class ResettableLatch {
 public:
  explicit ResettableLatch(std::ptrdiff_t count) : count_(count) {}

  void CountDown() {
    MutexLock lk(mu_);
    if (--count_ == 0) cv_.notify_all();
  }
  void Wait() {
    MutexLock lk(mu_);
    while (count_ > 0) cv_.wait(lk.native());
  }
  void Reset(std::ptrdiff_t count) {
    MutexLock lk(mu_);
    count_ = count;
  }

 private:
  Mutex mu_;
  std::condition_variable cv_;
  std::ptrdiff_t count_ GUARDED_BY(mu_);
};

}  // namespace weaver
