// Identifier types shared across Weaver modules.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace weaver {

/// Vertex handle. Application-visible; unique across the deployment.
using NodeId = std::uint64_t;
/// Edge handle. Unique per deployment (allocated by gatekeepers).
using EdgeId = std::uint64_t;
/// Gatekeeper index within the timeline coordinator bank.
using GatekeeperId = std::uint32_t;
/// Shard server index.
using ShardId = std::uint32_t;
/// Timeline-oracle event identifier (derived from a refinable timestamp).
using EventId = std::uint64_t;
/// Identifier of one node-program execution (query instance).
using ProgramId = std::uint64_t;

inline constexpr NodeId kInvalidNodeId = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdgeId = std::numeric_limits<EdgeId>::max();

/// 64-bit mix used to combine/shuffle ids (SplitMix64 finalizer).
inline std::uint64_t MixHash64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hash for pairs of 64-bit ids (used by ordering-decision caches).
struct IdPairHash {
  std::size_t operator()(const std::pair<std::uint64_t, std::uint64_t>& p)
      const {
    return MixHash64(p.first ^ MixHash64(p.second));
  }
};

}  // namespace weaver
