#include "common/thread_pool.h"

namespace weaver {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> fn) {
  tasks_.Push(std::move(fn));
}

void ThreadPool::Shutdown() {
  tasks_.Close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  while (auto task = tasks_.Pop()) {
    (*task)();
  }
}

}  // namespace weaver
