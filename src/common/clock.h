// Monotonic wall-clock helpers for latency measurement and timers.
#pragma once

#include <chrono>
#include <cstdint>

namespace weaver {

inline std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline std::uint64_t NowMicros() { return NowNanos() / 1000; }

/// Scoped stopwatch: records elapsed nanoseconds into *out on destruction.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(std::uint64_t* out)
      : out_(out), start_(NowNanos()) {}
  ~ScopedTimerNs() { *out_ = NowNanos() - start_; }

  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  std::uint64_t* out_;
  std::uint64_t start_;
};

}  // namespace weaver
