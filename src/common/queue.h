// Blocking MPMC queue used by the simulated message bus and actor inboxes.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/annotations.h"
#include "common/sync.h"

namespace weaver {

/// Unbounded (optionally bounded) blocking queue. Close() wakes all waiters;
/// Pop() returns nullopt once the queue is closed and drained.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  enum class PushResult { kOk, kFull, kClosed };

  /// Returns false if the queue has been closed.
  bool Push(T item) {
    MutexLock lk(mu_);
    if (capacity_ > 0) {
      while (!closed_ && items_.size() >= capacity_) {
        not_full_.wait(lk.native());
      }
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Push that ignores the capacity bound (still fails on a closed
  /// queue). For traffic that must never block the producer: shard
  /// servers forward node-program hops to peer shards from their own
  /// event loops, and a blocking push on a full peer inbox could
  /// deadlock two shards against each other (A full of work for B, B
  /// full of work for A). Hop batches are few (at most one per peer per
  /// drain cycle), so the capacity overshoot is bounded in practice.
  bool ForcePush(T item) {
    MutexLock lk(mu_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: kFull when a bounded queue is at capacity (the
  /// item is NOT consumed -- the caller may retry), kClosed when the
  /// queue no longer accepts work.
  PushResult TryPush(T& item) {
    MutexLock lk(mu_);
    if (closed_) return PushResult::kClosed;
    if (capacity_ > 0 && items_.size() >= capacity_) return PushResult::kFull;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return PushResult::kOk;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<T> Pop() {
    MutexLock lk(mu_);
    while (!closed_ && items_.empty()) {
      not_empty_.wait(lk.native());
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    if (capacity_ > 0) not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    MutexLock lk(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    if (capacity_ > 0) not_full_.notify_one();
    return item;
  }

  void Close() {
    MutexLock lk(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    MutexLock lk(mu_);
    return closed_;
  }

  /// Configured capacity; 0 means unbounded. Immutable after
  /// construction, so readable without the lock.
  std::size_t capacity() const { return capacity_; }

  std::size_t Size() const {
    MutexLock lk(mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_ GUARDED_BY(mu_);
  const std::size_t capacity_;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace weaver
