// Graph partitioning policies (paper §4.6).
//
// Weaver assigns each vertex to a shard when the vertex is created and
// records the placement in the backing store. The default policy is hash
// placement; LdgPartitioner implements the streaming heuristic of Stanton
// & Kliot [KDD 2012] ("linear deterministic greedy"): place a vertex on
// the shard holding most of its already-placed neighbors, weighted by a
// capacity penalty. The paper disables dynamic repartitioning in its
// evaluation (§4.6), and so do the benches here; LDG is exercised by bulk
// loads, tests, and an ablation bench.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"

namespace weaver {

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Chooses a shard for a new vertex. `placed_neighbors` holds the shard
  /// ids of the vertex's already-placed neighbors (empty when unknown);
  /// `shard_loads` holds the current vertex count per shard.
  virtual ShardId Place(NodeId node,
                        const std::vector<ShardId>& placed_neighbors,
                        const std::vector<std::size_t>& shard_loads) = 0;
};

/// Stateless hash placement: uniform, ignores locality.
class HashPartitioner final : public Partitioner {
 public:
  explicit HashPartitioner(std::size_t num_shards)
      : num_shards_(num_shards) {}

  ShardId Place(NodeId node, const std::vector<ShardId>&,
                const std::vector<std::size_t>&) override {
    return static_cast<ShardId>(MixHash64(node) % num_shards_);
  }

 private:
  std::size_t num_shards_;
};

/// Linear deterministic greedy streaming partitioner: score(shard) =
/// |neighbors on shard| * (1 - load/capacity); ties break to least load.
class LdgPartitioner final : public Partitioner {
 public:
  /// `expected_vertices` sizes the per-shard capacity used by the penalty
  /// term; it need not be exact.
  LdgPartitioner(std::size_t num_shards, std::size_t expected_vertices)
      : num_shards_(num_shards),
        capacity_(expected_vertices / (num_shards == 0 ? 1 : num_shards) +
                  1) {}

  ShardId Place(NodeId node, const std::vector<ShardId>& placed_neighbors,
                const std::vector<std::size_t>& shard_loads) override;

 private:
  std::size_t num_shards_;
  std::size_t capacity_;
};

}  // namespace weaver
