#include "partition/partitioner.h"

#include <algorithm>

namespace weaver {

ShardId LdgPartitioner::Place(NodeId node,
                              const std::vector<ShardId>& placed_neighbors,
                              const std::vector<std::size_t>& shard_loads) {
  std::vector<std::size_t> neighbor_count(num_shards_, 0);
  for (ShardId s : placed_neighbors) {
    if (s < num_shards_) neighbor_count[s]++;
  }
  double best_score = -1.0;
  ShardId best = static_cast<ShardId>(MixHash64(node) % num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    const std::size_t load = s < shard_loads.size() ? shard_loads[s] : 0;
    const double penalty =
        1.0 - static_cast<double>(load) / static_cast<double>(capacity_);
    const double score =
        static_cast<double>(neighbor_count[s]) * std::max(penalty, 0.0);
    if (score > best_score ||
        (score == best_score && load < (best < shard_loads.size()
                                            ? shard_loads[best]
                                            : 0))) {
      best_score = score;
      best = static_cast<ShardId>(s);
    }
  }
  return best;
}

}  // namespace weaver
