#include "kvstore/kvstore.h"

#include <algorithm>
#include <functional>

#include "common/ids.h"

namespace weaver {

using storage::StorageEngine;
using storage::WalOp;

KvStore::KvStore(std::size_t stripes)
    : stripes_(stripes == 0 ? 1 : stripes) {}

KvStore::~KvStore() = default;

Result<std::unique_ptr<KvStore>> KvStore::Open(
    std::size_t stripes, const StorageOptions& storage) {
  auto store = std::make_unique<KvStore>(stripes);
  if (!storage.enabled()) return store;

  auto engine = StorageEngine::Open(storage);
  if (!engine.ok()) return engine.status();
  store->engine_ = std::move(engine).value();

  // Rebuild committed state: checkpoint rows first, then the WAL tail in
  // commit order. Recovery is single-threaded, so the stripe locks are
  // uncontended -- taken anyway to satisfy the helpers' lock contracts.
  WEAVER_RETURN_IF_ERROR(store->engine_->Recover(
      [&store](std::string&& key, std::string&& value) {
        Stripe& s = store->stripes_[store->StripeFor(key)];
        MutexLock lk(s.mu);
        Versioned& v = s.map[std::move(key)];
        v.value = std::move(value);
        v.version = 1;
        v.tombstone = false;
      },
      [&store](const WalOp& op) {
        Stripe& s = store->stripes_[store->StripeFor(op.key)];
        MutexLock lk(s.mu);
        if (op.kind == WalOp::Kind::kPut) {
          store->ApplyPutLocked(s, op.key, op.value);
        } else {
          store->ApplyDeleteLocked(s, op.key);
        }
      },
      &store->recovery_stats_));
  return store;
}

std::size_t KvStore::StripeFor(std::string_view key) const {
  return std::hash<std::string_view>{}(key) % stripes_.size();
}

std::uint64_t KvStore::VersionOfLocked(const Stripe& s,
                                       std::string_view key) const {
  auto it = s.map.find(std::string(key));
  return it == s.map.end() ? 0 : it->second.version;
}

void KvStore::ApplyPutLocked(Stripe& s, std::string_view key,
                             std::string value) {
  Versioned& v = s.map[std::string(key)];
  v.value = std::move(value);
  v.version++;
  v.tombstone = false;
}

void KvStore::ApplyDeleteLocked(Stripe& s, std::string_view key) {
  auto it = s.map.find(std::string(key));
  if (it != s.map.end() && !it->second.tombstone) {
    it->second.value.clear();
    it->second.version++;
    it->second.tombstone = true;
  }
}

KvTransaction KvStore::Begin() { return KvTransaction(this); }

KvTransaction KvStore::Resume(
    const std::vector<std::pair<std::string, std::uint64_t>>& reads) {
  KvTransaction tx(this);
  for (const auto& [key, version] : reads) tx.reads_[key] = version;
  return tx;
}

Result<std::string> KvStore::Get(std::string_view key) const {
  const Stripe& s = stripes_[StripeFor(key)];
  MutexLock lk(s.mu);
  auto it = s.map.find(std::string(key));
  if (it == s.map.end() || it->second.tombstone) {
    return Status::NotFound(std::string(key));
  }
  return it->second.value;
}

Status KvStore::Put(std::string_view key, std::string value) {
  Stripe& s = stripes_[StripeFor(key)];
  {
    MutexLock lk(s.mu);
    if (engine_ != nullptr) {
      // Write-ahead: the record is on the log (durable per policy) before
      // the value becomes visible.
      WEAVER_RETURN_IF_ERROR(engine_->AppendBatch(
          {{WalOp::Kind::kPut, std::string(key), value}}));
    }
    ApplyPutLocked(s, key, std::move(value));
    stats_.writes.fetch_add(1, std::memory_order_relaxed);
  }
  MaybeCheckpoint();
  return Status::Ok();
}

Status KvStore::Delete(std::string_view key) {
  Stripe& s = stripes_[StripeFor(key)];
  {
    MutexLock lk(s.mu);
    if (engine_ != nullptr) {
      WEAVER_RETURN_IF_ERROR(engine_->AppendBatch(
          {{WalOp::Kind::kDelete, std::string(key), std::string()}}));
    }
    ApplyDeleteLocked(s, key);
  }
  MaybeCheckpoint();
  return Status::Ok();
}

bool KvStore::Contains(std::string_view key) const {
  const Stripe& s = stripes_[StripeFor(key)];
  MutexLock lk(s.mu);
  auto it = s.map.find(std::string(key));
  return it != s.map.end() && !it->second.tombstone;
}

std::size_t KvStore::ApproximateSize() const {
  std::size_t total = 0;
  for (const auto& s : stripes_) {
    MutexLock lk(s.mu);
    total += s.map.size();
  }
  return total;
}

std::vector<std::pair<std::string, std::string>> KvStore::ScanPrefix(
    std::string_view prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& s : stripes_) {
    MutexLock lk(s.mu);
    for (const auto& [k, v] : s.map) {
      if (v.tombstone) continue;
      if (k.size() >= prefix.size() &&
          std::string_view(k).substr(0, prefix.size()) == prefix) {
        out.emplace_back(k, v.value);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status KvStore::Checkpoint() {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("in-memory store has no checkpoint");
  }
  std::lock_guard<std::mutex> ck(checkpoint_mu_);
  return CheckpointInternal();
}

Status KvStore::CheckpointInternal() {
  // Consistent cut: hold every stripe lock across the WAL rotation and the
  // state scan. No commit can interleave its log append and map publish
  // with this pair, so (snapshot + segments >= wal_start) always covers
  // exactly the committed history. Replaying a record the snapshot already
  // includes is harmless: records carry full values, so reapplication is
  // idempotent.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(stripes_.size());
  for (auto& s : stripes_) locks.emplace_back(s.mu.native());
  const std::uint64_t wal_start = engine_->PrepareCheckpoint();
  std::size_t total = 0;
  for (const auto& s : stripes_) total += s.map.size();
  std::vector<std::pair<std::string, std::string>> rows;
  rows.reserve(total);
  for (const auto& s : stripes_) {
    for (const auto& [k, v] : s.map) {
      if (!v.tombstone) rows.emplace_back(k, v.value);
    }
  }
  locks.clear();  // writers may proceed while the snapshot file is written
  return engine_->CommitCheckpoint(std::move(rows), wal_start);
}

void KvStore::MaybeCheckpoint() {
  if (engine_ == nullptr || !engine_->CheckpointDue()) return;
  std::unique_lock<std::mutex> ck(checkpoint_mu_, std::try_to_lock);
  if (!ck.owns_lock()) return;           // someone else is on it
  if (!engine_->CheckpointDue()) return;  // they already finished
  (void)CheckpointInternal();  // best effort; next write retries
}

// --- KvTransaction ---------------------------------------------------------

KvTransaction::KvTransaction(KvTransaction&& other) noexcept
    : store_(other.store_),
      reads_(std::move(other.reads_)),
      writes_(std::move(other.writes_)),
      finished_(other.finished_) {
  other.store_ = nullptr;
  other.finished_ = true;
}

KvTransaction& KvTransaction::operator=(KvTransaction&& other) noexcept {
  if (this != &other) {
    Abort();
    store_ = other.store_;
    reads_ = std::move(other.reads_);
    writes_ = std::move(other.writes_);
    finished_ = other.finished_;
    other.store_ = nullptr;
    other.finished_ = true;
  }
  return *this;
}

KvTransaction::~KvTransaction() { Abort(); }

void KvTransaction::Abort() {
  if (store_ == nullptr || finished_) return;
  finished_ = true;
  reads_.clear();
  writes_.clear();
  store_->stats_.rollbacks.fetch_add(1, std::memory_order_relaxed);
}

Result<std::string> KvTransaction::Get(std::string_view key) {
  if (store_ == nullptr) {
    return Status::FailedPrecondition("KvTransaction was moved from");
  }
  store_->stats_.reads.fetch_add(1, std::memory_order_relaxed);
  const std::string k(key);
  // Read-your-writes: buffered writes win over committed state.
  if (auto wit = writes_.find(k); wit != writes_.end()) {
    if (!wit->second.value.has_value()) return Status::NotFound(k);
    return *wit->second.value;
  }
  KvStore::Stripe& s = store_->stripes_[store_->StripeFor(key)];
  MutexLock lk(s.mu);
  auto it = s.map.find(k);
  const std::uint64_t version = it == s.map.end() ? 0 : it->second.version;
  // First read of a key pins its version; a repeated read that observes a
  // different version would be a conflict at commit anyway, so keep the
  // first-recorded version (earliest dependency).
  reads_.try_emplace(k, version);
  if (it == s.map.end() || it->second.tombstone) return Status::NotFound(k);
  return it->second.value;
}

void KvTransaction::Put(std::string_view key, std::string value) {
  if (store_ == nullptr) return;  // moved-from shell: inert
  writes_[std::string(key)] = PendingWrite{std::move(value)};
}

void KvTransaction::Delete(std::string_view key) {
  if (store_ == nullptr) return;  // moved-from shell: inert
  writes_[std::string(key)] = PendingWrite{std::nullopt};
}

Status KvTransaction::Commit() {
  if (store_ == nullptr || finished_) {
    return Status::FailedPrecondition("KvTransaction already finished");
  }
  finished_ = true;

  // Gather the distinct stripes touched by the read and write sets, and
  // lock them in index order: canonical ordering makes concurrent commits
  // deadlock-free (same trick Warp's chain ordering achieves).
  std::vector<std::size_t> stripe_idx;
  stripe_idx.reserve(reads_.size() + writes_.size());
  for (const auto& [k, _] : reads_) stripe_idx.push_back(store_->StripeFor(k));
  for (const auto& [k, _] : writes_) stripe_idx.push_back(store_->StripeFor(k));
  std::sort(stripe_idx.begin(), stripe_idx.end());
  stripe_idx.erase(std::unique(stripe_idx.begin(), stripe_idx.end()),
                   stripe_idx.end());

  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(stripe_idx.size());
  for (std::size_t idx : stripe_idx) {
    locks.emplace_back(store_->stripes_[idx].mu.native());
  }

  // Validate: every version read must still be current.
  for (const auto& [key, version] : reads_) {
    const KvStore::Stripe& s = store_->stripes_[store_->StripeFor(key)];
    if (store_->VersionOfLocked(s, key) != version) {
      store_->stats_.aborts.fetch_add(1, std::memory_order_relaxed);
      return Status::Aborted("read-set conflict on key " + key);
    }
  }

  // Validated: log the whole batch as one atomic WAL record before any of
  // it becomes visible. A crash after this append replays the entire
  // batch; a crash before it replays none of it -- never a prefix.
  if (store_->engine_ != nullptr && !writes_.empty()) {
    std::vector<WalOp> batch;
    batch.reserve(writes_.size());
    for (const auto& [key, w] : writes_) {
      if (w.value.has_value()) {
        batch.push_back({WalOp::Kind::kPut, key, *w.value});
      } else {
        batch.push_back({WalOp::Kind::kDelete, key, std::string()});
      }
    }
    const Status logged = store_->engine_->AppendBatch(batch);
    if (!logged.ok()) {
      store_->stats_.aborts.fetch_add(1, std::memory_order_relaxed);
      return logged;
    }
  }

  // Apply buffered writes.
  for (auto& [key, w] : writes_) {
    KvStore::Stripe& s = store_->stripes_[store_->StripeFor(key)];
    if (w.value.has_value()) {
      store_->ApplyPutLocked(s, key, std::move(*w.value));
      store_->stats_.writes.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Deletion must still advance the key's version history so a later
      // re-insert cannot revalidate a stale reader (ABA): keep a tombstone
      // with a bumped version.
      store_->ApplyDeleteLocked(s, key);
    }
  }
  store_->stats_.commits.fetch_add(1, std::memory_order_relaxed);
  locks.clear();
  store_->MaybeCheckpoint();
  return Status::Ok();
}

}  // namespace weaver
