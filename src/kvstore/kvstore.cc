#include "kvstore/kvstore.h"

#include <algorithm>
#include <functional>

#include "common/ids.h"

namespace weaver {

KvStore::KvStore(std::size_t stripes)
    : stripes_(stripes == 0 ? 1 : stripes) {}

std::size_t KvStore::StripeFor(std::string_view key) const {
  return std::hash<std::string_view>{}(key) % stripes_.size();
}

std::uint64_t KvStore::VersionOfLocked(const Stripe& s,
                                       std::string_view key) const {
  auto it = s.map.find(std::string(key));
  return it == s.map.end() ? 0 : it->second.version;
}

KvTransaction KvStore::Begin() { return KvTransaction(this); }

Result<std::string> KvStore::Get(std::string_view key) const {
  const Stripe& s = stripes_[StripeFor(key)];
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.map.find(std::string(key));
  if (it == s.map.end() || it->second.tombstone) {
    return Status::NotFound(std::string(key));
  }
  return it->second.value;
}

void KvStore::Put(std::string_view key, std::string value) {
  Stripe& s = stripes_[StripeFor(key)];
  std::lock_guard<std::mutex> lk(s.mu);
  Versioned& v = s.map[std::string(key)];
  v.value = std::move(value);
  v.version++;
  v.tombstone = false;
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
}

void KvStore::Delete(std::string_view key) {
  Stripe& s = stripes_[StripeFor(key)];
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.map.find(std::string(key));
  if (it != s.map.end()) {
    it->second.value.clear();
    it->second.version++;
    it->second.tombstone = true;
  }
}

bool KvStore::Contains(std::string_view key) const {
  const Stripe& s = stripes_[StripeFor(key)];
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.map.find(std::string(key));
  return it != s.map.end() && !it->second.tombstone;
}

std::size_t KvStore::ApproximateSize() const {
  std::size_t total = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lk(s.mu);
    total += s.map.size();
  }
  return total;
}

std::vector<std::pair<std::string, std::string>> KvStore::ScanPrefix(
    std::string_view prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lk(s.mu);
    for (const auto& [k, v] : s.map) {
      if (v.tombstone) continue;
      if (k.size() >= prefix.size() &&
          std::string_view(k).substr(0, prefix.size()) == prefix) {
        out.emplace_back(k, v.value);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::string> KvTransaction::Get(std::string_view key) {
  store_->stats_.reads.fetch_add(1, std::memory_order_relaxed);
  const std::string k(key);
  // Read-your-writes: buffered writes win over committed state.
  if (auto wit = writes_.find(k); wit != writes_.end()) {
    if (!wit->second.value.has_value()) return Status::NotFound(k);
    return *wit->second.value;
  }
  KvStore::Stripe& s = store_->stripes_[store_->StripeFor(key)];
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.map.find(k);
  const std::uint64_t version = it == s.map.end() ? 0 : it->second.version;
  // First read of a key pins its version; a repeated read that observes a
  // different version would be a conflict at commit anyway, so keep the
  // first-recorded version (earliest dependency).
  reads_.try_emplace(k, version);
  if (it == s.map.end() || it->second.tombstone) return Status::NotFound(k);
  return it->second.value;
}

void KvTransaction::Put(std::string_view key, std::string value) {
  writes_[std::string(key)] = PendingWrite{std::move(value)};
}

void KvTransaction::Delete(std::string_view key) {
  writes_[std::string(key)] = PendingWrite{std::nullopt};
}

Status KvTransaction::Commit() {
  if (finished_) {
    return Status::Internal("KvTransaction reused after Commit");
  }
  finished_ = true;

  // Gather the distinct stripes touched by the read and write sets, and
  // lock them in index order: canonical ordering makes concurrent commits
  // deadlock-free (same trick Warp's chain ordering achieves).
  std::vector<std::size_t> stripe_idx;
  stripe_idx.reserve(reads_.size() + writes_.size());
  for (const auto& [k, _] : reads_) stripe_idx.push_back(store_->StripeFor(k));
  for (const auto& [k, _] : writes_) stripe_idx.push_back(store_->StripeFor(k));
  std::sort(stripe_idx.begin(), stripe_idx.end());
  stripe_idx.erase(std::unique(stripe_idx.begin(), stripe_idx.end()),
                   stripe_idx.end());

  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(stripe_idx.size());
  for (std::size_t idx : stripe_idx) {
    locks.emplace_back(store_->stripes_[idx].mu);
  }

  // Validate: every version read must still be current.
  for (const auto& [key, version] : reads_) {
    const KvStore::Stripe& s = store_->stripes_[store_->StripeFor(key)];
    if (store_->VersionOfLocked(s, key) != version) {
      store_->stats_.aborts.fetch_add(1, std::memory_order_relaxed);
      return Status::Aborted("read-set conflict on key " + key);
    }
  }

  // Apply buffered writes.
  for (auto& [key, w] : writes_) {
    KvStore::Stripe& s = store_->stripes_[store_->StripeFor(key)];
    if (w.value.has_value()) {
      KvStore::Versioned& v = s.map[key];
      v.value = std::move(*w.value);
      v.version++;
      v.tombstone = false;
      store_->stats_.writes.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Deletion must still advance the key's version history so a later
      // re-insert cannot revalidate a stale reader (ABA): keep a tombstone
      // with a bumped version.
      auto it = s.map.find(key);
      if (it != s.map.end() && !it->second.tombstone) {
        it->second.value.clear();
        it->second.version++;
        it->second.tombstone = true;
      }
    }
  }
  store_->stats_.commits.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

}  // namespace weaver
