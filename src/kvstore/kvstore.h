// KvStore: the backing store (paper §3.2), standing in for HyperDex Warp.
//
// Weaver relies on the backing store for exactly two things:
//   1. Durable, fault-tolerant storage of graph data (vertices are opaque
//      serialized blobs) plus the vertex -> shard mapping, used to recover
//      failed shard servers (paper §4.3).
//   2. ACID multi-key transactions that abort when data read during the
//      transaction was modified concurrently -- the "acyclic transactions"
//      optimistic protocol of Warp (paper §4.2). Gatekeepers run every
//      read-write transaction here first; only committed transactions are
//      forwarded to the shards.
//
// This implementation provides those guarantees with per-key version
// numbers and OCC: reads record (key, version); commit locks the affected
// stripes in canonical order, validates every recorded version, and applies
// buffered writes atomically. It is linearizable at commit points and
// serializable overall (validated by tests/kvstore_test.cc).
//
// Durability: opened with a StorageOptions carrying a data_dir, the store
// layers on a write-ahead log + checkpoint engine (src/storage/): every
// committed write batch is logged before it is published, checkpoints are
// taken as the log grows, and Open() rebuilds the committed state from the
// newest checkpoint plus the WAL tail. The default construction remains a
// pure in-memory store.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "storage/storage_engine.h"
#include "storage/storage_options.h"

namespace weaver {

class KvTransaction;

class KvStore {
 public:
  struct Stats {
    std::atomic<std::uint64_t> commits{0};
    std::atomic<std::uint64_t> aborts{0};
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> writes{0};
    /// Transactions abandoned without Commit() (RAII rollback).
    std::atomic<std::uint64_t> rollbacks{0};
  };

  explicit KvStore(std::size_t stripes = 64);
  ~KvStore();
  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Opens a durable store rooted at `storage.data_dir`: recovers the
  /// committed state from the newest checkpoint + WAL tail (tolerating a
  /// torn final record), then logs every subsequent write ahead of
  /// publishing it. Fails only on real storage errors (unreadable dir,
  /// corrupt checkpoint or manifest) -- never on an empty or missing dir.
  static Result<std::unique_ptr<KvStore>> Open(
      std::size_t stripes, const StorageOptions& storage);

  /// Starts an optimistic transaction. The returned object is bound to this
  /// store and must not outlive it.
  KvTransaction Begin();

  /// Rebuilds a transaction from an exported read set (key -> observed
  /// version): the validation state of a transaction whose reads ran in
  /// another process (a client submitting a ClientCommit message over a
  /// real transport -- docs/transport.md). Commit validates the imported
  /// versions exactly as if the reads had happened here, so the OCC
  /// serializability guarantee survives the process boundary.
  KvTransaction Resume(
      const std::vector<std::pair<std::string, std::uint64_t>>& reads);

  /// Non-transactional read of the latest committed value.
  Result<std::string> Get(std::string_view key) const;
  /// Non-transactional blind write (used for bulk loads and recovery).
  /// Non-OK only on a durable-log failure (in-memory stores never fail).
  Status Put(std::string_view key, std::string value);
  /// Non-transactional delete.
  Status Delete(std::string_view key);

  bool Contains(std::string_view key) const;
  std::size_t ApproximateSize() const;

  /// Snapshot of all keys with a given prefix (table scan; recovery path).
  std::vector<std::pair<std::string, std::string>> ScanPrefix(
      std::string_view prefix) const;

  /// Takes a checkpoint now: snapshots the committed state under every
  /// stripe lock, writes it beside the WAL, and truncates log segments the
  /// snapshot covers. FailedPrecondition on an in-memory store.
  Status Checkpoint();

  bool durable() const { return engine_ != nullptr; }
  /// Engine access (WAL stats, epoch persistence); null when in-memory.
  storage::StorageEngine* storage_engine() { return engine_.get(); }
  const storage::StorageEngine* storage_engine() const {
    return engine_.get();
  }
  /// What recovery replayed at Open() (zeroes for fresh/in-memory stores).
  const storage::StorageEngine::RecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }

  const Stats& stats() const { return stats_; }

 private:
  friend class KvTransaction;

  struct Versioned {
    std::string value;
    std::uint64_t version = 0;  // 0 is reserved for "never existed"
    // Deletions leave a tombstone with a bumped version so that a
    // delete + re-insert cannot revalidate a stale reader (ABA).
    bool tombstone = false;
  };
  struct Stripe {
    mutable Mutex mu;
    std::unordered_map<std::string, Versioned> map GUARDED_BY(mu);
  };

  std::size_t StripeFor(std::string_view key) const;
  /// Version of `key` as currently committed (0 if absent); caller holds
  /// the stripe lock (transactional reads re-check under lock at commit).
  std::uint64_t VersionOfLocked(const Stripe& s, std::string_view key) const
      REQUIRES(s.mu);

  /// Mutators shared by the write paths and WAL replay; caller holds the
  /// stripe lock (the single-threaded recovery takes it uncontended).
  void ApplyPutLocked(Stripe& s, std::string_view key, std::string value)
      REQUIRES(s.mu);
  void ApplyDeleteLocked(Stripe& s, std::string_view key) REQUIRES(s.mu);

  /// Checkpoints when the engine says enough WAL has accumulated. Called
  /// off the hot path, after stripe locks are released.
  void MaybeCheckpoint();
  // ts_unchecked: takes every stripe lock through a dynamic
  // std::unique_lock vector (a consistent cut across a runtime-sized lock
  // bank), which the analysis cannot model.
  Status CheckpointInternal() NO_THREAD_SAFETY_ANALYSIS;

  std::vector<Stripe> stripes_;
  std::unique_ptr<storage::StorageEngine> engine_;
  storage::StorageEngine::RecoveryStats recovery_stats_;
  /// Serializes checkpoints (guards no fields; plain mutex on purpose --
  /// MaybeCheckpoint's try_to_lock has no annotated equivalent).
  std::mutex checkpoint_mu_;
  Stats stats_;
};

/// Buffered-write optimistic transaction. Reads go to the committed state
/// and record versions; writes are visible to this transaction's own reads
/// (read-your-writes) but published only by Commit().
///
/// RAII: a transaction that goes out of scope without a successful
/// Commit() rolls back -- its buffered write set is discarded and counted
/// in Stats::rollbacks. Movable, not copyable.
class KvTransaction {
 public:
  /// Constructs an inert, already-finished transaction (the moved-from
  /// state). Lets containers and wrapper types (core Transaction,
  /// client-session requests) hold transactions by value before one is
  /// bound to a store.
  KvTransaction() : store_(nullptr), finished_(true) {}
  KvTransaction(KvTransaction&& other) noexcept;
  KvTransaction& operator=(KvTransaction&& other) noexcept;
  KvTransaction(const KvTransaction&) = delete;
  KvTransaction& operator=(const KvTransaction&) = delete;
  ~KvTransaction();

  /// Transactional read. Missing keys return NotFound but are still
  /// recorded in the read set (so a concurrent insert aborts us).
  Result<std::string> Get(std::string_view key);

  void Put(std::string_view key, std::string value);
  void Delete(std::string_view key);

  /// OCC commit: validates the read set and applies buffered writes
  /// atomically (logging the batch ahead of publication when the store is
  /// durable). Returns Aborted on conflict (caller retries) and
  /// FailedPrecondition on a transaction that already finished.
  // ts_unchecked: locks the touched stripes through a dynamic sorted
  // std::unique_lock vector (canonical-order deadlock avoidance over a
  // runtime key set), which the analysis cannot model.
  Status Commit() NO_THREAD_SAFETY_ANALYSIS;

  /// Explicitly discards the buffered write set. Idempotent; also run by
  /// the destructor for transactions that never finished.
  void Abort();

  /// True once the transaction committed or aborted (or was moved from).
  bool finished() const { return finished_; }

  /// Exports the OCC read set (key -> observed version) so a commit can
  /// be submitted to another process and resumed there (KvStore::Resume).
  std::vector<std::pair<std::string, std::uint64_t>> ExportReads() const {
    return std::vector<std::pair<std::string, std::uint64_t>>(reads_.begin(),
                                                              reads_.end());
  }

  std::size_t read_set_size() const { return reads_.size(); }
  std::size_t write_set_size() const { return writes_.size(); }

 private:
  friend class KvStore;
  explicit KvTransaction(KvStore* store) : store_(store) {}

  struct PendingWrite {
    std::optional<std::string> value;  // nullopt == delete
  };

  KvStore* store_;
  std::unordered_map<std::string, std::uint64_t> reads_;  // key -> version
  std::unordered_map<std::string, PendingWrite> writes_;
  bool finished_ = false;
};

/// Key-space helpers: the backing store holds several logical tables keyed
/// by a one-byte prefix (vertex blobs, vertex->shard map, last-update
/// timestamps).
namespace kv_keys {

inline std::string VertexData(std::uint64_t node_id) {
  return "v:" + std::to_string(node_id);
}
inline std::string VertexShardMap(std::uint64_t node_id) {
  return "m:" + std::to_string(node_id);
}
inline std::string VertexLastUpdate(std::uint64_t node_id) {
  return "u:" + std::to_string(node_id);
}
inline constexpr std::string_view kVertexDataPrefix = "v:";
inline constexpr std::string_view kVertexShardMapPrefix = "m:";

}  // namespace kv_keys

}  // namespace weaver
