// KvStore: the backing store (paper §3.2), standing in for HyperDex Warp.
//
// Weaver relies on the backing store for exactly two things:
//   1. Durable, fault-tolerant storage of graph data (vertices are opaque
//      serialized blobs) plus the vertex -> shard mapping, used to recover
//      failed shard servers (paper §4.3).
//   2. ACID multi-key transactions that abort when data read during the
//      transaction was modified concurrently -- the "acyclic transactions"
//      optimistic protocol of Warp (paper §4.2). Gatekeepers run every
//      read-write transaction here first; only committed transactions are
//      forwarded to the shards.
//
// This implementation provides those guarantees with per-key version
// numbers and OCC: reads record (key, version); commit locks the affected
// stripes in canonical order, validates every recorded version, and applies
// buffered writes atomically. It is linearizable at commit points and
// serializable overall (validated by tests/kvstore_test.cc).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace weaver {

class KvTransaction;

class KvStore {
 public:
  struct Stats {
    std::atomic<std::uint64_t> commits{0};
    std::atomic<std::uint64_t> aborts{0};
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> writes{0};
  };

  explicit KvStore(std::size_t stripes = 64);
  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Starts an optimistic transaction. The returned object is bound to this
  /// store and must not outlive it.
  KvTransaction Begin();

  /// Non-transactional read of the latest committed value.
  Result<std::string> Get(std::string_view key) const;
  /// Non-transactional blind write (used for bulk loads and recovery).
  void Put(std::string_view key, std::string value);
  /// Non-transactional delete.
  void Delete(std::string_view key);

  bool Contains(std::string_view key) const;
  std::size_t ApproximateSize() const;

  /// Snapshot of all keys with a given prefix (table scan; recovery path).
  std::vector<std::pair<std::string, std::string>> ScanPrefix(
      std::string_view prefix) const;

  const Stats& stats() const { return stats_; }

 private:
  friend class KvTransaction;

  struct Versioned {
    std::string value;
    std::uint64_t version = 0;  // 0 is reserved for "never existed"
    // Deletions leave a tombstone with a bumped version so that a
    // delete + re-insert cannot revalidate a stale reader (ABA).
    bool tombstone = false;
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::string, Versioned> map;
  };

  std::size_t StripeFor(std::string_view key) const;
  /// Version of `key` as currently committed (0 if absent). Caller must
  /// hold the stripe lock or tolerate racing (transactional reads re-check
  /// under lock at commit).
  std::uint64_t VersionOfLocked(const Stripe& s, std::string_view key) const;

  std::vector<Stripe> stripes_;
  Stats stats_;
};

/// Buffered-write optimistic transaction. Reads go to the committed state
/// and record versions; writes are visible to this transaction's own reads
/// (read-your-writes) but published only by Commit().
class KvTransaction {
 public:
  /// Transactional read. Missing keys return NotFound but are still
  /// recorded in the read set (so a concurrent insert aborts us).
  Result<std::string> Get(std::string_view key);

  void Put(std::string_view key, std::string value);
  void Delete(std::string_view key);

  /// OCC commit: validates the read set and applies buffered writes
  /// atomically. Returns Aborted on conflict (caller retries). A committed
  /// or aborted transaction must not be reused.
  Status Commit();

  std::size_t read_set_size() const { return reads_.size(); }
  std::size_t write_set_size() const { return writes_.size(); }

 private:
  friend class KvStore;
  explicit KvTransaction(KvStore* store) : store_(store) {}

  struct PendingWrite {
    std::optional<std::string> value;  // nullopt == delete
  };

  KvStore* store_;
  std::unordered_map<std::string, std::uint64_t> reads_;  // key -> version
  std::unordered_map<std::string, PendingWrite> writes_;
  bool finished_ = false;
};

/// Key-space helpers: the backing store holds several logical tables keyed
/// by a one-byte prefix (vertex blobs, vertex->shard map, last-update
/// timestamps).
namespace kv_keys {

inline std::string VertexData(std::uint64_t node_id) {
  return "v:" + std::to_string(node_id);
}
inline std::string VertexShardMap(std::uint64_t node_id) {
  return "m:" + std::to_string(node_id);
}
inline std::string VertexLastUpdate(std::uint64_t node_id) {
  return "u:" + std::to_string(node_id);
}
inline constexpr std::string_view kVertexDataPrefix = "v:";
inline constexpr std::string_view kVertexShardMapPrefix = "m:";

}  // namespace kv_keys

}  // namespace weaver
