#include "graph/graph_store.h"

#include <algorithm>

namespace weaver {

std::size_t Node::OutDegreeAt(const RefinableTimestamp& read_ts,
                              const OrderFn& order) const {
  std::size_t n = 0;
  for (const auto& [eid, e] : out_edges) {
    if (e.VisibleAt(read_ts, order)) ++n;
  }
  return n;
}

Status GraphStore::CreateNode(NodeId id, const RefinableTimestamp& ts) {
  auto [it, inserted] = nodes_.try_emplace(id);
  if (!inserted) {
    // Re-creating a deleted vertex id is not permitted: handles are unique
    // for all time in the multi-version graph.
    return Status::AlreadyExists("node " + std::to_string(id));
  }
  it->second = std::make_unique<Node>();
  it->second->id = id;
  it->second->created = ts;
  it->second->last_update = ts;
  stats_.nodes_created++;
  return Status::Ok();
}

Status GraphStore::DeleteNode(NodeId id, const RefinableTimestamp& ts) {
  Node* n = FindNodeMutable(id);
  if (n == nullptr) return Status::NotFound("node " + std::to_string(id));
  if (n->deleted.valid()) {
    return Status::FailedPrecondition("node already deleted");
  }
  n->deleted = ts;
  n->last_update = ts;
  stats_.nodes_deleted++;
  return Status::Ok();
}

Status GraphStore::CreateEdge(EdgeId eid, NodeId from, NodeId to,
                              const RefinableTimestamp& ts) {
  Node* n = FindNodeMutable(from);
  if (n == nullptr) return Status::NotFound("node " + std::to_string(from));
  if (n->deleted.valid()) {
    return Status::FailedPrecondition("source node deleted");
  }
  auto [it, inserted] = n->out_edges.try_emplace(eid);
  if (!inserted) return Status::AlreadyExists("edge " + std::to_string(eid));
  Edge& e = it->second;
  e.id = eid;
  e.from = from;
  e.to = to;
  e.created = ts;
  n->last_update = ts;
  stats_.edges_created++;
  return Status::Ok();
}

Status GraphStore::DeleteEdge(NodeId from, EdgeId eid,
                              const RefinableTimestamp& ts) {
  Node* n = FindNodeMutable(from);
  if (n == nullptr) return Status::NotFound("node " + std::to_string(from));
  auto it = n->out_edges.find(eid);
  if (it == n->out_edges.end()) {
    return Status::NotFound("edge " + std::to_string(eid));
  }
  if (it->second.deleted.valid()) {
    return Status::FailedPrecondition("edge already deleted");
  }
  it->second.deleted = ts;
  n->last_update = ts;
  stats_.edges_deleted++;
  return Status::Ok();
}

Status GraphStore::AssignNodeProperty(NodeId id, std::string_view key,
                                      std::string_view value,
                                      const RefinableTimestamp& ts) {
  Node* n = FindNodeMutable(id);
  if (n == nullptr) return Status::NotFound("node " + std::to_string(id));
  n->props.Assign(key, value, ts);
  n->last_update = ts;
  stats_.props_assigned++;
  return Status::Ok();
}

Status GraphStore::RemoveNodeProperty(NodeId id, std::string_view key,
                                      const RefinableTimestamp& ts) {
  Node* n = FindNodeMutable(id);
  if (n == nullptr) return Status::NotFound("node " + std::to_string(id));
  if (!n->props.Remove(key, ts)) {
    return Status::NotFound("property " + std::string(key));
  }
  n->last_update = ts;
  return Status::Ok();
}

Status GraphStore::AssignEdgeProperty(NodeId from, EdgeId eid,
                                      std::string_view key,
                                      std::string_view value,
                                      const RefinableTimestamp& ts) {
  Node* n = FindNodeMutable(from);
  if (n == nullptr) return Status::NotFound("node " + std::to_string(from));
  auto it = n->out_edges.find(eid);
  if (it == n->out_edges.end()) {
    return Status::NotFound("edge " + std::to_string(eid));
  }
  it->second.props.Assign(key, value, ts);
  n->last_update = ts;
  stats_.props_assigned++;
  return Status::Ok();
}

Status GraphStore::RemoveEdgeProperty(NodeId from, EdgeId eid,
                                      std::string_view key,
                                      const RefinableTimestamp& ts) {
  Node* n = FindNodeMutable(from);
  if (n == nullptr) return Status::NotFound("node " + std::to_string(from));
  auto it = n->out_edges.find(eid);
  if (it == n->out_edges.end()) {
    return Status::NotFound("edge " + std::to_string(eid));
  }
  if (!it->second.props.Remove(key, ts)) {
    return Status::NotFound("property " + std::string(key));
  }
  n->last_update = ts;
  return Status::Ok();
}

const Node* GraphStore::FindNode(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

Node* GraphStore::FindNodeMutable(NodeId id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

std::vector<NodeId> GraphStore::AllNodeIds() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& [id, _] : nodes_) out.push_back(id);
  return out;
}

std::size_t GraphStore::CollectBefore(const RefinableTimestamp& watermark,
                                      const OrderFn& order) {
  std::size_t collected = 0;
  std::vector<NodeId> dead_nodes;
  for (auto& [id, node] : nodes_) {
    if (node->deleted.valid() &&
        order(node->deleted, watermark) == ClockOrder::kBefore) {
      dead_nodes.push_back(id);
      continue;
    }
    collected += node->props.CollectBefore(watermark, order);
    std::vector<EdgeId> dead_edges;
    for (auto& [eid, e] : node->out_edges) {
      if (e.deleted.valid() &&
          order(e.deleted, watermark) == ClockOrder::kBefore) {
        dead_edges.push_back(eid);
      } else {
        collected += e.props.CollectBefore(watermark, order);
      }
    }
    for (EdgeId eid : dead_edges) {
      node->out_edges.erase(eid);
      ++collected;
    }
  }
  for (NodeId id : dead_nodes) {
    nodes_.erase(id);
    ++collected;
  }
  stats_.versions_collected += collected;
  return collected;
}

namespace {

void SerializeTs(ByteWriter* w, const RefinableTimestamp& ts) {
  w->PutU8(ts.valid() ? 1 : 0);
  if (ts.valid()) ts.Serialize(w);
}

Status DeserializeTs(ByteReader* r, RefinableTimestamp* ts) {
  std::uint8_t present = 0;
  WEAVER_RETURN_IF_ERROR(r->GetU8(&present));
  if (present) {
    WEAVER_RETURN_IF_ERROR(RefinableTimestamp::Deserialize(r, ts));
  } else {
    *ts = RefinableTimestamp{};
  }
  return Status::Ok();
}

void SerializeProps(ByteWriter* w, const PropertySet& props) {
  w->PutU32(static_cast<std::uint32_t>(props.versions().size()));
  for (const auto& v : props.versions()) {
    w->PutString(v.key);
    w->PutString(v.value);
    SerializeTs(w, v.created);
    SerializeTs(w, v.deleted);
  }
}

Status DeserializeProps(ByteReader* r, PropertySet* props) {
  std::uint32_t n = 0;
  WEAVER_RETURN_IF_ERROR(r->GetU32(&n));
  for (std::uint32_t i = 0; i < n; ++i) {
    PropertyVersion v;
    WEAVER_RETURN_IF_ERROR(r->GetString(&v.key));
    WEAVER_RETURN_IF_ERROR(r->GetString(&v.value));
    WEAVER_RETURN_IF_ERROR(DeserializeTs(r, &v.created));
    WEAVER_RETURN_IF_ERROR(DeserializeTs(r, &v.deleted));
    props->AppendVersionRaw(std::move(v));
  }
  return Status::Ok();
}

}  // namespace

std::string GraphStore::SerializeNode(const Node& node) {
  ByteWriter w;
  w.PutU64(node.id);
  SerializeTs(&w, node.created);
  SerializeTs(&w, node.deleted);
  SerializeTs(&w, node.last_update);
  SerializeProps(&w, node.props);
  w.PutU32(static_cast<std::uint32_t>(node.out_edges.size()));
  for (const auto& [eid, e] : node.out_edges) {
    w.PutU64(e.id);
    w.PutU64(e.from);
    w.PutU64(e.to);
    SerializeTs(&w, e.created);
    SerializeTs(&w, e.deleted);
    SerializeProps(&w, e.props);
  }
  return w.Take();
}

Result<Node> GraphStore::DeserializeNode(std::string_view blob) {
  ByteReader r(blob);
  Node node;
  WEAVER_RETURN_IF_ERROR(r.GetU64(&node.id));
  WEAVER_RETURN_IF_ERROR(DeserializeTs(&r, &node.created));
  WEAVER_RETURN_IF_ERROR(DeserializeTs(&r, &node.deleted));
  WEAVER_RETURN_IF_ERROR(DeserializeTs(&r, &node.last_update));
  WEAVER_RETURN_IF_ERROR(DeserializeProps(&r, &node.props));
  std::uint32_t edge_count = 0;
  WEAVER_RETURN_IF_ERROR(r.GetU32(&edge_count));
  for (std::uint32_t i = 0; i < edge_count; ++i) {
    Edge e;
    WEAVER_RETURN_IF_ERROR(r.GetU64(&e.id));
    WEAVER_RETURN_IF_ERROR(r.GetU64(&e.from));
    WEAVER_RETURN_IF_ERROR(r.GetU64(&e.to));
    WEAVER_RETURN_IF_ERROR(DeserializeTs(&r, &e.created));
    WEAVER_RETURN_IF_ERROR(DeserializeTs(&r, &e.deleted));
    WEAVER_RETURN_IF_ERROR(DeserializeProps(&r, &e.props));
    const EdgeId eid = e.id;
    node.out_edges.emplace(eid, std::move(e));
  }
  return node;
}

void GraphStore::InstallNode(Node node) {
  const NodeId id = node.id;
  auto ptr = std::make_unique<Node>(std::move(node));
  nodes_[id] = std::move(ptr);
}

void GraphStore::EvictNode(NodeId id) { nodes_.erase(id); }

}  // namespace weaver
