#include "graph/property.h"

#include <algorithm>

namespace weaver {

void PropertySet::Assign(std::string_view key, std::string_view value,
                         const RefinableTimestamp& ts) {
  // Supersede the live version of this key, if any. Scanning backwards
  // finds the most recent (live) version first.
  for (auto it = versions_.rbegin(); it != versions_.rend(); ++it) {
    if (it->key == key && !it->deleted.valid()) {
      it->deleted = ts;
      break;
    }
  }
  versions_.push_back(PropertyVersion{std::string(key), std::string(value),
                                      ts, RefinableTimestamp{}});
}

bool PropertySet::Remove(std::string_view key, const RefinableTimestamp& ts) {
  for (auto it = versions_.rbegin(); it != versions_.rend(); ++it) {
    if (it->key == key && !it->deleted.valid()) {
      it->deleted = ts;
      return true;
    }
  }
  return false;
}

std::optional<std::string> PropertySet::ValueAt(
    std::string_view key, const RefinableTimestamp& read_ts,
    const OrderFn& order) const {
  // Newest-last order: the last visible version is the one in effect.
  for (auto it = versions_.rbegin(); it != versions_.rend(); ++it) {
    if (it->key == key && it->VisibleAt(read_ts, order)) return it->value;
  }
  return std::nullopt;
}

std::vector<std::pair<std::string, std::string>> PropertySet::SnapshotAt(
    const RefinableTimestamp& read_ts, const OrderFn& order) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& v : versions_) {
    if (v.VisibleAt(read_ts, order)) out.emplace_back(v.key, v.value);
  }
  return out;
}

bool PropertySet::Check(std::string_view key, std::string_view value,
                        const RefinableTimestamp& read_ts,
                        const OrderFn& order) const {
  for (auto it = versions_.rbegin(); it != versions_.rend(); ++it) {
    if (it->key == key && it->VisibleAt(read_ts, order)) {
      return it->value == value;
    }
  }
  return false;
}

std::size_t PropertySet::CollectBefore(const RefinableTimestamp& watermark,
                                       const OrderFn& order) {
  const std::size_t before = versions_.size();
  versions_.erase(
      std::remove_if(versions_.begin(), versions_.end(),
                     [&](const PropertyVersion& v) {
                       return v.deleted.valid() &&
                              order(v.deleted, watermark) ==
                                  ClockOrder::kBefore;
                     }),
      versions_.end());
  return before - versions_.size();
}

}  // namespace weaver
