// GraphStore: the in-memory, multi-version property graph held by one
// shard server (paper §3.2, §4.2).
//
// Each shard stores a set of vertices, all out-edges rooted at those
// vertices, and associated attributes. Every structural write (vertex or
// edge creation/deletion, property assignment) is stamped with the
// refinable timestamp of its transaction; deletion marks objects rather
// than erasing them, forming the multi-version graph that lets node
// programs read consistent snapshots without blocking writers.
//
// Threading: a GraphStore is owned by its shard's event loop and is
// externally synchronized -- all mutation and program execution happen on
// that single thread (the actor model the shard server implements).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/serde.h"
#include "graph/property.h"
#include "order/timestamp.h"

namespace weaver {

/// A directed edge rooted at its source vertex.
struct Edge {
  EdgeId id = kInvalidEdgeId;
  NodeId from = kInvalidNodeId;
  NodeId to = kInvalidNodeId;
  PropertySet props;
  RefinableTimestamp created;
  RefinableTimestamp deleted;  // invalid() == live

  bool VisibleAt(const RefinableTimestamp& read_ts,
                 const OrderFn& order) const {
    if (!WriteVisibleAt(created, read_ts, order)) return false;
    if (deleted.valid() && WriteVisibleAt(deleted, read_ts, order)) {
      return false;
    }
    return true;
  }
};

/// A vertex with its out-edges and attributes.
struct Node {
  NodeId id = kInvalidNodeId;
  PropertySet props;
  std::unordered_map<EdgeId, Edge> out_edges;
  RefinableTimestamp created;
  RefinableTimestamp deleted;  // invalid() == live
  /// Timestamp of the last committed write touching this vertex; mirrors
  /// the backing store's last-update record (paper §4.2).
  RefinableTimestamp last_update;

  bool VisibleAt(const RefinableTimestamp& read_ts,
                 const OrderFn& order) const {
    if (!WriteVisibleAt(created, read_ts, order)) return false;
    if (deleted.valid() && WriteVisibleAt(deleted, read_ts, order)) {
      return false;
    }
    return true;
  }

  /// Number of out-edges visible at `read_ts`.
  std::size_t OutDegreeAt(const RefinableTimestamp& read_ts,
                          const OrderFn& order) const;
};

class GraphStore {
 public:
  struct Stats {
    std::uint64_t nodes_created = 0;
    std::uint64_t nodes_deleted = 0;
    std::uint64_t edges_created = 0;
    std::uint64_t edges_deleted = 0;
    std::uint64_t props_assigned = 0;
    std::uint64_t versions_collected = 0;
  };

  GraphStore() = default;
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  // --- Structural writes (applied by the shard in timestamp order) ------

  Status CreateNode(NodeId id, const RefinableTimestamp& ts);
  Status DeleteNode(NodeId id, const RefinableTimestamp& ts);
  Status CreateEdge(EdgeId eid, NodeId from, NodeId to,
                    const RefinableTimestamp& ts);
  Status DeleteEdge(NodeId from, EdgeId eid, const RefinableTimestamp& ts);
  Status AssignNodeProperty(NodeId id, std::string_view key,
                            std::string_view value,
                            const RefinableTimestamp& ts);
  Status RemoveNodeProperty(NodeId id, std::string_view key,
                            const RefinableTimestamp& ts);
  Status AssignEdgeProperty(NodeId from, EdgeId eid, std::string_view key,
                            std::string_view value,
                            const RefinableTimestamp& ts);
  Status RemoveEdgeProperty(NodeId from, EdgeId eid, std::string_view key,
                            const RefinableTimestamp& ts);

  // --- Reads -------------------------------------------------------------

  /// Raw access for node-program execution. Returns nullptr if the vertex
  /// has never existed on this shard (visibility still must be checked).
  const Node* FindNode(NodeId id) const;
  Node* FindNodeMutable(NodeId id);

  bool ContainsNode(NodeId id) const { return nodes_.count(id) != 0; }
  std::size_t NodeCount() const { return nodes_.size(); }
  std::vector<NodeId> AllNodeIds() const;

  // --- Maintenance --------------------------------------------------------

  /// Multi-version GC (paper §4.5): erases objects deleted strictly before
  /// `watermark` (the oldest in-flight operation) and collapses superseded
  /// property versions. Returns number of objects/versions collected.
  std::size_t CollectBefore(const RefinableTimestamp& watermark,
                            const OrderFn& order);

  /// Serialization of one vertex (with all its versions) into a backing-
  /// store blob, and the inverse, used for durability and shard recovery.
  static std::string SerializeNode(const Node& node);
  static Result<Node> DeserializeNode(std::string_view blob);

  /// Installs a recovered vertex, replacing any existing one.
  void InstallNode(Node node);
  /// Removes a vertex outright (repartitioning / migration).
  void EvictNode(NodeId id);

  const Stats& stats() const { return stats_; }

 private:
  std::unordered_map<NodeId, std::unique_ptr<Node>> nodes_;
  Stats stats_;
};

}  // namespace weaver
