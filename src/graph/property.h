// Multi-version named properties on vertices and edges (paper §2.1).
//
// A property version carries the refinable timestamps of the write that
// created it and (once overwritten or removed) the write that deleted it.
// Reads at timestamp T see the version created before T and not yet
// deleted at T -- this is what lets long-running node programs read a
// consistent snapshot while writes proceed (paper §3.1, advantage 3).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "order/timestamp.h"
#include "vclock/vclock.h"

namespace weaver {

/// Definitive order resolver: returns kBefore/kAfter/kEqual for any pair of
/// timestamps, consulting the shard's decision cache and the timeline
/// oracle for concurrent pairs. Visibility checks never see kConcurrent
/// from this function: the shard's execution rules guarantee every write
/// version relevant to a read has already been ordered against it.
using OrderFn = std::function<ClockOrder(const RefinableTimestamp&,
                                         const RefinableTimestamp&)>;

/// True iff `write_ts` is visible to a read executing at `read_ts`.
inline bool WriteVisibleAt(const RefinableTimestamp& write_ts,
                           const RefinableTimestamp& read_ts,
                           const OrderFn& order) {
  const ClockOrder o = order(write_ts, read_ts);
  return o == ClockOrder::kBefore || o == ClockOrder::kEqual;
}

/// One version of one named property.
struct PropertyVersion {
  std::string key;
  std::string value;
  RefinableTimestamp created;
  RefinableTimestamp deleted;  // invalid() == still live

  bool VisibleAt(const RefinableTimestamp& read_ts,
                 const OrderFn& order) const {
    if (!WriteVisibleAt(created, read_ts, order)) return false;
    if (deleted.valid() && WriteVisibleAt(deleted, read_ts, order)) {
      return false;
    }
    return true;
  }
};

/// Version chain for all properties of one graph object, newest last.
class PropertySet {
 public:
  /// Assigns `key` = `value` at time `ts`: the currently-live version of
  /// `key` (if any) is marked deleted at `ts` and a new version appended.
  void Assign(std::string_view key, std::string_view value,
              const RefinableTimestamp& ts);

  /// Removes `key` at time `ts` (marks the live version deleted).
  /// Returns false if no live version existed.
  bool Remove(std::string_view key, const RefinableTimestamp& ts);

  /// Value of `key` as of `read_ts`, or nullopt.
  std::optional<std::string> ValueAt(std::string_view key,
                                     const RefinableTimestamp& read_ts,
                                     const OrderFn& order) const;

  /// All key/value pairs visible at `read_ts`.
  std::vector<std::pair<std::string, std::string>> SnapshotAt(
      const RefinableTimestamp& read_ts, const OrderFn& order) const;

  /// True if any visible version of `key` equals `value` (edge.check() in
  /// the paper's Fig 3 BFS program).
  bool Check(std::string_view key, std::string_view value,
             const RefinableTimestamp& read_ts, const OrderFn& order) const;

  /// Drops versions deleted strictly before `watermark` (paper §4.5).
  /// Returns the number of versions collected.
  std::size_t CollectBefore(const RefinableTimestamp& watermark,
                            const OrderFn& order);

  /// Appends a version verbatim, bypassing supersession logic. Only for
  /// deserialization of an already-consistent version chain.
  void AppendVersionRaw(PropertyVersion v) {
    versions_.push_back(std::move(v));
  }

  const std::vector<PropertyVersion>& versions() const { return versions_; }
  std::size_t VersionCount() const { return versions_.size(); }

 private:
  std::vector<PropertyVersion> versions_;
};

}  // namespace weaver
