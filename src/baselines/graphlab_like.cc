#include "baselines/graphlab_like.h"

#include <algorithm>
#include <barrier>
#include <deque>
#include <thread>

#include "common/queue.h"

namespace weaver {
namespace baselines {

GraphLabLikeEngine::GraphLabLikeEngine(
    std::uint64_t num_nodes,
    const std::vector<std::pair<NodeId, NodeId>>& edges, Options options)
    : num_nodes_(num_nodes), options_(options) {
  offsets_.assign(num_nodes_ + 2, 0);
  for (const auto& [src, dst] : edges) {
    (void)dst;
    if (src <= num_nodes_) offsets_[src + 1]++;
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  adj_.resize(edges.size());
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [src, dst] : edges) {
    if (src <= num_nodes_) adj_[cursor[src]++] = dst;
  }
  vertex_locks_.reserve(num_nodes_ + 1);
  for (std::uint64_t i = 0; i <= num_nodes_; ++i) {
    vertex_locks_.push_back(std::make_unique<std::mutex>());
  }
}

bool GraphLabLikeEngine::ReachableSync(NodeId source, NodeId target) {
  // Per-run engine initialization: the job is distributed to every
  // machine and per-vertex program state is materialized.
  if (options_.engine_start_micros > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.engine_start_micros));
  }
  std::vector<std::uint8_t> visited(num_nodes_ + 1, 0);
  std::vector<NodeId> frontier{source};
  visited[source] = 1;
  std::atomic<bool> found{source == target};
  std::atomic<std::uint64_t> remote_msgs{0};

  // The traversal runs to frontier exhaustion, as Weaver's BFS node
  // program does (no global early termination), so all three systems in
  // the Fig 11 comparison do identical graph work.
  const std::size_t workers = std::max<std::size_t>(1, options_.num_workers);
  while (!frontier.empty()) {
    // One bulk-synchronous superstep: workers split the frontier, then
    // meet at a barrier before the next superstep begins.
    std::vector<std::vector<NodeId>> next_parts(workers);
    std::barrier superstep_barrier(static_cast<std::ptrdiff_t>(workers));
    std::vector<std::thread> pool;
    pool.reserve(workers);
    std::mutex visited_mu;
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        std::vector<NodeId>& mine = next_parts[w];
        for (std::size_t i = w; i < frontier.size(); i += workers) {
          const NodeId v = frontier[i];
          for (std::uint32_t e = offsets_[v]; e < offsets_[v + 1]; ++e) {
            const NodeId nxt = adj_[e];
            // Cross-partition scatter: frontier message over the network.
            if (v % workers != nxt % workers) {
              remote_msgs.fetch_add(1, std::memory_order_relaxed);
            }
            if (nxt == target) found.store(true, std::memory_order_relaxed);
            bool claim = false;
            {
              std::lock_guard<std::mutex> lk(visited_mu);
              if (!visited[nxt]) {
                visited[nxt] = 1;
                claim = true;
              }
            }
            if (claim) mine.push_back(nxt);
          }
        }
        superstep_barrier.arrive_and_wait();
      });
    }
    for (auto& t : pool) t.join();
    // Cluster-wide barriers: the synchronous engine synchronizes after
    // each of the gather, apply, and scatter phases of the superstep.
    if (options_.barrier_micros > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(3 * options_.barrier_micros));
    }
    std::vector<NodeId> next;
    for (auto& part : next_parts) {
      next.insert(next.end(), part.begin(), part.end());
    }
    frontier = std::move(next);
  }
  if (options_.remote_edge_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        remote_msgs.load() * options_.remote_edge_micros));
  }
  return found.load();
}

bool GraphLabLikeEngine::ReachableAsync(NodeId source, NodeId target) {
  // Async engine with edge consistency: a worker applying the vertex
  // program at v holds v's lock and each touched neighbor's lock. Locks
  // spanning machine partitions cost a network round trip, accumulated as
  // virtual time and applied at the end of the run.
  if (options_.engine_start_micros > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.engine_start_micros));
  }
  std::atomic<std::uint64_t> remote_locks{0};
  std::vector<std::uint8_t> visited(num_nodes_ + 1, 0);
  visited[source] = 1;
  if (source == target) return true;

  BlockingQueue<NodeId> queue;
  std::atomic<std::uint64_t> inflight{1};
  std::atomic<bool> found{false};
  queue.Push(source);

  const std::size_t workers = std::max<std::size_t>(1, options_.num_workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  std::mutex visited_mu;
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (auto v = queue.Pop()) {
        for (std::uint32_t e = offsets_[*v]; e < offsets_[*v + 1]; ++e) {
          const NodeId nxt = adj_[e];
          if (nxt == *v) continue;
          // Edge consistency: hold both endpoint locks for the scatter,
          // acquired in vertex-id order (deadlock-free, as in GraphLab's
          // locking engine).
          const NodeId lo = std::min(*v, nxt);
          const NodeId hi = std::max(*v, nxt);
          std::unique_lock<std::mutex> lo_lk(*vertex_locks_[lo]);
          std::unique_lock<std::mutex> hi_lk(*vertex_locks_[hi]);
          // Cross-partition edge: the neighbor's lock lives on another
          // machine (vertices hash-partitioned over workers).
          if (*v % options_.num_workers != nxt % options_.num_workers) {
            remote_locks.fetch_add(1, std::memory_order_relaxed);
          }
          if (nxt == target) found.store(true, std::memory_order_relaxed);
          bool claim = false;
          {
            std::lock_guard<std::mutex> lk(visited_mu);
            if (!visited[nxt]) {
              visited[nxt] = 1;
              claim = true;
            }
          }
          if (claim) {
            inflight.fetch_add(1, std::memory_order_relaxed);
            queue.Push(nxt);
          }
        }
        if (inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          queue.Close();
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (options_.remote_edge_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        remote_locks.load() * options_.remote_edge_micros));
  }
  return found.load();
}

}  // namespace baselines
}  // namespace weaver
