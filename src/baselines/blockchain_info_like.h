// BlockchainInfoLikeDb: the Blockchain.info comparison baseline (paper
// §6.1, Fig 7).
//
// Blockchain.info serves block queries from a normalized MySQL schema
// [57]; the paper measures 5-8 ms per transaction per block and attributes
// the gap to "expensive MySQL join queries". This baseline reproduces the
// relational execution model:
//
//   blocks(height -> block row)            B-tree (std::map)
//   txs(tx_id -> tx row)                   B-tree
//   outputs(tx_id -> output rows)          secondary index (std::multimap)
//   addresses(addr_id -> address row)      B-tree
//
// A block query is an index-nested-loop join: look up the block row, range
// scan its tx ids, and join each transaction against its outputs and each
// output against the address table, serializing rows to the JSON the raw-
// block API returns. Per-transaction cost is therefore several B-tree
// probes plus row materialization -- a structurally higher marginal cost
// than CoinGraph's one-hop pointer traversal, which is the comparison
// Fig 7 makes.
//
// Substitution note: the paper-era Blockchain.info served from MySQL on
// spinning disks; its 5-8 ms/tx marginal cost is join probes that miss
// the buffer pool. An in-memory std::map probe alone would hide that, so
// each index probe here pays a simulated page fetch with a configurable
// buffer-pool hit ratio and seek time (defaults: 99% hits, 1 ms fetch --
// calibrated in EXPERIMENTS.md so the CoinGraph/baseline marginal-cost
// ratio lands near the paper's ~8-10x). Set disk_seek_micros = 0 for a
// pure in-memory baseline (unit tests do).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/random.h"
#include "workload/blockchain.h"

namespace weaver {
namespace baselines {

class BlockchainInfoLikeDb {
 public:
  struct Options {
    /// Simulated disk seek paid by an index probe that misses the buffer
    /// pool. 0 disables the disk model entirely.
    std::uint64_t disk_seek_micros = 1000;
    double buffer_pool_hit_ratio = 0.99;
    std::uint64_t seed = 31;
  };

  /// Loads the synthetic chain into the relational tables.
  explicit BlockchainInfoLikeDb(const workload::Blockchain& chain)
      : BlockchainInfoLikeDb(chain, Options{}) {}
  BlockchainInfoLikeDb(const workload::Blockchain& chain, Options options);

  /// The raw-block API: renders every transaction of the block at
  /// `height` as JSON, via index-nested-loop joins. Not thread-safe (the
  /// disk model's RNG is unsynchronized), matching single-connection use.
  std::string QueryBlockJson(std::uint32_t height) const;

  std::size_t TxRows() const { return txs_.size(); }
  std::size_t OutputRows() const { return outputs_.size(); }

 private:
  struct BlockRow {
    std::uint32_t height;
    std::vector<std::uint64_t> tx_ids;  // join column
  };
  struct TxRow {
    std::uint64_t id;
    std::uint32_t size_bytes;
    std::uint32_t fee;
  };
  struct OutputRow {
    std::uint64_t value;
    std::uint64_t target_tx;
    std::uint64_t addr_id;
  };
  struct AddressRow {
    std::string addr;
  };

  /// One index probe: pays the simulated page fetch on a pool miss.
  void ChargeProbe() const;

  Options options_;
  mutable Rng rng_{31};
  std::map<std::uint32_t, BlockRow> blocks_;
  std::map<std::uint64_t, TxRow> txs_;
  std::multimap<std::uint64_t, OutputRow> outputs_;  // keyed by spending tx
  std::map<std::uint64_t, AddressRow> addresses_;
};

}  // namespace baselines
}  // namespace weaver
