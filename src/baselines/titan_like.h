// TitanLikeDb: the Titan v0.4.2 comparison baseline (paper §6.2).
//
// Titan executes every transaction with two-phase commit and distributed
// locking: it pessimistically acquires locks on ALL objects the
// transaction touches -- reads included -- holds them through the commit
// round trips against the storage backend (Cassandra in the paper's
// deployment), and only then releases. The paper attributes Titan's flat
// ~2k tx/s (regardless of read ratio) to exactly this mechanism [51].
//
// This baseline reproduces the mechanism: a per-object lock table, sorted
// whole-transaction lock acquisition, and a configurable simulated commit
// round-trip cost standing in for the Cassandra quorum writes of the
// 2PC commit phase (the machines are gone; the wait is not). Lock *hold
// time* therefore includes the commit round trips, which is what destroys
// concurrency under contention -- the effect Fig 9/10 measures.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace weaver {
namespace baselines {

class TitanLikeDb {
 public:
  struct Options {
    /// Simulated per-phase commit round trip (two phases per transaction:
    /// prepare + commit). Models the Cassandra quorum RTT of the paper's
    /// deployment; see EXPERIMENTS.md for calibration.
    std::uint64_t phase_delay_micros = 1000;
    std::size_t lock_table_size = 1 << 16;
  };

  struct Stats {
    std::atomic<std::uint64_t> txs{0};
    std::atomic<std::uint64_t> locks_acquired{0};
  };

  TitanLikeDb() : TitanLikeDb(Options{}) {}
  explicit TitanLikeDb(Options options);

  // --- Offline loading ----------------------------------------------------
  void LoadNode(NodeId id);
  void LoadEdge(NodeId from, NodeId to);

  // --- Transactions (all 2PL + simulated 2PC) ------------------------------
  /// Reads: lock the object, read, pay commit phases, unlock.
  Status GetNode(NodeId id, std::uint64_t* degree_out);
  Status GetEdges(NodeId id, std::vector<NodeId>* targets_out);
  Status CountEdges(NodeId id, std::uint64_t* count_out);
  /// Writes: lock both endpoints, mutate, pay commit phases, unlock.
  Status CreateEdge(NodeId from, NodeId to);
  Status DeleteEdge(NodeId from, NodeId to);

  const Stats& stats() const { return stats_; }
  std::size_t NodeCount() const;

 private:
  struct TNode {
    std::vector<NodeId> out;
  };

  /// Acquires the per-object locks for `objects` in canonical order,
  /// runs `body`, pays the two commit phases, releases.
  Status RunLocked(std::vector<NodeId> objects,
                   const std::function<Status()>& body);
  std::mutex& LockFor(NodeId id);
  void PayCommitPhases() const;

  Options options_;
  mutable std::mutex graph_mu_;  // protects the node map topology
  std::unordered_map<NodeId, TNode> nodes_;
  std::vector<std::unique_ptr<std::mutex>> lock_table_;
  Stats stats_;
};

}  // namespace baselines
}  // namespace weaver
