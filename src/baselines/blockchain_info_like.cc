#include "baselines/blockchain_info_like.h"

#include <thread>

namespace weaver {
namespace baselines {

void BlockchainInfoLikeDb::ChargeProbe() const {
  if (options_.disk_seek_micros == 0) return;
  if (rng_.NextDouble() >= options_.buffer_pool_hit_ratio) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.disk_seek_micros));
  }
}

BlockchainInfoLikeDb::BlockchainInfoLikeDb(
    const workload::Blockchain& chain, Options options)
    : options_(options), rng_(options.seed) {
  std::uint64_t next_addr = 1;
  for (const auto& block : chain.blocks) {
    BlockRow row;
    row.height = block.height;
    for (const auto& tx : block.txs) {
      row.tx_ids.push_back(tx.id);
      txs_[tx.id] = TxRow{tx.id, tx.size_bytes, tx.fee};
      for (const auto& [target, value] : tx.outputs) {
        const std::uint64_t addr_id = next_addr++;
        addresses_[addr_id] =
            AddressRow{"1addr" + std::to_string(addr_id)};
        outputs_.emplace(tx.id, OutputRow{value, target, addr_id});
      }
    }
    blocks_[block.height] = std::move(row);
  }
}

std::string BlockchainInfoLikeDb::QueryBlockJson(
    std::uint32_t height) const {
  // SELECT ... FROM blocks WHERE height = ?        (B-tree probe)
  ChargeProbe();
  auto bit = blocks_.find(height);
  if (bit == blocks_.end()) return "{}";
  std::string json = "{\"height\":" + std::to_string(height) + ",\"tx\":[";
  bool first_tx = true;
  for (std::uint64_t tx_id : bit->second.tx_ids) {
    //   JOIN txs ON txs.id = ?                      (B-tree probe per tx)
    ChargeProbe();
    auto tit = txs_.find(tx_id);
    if (tit == txs_.end()) continue;
    if (!first_tx) json += ",";
    first_tx = false;
    json += "{\"tx\":" + std::to_string(tx_id) +
            ",\"size\":" + std::to_string(tit->second.size_bytes) +
            ",\"fee\":" + std::to_string(tit->second.fee) + ",\"out\":[";
    //   JOIN outputs ON outputs.tx_id = ?           (range scan per tx)
    ChargeProbe();
    auto [lo, hi] = outputs_.equal_range(tx_id);
    bool first_out = true;
    for (auto oit = lo; oit != hi; ++oit) {
      if (!first_out) json += ",";
      first_out = false;
      //   JOIN txs prev ON prev.id = out.target     (B-tree probe per out)
      ChargeProbe();
      auto prev = txs_.find(oit->second.target_tx);
      //   JOIN addresses ON addr.id = out.addr_id   (B-tree probe per out)
      ChargeProbe();
      auto addr = addresses_.find(oit->second.addr_id);
      json += "{\"value\":" + std::to_string(oit->second.value) +
              ",\"spends\":" +
              std::to_string(prev == txs_.end() ? 0 : prev->second.id) +
              ",\"addr\":\"" +
              (addr == addresses_.end() ? "?" : addr->second.addr) + "\"}";
    }
    json += "]}";
  }
  json += "]}";
  return json;
}

}  // namespace baselines
}  // namespace weaver
