// GraphLabLikeEngine: the GraphLab v2.2 comparison baseline (paper §6.3).
//
// GraphLab is an offline graph-processing engine: a query is a full engine
// run. Two execution modes are reproduced, matching the paper's setup:
//
//   * Synchronous: bulk-synchronous supersteps with a global barrier among
//     worker threads after every superstep, plus per-run engine
//     initialization that touches every vertex (GraphLab materializes
//     vertex programs/data before a run). Barriers and whole-graph init
//     are exactly what the paper blames for its latency ("Synchronous
//     GraphLab uses barriers... limit concurrency").
//   * Asynchronous: a shared scheduler queue where workers acquire a
//     vertex's lock plus its neighbors' locks before applying an update
//     (GraphLab's edge-consistency model: "prevents neighboring vertices
//     from executing simultaneously").
//
// The query under test is the paper's: reachability between random vertex
// pairs via BFS (Fig 11).
//
// Substitution note: the paper runs GraphLab across a 14-machine cluster;
// in-process threads alone would hide the engine's distributed costs, so
// the baseline charges them explicitly (all configurable, all disclosed):
//   * engine_start_micros -- launching a query is an engine run: the job
//     is broadcast to every machine before superstep 0;
//   * barrier_micros per phase -- the synchronous engine runs
//     gather/apply/scatter with a cluster-wide barrier after each phase
//     (PowerGraph-style: 3 barriers per superstep);
//   * remote_edge_micros -- cross-partition edges (vertices are
//     hash-partitioned across `num_workers` machines) cost network
//     communication: the async engine acquires edge-consistency locks
//     remotely, the sync engine exchanges frontier messages during the
//     shuffle. Charged per cross-partition scatter, applied as virtual
//     time at the end of the run.
// Set all three to 0 for a pure in-process engine (unit tests do).
// EXPERIMENTS.md records the calibration used by the Fig 11 bench.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/ids.h"

namespace weaver {
namespace baselines {

class GraphLabLikeEngine {
 public:
  struct Options {
    std::size_t num_workers = 4;
    std::uint64_t engine_start_micros = 2000;
    std::uint64_t barrier_micros = 3000;   // per gather/apply/scatter phase
    std::uint64_t remote_edge_micros = 3;  // per cross-partition scatter
  };

  /// Builds the immutable CSR graph. `num_nodes` vertices, ids in
  /// [1, num_nodes]; edges are (src, dst) pairs.
  GraphLabLikeEngine(std::uint64_t num_nodes,
                     const std::vector<std::pair<NodeId, NodeId>>& edges)
      : GraphLabLikeEngine(num_nodes, edges, Options{}) {}
  GraphLabLikeEngine(std::uint64_t num_nodes,
                     const std::vector<std::pair<NodeId, NodeId>>& edges,
                     Options options);

  /// Synchronous engine: returns true iff `target` is reachable from
  /// `source`. Pays per-run init + a barrier per superstep.
  bool ReachableSync(NodeId source, NodeId target);

  /// Asynchronous engine: same query under edge-consistency locking.
  bool ReachableAsync(NodeId source, NodeId target);

  std::uint64_t num_nodes() const { return num_nodes_; }
  std::uint64_t num_edges() const { return adj_.size(); }

 private:
  std::uint64_t num_nodes_;
  std::vector<std::uint32_t> offsets_;  // CSR: offsets_[v] .. offsets_[v+1]
  std::vector<NodeId> adj_;
  Options options_;
  std::vector<std::unique_ptr<std::mutex>> vertex_locks_;
};

}  // namespace baselines
}  // namespace weaver
