#include "baselines/titan_like.h"

#include <algorithm>
#include <functional>
#include <thread>

namespace weaver {
namespace baselines {

TitanLikeDb::TitanLikeDb(Options options) : options_(options) {
  lock_table_.reserve(options_.lock_table_size);
  for (std::size_t i = 0; i < options_.lock_table_size; ++i) {
    lock_table_.push_back(std::make_unique<std::mutex>());
  }
}

void TitanLikeDb::LoadNode(NodeId id) {
  std::lock_guard<std::mutex> lk(graph_mu_);
  nodes_.try_emplace(id);
}

void TitanLikeDb::LoadEdge(NodeId from, NodeId to) {
  std::lock_guard<std::mutex> lk(graph_mu_);
  nodes_[from].out.push_back(to);
  nodes_.try_emplace(to);
}

std::mutex& TitanLikeDb::LockFor(NodeId id) {
  return *lock_table_[MixHash64(id) % lock_table_.size()];
}

void TitanLikeDb::PayCommitPhases() const {
  if (options_.phase_delay_micros == 0) return;
  // Two phases: prepare + commit, each a storage-backend round trip.
  std::this_thread::sleep_for(
      std::chrono::microseconds(2 * options_.phase_delay_micros));
}

Status TitanLikeDb::RunLocked(std::vector<NodeId> objects,
                              const std::function<Status()>& body) {
  // Pessimistic 2PL: sort lock indices, acquire all, hold through commit.
  std::vector<std::size_t> idx;
  idx.reserve(objects.size());
  for (NodeId id : objects) {
    idx.push_back(MixHash64(id) % lock_table_.size());
  }
  std::sort(idx.begin(), idx.end());
  idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
  std::vector<std::unique_lock<std::mutex>> held;
  held.reserve(idx.size());
  for (std::size_t i : idx) {
    held.emplace_back(*lock_table_[i]);
  }
  stats_.locks_acquired.fetch_add(idx.size(), std::memory_order_relaxed);
  const Status st = body();
  PayCommitPhases();  // locks held through the commit round trips
  stats_.txs.fetch_add(1, std::memory_order_relaxed);
  return st;
}

Status TitanLikeDb::GetNode(NodeId id, std::uint64_t* degree_out) {
  return RunLocked({id}, [&]() -> Status {
    std::lock_guard<std::mutex> lk(graph_mu_);
    auto it = nodes_.find(id);
    if (it == nodes_.end()) return Status::NotFound();
    *degree_out = it->second.out.size();
    return Status::Ok();
  });
}

Status TitanLikeDb::GetEdges(NodeId id, std::vector<NodeId>* targets_out) {
  return RunLocked({id}, [&]() -> Status {
    std::lock_guard<std::mutex> lk(graph_mu_);
    auto it = nodes_.find(id);
    if (it == nodes_.end()) return Status::NotFound();
    *targets_out = it->second.out;
    return Status::Ok();
  });
}

Status TitanLikeDb::CountEdges(NodeId id, std::uint64_t* count_out) {
  return GetNode(id, count_out);
}

Status TitanLikeDb::CreateEdge(NodeId from, NodeId to) {
  return RunLocked({from, to}, [&]() -> Status {
    std::lock_guard<std::mutex> lk(graph_mu_);
    auto it = nodes_.find(from);
    if (it == nodes_.end()) return Status::NotFound();
    it->second.out.push_back(to);
    return Status::Ok();
  });
}

Status TitanLikeDb::DeleteEdge(NodeId from, NodeId to) {
  return RunLocked({from, to}, [&]() -> Status {
    std::lock_guard<std::mutex> lk(graph_mu_);
    auto it = nodes_.find(from);
    if (it == nodes_.end()) return Status::NotFound();
    auto& out = it->second.out;
    auto pos = std::find(out.begin(), out.end(), to);
    if (pos == out.end()) return Status::NotFound();
    out.erase(pos);
    return Status::Ok();
  });
}

std::size_t TitanLikeDb::NodeCount() const {
  std::lock_guard<std::mutex> lk(graph_mu_);
  return nodes_.size();
}

}  // namespace baselines
}  // namespace weaver
