// Extended node-program library: the analysis classes the paper names as
// node-program use cases beyond the standard set (§2.3: "label
// propagation, connected components, and graph search"; §5.2's flow
// analyses).
//
//   * label_prop  -- connected-component labeling by minimum-label
//                    propagation: every vertex adopts the smallest label
//                    seen and re-propagates; at fixpoint each vertex
//                    returns its component label (over out-edges).
//   * k_hop       -- collect the vertex ids within k hops of the start
//                    (neighborhood queries; RoboBrain's subgraph reads).
//   * flow_sum    -- aggregate a numeric edge property ("value") along all
//                    paths from the start vertex, with per-vertex visit
//                    pruning: CoinGraph's flow analysis (§5.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "core/node_program.h"

namespace weaver {
namespace programs {

inline constexpr std::string_view kLabelProp = "label_prop";
inline constexpr std::string_view kKHop = "k_hop";
inline constexpr std::string_view kFlowSum = "flow_sum";

/// label_prop: params carry the candidate label (initially the start
/// vertex id). State per vertex: the smallest label adopted so far.
struct LabelPropParams {
  std::uint64_t label = ~0ULL;
  std::string Encode() const;
  static LabelPropParams Decode(const std::string& blob);
};

/// k_hop: params carry remaining hop budget.
struct KHopParams {
  std::uint32_t remaining = 1;
  std::string Encode() const;
  static KHopParams Decode(const std::string& blob);
};

/// flow_sum: params carry the flow accumulated along the carrying path.
/// Each visited vertex returns the inbound flow it received (the caller
/// sums per-vertex maxima to bound taint exposure).
struct FlowSumParams {
  std::uint64_t inbound = 0;
  std::string Encode() const;
  static FlowSumParams Decode(const std::string& blob);
};

/// Registers the extended programs into `registry`. Weaver's default
/// registry includes them (see ProgramRegistry::WithStandardPrograms).
void RegisterExtendedPrograms(ProgramRegistry* registry);

}  // namespace programs
}  // namespace weaver
