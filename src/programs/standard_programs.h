// The standard node-program library shipped with this Weaver reproduction.
//
// Programs and their paper sources:
//   * get_node        -- vertex lookup: properties + degree (TAO workload,
//                        Table 1; Fig 12 scalability microbenchmark).
//   * get_edges       -- out-edge list, optionally filtered by a property
//                        (TAO workload, Table 1).
//   * count_edges     -- out-degree (TAO workload, Table 1).
//   * bfs / reachable -- breadth-first traversal along edges carrying a
//                        given property (Fig 3; Fig 11 traversal bench).
//   * clustering      -- local clustering coefficient: one-hop fan-out and
//                        return (Fig 13 scalability microbenchmark).
//   * shortest_path   -- BFS shortest path with per-vertex distance state
//                        (paper §2.3's stateful-program example).
//   * block_render    -- CoinGraph block query: traverse block -> txs and
//                        collect each transaction vertex (Figs 7 and 8).
//   * path_discovery  -- source-to-target path search that memoizes the
//                        discovered path at each vertex (paper §4.6's
//                        caching example).
//
// Program parameters and return values are serialized byte strings; the
// param codecs live alongside each program below.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "core/node_program.h"

namespace weaver {
namespace programs {

// ---- Program names -------------------------------------------------------

inline constexpr std::string_view kGetNode = "get_node";
inline constexpr std::string_view kGetEdges = "get_edges";
inline constexpr std::string_view kCountEdges = "count_edges";
inline constexpr std::string_view kBfs = "bfs";
inline constexpr std::string_view kClustering = "clustering";
inline constexpr std::string_view kShortestPath = "shortest_path";
inline constexpr std::string_view kBlockRender = "block_render";
inline constexpr std::string_view kPathDiscovery = "path_discovery";

// ---- Parameter / result codecs -------------------------------------------

/// bfs: traverse edges carrying `edge_prop_key` = `edge_prop_value` (empty
/// key = all edges), stop after `max_depth` hops (0 = unbounded), looking
/// for `target` (kInvalidNodeId = pure exploration). Every visited vertex
/// returns its id; reaching the target returns "found".
struct BfsParams {
  std::string edge_prop_key;
  std::string edge_prop_value;
  NodeId target = kInvalidNodeId;
  std::uint32_t depth = 0;       // internal: current depth
  std::uint32_t max_depth = 0;   // 0 = unbounded
  std::string Encode() const;
  static BfsParams Decode(const std::string& blob);
};

/// get_edges: filter by property (empty key = all edges).
struct GetEdgesParams {
  std::string edge_prop_key;
  std::string edge_prop_value;
  std::string Encode() const;
  static GetEdgesParams Decode(const std::string& blob);
};

/// get_edges result: edge ids + targets.
struct GetEdgesResult {
  std::vector<std::pair<EdgeId, NodeId>> edges;
  std::string Encode() const;
  static GetEdgesResult Decode(const std::string& blob);
};

/// get_node result: live properties + out-degree.
struct GetNodeResult {
  bool exists = false;
  std::uint64_t out_degree = 0;
  std::vector<std::pair<std::string, std::string>> properties;
  std::string Encode() const;
  static GetNodeResult Decode(const std::string& blob);
};

/// clustering: phase-structured one-hop program. The coordinator vertex
/// gathers its neighborhood, then probes each neighbor for edges back into
/// the neighborhood. Result (at the start vertex): local clustering
/// coefficient numerator/denominator.
struct ClusteringParams {
  enum Phase : std::uint8_t { kGather = 0, kProbe = 1, kReport = 2 };
  std::uint8_t phase = kGather;
  NodeId origin = kInvalidNodeId;
  std::vector<NodeId> neighborhood;  // kProbe: the origin's neighbor set
  std::uint64_t hits = 0;            // kReport: edges found into the set
  std::string Encode() const;
  static ClusteringParams Decode(const std::string& blob);
};

struct ClusteringResult {
  std::uint64_t closed_pairs = 0;  // edges among neighbors
  std::uint64_t degree = 0;
  double Coefficient() const {
    const double d = static_cast<double>(degree);
    return d < 2 ? 0.0 : static_cast<double>(closed_pairs) / (d * (d - 1));
  }
  std::string Encode() const;
  static ClusteringResult Decode(const std::string& blob);
};

/// shortest_path: unweighted BFS distance from source to target.
struct ShortestPathParams {
  NodeId target = kInvalidNodeId;
  std::uint32_t distance = 0;  // distance of the carrying hop
  std::string Encode() const;
  static ShortestPathParams Decode(const std::string& blob);
};

/// block_render (CoinGraph): start at a block vertex, read every Bitcoin
/// transaction vertex in the block (edges labeled "in_block"), and return
/// a rendered row per transaction (id + properties + spend edges), the
/// same data Blockchain.info's raw-block API returns.
struct BlockRenderParams {
  std::uint8_t phase = 0;  // 0 = at block vertex, 1 = at tx vertices
  std::string Encode() const;
  static BlockRenderParams Decode(const std::string& blob);
};

/// path_discovery: DFS-flavored path search with memoization (paper §4.6).
struct PathDiscoveryParams {
  NodeId target = kInvalidNodeId;
  std::vector<NodeId> path_so_far;
  std::uint32_t max_depth = 16;
  std::string Encode() const;
  static PathDiscoveryParams Decode(const std::string& blob);
};

/// Registers every standard program into `registry`.
void RegisterStandardPrograms(ProgramRegistry* registry);

}  // namespace programs
}  // namespace weaver
