#include "programs/extended_programs.h"

#include "common/serde.h"

namespace weaver {
namespace programs {

std::string LabelPropParams::Encode() const {
  ByteWriter w;
  w.PutU64(label);
  return w.Take();
}

LabelPropParams LabelPropParams::Decode(const std::string& blob) {
  LabelPropParams p;
  if (blob.empty()) return p;
  ByteReader r(blob);
  (void)r.GetU64(&p.label);
  return p;
}

std::string KHopParams::Encode() const {
  ByteWriter w;
  w.PutU32(remaining);
  return w.Take();
}

KHopParams KHopParams::Decode(const std::string& blob) {
  KHopParams p;
  if (blob.empty()) return p;
  ByteReader r(blob);
  (void)r.GetU32(&p.remaining);
  return p;
}

std::string FlowSumParams::Encode() const {
  ByteWriter w;
  w.PutU64(inbound);
  return w.Take();
}

FlowSumParams FlowSumParams::Decode(const std::string& blob) {
  FlowSumParams p;
  if (blob.empty()) return p;
  ByteReader r(blob);
  (void)r.GetU64(&p.inbound);
  return p;
}

namespace {

/// Minimum-label propagation. Stateful in the paper's sense: the adopted
/// label persists at the vertex between visits of the same program run.
class LabelPropProgram final : public NodeProgram {
 public:
  std::string_view name() const override { return kLabelProp; }
  void Run(const NodeView& node, const std::string& params, std::any* state,
           ProgramOutput* out) const override {
    if (!node.Exists()) return;
    LabelPropParams p = LabelPropParams::Decode(params);
    const std::uint64_t candidate = std::min<std::uint64_t>(p.label,
                                                            node.id());
    if (state->has_value() &&
        std::any_cast<std::uint64_t>(*state) <= candidate) {
      return;  // already carries an equal or smaller label: fixpoint here
    }
    *state = candidate;
    // Report the adopted label; the caller keeps the last one per vertex.
    ByteWriter w;
    w.PutU64(candidate);
    out->return_value = w.Take();
    LabelPropParams next;
    next.label = candidate;
    const std::string blob = next.Encode();
    node.ForEachEdge([&](const EdgeView& e) {
      out->next_hops.push_back(NextHop{e.to(), blob});
    });
  }
};

class KHopProgram final : public NodeProgram {
 public:
  std::string_view name() const override { return kKHop; }
  void Run(const NodeView& node, const std::string& params, std::any* state,
           ProgramOutput* out) const override {
    if (!node.Exists()) return;
    const KHopParams p = KHopParams::Decode(params);
    // Visit each vertex at its highest remaining budget only.
    if (state->has_value() &&
        std::any_cast<std::uint32_t>(*state) >= p.remaining) {
      return;
    }
    const bool first_visit = !state->has_value();
    *state = p.remaining;
    if (first_visit) {
      ByteWriter w;
      w.PutU64(node.id());
      out->return_value = w.Take();
    }
    if (p.remaining == 0) return;
    KHopParams next;
    next.remaining = p.remaining - 1;
    const std::string blob = next.Encode();
    node.ForEachEdge([&](const EdgeView& e) {
      out->next_hops.push_back(NextHop{e.to(), blob});
    });
  }
};

/// Taint-flow accumulation over "value"-weighted spend edges (§5.2).
class FlowSumProgram final : public NodeProgram {
 public:
  std::string_view name() const override { return kFlowSum; }
  // Visit-once by state for ANY params: revisits never run regardless
  // of the inbound value (first arrival wins, as it always has).
  bool VisitOnce(const std::string&) const override { return true; }
  void Run(const NodeView& node, const std::string& params, std::any* state,
           ProgramOutput* out) const override {
    if (!node.Exists()) return;
    const FlowSumParams p = FlowSumParams::Decode(params);
    if (state->has_value()) return;  // visit once: conservative exposure
    *state = true;
    ByteWriter w;
    w.PutU64(p.inbound);
    out->return_value = w.Take();
    node.ForEachEdge([&](const EdgeView& e) {
      const auto value = e.GetProperty("value");
      if (!value.has_value()) return;
      FlowSumParams next;
      next.inbound = std::strtoull(value->c_str(), nullptr, 10);
      out->next_hops.push_back(NextHop{e.to(), next.Encode()});
    });
  }
};

}  // namespace

void RegisterExtendedPrograms(ProgramRegistry* registry) {
  registry->Register(std::make_unique<LabelPropProgram>());
  registry->Register(std::make_unique<KHopProgram>());
  registry->Register(std::make_unique<FlowSumProgram>());
}

}  // namespace programs
}  // namespace weaver
