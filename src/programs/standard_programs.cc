#include "programs/standard_programs.h"

#include <algorithm>
#include <unordered_set>

#include "common/serde.h"

namespace weaver {
namespace programs {

// ---- Codecs ---------------------------------------------------------------

std::string BfsParams::Encode() const {
  ByteWriter w;
  w.PutString(edge_prop_key);
  w.PutString(edge_prop_value);
  w.PutU64(target);
  w.PutU32(depth);
  w.PutU32(max_depth);
  return w.Take();
}

BfsParams BfsParams::Decode(const std::string& blob) {
  BfsParams p;
  ByteReader r(blob);
  if (blob.empty()) return p;
  (void)r.GetString(&p.edge_prop_key);
  (void)r.GetString(&p.edge_prop_value);
  (void)r.GetU64(&p.target);
  (void)r.GetU32(&p.depth);
  (void)r.GetU32(&p.max_depth);
  return p;
}

std::string GetEdgesParams::Encode() const {
  ByteWriter w;
  w.PutString(edge_prop_key);
  w.PutString(edge_prop_value);
  return w.Take();
}

GetEdgesParams GetEdgesParams::Decode(const std::string& blob) {
  GetEdgesParams p;
  if (blob.empty()) return p;
  ByteReader r(blob);
  (void)r.GetString(&p.edge_prop_key);
  (void)r.GetString(&p.edge_prop_value);
  return p;
}

std::string GetEdgesResult::Encode() const {
  ByteWriter w;
  w.PutU32(static_cast<std::uint32_t>(edges.size()));
  for (const auto& [eid, to] : edges) {
    w.PutU64(eid);
    w.PutU64(to);
  }
  return w.Take();
}

GetEdgesResult GetEdgesResult::Decode(const std::string& blob) {
  GetEdgesResult out;
  ByteReader r(blob);
  std::uint32_t n = 0;
  if (!r.GetU32(&n).ok()) return out;
  for (std::uint32_t i = 0; i < n; ++i) {
    EdgeId eid = 0;
    NodeId to = 0;
    if (!r.GetU64(&eid).ok() || !r.GetU64(&to).ok()) break;
    out.edges.emplace_back(eid, to);
  }
  return out;
}

std::string GetNodeResult::Encode() const {
  ByteWriter w;
  w.PutU8(exists ? 1 : 0);
  w.PutU64(out_degree);
  w.PutU32(static_cast<std::uint32_t>(properties.size()));
  for (const auto& [k, v] : properties) {
    w.PutString(k);
    w.PutString(v);
  }
  return w.Take();
}

GetNodeResult GetNodeResult::Decode(const std::string& blob) {
  GetNodeResult out;
  ByteReader r(blob);
  std::uint8_t e = 0;
  if (!r.GetU8(&e).ok()) return out;
  out.exists = e != 0;
  (void)r.GetU64(&out.out_degree);
  std::uint32_t n = 0;
  (void)r.GetU32(&n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string k, v;
    if (!r.GetString(&k).ok() || !r.GetString(&v).ok()) break;
    out.properties.emplace_back(std::move(k), std::move(v));
  }
  return out;
}

std::string ClusteringParams::Encode() const {
  ByteWriter w;
  w.PutU8(phase);
  w.PutU64(origin);
  w.PutU32(static_cast<std::uint32_t>(neighborhood.size()));
  for (NodeId n : neighborhood) w.PutU64(n);
  w.PutU64(hits);
  return w.Take();
}

ClusteringParams ClusteringParams::Decode(const std::string& blob) {
  ClusteringParams p;
  if (blob.empty()) return p;
  ByteReader r(blob);
  (void)r.GetU8(&p.phase);
  (void)r.GetU64(&p.origin);
  std::uint32_t n = 0;
  (void)r.GetU32(&n);
  for (std::uint32_t i = 0; i < n; ++i) {
    NodeId id = 0;
    if (!r.GetU64(&id).ok()) break;
    p.neighborhood.push_back(id);
  }
  (void)r.GetU64(&p.hits);
  return p;
}

std::string ClusteringResult::Encode() const {
  ByteWriter w;
  w.PutU64(closed_pairs);
  w.PutU64(degree);
  return w.Take();
}

ClusteringResult ClusteringResult::Decode(const std::string& blob) {
  ClusteringResult out;
  ByteReader r(blob);
  (void)r.GetU64(&out.closed_pairs);
  (void)r.GetU64(&out.degree);
  return out;
}

std::string ShortestPathParams::Encode() const {
  ByteWriter w;
  w.PutU64(target);
  w.PutU32(distance);
  return w.Take();
}

ShortestPathParams ShortestPathParams::Decode(const std::string& blob) {
  ShortestPathParams p;
  if (blob.empty()) return p;
  ByteReader r(blob);
  (void)r.GetU64(&p.target);
  (void)r.GetU32(&p.distance);
  return p;
}

std::string BlockRenderParams::Encode() const {
  ByteWriter w;
  w.PutU8(phase);
  return w.Take();
}

BlockRenderParams BlockRenderParams::Decode(const std::string& blob) {
  BlockRenderParams p;
  if (blob.empty()) return p;
  ByteReader r(blob);
  (void)r.GetU8(&p.phase);
  return p;
}

std::string PathDiscoveryParams::Encode() const {
  ByteWriter w;
  w.PutU64(target);
  w.PutU32(max_depth);
  w.PutU32(static_cast<std::uint32_t>(path_so_far.size()));
  for (NodeId n : path_so_far) w.PutU64(n);
  return w.Take();
}

PathDiscoveryParams PathDiscoveryParams::Decode(const std::string& blob) {
  PathDiscoveryParams p;
  if (blob.empty()) return p;
  ByteReader r(blob);
  (void)r.GetU64(&p.target);
  (void)r.GetU32(&p.max_depth);
  std::uint32_t n = 0;
  (void)r.GetU32(&n);
  for (std::uint32_t i = 0; i < n; ++i) {
    NodeId id = 0;
    if (!r.GetU64(&id).ok()) break;
    p.path_so_far.push_back(id);
  }
  return p;
}

// ---- Programs -------------------------------------------------------------

namespace {

class GetNodeProgram final : public NodeProgram {
 public:
  std::string_view name() const override { return kGetNode; }
  void Run(const NodeView& node, const std::string&, std::any*,
           ProgramOutput* out) const override {
    GetNodeResult result;
    result.exists = node.Exists();
    if (result.exists) {
      result.out_degree = node.OutDegree();
      result.properties = node.Properties();
    }
    out->return_value = result.Encode();
  }
};

class GetEdgesProgram final : public NodeProgram {
 public:
  std::string_view name() const override { return kGetEdges; }
  void Run(const NodeView& node, const std::string& params, std::any*,
           ProgramOutput* out) const override {
    const GetEdgesParams p = GetEdgesParams::Decode(params);
    GetEdgesResult result;
    node.ForEachEdge([&](const EdgeView& e) {
      if (!p.edge_prop_key.empty() &&
          !e.Check(p.edge_prop_key, p.edge_prop_value)) {
        return;
      }
      result.edges.emplace_back(e.id(), e.to());
    });
    out->return_value = result.Encode();
  }
};

class CountEdgesProgram final : public NodeProgram {
 public:
  std::string_view name() const override { return kCountEdges; }
  void Run(const NodeView& node, const std::string&, std::any*,
           ProgramOutput* out) const override {
    ByteWriter w;
    w.PutU64(node.OutDegree());
    out->return_value = w.Take();
  }
};

/// The paper's Fig 3, verbatim in structure: visit once, follow edges that
/// carry the requested property, propagate the same params.
class BfsProgram final : public NodeProgram {
 public:
  std::string_view name() const override { return kBfs; }
  // Depth-unbounded BFS never acts on a revisit; a depth LIMIT makes
  // revisits params-dependent (a later hop may be shallower and allowed
  // to keep expanding), so pruning would under-explore.
  bool VisitOnce(const std::string& start_params) const override {
    return BfsParams::Decode(start_params).max_depth == 0;
  }
  void Run(const NodeView& node, const std::string& params, std::any* state,
           ProgramOutput* out) const override {
    if (!node.Exists()) return;
    if (state->has_value()) return;  // node.prog_state.visited
    *state = true;
    BfsParams p = BfsParams::Decode(params);
    if (node.id() == p.target) {
      out->return_value = "found";
      return;
    }
    ByteWriter w;
    w.PutU64(node.id());
    out->return_value = w.Take();
    if (p.max_depth != 0 && p.depth >= p.max_depth) return;
    BfsParams next = p;
    next.depth = p.depth + 1;
    const std::string next_blob = next.Encode();
    node.ForEachEdge([&](const EdgeView& e) {
      if (!p.edge_prop_key.empty() &&
          !e.Check(p.edge_prop_key, p.edge_prop_value)) {
        return;
      }
      out->next_hops.push_back(NextHop{e.to(), next_blob});
    });
  }
};

class ClusteringProgram final : public NodeProgram {
 public:
  std::string_view name() const override { return kClustering; }
  void Run(const NodeView& node, const std::string& params, std::any*,
           ProgramOutput* out) const override {
    if (!node.Exists()) return;
    ClusteringParams p = ClusteringParams::Decode(params);
    if (p.phase == ClusteringParams::kGather) {
      std::vector<NodeId> neighbors;
      node.ForEachEdge(
          [&](const EdgeView& e) { neighbors.push_back(e.to()); });
      std::sort(neighbors.begin(), neighbors.end());
      neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                      neighbors.end());
      ClusteringResult gather;
      gather.degree = neighbors.size();
      out->return_value = gather.Encode();
      if (neighbors.size() < 2) return;
      ClusteringParams probe;
      probe.phase = ClusteringParams::kProbe;
      probe.origin = node.id();
      probe.neighborhood = neighbors;
      const std::string blob = probe.Encode();
      for (NodeId n : neighbors) out->next_hops.push_back(NextHop{n, blob});
      return;
    }
    // kProbe: count edges from this neighbor back into the neighborhood.
    std::unordered_set<NodeId> in_set(p.neighborhood.begin(),
                                      p.neighborhood.end());
    ClusteringResult probe_result;
    node.ForEachEdge([&](const EdgeView& e) {
      if (e.to() != node.id() && in_set.count(e.to())) {
        probe_result.closed_pairs++;
      }
    });
    out->return_value = probe_result.Encode();
  }
};

class ShortestPathProgram final : public NodeProgram {
 public:
  std::string_view name() const override { return kShortestPath; }
  void Run(const NodeView& node, const std::string& params, std::any* state,
           ProgramOutput* out) const override {
    if (!node.Exists()) return;
    const ShortestPathParams p = ShortestPathParams::Decode(params);
    if (state->has_value() &&
        std::any_cast<std::uint32_t>(*state) <= p.distance) {
      return;  // already reached at least this cheaply
    }
    *state = p.distance;
    if (node.id() == p.target) {
      ByteWriter w;
      w.PutU32(p.distance);
      out->return_value = w.Take();
      return;
    }
    ShortestPathParams next = p;
    next.distance = p.distance + 1;
    const std::string blob = next.Encode();
    node.ForEachEdge([&](const EdgeView& e) {
      out->next_hops.push_back(NextHop{e.to(), blob});
    });
  }
};

/// Renders one Bitcoin block the way Blockchain.info's raw-block API does:
/// the block vertex fans out to its transaction vertices; each transaction
/// renders its id, attributes, and spend edges as a JSON-ish row.
class BlockRenderProgram final : public NodeProgram {
 public:
  std::string_view name() const override { return kBlockRender; }
  void Run(const NodeView& node, const std::string& params, std::any*,
           ProgramOutput* out) const override {
    if (!node.Exists()) return;
    const BlockRenderParams p = BlockRenderParams::Decode(params);
    if (p.phase == 0) {
      // Block vertex: render the header, fan out to transactions.
      std::string header = "{\"block\":" + std::to_string(node.id());
      for (const auto& [k, v] : node.Properties()) {
        header += ",\"" + k + "\":\"" + v + "\"";
      }
      header += "}";
      out->return_value = std::move(header);
      BlockRenderParams next;
      next.phase = 1;
      const std::string blob = next.Encode();
      node.ForEachEdge([&](const EdgeView& e) {
        if (e.Check("type", "in_block")) {
          out->next_hops.push_back(NextHop{e.to(), blob});
        }
      });
      return;
    }
    // Transaction vertex: render the row the explorer shows.
    std::string row = "{\"tx\":" + std::to_string(node.id());
    for (const auto& [k, v] : node.Properties()) {
      row += ",\"" + k + "\":\"" + v + "\"";
    }
    row += ",\"out\":[";
    bool first = true;
    node.ForEachEdge([&](const EdgeView& e) {
      if (!e.Check("type", "spend")) return;
      if (!first) row += ",";
      first = false;
      row += std::to_string(e.to());
      if (auto val = e.GetProperty("value"); val.has_value()) {
        row += ":" + *val;
      }
    });
    row += "]}";
    out->return_value = std::move(row);
  }
};

/// Path discovery with per-vertex pruning state; the discovered path is
/// returned to the client, which may memoize it application-side and
/// invalidate it when the graph changes under it (paper §4.6 pattern; see
/// examples/robobrain.cc).
class PathDiscoveryProgram final : public NodeProgram {
 public:
  std::string_view name() const override { return kPathDiscovery; }
  // Always depth-budgeted (path_so_far vs max_depth): a vertex first
  // reached via a longer path must still re-expand on a shorter one,
  // so ingress pruning stays off.
  void Run(const NodeView& node, const std::string& params, std::any* state,
           ProgramOutput* out) const override {
    if (!node.Exists()) return;
    PathDiscoveryParams p = PathDiscoveryParams::Decode(params);
    if (state->has_value()) return;  // visited: prune
    *state = true;
    p.path_so_far.push_back(node.id());
    if (node.id() == p.target) {
      ByteWriter w;
      w.PutU32(static_cast<std::uint32_t>(p.path_so_far.size()));
      for (NodeId n : p.path_so_far) w.PutU64(n);
      out->return_value = w.Take();
      return;
    }
    if (p.path_so_far.size() > p.max_depth) return;
    const std::string blob = p.Encode();
    node.ForEachEdge([&](const EdgeView& e) {
      out->next_hops.push_back(NextHop{e.to(), blob});
    });
  }
};

}  // namespace

void RegisterStandardPrograms(ProgramRegistry* registry) {
  registry->Register(std::make_unique<GetNodeProgram>());
  registry->Register(std::make_unique<GetEdgesProgram>());
  registry->Register(std::make_unique<CountEdgesProgram>());
  registry->Register(std::make_unique<BfsProgram>());
  registry->Register(std::make_unique<ClusteringProgram>());
  registry->Register(std::make_unique<ShortestPathProgram>());
  registry->Register(std::make_unique<BlockRenderProgram>());
  registry->Register(std::make_unique<PathDiscoveryProgram>());
}

}  // namespace programs
}  // namespace weaver
