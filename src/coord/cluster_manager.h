// ClusterManager: membership, failure detection, and epoch reconfiguration
// (paper §3.2, §4.3).
//
// Servers register on boot and send periodic heartbeats. When a gatekeeper
// is replaced, its vector clock restarts, so the cluster manager bumps the
// deployment epoch and imposes a barrier: every gatekeeper moves to the
// new epoch in unison (all clock locks are held across the bump), which
// keeps timestamps monotonic across the failure (old-epoch timestamps
// order before all new-epoch timestamps).
//
// The paper deploys the cluster manager (and the timeline oracle) as
// Paxos-replicated state machines; in this single-process reproduction it
// is an always-available component -- the replication substrate is out of
// scope, but every protocol-visible behavior (membership, heartbeat
// timeout, epoch barrier) is implemented.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/clock.h"
#include "common/ids.h"
#include "common/sync.h"
#include "common/result.h"
#include "order/gatekeeper.h"

namespace weaver {

enum class ServerKind : std::uint8_t { kGatekeeper, kShard };

class ClusterManager {
 public:
  struct Member {
    std::string name;
    ServerKind kind = ServerKind::kShard;
    std::uint32_t index = 0;
    std::uint64_t last_heartbeat_us = 0;
    bool alive = true;
  };

  /// Registers a booting server and records its first heartbeat.
  void Register(std::string name, ServerKind kind, std::uint32_t index);

  /// Heartbeat from a live server.
  void Heartbeat(const std::string& name);

  /// Marks members whose last heartbeat is older than `timeout_us` as
  /// failed; returns the names of the newly failed members.
  std::vector<std::string> DetectFailures(std::uint64_t timeout_us);

  /// Explicitly marks a member failed (fault injection) / recovered.
  void MarkFailed(const std::string& name);
  void MarkRecovered(const std::string& name);

  bool IsAlive(const std::string& name) const;
  std::vector<Member> Members() const;

  std::uint32_t current_epoch() const {
    MutexLock lk(mu_);
    return epoch_;
  }

  /// Adopts an epoch restored from durable storage at boot (before any
  /// gatekeeper exists). A rebooted deployment restarts one epoch past the
  /// one it crashed in, so every new timestamp orders after every
  /// persisted pre-crash timestamp -- the same monotonicity argument as
  /// gatekeeper replacement, applied to whole-deployment failure.
  void RestoreEpoch(std::uint32_t epoch);

  /// Installs the durable-storage hook invoked (outside mu_) with every
  /// new epoch so epoch bumps survive restarts. A failing hook aborts the
  /// epoch barrier: stamping data in an epoch that was never made durable
  /// would break timestamp monotonicity across the next restart.
  void SetEpochPersist(std::function<Status(std::uint32_t)> persist);

  /// Epoch barrier (paper §4.3): acquires every gatekeeper's clock lock,
  /// bumps the epoch everywhere, then releases. No timestamp in the new
  /// epoch can be issued until all gatekeepers have advanced, and no
  /// old-epoch timestamp can be issued after any new-epoch one. Fails
  /// (leaving the epoch unchanged) only when the persist hook fails.
  // ts_unchecked: acquires every gatekeeper's clock lock through a
  // dynamic std::unique_lock vector (a runtime-sized lock bank, taken in
  // canonical bank order), which the analysis cannot model.
  Result<std::uint32_t> AdvanceEpochBarrier(
      const std::vector<Gatekeeper*>& gatekeepers) NO_THREAD_SAFETY_ANALYSIS;

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, Member> members_ GUARDED_BY(mu_);
  std::uint32_t epoch_ GUARDED_BY(mu_) = 0;
  std::function<Status(std::uint32_t)> persist_epoch_ GUARDED_BY(mu_);
};

}  // namespace weaver
