#include "coord/serverd.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "core/message_codec.h"
#include "core/locator.h"
#include "core/messages.h"
#include "core/node_program.h"
#include "net/transport.h"
#include "net/wire_link.h"
#include "oracle/oracle_client.h"
#include "oracle/oracle_service.h"
#include "oracle/timeline_oracle.h"
#include "shard/shard.h"

namespace weaver {
namespace serverd {

EndpointLayout EndpointLayout::Compute(std::size_t num_shards,
                                       std::size_t num_gatekeepers,
                                       bool with_oracle,
                                       bool with_remote_gatekeepers) {
  // Mirrors Weaver's registration order exactly: shards first (one
  // endpoint each), then per-gatekeeper (server, client ingress) pairs,
  // then the program coordinator, then (oracle deployments only) the
  // oracle service and the per-process reply endpoints. Weaver asserts
  // this layout when it opens a remote deployment, so drift fails loudly
  // at boot.
  EndpointLayout layout;
  for (std::size_t s = 0; s < num_shards; ++s) {
    layout.shards.push_back(static_cast<EndpointId>(s));
  }
  for (std::size_t g = 0; g < num_gatekeepers; ++g) {
    layout.gatekeepers.push_back(
        static_cast<EndpointId>(num_shards + 2 * g));
    layout.gatekeeper_clients.push_back(
        static_cast<EndpointId>(num_shards + 2 * g + 1));
  }
  layout.coordinator =
      static_cast<EndpointId>(num_shards + 2 * num_gatekeepers);
  layout.with_oracle = with_oracle;
  if (with_oracle) {
    layout.oracle = layout.coordinator + 1;
    for (std::size_t s = 0; s < num_shards; ++s) {
      layout.oracle_clients.push_back(
          static_cast<EndpointId>(layout.oracle + 1 + s));
    }
    layout.parent_oracle_client =
        static_cast<EndpointId>(layout.oracle + 1 + num_shards);
  }
  layout.with_remote_gatekeepers = with_remote_gatekeepers;
  if (with_remote_gatekeepers) {
    EndpointId base = static_cast<EndpointId>(
        (with_oracle ? layout.parent_oracle_client : layout.coordinator) + 1);
    for (std::size_t g = 0; g < num_gatekeepers; ++g) {
      layout.gk_agents.push_back(static_cast<EndpointId>(base + g));
    }
    for (std::size_t g = 0; g < num_gatekeepers; ++g) {
      layout.gk_controls.push_back(
          static_cast<EndpointId>(base + num_gatekeepers + g));
    }
  }
  return layout;
}

RoleAssignMessage AssignmentFromOptions(const ShardServerOptions& options) {
  RoleAssignMessage m;
  m.num_shards = static_cast<std::uint32_t>(options.num_shards);
  m.num_gatekeepers = static_cast<std::uint32_t>(options.num_gatekeepers);
  m.inbox_capacity = options.inbox_capacity;
  m.queue_high_water = options.queue_high_water;
  m.max_hops_per_cycle = options.max_hops_per_cycle;
  m.remote_oracle = options.remote_oracle;
  m.remote_gatekeepers = options.remote_gatekeepers;
  m.oracle_rpc_timeout_micros = options.oracle_rpc_timeout_micros;
  m.oracle_total_deadline_micros = options.oracle_total_deadline_micros;
  m.oracle_data_dir = options.oracle_data_dir;
  m.oracle_snapshot_every = options.oracle_snapshot_every;
  m.oracle_fsync = static_cast<std::uint8_t>(options.oracle_fsync);
  m.tau_micros = options.tau_micros;
  m.nop_period_micros = options.nop_period_micros;
  m.client_workers = options.client_workers;
  m.client_batch = options.client_batch;
  m.client_lane_capacity = options.client_lane_capacity;
  m.max_inflight_programs = options.max_inflight_programs;
  m.nop_high_water = options.nop_high_water;
  m.announce_capacity = options.announce_capacity;
  return m;
}

ShardServerOptions OptionsFromAssignment(const RoleAssignMessage& assign) {
  ShardServerOptions options;
  options.num_shards = assign.num_shards;
  options.num_gatekeepers = assign.num_gatekeepers;
  options.inbox_capacity = assign.inbox_capacity;
  options.queue_high_water = assign.queue_high_water;
  options.max_hops_per_cycle = assign.max_hops_per_cycle;
  options.remote_oracle = assign.remote_oracle;
  options.remote_gatekeepers = assign.remote_gatekeepers;
  options.oracle_rpc_timeout_micros = assign.oracle_rpc_timeout_micros;
  options.oracle_total_deadline_micros = assign.oracle_total_deadline_micros;
  options.oracle_data_dir = assign.oracle_data_dir;
  options.oracle_snapshot_every = assign.oracle_snapshot_every;
  options.oracle_fsync = assign.oracle_fsync <= 1
                             ? static_cast<FsyncPolicy>(assign.oracle_fsync)
                             : FsyncPolicy::kNever;
  options.tau_micros = assign.tau_micros;
  options.nop_period_micros = assign.nop_period_micros;
  options.client_workers = assign.client_workers;
  options.client_batch = assign.client_batch;
  options.client_lane_capacity = assign.client_lane_capacity;
  options.max_inflight_programs = assign.max_inflight_programs;
  options.nop_high_water = assign.nop_high_water;
  options.announce_capacity = assign.announce_capacity;
  return options;
}

namespace {

/// Exports a TimelineOracle's counters (the authoritative oracle in
/// weaver-oracled, a shard's local replica otherwise) into `metrics`
/// under "oracle.*". The oracle must outlive the registry.
void ExportOracleMetrics(obs::MetricsRegistry* metrics,
                         const TimelineOracle* oracle) {
  const TimelineOracle::Stats& os = oracle->stats();
  const auto counter = [&](const char* name,
                           const std::atomic<std::uint64_t>& v) {
    metrics->AddCounterFn(std::string("oracle.") + name, [&v] {
      return v.load(std::memory_order_relaxed);
    });
  };
  counter("order_requests", os.order_requests);
  counter("queries", os.queries);
  counter("edges_established", os.edges_established);
  counter("vclock_resolved", os.vclock_resolved);
  counter("dag_resolved", os.dag_resolved);
  counter("events_collected", os.events_collected);
  metrics->AddGaugeFn("oracle.live_events", [oracle] {
    return static_cast<std::int64_t>(oracle->LiveEvents());
  });
}

}  // namespace

int RunShardServer(int parent_fd, ShardId shard_id,
                   const ShardServerOptions& options, bool rehydrate) {
  const EndpointLayout layout = EndpointLayout::Compute(
      options.num_shards, options.num_gatekeepers, options.remote_oracle,
      options.remote_gatekeepers);

  // Per-process registry, declared before every component so DropPrefix
  // in their destructors finds it alive. The shard answers
  // kMsgMetricsRequest with a snapshot of this registry, which is how the
  // parent's Weaver::CollectMetrics sees into this process.
  obs::MetricsRegistry metrics;

  MessageBus bus;
  bus.SetMetrics(&metrics);
  bus.SetWireEncoder(EncodePayload);
  auto transport =
      std::shared_ptr<Transport>(SocketTransport::Adopt(parent_fd));

  // Shard-local replicas of the deployment-wide state a shard consults:
  // the timeline-oracle view, the program registry, and a hash-fallback
  // vertex directory (remote deployments use hash placement, so
  // ownership is computable without the backing store). Without the
  // oracle service the view is an authoritative process-local oracle
  // (reactive refinement; see docs/transport.md#limitations); with it,
  // an OracleClient replica whose misses become RPCs to weaver-oracled.
  TimelineOracle oracle;
  OracleClient::Options co;
  if (options.remote_oracle) {
    co.bus = &bus;
    co.self = layout.oracle_clients[shard_id];
    co.service = layout.oracle;
    co.rpc_timeout_micros = options.oracle_rpc_timeout_micros;
    co.total_deadline_micros = options.oracle_total_deadline_micros;
  } else {
    co.local = &oracle;
  }
  OracleClient client(co);
  auto programs = ProgramRegistry::WithStandardPrograms();
  const std::size_t num_shards = options.num_shards;
  NodeLocator locator(num_shards, [num_shards](NodeId node) {
    return static_cast<ShardId>(MixHash64(node) % num_shards);
  });

  // The shard-local oracle view's counters ride along in this process's
  // reports; cluster-wide merges sum them with the parent's.
  ExportOracleMetrics(&metrics, &client.view());
  if (options.remote_oracle) {
    const OracleClient::Stats& cs = client.stats();
    const auto counter = [&](const char* name,
                             const std::atomic<std::uint64_t>& v) {
      metrics.AddCounterFn(std::string("oracle.client.") + name, [&v] {
        return v.load(std::memory_order_relaxed);
      });
    };
    counter("local_hits", cs.local_hits);
    counter("rpcs", cs.rpcs);
    counter("retries", cs.retries);
    counter("unavailable", cs.unavailable);
    counter("sync_edges_applied", cs.sync_edges_applied);
  }

  // Mirror the endpoint layout: this shard's real server at its own id,
  // its oracle-client reply handler at its reply id (oracle deployments),
  // a remote proxy through the parent link everywhere else. Ids are
  // assigned by registration order, so the loop must visit every id in
  // order; drift means frames would misroute, so it fails hard even in
  // release builds.
  std::unique_ptr<Shard> shard;
  for (EndpointId id = 0; id <= layout.max_endpoint(); ++id) {
    EndpointId got;
    if (id == layout.shards[shard_id]) {
      Shard::Options so;
      so.id = shard_id;
      so.num_gatekeepers = options.num_gatekeepers;
      so.bus = &bus;
      so.oracle = options.remote_oracle ? nullptr : &oracle;
      so.oracle_client = options.remote_oracle ? &client : nullptr;
      so.programs = programs;
      so.locator = &locator;
      so.inbox_capacity = options.inbox_capacity;
      so.queue_high_water = options.queue_high_water;
      so.max_hops_per_cycle = options.max_hops_per_cycle;
      so.metrics = &metrics;
      // This process owns its oracle view; the parent's GC watermark
      // arrives as kMsgGc and must trim it here, or view memory grows
      // without bound (the PR 5 soft spot).
      so.gc_oracle = true;
      shard = std::make_unique<Shard>(so);
      got = shard->endpoint();
    } else if (options.remote_oracle &&
               id == layout.oracle_clients[shard_id]) {
      // Inline handler: runs on the link's receive thread and only pokes
      // the client's pending-call table, so it never blocks the link.
      got = bus.RegisterHandler(
          "shard" + std::to_string(shard_id) + ".oracle-client",
          [&client](const BusMessage& msg) {
            if (msg.payload_tag != kMsgOracleReply) return;
            client.OnReply(
                *std::static_pointer_cast<OracleReplyMessage>(msg.payload));
          });
    } else {
      got = bus.RegisterRemote("peer" + std::to_string(id), transport);
    }
    if (got != id) {
      std::fprintf(stderr,
                   "weaver-serverd: endpoint layout drifted (got %u, want "
                   "%u)\n",
                   got, id);
      return 1;
    }
  }
  shard->SetShardEndpoints(layout.shards);
  shard->Start();

  // Oracle channels are idempotent request/reply: during an oracle
  // failover the hub drops fenced frames (burning sender sequence
  // numbers a respawned process never sees), so this shard takes a
  // first-contact baseline for them instead of hard-failing its uplink
  // on the gap. Shard-to-shard wave channels stay strict.
  if (options.remote_oracle) bus.AllowFirstContact(layout.oracle);
  // Same for out-of-parent gatekeepers: they keep streaming nop ticks and
  // commit slices at a fenced shard endpoint the whole time its
  // replacement is being brought up, and the hub drops those frames while
  // burning the senders' sequence numbers. The dropped slices are
  // re-applied by the supervisor's REPLAY step and nop ticks are
  // idempotent watermark carriers, so a respawned shard baselines on the
  // first gatekeeper frame it actually observes.
  if (options.remote_gatekeepers) {
    for (const EndpointId gk : layout.gatekeepers) bus.AllowFirstContact(gk);
  }
  // A replacement process baselines peer-shard channels as well: a
  // surviving shard can emit one last wave hop at the fenced endpoint
  // after its reset ran (the hub drops it and burns the sequence number),
  // and the program that hop belonged to was failed at the fence and is
  // retried by the client. Cold boots stay strict -- nothing burns before
  // first contact there, so the FIFO tripwire keeps its teeth where it
  // matters.
  if (rehydrate) {
    for (ShardId s = 0; s < options.num_shards; ++s) {
      if (s != shard_id) bus.AllowFirstContact(layout.shards[s]);
    }
  }

  // Inbound link from the parent hub. Everything this shard can receive
  // is addressed to it directly, so no hub forwarding happens here.
  WireLink::Options lo;
  lo.bus = &bus;
  lo.transport = transport;
  lo.decode = DecodePayload;
  lo.never_block = WireNeverBlock;
  lo.name = "shard" + std::to_string(shard_id) + ".uplink";
  WireLink link(std::move(lo));

  // Respawn path: pull the oracle service's full edge dump before
  // serving, so refinements established before our predecessor crashed
  // are visible locally again. A failed sync is degraded but safe -- the
  // replica is a cache, and pairs it cannot answer go back to the
  // service -- so serve anyway rather than burn another spare.
  if (rehydrate && options.remote_oracle) {
    const Status synced = client.Sync();
    if (!synced.ok()) {
      std::fprintf(stderr,
                   "weaver-serverd: shard %u oracle rehydration failed "
                   "(serving with a cold replica): %s\n",
                   shard_id, synced.ToString().c_str());
    }
  }

  // Serve until the parent goes away: a Stop message closes the shard's
  // inbox, and the parent tearing down the socket EOFs the link.
  link.WaitClosed();
  shard->Stop();
  return link.error().ok() || link.error().IsUnavailable() ? 0 : 1;
}

int RunOracleServer(int parent_fd, const ShardServerOptions& options) {
  const EndpointLayout layout = EndpointLayout::Compute(
      options.num_shards, options.num_gatekeepers, /*with_oracle=*/true,
      options.remote_gatekeepers);

  obs::MetricsRegistry metrics;
  MessageBus bus;
  bus.SetMetrics(&metrics);
  bus.SetWireEncoder(EncodePayload);
  auto transport =
      std::shared_ptr<Transport>(SocketTransport::Adopt(parent_fd));

  // Recover the oracle state machine from the durable changelog BEFORE
  // registering any endpoint: a request must never observe a
  // half-replayed DAG. A respawned service replays what its predecessor
  // journaled; a corrupt (not torn) log fails the boot loudly.
  OracleService::Options so;
  so.data_dir = options.oracle_data_dir;
  so.fsync = options.oracle_fsync;
  so.snapshot_every_records = options.oracle_snapshot_every;
  auto opened = OracleService::Open(std::move(so));
  if (!opened.ok()) {
    std::fprintf(stderr, "weaver-oracled: changelog recovery failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  OracleService& service = **opened;

  ExportOracleMetrics(&metrics, &service.oracle());
  {
    const OracleService::Stats& ss = service.stats();
    const auto counter = [&](const char* name,
                             const std::atomic<std::uint64_t>& v) {
      metrics.AddCounterFn(std::string("oracle.service.") + name, [&v] {
        return v.load(std::memory_order_relaxed);
      });
    };
    counter("requests", ss.requests);
    counter("ops", ss.ops);
    counter("changelog_records", ss.changelog_records);
    counter("snapshots", ss.snapshots);
    counter("sync_dumps", ss.sync_dumps);
    counter("replayed_records", ss.replayed_records);
    counter("replay_torn_tails", ss.replay_torn_tails);
  }

  // The service has no event loop of its own: the request handler runs
  // inline on the link's receive thread (OracleService::Handle is
  // thread-safe under its changelog mutex), and replies go out
  // never_block so a congested reply path cannot wedge the link.
  const auto handler = [&](const BusMessage& msg) {
    switch (msg.payload_tag) {
      case kMsgOracleRequest: {
        auto req =
            std::static_pointer_cast<OracleRequestMessage>(msg.payload);
        auto reply = std::make_shared<OracleReplyMessage>();
        service.Handle(*req, reply.get());
        (void)bus.Send(layout.oracle, req->reply_to, kMsgOracleReply,
                       std::move(reply), /*never_block=*/true);
        break;
      }
      case kMsgMetricsRequest: {
        auto req =
            std::static_pointer_cast<MetricsRequestMessage>(msg.payload);
        auto report = std::make_shared<MetricsReportMessage>();
        report->request_id = req->request_id;
        report->shard = kOracleMetricsSource;
        report->snapshot = metrics.Snapshot();
        (void)bus.Send(layout.oracle, req->reply_to, kMsgMetricsReport,
                       std::move(report), /*never_block=*/true);
        break;
      }
      case kMsgShardReset: {
        // A shard process died and is being replaced: forget all wire
        // sequence state toward its client endpoint, so the respawn's
        // fresh seq-1 requests are not rejected as duplicates.
        auto reset = std::static_pointer_cast<ShardResetMessage>(msg.payload);
        bus.ResetPeer(reset->target);
        auto ack = std::make_shared<ShardResetAckMessage>();
        ack->shard = kOracleMetricsSource;
        ack->token = reset->token;
        (void)bus.Send(layout.oracle, reset->reply_to, kMsgShardResetAck,
                       std::move(ack), /*never_block=*/true);
        break;
      }
      default:
        // kMsgStop and anything else: shutdown arrives as socket EOF.
        break;
    }
  };

  for (EndpointId id = 0; id <= layout.max_endpoint(); ++id) {
    EndpointId got;
    if (id == layout.oracle) {
      got = bus.RegisterHandler("oracled", handler);
    } else {
      got = bus.RegisterRemote("peer" + std::to_string(id), transport);
    }
    if (got != id) {
      std::fprintf(stderr,
                   "weaver-oracled: endpoint layout drifted (got %u, want "
                   "%u)\n",
                   got, id);
      return 1;
    }
  }

  // Every inbound channel here is idempotent oracle RPC, and this
  // process may be a respawn whose clients' sequence counters were
  // burned on frames the hub dropped during the failover window: take a
  // first-contact baseline per channel instead of demanding seq 1, and
  // accept seq-1 restarts (a straggling reset can reset a sender after
  // contact). Mid-stream gaps still fail the uplink loudly.
  bus.AllowFirstContact(layout.oracle);

  WireLink::Options lo;
  lo.bus = &bus;
  lo.transport = transport;
  lo.decode = DecodePayload;
  lo.never_block = WireNeverBlock;
  lo.name = "oracled.uplink";
  WireLink link(std::move(lo));

  link.WaitClosed();
  return link.error().ok() || link.error().IsUnavailable() ? 0 : 1;
}

namespace {

/// Shared fork plumbing: runs `serve` in a freshly forked child wired to
/// the parent by a socketpair, closing inherited parent-side fds.
Result<ShardProcess> ForkServer(
    const std::vector<ShardProcess>& earlier,
    const std::function<int(int child_fd)>& serve) {
  auto fds = SocketTransport::CreateSocketPairFds();
  if (!fds.ok()) return fds.status();
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds->first);
    ::close(fds->second);
    return Status::Internal("fork failed");
  }
  if (pid == 0) {
    // Child: drop every parent-side fd (ours and earlier siblings'),
    // serve, and _exit without running the parent's atexit chain.
    ::close(fds->first);
    for (const ShardProcess& c : earlier) ::close(c.parent_fd);
    ::_exit(serve(fds->second));
  }
  ::close(fds->second);  // parent: the child owns its end
  return ShardProcess{pid, fds->first};
}

}  // namespace

Result<std::vector<ShardProcess>> SpawnShardServers(
    const ShardServerOptions& options) {
  std::vector<ShardProcess> children;
  for (std::size_t s = 0; s < options.num_shards; ++s) {
    auto child = ForkServer(children, [&](int child_fd) {
      return RunShardServer(child_fd, static_cast<ShardId>(s), options);
    });
    if (!child.ok()) {
      for (const ShardProcess& c : children) ::close(c.parent_fd);
      return child.status();
    }
    children.push_back(*child);
  }
  return children;
}

Result<ShardProcess> SpawnOracleServer(const ShardServerOptions& options) {
  return ForkServer({}, [&](int child_fd) {
    return RunOracleServer(child_fd, options);
  });
}

Status WaitShardServers(const std::vector<ShardProcess>& children) {
  Status result = Status::Ok();
  for (const ShardProcess& child : children) {
    int status = 0;
    if (::waitpid(child.pid, &status, 0) < 0) {
      // ECHILD: the supervisor already reaped this pid when it recovered
      // the crash -- not an error here.
      if (errno == ECHILD) continue;
      result = Status::Internal("waitpid failed");
      continue;
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      result = Status::Internal(
          "shard server pid " + std::to_string(child.pid) +
          " exited abnormally (status " + std::to_string(status) + ")");
    }
  }
  return result;
}

int RunSpareServer(int parent_fd, const ShardServerOptions& options) {
  // Block until the parent assigns a role (4 bytes, host order -- parent
  // and spare are always the same machine and binary) or closes the fd
  // (never needed: clean exit). No transport exists yet; a plain read
  // keeps the spare's footprint at one idle process.
  std::uint32_t assignment = 0;
  std::size_t got = 0;
  while (got < sizeof(assignment)) {
    const ssize_t n =
        ::read(parent_fd, reinterpret_cast<char*>(&assignment) + got,
               sizeof(assignment) - got);
    if (n == 0) {
      ::close(parent_fd);
      return 0;  // EOF: the deployment shut down without needing us
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(parent_fd);
      return 1;
    }
    got += static_cast<std::size_t>(n);
  }
  if (assignment == kSpareBecomeOracle) {
    return RunOracleServer(parent_fd, options);
  }
  const bool rehydrate = (assignment & kSpareRehydrateBit) != 0;
  const std::uint32_t shard_id = assignment & ~kSpareRehydrateBit;
  if (shard_id >= options.num_shards) {
    std::fprintf(stderr, "weaver-serverd: spare assigned bogus shard %u\n",
                 shard_id);
    ::close(parent_fd);
    return 1;
  }
  return RunShardServer(parent_fd, static_cast<ShardId>(shard_id), options,
                        rehydrate);
}

Result<std::vector<ShardProcess>> SpawnSpareServers(
    const ShardServerOptions& options, std::size_t count) {
  std::vector<ShardProcess> spares;
  for (std::size_t i = 0; i < count; ++i) {
    auto spare = ForkServer(spares, [&](int child_fd) {
      return RunSpareServer(child_fd, options);
    });
    if (!spare.ok()) {
      for (const ShardProcess& c : spares) ::close(c.parent_fd);
      return spare.status();
    }
    spares.push_back(*spare);
  }
  return spares;
}

Status AssignSpare(int fd, std::uint32_t assignment) {
  std::size_t put = 0;
  while (put < sizeof(assignment)) {
    const ssize_t n =
        ::write(fd, reinterpret_cast<const char*>(&assignment) + put,
                sizeof(assignment) - put);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("spare process is gone (write failed)");
    }
    put += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace serverd
}  // namespace weaver
