#include "coord/serverd.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <memory>
#include <string>

#include "core/message_codec.h"
#include "core/locator.h"
#include "core/messages.h"
#include "core/node_program.h"
#include "net/transport.h"
#include "net/wire_link.h"
#include "oracle/timeline_oracle.h"
#include "shard/shard.h"

namespace weaver {
namespace serverd {

EndpointLayout EndpointLayout::Compute(std::size_t num_shards,
                                       std::size_t num_gatekeepers) {
  // Mirrors Weaver's registration order exactly: shards first (one
  // endpoint each), then per-gatekeeper (server, client ingress) pairs,
  // then the program coordinator. Weaver asserts this layout when it
  // opens a remote deployment, so drift fails loudly at boot.
  EndpointLayout layout;
  for (std::size_t s = 0; s < num_shards; ++s) {
    layout.shards.push_back(static_cast<EndpointId>(s));
  }
  for (std::size_t g = 0; g < num_gatekeepers; ++g) {
    layout.gatekeepers.push_back(
        static_cast<EndpointId>(num_shards + 2 * g));
    layout.gatekeeper_clients.push_back(
        static_cast<EndpointId>(num_shards + 2 * g + 1));
  }
  layout.coordinator =
      static_cast<EndpointId>(num_shards + 2 * num_gatekeepers);
  return layout;
}

int RunShardServer(int parent_fd, ShardId shard_id,
                   const ShardServerOptions& options) {
  const EndpointLayout layout =
      EndpointLayout::Compute(options.num_shards, options.num_gatekeepers);

  // Per-process registry, declared before every component so DropPrefix
  // in their destructors finds it alive. The shard answers
  // kMsgMetricsRequest with a snapshot of this registry, which is how the
  // parent's Weaver::CollectMetrics sees into this process.
  obs::MetricsRegistry metrics;

  MessageBus bus;
  bus.SetMetrics(&metrics);
  bus.SetWireEncoder(EncodePayload);
  auto transport =
      std::shared_ptr<Transport>(SocketTransport::Adopt(parent_fd));

  // Shard-local replicas of the deployment-wide state a shard consults:
  // the timeline oracle (reactive refinement; see
  // docs/transport.md#limitations), the program registry, and a
  // hash-fallback vertex directory (remote deployments use hash
  // placement, so ownership is computable without the backing store).
  TimelineOracle oracle;
  auto programs = ProgramRegistry::WithStandardPrograms();
  const std::size_t num_shards = options.num_shards;
  NodeLocator locator(num_shards, [num_shards](NodeId node) {
    return static_cast<ShardId>(MixHash64(node) % num_shards);
  });

  // The shard-local oracle replica's counters ride along in this
  // process's reports; cluster-wide merges sum them with the parent's.
  {
    const TimelineOracle::Stats& os = oracle.stats();
    const auto counter = [&](const char* name,
                             const std::atomic<std::uint64_t>& v) {
      metrics.AddCounterFn(std::string("oracle.") + name, [&v] {
        return v.load(std::memory_order_relaxed);
      });
    };
    counter("order_requests", os.order_requests);
    counter("queries", os.queries);
    counter("edges_established", os.edges_established);
    counter("vclock_resolved", os.vclock_resolved);
    counter("dag_resolved", os.dag_resolved);
    counter("events_collected", os.events_collected);
    metrics.AddGaugeFn("oracle.live_events", [&oracle] {
      return static_cast<std::int64_t>(oracle.LiveEvents());
    });
  }

  // Mirror the endpoint layout: this shard's real server at its own id,
  // a remote proxy through the parent link everywhere else. Ids are
  // assigned by registration order, so the loop must visit every id in
  // order; drift means frames would misroute, so it fails hard even in
  // release builds.
  std::unique_ptr<Shard> shard;
  for (EndpointId id = 0; id <= layout.max_endpoint(); ++id) {
    EndpointId got;
    if (id == layout.shards[shard_id]) {
      Shard::Options so;
      so.id = shard_id;
      so.num_gatekeepers = options.num_gatekeepers;
      so.bus = &bus;
      so.oracle = &oracle;
      so.programs = programs;
      so.locator = &locator;
      so.inbox_capacity = options.inbox_capacity;
      so.queue_high_water = options.queue_high_water;
      so.max_hops_per_cycle = options.max_hops_per_cycle;
      so.metrics = &metrics;
      // This process owns its oracle replica; the parent's GC watermark
      // arrives as kMsgGc and must trim it here, or replica memory grows
      // without bound (the PR 5 soft spot).
      so.gc_oracle = true;
      shard = std::make_unique<Shard>(so);
      got = shard->endpoint();
    } else {
      got = bus.RegisterRemote("peer" + std::to_string(id), transport);
    }
    if (got != id) {
      std::fprintf(stderr,
                   "weaver-serverd: endpoint layout drifted (got %u, want "
                   "%u)\n",
                   got, id);
      return 1;
    }
  }
  shard->SetShardEndpoints(layout.shards);
  shard->Start();

  // Inbound link from the parent hub. Everything this shard can receive
  // is addressed to it directly, so no hub forwarding happens here.
  WireLink::Options lo;
  lo.bus = &bus;
  lo.transport = transport;
  lo.decode = DecodePayload;
  lo.never_block = WireNeverBlock;
  lo.name = "shard" + std::to_string(shard_id) + ".uplink";
  WireLink link(std::move(lo));

  // Serve until the parent goes away: a Stop message closes the shard's
  // inbox, and the parent tearing down the socket EOFs the link.
  link.WaitClosed();
  shard->Stop();
  return link.error().ok() || link.error().IsUnavailable() ? 0 : 1;
}

Result<std::vector<ShardProcess>> SpawnShardServers(
    const ShardServerOptions& options) {
  std::vector<ShardProcess> children;
  for (std::size_t s = 0; s < options.num_shards; ++s) {
    auto fds = SocketTransport::CreateSocketPairFds();
    if (!fds.ok()) {
      for (const ShardProcess& c : children) ::close(c.parent_fd);
      return fds.status();
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds->first);
      ::close(fds->second);
      for (const ShardProcess& c : children) ::close(c.parent_fd);
      return Status::Internal("fork failed");
    }
    if (pid == 0) {
      // Child: drop every parent-side fd (ours and earlier siblings'),
      // serve, and _exit without running the parent's atexit chain.
      ::close(fds->first);
      for (const ShardProcess& c : children) ::close(c.parent_fd);
      const int rc = RunShardServer(fds->second, static_cast<ShardId>(s),
                                    options);
      ::_exit(rc);
    }
    ::close(fds->second);  // parent: the child owns its end
    children.push_back(ShardProcess{pid, fds->first});
  }
  return children;
}

Status WaitShardServers(const std::vector<ShardProcess>& children) {
  Status result = Status::Ok();
  for (const ShardProcess& child : children) {
    int status = 0;
    if (::waitpid(child.pid, &status, 0) < 0) {
      // ECHILD: the supervisor already reaped this pid when it recovered
      // the crash -- not an error here.
      if (errno == ECHILD) continue;
      result = Status::Internal("waitpid failed");
      continue;
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      result = Status::Internal(
          "shard server pid " + std::to_string(child.pid) +
          " exited abnormally (status " + std::to_string(status) + ")");
    }
  }
  return result;
}

int RunSpareServer(int parent_fd, const ShardServerOptions& options) {
  // Block until the parent assigns a shard id (4 bytes, host order --
  // parent and spare are always the same machine and binary) or closes
  // the fd (never needed: clean exit). No transport exists yet; a plain
  // read keeps the spare's footprint at one idle process.
  std::uint32_t shard_id = 0;
  std::size_t got = 0;
  while (got < sizeof(shard_id)) {
    const ssize_t n = ::read(parent_fd, reinterpret_cast<char*>(&shard_id) + got,
                             sizeof(shard_id) - got);
    if (n == 0) {
      ::close(parent_fd);
      return 0;  // EOF: the deployment shut down without needing us
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(parent_fd);
      return 1;
    }
    got += static_cast<std::size_t>(n);
  }
  if (shard_id >= options.num_shards) {
    std::fprintf(stderr, "weaver-serverd: spare assigned bogus shard %u\n",
                 shard_id);
    ::close(parent_fd);
    return 1;
  }
  return RunShardServer(parent_fd, static_cast<ShardId>(shard_id), options);
}

Result<std::vector<ShardProcess>> SpawnSpareServers(
    const ShardServerOptions& options, std::size_t count) {
  std::vector<ShardProcess> spares;
  for (std::size_t i = 0; i < count; ++i) {
    auto fds = SocketTransport::CreateSocketPairFds();
    if (!fds.ok()) {
      for (const ShardProcess& c : spares) ::close(c.parent_fd);
      return fds.status();
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds->first);
      ::close(fds->second);
      for (const ShardProcess& c : spares) ::close(c.parent_fd);
      return Status::Internal("fork failed");
    }
    if (pid == 0) {
      ::close(fds->first);
      for (const ShardProcess& c : spares) ::close(c.parent_fd);
      const int rc = RunSpareServer(fds->second, options);
      ::_exit(rc);
    }
    ::close(fds->second);
    spares.push_back(ShardProcess{pid, fds->first});
  }
  return spares;
}

Status AssignSpare(int fd, ShardId shard_id) {
  const std::uint32_t id = shard_id;
  std::size_t put = 0;
  while (put < sizeof(id)) {
    const ssize_t n =
        ::write(fd, reinterpret_cast<const char*>(&id) + put,
                sizeof(id) - put);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("spare process is gone (write failed)");
    }
    put += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace serverd
}  // namespace weaver
