#include "coord/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/clock.h"
#include "coord/serverd.h"
#include "core/message_codec.h"
#include "core/weaver.h"
#include "kvstore/kvstore.h"
#include "net/transport.h"
#include "net/wire_link.h"

namespace weaver {

ShardSupervisor::ShardSupervisor(Weaver* weaver) : weaver_(weaver) {
  const ShardSupervisionOptions& opts = weaver_->options_.supervision;
  shards_.reserve(weaver_->options_.num_shards);
  for (std::size_t s = 0; s < weaver_->options_.num_shards; ++s) {
    auto st = std::make_unique<ShardState>();
    if (s < opts.shard_pids.size()) st->pid = opts.shard_pids[s];
    shards_.push_back(std::move(st));
  }
  spare_pids_ = opts.spare_pids;
  spare_fds_ = opts.spare_fds;
  oracle_enabled_ = weaver_->remote_oracle_;
  if (oracle_enabled_) oracle_.pid = weaver_->options_.oracle_service.pid;

  obs::MetricsRegistry& m = weaver_->metrics_;
  recoveries_ = m.counter("supervisor.recoveries");
  recoveries_failed_ = m.counter("supervisor.recoveries_failed");
  reset_ack_timeouts_ = m.counter("supervisor.reset_ack_timeouts");
  replayed_vertices_ = m.counter("supervisor.replayed_vertices");
  sigkills_ = m.counter("supervisor.sigkills");
  oracle_recoveries_ = m.counter("supervisor.oracle_recoveries");
  shards_down_ = m.gauge("supervisor.shards_down");
  oracle_down_ = m.gauge("supervisor.oracle_down");
  recovery_latency_ = m.histogram("supervisor.recovery_latency");
}

ShardSupervisor::~ShardSupervisor() {
  Stop();
  weaver_->metrics_.DropPrefix("supervisor.");
}

void ShardSupervisor::Start() {
  MutexLock lk(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { MonitorLoop(); });
}

void ShardSupervisor::Stop() {
  {
    MutexLock lk(mu_);
    stop_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  // Unused spares read the close as EOF and exit 0; the harness that
  // forked them waits for them like any other child.
  for (int& fd : spare_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void ShardSupervisor::OnLinkDown(ShardId shard) {
  if (shard >= shards_.size()) return;
  shards_[shard]->link_down.store(true, std::memory_order_release);
  MutexLock lk(mu_);
  wake_ = true;
  cv_.notify_all();
}

void ShardSupervisor::OnOracleLinkDown() {
  oracle_.link_down.store(true, std::memory_order_release);
  MutexLock lk(mu_);
  wake_ = true;
  cv_.notify_all();
}

void ShardSupervisor::OnResetAck(const ShardResetAckMessage& ack) {
  MutexLock lk(ack_mu_);
  if (ack.token != ack_token_) return;  // stale ack from an earlier round
  ++acks_;
  ack_cv_.notify_all();
}

bool ShardSupervisor::Reaped(ShardState* st) {
  if (st->pid <= 0) return false;
  int status = 0;
  const pid_t r = ::waitpid(st->pid, &status, WNOHANG);
  if (r == st->pid || (r < 0 && errno == ECHILD)) {
    st->pid = -1;
    return true;
  }
  return false;
}

std::uint64_t ShardSupervisor::FramesOf(const WireLink* link) {
  if (link == nullptr) return 0;
  return link->stats().frames_delivered.load(std::memory_order_relaxed) +
         link->stats().frames_forwarded.load(std::memory_order_relaxed);
}

bool ShardSupervisor::HeartbeatDead(ShardState* st, const WireLink* link,
                                    EndpointId ep, const std::string& name) {
  const ShardSupervisionOptions& opts = weaver_->options_.supervision;
  const std::uint64_t frames = FramesOf(link);
  const std::uint64_t now = NowMicros();
  if (frames != st->last_frames || st->last_activity_us == 0) {
    st->last_frames = frames;
    st->last_activity_us = now;
    st->pinged = false;
    weaver_->cluster_.Heartbeat(name);
    return false;
  }
  if (opts.heartbeat_timeout_micros > 0 &&
      now - st->last_activity_us >= 2 * opts.heartbeat_timeout_micros) {
    // Silent through a ping round: wedged but alive. Kill first so the
    // recovery that follows never races a half-dead writer.
    std::fprintf(stderr,
                 "weaver-supervisor: %s silent for %llu us; killing pid %d\n",
                 name.c_str(),
                 static_cast<unsigned long long>(now - st->last_activity_us),
                 static_cast<int>(st->pid));
    sigkills_->Add();
    if (st->pid > 0) ::kill(st->pid, SIGKILL);
    return true;
  }
  if (opts.heartbeat_timeout_micros > 0 && !st->pinged &&
      now - st->last_activity_us >= opts.heartbeat_timeout_micros) {
    // Quiet but maybe just idle: solicit a reply frame. The request_id
    // matches no pending collection, so the reply only refreshes the
    // remote depth -- and the frame counter.
    st->pinged = true;
    auto req = std::make_shared<MetricsRequestMessage>();
    req->request_id = 0;
    req->reply_to = weaver_->coordinator_endpoint_;
    (void)weaver_->bus_->Send(weaver_->coordinator_endpoint_, ep,
                              kMsgMetricsRequest, std::move(req),
                              /*never_block=*/true);
  }
  return false;
}

void ShardSupervisor::MonitorLoop() {
  const ShardSupervisionOptions& opts = weaver_->options_.supervision;
  while (true) {
    {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(opts.poll_period_micros);
      MutexLock lk(mu_);
      while (!stop_ && !wake_) {
        if (cv_.wait_until(lk.native(), deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (stop_) return;
      wake_ = false;
    }
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      ShardState& st = *shards_[s];
      if (st.lost) continue;
      bool dead = Reaped(&st);
      if (st.link_down.load(std::memory_order_acquire)) dead = true;
      if (!dead) {
        const WireLink* link = s < weaver_->links_.size()
                                   ? weaver_->links_[s].get()
                                   : nullptr;
        dead = HeartbeatDead(&st, link, weaver_->shard_endpoints_[s],
                             "shard" + std::to_string(s));
      }
      if (dead) Recover(static_cast<ShardId>(s));
    }
    if (oracle_enabled_ && !oracle_.lost) {
      bool dead = Reaped(&oracle_);
      if (oracle_.link_down.load(std::memory_order_acquire)) dead = true;
      if (!dead) {
        dead = HeartbeatDead(&oracle_, weaver_->oracle_link_.get(),
                             weaver_->oracle_endpoint_, "oracled");
      }
      if (dead) RecoverOracle();
    }
  }
}

void ShardSupervisor::Recover(ShardId s) {
  const std::uint64_t t0 = NowNanos();
  ShardState& st = *shards_[s];
  const EndpointId ep = weaver_->shard_endpoints_[s];
  const std::string name = "shard" + std::to_string(s);
  std::fprintf(stderr, "weaver-supervisor: %s (pid %d) is down; recovering\n",
               name.c_str(), static_cast<int>(st.pid));
  shards_down_->Add(1);

  // 1. FENCE. Down flag first: ShardAlive fast-fails new seeding before
  // anything else happens. Detach drops frames addressed to the corpse
  // (hub forwards included). In-flight programs can never balance their
  // credits once a shard is gone -- fail them all; their clients retry.
  weaver_->remote_down_[s].store(true, std::memory_order_relaxed);
  weaver_->cluster_.MarkFailed(name);
  weaver_->bus_->Detach(ep);
  weaver_->FailAllExecutions(
      Status::Unavailable(name + " crashed; re-run the program"));
  if (s < weaver_->links_.size() && weaver_->links_[s]) {
    weaver_->links_[s]->Stop();
    weaver_->links_[s].reset();
  }
  weaver_->remote_shard_transports_[s].reset();
  if (st.pid > 0) {
    // Heartbeat-declared deaths arrive here with the process possibly
    // still running; make it true, then reap.
    ::kill(st.pid, SIGKILL);
    (void)::waitpid(st.pid, nullptr, 0);
    st.pid = -1;
  }
  st.link_down.store(false, std::memory_order_release);

  // 2. EPOCH. Before the exclusive gate: the barrier takes every clock
  // lock, and a commit holding the shared gate may be waiting on one.
  {
    std::vector<Gatekeeper*> gks;
    gks.reserve(weaver_->gatekeepers_.size());
    for (auto& g : weaver_->gatekeepers_) gks.push_back(g.get());
    auto epoch = weaver_->cluster_.AdvanceEpochBarrier(gks);
    if (!epoch.ok()) {
      std::fprintf(stderr,
                   "weaver-supervisor: epoch barrier failed (%s); "
                   "continuing recovery in the old epoch\n",
                   epoch.status().ToString().c_str());
    }
  }

  // 3. RESPAWN from the warm spare pool. With weaver-oracled running,
  // the respawn gets the rehydrate bit: it Sync()s the oracle's edge set
  // into its local replica after its link is up, so refinements the dead
  // shard had already observed stay locally answerable.
  const std::uint32_t assignment =
      weaver_->remote_oracle_
          ? (serverd::kSpareRehydrateBit | static_cast<std::uint32_t>(s))
          : static_cast<std::uint32_t>(s);
  int fd = -1;
  pid_t pid = -1;
  while (!spare_fds_.empty()) {
    fd = spare_fds_.back();
    spare_fds_.pop_back();
    pid = spare_pids_.back();
    spare_pids_.pop_back();
    if (serverd::AssignSpare(fd, assignment).ok()) break;
    ::close(fd);  // that spare died on the bench; reap it and try the next
    (void)::waitpid(pid, nullptr, WNOHANG);
    fd = -1;
    pid = -1;
  }
  if (fd < 0) {
    st.lost = true;
    recoveries_failed_->Add();
    std::fprintf(stderr,
                 "weaver-supervisor: no spare left for %s; it stays down\n",
                 name.c_str());
    return;
  }

  auto transport = std::shared_ptr<Transport>(SocketTransport::Adopt(fd));
  if (weaver_->options_.shard_transport_decorator) {
    transport =
        weaver_->options_.shard_transport_decorator(std::move(transport), s);
  }

  // 4. RESET the survivors' wire-sequence state for the dead endpoint.
  // Their stale-seq frames to it were dropped at the detached endpoint
  // (FIFO uplinks: anything sent before their reset ran precedes the
  // ack), so after the acks no old-numbered frame can reach the respawn.
  // The oracle service joins the round: it must forget the dead shard's
  // oracle-client endpoint, whose respawn restarts request seqs at zero.
  std::vector<std::pair<EndpointId, EndpointId>> resets;
  for (std::size_t p = 0; p < shards_.size(); ++p) {
    if (p == s || shards_[p]->lost) continue;
    resets.emplace_back(weaver_->shard_endpoints_[p], ep);
  }
  if (weaver_->remote_oracle_ && !oracle_.lost) {
    resets.emplace_back(weaver_->oracle_endpoint_,
                        weaver_->oracle_client_endpoints_[s]);
  }
  RunResetRound(resets);

  std::uint64_t replayed = 0;
  {
    // 5. REPLAY under the exclusive gate: no commit slice or program
    // seed interleaves with the reset + replay stream.
    WriterLock gate(weaver_->commit_gate_);
    // Programs seeded between the fence above and this acquisition may
    // have hops en route to the dead endpoint (dropped at the hub) --
    // they would hang, so they fail here too. Seeding holds the shared
    // gate, so no new execution can register while we hold it.
    weaver_->FailAllExecutions(
        Status::Unavailable(name + " crashed; re-run the program"));
    weaver_->bus_->ResetPeer(ep);
    weaver_->bus_->ReplaceRemote(ep, transport);
    if (weaver_->remote_oracle_) {
      // The shard's oracle-client reply endpoint rides the same socket:
      // reset its sequence state AND re-point it at the respawn's
      // transport, or the oracle's replies to the new process would be
      // dropped at the hub ("transport is stopped").
      weaver_->bus_->ResetPeer(weaver_->oracle_client_endpoints_[s]);
      weaver_->bus_->ReplaceRemote(weaver_->oracle_client_endpoints_[s],
                                   transport);
    }
    weaver_->remote_shard_transports_[s] = transport;
    WireLink::Options lo;
    lo.bus = weaver_->bus_.get();
    lo.transport = transport;
    lo.decode = DecodePayload;
    lo.never_block = WireNeverBlock;
    lo.name = name + ".link";
    lo.on_down = [this, s](const Status&) { OnLinkDown(s); };
    weaver_->links_[s] = std::make_unique<WireLink>(std::move(lo));
    replayed = ReplayPartition(s, ep);
  }

  // 6. REJOIN.
  st.pid = pid;
  st.last_frames = 0;
  st.last_activity_us = NowMicros();
  st.pinged = false;
  weaver_->remote_down_[s].store(false, std::memory_order_relaxed);
  weaver_->cluster_.MarkRecovered(name);
  shards_down_->Add(-1);
  replayed_vertices_->Add(replayed);
  recoveries_->Add();
  const std::uint64_t elapsed_ns = NowNanos() - t0;
  recovery_latency_->Record(elapsed_ns);
  std::fprintf(stderr,
               "weaver-supervisor: %s respawned as pid %d (%llu vertices "
               "replayed, %.1f ms)\n",
               name.c_str(), static_cast<int>(pid),
               static_cast<unsigned long long>(replayed),
               static_cast<double>(elapsed_ns) / 1e6);
}

void ShardSupervisor::RunResetRound(
    const std::vector<std::pair<EndpointId, EndpointId>>& resets) {
  const std::uint64_t token = next_token_++;
  {
    MutexLock lk(ack_mu_);
    ack_token_ = token;
    acks_ = 0;
  }
  std::size_t expected = 0;
  for (const auto& [dst, target] : resets) {
    auto reset = std::make_shared<ShardResetMessage>();
    reset->target = target;
    reset->token = token;
    reset->reply_to = weaver_->coordinator_endpoint_;
    if (weaver_->bus_
            ->Send(weaver_->coordinator_endpoint_, dst, kMsgShardReset,
                   std::move(reset), /*never_block=*/true)
            .ok()) {
      ++expected;
    }
  }
  if (expected == 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(
          weaver_->options_.supervision.reset_ack_timeout_micros);
  MutexLock lk(ack_mu_);
  bool all = true;
  while (acks_ < expected) {
    if (ack_cv_.wait_until(lk.native(), deadline) ==
        std::cv_status::timeout) {
      all = acks_ >= expected;
      break;
    }
  }
  if (!all) {
    reset_ack_timeouts_->Add();
    std::fprintf(stderr,
                 "weaver-supervisor: reset round %llu got %zu/%zu acks; "
                 "proceeding\n",
                 static_cast<unsigned long long>(token), acks_, expected);
  }
}

void ShardSupervisor::RecoverOracle() {
  const std::uint64_t t0 = NowNanos();
  ShardState& st = oracle_;
  const EndpointId ep = weaver_->oracle_endpoint_;
  std::fprintf(stderr,
               "weaver-supervisor: oracled (pid %d) is down; recovering\n",
               static_cast<int>(st.pid));
  oracle_down_->Add(1);

  // FENCE. Detach drops frames addressed to the corpse (shard requests
  // hub-forwarded here included); callers time out and retry. No epoch
  // bump, no commit gate, no execution fail-out: the oracle holds no
  // clocks and no graph state, and every in-flight caller either parks
  // its wave or aborts its program with a retriable Unavailable.
  weaver_->cluster_.MarkFailed("oracled");
  weaver_->bus_->Detach(ep);
  if (weaver_->oracle_link_) {
    weaver_->oracle_link_->Stop();
    weaver_->oracle_link_.reset();
  }
  weaver_->oracle_transport_.reset();
  if (st.pid > 0) {
    ::kill(st.pid, SIGKILL);
    (void)::waitpid(st.pid, nullptr, 0);
    st.pid = -1;
  }
  st.link_down.store(false, std::memory_order_release);

  // RESPAWN: the spare replays the oracle's durable changelog before it
  // serves (serverd::RunOracleServer refuses to come up on a recovery
  // failure), so every edge acknowledged pre-crash is re-established.
  int fd = -1;
  pid_t pid = -1;
  while (!spare_fds_.empty()) {
    fd = spare_fds_.back();
    spare_fds_.pop_back();
    pid = spare_pids_.back();
    spare_pids_.pop_back();
    if (serverd::AssignSpare(fd, serverd::kSpareBecomeOracle).ok()) break;
    ::close(fd);
    (void)::waitpid(pid, nullptr, WNOHANG);
    fd = -1;
    pid = -1;
  }
  if (fd < 0) {
    st.lost = true;
    recoveries_failed_->Add();
    std::fprintf(
        stderr,
        "weaver-supervisor: no spare left for oracled; it stays down\n");
    return;
  }
  auto transport = std::shared_ptr<Transport>(SocketTransport::Adopt(fd));

  // RESET: every live shard forgets its wire-sequence state for the
  // oracle endpoint (requests restart at seq zero toward the respawn,
  // and replies from it restart at zero toward them). The parent resets
  // its own state below, before the new link comes up.
  std::vector<std::pair<EndpointId, EndpointId>> resets;
  for (std::size_t p = 0; p < shards_.size(); ++p) {
    if (shards_[p]->lost) continue;
    resets.emplace_back(weaver_->shard_endpoints_[p], ep);
  }
  RunResetRound(resets);

  weaver_->bus_->ResetPeer(ep);
  weaver_->bus_->ReplaceRemote(ep, transport);
  weaver_->oracle_transport_ = transport;
  WireLink::Options lo;
  lo.bus = weaver_->bus_.get();
  lo.transport = transport;
  lo.decode = DecodePayload;
  lo.never_block = WireNeverBlock;
  lo.name = "oracled.link";
  lo.on_down = [this](const Status&) { OnOracleLinkDown(); };
  weaver_->oracle_link_ = std::make_unique<WireLink>(std::move(lo));

  // REJOIN.
  st.pid = pid;
  st.last_frames = 0;
  st.last_activity_us = NowMicros();
  st.pinged = false;
  weaver_->cluster_.MarkRecovered("oracled");
  oracle_down_->Add(-1);
  oracle_recoveries_->Add();
  const std::uint64_t elapsed_ns = NowNanos() - t0;
  recovery_latency_->Record(elapsed_ns);
  std::fprintf(stderr,
               "weaver-supervisor: oracled respawned as pid %d (%.1f ms)\n",
               static_cast<int>(pid),
               static_cast<double>(elapsed_ns) / 1e6);
}

std::uint64_t ShardSupervisor::ReplayPartition(ShardId s, EndpointId ep) {
  constexpr std::size_t kBatch = 256;
  std::uint64_t replayed = 0;
  auto batch = std::make_shared<PartitionReplayMessage>();
  batch->shard = s;
  const auto flush = [&] {
    if (batch->vertices.empty()) return;
    (void)weaver_->bus_->Send(weaver_->coordinator_endpoint_, ep,
                              kMsgPartitionReplay, std::move(batch),
                              /*never_block=*/true);
    batch = std::make_shared<PartitionReplayMessage>();
    batch->shard = s;
  };
  // Same durable source boot-time recovery reads
  // (Weaver::RestoreFromBackingStore): commits publish vertex blobs to
  // the kv store before their slices go out, so the scan covers every
  // acknowledged write.
  for (const auto& [key, value] :
       weaver_->kv_->ScanPrefix(kv_keys::kVertexShardMapPrefix)) {
    const NodeId node_id = std::strtoull(
        key.substr(kv_keys::kVertexShardMapPrefix.size()).c_str(), nullptr,
        10);
    const ShardId owner =
        static_cast<ShardId>(std::strtoul(value.c_str(), nullptr, 10));
    if (owner != s) continue;
    auto blob = weaver_->kv_->Get(kv_keys::VertexData(node_id));
    if (!blob.ok()) continue;
    batch->vertices.emplace_back(node_id, std::move(*blob));
    ++replayed;
    if (batch->vertices.size() >= kBatch) flush();
  }
  flush();
  return replayed;
}

}  // namespace weaver
