#include "coord/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/clock.h"
#include "coord/serverd.h"
#include "core/message_codec.h"
#include "core/weaver.h"
#include "kvstore/kvstore.h"
#include "net/transport.h"
#include "net/wire_link.h"

namespace weaver {

ShardSupervisor::ShardSupervisor(Weaver* weaver) : weaver_(weaver) {
  const ShardSupervisionOptions& opts = weaver_->options_.supervision;
  shards_.reserve(weaver_->options_.num_shards);
  for (std::size_t s = 0; s < weaver_->options_.num_shards; ++s) {
    auto st = std::make_unique<ShardState>();
    if (s < opts.shard_pids.size()) st->pid = opts.shard_pids[s];
    shards_.push_back(std::move(st));
  }
  spare_pids_ = opts.spare_pids;
  spare_fds_ = opts.spare_fds;
  oracle_enabled_ = weaver_->remote_oracle_;
  if (oracle_enabled_) oracle_.pid = weaver_->options_.oracle_service.pid;
  gk_enabled_ = weaver_->remote_gatekeepers_;
  if (gk_enabled_) {
    gk_states_.reserve(weaver_->options_.num_gatekeepers);
    for (std::size_t g = 0; g < weaver_->options_.num_gatekeepers; ++g) {
      auto st = std::make_unique<ShardState>();
      if (g < opts.gatekeeper_pids.size()) st->pid = opts.gatekeeper_pids[g];
      gk_states_.push_back(std::move(st));
    }
  }

  obs::MetricsRegistry& m = weaver_->metrics_;
  recoveries_ = m.counter("supervisor.recoveries");
  recoveries_failed_ = m.counter("supervisor.recoveries_failed");
  reset_ack_timeouts_ = m.counter("supervisor.reset_ack_timeouts");
  replayed_vertices_ = m.counter("supervisor.replayed_vertices");
  sigkills_ = m.counter("supervisor.sigkills");
  oracle_recoveries_ = m.counter("supervisor.oracle_recoveries");
  gk_recoveries_ = m.counter("supervisor.gk_recoveries");
  exec_respawns_ = m.counter("supervisor.exec_respawns");
  shards_down_ = m.gauge("supervisor.shards_down");
  oracle_down_ = m.gauge("supervisor.oracle_down");
  gks_down_ = m.gauge("supervisor.gks_down");
  recovery_latency_ = m.histogram("supervisor.recovery_latency");
}

ShardSupervisor::~ShardSupervisor() {
  Stop();
  weaver_->metrics_.DropPrefix("supervisor.");
}

void ShardSupervisor::Start() {
  MutexLock lk(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { MonitorLoop(); });
}

void ShardSupervisor::Stop() {
  {
    MutexLock lk(mu_);
    stop_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  // Unused spares read the close as EOF and exit 0; the harness that
  // forked them waits for them like any other child.
  for (int& fd : spare_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void ShardSupervisor::OnLinkDown(ShardId shard) {
  if (shard >= shards_.size()) return;
  shards_[shard]->link_down.store(true, std::memory_order_release);
  MutexLock lk(mu_);
  wake_ = true;
  cv_.notify_all();
}

void ShardSupervisor::OnOracleLinkDown() {
  oracle_.link_down.store(true, std::memory_order_release);
  MutexLock lk(mu_);
  wake_ = true;
  cv_.notify_all();
}

void ShardSupervisor::OnGatekeeperLinkDown(GatekeeperId gk) {
  if (gk >= gk_states_.size()) return;
  gk_states_[gk]->link_down.store(true, std::memory_order_release);
  MutexLock lk(mu_);
  wake_ = true;
  cv_.notify_all();
}

void ShardSupervisor::OnResetAck(const ShardResetAckMessage& ack) {
  MutexLock lk(ack_mu_);
  if (ack.token != ack_token_) return;  // stale ack from an earlier round
  ++acks_;
  ack_cv_.notify_all();
}

bool ShardSupervisor::Reaped(ShardState* st) {
  if (st->pid <= 0) return false;
  int status = 0;
  const pid_t r = ::waitpid(st->pid, &status, WNOHANG);
  if (r == st->pid || (r < 0 && errno == ECHILD)) {
    st->pid = -1;
    return true;
  }
  return false;
}

std::uint64_t ShardSupervisor::FramesOf(const WireLink* link) {
  if (link == nullptr) return 0;
  return link->stats().frames_delivered.load(std::memory_order_relaxed) +
         link->stats().frames_forwarded.load(std::memory_order_relaxed);
}

bool ShardSupervisor::HeartbeatDead(ShardState* st, const WireLink* link,
                                    EndpointId ep, const std::string& name) {
  const ShardSupervisionOptions& opts = weaver_->options_.supervision;
  const std::uint64_t frames = FramesOf(link);
  const std::uint64_t now = NowMicros();
  if (frames != st->last_frames || st->last_activity_us == 0) {
    st->last_frames = frames;
    st->last_activity_us = now;
    st->pinged = false;
    weaver_->cluster_.Heartbeat(name);
    return false;
  }
  if (opts.heartbeat_timeout_micros > 0 &&
      now - st->last_activity_us >= 2 * opts.heartbeat_timeout_micros) {
    // Silent through a ping round: wedged but alive. Kill first so the
    // recovery that follows never races a half-dead writer.
    std::fprintf(stderr,
                 "weaver-supervisor: %s silent for %llu us; killing pid %d\n",
                 name.c_str(),
                 static_cast<unsigned long long>(now - st->last_activity_us),
                 static_cast<int>(st->pid));
    sigkills_->Add();
    if (st->pid > 0) ::kill(st->pid, SIGKILL);
    return true;
  }
  if (opts.heartbeat_timeout_micros > 0 && !st->pinged &&
      now - st->last_activity_us >= opts.heartbeat_timeout_micros) {
    // Quiet but maybe just idle: solicit a reply frame. The request_id
    // matches no pending collection, so the reply only refreshes the
    // remote depth -- and the frame counter.
    st->pinged = true;
    auto req = std::make_shared<MetricsRequestMessage>();
    req->request_id = 0;
    req->reply_to = weaver_->coordinator_endpoint_;
    (void)weaver_->bus_->Send(weaver_->coordinator_endpoint_, ep,
                              kMsgMetricsRequest, std::move(req),
                              /*never_block=*/true);
  }
  return false;
}

void ShardSupervisor::MonitorLoop() {
  const ShardSupervisionOptions& opts = weaver_->options_.supervision;
  while (true) {
    {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(opts.poll_period_micros);
      MutexLock lk(mu_);
      while (!stop_ && !wake_) {
        if (cv_.wait_until(lk.native(), deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (stop_) return;
      wake_ = false;
    }
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      ShardState& st = *shards_[s];
      if (st.lost) continue;
      bool dead = Reaped(&st);
      if (st.link_down.load(std::memory_order_acquire)) dead = true;
      if (!dead) {
        const WireLink* link = s < weaver_->links_.size()
                                   ? weaver_->links_[s].get()
                                   : nullptr;
        dead = HeartbeatDead(&st, link, weaver_->shard_endpoints_[s],
                             "shard" + std::to_string(s));
      }
      if (dead) Recover(static_cast<ShardId>(s));
    }
    if (oracle_enabled_ && !oracle_.lost) {
      bool dead = Reaped(&oracle_);
      if (oracle_.link_down.load(std::memory_order_acquire)) dead = true;
      if (!dead) {
        dead = HeartbeatDead(&oracle_, weaver_->oracle_link_.get(),
                             weaver_->oracle_endpoint_, "oracled");
      }
      if (dead) RecoverOracle();
    }
    for (std::size_t g = 0; g < gk_states_.size(); ++g) {
      ShardState& st = *gk_states_[g];
      if (st.lost) continue;
      bool dead = Reaped(&st);
      if (st.link_down.load(std::memory_order_acquire)) dead = true;
      if (!dead) {
        // The control endpoint ignores the solicited ping, but the
        // child's 5ms watermark reports keep its frame counter moving,
        // so a live gatekeeper never looks silent.
        const WireLink* link = g < weaver_->gatekeeper_links_.size()
                                   ? weaver_->gatekeeper_links_[g].get()
                                   : nullptr;
        dead = HeartbeatDead(&st, link, weaver_->gk_control_endpoints_[g],
                             "gk" + std::to_string(g));
      }
      if (dead) RecoverGatekeeper(static_cast<GatekeeperId>(g));
    }
  }
}

bool ShardSupervisor::SpawnReplacement(NodeRole role, std::uint32_t id,
                                       bool rehydrate,
                                       std::uint32_t spare_assignment,
                                       bool allow_spare, int* fd,
                                       pid_t* pid) {
  *fd = -1;
  *pid = -1;
  const ShardSupervisionOptions& opts = weaver_->options_.supervision;
  if (opts.exec_respawn) {
    // Fresh process, fresh address space, no inherited fds: the
    // cluster-bootstrap harness execs weaver-serverd and hands back the
    // joined connection (docs/transport.md#cluster-bootstrap).
    auto proc =
        opts.exec_respawn(role, id, rehydrate, weaver_->cluster_.current_epoch());
    if (proc.ok()) {
      *fd = proc->parent_fd;
      *pid = proc->pid;
      exec_respawns_->Add();
      return true;
    }
    std::fprintf(stderr,
                 "weaver-supervisor: exec respawn failed (%s); %s\n",
                 proc.status().ToString().c_str(),
                 allow_spare ? "falling back to the spare pool"
                             : "no other respawn source");
  }
  if (!allow_spare) return false;
  while (!spare_fds_.empty()) {
    const int f = spare_fds_.back();
    spare_fds_.pop_back();
    const pid_t p = spare_pids_.back();
    spare_pids_.pop_back();
    if (serverd::AssignSpare(f, spare_assignment).ok()) {
      *fd = f;
      *pid = p;
      return true;
    }
    ::close(f);  // that spare died on the bench; reap it and try the next
    (void)::waitpid(p, nullptr, WNOHANG);
  }
  return false;
}

std::uint32_t ShardSupervisor::AdvanceEpoch(GatekeeperId skip_gk) {
  if (weaver_->remote_gatekeepers_) {
    // The clocks live out-of-parent: bump the cluster epoch, then tell
    // every surviving gatekeeper process; each applies it under its own
    // clock lock. Not a true barrier -- the survivors converge within a
    // control-message delivery -- but cross-failure monotonicity only
    // needs the RESPAWNED clock to start in the new epoch, which its
    // RoleAssign guarantees.
    auto epoch = weaver_->cluster_.AdvanceEpochBarrier({});
    if (!epoch.ok()) {
      std::fprintf(stderr,
                   "weaver-supervisor: epoch bump failed (%s); "
                   "continuing recovery in the old epoch\n",
                   epoch.status().ToString().c_str());
      return weaver_->cluster_.current_epoch();
    }
    for (std::size_t g = 0; g < gk_states_.size(); ++g) {
      if (g == skip_gk || gk_states_[g]->lost) continue;
      auto adv = std::make_shared<GkEpochAdvanceMessage>();
      adv->epoch = *epoch;
      (void)weaver_->bus_->Send(weaver_->coordinator_endpoint_,
                                weaver_->gk_control_endpoints_[g],
                                kMsgGkEpochAdvance, std::move(adv),
                                /*never_block=*/true);
    }
    return *epoch;
  }
  std::vector<Gatekeeper*> gks;
  gks.reserve(weaver_->gatekeepers_.size());
  for (auto& g : weaver_->gatekeepers_) gks.push_back(g.get());
  auto epoch = weaver_->cluster_.AdvanceEpochBarrier(gks);
  if (!epoch.ok()) {
    std::fprintf(stderr,
                 "weaver-supervisor: epoch barrier failed (%s); "
                 "continuing recovery in the old epoch\n",
                 epoch.status().ToString().c_str());
    return weaver_->cluster_.current_epoch();
  }
  return *epoch;
}

void ShardSupervisor::Recover(ShardId s) {
  const std::uint64_t t0 = NowNanos();
  ShardState& st = *shards_[s];
  const EndpointId ep = weaver_->shard_endpoints_[s];
  const std::string name = "shard" + std::to_string(s);
  std::fprintf(stderr, "weaver-supervisor: %s (pid %d) is down; recovering\n",
               name.c_str(), static_cast<int>(st.pid));
  shards_down_->Add(1);

  // 1. FENCE. Down flag first: ShardAlive fast-fails new seeding before
  // anything else happens. Detach drops frames addressed to the corpse
  // (hub forwards included). In-flight programs can never balance their
  // credits once a shard is gone -- fail them all; their clients retry.
  weaver_->remote_down_[s].store(true, std::memory_order_relaxed);
  weaver_->cluster_.MarkFailed(name);
  weaver_->bus_->Detach(ep);
  weaver_->FailAllExecutions(
      Status::Unavailable(name + " crashed; re-run the program"));
  if (s < weaver_->links_.size() && weaver_->links_[s]) {
    weaver_->links_[s]->Stop();
    weaver_->links_[s].reset();
  }
  weaver_->remote_shard_transports_[s].reset();
  if (st.pid > 0) {
    // Heartbeat-declared deaths arrive here with the process possibly
    // still running; make it true, then reap.
    ::kill(st.pid, SIGKILL);
    (void)::waitpid(st.pid, nullptr, 0);
    st.pid = -1;
  }
  st.link_down.store(false, std::memory_order_release);

  // 2. EPOCH. Before the exclusive gate: the barrier takes every clock
  // lock, and a commit holding the shared gate may be waiting on one.
  (void)AdvanceEpoch(/*skip_gk=*/static_cast<GatekeeperId>(-1));

  // 3. RESPAWN: exec a fresh weaver-serverd when the harness provides
  // the hook, else assign a warm spare. With weaver-oracled running, the
  // respawn gets the rehydrate bit: it Sync()s the oracle's edge set
  // into its local replica after its link is up, so refinements the dead
  // shard had already observed stay locally answerable.
  const std::uint32_t assignment =
      weaver_->remote_oracle_
          ? (serverd::kSpareRehydrateBit | static_cast<std::uint32_t>(s))
          : static_cast<std::uint32_t>(s);
  int fd = -1;
  pid_t pid = -1;
  if (!SpawnReplacement(NodeRole::kShard, static_cast<std::uint32_t>(s),
                        weaver_->remote_oracle_, assignment,
                        /*allow_spare=*/true, &fd, &pid)) {
    st.lost = true;
    recoveries_failed_->Add();
    std::fprintf(stderr,
                 "weaver-supervisor: no respawn source for %s; it stays "
                 "down\n",
                 name.c_str());
    return;
  }

  auto transport = std::shared_ptr<Transport>(SocketTransport::Adopt(fd));
  if (weaver_->options_.shard_transport_decorator) {
    transport =
        weaver_->options_.shard_transport_decorator(std::move(transport), s);
  }

  // 4. RESET the survivors' wire-sequence state for the dead endpoint.
  // Their stale-seq frames to it were dropped at the detached endpoint
  // (FIFO uplinks: anything sent before their reset ran precedes the
  // ack), so after the acks no old-numbered frame can reach the respawn.
  // The oracle service joins the round: it must forget the dead shard's
  // oracle-client endpoint, whose respawn restarts request seqs at zero.
  std::vector<std::pair<EndpointId, EndpointId>> resets;
  for (std::size_t p = 0; p < shards_.size(); ++p) {
    if (p == s || shards_[p]->lost) continue;
    resets.emplace_back(weaver_->shard_endpoints_[p], ep);
  }
  if (weaver_->remote_oracle_ && !oracle_.lost) {
    resets.emplace_back(weaver_->oracle_endpoint_,
                        weaver_->oracle_client_endpoints_[s]);
  }
  if (weaver_->remote_gatekeepers_) {
    // Out-of-parent gatekeepers stream commit slices and program seeds
    // straight at shard endpoints: each live one must forget its wire
    // sequences toward the respawn too, or its next slice arrives with a
    // stale high seq and kills the fresh uplink.
    for (std::size_t h = 0; h < weaver_->gk_control_endpoints_.size(); ++h) {
      if (h < gk_states_.size() && gk_states_[h]->lost) continue;
      resets.emplace_back(weaver_->gk_control_endpoints_[h], ep);
    }
  }
  RunResetRound(resets);

  std::uint64_t replayed = 0;
  {
    // 5. REPLAY under the exclusive gate: no commit slice or program
    // seed interleaves with the reset + replay stream.
    WriterLock gate(weaver_->commit_gate_);
    // Programs seeded between the fence above and this acquisition may
    // have hops en route to the dead endpoint (dropped at the hub) --
    // they would hang, so they fail here too. Seeding holds the shared
    // gate, so no new execution can register while we hold it.
    weaver_->FailAllExecutions(
        Status::Unavailable(name + " crashed; re-run the program"));
    weaver_->bus_->ResetPeer(ep);
    weaver_->bus_->ReplaceRemote(ep, transport);
    if (weaver_->remote_oracle_) {
      // The shard's oracle-client reply endpoint rides the same socket:
      // reset its sequence state AND re-point it at the respawn's
      // transport, or the oracle's replies to the new process would be
      // dropped at the hub ("transport is stopped").
      weaver_->bus_->ResetPeer(weaver_->oracle_client_endpoints_[s]);
      weaver_->bus_->ReplaceRemote(weaver_->oracle_client_endpoints_[s],
                                   transport);
    }
    weaver_->remote_shard_transports_[s] = transport;
    WireLink::Options lo;
    lo.bus = weaver_->bus_.get();
    lo.transport = transport;
    lo.decode = DecodePayload;
    lo.never_block = WireNeverBlock;
    lo.name = name + ".link";
    lo.on_down = [this, s](const Status&) { OnLinkDown(s); };
    weaver_->links_[s] = std::make_unique<WireLink>(std::move(lo));
    replayed = ReplayPartition(s, ep);
  }

  // 6. REJOIN.
  st.pid = pid;
  st.last_frames = 0;
  st.last_activity_us = NowMicros();
  st.pinged = false;
  weaver_->remote_down_[s].store(false, std::memory_order_relaxed);
  weaver_->cluster_.MarkRecovered(name);
  shards_down_->Add(-1);
  replayed_vertices_->Add(replayed);
  recoveries_->Add();
  const std::uint64_t elapsed_ns = NowNanos() - t0;
  recovery_latency_->Record(elapsed_ns);
  std::fprintf(stderr,
               "weaver-supervisor: %s respawned as pid %d (%llu vertices "
               "replayed, %.1f ms)\n",
               name.c_str(), static_cast<int>(pid),
               static_cast<unsigned long long>(replayed),
               static_cast<double>(elapsed_ns) / 1e6);
}

void ShardSupervisor::RunResetRound(
    const std::vector<std::pair<EndpointId, EndpointId>>& resets) {
  const std::uint64_t token = next_token_++;
  {
    MutexLock lk(ack_mu_);
    ack_token_ = token;
    acks_ = 0;
  }
  std::size_t expected = 0;
  for (const auto& [dst, target] : resets) {
    auto reset = std::make_shared<ShardResetMessage>();
    reset->target = target;
    reset->token = token;
    reset->reply_to = weaver_->coordinator_endpoint_;
    if (weaver_->bus_
            ->Send(weaver_->coordinator_endpoint_, dst, kMsgShardReset,
                   std::move(reset), /*never_block=*/true)
            .ok()) {
      ++expected;
    }
  }
  if (expected == 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(
          weaver_->options_.supervision.reset_ack_timeout_micros);
  MutexLock lk(ack_mu_);
  bool all = true;
  while (acks_ < expected) {
    if (ack_cv_.wait_until(lk.native(), deadline) ==
        std::cv_status::timeout) {
      all = acks_ >= expected;
      break;
    }
  }
  if (!all) {
    reset_ack_timeouts_->Add();
    std::fprintf(stderr,
                 "weaver-supervisor: reset round %llu got %zu/%zu acks; "
                 "proceeding\n",
                 static_cast<unsigned long long>(token), acks_, expected);
  }
}

void ShardSupervisor::RecoverOracle() {
  const std::uint64_t t0 = NowNanos();
  ShardState& st = oracle_;
  const EndpointId ep = weaver_->oracle_endpoint_;
  std::fprintf(stderr,
               "weaver-supervisor: oracled (pid %d) is down; recovering\n",
               static_cast<int>(st.pid));
  oracle_down_->Add(1);

  // FENCE. Detach drops frames addressed to the corpse (shard requests
  // hub-forwarded here included); callers time out and retry. No epoch
  // bump, no commit gate, no execution fail-out: the oracle holds no
  // clocks and no graph state, and every in-flight caller either parks
  // its wave or aborts its program with a retriable Unavailable.
  weaver_->cluster_.MarkFailed("oracled");
  weaver_->bus_->Detach(ep);
  if (weaver_->oracle_link_) {
    weaver_->oracle_link_->Stop();
    weaver_->oracle_link_.reset();
  }
  weaver_->oracle_transport_.reset();
  if (st.pid > 0) {
    ::kill(st.pid, SIGKILL);
    (void)::waitpid(st.pid, nullptr, 0);
    st.pid = -1;
  }
  st.link_down.store(false, std::memory_order_release);

  // RESPAWN: the replacement replays the oracle's durable changelog
  // before it serves (serverd::RunOracleServer refuses to come up on a
  // recovery failure), so every edge acknowledged pre-crash is
  // re-established.
  int fd = -1;
  pid_t pid = -1;
  if (!SpawnReplacement(NodeRole::kOracle, 0, /*rehydrate=*/false,
                        serverd::kSpareBecomeOracle, /*allow_spare=*/true,
                        &fd, &pid)) {
    st.lost = true;
    recoveries_failed_->Add();
    std::fprintf(
        stderr,
        "weaver-supervisor: no respawn source for oracled; it stays down\n");
    return;
  }
  auto transport = std::shared_ptr<Transport>(SocketTransport::Adopt(fd));

  // RESET: every live shard forgets its wire-sequence state for the
  // oracle endpoint (requests restart at seq zero toward the respawn,
  // and replies from it restart at zero toward them). The parent resets
  // its own state below, before the new link comes up.
  std::vector<std::pair<EndpointId, EndpointId>> resets;
  for (std::size_t p = 0; p < shards_.size(); ++p) {
    if (shards_[p]->lost) continue;
    resets.emplace_back(weaver_->shard_endpoints_[p], ep);
  }
  RunResetRound(resets);

  weaver_->bus_->ResetPeer(ep);
  weaver_->bus_->ReplaceRemote(ep, transport);
  weaver_->oracle_transport_ = transport;
  WireLink::Options lo;
  lo.bus = weaver_->bus_.get();
  lo.transport = transport;
  lo.decode = DecodePayload;
  lo.never_block = WireNeverBlock;
  lo.name = "oracled.link";
  lo.on_down = [this](const Status&) { OnOracleLinkDown(); };
  weaver_->oracle_link_ = std::make_unique<WireLink>(std::move(lo));

  // REJOIN.
  st.pid = pid;
  st.last_frames = 0;
  st.last_activity_us = NowMicros();
  st.pinged = false;
  weaver_->cluster_.MarkRecovered("oracled");
  oracle_down_->Add(-1);
  oracle_recoveries_->Add();
  const std::uint64_t elapsed_ns = NowNanos() - t0;
  recovery_latency_->Record(elapsed_ns);
  std::fprintf(stderr,
               "weaver-supervisor: oracled respawned as pid %d (%.1f ms)\n",
               static_cast<int>(pid),
               static_cast<double>(elapsed_ns) / 1e6);
}

void ShardSupervisor::RecoverGatekeeper(GatekeeperId g) {
  const std::uint64_t t0 = NowNanos();
  ShardState& st = *gk_states_[g];
  const std::string name = "gk" + std::to_string(g);
  const EndpointId server_ep = weaver_->gk_server_endpoints_[g];
  const EndpointId client_ep = weaver_->gk_client_endpoints_[g];
  const EndpointId control_ep = weaver_->gk_control_endpoints_[g];
  std::fprintf(stderr, "weaver-supervisor: %s (pid %d) is down; recovering\n",
               name.c_str(), static_cast<int>(st.pid));
  gks_down_->Add(1);

  // FENCE. Detach all three of the dead process's endpoints: new client
  // sends fail fast instead of queueing toward a corpse, and stale
  // frames (peer announces, agent replies) are dropped. The dead clock
  // owner can never answer what it had accepted -- fail the parent's
  // internal pending replies so blocking wrappers return a retriable
  // Unavailable instead of hanging. (Pendings aimed at LIVE gatekeepers
  // fail too and simply retry: commits are acked only after the
  // parent-side store apply, so a retry of an already-applied write
  // re-validates against its own result and is benign.)
  weaver_->cluster_.MarkFailed(name);
  weaver_->bus_->Detach(server_ep);
  weaver_->bus_->Detach(client_ep);
  weaver_->bus_->Detach(control_ep);
  weaver_->internal_replies_->FailAll(
      Status::Unavailable(name + " crashed; retry"));
  // Client sessions pinned to this gatekeeper have their in-flight
  // requests die with the process -- unlike a shard crash, where the
  // surviving gatekeeper owns the retry, nothing will ever answer them.
  // Fail them fast so clients rebuild and resubmit.
  weaver_->FailSessionCalls(g, Status::Unavailable(name +
                                                   " crashed; resubmit"));
  if (g < weaver_->gatekeeper_links_.size() &&
      weaver_->gatekeeper_links_[g]) {
    weaver_->gatekeeper_links_[g]->Stop();
    weaver_->gatekeeper_links_[g].reset();
  }
  weaver_->remote_gatekeeper_transports_[g].reset();
  if (st.pid > 0) {
    ::kill(st.pid, SIGKILL);
    (void)::waitpid(st.pid, nullptr, 0);
    st.pid = -1;
  }
  st.link_down.store(false, std::memory_order_release);
  {
    // The cached GC watermark is the dead clock's word; GC skips rounds
    // until the respawn reports again.
    MutexLock lk(weaver_->gk_wm_mu_);
    weaver_->gk_watermarks_[g] = RefinableTimestamp();
  }

  // EPOCH. The respawn's clock seeds at the new epoch (RoleAssign), so
  // its restarted counters still order after everything the dead
  // process issued.
  (void)AdvanceEpoch(/*skip_gk=*/g);

  // RESPAWN. Gatekeepers exist only in cluster-bootstrap deployments:
  // exec_respawn is the only source (spares can only become shards or
  // the oracle).
  int fd = -1;
  pid_t pid = -1;
  if (!SpawnReplacement(NodeRole::kGatekeeper, g, /*rehydrate=*/false,
                        /*spare_assignment=*/0, /*allow_spare=*/false, &fd,
                        &pid)) {
    st.lost = true;
    recoveries_failed_->Add();
    std::fprintf(stderr,
                 "weaver-supervisor: no exec respawn for %s; it stays down\n",
                 name.c_str());
    return;
  }
  auto transport = std::shared_ptr<Transport>(SocketTransport::Adopt(fd));

  // RESET: every survivor that addresses the dead process forgets its
  // wire-sequence state -- shards send announce acks and accounting to
  // the server endpoint, and surviving gatekeeper processes announce to
  // it as a peer. The respawn's bus expects every channel to start at
  // seq zero.
  std::vector<std::pair<EndpointId, EndpointId>> resets;
  for (std::size_t p = 0; p < shards_.size(); ++p) {
    if (shards_[p]->lost) continue;
    resets.emplace_back(weaver_->shard_endpoints_[p], server_ep);
    resets.emplace_back(weaver_->shard_endpoints_[p], client_ep);
  }
  for (std::size_t h = 0; h < gk_states_.size(); ++h) {
    if (h == g || gk_states_[h]->lost) continue;
    resets.emplace_back(weaver_->gk_control_endpoints_[h], server_ep);
  }
  RunResetRound(resets);

  // REJOIN. No commit gate and no replay: gatekeepers hold no graph
  // state, and every commit the dead one acked was already applied (and
  // published to the kv store) parent-side before the ack went out.
  weaver_->bus_->ResetPeer(server_ep);
  weaver_->bus_->ResetPeer(client_ep);
  weaver_->bus_->ResetPeer(control_ep);
  weaver_->bus_->ReplaceRemote(server_ep, transport);
  weaver_->bus_->ReplaceRemote(client_ep, transport);
  weaver_->bus_->ReplaceRemote(control_ep, transport);
  weaver_->remote_gatekeeper_transports_[g] = transport;
  WireLink::Options lo;
  lo.bus = weaver_->bus_.get();
  lo.transport = transport;
  lo.decode = DecodePayload;
  lo.never_block = WireNeverBlock;
  lo.name = name + ".link";
  lo.on_down = [this, g](const Status&) { OnGatekeeperLinkDown(g); };
  weaver_->gatekeeper_links_[g] = std::make_unique<WireLink>(std::move(lo));

  st.pid = pid;
  st.last_frames = 0;
  st.last_activity_us = NowMicros();
  st.pinged = false;
  weaver_->cluster_.MarkRecovered(name);
  gks_down_->Add(-1);
  gk_recoveries_->Add();
  const std::uint64_t elapsed_ns = NowNanos() - t0;
  recovery_latency_->Record(elapsed_ns);
  std::fprintf(stderr,
               "weaver-supervisor: %s respawned as pid %d (%.1f ms)\n",
               name.c_str(), static_cast<int>(pid),
               static_cast<double>(elapsed_ns) / 1e6);
}

std::uint64_t ShardSupervisor::ReplayPartition(ShardId s, EndpointId ep) {
  constexpr std::size_t kBatch = 256;
  std::uint64_t replayed = 0;
  auto batch = std::make_shared<PartitionReplayMessage>();
  batch->shard = s;
  const auto flush = [&] {
    if (batch->vertices.empty()) return;
    (void)weaver_->bus_->Send(weaver_->coordinator_endpoint_, ep,
                              kMsgPartitionReplay, std::move(batch),
                              /*never_block=*/true);
    batch = std::make_shared<PartitionReplayMessage>();
    batch->shard = s;
  };
  // Same durable source boot-time recovery reads
  // (Weaver::RestoreFromBackingStore): commits publish vertex blobs to
  // the kv store before their slices go out, so the scan covers every
  // acknowledged write.
  for (const auto& [key, value] :
       weaver_->kv_->ScanPrefix(kv_keys::kVertexShardMapPrefix)) {
    const NodeId node_id = std::strtoull(
        key.substr(kv_keys::kVertexShardMapPrefix.size()).c_str(), nullptr,
        10);
    const ShardId owner =
        static_cast<ShardId>(std::strtoul(value.c_str(), nullptr, 10));
    if (owner != s) continue;
    auto blob = weaver_->kv_->Get(kv_keys::VertexData(node_id));
    if (!blob.ok()) continue;
    batch->vertices.emplace_back(node_id, std::move(*blob));
    ++replayed;
    if (batch->vertices.size() >= kBatch) flush();
  }
  flush();
  return replayed;
}

}  // namespace weaver
