// weaver-serverd: the multi-process deployment harness
// (docs/transport.md#multi-process).
//
// The paper's deployment runs shard servers as separate processes; this
// harness provides that shape. The PARENT process runs the gatekeeper
// bank, the backing store, the program coordinator, and the clients (a
// Weaver opened with WeaverOptions::remote_shard_fds); each CHILD
// process runs one standalone shard server (RunShardServer) connected to
// the parent by a stream socket. All inter-process traffic is wire
// frames (net/wire.h) carrying the schemas of core/messages.h; the
// parent doubles as a hub that forwards shard-to-shard hop batches
// between children without decoding them.
//
// The two sides never exchange configuration at runtime: they agree on
// the ENDPOINT LAYOUT below, computed from (num_shards, num_gatekeepers)
// alone. It mirrors Weaver's construction order exactly --
//
//     ids 0..S-1                 shard servers
//     ids S+2g, S+2g+1           gatekeeper g (server, client ingress)
//     id  S+2G                   program coordinator
//
// -- and, when the deployment runs the standalone timeline-oracle
// service (docs/oracle_service.md):
//
//     id  S+2G+1                 weaver-oracled
//     ids S+2G+2+p               shard p's oracle-client reply endpoint
//     id  S+2G+2+S               the parent's oracle-client reply endpoint
//
// -- and, when gatekeepers run out-of-parent as their own processes
// (docs/transport.md#cluster-bootstrap), after everything above:
//
//     ids base+g                 gatekeeper g's parent-side agent
//                                (StoreCommit / GkProgramStart handler)
//     ids base+G+g               gatekeeper g's child-side control
//                                (StoreCommitReply, program replies,
//                                 GkEpochAdvance)
//
// where base is one past the last id of the preceding blocks.
//
// -- so a frame's destination id means the same thing in every process.
// A child registers its own shard at its id and a remote proxy (over its
// single parent link) at every other id it can address.
//
// Shard-local state in a child: its own timeline-oracle view (an
// OracleClient -- authoritative passthrough without the service, a
// replica + RPC path with it), the standard program registry, and a
// hash-fallback NodeLocator -- which is why remote deployments require
// hash placement.
//
// Fork protocol (the only supported spawn mode today; an exec-based
// weaver-serverd binary would pass the same config on its command line):
// create the socketpairs and FORK THE CHILDREN FIRST, before the parent
// constructs its Weaver -- threads do not survive fork. Each child calls
// RunShardServer, which blocks until the parent shuts down, and _exits.
#pragma once

#include <cstdint>
#include <string>
#include <sys/types.h>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "core/messages.h"
#include "net/bus.h"
#include "storage/storage_options.h"

namespace weaver {
namespace serverd {

/// The endpoint-id contract between the parent deployment and the shard
/// server processes.
struct EndpointLayout {
  std::vector<EndpointId> shards;
  std::vector<EndpointId> gatekeepers;
  std::vector<EndpointId> gatekeeper_clients;
  EndpointId coordinator = 0;

  /// Oracle-service endpoints; meaningful only when with_oracle.
  bool with_oracle = false;
  EndpointId oracle = 0;
  /// oracle_clients[p]: shard p's reply endpoint for OracleReply frames.
  std::vector<EndpointId> oracle_clients;
  /// The parent process's own reply endpoint (GC collect RPCs).
  EndpointId parent_oracle_client = 0;

  /// Out-of-parent gatekeeper endpoints; meaningful only when
  /// with_remote_gatekeepers.
  bool with_remote_gatekeepers = false;
  /// gk_agents[g]: the parent-side agent that applies gatekeeper g's
  /// commits to the backing store and seeds its node programs.
  std::vector<EndpointId> gk_agents;
  /// gk_controls[g]: gatekeeper g's child-side control endpoint (agent
  /// replies, epoch advances).
  std::vector<EndpointId> gk_controls;

  static EndpointLayout Compute(std::size_t num_shards,
                                std::size_t num_gatekeepers,
                                bool with_oracle = false,
                                bool with_remote_gatekeepers = false);
  /// Highest id a child must be able to address.
  EndpointId max_endpoint() const {
    if (with_remote_gatekeepers) return gk_controls.back();
    return with_oracle ? parent_oracle_client : coordinator;
  }
};

/// Shard-server knobs a child shares with the parent deployment.
struct ShardServerOptions {
  std::size_t num_shards = 2;
  std::size_t num_gatekeepers = 2;
  std::size_t inbox_capacity = 8192;
  std::size_t queue_high_water = 4096;
  std::size_t max_hops_per_cycle = 2048;

  /// Run the deployment against a standalone weaver-oracled process
  /// (docs/oracle_service.md). Shards then resolve concurrent pairs
  /// through an OracleClient RPC path instead of a process-local
  /// authoritative replica, and the endpoint layout grows the oracle ids
  /// above.
  bool remote_oracle = false;
  /// weaver-oracled's durable-changelog directory; empty runs the
  /// service memory-only (no crash durability -- tests only).
  std::string oracle_data_dir;
  /// Changelog records between oracle checkpoints.
  std::uint64_t oracle_snapshot_every = 8192;
  /// Changelog fsync policy.
  FsyncPolicy oracle_fsync = FsyncPolicy::kNever;
  /// Shard-side OracleClient deadlines (per attempt / total budget).
  std::uint64_t oracle_rpc_timeout_micros = 250'000;
  std::uint64_t oracle_total_deadline_micros = 3'000'000;

  /// Run the gatekeeper bank out-of-parent: each gatekeeper is its own
  /// process (RunGatekeeperServer) holding the clock, sequencer, timers,
  /// and client ingress; the parent keeps only the backing store and a
  /// per-gatekeeper agent endpoint that applies commits. The endpoint
  /// layout grows the gk_agents / gk_controls blocks above.
  bool remote_gatekeepers = false;
  /// Gatekeeper knobs mirrored from Gatekeeper::Options so an exec'd
  /// gatekeeper process builds the same configuration the parent would.
  std::uint64_t tau_micros = 1000;
  std::uint64_t nop_period_micros = 200;
  std::size_t client_workers = 8;
  std::size_t client_batch = 8;
  std::size_t client_lane_capacity = 256;
  std::size_t max_inflight_programs = 64;
  std::size_t nop_high_water = 0;
  std::size_t announce_capacity = 0;
};

/// RoleAssign <-> ShardServerOptions: the handshake ships the full
/// configuration image, so an exec'd serverd needs nothing but its
/// command line. Role/shard/epoch/rehydrate are the coordinator's to
/// stamp; these helpers move only the options image.
RoleAssignMessage AssignmentFromOptions(const ShardServerOptions& options);
ShardServerOptions OptionsFromAssignment(const RoleAssignMessage& assign);

/// Child-process entry point: builds a standalone shard server for
/// `shard_id` wired to the parent over `parent_fd` (takes ownership of
/// the fd), serves until the parent shuts down (Stop message or socket
/// EOF), and returns the exit code. Call from a freshly forked child and
/// _exit() with the result. With options.remote_oracle, `rehydrate`
/// makes the shard pull the oracle service's full edge dump (Sync)
/// before serving -- the respawn path, where refinements made before a
/// predecessor crashed must be visible again.
int RunShardServer(int parent_fd, ShardId shard_id,
                   const ShardServerOptions& options, bool rehydrate = false);

/// Child-process entry point for weaver-oracled: the standalone,
/// supervised timeline-oracle service (docs/oracle_service.md). Serves
/// OracleRequest batches at layout.oracle over the parent hub link,
/// journaling every established edge to the durable changelog in
/// options.oracle_data_dir, until the parent shuts down.
int RunOracleServer(int parent_fd, const ShardServerOptions& options);

/// Child-process entry point for an out-of-parent gatekeeper
/// (docs/transport.md#cluster-bootstrap): owns gatekeeper `gk_id`'s
/// vector clock, slot sequencer, timers, and client ingress; commits are
/// applied through StoreCommit RPCs to the parent-side agent. `epoch`
/// seeds the clock (a respawn joins at the fenced cluster epoch). Serves
/// until the parent shuts down. Defined in src/order/gatekeeper_server.cc.
int RunGatekeeperServer(int parent_fd, GatekeeperId gk_id,
                        const ShardServerOptions& options,
                        std::uint32_t epoch);

/// One spawned shard-server child.
struct ShardProcess {
  pid_t pid = -1;
  int parent_fd = -1;  // the parent's end of the pair
};

/// Forks one shard-server child per shard. Call BEFORE constructing the
/// parent Weaver (threads do not survive fork). On success, feed the
/// parent_fds into WeaverOptions::remote_shard_fds.
Result<std::vector<ShardProcess>> SpawnShardServers(
    const ShardServerOptions& options);

/// Forks the weaver-oracled child. Same fork-first rule. Feed the
/// parent_fd/pid into WeaverOptions::oracle_service.
Result<ShardProcess> SpawnOracleServer(const ShardServerOptions& options);

/// Waits for every child to exit (after the parent Weaver shut down).
/// Returns non-OK if any child exited abnormally or with a non-zero
/// code. Children the supervisor already reaped (recovered crashes) are
/// skipped silently: ECHILD means "handled", not "lost".
Status WaitShardServers(const std::vector<ShardProcess>& children);

// --- Warm spare pool (docs/fault_tolerance.md#respawn) ----------------------
//
// fork() from the threaded parent is unsafe, so a dead shard cannot be
// respawned on demand: the spares are forked UP FRONT, alongside the
// original shard servers, while the process is still single-threaded.
// Each spare blocks reading a 4-byte assignment word from its socket;
// assigning one (AssignSpare) turns it into that server over the same
// fd. An unused spare sees EOF when the parent closes its fd and exits
// 0. The assignment word is a shard id, optionally tagged:
//
//   kSpareBecomeOracle             become weaver-oracled (replays the
//                                  durable changelog from
//                                  options.oracle_data_dir)
//   kSpareRehydrateBit | shard_id  become that shard AND rehydrate its
//                                  oracle replica from the service
//                                  (Sync) before serving

/// Assignment word: the spare becomes the oracle service.
constexpr std::uint32_t kSpareBecomeOracle = 0xFFFFFFFFu;
/// Assignment-word tag: the spare becomes shard (word & ~bit) in
/// rehydrate mode.
constexpr std::uint32_t kSpareRehydrateBit = 0x80000000u;

/// Spare-process entry point: blocks until the parent assigns a role
/// over `parent_fd`, then serves exactly like RunShardServer /
/// RunOracleServer. EOF before an assignment is a clean "never needed"
/// exit.
int RunSpareServer(int parent_fd, const ShardServerOptions& options);

/// Forks `count` unassigned spare processes. Same fork-first rule as
/// SpawnShardServers; call it immediately after, before the parent
/// Weaver exists. Pass the parent_fds into
/// WeaverOptions::supervision.spare_fds (and the pids into spare_pids).
Result<std::vector<ShardProcess>> SpawnSpareServers(
    const ShardServerOptions& options, std::size_t count);

/// Tells the spare behind `fd` to take the role in `assignment` (a plain
/// shard id or one of the tagged words above). After this the fd carries
/// wire frames; adopt it into a transport.
Status AssignSpare(int fd, std::uint32_t assignment);

}  // namespace serverd
}  // namespace weaver
