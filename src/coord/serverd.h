// weaver-serverd: the multi-process deployment harness
// (docs/transport.md#multi-process).
//
// The paper's deployment runs shard servers as separate processes; this
// harness provides that shape. The PARENT process runs the gatekeeper
// bank, the backing store, the program coordinator, and the clients (a
// Weaver opened with WeaverOptions::remote_shard_fds); each CHILD
// process runs one standalone shard server (RunShardServer) connected to
// the parent by a stream socket. All inter-process traffic is wire
// frames (net/wire.h) carrying the schemas of core/messages.h; the
// parent doubles as a hub that forwards shard-to-shard hop batches
// between children without decoding them.
//
// The two sides never exchange configuration at runtime: they agree on
// the ENDPOINT LAYOUT below, computed from (num_shards, num_gatekeepers)
// alone. It mirrors Weaver's construction order exactly --
//
//     ids 0..S-1                 shard servers
//     ids S+2g, S+2g+1           gatekeeper g (server, client ingress)
//     id  S+2G                   program coordinator
//
// -- so a frame's destination id means the same thing in every process.
// A child registers its own shard at its id and a remote proxy (over its
// single parent link) at every other id it can address.
//
// Shard-local state in a child: its own timeline-oracle REPLICA (the
// reactive refinement stage; see docs/transport.md#limitations), the
// standard program registry, and a hash-fallback NodeLocator -- which is
// why remote deployments require hash placement.
//
// Fork protocol (the only supported spawn mode today; an exec-based
// weaver-serverd binary would pass the same config on its command line):
// create the socketpairs and FORK THE CHILDREN FIRST, before the parent
// constructs its Weaver -- threads do not survive fork. Each child calls
// RunShardServer, which blocks until the parent shuts down, and _exits.
#pragma once

#include <cstdint>
#include <sys/types.h>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "net/bus.h"

namespace weaver {
namespace serverd {

/// The endpoint-id contract between the parent deployment and the shard
/// server processes.
struct EndpointLayout {
  std::vector<EndpointId> shards;
  std::vector<EndpointId> gatekeepers;
  std::vector<EndpointId> gatekeeper_clients;
  EndpointId coordinator = 0;

  static EndpointLayout Compute(std::size_t num_shards,
                                std::size_t num_gatekeepers);
  /// Highest id a child must be able to address (== coordinator).
  EndpointId max_endpoint() const { return coordinator; }
};

/// Shard-server knobs a child shares with the parent deployment.
struct ShardServerOptions {
  std::size_t num_shards = 2;
  std::size_t num_gatekeepers = 2;
  std::size_t inbox_capacity = 8192;
  std::size_t queue_high_water = 4096;
  std::size_t max_hops_per_cycle = 2048;
};

/// Child-process entry point: builds a standalone shard server for
/// `shard_id` wired to the parent over `parent_fd` (takes ownership of
/// the fd), serves until the parent shuts down (Stop message or socket
/// EOF), and returns the exit code. Call from a freshly forked child and
/// _exit() with the result.
int RunShardServer(int parent_fd, ShardId shard_id,
                   const ShardServerOptions& options);

/// One spawned shard-server child.
struct ShardProcess {
  pid_t pid = -1;
  int parent_fd = -1;  // the parent's end of the pair
};

/// Forks one shard-server child per shard. Call BEFORE constructing the
/// parent Weaver (threads do not survive fork). On success, feed the
/// parent_fds into WeaverOptions::remote_shard_fds.
Result<std::vector<ShardProcess>> SpawnShardServers(
    const ShardServerOptions& options);

/// Waits for every child to exit (after the parent Weaver shut down).
/// Returns non-OK if any child exited abnormally or with a non-zero
/// code. Children the supervisor already reaped (recovered crashes) are
/// skipped silently: ECHILD means "handled", not "lost".
Status WaitShardServers(const std::vector<ShardProcess>& children);

// --- Warm spare pool (docs/fault_tolerance.md#respawn) ----------------------
//
// fork() from the threaded parent is unsafe, so a dead shard cannot be
// respawned on demand: the spares are forked UP FRONT, alongside the
// original shard servers, while the process is still single-threaded.
// Each spare blocks reading a 4-byte shard id from its socket; assigning
// one (AssignSpare) turns it into that shard's server over the same fd.
// An unused spare sees EOF when the parent closes its fd and exits 0.

/// Spare-process entry point: blocks until the parent assigns a shard id
/// over `parent_fd`, then serves exactly like RunShardServer. EOF before
/// an assignment is a clean "never needed" exit.
int RunSpareServer(int parent_fd, const ShardServerOptions& options);

/// Forks `count` unassigned spare processes. Same fork-first rule as
/// SpawnShardServers; call it immediately after, before the parent
/// Weaver exists. Pass the parent_fds into
/// WeaverOptions::supervision.spare_fds (and the pids into spare_pids).
Result<std::vector<ShardProcess>> SpawnSpareServers(
    const ShardServerOptions& options, std::size_t count);

/// Tells the spare behind `fd` to become shard `shard_id`. After this
/// the fd carries wire frames; adopt it into a transport.
Status AssignSpare(int fd, ShardId shard_id);

}  // namespace serverd
}  // namespace weaver
