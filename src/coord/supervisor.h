// ShardSupervisor: process-level fault tolerance for multi-process
// deployments (docs/fault_tolerance.md).
//
// The parent deployment watches its shard-server children and recovers a
// dead one end to end. Detection combines three signals, any of which
// declares the child down:
//
//   * waitpid(WNOHANG) reaps an exited pid (crash, kill -9);
//   * the child's inbound WireLink reports link-down (peer EOF / reset);
//   * a heartbeat timeout -- no frame received for
//     heartbeat_timeout_micros solicits a metrics ping, and silence for
//     twice that declares the child wedged-but-alive: it is SIGKILLed
//     first, so the recovery below never races a half-dead writer.
//
// Recovery state machine for a dead shard s (runs on the monitor thread):
//
//   1. FENCE   -- mark s down (ShardAlive fast-fails new work with
//                 Unavailable), MarkFailed in the cluster manager, detach
//                 its bus endpoint, fail every in-flight node program,
//                 destroy the old link, reap the corpse.
//   2. EPOCH   -- AdvanceEpochBarrier: the respawned server starts life in
//                 a fresh epoch, so cross-failure timestamps stay
//                 monotonic (paper §4.3). Runs BEFORE the commit gate is
//                 taken exclusively -- the barrier holds every clock lock.
//   3. RESPAWN -- assign a warm spare (serverd::AssignSpare; spares were
//                 forked before the parent had threads, because fork from
//                 a threaded process is unsafe). No spare left: the shard
//                 stays down and supervisor.recoveries_failed counts it.
//   4. RESET   -- kMsgShardReset to every surviving shard child: each
//                 resets its wire-sequence state for the dead endpoint on
//                 its own event loop (serialized with its hop forwarding)
//                 and acks. Waited with a timeout; stragglers are counted,
//                 not fatal.
//   5. REPLAY  -- under the EXCLUSIVE commit gate: reset the parent's own
//                 sequence state, install the spare's transport + a fresh
//                 WireLink, and stream the partition (every kv-committed
//                 vertex owned by s) back as kMsgPartitionReplay batches.
//                 Commits publish to the kv store BEFORE their shard
//                 slices go out, so the scan covers every acknowledged
//                 write; slices that raced the crash are re-applied
//                 benignly (multi-version installs are idempotent).
//   6. REJOIN  -- MarkRecovered, clear the down flag, resume heartbeats.
//
// The timeline-oracle service (weaver-oracled, docs/oracle_service.md)
// is supervised by the same monitor with the same three detection
// signals, but its recovery is simpler: no epoch bump (the oracle holds
// no clocks), no commit gate, and no partition replay -- the service
// replays its own durable changelog on boot. Recovery for the oracle is
// FENCE -> RESPAWN (spare assigned kSpareBecomeOracle) -> RESET (every
// live shard and the parent forget their wire-sequence state for the
// oracle endpoint) -> REJOIN. Shard-side callers ride it out: waves
// park and programs abort with retriable Unavailable until the respawn
// answers again.
//
// Respawn source: when ShardSupervisionOptions::exec_respawn is set (the
// cluster-bootstrap harness, docs/transport.md#cluster-bootstrap), a
// replacement is fork+exec'd on demand -- a fresh weaver-serverd joins
// over TCP with no inherited state -- and the warm spare pool is only
// the fallback. Without the hook, the spare pool is the only source.
//
// Out-of-parent gatekeeper processes (same doc) are supervised with the
// same three detection signals. Their recovery is: FENCE (detach the
// dead gatekeeper's server/client/control endpoints, fail the parent's
// internal pending replies, kill+reap), EPOCH (barrier bump broadcast to
// the surviving gatekeeper processes as GkEpochAdvance -- the respawn
// seeds its clock at the new epoch, so cross-failure timestamps stay
// monotonic while its counters restart at zero), RESPAWN (exec_respawn
// only: spares cannot become gatekeepers), RESET (surviving shards and
// gatekeepers forget their wire-sequence state for the dead process's
// endpoints), REJOIN (parent resets + re-points the three endpoints at
// the new transport, fresh link, watermark cache invalidated). No
// partition replay: gatekeepers hold no graph state, and every commit
// they acked was applied to the backing store parent-side first.
//
// Everything is observable through the deployment registry under the
// "supervisor." prefix (docs/observability.md): recoveries,
// recoveries_failed, reset_ack_timeouts, replayed_vertices, sigkills,
// shards_down, oracle_recoveries, oracle_down, and the recovery_latency
// histogram.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/ids.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/messages.h"
#include "obs/metrics.h"

namespace weaver {

class Weaver;
class WireLink;

class ShardSupervisor {
 public:
  /// Reads WeaverOptions::supervision off the deployment. Construct after
  /// the gatekeepers exist and before the wire links (the links' on_down
  /// hooks point here).
  explicit ShardSupervisor(Weaver* weaver);
  ~ShardSupervisor();
  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// Starts / stops the monitor thread (both idempotent). Stop also
  /// closes the unused spare fds, which the spares read as EOF and exit
  /// cleanly.
  void Start();
  void Stop();

  /// WireLink on_down hook for shard `shard`'s inbound link: flags the
  /// crash and wakes the monitor immediately (no poll-period latency).
  /// Safe from any thread; does nothing but flag + notify.
  void OnLinkDown(ShardId shard);
  /// Same, for the oracle service's inbound link.
  void OnOracleLinkDown();
  /// Same, for an out-of-parent gatekeeper process's inbound link.
  void OnGatekeeperLinkDown(GatekeeperId gk);
  /// Coordinator-delivered kMsgShardResetAck (a surviving shard finished
  /// resetting its sequence state for the dead endpoint).
  void OnResetAck(const ShardResetAckMessage& ack);

 private:
  struct ShardState {
    pid_t pid = -1;
    /// Set by OnLinkDown (link receive thread); consumed by the monitor.
    std::atomic<bool> link_down{false};
    /// Down for good: died with the spare pool empty.
    bool lost = false;
    // Heartbeat bookkeeping (monitor thread only).
    std::uint64_t last_frames = 0;
    std::uint64_t last_activity_us = 0;
    bool pinged = false;
  };

  void MonitorLoop();
  /// waitpid(WNOHANG); true when the child is gone (reaped here or
  /// already unknown to the kernel).
  static bool Reaped(ShardState* st);
  /// Frames ever received on a child's inbound link (the heartbeat
  /// signal: a live child's acks, replies, and accounting keep it
  /// moving). Null link (recovery in progress) reads as zero.
  static std::uint64_t FramesOf(const WireLink* link);
  /// Shared heartbeat bookkeeping for one live child: refreshes activity
  /// on link progress, solicits a metrics ping after one quiet timeout,
  /// and SIGKILLs after two. Returns true when the child was declared
  /// wedged (and killed); the caller then runs its recovery.
  bool HeartbeatDead(ShardState* st, const WireLink* link, EndpointId ep,
                     const std::string& name);
  /// The shard recovery state machine (steps 1-6 above).
  void Recover(ShardId shard);
  /// Oracle recovery: FENCE -> RESPAWN -> RESET -> REJOIN.
  void RecoverOracle();
  /// Gatekeeper-process recovery (header comment above). exec_respawn
  /// only: the spare pool cannot produce gatekeepers.
  void RecoverGatekeeper(GatekeeperId gk);
  /// Produces a replacement child: exec_respawn when configured (falling
  /// back on its failure), else the warm spare pool with
  /// `spare_assignment` (pass allow_spare = false for roles spares cannot
  /// take). Returns false when no source produced one.
  bool SpawnReplacement(NodeRole role, std::uint32_t id, bool rehydrate,
                        std::uint32_t spare_assignment, bool allow_spare,
                        int* fd, pid_t* pid);
  /// The EPOCH step, remote-gatekeeper aware: in-process it runs the
  /// barrier across the gatekeeper bank; with out-of-parent gatekeepers
  /// it bumps the cluster epoch and broadcasts GkEpochAdvance to every
  /// surviving gatekeeper process (skipping `skip_gk` mid-recovery).
  /// Returns the epoch to seed a respawn's clock with.
  std::uint32_t AdvanceEpoch(GatekeeperId skip_gk);
  /// Reset round: for each (dst, target) pair, ask the server child at
  /// `dst` to forget its wire-sequence state for endpoint `target`, and
  /// wait (bounded) for the acks.
  void RunResetRound(
      const std::vector<std::pair<EndpointId, EndpointId>>& resets);
  /// Step 5's replay stream; returns the vertex count.
  std::uint64_t ReplayPartition(ShardId shard, EndpointId ep);

  Weaver* weaver_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  /// weaver-oracled, when the deployment runs one (same lifecycle state
  /// as a shard child; `lost` means it died with the spare pool empty).
  ShardState oracle_;
  bool oracle_enabled_ = false;
  /// Out-of-parent gatekeeper processes, when the deployment runs them
  /// (same lifecycle state; `lost` means exec respawn was unavailable or
  /// failed).
  std::vector<std::unique_ptr<ShardState>> gk_states_;
  bool gk_enabled_ = false;
  /// Spare pool, consumed back-to-front.
  std::vector<pid_t> spare_pids_;
  std::vector<int> spare_fds_;

  Mutex mu_;
  std::condition_variable cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  /// Link-down fast path: skip the rest of the poll wait.
  bool wake_ GUARDED_BY(mu_) = false;
  /// Written by Start (under mu_, before the loop runs) and joined by
  /// Stop after the stop_ handshake; the handle itself needs no guard.
  std::thread thread_;

  // Reset-ack round state (one round at a time; the monitor thread is the
  // only initiator).
  Mutex ack_mu_;
  std::condition_variable ack_cv_;
  std::uint64_t ack_token_ GUARDED_BY(ack_mu_) = 0;
  std::size_t acks_ GUARDED_BY(ack_mu_) = 0;
  /// Monitor thread only (ResetSurvivors is its sole caller); no guard.
  std::uint64_t next_token_ = 1;

  // Owned by the deployment registry; dropped (prefix "supervisor.") in
  // the destructor.
  obs::Counter* recoveries_ = nullptr;
  obs::Counter* recoveries_failed_ = nullptr;
  obs::Counter* reset_ack_timeouts_ = nullptr;
  obs::Counter* replayed_vertices_ = nullptr;
  obs::Counter* sigkills_ = nullptr;
  obs::Counter* oracle_recoveries_ = nullptr;
  obs::Counter* gk_recoveries_ = nullptr;
  obs::Counter* exec_respawns_ = nullptr;
  obs::Gauge* shards_down_ = nullptr;
  obs::Gauge* oracle_down_ = nullptr;
  obs::Gauge* gks_down_ = nullptr;
  obs::LatencyHistogram* recovery_latency_ = nullptr;
};

}  // namespace weaver
