#include "coord/cluster_manager.h"

#include <algorithm>

namespace weaver {

void ClusterManager::Register(std::string name, ServerKind kind,
                              std::uint32_t index) {
  MutexLock lk(mu_);
  Member m;
  m.name = name;
  m.kind = kind;
  m.index = index;
  m.last_heartbeat_us = NowMicros();
  m.alive = true;
  members_[std::move(name)] = std::move(m);
}

void ClusterManager::Heartbeat(const std::string& name) {
  MutexLock lk(mu_);
  auto it = members_.find(name);
  if (it != members_.end()) {
    it->second.last_heartbeat_us = NowMicros();
    it->second.alive = true;
  }
}

std::vector<std::string> ClusterManager::DetectFailures(
    std::uint64_t timeout_us) {
  MutexLock lk(mu_);
  const std::uint64_t now = NowMicros();
  std::vector<std::string> failed;
  for (auto& [name, m] : members_) {
    if (m.alive && now - m.last_heartbeat_us > timeout_us) {
      m.alive = false;
      failed.push_back(name);
    }
  }
  std::sort(failed.begin(), failed.end());
  return failed;
}

void ClusterManager::MarkFailed(const std::string& name) {
  MutexLock lk(mu_);
  auto it = members_.find(name);
  if (it != members_.end()) it->second.alive = false;
}

void ClusterManager::MarkRecovered(const std::string& name) {
  MutexLock lk(mu_);
  auto it = members_.find(name);
  if (it != members_.end()) {
    it->second.alive = true;
    it->second.last_heartbeat_us = NowMicros();
  }
}

bool ClusterManager::IsAlive(const std::string& name) const {
  MutexLock lk(mu_);
  auto it = members_.find(name);
  return it != members_.end() && it->second.alive;
}

std::vector<ClusterManager::Member> ClusterManager::Members() const {
  MutexLock lk(mu_);
  std::vector<Member> out;
  out.reserve(members_.size());
  for (const auto& [_, m] : members_) out.push_back(m);
  std::sort(out.begin(), out.end(),
            [](const Member& a, const Member& b) { return a.name < b.name; });
  return out;
}

void ClusterManager::RestoreEpoch(std::uint32_t epoch) {
  MutexLock lk(mu_);
  epoch_ = std::max(epoch_, epoch);
}

void ClusterManager::SetEpochPersist(
    std::function<Status(std::uint32_t)> persist) {
  MutexLock lk(mu_);
  persist_epoch_ = std::move(persist);
}

Result<std::uint32_t> ClusterManager::AdvanceEpochBarrier(
    const std::vector<Gatekeeper*>& gatekeepers) {
  // Lock every gatekeeper clock in a canonical order (their bank index),
  // so concurrent barriers cannot deadlock.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(gatekeepers.size());
  for (Gatekeeper* gk : gatekeepers) {
    locks.emplace_back(gk->clock_mutex().native());
  }
  std::uint32_t new_epoch;
  std::function<Status(std::uint32_t)> persist;
  {
    MutexLock lk(mu_);
    new_epoch = epoch_ + 1;
    persist = persist_epoch_;
  }
  // Persist before any gatekeeper can issue a new-epoch timestamp: were
  // the bump volatile, a crash after this barrier could reboot into an
  // epoch that already stamped data, breaking timestamp monotonicity. A
  // failed persist therefore aborts the whole barrier (the gatekeeper
  // clock locks are still held, so nothing observed the candidate epoch).
  if (persist) {
    const Status persisted = persist(new_epoch);
    if (!persisted.ok()) return persisted;
  }
  {
    MutexLock lk(mu_);
    epoch_ = new_epoch;
  }
  for (Gatekeeper* gk : gatekeepers) {
    gk->AdvanceEpochLocked(new_epoch);
  }
  return new_epoch;
}

}  // namespace weaver
