#include "workload/tao_workload.h"

namespace weaver {
namespace workload {

const char* TaoOpName(TaoOp op) {
  switch (op) {
    case TaoOp::kGetEdges:
      return "get_edges";
    case TaoOp::kCountEdges:
      return "count_edges";
    case TaoOp::kGetNode:
      return "get_node";
    case TaoOp::kCreateEdge:
      return "create_edge";
    case TaoOp::kDeleteEdge:
      return "delete_edge";
  }
  return "?";
}

bool IsRead(TaoOp op) {
  return op == TaoOp::kGetEdges || op == TaoOp::kCountEdges ||
         op == TaoOp::kGetNode;
}

TaoWorkload::TaoWorkload(std::uint64_t num_nodes, double read_fraction,
                         double zipf_theta, std::uint64_t seed)
    : rng_(seed),
      zipf_(num_nodes, zipf_theta),
      read_mix_({59.4, 11.7, 28.9}),  // Table 1 read proportions
      write_mix_({80.0, 20.0}),       // Table 1 write proportions
      num_nodes_(num_nodes),
      read_fraction_(read_fraction) {}

TaoOp TaoWorkload::NextOp() {
  if (rng_.NextDouble() < read_fraction_) {
    switch (read_mix_.Sample(rng_)) {
      case 0:
        return TaoOp::kGetEdges;
      case 1:
        return TaoOp::kCountEdges;
      default:
        return TaoOp::kGetNode;
    }
  }
  return write_mix_.Sample(rng_) == 0 ? TaoOp::kCreateEdge
                                      : TaoOp::kDeleteEdge;
}

NodeId TaoWorkload::PickNode() { return 1 + zipf_.Sample(rng_); }

NodeId TaoWorkload::PickUniformNode() {
  return 1 + rng_.Uniform(num_nodes_);
}

}  // namespace workload
}  // namespace weaver
