#include "workload/social_graph.h"

namespace weaver {
namespace workload {

GeneratedGraph MakePowerLawGraph(std::uint64_t num_nodes,
                                 std::uint32_t out_degree,
                                 std::uint64_t seed) {
  GeneratedGraph g;
  g.num_nodes = num_nodes;
  if (num_nodes < 2) return g;
  Rng rng(seed);
  g.edges.reserve(num_nodes * out_degree);
  // Repeated-endpoint preferential attachment: sampling a uniform position
  // in the accumulated endpoint list picks vertices proportionally to
  // their current degree; with probability beta pick uniformly (keeps the
  // tail from swallowing everything).
  std::vector<NodeId> endpoints;
  endpoints.reserve(num_nodes * out_degree * 2);
  constexpr double kBeta = 0.25;
  endpoints.push_back(1);
  for (NodeId v = 2; v <= num_nodes; ++v) {
    for (std::uint32_t d = 0; d < out_degree; ++d) {
      NodeId target;
      if (rng.Chance(kBeta) || endpoints.empty()) {
        target = 1 + rng.Uniform(v - 1);
      } else {
        target = endpoints[rng.Uniform(endpoints.size())];
      }
      if (target == v) target = 1 + (v - 1 + 1) % (v - 1);
      g.edges.emplace_back(v, target);
      endpoints.push_back(target);
      endpoints.push_back(v);
    }
  }
  return g;
}

GeneratedGraph MakeUniformGraph(std::uint64_t num_nodes,
                                std::uint64_t num_edges,
                                std::uint64_t seed) {
  GeneratedGraph g;
  g.num_nodes = num_nodes;
  if (num_nodes < 2) return g;
  Rng rng(seed);
  g.edges.reserve(num_edges);
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    const NodeId src = 1 + rng.Uniform(num_nodes);
    NodeId dst = 1 + rng.Uniform(num_nodes);
    if (dst == src) dst = 1 + (dst % num_nodes);
    g.edges.emplace_back(src, dst);
  }
  return g;
}

}  // namespace workload
}  // namespace weaver
