// Synthetic Bitcoin blockchain generator (the CoinGraph dataset, paper
// §5.2 / §6.1).
//
// The real CoinGraph stores 80M vertices / 1.2B edges of blockchain data;
// this generator reproduces the *structure* the Fig 7/8 experiments
// depend on at laptop scale: a chain of blocks where the number of
// transactions per block grows with the block height (the paper's x-axis),
// each transaction spending outputs of transactions from earlier blocks.
//
// Graph schema (mirrors CoinGraph):
//   block vertex  --["type"="in_block"]-->  tx vertex       (per tx)
//   tx vertex     --["type"="spend","value"=v]--> tx vertex (per output)
//   block vertex properties: "height", "ntx"
//   tx vertex properties:    "size", "fee"
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/random.h"

namespace weaver {
namespace workload {

struct ChainTx {
  NodeId id = kInvalidNodeId;
  std::uint32_t size_bytes = 0;
  std::uint32_t fee = 0;
  /// Outputs: (target tx vertex, value). Spends land on transactions in
  /// earlier blocks, like real UTXO references.
  std::vector<std::pair<NodeId, std::uint64_t>> outputs;
};

struct ChainBlock {
  NodeId id = kInvalidNodeId;
  std::uint32_t height = 0;
  std::vector<ChainTx> txs;
};

struct Blockchain {
  std::vector<ChainBlock> blocks;
  std::uint64_t total_txs = 0;
  std::uint64_t total_edges = 0;

  /// Number of transactions in the block at `height`.
  std::uint32_t TxCount(std::uint32_t height) const {
    return static_cast<std::uint32_t>(blocks[height].txs.size());
  }
};

struct BlockchainOptions {
  std::uint32_t num_blocks = 1000;
  /// Transactions per block grow linearly from min_txs at height 0 to
  /// max_txs at the highest block (the paper's blocks grow from a handful
  /// of transactions at 1k to ~1800 at 350k).
  std::uint32_t min_txs = 1;
  std::uint32_t max_txs = 200;
  std::uint32_t max_outputs_per_tx = 3;
  std::uint64_t seed = 7;
  /// First vertex id to allocate (blocks and txs share the id space).
  NodeId first_id = 1;
};

/// Generates the chain (ids only; loading into a store is the caller's
/// job -- see LoadBlockchain* helpers in the benches/examples).
Blockchain MakeBlockchain(const BlockchainOptions& options);

}  // namespace workload
}  // namespace weaver
