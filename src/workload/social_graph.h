// Synthetic graph generators standing in for the paper's datasets.
//
// The paper evaluates on LiveJournal (4.8M vertices / 68.9M edges,
// Fig 9-10), a small Twitter graph (1.76M edges, Fig 11/13), and the 2009
// Twitter snapshot (41.7M vertices / 1.47B edges, Fig 12). Those datasets
// are not redistributable here, so the benches use synthetic graphs that
// preserve the property the experiments depend on -- heavy-tailed degree
// distribution (social graphs) or uniform randomness (the small Twitter
// reachability graph) -- scaled to laptop size.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/random.h"

namespace weaver {
namespace workload {

struct GeneratedGraph {
  std::uint64_t num_nodes = 0;
  /// Directed edges (src, dst), src/dst in [1, num_nodes] (node id 0 is
  /// reserved).
  std::vector<std::pair<NodeId, NodeId>> edges;
};

/// Power-law digraph via preferential attachment with repeated-endpoint
/// sampling: each new vertex draws `out_degree` targets biased toward
/// high-degree vertices. Models the LiveJournal social graph.
GeneratedGraph MakePowerLawGraph(std::uint64_t num_nodes,
                                 std::uint32_t out_degree,
                                 std::uint64_t seed);

/// Uniform random digraph: `num_edges` edges with endpoints chosen
/// uniformly at random (the paper's "small Twitter graph" reachability
/// substrate, edges between vertices chosen uniformly at random).
GeneratedGraph MakeUniformGraph(std::uint64_t num_nodes,
                                std::uint64_t num_edges, std::uint64_t seed);

}  // namespace workload
}  // namespace weaver
