// The social-network operation mix of Table 1 (Facebook TAO trace):
//
//   Reads  99.8%:  get_edges 59.4%  |  count_edges 11.7%  |  get_node 28.9%
//   Writes  0.2%:  create_edge 80.0%  |  delete_edge 20.0%
//
// The Fig 9b/10 variants reuse the same within-class proportions at a
// different read fraction (e.g. 75% reads).
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "common/random.h"

namespace weaver {
namespace workload {

enum class TaoOp : std::uint8_t {
  kGetEdges,
  kCountEdges,
  kGetNode,
  kCreateEdge,
  kDeleteEdge,
};

const char* TaoOpName(TaoOp op);
bool IsRead(TaoOp op);

class TaoWorkload {
 public:
  /// `read_fraction` defaults to Table 1's 0.998. Vertex picks are
  /// Zipf-distributed over [1, num_nodes] (social traffic is skewed).
  TaoWorkload(std::uint64_t num_nodes, double read_fraction = 0.998,
              double zipf_theta = 0.8, std::uint64_t seed = 42);

  TaoOp NextOp();
  /// Vertex for the next operation (skewed pick).
  NodeId PickNode();
  /// Uniform vertex pick (edge targets).
  NodeId PickUniformNode();

  double read_fraction() const { return read_fraction_; }

 private:
  Rng rng_;
  ZipfSampler zipf_;
  DiscreteSampler read_mix_;   // get_edges / count_edges / get_node
  DiscreteSampler write_mix_;  // create_edge / delete_edge
  std::uint64_t num_nodes_;
  double read_fraction_;
};

}  // namespace workload
}  // namespace weaver
