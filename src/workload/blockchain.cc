#include "workload/blockchain.h"

#include <algorithm>

namespace weaver {
namespace workload {

Blockchain MakeBlockchain(const BlockchainOptions& options) {
  Blockchain chain;
  chain.blocks.reserve(options.num_blocks);
  Rng rng(options.seed);
  NodeId next_id = options.first_id;

  // Flat list of recent transaction ids for spend targets.
  std::vector<NodeId> recent_txs;

  for (std::uint32_t h = 0; h < options.num_blocks; ++h) {
    ChainBlock block;
    block.id = next_id++;
    block.height = h;
    // Linear growth of block size with height (paper Fig 7/8 x-axis).
    const double frac = options.num_blocks <= 1
                            ? 1.0
                            : static_cast<double>(h) /
                                  static_cast<double>(options.num_blocks - 1);
    const std::uint32_t ntx = options.min_txs +
        static_cast<std::uint32_t>(
            frac * static_cast<double>(options.max_txs - options.min_txs));
    block.txs.reserve(ntx);
    for (std::uint32_t t = 0; t < ntx; ++t) {
      ChainTx tx;
      tx.id = next_id++;
      tx.size_bytes = 180 + static_cast<std::uint32_t>(rng.Uniform(800));
      tx.fee = 1 + static_cast<std::uint32_t>(rng.Uniform(5000));
      if (!recent_txs.empty()) {
        const std::uint32_t nout =
            1 + static_cast<std::uint32_t>(
                    rng.Uniform(options.max_outputs_per_tx));
        for (std::uint32_t o = 0; o < nout; ++o) {
          // Spend a recent transaction (recency bias like real UTXOs).
          const std::size_t window =
              std::min<std::size_t>(recent_txs.size(), 50000);
          const NodeId target =
              recent_txs[recent_txs.size() - 1 - rng.Uniform(window)];
          tx.outputs.emplace_back(target, 1 + rng.Uniform(10'000'000));
          chain.total_edges++;
        }
      }
      chain.total_txs++;
      chain.total_edges++;  // block -> tx edge
      block.txs.push_back(std::move(tx));
    }
    for (const ChainTx& tx : block.txs) recent_txs.push_back(tx.id);
    chain.blocks.push_back(std::move(block));
  }
  return chain;
}

}  // namespace workload
}  // namespace weaver
