// RunGatekeeperServer: the out-of-parent gatekeeper process
// (docs/transport.md#cluster-bootstrap).
//
// This process owns everything about gatekeeper `gk_id` that the parent
// used to run in-process: the vector clock, the outbound slot sequencer,
// the announce/NOP timers, and the client ingress (lanes + worker pool).
// What it does NOT own is the backing store -- each commit attempt ships
// to the parent-side agent endpoint as a StoreCommit RPC, which applies
// it (OCC validation, write-back, locator/cache upkeep) at the timestamp
// THIS process issued, and answers with the ApplyOutcome image. The
// retry loop, conflict-clock merges, and the post-commit slice fan-out
// to the shard servers all stay here, so timestamp-order-matches-commit-
// order (paper §4.2) holds exactly as in-process.
//
// Node programs: the parent owns the program coordinator (wave
// accounting needs every shard link), so the ingress issues the
// program's timestamp here (fence merge included), registers it
// in-flight, and hands the seed to the parent as GkProgramStart. The
// parent's reply comes back through this process's control endpoint so
// the in-flight table and ingress slots settle on the authoritative
// side of the clock.
//
// Control endpoint traffic (layout.gk_controls[gk_id]):
//   StoreCommitReply     fulfills a pending agent RPC
//   ClientProgramReply   forwarded to the session; EndProgram here
//   GkEpochAdvance       epoch barrier participation (recovery fencing)
//   ShardReset           forget wire-sequence state for a respawned peer
//   Stop                 orderly shutdown (parent socket EOF also works)

#include <condition_variable>
#include <cstdio>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/sync.h"
#include "coord/serverd.h"
#include "core/message_codec.h"
#include "core/messages.h"
#include "net/bus.h"
#include "net/transport.h"
#include "net/wire_link.h"
#include "obs/metrics.h"
#include "order/gatekeeper.h"

namespace weaver {
namespace serverd {

namespace {

/// Pending StoreCommit RPCs to the parent-side agent. One outstanding
/// call per ingress worker at most, so a flat map is plenty.
class AgentChannel {
 public:
  /// Marks the parent link dead: every waiter (and every future call)
  /// fails fast with Unavailable.
  void Down() {
    MutexLock lk(mu_);
    down_ = true;
    cv_.notify_all();
  }

  void Fulfill(std::shared_ptr<StoreCommitReplyMessage> reply) {
    MutexLock lk(mu_);
    auto it = pending_.find(reply->request_id);
    if (it == pending_.end()) return;  // timed-out call already gave up
    it->second = std::move(reply);
    cv_.notify_all();
  }

  /// Sends one commit attempt and blocks for the outcome. `send` runs
  /// outside the channel lock.
  ApplyOutcome Call(MessageBus* bus, EndpointId self, EndpointId agent,
                    StoreCommitMessage msg, std::uint64_t timeout_micros) {
    std::uint64_t id;
    {
      MutexLock lk(mu_);
      if (down_) return Unreachable();
      id = next_id_++;
      pending_.emplace(id, nullptr);
    }
    msg.request_id = id;
    auto payload = std::make_shared<StoreCommitMessage>(std::move(msg));
    const Status sent = bus->Send(self, agent, kMsgStoreCommit, payload);
    if (!sent.ok()) {
      MutexLock lk(mu_);
      pending_.erase(id);
      ApplyOutcome out;
      out.status = sent;
      return out;
    }
    const std::uint64_t deadline = NowMicros() + timeout_micros;
    MutexLock lk(mu_);
    while (!down_ && pending_[id] == nullptr) {
      const std::uint64_t now = NowMicros();
      if (now >= deadline) break;
      cv_.wait_for(lk.native(), std::chrono::microseconds(deadline - now));
    }
    auto it = pending_.find(id);
    std::shared_ptr<StoreCommitReplyMessage> reply =
        it != pending_.end() ? std::move(it->second) : nullptr;
    if (it != pending_.end()) pending_.erase(it);
    if (reply == nullptr) return Unreachable();
    ApplyOutcome out;
    out.status = std::move(reply->status);
    out.retry_timestamp = reply->retry_timestamp;
    out.kv_conflict = reply->kv_conflict;
    out.conflict_clock = std::move(reply->conflict_clock);
    return out;
  }

 private:
  static ApplyOutcome Unreachable() {
    ApplyOutcome out;
    out.status = Status::Unavailable("store agent unreachable");
    return out;
  }

  Mutex mu_;
  std::condition_variable cv_;
  std::uint64_t next_id_ GUARDED_BY(mu_) = 1;
  std::unordered_map<std::uint64_t, std::shared_ptr<StoreCommitReplyMessage>>
      pending_ GUARDED_BY(mu_);
  bool down_ GUARDED_BY(mu_) = false;
};

/// Programs handed to the parent coordinator and not yet settled:
/// (session, request) -> where the session's reply goes + the timestamp
/// to retire from the in-flight table.
struct PendingProgram {
  EndpointId reply_to = 0;
  RefinableTimestamp ts;
};

}  // namespace

int RunGatekeeperServer(int parent_fd, GatekeeperId gk_id,
                        const ShardServerOptions& options,
                        std::uint32_t epoch) {
  const EndpointLayout layout = EndpointLayout::Compute(
      options.num_shards, options.num_gatekeepers, options.remote_oracle,
      /*with_remote_gatekeepers=*/true);
  if (gk_id >= options.num_gatekeepers) {
    std::fprintf(stderr, "weaver-serverd: gatekeeper id %u out of range\n",
                 gk_id);
    return 1;
  }

  obs::MetricsRegistry metrics;
  MessageBus bus;
  bus.SetMetrics(&metrics);
  bus.SetWireEncoder(EncodePayload);
  auto transport =
      std::shared_ptr<Transport>(SocketTransport::Adopt(parent_fd));

  AgentChannel agent;
  Mutex prog_mu;
  std::map<std::pair<std::uint64_t, std::uint64_t>, PendingProgram>
      pending_programs;  // guarded by prog_mu

  Mutex stop_mu;
  std::condition_variable stop_cv;
  bool stop = false;
  const auto request_stop = [&] {
    MutexLock lk(stop_mu);
    stop = true;
    stop_cv.notify_all();
  };

  const EndpointId control_ep = layout.gk_controls[gk_id];
  const EndpointId agent_ep = layout.gk_agents[gk_id];

  // Mirror the endpoint layout (ids are assigned by registration order;
  // drift misroutes frames, so it fails hard). The Gatekeeper registers
  // its own two endpoints -- announce server and client ingress -- at
  // consecutive ids, exactly like the parent's construction order.
  std::unique_ptr<Gatekeeper> gk;
  for (EndpointId id = 0; id <= layout.max_endpoint(); ++id) {
    if (id == layout.gatekeepers[gk_id]) {
      Gatekeeper::Options go;
      go.id = gk_id;
      go.num_gatekeepers = options.num_gatekeepers;
      go.bus = &bus;
      go.shard_endpoints = layout.shards;
      go.tau_micros = options.tau_micros;
      go.nop_period_micros = options.nop_period_micros;
      go.initial_epoch = epoch;
      go.client_workers = options.client_workers;
      go.client_batch = options.client_batch;
      go.client_lane_capacity = options.client_lane_capacity;
      go.max_inflight_programs = options.max_inflight_programs;
      go.nop_high_water = options.nop_high_water;
      go.announce_capacity = options.announce_capacity;
      go.metrics = &metrics;
      gk = std::make_unique<Gatekeeper>(std::move(go));
      if (gk->endpoint() != id ||
          gk->client_endpoint() != static_cast<EndpointId>(id + 1)) {
        std::fprintf(stderr,
                     "weaver-serverd: gatekeeper endpoint layout drifted\n");
        return 1;
      }
      ++id;  // client ingress endpoint, registered by the ctor
      continue;
    }
    EndpointId got;
    if (id == control_ep) {
      got = bus.RegisterHandler(
          "gk" + std::to_string(gk_id) + ".control",
          [&](const BusMessage& msg) {
            switch (msg.payload_tag) {
              case kMsgStoreCommitReply:
                agent.Fulfill(std::static_pointer_cast<StoreCommitReplyMessage>(
                    msg.payload));
                break;
              case kMsgClientProgramReply: {
                auto reply =
                    std::static_pointer_cast<ClientProgramReplyMessage>(
                        msg.payload);
                PendingProgram pp;
                bool found = false;
                {
                  MutexLock lk(prog_mu);
                  auto it = pending_programs.find(
                      {reply->session_id, reply->request_id});
                  if (it != pending_programs.end()) {
                    pp = it->second;
                    pending_programs.erase(it);
                    found = true;
                  }
                }
                if (!found) break;  // already failed locally
                (void)bus.Send(control_ep, pp.reply_to,
                               kMsgClientProgramReply, msg.payload);
                gk->EndProgram(pp.ts);
                gk->OnProgramSettled();
                break;
              }
              case kMsgGkEpochAdvance: {
                auto adv = std::static_pointer_cast<GkEpochAdvanceMessage>(
                    msg.payload);
                MutexLock lk(gk->clock_mutex());
                gk->AdvanceEpochLocked(adv->epoch);
                break;
              }
              case kMsgShardReset: {
                auto reset = std::static_pointer_cast<ShardResetMessage>(
                    msg.payload);
                bus.ResetPeer(reset->target);
                auto ack = std::make_shared<ShardResetAckMessage>();
                // Identify this acker uniquely among reset-round
                // participants (shards use their shard id; gatekeeper
                // processes live above that space).
                ack->shard = static_cast<ShardId>(options.num_shards + gk_id);
                ack->token = reset->token;
                (void)bus.Send(control_ep, reset->reply_to, kMsgShardResetAck,
                               std::move(ack));
                break;
              }
              case kMsgStop:
                request_stop();
                break;
              default:
                break;
            }
          });
    } else {
      got = bus.RegisterRemote("peer" + std::to_string(id), transport);
    }
    if (got != id) {
      std::fprintf(stderr,
                   "weaver-serverd: endpoint layout drifted (got %u, want "
                   "%u)\n",
                   got, id);
      return 1;
    }
  }

  // Dynamic parent-side endpoints -- session reply endpoints, the
  // parent's internal reply router -- live above the static layout, so
  // they cannot be pre-registered here. Route every unknown destination
  // up the parent link; the hub delivers it locally.
  bus.SetDefaultRemote(transport);

  std::vector<EndpointId> peers;
  for (GatekeeperId g = 0; g < options.num_gatekeepers; ++g) {
    if (g != gk_id) peers.push_back(layout.gatekeepers[g]);
  }
  gk->SetPeerEndpoints(std::move(peers));

  // The ingress executors: commits drive the gatekeeper's retry loop
  // with a remote applier; programs are timestamped here and seeded by
  // the parent coordinator.
  Gatekeeper::ClientExecutor exec;
  exec.commit = [&](Gatekeeper& g, ClientCommitMessage& req, bool pay_delay) {
    // Placement resolution without the backing store: created vertices
    // carry their partitioner choice; everything else is hash placement,
    // which remote deployments require (see RunShardServer's locator).
    std::unordered_map<NodeId, ShardId> placements;
    for (const auto& [node, shard] : req.created_placements) {
      placements[node] = shard;
    }
    const std::size_t num_shards = options.num_shards;
    for (const GraphOp& op : req.ops) {
      if (placements.count(op.node)) continue;
      placements[op.node] =
          static_cast<ShardId>(MixHash64(op.node) % num_shards);
    }
    // The simulated store round trip is owed at most once per request,
    // not per timestamp retry.
    bool delay_due = pay_delay;
    const auto apply = [&](const RefinableTimestamp& ts) {
      StoreCommitMessage m;
      m.gatekeeper = gk_id;
      m.ts = ts;
      m.pay_delay = delay_due;
      delay_due = false;
      m.ops = req.ops;
      m.created_placements = req.created_placements;
      m.read_set = req.read_set;
      return agent.Call(&bus, control_ep, agent_ep, std::move(m),
                        /*timeout_micros=*/10'000'000);
    };
    RefinableTimestamp ts;
    const Status st = g.CommitTransaction(apply, req.ops, placements, &ts);
    g.SendCommitReply(req.reply_to, req.session_id, req.request_id, st, ts);
  };
  exec.program = [&](Gatekeeper& g, const ClientProgramMessage& msg,
                     ProgramRequest& req) {
    const RefinableTimestamp ts =
        g.BeginProgram(req.fence.valid() ? &req.fence.clock : nullptr);
    {
      MutexLock lk(prog_mu);
      pending_programs[{msg.session_id, req.request_id}] =
          PendingProgram{msg.reply_to, ts};
    }
    auto start = std::make_shared<GkProgramStartMessage>();
    start->gatekeeper = gk_id;
    start->reply_to = msg.reply_to;
    start->session_id = msg.session_id;
    start->request_id = req.request_id;
    start->ts = ts;
    start->program_name = req.program_name;
    start->starts = std::move(req.starts);
    const Status sent =
        bus.Send(control_ep, agent_ep, kMsgGkProgramStart, std::move(start));
    if (!sent.ok()) {
      {
        MutexLock lk(prog_mu);
        pending_programs.erase({msg.session_id, req.request_id});
      }
      g.SendProgramReply(msg.reply_to, msg.session_id, req.request_id,
                         Result<ProgramResult>(sent));
      g.EndProgram(ts);
      g.OnProgramSettled();
    }
  };
  gk->SetClientExecutor(std::move(exec));

  // Peer-gatekeeper announce channels need a first-contact baseline: a
  // surviving peer keeps announcing at this endpoint for the whole window
  // its predecessor is being respawned, and the hub drops those frames
  // while burning the peer's sequence numbers -- so the first announce a
  // fresh process observes is far past seq 1. Announces are periodic
  // latest-wins traffic (anything missed while dead is superseded), so
  // the baseline is safe; mid-stream gaps still fail loudly.
  for (GatekeeperId g = 0; g < options.num_gatekeepers; ++g) {
    if (g != gk_id) bus.AllowFirstContact(layout.gatekeepers[g]);
  }

  // Inbound link from the parent hub.
  WireLink::Options lo;
  lo.bus = &bus;
  lo.transport = transport;
  lo.decode = DecodePayload;
  lo.never_block = WireNeverBlock;
  lo.name = "gk" + std::to_string(gk_id) + ".uplink";
  lo.on_down = [&](const Status&) {
    agent.Down();
    request_stop();
  };
  WireLink link(std::move(lo));

  gk->StartClientIngress();
  gk->StartTimers();

  // Main thread: periodic GC-watermark reports until shutdown. The
  // parent's garbage collector needs every gatekeeper's oldest in-flight
  // program timestamp (paper §4.5); in-process it reads OldestActive()
  // directly, here it rides the wire.
  const std::uint64_t kWatermarkPeriodMicros = 5'000;
  {
    MutexLock lk(stop_mu);
    while (!stop) {
      stop_cv.wait_for(lk.native(),
                       std::chrono::microseconds(kWatermarkPeriodMicros));
      if (stop) break;
      lk.Unlock();
      auto wm = std::make_shared<GkWatermarkMessage>();
      wm->gatekeeper = gk_id;
      wm->oldest_active = gk->OldestActive();
      (void)bus.Send(control_ep, agent_ep, kMsgGkWatermark, std::move(wm));
      lk.Lock();
    }
  }

  gk->StopClientIngress();
  gk->StopTimers();
  agent.Down();
  {
    MutexLock lk(prog_mu);
    pending_programs.clear();
  }
  link.Stop();
  return link.error().ok() || link.error().IsUnavailable() ? 0 : 1;
}

}  // namespace serverd
}  // namespace weaver
