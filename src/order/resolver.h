// OrderResolver: a shard server's view of the global timeline.
//
// Resolves any pair of refinable timestamps to a definitive order using,
// in order of cost: (1) the vector clocks (the common, proactive case),
// (2) a local cache of previous oracle decisions -- ordering decisions are
// irrevocable and monotonic, so caching is always sound (paper §4.2), and
// (3) the timeline oracle via an OracleClient, which establishes an order
// per the supplied arrival preference if none exists.
//
// With a remote oracle service the third step is an RPC that can fail
// (Unavailable during failover), so the shard-facing entry points are
// fallible: TryResolve / ResolveBatch return a Result and the caller
// decides whether to park the work or abort the program. The infallible
// Resolve() remains for local-oracle callers (tests, benches), where the
// client cannot fail.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/sync.h"
#include "oracle/oracle_client.h"
#include "oracle/timeline_oracle.h"
#include "order/timestamp.h"

namespace weaver {

class OrderResolver {
 public:
  struct Stats {
    std::uint64_t vclock_fast_path = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t oracle_requests = 0;
    /// TryResolve/ResolveBatch calls that surfaced a non-OK status
    /// (oracle unreachable mid-failover).
    std::uint64_t oracle_failures = 0;
  };

  /// Resolves against an in-process oracle (wrapped in an owned
  /// local-mode OracleClient).
  explicit OrderResolver(TimelineOracle* oracle);
  /// Resolves through the given client (local or remote mode).
  explicit OrderResolver(OracleClient* client) : client_(client) {}

  /// Definitive order of a vs b (never kConcurrent). If the pair is
  /// concurrent and not yet ordered, the oracle establishes an order with
  /// `a` first when prefer == kPreferFirst. Local-oracle clients only --
  /// a remote client's failure cannot be reported here (asserts in debug,
  /// falls back to the preference order in release).
  ClockOrder Resolve(const RefinableTimestamp& a, const RefinableTimestamp& b,
                     OrderPreference prefer);

  /// Fallible single-pair resolution: Unavailable when the oracle cannot
  /// be reached before the client's deadline. The caller must treat the
  /// failure as retriable and must NOT act on any assumed order.
  Result<ClockOrder> TryResolve(const RefinableTimestamp& a,
                                const RefinableTimestamp& b,
                                OrderPreference prefer);

  /// Fallible batched resolution: answers every pair, forwarding the
  /// cache/clock misses to the oracle in ONE request. The result is
  /// positional. On failure no partial answers are returned (already-
  /// cached pairs are still cached for next time).
  Result<std::vector<ClockOrder>> ResolveBatch(
      const std::vector<std::pair<RefinableTimestamp, RefinableTimestamp>>&
          pairs,
      OrderPreference prefer);

  /// Read-only variant: kConcurrent when no order is known locally. Used
  /// by speculative checks that must not establish commitments (and must
  /// not block on an RPC).
  ClockOrder Peek(const RefinableTimestamp& a, const RefinableTimestamp& b);

  /// Drops cached decisions whose events both precede `watermark` (invoked
  /// alongside multi-version GC).
  void TrimBefore(const VectorClock& watermark);

  const Stats& stats() const { return stats_; }
  std::size_t CacheSize() const;

 private:
  using Key = std::pair<EventId, EventId>;

  /// Cache lookup; fills *out and returns true on a hit.
  bool CacheLookup(const Key& key, ClockOrder* out);
  void CacheStore(const RefinableTimestamp& a, const RefinableTimestamp& b,
                  ClockOrder decided);

  /// Set iff constructed from a bare TimelineOracle*.
  std::unique_ptr<OracleClient> owned_client_;
  OracleClient* client_ = nullptr;

  mutable Mutex mu_;
  std::unordered_map<Key, ClockOrder, IdPairHash> cache_ GUARDED_BY(mu_);
  // Clock snapshots for TrimBefore: event id -> clock of cached decisions.
  std::unordered_map<EventId, VectorClock> cached_clocks_ GUARDED_BY(mu_);
  /// Owned by the shard's event-loop thread (the resolver's only Resolve/
  /// Peek caller); TrimBefore, the one cross-thread entry, leaves it
  /// alone -- so the counters need no guard.
  Stats stats_;
};

}  // namespace weaver
