// OrderResolver: a shard server's view of the global timeline.
//
// Resolves any pair of refinable timestamps to a definitive order using,
// in order of cost: (1) the vector clocks (the common, proactive case),
// (2) a local cache of previous oracle decisions -- ordering decisions are
// irrevocable and monotonic, so caching is always sound (paper §4.2), and
// (3) an ordering request to the timeline oracle, which establishes an
// order per the supplied arrival preference if none exists.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/annotations.h"
#include "common/ids.h"
#include "common/sync.h"
#include "oracle/timeline_oracle.h"
#include "order/timestamp.h"

namespace weaver {

class OrderResolver {
 public:
  struct Stats {
    std::uint64_t vclock_fast_path = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t oracle_requests = 0;
  };

  explicit OrderResolver(TimelineOracle* oracle) : oracle_(oracle) {}

  /// Definitive order of a vs b (never kConcurrent). If the pair is
  /// concurrent and not yet ordered, the oracle establishes an order with
  /// `a` first when prefer == kPreferFirst.
  ClockOrder Resolve(const RefinableTimestamp& a, const RefinableTimestamp& b,
                     OrderPreference prefer);

  /// Read-only variant: kConcurrent when no order is known. Used by
  /// speculative checks that must not establish commitments.
  ClockOrder Peek(const RefinableTimestamp& a, const RefinableTimestamp& b);

  /// Drops cached decisions whose events both precede `watermark` (invoked
  /// alongside multi-version GC).
  void TrimBefore(const VectorClock& watermark);

  const Stats& stats() const { return stats_; }
  std::size_t CacheSize() const;

 private:
  using Key = std::pair<EventId, EventId>;

  TimelineOracle* oracle_;
  mutable Mutex mu_;
  std::unordered_map<Key, ClockOrder, IdPairHash> cache_ GUARDED_BY(mu_);
  // Clock snapshots for TrimBefore: event id -> clock of cached decisions.
  std::unordered_map<EventId, VectorClock> cached_clocks_ GUARDED_BY(mu_);
  /// Owned by the shard's event-loop thread (the resolver's only Resolve/
  /// Peek caller); TrimBefore, the one cross-thread entry, leaves it
  /// alone -- so the counters need no guard.
  Stats stats_;
};

}  // namespace weaver
