// RefinableTimestamp: the ordering token attached to every transaction and
// node program (paper §3).
//
// A refinable timestamp is a vector clock snapshot taken by the issuing
// gatekeeper, plus the issuing gatekeeper's id and its local sequence
// number. Comparing two refinable timestamps uses the vector clocks; when
// the clocks are concurrent the pair must be "refined" by the timeline
// oracle (oracle/timeline_oracle.h). Timestamps from the same gatekeeper
// are always totally ordered by the local sequence number.
#pragma once

#include <cstdint>
#include <string>

#include "common/ids.h"
#include "common/serde.h"
#include "vclock/vclock.h"

namespace weaver {

struct RefinableTimestamp {
  VectorClock clock;
  GatekeeperId gatekeeper = 0;
  /// Value of the gatekeeper's own vector component when this timestamp was
  /// issued. Monotonic per (epoch, gatekeeper); gives FIFO order of the
  /// gatekeeper's transaction stream.
  std::uint64_t local_seq = 0;

  RefinableTimestamp() = default;
  RefinableTimestamp(VectorClock c, GatekeeperId gk, std::uint64_t seq)
      : clock(std::move(c)), gatekeeper(gk), local_seq(seq) {}

  bool valid() const { return clock.width() > 0; }

  /// Globally unique event identifier used by the timeline oracle:
  /// epoch (16 bits) | gatekeeper (16 bits) | local sequence (32 bits).
  EventId event_id() const {
    return (static_cast<std::uint64_t>(clock.epoch() & 0xffff) << 48) |
           (static_cast<std::uint64_t>(gatekeeper & 0xffff) << 32) |
           (local_seq & 0xffffffffULL);
  }

  /// Vector-clock comparison (the proactive stage). kConcurrent means the
  /// pair needs oracle refinement.
  ///
  /// Precondition: timestamps are issued causally -- a gatekeeper's clock
  /// only grows (ticks and announce merges), so a later timestamp from the
  /// same gatekeeper dominates an earlier one component-wise. This makes
  /// the same-issuer sequence shortcut below consistent with clock order.
  ClockOrder Compare(const RefinableTimestamp& other) const {
    if (gatekeeper == other.gatekeeper &&
        clock.epoch() == other.clock.epoch()) {
      // Same issuer: the local sequence is a total order.
      if (local_seq == other.local_seq) return ClockOrder::kEqual;
      return local_seq < other.local_seq ? ClockOrder::kBefore
                                         : ClockOrder::kAfter;
    }
    return clock.Compare(other.clock);
  }

  bool HappensBefore(const RefinableTimestamp& other) const {
    return Compare(other) == ClockOrder::kBefore;
  }
  bool ConcurrentWith(const RefinableTimestamp& other) const {
    return Compare(other) == ClockOrder::kConcurrent;
  }

  bool operator==(const RefinableTimestamp& other) const {
    return gatekeeper == other.gatekeeper && local_seq == other.local_seq &&
           clock == other.clock;
  }

  std::string ToString() const {
    return "T[gk" + std::to_string(gatekeeper) + "#" +
           std::to_string(local_seq) + " " + clock.ToString() + "]";
  }

  void Serialize(ByteWriter* w) const {
    clock.Serialize(w);
    w->PutU32(gatekeeper);
    w->PutU64(local_seq);
  }
  static Status Deserialize(ByteReader* r, RefinableTimestamp* out) {
    WEAVER_RETURN_IF_ERROR(VectorClock::Deserialize(r, &out->clock));
    WEAVER_RETURN_IF_ERROR(r->GetU32(&out->gatekeeper));
    WEAVER_RETURN_IF_ERROR(r->GetU64(&out->local_seq));
    return Status::Ok();
  }
};

}  // namespace weaver
