#include "order/gatekeeper.h"

#include <algorithm>
#include <cassert>

#include "common/clock.h"
#include "core/messages.h"
#include "graph/graph_store.h"

namespace weaver {

namespace {

std::string SerializeTimestamp(const RefinableTimestamp& ts) {
  ByteWriter w;
  ts.Serialize(&w);
  return w.Take();
}

Status ParseTimestamp(std::string_view blob, RefinableTimestamp* ts) {
  ByteReader r(blob);
  return RefinableTimestamp::Deserialize(&r, ts);
}

/// The commit span being filled by the current ingress worker, if its
/// request was sampled. CommitTransaction runs synchronously on the
/// dispatching worker's thread, so a thread-local hands the span down
/// without threading a parameter through the executor interface.
thread_local obs::TraceSpan* t_active_commit_span = nullptr;

}  // namespace

Gatekeeper::Gatekeeper(Options options)
    : options_(std::move(options)),
      clock_(options_.num_gatekeepers) {
  if (options_.initial_epoch > 0) {
    clock_.AdvanceEpoch(options_.initial_epoch);
  }
  assert(options_.bus != nullptr);
  assert(options_.id < options_.num_gatekeepers);
  endpoint_ = options_.bus->RegisterHandler(
      "gk" + std::to_string(options_.id),
      [this](const BusMessage& msg) {
        if (msg.payload_tag == kMsgAnnounce) {
          auto ann = std::static_pointer_cast<AnnounceMessage>(msg.payload);
          OnAnnounce(ann->clock);
        }
      },
      options_.announce_capacity);
  // The client ingress endpoint only parks requests in lanes; the handler
  // runs on the sender's thread and must stay cheap.
  client_endpoint_ = options_.bus->RegisterHandler(
      "gk" + std::to_string(options_.id) + ".client",
      [this](const BusMessage& msg) { EnqueueClientRequest(msg); });
  ExportMetrics();
}

Gatekeeper::~Gatekeeper() {
  StopClientIngress();
  StopTimers();
  if (options_.metrics != nullptr) {
    commit_latency_ = nullptr;
    options_.metrics->DropPrefix("gk" + std::to_string(options_.id) + ".");
  }
}

void Gatekeeper::ExportMetrics() {
  if (options_.metrics == nullptr) return;
  obs::MetricsRegistry* reg = options_.metrics;
  const std::string prefix = "gk" + std::to_string(options_.id) + ".";
  // Callback instruments read stats_ atomics; the destructor drops the
  // prefix before stats_ dies.
  const auto counter = [&](const char* name,
                           const std::atomic<std::uint64_t>& v) {
    reg->AddCounterFn(prefix + name, [&v] {
      return v.load(std::memory_order_relaxed);
    });
  };
  counter("txs_committed", stats_.txs_committed);
  counter("txs_aborted_kv", stats_.txs_aborted_kv);
  counter("txs_aborted_last_update", stats_.txs_aborted_last_update);
  counter("announces_sent", stats_.announces_sent);
  counter("announces_received", stats_.announces_received);
  counter("nops_sent", stats_.nops_sent);
  counter("nops_skipped", stats_.nops_skipped);
  counter("slice_send_failures", stats_.slice_send_failures);
  counter("nop_send_failures", stats_.nop_send_failures);
  counter("programs_issued", stats_.programs_issued);
  counter("client_commits", stats_.client_commits);
  counter("client_programs", stats_.client_programs);
  counter("client_program_msgs", stats_.client_program_msgs);
  counter("client_batches", stats_.client_batches);
  counter("client_rejected", stats_.client_rejected);
  counter("busy_ns", stats_.busy_ns);
  reg->AddGaugeFn(prefix + "nop_backoff", [this] {
    return static_cast<std::int64_t>(
        nop_backoff_.load(std::memory_order_relaxed));
  });
  reg->AddGaugeFn(prefix + "inflight_programs", [this] {
    MutexLock lk(ingress_mu_);
    return static_cast<std::int64_t>(inflight_programs_);
  });
  reg->AddGaugeFn(prefix + "lane_depth", [this] {
    MutexLock lk(ingress_mu_);
    std::size_t depth = program_queue_.size();
    for (const auto& [sid, lane] : lanes_) depth += lane.q.size();
    return static_cast<std::int64_t>(depth);
  });
  commit_latency_ = reg->histogram(prefix + "commit_latency");
}

void Gatekeeper::SendCommitReply(EndpointId reply_to,
                                 std::uint64_t session_id,
                                 std::uint64_t request_id, Status status,
                                 const RefinableTimestamp& ts) {
  auto reply = std::make_shared<ClientCommitReplyMessage>();
  reply->session_id = session_id;
  reply->request_id = request_id;
  reply->status = std::move(status);
  reply->timestamp = ts;
  // A failed send means the requester detached (session closed): it
  // already failed its outstanding handles, so the reply is moot.
  (void)options_.bus->Send(client_endpoint_, reply_to, kMsgClientCommitReply,
                           std::move(reply));
}

void Gatekeeper::SendProgramReply(EndpointId reply_to,
                                  std::uint64_t session_id,
                                  std::uint64_t request_id,
                                  Result<ProgramResult> result) {
  auto reply = std::make_shared<ClientProgramReplyMessage>();
  reply->session_id = session_id;
  reply->request_id = request_id;
  reply->status = result.status();
  if (result.ok()) reply->result = std::move(result).value();
  (void)options_.bus->Send(client_endpoint_, reply_to,
                           kMsgClientProgramReply, std::move(reply));
}

void Gatekeeper::FailCommitRequest(const BusMessage& msg, Status status) {
  auto req = std::static_pointer_cast<ClientCommitMessage>(msg.payload);
  SendCommitReply(req->reply_to, req->session_id, req->request_id,
                  std::move(status), {});
}

void Gatekeeper::EnqueueClientRequest(const BusMessage& msg) {
  if (msg.payload_tag == kMsgClientProgram) {
    auto req = std::static_pointer_cast<ClientProgramMessage>(msg.payload);
    stats_.client_program_msgs.fetch_add(1, std::memory_order_relaxed);
    // Programs carry no ordering promise: a shared queue lets any free
    // worker serve them, so one session (or one batched message) can
    // have many in flight. Batches fan out into one entry per request.
    std::vector<std::uint64_t> rejected;
    bool stopped = false;
    {
      MutexLock lk(ingress_mu_);
      stopped = ingress_stopped_;
      for (std::size_t i = 0; i < req->requests.size(); ++i) {
        if (stopped ||
            (options_.client_lane_capacity > 0 &&
             program_queue_.size() >= options_.client_lane_capacity * 8)) {
          stats_.client_rejected.fetch_add(1, std::memory_order_relaxed);
          rejected.push_back(req->requests[i].request_id);
          continue;
        }
        program_queue_.push_back(ProgramWork{req, i});
        ingress_cv_.notify_one();
      }
    }
    for (const std::uint64_t rid : rejected) {
      SendProgramReply(
          req->reply_to, req->session_id, rid,
          stopped ? Status::Unavailable("gatekeeper client ingress is "
                                        "stopped")
                  : Status::ResourceExhausted(
                        "program queue over capacity; wait for in-flight "
                        "requests before submitting more"));
    }
    return;
  }
  if (msg.payload_tag != kMsgClientCommit) return;

  const std::uint64_t sid =
      std::static_pointer_cast<ClientCommitMessage>(msg.payload)->session_id;
  Status failure = Status::Ok();
  {
    MutexLock lk(ingress_mu_);
    if (ingress_stopped_) {
      failure = Status::Unavailable("gatekeeper client ingress is stopped");
    } else {
      SessionLane& lane = lanes_[sid];
      if (options_.client_lane_capacity > 0 &&
          lane.q.size() >= options_.client_lane_capacity) {
        stats_.client_rejected.fetch_add(1, std::memory_order_relaxed);
        failure = Status::ResourceExhausted(
            "session lane over capacity; wait for in-flight requests "
            "before submitting more");
      } else {
        lane.q.push_back(msg);
        if (!lane.busy) {
          lane.busy = true;
          ready_lanes_.push_back(sid);
          ingress_cv_.notify_one();
        }
      }
    }
  }
  if (!failure.ok()) FailCommitRequest(msg, std::move(failure));
}

void Gatekeeper::StartClientIngress() {
  MutexLock lk(ingress_mu_);
  if (!ingress_workers_.empty() || ingress_stopped_) return;
  const std::size_t workers = std::max<std::size_t>(1, options_.client_workers);
  ingress_workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    ingress_workers_.emplace_back([this] { ClientIngressLoop(); });
  }
}

void Gatekeeper::StopClientIngress() {
  std::vector<std::thread> workers;
  {
    MutexLock lk(ingress_mu_);
    ingress_stopped_ = true;
    workers.swap(ingress_workers_);
    ingress_cv_.notify_all();
  }
  for (auto& w : workers) w.join();
  // Workers are gone: every still-queued request fails now so waiters
  // unblock (shutdown semantics of Pending<T>::Wait()).
  std::vector<BusMessage> orphan_commits;
  std::vector<ProgramWork> orphan_programs;
  {
    MutexLock lk(ingress_mu_);
    for (auto& [sid, lane] : lanes_) {
      for (auto& msg : lane.q) orphan_commits.push_back(std::move(msg));
      lane.q.clear();
      lane.busy = false;
    }
    lanes_.clear();
    ready_lanes_.clear();
    for (auto& work : program_queue_) {
      orphan_programs.push_back(std::move(work));
    }
    program_queue_.clear();
  }
  const Status down =
      Status::Unavailable("deployment shut down before execution");
  for (const BusMessage& msg : orphan_commits) {
    FailCommitRequest(msg, down);
  }
  for (const ProgramWork& work : orphan_programs) {
    SendProgramReply(work.msg->reply_to, work.msg->session_id,
                     work.msg->requests[work.index].request_id, down);
  }
}

bool Gatekeeper::ProgramDispatchableLocked() const {
  // A program may only be seeded while a free in-flight slot exists
  // (execution is async, so the worker pool itself no longer bounds
  // concurrent traversals).
  return !program_queue_.empty() &&
         (options_.max_inflight_programs == 0 ||
          inflight_programs_ < options_.max_inflight_programs);
}

void Gatekeeper::ClientIngressLoop() {
  // Alternate between the commit lanes and the shared program queue so
  // neither starves the other under sustained load from one kind.
  bool prefer_programs = false;
  MutexLock lk(ingress_mu_);
  while (true) {
    while (!ingress_stopped_ && ready_lanes_.empty() &&
           !ProgramDispatchableLocked()) {
      ingress_cv_.wait(lk.native());
    }
    if (ingress_stopped_) return;

    const bool take_program = ProgramDispatchableLocked() &&
                              (ready_lanes_.empty() || prefer_programs);
    if (take_program) {
      prefer_programs = false;
      ProgramWork work = std::move(program_queue_.front());
      program_queue_.pop_front();
      ++inflight_programs_;  // released by OnProgramSettled
      lk.Unlock();
      stats_.client_programs.fetch_add(1, std::memory_order_relaxed);
      ProgramRequest& req = work.msg->requests[work.index];
      if (client_executor_.program) {
        // Async contract: the executor's completion path sends the reply
        // and calls OnProgramSettled() exactly once.
        client_executor_.program(*this, *work.msg, req);
      } else {
        SendProgramReply(work.msg->reply_to, work.msg->session_id,
                         req.request_id,
                         Status::Internal("no client executor installed"));
        OnProgramSettled();
      }
      lk.Lock();
      continue;
    }
    prefer_programs = true;

    const std::uint64_t sid = ready_lanes_.front();
    ready_lanes_.pop_front();
    SessionLane& lane = lanes_[sid];
    std::vector<BusMessage> batch;
    const std::size_t max_batch =
        std::max<std::size_t>(1, options_.client_batch);
    while (!lane.q.empty() && batch.size() < max_batch) {
      batch.push_back(std::move(lane.q.front()));
      lane.q.pop_front();
    }
    lk.Unlock();

    stats_.client_batches.fetch_add(1, std::memory_order_relaxed);
    // One simulated backing-store round trip covers the whole batch: the
    // first unpaid commit sleeps, its batchmates ride along (pipelined
    // submissions overlap their round trips; blocking submitters already
    // paid on their own thread).
    bool batch_delay_due = true;
    for (const BusMessage& msg : batch) {
      DispatchCommitRequest(msg, &batch_delay_due);
    }

    lk.Lock();
    // References into lanes_ survive inserts (unordered_map guarantees
    // pointer stability); only this worker may finish or erase the lane it
    // marked busy.
    if (!lane.q.empty()) {
      ready_lanes_.push_back(sid);  // stays busy: more arrived while away
      ingress_cv_.notify_one();
    } else {
      lanes_.erase(sid);  // empty lanes die so transient ids don't pile up
    }
  }
}

void Gatekeeper::DispatchCommitRequest(const BusMessage& msg,
                                       bool* batch_delay_due) {
  auto req = std::static_pointer_cast<ClientCommitMessage>(msg.payload);
  stats_.client_commits.fetch_add(1, std::memory_order_relaxed);
  const bool pay_delay = *batch_delay_due && !req->delay_paid;
  if (pay_delay) *batch_delay_due = false;

  obs::TraceSpan span;
  const bool sampled =
      options_.trace != nullptr && options_.trace->ShouldSample();
  if (sampled) {
    span.kind = obs::TraceSpan::Kind::kCommit;
    span.id = req->request_id;
    span.begin_ns = NowNanos();
    t_active_commit_span = &span;
  }
  const std::uint64_t start = NowNanos();
  if (client_executor_.commit) {
    // The executor replies through SendCommitReply.
    client_executor_.commit(*this, *req, pay_delay);
  } else {
    SendCommitReply(req->reply_to, req->session_id, req->request_id,
                    Status::Internal("no client executor installed"), {});
  }
  if (commit_latency_ != nullptr) {
    commit_latency_->Record(NowNanos() - start);
  }
  if (sampled) {
    t_active_commit_span = nullptr;
    span.replied_ns = NowNanos();
    options_.trace->Append(span);
  }
}

void Gatekeeper::OnProgramSettled() {
  {
    MutexLock lk(ingress_mu_);
    if (inflight_programs_ > 0) --inflight_programs_;
  }
  ingress_cv_.notify_one();
}

void Gatekeeper::StartTimers() {
  MutexLock lk(timer_mu_);
  if (timers_running_) return;
  timers_running_ = true;
  stop_timers_ = false;
  if (options_.tau_micros > 0) {
    announce_thread_ = std::thread([this] { AnnounceLoop(); });
  }
  if (options_.nop_period_micros > 0) {
    nop_thread_ = std::thread([this] { NopLoop(); });
  }
}

void Gatekeeper::StopTimers() {
  {
    MutexLock lk(timer_mu_);
    if (!timers_running_) return;
    stop_timers_ = true;
    timer_cv_.notify_all();
  }
  if (announce_thread_.joinable()) announce_thread_.join();
  if (nop_thread_.joinable()) nop_thread_.join();
  {
    MutexLock lk(timer_mu_);
    timers_running_ = false;
  }
}

void Gatekeeper::AnnounceLoop() {
  MutexLock lk(timer_mu_);
  while (!stop_timers_) {
    timer_cv_.wait_for(lk.native(),
                       std::chrono::microseconds(options_.tau_micros));
    if (stop_timers_) return;
    lk.Unlock();
    PumpAnnounce();
    lk.Lock();
  }
}

void Gatekeeper::NopLoop() {
  MutexLock lk(timer_mu_);
  while (!stop_timers_) {
    timer_cv_.wait_for(
        lk.native(), std::chrono::microseconds(
                         options_.nop_period_micros *
                         nop_backoff_.load(std::memory_order_relaxed)));
    if (stop_timers_) return;
    lk.Unlock();
    PumpNop();
    UpdateNopBackoff();
    lk.Lock();
  }
}

void Gatekeeper::UpdateNopBackoff() {
  // Adaptive NOP emission (ROADMAP backpressure item): when a destination
  // shard's inbox is over high water, double the emission period -- i.e.
  // skip rounds -- until the slowest shard drains; halve it back once
  // everyone is comfortably below. NOPs are still sent to EVERY shard at
  // the reduced rate: a NOP carries a freshly-merged vector clock, and
  // withholding them entirely leaves stale queue heads that are pairwise
  // concurrent, forcing every ordering decision through the oracle -- the
  // slowdown then outruns the drain and the deployment livelocks
  // (docs/client_api.md#backpressure).
  if (options_.nop_high_water == 0) return;
  // Staleness contract: for in-process shards QueueDepth is live; for a
  // shard in another process it is the depth from that process's last
  // MetricsReport (MessageBus::NoteRemoteDepth), refreshed by the
  // deployment's metrics poll -- so remote backpressure reacts at poll
  // granularity, and reads 0 before the first report arrives. Both lags
  // are safe here: the worst case is NOPs staying at full rate a little
  // longer (or backing off a little longer) than a live depth would
  // dictate, and the halving path re-probes every round.
  std::size_t max_depth = 0;
  for (EndpointId shard_ep : options_.shard_endpoints) {
    max_depth = std::max(max_depth, options_.bus->QueueDepth(shard_ep));
  }
  std::uint64_t backoff = nop_backoff_.load(std::memory_order_relaxed);
  if (max_depth > options_.nop_high_water) {
    backoff = std::min<std::uint64_t>(backoff * 2, kMaxNopBackoff);
    stats_.nops_skipped.fetch_add(backoff - 1, std::memory_order_relaxed);
  } else if (max_depth < options_.nop_high_water / 2 && backoff > 1) {
    backoff /= 2;
  }
  nop_backoff_.store(backoff, std::memory_order_relaxed);
}

RefinableTimestamp Gatekeeper::IssueTimestamp(bool want_slot,
                                              std::uint64_t* slot) {
  MutexLock clk(clock_mu_);
  const std::uint64_t seq = clock_.Tick(options_.id);
  RefinableTimestamp ts(clock_, options_.id, seq);
  if (want_slot) {
    MutexLock olk(out_mu_);
    *slot = next_slot_to_alloc_++;
  }
  return ts;
}

void Gatekeeper::ReleaseSlot(std::uint64_t slot,
                             std::function<void()> send_fn) {
  MutexLock lk(out_mu_);
  pending_releases_[slot] = std::move(send_fn);
  // Drain the contiguous prefix in slot order. Sends run under out_mu_, so
  // messages enter the per-shard channels in timestamp order -- the FIFO
  // property the shard queues rely on (paper §4.2).
  while (!pending_releases_.empty() &&
         pending_releases_.begin()->first == next_slot_to_release_) {
    auto fn = std::move(pending_releases_.begin()->second);
    pending_releases_.erase(pending_releases_.begin());
    ++next_slot_to_release_;
    if (fn) fn();
  }
}

void Gatekeeper::SendNop(const RefinableTimestamp& ts) {
  for (EndpointId shard_ep : options_.shard_endpoints) {
    auto payload = std::make_shared<NopMessage>();
    payload->ts = ts;
    const Status st =
        options_.bus->Send(endpoint_, shard_ep, kMsgNop, std::move(payload));
    if (!st.ok()) {
      // A down shard: harmless (the next NOP after recovery re-primes the
      // queue head), but counted so outages are visible in metrics.
      stats_.nop_send_failures.fetch_add(1, std::memory_order_relaxed);
    }
  }
  stats_.nops_sent.fetch_add(1, std::memory_order_relaxed);
}

void Gatekeeper::PumpNop() {
  std::uint64_t slot = 0;
  const RefinableTimestamp ts = IssueTimestamp(true, &slot);
  ReleaseSlot(slot, [this, ts] { SendNop(ts); });
}

void Gatekeeper::PumpAnnounce() {
  VectorClock snapshot = SnapshotClock();
  for (EndpointId peer : options_.peer_endpoints) {
    auto payload = std::make_shared<AnnounceMessage>();
    payload->clock = snapshot;
    payload->from = options_.id;
    options_.bus->Send(endpoint_, peer, kMsgAnnounce, std::move(payload));
    stats_.announces_sent.fetch_add(1, std::memory_order_relaxed);
  }
}

void Gatekeeper::OnAnnounce(const VectorClock& peer_clock) {
  MutexLock lk(clock_mu_);
  clock_.Merge(peer_clock);
  stats_.announces_received.fetch_add(1, std::memory_order_relaxed);
}

VectorClock Gatekeeper::SnapshotClock() {
  MutexLock lk(clock_mu_);
  return clock_;
}

void Gatekeeper::AdvanceEpochLocked(std::uint32_t epoch) {
  clock_.AdvanceEpoch(epoch);
}

ApplyOutcome ApplyCommitToStore(
    KvTransaction* kvtx, const RefinableTimestamp& ts,
    const std::vector<GraphOp>& ops,
    const std::unordered_map<NodeId, ShardId>& placements) {
  ApplyOutcome out;

  // Apply the write batch to the backing store through the OCC
  // transaction. Vertices are opaque blobs; each touched vertex is
  // deserialized once, mutated in memory, and written back.
  std::unordered_map<NodeId, Node> touched;
  auto load_node = [&](NodeId id) -> Result<Node*> {
    auto it = touched.find(id);
    if (it != touched.end()) return &it->second;
    auto blob = kvtx->Get(kv_keys::VertexData(id));
    if (!blob.ok()) return blob.status();
    auto node = GraphStore::DeserializeNode(*blob);
    if (!node.ok()) return node.status();
    auto [nit, _] = touched.emplace(id, std::move(node).value());
    return &nit->second;
  };

  // Per-vertex last-update check (paper §4.2): the new timestamp must be
  // strictly after the timestamp of the vertex's last committed write.
  std::unordered_set<NodeId> checked;
  auto check_last_update = [&](NodeId id) -> Status {
    if (!checked.insert(id).second) return Status::Ok();
    auto last_blob = kvtx->Get(kv_keys::VertexLastUpdate(id));
    if (!last_blob.ok()) return Status::Ok();  // new vertex
    RefinableTimestamp last;
    WEAVER_RETURN_IF_ERROR(ParseTimestamp(*last_blob, &last));
    if (last.Compare(ts) != ClockOrder::kBefore) {
      out.retry_timestamp = true;
      out.conflict_clock = last.clock;
      return Status::Aborted("last-update timestamp not before tx ts");
    }
    return Status::Ok();
  };

  std::unordered_set<NodeId> created;
  for (const GraphOp& op : ops) {
    if (op.type == GraphOpType::kCreateNode) {
      auto existing = kvtx->Get(kv_keys::VertexData(op.node));
      if (existing.ok()) {
        out.status = Status::AlreadyExists("node " + std::to_string(op.node));
        return out;
      }
      Node fresh;
      fresh.id = op.node;
      fresh.created = ts;
      fresh.last_update = ts;
      touched.emplace(op.node, std::move(fresh));
      created.insert(op.node);
      continue;
    }
    Status st = check_last_update(op.node);
    if (!st.ok()) {
      out.status = st;
      return out;
    }
    auto node = load_node(op.node);
    if (!node.ok()) {
      out.status = node.status();
      return out;
    }
    st = ApplyGraphOpToNode(*node, op, ts);
    if (!st.ok()) {
      out.status = st;
      return out;
    }
  }

  // Write back blobs, last-update stamps, and shard placements.
  const std::string ts_blob = SerializeTimestamp(ts);
  for (auto& [id, node] : touched) {
    kvtx->Put(kv_keys::VertexData(id), GraphStore::SerializeNode(node));
    kvtx->Put(kv_keys::VertexLastUpdate(id), ts_blob);
    if (created.count(id)) {
      auto pit = placements.find(id);
      const ShardId shard = pit == placements.end() ? 0 : pit->second;
      kvtx->Put(kv_keys::VertexShardMap(id), std::to_string(shard));
    }
  }

  out.status = kvtx->Commit();
  if (!out.status.ok()) out.kv_conflict = true;
  return out;
}

Status Gatekeeper::CommitTransaction(
    KvTransaction* kvtx, const std::vector<GraphOp>& ops,
    const std::unordered_map<NodeId, ShardId>& placements,
    RefinableTimestamp* committed_ts) {
  return CommitTransaction(
      [&](const RefinableTimestamp& ts) {
        return ApplyCommitToStore(kvtx, ts, ops, placements);
      },
      ops, placements, committed_ts);
}

Status Gatekeeper::CommitTransaction(
    const CommitApplier& apply, const std::vector<GraphOp>& ops,
    const std::unordered_map<NodeId, ShardId>& placements,
    RefinableTimestamp* committed_ts) {
  const std::uint64_t busy_start = NowNanos();
  struct BusyGuard {
    Stats* stats;
    std::uint64_t start;
    ~BusyGuard() {
      stats->busy_ns.fetch_add(NowNanos() - start,
                               std::memory_order_relaxed);
    }
  } busy_guard{&stats_, busy_start};
  // A last-update conflict (paper §4.2) merges the conflicting clock and
  // retries with a fresh, strictly later timestamp. The paper pushes this
  // retry to the client; doing one bounded round here first saves the
  // round trip without changing semantics.
  constexpr int kMaxTimestampRetries = 4;
  Status last_status = Status::Aborted("timestamp retries exhausted");
  for (int attempt = 0; attempt < kMaxTimestampRetries; ++attempt) {
    std::uint64_t slot = 0;
    const RefinableTimestamp ts = IssueTimestamp(true, &slot);
    *committed_ts = ts;
    if (t_active_commit_span != nullptr) {
      // A retry overwrites the stamp: the span records the ordering that
      // actually committed.
      t_active_commit_span->ordered_ns = NowNanos();
    }

    // Any early return must still release the outbound slot (with no
    // sends), or the sequencer would stall every later transaction.
    auto release_empty = [&] { ReleaseSlot(slot, nullptr); };

    const ApplyOutcome outcome = apply(ts);
    if (!outcome.status.ok()) {
      release_empty();
      if (outcome.retry_timestamp) {
        // Last-update conflict: merge the conflicting clock so the next
        // issued timestamp is strictly later, then retry.
        {
          MutexLock lk(clock_mu_);
          clock_.Merge(outcome.conflict_clock);
        }
        stats_.txs_aborted_last_update.fetch_add(1,
                                                 std::memory_order_relaxed);
        last_status = outcome.status;
        continue;
      }
      if (outcome.kv_conflict) {
        stats_.txs_aborted_kv.fetch_add(1, std::memory_order_relaxed);
      }
      return outcome.status;
    }
    if (t_active_commit_span != nullptr) {
      t_active_commit_span->applied_ns = NowNanos();
    }

    // Committed on the backing store: forward per-shard slices. Every
    // shard receives a message for this timestamp (an empty slice advances
    // the queue head, like a NOP), released in timestamp order.
    const std::size_t num_shards = options_.shard_endpoints.size();
    auto slices = std::make_shared<std::vector<std::vector<GraphOp>>>();
    slices->resize(num_shards);
    for (const GraphOp& op : ops) {
      auto pit = placements.find(op.node);
      const ShardId shard = pit == placements.end() ? 0 : pit->second;
      if (shard < num_shards) (*slices)[shard].push_back(op);
    }
    ReleaseSlot(slot, [this, ts, slices] {
      for (std::size_t s = 0; s < options_.shard_endpoints.size(); ++s) {
        auto payload = std::make_shared<TxMessage>();
        payload->ts = ts;
        payload->ops = std::move((*slices)[s]);
        const Status st = options_.bus->Send(
            endpoint_, options_.shard_endpoints[s], kMsgTx,
            std::move(payload));
        if (!st.ok()) {
          // The shard endpoint is down. The commit is already durable in
          // the backing store (kvtx->Commit above), so nothing
          // acknowledged is lost: recovery replays this write from the
          // store. Count the drop -- it is the retry/replay work a chaos
          // run must see in the metrics.
          stats_.slice_send_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    stats_.txs_committed.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  return last_status;
}

RefinableTimestamp Gatekeeper::BeginProgram(const VectorClock* fence) {
  const std::uint64_t busy_start = NowNanos();
  if (fence != nullptr && fence->width() > 0) {
    // Read-your-writes fence: after the merge, the issued timestamp
    // dominates the fenced commit's clock component-wise (plus this
    // gatekeeper's tick), so it happens-after the commit and the shard
    // delay rule guarantees the commit executes before the program reads.
    MutexLock lk(clock_mu_);
    clock_.Merge(*fence);
  }
  std::uint64_t unused = 0;
  const RefinableTimestamp ts = IssueTimestamp(false, &unused);
  {
    MutexLock lk(programs_mu_);
    active_programs_.emplace(ts.event_id(), ts);
  }
  stats_.programs_issued.fetch_add(1, std::memory_order_relaxed);
  stats_.busy_ns.fetch_add(NowNanos() - busy_start,
                           std::memory_order_relaxed);
  return ts;
}

void Gatekeeper::EndProgram(const RefinableTimestamp& ts) {
  MutexLock lk(programs_mu_);
  active_programs_.erase(ts.event_id());
}

RefinableTimestamp Gatekeeper::OldestActive() {
  VectorClock snapshot = SnapshotClock();
  MutexLock lk(programs_mu_);
  if (active_programs_.empty()) {
    return RefinableTimestamp(snapshot, options_.id,
                              snapshot.Component(options_.id));
  }
  // Pointwise minimum over active program clocks: nothing a live program
  // can still read precedes this synthetic watermark.
  std::vector<std::uint64_t> mins = snapshot.counters();
  std::uint32_t epoch = snapshot.epoch();
  for (const auto& [_, pts] : active_programs_) {
    epoch = std::min(epoch, pts.clock.epoch());
    for (std::size_t i = 0; i < mins.size() && i < pts.clock.width(); ++i) {
      mins[i] = std::min(mins[i], pts.clock.Component(i));
    }
  }
  VectorClock wm(epoch, std::move(mins));
  return RefinableTimestamp(wm, options_.id, wm.Component(options_.id));
}

}  // namespace weaver
