#include "order/resolver.h"

#include <cassert>
#include <unordered_set>

namespace weaver {

OrderResolver::OrderResolver(TimelineOracle* oracle) {
  OracleClient::Options options;
  options.local = oracle;
  owned_client_ = std::make_unique<OracleClient>(options);
  client_ = owned_client_.get();
}

bool OrderResolver::CacheLookup(const Key& key, ClockOrder* out) {
  MutexLock lk(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return false;
  stats_.cache_hits++;
  *out = it->second;
  return true;
}

void OrderResolver::CacheStore(const RefinableTimestamp& a,
                               const RefinableTimestamp& b,
                               ClockOrder decided) {
  const Key key{a.event_id(), b.event_id()};
  MutexLock lk(mu_);
  cache_[key] = decided;
  cache_[{key.second, key.first}] = FlipOrder(decided);
  cached_clocks_.try_emplace(a.event_id(), a.clock);
  cached_clocks_.try_emplace(b.event_id(), b.clock);
}

ClockOrder OrderResolver::Resolve(const RefinableTimestamp& a,
                                  const RefinableTimestamp& b,
                                  OrderPreference prefer) {
  auto decided = TryResolve(a, b, prefer);
  // Local-mode clients never fail; see the header contract.
  assert(decided.ok());
  if (!decided.ok()) {
    return prefer == OrderPreference::kPreferFirst ? ClockOrder::kBefore
                                                   : ClockOrder::kAfter;
  }
  return *decided;
}

Result<ClockOrder> OrderResolver::TryResolve(const RefinableTimestamp& a,
                                             const RefinableTimestamp& b,
                                             OrderPreference prefer) {
  const ClockOrder by_clock = a.Compare(b);
  if (by_clock != ClockOrder::kConcurrent) {
    stats_.vclock_fast_path++;
    return by_clock;
  }
  ClockOrder cached = ClockOrder::kConcurrent;
  if (CacheLookup(Key{a.event_id(), b.event_id()}, &cached)) return cached;
  stats_.oracle_requests++;
  auto decided = client_->OrderPair(a, b, prefer);
  if (!decided.ok()) {
    stats_.oracle_failures++;
    return decided.status();
  }
  CacheStore(a, b, *decided);
  return *decided;
}

Result<std::vector<ClockOrder>> OrderResolver::ResolveBatch(
    const std::vector<std::pair<RefinableTimestamp, RefinableTimestamp>>&
        pairs,
    OrderPreference prefer) {
  std::vector<ClockOrder> out(pairs.size(), ClockOrder::kConcurrent);
  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto& [a, b] = pairs[i];
    const ClockOrder by_clock = a.Compare(b);
    if (by_clock != ClockOrder::kConcurrent) {
      stats_.vclock_fast_path++;
      out[i] = by_clock;
      continue;
    }
    if (CacheLookup(Key{a.event_id(), b.event_id()}, &out[i])) continue;
    misses.push_back(i);
  }
  if (misses.empty()) return out;

  std::vector<std::pair<RefinableTimestamp, RefinableTimestamp>> ask;
  ask.reserve(misses.size());
  for (const std::size_t i : misses) ask.push_back(pairs[i]);
  stats_.oracle_requests++;
  auto decided = client_->OrderPairs(ask, prefer);
  if (!decided.ok()) {
    stats_.oracle_failures++;
    return decided.status();
  }
  for (std::size_t j = 0; j < misses.size(); ++j) {
    const std::size_t i = misses[j];
    out[i] = (*decided)[j];
    CacheStore(pairs[i].first, pairs[i].second, out[i]);
  }
  return out;
}

ClockOrder OrderResolver::Peek(const RefinableTimestamp& a,
                               const RefinableTimestamp& b) {
  const ClockOrder by_clock = a.Compare(b);
  if (by_clock != ClockOrder::kConcurrent) return by_clock;
  {
    MutexLock lk(mu_);
    auto it = cache_.find(Key{a.event_id(), b.event_id()});
    if (it != cache_.end()) return it->second;
  }
  return client_->QueryOrder(a, b);
}

void OrderResolver::TrimBefore(const VectorClock& watermark) {
  MutexLock lk(mu_);
  auto is_dead = [&](EventId id) {
    auto it = cached_clocks_.find(id);
    return it != cached_clocks_.end() &&
           it->second.Compare(watermark) == ClockOrder::kBefore;
  };
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (is_dead(it->first.first) && is_dead(it->first.second)) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
  // Drop clock snapshots that no surviving cache entry references (a dead
  // event may still appear in a pair with a live one; keep its clock so a
  // later trim can collect the pair).
  std::unordered_set<EventId> referenced;
  for (const auto& [key, _] : cache_) {
    referenced.insert(key.first);
    referenced.insert(key.second);
  }
  for (auto it = cached_clocks_.begin(); it != cached_clocks_.end();) {
    if (!referenced.count(it->first)) {
      it = cached_clocks_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t OrderResolver::CacheSize() const {
  MutexLock lk(mu_);
  return cache_.size();
}

}  // namespace weaver
