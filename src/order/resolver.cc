#include "order/resolver.h"

#include <unordered_set>

namespace weaver {

ClockOrder OrderResolver::Resolve(const RefinableTimestamp& a,
                                  const RefinableTimestamp& b,
                                  OrderPreference prefer) {
  const ClockOrder by_clock = a.Compare(b);
  if (by_clock != ClockOrder::kConcurrent) {
    stats_.vclock_fast_path++;
    return by_clock;
  }
  const Key key{a.event_id(), b.event_id()};
  {
    MutexLock lk(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      stats_.cache_hits++;
      return it->second;
    }
  }
  const ClockOrder decided = oracle_->OrderPair(a, b, prefer);
  {
    MutexLock lk(mu_);
    stats_.oracle_requests++;
    cache_[key] = decided;
    cache_[{key.second, key.first}] = FlipOrder(decided);
    cached_clocks_.try_emplace(a.event_id(), a.clock);
    cached_clocks_.try_emplace(b.event_id(), b.clock);
  }
  return decided;
}

ClockOrder OrderResolver::Peek(const RefinableTimestamp& a,
                               const RefinableTimestamp& b) {
  const ClockOrder by_clock = a.Compare(b);
  if (by_clock != ClockOrder::kConcurrent) return by_clock;
  {
    MutexLock lk(mu_);
    auto it = cache_.find(Key{a.event_id(), b.event_id()});
    if (it != cache_.end()) return it->second;
  }
  return oracle_->QueryOrder(a, b);
}

void OrderResolver::TrimBefore(const VectorClock& watermark) {
  MutexLock lk(mu_);
  auto is_dead = [&](EventId id) {
    auto it = cached_clocks_.find(id);
    return it != cached_clocks_.end() &&
           it->second.Compare(watermark) == ClockOrder::kBefore;
  };
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (is_dead(it->first.first) && is_dead(it->first.second)) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
  // Drop clock snapshots that no surviving cache entry references (a dead
  // event may still appear in a pair with a live one; keep its clock so a
  // later trim can collect the pair).
  std::unordered_set<EventId> referenced;
  for (const auto& [key, _] : cache_) {
    referenced.insert(key.first);
    referenced.insert(key.second);
  }
  for (auto it = cached_clocks_.begin(); it != cached_clocks_.end();) {
    if (!referenced.count(it->first)) {
      it = cached_clocks_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t OrderResolver::CacheSize() const {
  MutexLock lk(mu_);
  return cache_.size();
}

}  // namespace weaver
