// Gatekeeper: one server of the timeline coordinator bank (paper §3.3,
// §4.2).
//
// Responsibilities:
//   * Assign a refinable timestamp to every transaction and node program
//     by ticking its vector clock -- no cross-server coordination.
//   * Announce its clock to peer gatekeepers every tau microseconds, which
//     establishes the happens-before partial order that makes the majority
//     of timestamps directly comparable (Fig 5).
//   * Execute read-write transactions against the backing store, using the
//     per-vertex last-update timestamp to guarantee that timestamp order
//     matches backing-store commit order on conflicting vertices; if the
//     check fails, abort so the client retries with a fresh (higher)
//     timestamp (paper §4.2).
//   * Forward committed transactions to the shard servers over FIFO
//     channels, in timestamp order (an outbound sequencer releases sends
//     in local-sequence order even though commits finish out of order).
//   * Emit periodic NOP transactions so shard queue heads always advance
//     during light load (paper §4.2).
//   * Track in-flight node programs so the deployment can compute the GC
//     watermark (oldest ongoing program, paper §4.5).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "core/graph_op.h"
#include "kvstore/kvstore.h"
#include "net/bus.h"
#include "order/timestamp.h"
#include "vclock/vclock.h"

namespace weaver {

class Gatekeeper {
 public:
  struct Options {
    GatekeeperId id = 0;
    std::size_t num_gatekeepers = 1;
    MessageBus* bus = nullptr;
    KvStore* kv = nullptr;
    std::vector<EndpointId> shard_endpoints;
    std::vector<EndpointId> peer_endpoints;  // other gatekeepers
    /// Clock synchronization period tau (paper §3.5). 0 disables the timer
    /// (tests pump manually with PumpAnnounce).
    std::uint64_t tau_micros = 1000;
    /// NOP emission period (paper default 10us; relaxed here). 0 disables.
    std::uint64_t nop_period_micros = 200;
    /// Epoch this gatekeeper's clock starts in. A rebooted deployment that
    /// recovered durable state boots its gatekeepers one epoch past the
    /// persisted one (cluster manager), so every fresh timestamp orders
    /// after every timestamp stamped onto recovered data (paper §4.3's
    /// monotonicity argument, applied across process restarts).
    std::uint32_t initial_epoch = 0;
  };

  struct Stats {
    std::atomic<std::uint64_t> txs_committed{0};
    std::atomic<std::uint64_t> txs_aborted_kv{0};
    std::atomic<std::uint64_t> txs_aborted_last_update{0};
    std::atomic<std::uint64_t> announces_sent{0};
    std::atomic<std::uint64_t> announces_received{0};
    std::atomic<std::uint64_t> nops_sent{0};
    std::atomic<std::uint64_t> programs_issued{0};
    /// Nanoseconds this gatekeeper spent doing per-operation work
    /// (timestamping, backing-store commits, announce/NOP emission). Used
    /// by the Fig 12/13 scaling benches' service-time model.
    std::atomic<std::uint64_t> busy_ns{0};
  };

  explicit Gatekeeper(Options options);
  ~Gatekeeper();
  Gatekeeper(const Gatekeeper&) = delete;
  Gatekeeper& operator=(const Gatekeeper&) = delete;

  GatekeeperId id() const { return options_.id; }
  EndpointId endpoint() const { return endpoint_; }

  /// Installs the peer gatekeeper endpoints (deployment wiring happens
  /// after all gatekeepers are constructed). Call before StartTimers().
  void SetPeerEndpoints(std::vector<EndpointId> peers) {
    options_.peer_endpoints = std::move(peers);
  }

  /// Starts the announce/NOP timer threads (no-op for zero periods).
  void StartTimers();
  /// Stops timers; safe to call repeatedly.
  void StopTimers();

  /// Commits a client transaction: assigns a timestamp, applies `ops` to
  /// the backing store through `kvtx` (validating per-vertex last-update
  /// timestamps), commits, and forwards per-shard slices over the bus.
  /// `placements` maps every vertex touched by `ops` to its shard.
  /// On kAborted the client should retry the whole transaction.
  Status CommitTransaction(
      KvTransaction* kvtx, const std::vector<GraphOp>& ops,
      const std::unordered_map<NodeId, ShardId>& placements,
      RefinableTimestamp* committed_ts);

  /// Issues a timestamp for a node program and registers it as in-flight.
  RefinableTimestamp BeginProgram();
  /// Marks a program complete (removes it from the in-flight set).
  void EndProgram(const RefinableTimestamp& ts);
  /// Oldest in-flight program timestamp, or the current clock snapshot if
  /// none (GC watermark input, paper §4.5).
  RefinableTimestamp OldestActive();

  /// Manually sends one announce round (deterministic tests, benches).
  void PumpAnnounce();
  /// Manually emits one NOP to all shards.
  void PumpNop();

  /// Bus delivery entry point for peer announces.
  void OnAnnounce(const VectorClock& peer_clock);

  /// Epoch barrier support (paper §4.3): the cluster manager holds all
  /// gatekeepers' clock locks and advances them in unison.
  std::mutex& clock_mutex() { return clock_mu_; }
  /// Requires clock_mutex() held by the caller.
  void AdvanceEpochLocked(std::uint32_t epoch);

  VectorClock SnapshotClock();
  const Stats& stats() const { return stats_; }

  /// Charges coordinator-side work to this gatekeeper's busy time. In the
  /// paper the gatekeeper forwards node programs to shards and routes the
  /// responses; this deployment runs that coordination on the client
  /// thread (core/weaver.cc RunProgram) and attributes the CPU cost here
  /// so the Fig 12/13 service-time model sees it on the right server.
  void AddBusyNs(std::uint64_t ns) {
    stats_.busy_ns.fetch_add(ns, std::memory_order_relaxed);
  }

 private:
  /// Ticks the clock and returns the new timestamp plus a dense outbound
  /// slot id (transactions/NOPs only; programs pass want_slot = false).
  RefinableTimestamp IssueTimestamp(bool want_slot, std::uint64_t* slot);

  /// Hands a released slot's sends to the bus in slot order.
  void ReleaseSlot(std::uint64_t slot, std::function<void()> send_fn);

  void AnnounceLoop();
  void NopLoop();
  void SendNop(const RefinableTimestamp& ts);

  Options options_;
  EndpointId endpoint_ = 0;

  std::mutex clock_mu_;
  VectorClock clock_;

  // Outbound sequencer: slots release to the bus in allocation order.
  std::mutex out_mu_;
  std::uint64_t next_slot_to_alloc_ = 0;
  std::uint64_t next_slot_to_release_ = 0;
  std::map<std::uint64_t, std::function<void()>> pending_releases_;

  // In-flight node programs, keyed by event id.
  std::mutex programs_mu_;
  std::unordered_map<EventId, RefinableTimestamp> active_programs_;

  std::thread announce_thread_;
  std::thread nop_thread_;
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  bool timers_running_ = false;
  bool stop_timers_ = false;

  Stats stats_;
};

}  // namespace weaver
