// Gatekeeper: one server of the timeline coordinator bank (paper §3.3,
// §4.2).
//
// Responsibilities:
//   * Assign a refinable timestamp to every transaction and node program
//     by ticking its vector clock -- no cross-server coordination.
//   * Announce its clock to peer gatekeepers every tau microseconds, which
//     establishes the happens-before partial order that makes the majority
//     of timestamps directly comparable (Fig 5).
//   * Execute read-write transactions against the backing store, using the
//     per-vertex last-update timestamp to guarantee that timestamp order
//     matches backing-store commit order on conflicting vertices; if the
//     check fails, abort so the client retries with a fresh (higher)
//     timestamp (paper §4.2).
//   * Forward committed transactions to the shard servers over FIFO
//     channels, in timestamp order (an outbound sequencer releases sends
//     in local-sequence order even though commits finish out of order).
//   * Emit periodic NOP transactions so shard queue heads always advance
//     during light load (paper §4.2).
//   * Track in-flight node programs so the deployment can compute the GC
//     watermark (oldest ongoing program, paper §4.5).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/annotations.h"
#include "common/ids.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/graph_op.h"
#include "core/messages.h"
#include "kvstore/kvstore.h"
#include "net/bus.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "order/timestamp.h"
#include "vclock/vclock.h"

namespace weaver {

/// Result of one commit attempt against the backing store
/// (ApplyCommitToStore): either committed, or aborted with enough
/// context for the timestamp-retry loop to act on it from another
/// process (the out-of-parent gatekeeper path ships this over the wire
/// as StoreCommitReply).
struct ApplyOutcome {
  Status status;  // Ok = durable in the store
  /// Last-update conflict (paper §4.2): merge conflict_clock into the
  /// issuing clock and retry with a fresh, strictly later timestamp.
  bool retry_timestamp = false;
  /// kvtx->Commit() lost the OCC race; the client retries the whole
  /// transaction.
  bool kv_conflict = false;
  /// The conflicting vertex's last-update clock (valid when
  /// retry_timestamp).
  VectorClock conflict_clock;
};

/// One commit attempt at timestamp `ts`: applies `ops` through the OCC
/// transaction (per-vertex last-update validation, write-back, shard
/// placements for created vertices) and commits. Pure store-side logic:
/// no clocks, slots, or bus traffic -- the gatekeeper's retry loop (or
/// the parent-side agent serving an out-of-parent gatekeeper) wraps it.
ApplyOutcome ApplyCommitToStore(
    KvTransaction* kvtx, const RefinableTimestamp& ts,
    const std::vector<GraphOp>& ops,
    const std::unordered_map<NodeId, ShardId>& placements);

class Gatekeeper {
 public:
  struct Options {
    GatekeeperId id = 0;
    std::size_t num_gatekeepers = 1;
    MessageBus* bus = nullptr;
    std::vector<EndpointId> shard_endpoints;
    std::vector<EndpointId> peer_endpoints;  // other gatekeepers
    /// Clock synchronization period tau (paper §3.5). 0 disables the timer
    /// (tests pump manually with PumpAnnounce).
    std::uint64_t tau_micros = 1000;
    /// NOP emission period (paper default 10us; relaxed here). 0 disables.
    std::uint64_t nop_period_micros = 200;
    /// Epoch this gatekeeper's clock starts in. A rebooted deployment that
    /// recovered durable state boots its gatekeepers one epoch past the
    /// persisted one (cluster manager), so every fresh timestamp orders
    /// after every timestamp stamped onto recovered data (paper §4.3's
    /// monotonicity argument, applied across process restarts).
    std::uint32_t initial_epoch = 0;
    /// Client-ingress worker pool size. Commit lanes keep per-session
    /// FIFO (one session's commits never run on two workers at once);
    /// program requests run on any free worker. Workers mostly wait on
    /// backing-store round trips and program waves, so the pool is sized
    /// for overlap, not cores.
    std::size_t client_workers = 8;
    /// Max requests drained from one session's lane per worker visit. A
    /// drained batch of pipelined commits shares one simulated
    /// backing-store round trip (the client-side analogue of group
    /// commit).
    std::size_t client_batch = 8;
    /// Per-session ingress lane bound: submissions past this depth fail
    /// fast with ResourceExhausted instead of queueing unboundedly.
    /// 0 disables.
    std::size_t client_lane_capacity = 256;
    /// Max node programs this ingress keeps in flight at once. Program
    /// execution is asynchronous (a worker seeds the start wave and is
    /// immediately free again), so the worker pool no longer bounds
    /// concurrent traversals -- this does. Workers leave the program
    /// queue alone while the limit is reached; OnProgramSettled()
    /// releases a slot. 0 disables.
    std::size_t max_inflight_programs = 64;
    /// NOP backpressure high-water mark: while any destination shard
    /// inbox is deeper than this, the NOP period doubles per round (rounds
    /// are skipped) up to kMaxNopBackoff, and halves back once every
    /// inbox is below half of it. 0 disables the check.
    std::size_t nop_high_water = 0;
    /// Capacity of this gatekeeper's announce endpoint for DEFERRED bus
    /// deliveries (delay-injected links): a gatekeeper that lags behind
    /// the announce stream sheds the excess instead of queueing it
    /// without bound -- a dropped announce is superseded by the next one.
    /// 0 = unbounded (the historical behavior).
    std::size_t announce_capacity = 0;
    /// Optional metrics registry. When set, the gatekeeper exports its
    /// Stats fields, a commit-latency histogram, and backpressure gauges
    /// under "gk<id>." names; the registry must outlive the gatekeeper
    /// (the destructor drops the names).
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional request-trace log. When set (and sampling is on), commit
    /// executions record begin/ordered/applied/replied spans.
    obs::TraceLog* trace = nullptr;
  };

  /// Upper bound on the adaptive NOP period multiplier.
  static constexpr std::uint64_t kMaxNopBackoff = 64;

  struct Stats {
    std::atomic<std::uint64_t> txs_committed{0};
    std::atomic<std::uint64_t> txs_aborted_kv{0};
    std::atomic<std::uint64_t> txs_aborted_last_update{0};
    std::atomic<std::uint64_t> announces_sent{0};
    std::atomic<std::uint64_t> announces_received{0};
    std::atomic<std::uint64_t> nops_sent{0};
    /// NOP rounds skipped by backpressure backoff (a shard inbox was
    /// above high water, so the emission period was multiplied).
    std::atomic<std::uint64_t> nops_skipped{0};
    /// Post-commit slice / NOP sends that failed -- a shard endpoint was
    /// down (detached, crashed process). Not data loss: the commit is
    /// already durable in the backing store and recovery replays the
    /// partition, but every drop here is a retry the cluster performed,
    /// so chaos runs read it as their retry count.
    std::atomic<std::uint64_t> slice_send_failures{0};
    std::atomic<std::uint64_t> nop_send_failures{0};
    std::atomic<std::uint64_t> programs_issued{0};
    /// Client-ingress traffic (session API). client_programs counts
    /// REQUESTS; client_program_msgs counts the bus messages carrying
    /// them (a batched fan-out is many requests in one message).
    std::atomic<std::uint64_t> client_commits{0};
    std::atomic<std::uint64_t> client_programs{0};
    std::atomic<std::uint64_t> client_program_msgs{0};
    std::atomic<std::uint64_t> client_batches{0};
    std::atomic<std::uint64_t> client_rejected{0};  // lane over capacity
    /// Nanoseconds this gatekeeper spent doing per-operation work
    /// (timestamping, backing-store commits, announce/NOP emission). Used
    /// by the Fig 12/13 scaling benches' service-time model.
    std::atomic<std::uint64_t> busy_ns{0};
  };

  explicit Gatekeeper(Options options);
  ~Gatekeeper();
  Gatekeeper(const Gatekeeper&) = delete;
  Gatekeeper& operator=(const Gatekeeper&) = delete;

  GatekeeperId id() const { return options_.id; }
  EndpointId endpoint() const { return endpoint_; }
  /// Where sessions address ClientCommit/ClientProgram messages.
  EndpointId client_endpoint() const { return client_endpoint_; }

  // --- Client ingress (session API) ----------------------------------------
  //
  // Each gatekeeper owns an ingress for ClientRequest messages. Commits
  // are parked in per-session FIFO lanes that a worker pool drains in
  // batches -- one lane is never drained by two workers at once, so a
  // session's commits execute (and take timestamps) in submission order,
  // while different sessions proceed concurrently. Program requests are
  // reads on consistent snapshots and carry no ordering promise, so they
  // go to a shared queue that any free worker serves -- a session
  // pipelining K programs gets up to K of them in flight at once.

  /// How the ingress executes requests. Installed by the deployment
  /// (Weaver), which owns the locator/partitioner state commits need and
  /// the program coordinator programs need. Executors complete requests
  /// by sending reply messages (SendCommitReply / SendProgramReply) to
  /// the endpoint named in the request -- there are no callbacks in the
  /// schemas, so the same path works across a process boundary.
  struct ClientExecutor {
    /// `pay_delay` is true for the first commit of a drained batch whose
    /// submitter has not already paid the simulated backing-store round
    /// trip; the rest of the batch rides the same round trip.
    std::function<void(Gatekeeper&, ClientCommitMessage&, bool pay_delay)>
        commit;
    /// Executes ONE request of a (possibly batched) program message.
    /// Async contract: the completion path must SendProgramReply and call
    /// OnProgramSettled() exactly once.
    std::function<void(Gatekeeper&, const ClientProgramMessage&,
                       ProgramRequest&)>
        program;
  };

  /// Installs the executor. Call before StartClientIngress().
  void SetClientExecutor(ClientExecutor executor) {
    client_executor_ = std::move(executor);
  }
  /// Starts the ingress worker pool (idempotent). Requests arriving before
  /// this queue up in their lanes.
  void StartClientIngress();
  /// Stops the workers and fails every queued request with Unavailable, so
  /// a Pending<T>::Wait() after shutdown returns instead of hanging.
  /// Idempotent; also run by the destructor.
  void StopClientIngress();

  /// Async program completion plumbing: the deployment calls this when a
  /// program dispatched from this ingress settles (success or failure),
  /// releasing its in-flight slot so a waiting worker can seed the next
  /// one.
  void OnProgramSettled();

  /// Sends a ClientCommitReply / ClientProgramReply to a requester's
  /// reply endpoint. Used by the executors and by the ingress itself
  /// (rejection and shutdown paths). A failed send (requester gone) is
  /// dropped -- nobody is waiting anymore.
  void SendCommitReply(EndpointId reply_to, std::uint64_t session_id,
                       std::uint64_t request_id, Status status,
                       const RefinableTimestamp& ts);
  void SendProgramReply(EndpointId reply_to, std::uint64_t session_id,
                        std::uint64_t request_id,
                        Result<ProgramResult> result);

  /// Installs the peer gatekeeper endpoints (deployment wiring happens
  /// after all gatekeepers are constructed). Call before StartTimers().
  void SetPeerEndpoints(std::vector<EndpointId> peers) {
    options_.peer_endpoints = std::move(peers);
  }

  /// Starts the announce/NOP timer threads (no-op for zero periods).
  void StartTimers();
  /// Stops timers; safe to call repeatedly.
  void StopTimers();

  /// Commits a client transaction: assigns a timestamp, applies `ops` to
  /// the backing store through `kvtx` (validating per-vertex last-update
  /// timestamps), commits, and forwards per-shard slices over the bus.
  /// `placements` maps every vertex touched by `ops` to its shard.
  /// On kAborted the client should retry the whole transaction.
  Status CommitTransaction(
      KvTransaction* kvtx, const std::vector<GraphOp>& ops,
      const std::unordered_map<NodeId, ShardId>& placements,
      RefinableTimestamp* committed_ts);

  /// One commit attempt at the timestamp this gatekeeper issued. The
  /// in-process path wraps ApplyCommitToStore; an out-of-parent
  /// gatekeeper ships the attempt to its parent-side agent as a
  /// StoreCommit RPC and decodes the reply into the same shape.
  using CommitApplier = std::function<ApplyOutcome(const RefinableTimestamp&)>;

  /// Commit driver decoupled from the backing store: owns the timestamp
  /// issue + outbound slot, runs `apply` per attempt, merges conflict
  /// clocks and retries bounded times on last-update conflicts, and fans
  /// committed slices out to the shards in slot order. The kvtx overload
  /// above is a thin wrapper.
  Status CommitTransaction(
      const CommitApplier& apply, const std::vector<GraphOp>& ops,
      const std::unordered_map<NodeId, ShardId>& placements,
      RefinableTimestamp* committed_ts);

  /// Issues a timestamp for a node program and registers it as in-flight.
  /// A valid `fence` clock is merged first, so the program's timestamp
  /// happens-after the fenced commit and its snapshot observes it -- the
  /// per-session read-your-writes mode (docs/client_api.md).
  RefinableTimestamp BeginProgram(const VectorClock* fence = nullptr);
  /// Marks a program complete (removes it from the in-flight set).
  void EndProgram(const RefinableTimestamp& ts);
  /// Oldest in-flight program timestamp, or the current clock snapshot if
  /// none (GC watermark input, paper §4.5).
  RefinableTimestamp OldestActive();

  /// Manually sends one announce round (deterministic tests, benches).
  void PumpAnnounce();
  /// Manually emits one NOP to all shards.
  void PumpNop();

  /// Bus delivery entry point for peer announces.
  void OnAnnounce(const VectorClock& peer_clock);

  /// Epoch barrier support (paper §4.3): the cluster manager holds all
  /// gatekeepers' clock locks and advances them in unison.
  Mutex& clock_mutex() RETURN_CAPABILITY(clock_mu_) { return clock_mu_; }
  void AdvanceEpochLocked(std::uint32_t epoch) REQUIRES(clock_mu_);

  VectorClock SnapshotClock();
  const Stats& stats() const { return stats_; }

  /// Current adaptive NOP-period multiplier (1 = configured rate; >1
  /// means backpressure is throttling NOP emission). Surfaced in bench
  /// output.
  std::uint64_t nop_backoff() const {
    return nop_backoff_.load(std::memory_order_relaxed);
  }

  /// Charges coordinator-side work to this gatekeeper's busy time. In the
  /// paper the gatekeeper forwards node programs to shards and routes the
  /// responses; this deployment runs that coordination on the client
  /// thread (core/weaver.cc RunProgram) and attributes the CPU cost here
  /// so the Fig 12/13 service-time model sees it on the right server.
  void AddBusyNs(std::uint64_t ns) {
    stats_.busy_ns.fetch_add(ns, std::memory_order_relaxed);
  }

 private:
  struct SessionLane {
    std::deque<BusMessage> q;
    /// True while the lane is in ready_lanes_ or held by a worker;
    /// guarantees single-worker (FIFO) draining per session.
    bool busy = false;
  };

  /// One dispatchable program request: batched ClientProgram messages
  /// fan out into one entry per request at enqueue, so in-flight
  /// accounting stays exact and a batch's requests can run on several
  /// workers at once.
  struct ProgramWork {
    std::shared_ptr<ClientProgramMessage> msg;
    std::size_t index = 0;  // into msg->requests
  };

  /// Ticks the clock and returns the new timestamp plus a dense outbound
  /// slot id (transactions/NOPs only; programs pass want_slot = false).
  RefinableTimestamp IssueTimestamp(bool want_slot, std::uint64_t* slot);

  /// True when a queued program may be seeded (queue non-empty and an
  /// in-flight slot free). Ingress workers poll this under ingress_mu_.
  bool ProgramDispatchableLocked() const REQUIRES(ingress_mu_);

  void EnqueueClientRequest(const BusMessage& msg);
  void ClientIngressLoop();
  /// Runs one commit request through the executor (ingress worker
  /// thread).
  void DispatchCommitRequest(const BusMessage& msg, bool* batch_delay_due);
  /// Completes a queued commit request with `status` without executing it
  /// (rejection/shutdown paths; replies through SendCommitReply).
  void FailCommitRequest(const BusMessage& msg, Status status);

  /// Hands a released slot's sends to the bus in slot order.
  void ReleaseSlot(std::uint64_t slot, std::function<void()> send_fn);

  void AnnounceLoop();
  void NopLoop();
  void UpdateNopBackoff();
  void SendNop(const RefinableTimestamp& ts);

  /// Registers this gatekeeper's instruments ("gk<id>." names) with
  /// options_.metrics. Constructor-only.
  void ExportMetrics();

  Options options_;
  EndpointId endpoint_ = 0;
  EndpointId client_endpoint_ = 0;

  Mutex clock_mu_;
  VectorClock clock_ GUARDED_BY(clock_mu_);

  // Client ingress: per-session commit lanes + shared program queue +
  // worker pool.
  ClientExecutor client_executor_;
  mutable Mutex ingress_mu_;
  std::condition_variable ingress_cv_;
  std::unordered_map<std::uint64_t, SessionLane> lanes_ GUARDED_BY(ingress_mu_);
  std::deque<std::uint64_t> ready_lanes_ GUARDED_BY(ingress_mu_);
  std::deque<ProgramWork> program_queue_ GUARDED_BY(ingress_mu_);
  std::vector<std::thread> ingress_workers_ GUARDED_BY(ingress_mu_);
  /// Programs seeded but not yet settled.
  std::size_t inflight_programs_ GUARDED_BY(ingress_mu_) = 0;
  bool ingress_stopped_ GUARDED_BY(ingress_mu_) = false;

  // Outbound sequencer: slots release to the bus in allocation order.
  Mutex out_mu_;
  std::uint64_t next_slot_to_alloc_ GUARDED_BY(out_mu_) = 0;
  std::uint64_t next_slot_to_release_ GUARDED_BY(out_mu_) = 0;
  std::map<std::uint64_t, std::function<void()>> pending_releases_
      GUARDED_BY(out_mu_);

  // In-flight node programs, keyed by event id.
  Mutex programs_mu_;
  std::unordered_map<EventId, RefinableTimestamp> active_programs_
      GUARDED_BY(programs_mu_);

  /// Current NOP period multiplier (1 = configured rate; grows while a
  /// shard inbox is over high water). Read by NopLoop, written after each
  /// round; atomic so tests/stats readers can peek.
  std::atomic<std::uint64_t> nop_backoff_{1};

  /// End-to-end commit execution latency (DispatchCommitRequest through
  /// the executor's reply). Owned by options_.metrics; null when metrics
  /// are off.
  obs::LatencyHistogram* commit_latency_ = nullptr;

  /// Timer threads: written only by StartTimers (under timer_mu_, before
  /// the loops run) and joined by StopTimers after the stop handshake, so
  /// the handles themselves need no guard -- the flags below do.
  std::thread announce_thread_;
  std::thread nop_thread_;
  Mutex timer_mu_;
  std::condition_variable timer_cv_;
  bool timers_running_ GUARDED_BY(timer_mu_) = false;
  bool stop_timers_ GUARDED_BY(timer_mu_) = false;

  Stats stats_;
};

}  // namespace weaver
