#include "cluster/handshake.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "core/message_codec.h"
#include "net/wire.h"

namespace weaver {
namespace cluster {

namespace {

std::uint64_t NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Status SendHandshakeFrame(int fd, std::uint32_t tag,
                          const std::string& payload) {
  wire::FrameHeader header;
  header.tag = tag;
  const std::string frame = wire::EncodeFrame(header, payload);
  const char* p = frame.data();
  std::size_t left = frame.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("handshake write: ") +
                                 std::strerror(errno));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

namespace {

/// Blocking read of exactly `n` bytes with a poll() deadline.
Status ReadExact(int fd, char* buf, std::size_t n, std::uint64_t deadline) {
  std::size_t got = 0;
  while (got < n) {
    const std::uint64_t now = NowMicros();
    if (now >= deadline) {
      return Status::DeadlineExceeded("handshake frame timed out");
    }
    pollfd pfd{fd, POLLIN, 0};
    const int timeout_ms = static_cast<int>((deadline - now + 999) / 1000);
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("handshake poll: ") +
                                 std::strerror(errno));
    }
    if (rc == 0) {
      return Status::DeadlineExceeded("handshake frame timed out");
    }
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("handshake read: ") +
                                 std::strerror(errno));
    }
    if (r == 0) {
      return Status::Unavailable("peer closed mid-handshake");
    }
    got += static_cast<std::size_t>(r);
  }
  return Status::Ok();
}

std::uint32_t LoadU32Le(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

}  // namespace

Status ReadHandshakeFrame(int fd, std::uint32_t* tag, std::string* payload,
                          std::uint64_t timeout_micros) {
  // Read EXACTLY one frame -- header, then payload_size bytes -- so back-
  // to-back frames (JoinAck immediately followed by RoleAssign in one TCP
  // segment) leave the second frame's bytes in the socket for the next
  // call. A bulk-read-into-parser loop here would swallow and discard
  // them.
  const std::uint64_t deadline = NowMicros() + timeout_micros;
  char header_buf[wire::kHeaderSize];
  WEAVER_RETURN_IF_ERROR(
      ReadExact(fd, header_buf, wire::kHeaderSize, deadline));
  if (LoadU32Le(header_buf) != wire::kFrameMagic) {
    return Status::InvalidArgument("handshake frame: bad magic");
  }
  // payload_size sits at a fixed offset (wire.h field order); validate it
  // before trusting it as a read length.
  constexpr std::size_t kLenOffset =
      /*magic*/ 4 + /*version*/ 1 + /*tag*/ 4 + /*src*/ 4 + /*dst*/ 4 +
      /*seq*/ 8;
  const std::uint32_t payload_size = LoadU32Le(header_buf + kLenOffset);
  if (payload_size > wire::kMaxFramePayload) {
    return Status::InvalidArgument("handshake frame: oversized payload");
  }
  std::string body(payload_size, '\0');
  if (payload_size > 0) {
    WEAVER_RETURN_IF_ERROR(
        ReadExact(fd, body.data(), payload_size, deadline));
  }
  // Run the assembled bytes through the shared parser so version and CRC
  // checks stay in one place.
  wire::FrameParser parser;
  parser.Feed(header_buf, wire::kHeaderSize);
  if (payload_size > 0) parser.Feed(body.data(), payload_size);
  wire::FrameHeader header;
  bool ready = false;
  WEAVER_RETURN_IF_ERROR(parser.Next(&header, payload, &ready));
  if (!ready) {
    return Status::Internal("handshake frame: parser rejected full frame");
  }
  *tag = header.tag;
  return Status::Ok();
}

namespace {

template <typename M>
Status SendHandshakeMessage(int fd, std::uint32_t tag, const M& m) {
  wire::Writer w;
  Encode(m, &w);
  return SendHandshakeFrame(fd, tag, w.str());
}

template <typename M>
Status ReadHandshakeMessage(int fd, std::uint32_t want_tag, M* m,
                            std::uint64_t timeout_micros) {
  std::uint32_t tag = 0;
  std::string payload;
  WEAVER_RETURN_IF_ERROR(
      ReadHandshakeFrame(fd, &tag, &payload, timeout_micros));
  if (tag != want_tag) {
    return Status::InvalidArgument(
        "unexpected handshake frame: got tag " + std::to_string(tag) +
        ", want " + std::to_string(want_tag));
  }
  wire::Reader r(payload);
  return Decode(&r, m);
}

}  // namespace

Status SendJoinRequest(int fd, const JoinRequestMessage& m) {
  return SendHandshakeMessage(fd, kMsgJoinRequest, m);
}

Status SendJoinAck(int fd, const JoinAckMessage& m) {
  return SendHandshakeMessage(fd, kMsgJoinAck, m);
}

Status SendRoleAssign(int fd, const RoleAssignMessage& m) {
  return SendHandshakeMessage(fd, kMsgRoleAssign, m);
}

Result<JoinOutcome> JoinCluster(std::uint16_t port,
                                const JoinRequestMessage& request,
                                std::uint64_t timeout_micros) {
  // Connect by hand (not via SocketTransport::ConnectLoopback): the
  // handshake needs the raw fd before any transport owns it -- a
  // transport's Stop()/destructor would shutdown() the socket.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") +
                               std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st =
        Status::Unavailable(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  Status st = SendJoinRequest(fd, request);
  JoinAckMessage ack;
  if (st.ok()) {
    st = ReadHandshakeMessage(fd, kMsgJoinAck, &ack, timeout_micros);
  }
  if (st.ok() && !ack.status.ok()) st = ack.status;
  JoinOutcome out;
  if (st.ok()) {
    st = ReadHandshakeMessage(fd, kMsgRoleAssign, &out.assignment,
                              timeout_micros);
  }
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  out.fd = fd;
  return out;
}

const char* RoleName(NodeRole role) {
  switch (role) {
    case NodeRole::kShard:
      return "shard";
    case NodeRole::kOracle:
      return "oracle";
    case NodeRole::kGatekeeper:
      return "gatekeeper";
    case NodeRole::kSpare:
      return "spare";
  }
  return "unknown";
}

Result<NodeRole> ParseRole(const std::string& name) {
  if (name == "shard") return NodeRole::kShard;
  if (name == "oracle") return NodeRole::kOracle;
  if (name == "gatekeeper") return NodeRole::kGatekeeper;
  if (name == "spare") return NodeRole::kSpare;
  return Status::InvalidArgument("unknown role: " + name);
}

}  // namespace cluster
}  // namespace weaver
