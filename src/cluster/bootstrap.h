// Cluster bootstrap: the coordinator-side TCP listener that admits
// standalone weaver-serverd processes into a deployment, plus the
// fork+exec spawner that launches them
// (docs/transport.md#cluster-bootstrap).
//
// The coordinator opens slots -- (role, shard id) pairs it wants filled,
// each carrying the RoleAssign configuration the joiner will receive --
// and then accepts joins. Every inbound connection runs the versioned
// handshake (cluster/handshake.h) against the slot registry:
//
//   * codec-version mismatch        -> refused, InvalidArgument
//   * wrong join token              -> refused, Aborted
//   * stale expected epoch          -> refused (fenced), FailedPrecondition
//   * slot already live (dup shard) -> refused, AlreadyExists
//   * no such open slot             -> refused, NotFound
//
// A refused or half-finished joiner is closed and the accept loop
// continues; no listener state outlives the connection (a mid-handshake
// disconnect leaves the slot open for the next attempt). An accepted
// joiner's socket is returned raw, ready for SocketTransport::Adopt on
// the bus -- the listener never owns live-cluster traffic.
//
// Unlike the fork-based SpawnShardServers path (coord/serverd.h), an
// exec'd serverd inherits NOTHING: SpawnServerd closes every descriptor
// above stderr between fork and exec, and the child connects its own
// socket after exec. That is what lets the supervisor respawn crashed
// processes on demand instead of consuming a pre-forked spare pool, and
// what lets an operator start servers from a shell.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <sys/types.h>

#include "cluster/handshake.h"
#include "common/annotations.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/messages.h"

namespace weaver {
namespace cluster {

/// One admitted process: the connected socket (caller owns the fd) and
/// what the handshake established about the peer.
struct JoinedProcess {
  int fd = -1;
  std::uint64_t pid = 0;
  NodeRole role = NodeRole::kSpare;
  std::uint32_t shard_id = 0;
};

class ClusterListener {
 public:
  struct Options {
    /// 0 = pick any free loopback port (read it back via port()).
    std::uint16_t port = 0;
    /// Shared secret joiners must echo. Empty = any token accepted.
    std::string token;
    /// Epoch advertised in acks and used to fence stale joiners.
    std::uint32_t cluster_epoch = 1;
    /// Per-frame deadline inside one connection's handshake.
    std::uint64_t handshake_timeout_micros = 2'000'000;
    /// How long one AcceptJoin() call waits for a valid joiner.
    std::uint64_t accept_timeout_micros = 30'000'000;
  };

  /// Counters over the listener's lifetime (test + log visibility).
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_version = 0;
    std::uint64_t rejected_token = 0;
    std::uint64_t rejected_epoch = 0;
    std::uint64_t rejected_duplicate = 0;
    std::uint64_t rejected_no_slot = 0;
    std::uint64_t handshake_failures = 0;  // disconnects, timeouts, garbage
  };

  static Result<std::unique_ptr<ClusterListener>> Open(Options options);
  ~ClusterListener();
  ClusterListener(const ClusterListener&) = delete;
  ClusterListener& operator=(const ClusterListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Keeps the advertised/fencing epoch current as recoveries bump it.
  void set_cluster_epoch(std::uint32_t epoch);

  /// Opens a slot: a joiner asking for (role, shard_id) -- or wildcarding
  /// the shard id within the role -- will be admitted and sent
  /// `assignment` (its role/shard_id/cluster_epoch fields are stamped at
  /// accept time). FailedPrecondition if the slot is open or live.
  Status OpenSlot(NodeRole role, std::uint32_t shard_id,
                  RoleAssignMessage assignment);

  /// Accepts connections until one passes the handshake for an open slot,
  /// then marks that slot live and returns the socket. Refused joiners
  /// are answered + closed and the loop continues. DeadlineExceeded when
  /// accept_timeout_micros elapses with no valid joiner.
  Result<JoinedProcess> AcceptJoin();

  /// Marks a live slot dead (the process was fenced/killed); the slot is
  /// removed entirely -- re-open it with OpenSlot before respawning.
  void ReleaseRole(NodeRole role, std::uint32_t shard_id);

  Stats stats() const;

 private:
  explicit ClusterListener(Options options) : options_(std::move(options)) {}

  struct Slot {
    bool live = false;
    RoleAssignMessage assignment;
  };

  /// Runs the handshake on one accepted connection. Returns true when a
  /// slot was filled (out filled in); false = refused/failed, fd closed,
  /// caller keeps accepting.
  bool HandshakeOne(int fd, JoinedProcess* out);

  Options options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  mutable Mutex mu_;
  std::uint32_t cluster_epoch_ GUARDED_BY(mu_) = 1;
  std::map<std::pair<std::uint8_t, std::uint32_t>, Slot> slots_
      GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

/// fork+execs `binary --join=127.0.0.1:<port> --token=<token>
/// --role=<role> --shard=<shard_id>`; every fd above stderr is closed in
/// the child before exec, so the serverd starts with no inherited
/// descriptors. Only async-signal-safe calls run between fork and exec.
Result<pid_t> SpawnServerd(const std::string& binary, std::uint16_t port,
                           const std::string& token, NodeRole role,
                           std::uint32_t shard_id);

}  // namespace cluster
}  // namespace weaver
