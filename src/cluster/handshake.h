// Cluster join handshake: the three-message negotiation a standalone
// weaver-serverd process runs against a coordinator's ClusterListener
// before it becomes a shard, oracle, gatekeeper, or spare
// (docs/transport.md#cluster-bootstrap).
//
//     joiner                         coordinator
//       | -- JoinRequest ----------------> |   codec version, expected
//       |                                  |   epoch, role + shard wanted,
//       |                                  |   join token, pid
//       | <-- JoinAck -------------------- |   OK, or a refusal status
//       | <-- RoleAssign ----------------- |   role, shard id, epoch, and
//       |                                  |   the full server config
//       |        (socket adopted into a SocketTransport on both sides)
//
// The messages are ordinary CRC-sealed wire frames (net/wire.h) with
// their schemas in core/messages.h, but they travel DIRECTLY on the raw
// connected socket -- no MessageBus, no channel sequence numbers
// (src/dst/seq are zero) -- because the handshake is precisely the step
// that decides whether this socket gets adopted into a bus at all. The
// helpers here do the raw-fd frame IO with poll() deadlines so a stalled
// or malicious peer cannot wedge either side.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "core/messages.h"

namespace weaver {
namespace cluster {

/// Writes one handshake frame (header src/dst/seq all zero) directly to
/// `fd`, blocking until fully written.
Status SendHandshakeFrame(int fd, std::uint32_t tag,
                          const std::string& payload);

/// Reads exactly one frame from `fd`, enforcing `timeout_micros` across
/// the whole read. Returns the tag + payload bytes; DeadlineExceeded on
/// timeout, Unavailable on EOF, InvalidArgument on a corrupt stream.
Status ReadHandshakeFrame(int fd, std::uint32_t* tag, std::string* payload,
                          std::uint64_t timeout_micros);

/// Encode-and-send / read-and-decode conveniences for the three schemas.
Status SendJoinRequest(int fd, const JoinRequestMessage& m);
Status SendJoinAck(int fd, const JoinAckMessage& m);
Status SendRoleAssign(int fd, const RoleAssignMessage& m);

/// What a successful client-side handshake yields: the connected socket
/// (caller owns the fd; pass it to SocketTransport::Adopt or a server
/// entry point) plus the coordinator's assignment.
struct JoinOutcome {
  int fd = -1;
  RoleAssignMessage assignment;
};

/// Client side of the handshake: connects to the coordinator's listener
/// on loopback `port`, sends `request`, and waits for the verdict. A
/// refusal closes the socket and returns the coordinator's status
/// verbatim (so "codec version mismatch" or "stale cluster epoch" reach
/// the joiner's stderr unmangled).
Result<JoinOutcome> JoinCluster(std::uint16_t port,
                                const JoinRequestMessage& request,
                                std::uint64_t timeout_micros);

/// Role names for command lines and logs ("shard", "oracle",
/// "gatekeeper", "spare").
const char* RoleName(NodeRole role);
/// Inverse of RoleName; InvalidArgument on an unknown name.
Result<NodeRole> ParseRole(const std::string& name);

}  // namespace cluster
}  // namespace weaver
