#include "cluster/bootstrap.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/message_codec.h"
#include "net/transport.h"
#include "net/wire.h"

namespace weaver {
namespace cluster {

namespace {

std::uint64_t NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::pair<std::uint8_t, std::uint32_t> SlotKey(NodeRole role,
                                               std::uint32_t shard_id) {
  return {static_cast<std::uint8_t>(role), shard_id};
}

}  // namespace

Result<std::unique_ptr<ClusterListener>> ClusterListener::Open(
    Options options) {
  auto listener =
      std::unique_ptr<ClusterListener>(new ClusterListener(options));
  auto fd = SocketTransport::ListenLoopback(options.port);
  if (!fd.ok()) return fd.status();
  listener->listen_fd_ = *fd;
  auto port = SocketTransport::ListenPort(*fd);
  if (!port.ok()) {
    ::close(*fd);
    return port.status();
  }
  listener->port_ = *port;
  {
    MutexLock lk(listener->mu_);
    listener->cluster_epoch_ = options.cluster_epoch;
  }
  return listener;
}

ClusterListener::~ClusterListener() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void ClusterListener::set_cluster_epoch(std::uint32_t epoch) {
  MutexLock lk(mu_);
  cluster_epoch_ = epoch;
}

Status ClusterListener::OpenSlot(NodeRole role, std::uint32_t shard_id,
                                 RoleAssignMessage assignment) {
  MutexLock lk(mu_);
  auto [it, inserted] = slots_.try_emplace(SlotKey(role, shard_id));
  if (!inserted) {
    return Status::FailedPrecondition(
        std::string("slot already ") + (it->second.live ? "live" : "open") +
        ": " + RoleName(role) + "/" + std::to_string(shard_id));
  }
  it->second.assignment = std::move(assignment);
  it->second.assignment.role = role;
  it->second.assignment.shard_id = shard_id;
  return Status::Ok();
}

void ClusterListener::ReleaseRole(NodeRole role, std::uint32_t shard_id) {
  MutexLock lk(mu_);
  slots_.erase(SlotKey(role, shard_id));
}

ClusterListener::Stats ClusterListener::stats() const {
  MutexLock lk(mu_);
  return stats_;
}

bool ClusterListener::HandshakeOne(int fd, JoinedProcess* out) {
  JoinRequestMessage request;
  {
    std::uint32_t tag = 0;
    std::string payload;
    Status st = ReadHandshakeFrame(fd, &tag, &payload,
                                   options_.handshake_timeout_micros);
    if (st.ok() && tag != kMsgJoinRequest) {
      st = Status::InvalidArgument("first handshake frame is not a join");
    }
    if (st.ok()) {
      wire::Reader r(payload);
      st = Decode(&r, &request);
    }
    if (!st.ok()) {
      // Disconnects, timeouts, and garbage all land here: count, close,
      // keep no state -- the slot (if the peer wanted one) stays open.
      MutexLock lk(mu_);
      stats_.handshake_failures++;
      ::close(fd);
      return false;
    }
  }

  // Validate against the registry. The refusal (if any) is decided under
  // the lock; the ack IO happens after it is dropped.
  Status verdict = Status::Ok();
  std::uint32_t epoch_now = 0;
  RoleAssignMessage assignment;
  {
    MutexLock lk(mu_);
    epoch_now = cluster_epoch_;
    if (request.codec_version != kWireCodecVersion) {
      stats_.rejected_version++;
      verdict = Status::InvalidArgument(
          "codec version mismatch: joiner speaks v" +
          std::to_string(request.codec_version) + ", cluster speaks v" +
          std::to_string(kWireCodecVersion));
    } else if (!options_.token.empty() && request.token != options_.token) {
      stats_.rejected_token++;
      verdict = Status::Aborted("join token mismatch");
    } else if (request.cluster_epoch != 0 &&
               request.cluster_epoch != cluster_epoch_) {
      stats_.rejected_epoch++;
      verdict = Status::FailedPrecondition(
          "stale cluster epoch: joiner expects " +
          std::to_string(request.cluster_epoch) + ", cluster is at " +
          std::to_string(cluster_epoch_));
    } else {
      auto it = slots_.end();
      if (request.shard_id == kAnyShard) {
        // Wildcard: any open slot of the requested role.
        for (auto cand = slots_.begin(); cand != slots_.end(); ++cand) {
          if (cand->first.first ==
                  static_cast<std::uint8_t>(request.role) &&
              !cand->second.live) {
            it = cand;
            break;
          }
        }
        if (it == slots_.end()) {
          stats_.rejected_no_slot++;
          verdict = Status::NotFound(
              std::string("no open ") + RoleName(request.role) + " slot");
        }
      } else {
        it = slots_.find(SlotKey(request.role, request.shard_id));
        if (it == slots_.end()) {
          stats_.rejected_no_slot++;
          verdict = Status::NotFound(
              std::string("no such slot: ") + RoleName(request.role) + "/" +
              std::to_string(request.shard_id));
        } else if (it->second.live) {
          stats_.rejected_duplicate++;
          verdict = Status::AlreadyExists(
              std::string("duplicate join: ") + RoleName(request.role) +
              "/" + std::to_string(request.shard_id) + " is already live");
        }
      }
      if (verdict.ok()) {
        assignment = it->second.assignment;
        assignment.cluster_epoch = cluster_epoch_;
        // NOT marked live yet: the joiner still has to survive the ack +
        // assign sends. Liveness is committed only on full success, so a
        // peer that vanishes mid-handshake leaves the slot open.
      }
    }
  }

  JoinAckMessage ack;
  ack.status = verdict;
  ack.cluster_epoch = epoch_now;
  if (!verdict.ok()) {
    (void)SendJoinAck(fd, ack);  // best effort: the peer may already be gone
    ::close(fd);
    return false;
  }
  Status io = SendJoinAck(fd, ack);
  if (io.ok()) io = SendRoleAssign(fd, assignment);
  if (!io.ok()) {
    MutexLock lk(mu_);
    stats_.handshake_failures++;
    ::close(fd);
    return false;
  }
  {
    MutexLock lk(mu_);
    auto it = slots_.find(SlotKey(assignment.role, assignment.shard_id));
    if (it == slots_.end() || it->second.live) {
      // The slot raced away (released or filled concurrently) while the
      // ack was in flight. Extremely narrow; refuse late by closing.
      stats_.handshake_failures++;
      ::close(fd);
      return false;
    }
    it->second.live = true;
    stats_.accepted++;
  }
  out->fd = fd;
  out->pid = request.pid;
  out->role = assignment.role;
  out->shard_id = assignment.shard_id;
  return true;
}

Result<JoinedProcess> ClusterListener::AcceptJoin() {
  const std::uint64_t deadline = NowMicros() + options_.accept_timeout_micros;
  while (true) {
    const std::uint64_t now = NowMicros();
    if (now >= deadline) {
      return Status::DeadlineExceeded("no valid joiner before the deadline");
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int timeout_ms = static_cast<int>((deadline - now + 999) / 1000);
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("poll: ") +
                                 std::strerror(errno));
    }
    if (rc == 0) {
      return Status::DeadlineExceeded("no valid joiner before the deadline");
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("accept: ") +
                                 std::strerror(errno));
    }
    JoinedProcess joined;
    if (HandshakeOne(fd, &joined)) return joined;
    // Refused/failed: loop for the next connection until the deadline.
  }
}

Result<pid_t> SpawnServerd(const std::string& binary, std::uint16_t port,
                           const std::string& token, NodeRole role,
                           std::uint32_t shard_id) {
  // Everything heap-allocating happens BEFORE fork: between fork and exec
  // only async-signal-safe calls are legal in a multithreaded parent.
  const std::string join_arg = "--join=127.0.0.1:" + std::to_string(port);
  const std::string token_arg = "--token=" + token;
  const std::string role_arg = std::string("--role=") + RoleName(role);
  const std::string shard_arg = "--shard=" + std::to_string(shard_id);
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(binary.c_str()));
  argv.push_back(const_cast<char*>(join_arg.c_str()));
  argv.push_back(const_cast<char*>(token_arg.c_str()));
  argv.push_back(const_cast<char*>(role_arg.c_str()));
  argv.push_back(const_cast<char*>(shard_arg.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::Unavailable(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: drop every inherited descriptor above stderr, then exec.
    // The serverd connects its own socket after exec -- "no inherited
    // fds" is the whole point of the exec path.
    const long max_fd = ::sysconf(_SC_OPEN_MAX);
    const int limit =
        max_fd > 0 ? static_cast<int>(max_fd) : 4096;  // conservative
    for (int fd = 3; fd < limit; ++fd) ::close(fd);
    ::execv(binary.c_str(), argv.data());
    // exec failed: nothing sane to do but exit hard (stdio may be shared
    // with the parent, so keep it to one write).
    const char msg[] = "weaver: execv(weaver-serverd) failed\n";
    ssize_t ignored = ::write(2, msg, sizeof(msg) - 1);
    (void)ignored;
    ::_exit(127);
  }
  return pid;
}

}  // namespace cluster
}  // namespace weaver
