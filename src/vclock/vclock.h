// Epoch-tagged vector clocks (Fidge/Mattern), the proactive half of
// refinable timestamps (paper §3.3).
//
// Each gatekeeper maintains one VectorClock with as many counters as there
// are gatekeepers. A gatekeeper increments its own component per client
// request and merges announce messages from peers every tau microseconds.
// The epoch field supports gatekeeper fail-over (paper §4.3): the cluster
// manager bumps the epoch when a gatekeeper is replaced, and any clock in a
// later epoch orders after every clock of an earlier epoch, so a restarted
// gatekeeper may restart its counters without violating monotonicity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serde.h"

namespace weaver {

/// Outcome of comparing two vector clocks.
enum class ClockOrder : std::uint8_t {
  kEqual = 0,
  kBefore,      // lhs happens-before rhs
  kAfter,       // rhs happens-before lhs
  kConcurrent,  // incomparable: refinement by the timeline oracle needed
};

class VectorClock {
 public:
  VectorClock() = default;
  /// Zero clock with `width` components in epoch 0.
  explicit VectorClock(std::size_t width) : counters_(width, 0) {}
  VectorClock(std::uint32_t epoch, std::vector<std::uint64_t> counters)
      : epoch_(epoch), counters_(std::move(counters)) {}

  std::uint32_t epoch() const { return epoch_; }
  std::size_t width() const { return counters_.size(); }
  std::uint64_t Component(std::size_t i) const { return counters_[i]; }
  const std::vector<std::uint64_t>& counters() const { return counters_; }

  /// Increment this clock's own component (gatekeeper `self` issued a new
  /// timestamp). Returns the new component value.
  std::uint64_t Tick(std::size_t self) { return ++counters_[self]; }

  /// Pointwise max with `other` (processing a peer announce). Clocks must
  /// have the same width and epoch; merging across epochs is a cluster-
  /// manager bug and is ignored for older epochs.
  void Merge(const VectorClock& other);

  /// Moves this clock into `epoch`, zeroing all counters. Used when a
  /// backup gatekeeper takes over (paper §4.3).
  void AdvanceEpoch(std::uint32_t epoch);

  /// Happens-before comparison. Clocks from an older epoch order before
  /// clocks from a newer epoch unconditionally.
  ClockOrder Compare(const VectorClock& other) const;

  /// True iff Compare(other) == kBefore.
  bool HappensBefore(const VectorClock& other) const {
    return Compare(other) == ClockOrder::kBefore;
  }
  /// True iff the two clocks are incomparable.
  bool ConcurrentWith(const VectorClock& other) const {
    return Compare(other) == ClockOrder::kConcurrent;
  }

  /// Sum of all components; a cheap scalar used only for diagnostics and
  /// deterministic tie-breaking in tests (never for correctness).
  std::uint64_t Magnitude() const;

  bool operator==(const VectorClock& other) const {
    return epoch_ == other.epoch_ && counters_ == other.counters_;
  }

  std::string ToString() const;

  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, VectorClock* out);

 private:
  std::uint32_t epoch_ = 0;
  std::vector<std::uint64_t> counters_;
};

/// Inverts an order: kBefore <-> kAfter.
inline ClockOrder FlipOrder(ClockOrder o) {
  switch (o) {
    case ClockOrder::kBefore:
      return ClockOrder::kAfter;
    case ClockOrder::kAfter:
      return ClockOrder::kBefore;
    default:
      return o;
  }
}

const char* ClockOrderName(ClockOrder o);

}  // namespace weaver
