#include "vclock/vclock.h"

#include <algorithm>
#include <cassert>

namespace weaver {

void VectorClock::Merge(const VectorClock& other) {
  assert(other.width() == width());
  if (other.epoch_ < epoch_) return;  // stale pre-failover announce
  if (other.epoch_ > epoch_) {
    // We lag behind a cluster reconfiguration; adopt the new epoch.
    AdvanceEpoch(other.epoch_);
  }
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] = std::max(counters_[i], other.counters_[i]);
  }
}

void VectorClock::AdvanceEpoch(std::uint32_t epoch) {
  assert(epoch > epoch_);
  epoch_ = epoch;
  std::fill(counters_.begin(), counters_.end(), 0);
}

ClockOrder VectorClock::Compare(const VectorClock& other) const {
  if (epoch_ != other.epoch_) {
    return epoch_ < other.epoch_ ? ClockOrder::kBefore : ClockOrder::kAfter;
  }
  assert(width() == other.width());
  bool some_less = false;
  bool some_greater = false;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i] < other.counters_[i]) some_less = true;
    if (counters_[i] > other.counters_[i]) some_greater = true;
  }
  if (some_less && some_greater) return ClockOrder::kConcurrent;
  if (some_less) return ClockOrder::kBefore;
  if (some_greater) return ClockOrder::kAfter;
  return ClockOrder::kEqual;
}

std::uint64_t VectorClock::Magnitude() const {
  std::uint64_t sum = 0;
  for (auto c : counters_) sum += c;
  return sum;
}

std::string VectorClock::ToString() const {
  std::string out = "e" + std::to_string(epoch_) + "<";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(counters_[i]);
  }
  out += ">";
  return out;
}

void VectorClock::Serialize(ByteWriter* w) const {
  w->PutU32(epoch_);
  w->PutU32(static_cast<std::uint32_t>(counters_.size()));
  for (auto c : counters_) w->PutU64(c);
}

Status VectorClock::Deserialize(ByteReader* r, VectorClock* out) {
  std::uint32_t epoch = 0;
  std::uint32_t width = 0;
  WEAVER_RETURN_IF_ERROR(r->GetU32(&epoch));
  WEAVER_RETURN_IF_ERROR(r->GetU32(&width));
  std::vector<std::uint64_t> counters(width, 0);
  for (auto& c : counters) {
    WEAVER_RETURN_IF_ERROR(r->GetU64(&c));
  }
  *out = VectorClock(epoch, std::move(counters));
  return Status::Ok();
}

const char* ClockOrderName(ClockOrder o) {
  switch (o) {
    case ClockOrder::kEqual:
      return "EQUAL";
    case ClockOrder::kBefore:
      return "BEFORE";
    case ClockOrder::kAfter:
      return "AFTER";
    case ClockOrder::kConcurrent:
      return "CONCURRENT";
  }
  return "?";
}

}  // namespace weaver
