// Shard server: stores one partition of the multi-version graph in memory
// and executes transactions and node programs in refinable-timestamp order
// (paper §3.2, §4.1, §4.2).
//
// Execution model (Fig 6): the shard keeps one FIFO queue of incoming
// transactions per gatekeeper. Per-gatekeeper streams arrive in timestamp
// order over FIFO bus channels, so each queue is sorted; the event loop
// repeatedly executes the globally-least queue head. When heads are
// concurrent, the shard consults the timeline oracle (through its caching
// OrderResolver) to discover or establish an order -- the reactive stage of
// refinable timestamps. NOP transactions guarantee every queue always has
// a head, bounding the wait.
//
// Node programs (paper §4.1): a program wave with timestamp Tprog is
// delayed until every queue head is strictly after Tprog -- i.e. all
// preceding and concurrent transactions have executed -- then runs against
// the multi-version graph, filtering out writes ordered after Tprog.
// Per-program scratch state lives here until the coordinator sends
// EndProgram (paper §4.5).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/queue.h"
#include "core/messages.h"
#include "core/node_program.h"
#include "graph/graph_store.h"
#include "net/bus.h"
#include "order/resolver.h"

namespace weaver {

class Shard {
 public:
  struct Options {
    ShardId id = 0;
    std::size_t num_gatekeepers = 1;
    MessageBus* bus = nullptr;
    TimelineOracle* oracle = nullptr;
    std::shared_ptr<const ProgramRegistry> programs;
    /// Reuse an existing endpoint (shard recovery keeps its address).
    EndpointId reuse_endpoint = kNoEndpoint;
    /// Inbox capacity; senders block once this many messages are queued
    /// (bounded-queue backpressure). 0 keeps the historical unbounded
    /// inbox.
    std::size_t inbox_capacity = 0;
    /// Stop batch-draining the inbox into the per-gatekeeper queues while
    /// more than this many transactions are already queued, so inbox
    /// depth reflects real backlog and upstream producers (NOP timers)
    /// can see it and back off. The event loop still consumes at least
    /// one message per iteration, so starved queues always refill.
    /// 0 disables the throttle.
    std::size_t queue_high_water = 0;
  };
  static constexpr EndpointId kNoEndpoint = ~0u;

  struct Stats {
    std::atomic<std::uint64_t> txs_applied{0};
    std::atomic<std::uint64_t> nops_processed{0};
    std::atomic<std::uint64_t> op_apply_errors{0};
    std::atomic<std::uint64_t> waves_executed{0};
    std::atomic<std::uint64_t> wave_delays{0};  // eligibility re-checks
    std::atomic<std::uint64_t> vertices_executed{0};
    std::atomic<std::uint64_t> gc_rounds{0};
    std::atomic<std::uint64_t> seq_violations{0};
    /// Nanoseconds spent routing and executing work (excludes idle waits).
    std::atomic<std::uint64_t> busy_ns{0};
    /// Nanoseconds spent on per-operation work only: applying transaction
    /// ops and executing program waves (excludes NOP/background routing).
    /// This is the per-op service demand the Fig 12/13 scaling benches'
    /// model uses.
    std::atomic<std::uint64_t> op_work_ns{0};
  };

  explicit Shard(Options options);
  ~Shard();
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  ShardId id() const { return options_.id; }
  EndpointId endpoint() const { return endpoint_; }

  /// Starts the event-loop thread.
  void Start();
  /// Stops and joins the event loop (idempotent).
  void Stop();

  /// Deterministic alternative to Start(): processes queued messages on
  /// the caller's thread until no further progress is possible.
  void ProcessUntilIdle();

  /// Direct access for loading and inspection. The caller must guarantee
  /// the event loop is not running concurrently (tests, bulk load,
  /// recovery).
  GraphStore& graph() { return graph_; }
  OrderResolver& resolver() { return resolver_; }

  const Stats& stats() const { return stats_; }

  /// Number of transactions currently queued (diagnostics).
  std::size_t QueuedTransactions() const;

 private:
  struct QueueEntry {
    RefinableTimestamp ts;
    std::vector<GraphOp> ops;  // empty for NOPs / uninvolved slices
    bool is_nop = false;
    std::uint64_t arrival = 0;
  };
  struct PendingWave {
    WaveMessage wave;
    std::uint64_t arrival = 0;
  };

  void Loop();
  void Route(const BusMessage& msg);
  /// Runs eligible transactions and waves; returns when blocked on input.
  void ProcessReady();
  bool AllQueuesNonEmpty() const;
  /// Index of the queue whose head is ordered first.
  std::size_t PickMinHead();
  void ApplyEntry(const QueueEntry& entry);
  bool WaveEligible(const RefinableTimestamp& prog_ts);
  void ExecuteWave(const WaveMessage& wave);
  void RunGc(const RefinableTimestamp& watermark);

  /// Order function used for multi-version visibility during program
  /// execution: write-wins preference (transactions order before programs
  /// when no order exists, paper §4.1).
  OrderFn VisibilityOrderFn();

  Options options_;
  EndpointId endpoint_ = 0;
  std::shared_ptr<BlockingQueue<BusMessage>> inbox_;

  GraphStore graph_;
  OrderResolver resolver_;
  std::vector<std::deque<QueueEntry>> gk_queues_;
  std::vector<std::uint64_t> last_channel_seq_;  // FIFO assertions per gk
  std::vector<PendingWave> pending_waves_;
  std::uint64_t arrival_counter_ = 0;

  // Per-program, per-vertex node program state (paper §2.3, §4.5).
  std::unordered_map<ProgramId, std::unordered_map<NodeId, std::any>>
      program_state_;

  std::thread loop_thread_;
  std::atomic<bool> running_{false};

  Stats stats_;
};

}  // namespace weaver
