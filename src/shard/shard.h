// Shard server: stores one partition of the multi-version graph in memory
// and executes transactions and node programs in refinable-timestamp order
// (paper §3.2, §4.1, §4.2).
//
// Execution model (Fig 6): the shard keeps one FIFO queue of incoming
// transactions per gatekeeper. Per-gatekeeper streams arrive in timestamp
// order over FIFO bus channels, so each queue is sorted; the event loop
// repeatedly executes the globally-least queue head. When heads are
// concurrent, the shard consults the timeline oracle (through its caching
// OrderResolver) to discover or establish an order -- the reactive stage of
// refinable timestamps. NOP transactions guarantee every queue always has
// a head, bounding the wait.
//
// Node programs (paper §4.1, §4.5; docs/node_programs.md): execution is
// decentralized. Hop batches arrive from the coordinator (start wave) or
// directly from peer shards; the first batch for a program installs a
// ProgramContext that interns the registry lookup, timestamp, and
// visibility order function once. A program's hops are delayed until
// every queue head is strictly after its timestamp -- i.e. all preceding
// and concurrent transactions have executed -- a check that is sticky
// (heads only advance), so it runs once per (shard, program). Eligible
// hops execute as a local worklist (a traversal that stays on this shard
// never leaves it); hops owned by peers batch into one message per peer
// per drain cycle; exact (vertex, params) duplicates coalesce at ingress.
// Each cycle ends with an accounting delta to the coordinator, which
// detects quiescence by credit counting. Per-program scratch state lives
// here until the coordinator sends EndProgram (paper §4.5).
//
// Thread ownership (why this class has no mutexes and no GUARDED_BY
// annotations -- docs/static_analysis.md): the shard is single-threaded
// by design. Every mutable structure (graph, queues, program contexts,
// scratch state) is owned by the event-loop thread, which is the only
// thread that touches it; cross-thread communication happens exclusively
// through the inbox BlockingQueue (annotated, common/queue.h) on the way
// in and bus sends on the way out, and the handful of values other
// threads may read (diagnostic gauges, the running flag) are atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/queue.h"
#include "core/locator.h"
#include "core/messages.h"
#include "core/node_program.h"
#include "graph/graph_store.h"
#include "net/bus.h"
#include "obs/metrics.h"
#include "order/resolver.h"

namespace weaver {

class Shard {
 public:
  struct Options {
    ShardId id = 0;
    std::size_t num_gatekeepers = 1;
    MessageBus* bus = nullptr;
    /// In-process oracle (single-process deployments and shard servers
    /// without the oracle service). Wrapped in an owned local-mode
    /// OracleClient. Exactly one of oracle / oracle_client must be set.
    TimelineOracle* oracle = nullptr;
    /// Externally owned client (remote-oracle shard servers,
    /// coord/serverd). Remote calls can fail mid-failover; the shard
    /// parks waves and aborts programs with a retriable Unavailable
    /// instead of inventing an order.
    OracleClient* oracle_client = nullptr;
    std::shared_ptr<const ProgramRegistry> programs;
    /// Vertex -> shard directory used to route forwarded program hops.
    NodeLocator* locator = nullptr;
    /// Reuse an existing endpoint (shard recovery keeps its address).
    EndpointId reuse_endpoint = kNoEndpoint;
    /// Inbox capacity; senders block once this many messages are queued
    /// (bounded-queue backpressure). 0 keeps the historical unbounded
    /// inbox.
    std::size_t inbox_capacity = 0;
    /// Stop batch-draining the inbox into the per-gatekeeper queues while
    /// more than this many transactions are already queued, so inbox
    /// depth reflects real backlog and upstream producers (NOP timers)
    /// can see it and back off. The event loop still consumes at least
    /// one message per iteration, so starved queues always refill.
    /// 0 disables the throttle.
    std::size_t queue_high_water = 0;
    /// Max program hops executed per context per drain cycle. Bounds how
    /// long program work can monopolize the event loop before control
    /// returns to Route() -- which is also what lets a coordinator abort
    /// (EndProgram) interrupt a runaway program. Leftover hops carry to
    /// the next cycle. Default mirrors
    /// WeaverOptions::shard_max_hops_per_cycle (the deployment always
    /// overwrites this; keep the two in sync).
    std::size_t max_hops_per_cycle = 2048;
    /// When set, the shard exports its counters and queue gauges under
    /// "shard<id>." names and answers kMsgMetricsRequest with a registry
    /// snapshot (docs/observability.md). The registry must outlive the
    /// shard; the shard drops its names in its destructor.
    obs::MetricsRegistry* metrics = nullptr;
    /// Collect `oracle` at the kMsgGc watermark too. Shard-server
    /// processes own their oracle REPLICA, so the parent's GC watermark
    /// reaches it only through the shard (true in coord/serverd);
    /// in-process deployments share one oracle that Weaver collects
    /// itself (false).
    bool gc_oracle = false;
  };
  static constexpr EndpointId kNoEndpoint = ~0u;

  struct Stats {
    std::atomic<std::uint64_t> txs_applied{0};
    std::atomic<std::uint64_t> nops_processed{0};
    std::atomic<std::uint64_t> op_apply_errors{0};
    /// Program drain cycles executed (the decentralized "wave" analog).
    std::atomic<std::uint64_t> waves_executed{0};
    std::atomic<std::uint64_t> wave_delays{0};  // eligibility re-checks
    std::atomic<std::uint64_t> vertices_executed{0};
    /// Program hops consumed (executed or coalesced away).
    std::atomic<std::uint64_t> hops_consumed{0};
    /// Hops forwarded to peer shards, and the batch messages carrying
    /// them (the shard-to-shard traffic the coordinator never sees).
    std::atomic<std::uint64_t> hops_forwarded{0};
    std::atomic<std::uint64_t> hop_batches_sent{0};
    /// Exact (vertex, params) duplicates dropped at ingress.
    std::atomic<std::uint64_t> hops_coalesced{0};
    /// Hops to already-visited vertices dropped at ingress (VisitOnce
    /// programs only).
    std::atomic<std::uint64_t> hops_pruned{0};
    /// ProgramContexts installed (first hop batch per program).
    std::atomic<std::uint64_t> contexts_installed{0};
    std::atomic<std::uint64_t> gc_rounds{0};
    std::atomic<std::uint64_t> seq_violations{0};
    /// Order resolutions that hit an unreachable oracle (failover in
    /// progress): the wave was parked or the program aborted retriably.
    std::atomic<std::uint64_t> oracle_stalls{0};
    /// Program cycles that ran with a reduced hop budget because the
    /// inbox was backlogged (AdaptiveHopBudget).
    std::atomic<std::uint64_t> hop_budget_throttles{0};
    /// Nanoseconds spent routing and executing work (excludes idle waits).
    std::atomic<std::uint64_t> busy_ns{0};
    /// Nanoseconds spent on per-operation work only: applying transaction
    /// ops and executing program hops (excludes NOP/background routing).
    /// This is the per-op service demand the Fig 12/13 scaling benches'
    /// model uses.
    std::atomic<std::uint64_t> op_work_ns{0};
  };

  explicit Shard(Options options);
  ~Shard();
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  ShardId id() const { return options_.id; }
  EndpointId endpoint() const { return endpoint_; }

  /// Installs the shard-id -> endpoint table used to forward program
  /// hops to peers (deployment wiring happens after all shards are
  /// constructed). Call before Start().
  void SetShardEndpoints(std::vector<EndpointId> endpoints) {
    shard_endpoints_ = std::move(endpoints);
  }

  /// Starts the event-loop thread.
  void Start();
  /// Stops and joins the event loop (idempotent).
  void Stop();

  /// Deterministic alternative to Start(): processes queued messages on
  /// the caller's thread until no further progress is possible.
  void ProcessUntilIdle();

  /// Direct access for loading and inspection. The caller must guarantee
  /// the event loop is not running concurrently (tests, bulk load,
  /// recovery).
  GraphStore& graph() { return graph_; }
  OrderResolver& resolver() { return resolver_; }

  const Stats& stats() const { return stats_; }

  /// Number of transactions currently queued (diagnostics).
  std::size_t QueuedTransactions() const;

  /// Live per-program scratch-state tables / contexts (diagnostics:
  /// both drop to zero once EndProgram lands for every finished
  /// program). Atomic gauges, safe to read while the event loop runs.
  std::size_t ProgramStateCount() const {
    return live_state_tables_.load(std::memory_order_relaxed);
  }
  std::size_t ProgramContextCount() const {
    return live_contexts_.load(std::memory_order_relaxed);
  }

 private:
  struct QueueEntry {
    RefinableTimestamp ts;
    std::vector<GraphOp> ops;  // empty for NOPs / uninvolved slices
    bool is_nop = false;
    std::uint64_t arrival = 0;
  };

  /// Per-(shard, program) execution state, installed on first hop batch.
  /// Interned once: the registry lookup, the timestamp, and the
  /// visibility order function -- the per-wave costs of the old
  /// barrier design.
  struct ProgramContext {
    RefinableTimestamp ts;
    std::string name;  // forwarded verbatim in hop batches
    const NodeProgram* program = nullptr;  // null: name not registered
    OrderFn order;
    EndpointId coordinator = 0;
    /// This program's per-vertex scratch-state table (interned pointer
    /// into program_state_; mapped references are rehash-stable).
    std::unordered_map<NodeId, std::any>* states = nullptr;
    /// program->VisitOnce(): hops to vertices whose state is already set
    /// -- or that already have ANY hop pending -- are pruned at ingress
    /// instead of re-dispatched, and each remote vertex is forwarded at
    /// most once (`forwarded`).
    bool visit_once = false;
    /// Remote vertices this shard has already forwarded a hop to
    /// (VisitOnce programs only): later hops to them are provably
    /// no-ops, so they are dropped before they ever cross the bus.
    std::unordered_set<NodeId> forwarded;
    /// Delay rule passed (paper §4.1). Sticky: queue heads only advance,
    /// so once every head is strictly after ts it stays that way.
    bool eligible = false;
    std::deque<NextHop> pending;
    /// Ingress coalescing index over `pending`: vertex -> (params hash,
    /// pointer to the queued hop's params). An arriving exact duplicate
    /// -- hash match confirmed by a full compare -- is consumed on the
    /// spot. Pointers target live deque elements (std::deque references
    /// survive push/pop at the other end; each entry is unindexed before
    /// its element pops), so no params string is ever copied.
    std::unordered_map<NodeId,
                       std::vector<std::pair<std::size_t, const std::string*>>>
        pending_keys;
    /// Consumption credit for hops coalesced since the last cycle.
    std::uint64_t coalesced_credit = 0;
  };

  void Loop();
  void Route(const BusMessage& msg);
  /// Registers this shard's instruments under "shard<id>." (ctor).
  void ExportMetrics();
  /// Replies to a metrics scrape with this process's registry snapshot.
  void OnMetricsRequest(const MetricsRequestMessage& req);
  /// Refreshes the queued-transaction gauge + high-water mark (loop
  /// thread; the gauges are atomics so scrapers read them safely).
  void NoteQueueDepth();
  /// Runs eligible transactions and program hops; returns when blocked
  /// on input.
  void ProcessReady();
  bool AllQueuesNonEmpty() const;
  /// Index of the queue whose head is ordered first.
  std::size_t PickMinHead();
  void ApplyEntry(const QueueEntry& entry);
  bool WaveEligible(const RefinableTimestamp& prog_ts);

  /// Ingests a hop batch: installs the context on first contact, then
  /// queues hops with exact-duplicate coalescing.
  void OnHopBatch(WaveHopBatchMessage& batch);
  /// Queues one hop unless an exact (vertex, params) duplicate is
  /// already pending; returns false when coalesced.
  bool QueueLocalHop(ProgramContext& ctx, NextHop hop);
  /// Executes up to AdaptiveHopBudget() pending hops of one eligible
  /// program, forwards spawned hops, and reports the accounting delta.
  void RunProgramCycle(ProgramId pid, ProgramContext& ctx);
  /// Per-cycle hop budget, scaled down against inbox pressure: at or
  /// past queue_high_water the budget bottoms out at 1/16th of
  /// max_hops_per_cycle, so a read-heavy program cannot starve the
  /// transactional pipeline the backlog is waiting on.
  std::size_t AdaptiveHopBudget();
  /// Runs a cycle for every eligible context with pending hops; returns
  /// true if any hop executed.
  bool RunEligiblePrograms();
  /// True while some eligible context has pending hops (the event loop
  /// must not block on the inbox).
  bool HasRunnableProgramWork() const;
  void FinishProgram(ProgramId pid);

  void RunGc(const RefinableTimestamp& watermark);

  /// Order function used for multi-version visibility during program
  /// execution: write-wins preference (transactions order before programs
  /// when no order exists, paper §4.1).
  OrderFn VisibilityOrderFn();

  Options options_;
  EndpointId endpoint_ = 0;
  std::shared_ptr<BlockingQueue<BusMessage>> inbox_;
  std::vector<EndpointId> shard_endpoints_;  // ShardId -> EndpointId

  GraphStore graph_;
  /// Set iff Options::oracle was given: the local-mode client wrapping
  /// it. Declared before resolver_, which points at it.
  std::unique_ptr<OracleClient> owned_oracle_client_;
  OrderResolver resolver_;
  std::vector<std::deque<QueueEntry>> gk_queues_;
  std::vector<std::uint64_t> last_channel_seq_;  // FIFO assertions per gk
  std::uint64_t arrival_counter_ = 0;

  // Per-program execution contexts and per-vertex scratch state (paper
  // §2.3, §4.5), both GC'd on EndProgram.
  std::unordered_map<ProgramId, ProgramContext> contexts_;
  std::unordered_map<ProgramId, std::unordered_map<NodeId, std::any>>
      program_state_;
  /// Recently finished programs (bounded): late hop batches racing an
  /// abort must not reinstall a context. Normal completion cannot race
  /// (quiescence implies no batch is in flight).
  std::unordered_set<ProgramId> finished_;
  std::deque<ProgramId> finished_order_;

  /// Set by VisibilityOrderFn when the oracle was unreachable and a
  /// deterministic fallback order was used; RunProgramCycle checks it
  /// after each hop and aborts the program retriably (the fallback
  /// answer must never become an acknowledged result). Loop-thread
  /// owned.
  bool oracle_stall_ = false;

  std::thread loop_thread_;
  std::atomic<bool> running_{false};

  /// Gauges mirroring contexts_.size() / program_state_.size() for the
  /// thread-safe diagnostics above (the maps themselves are loop-thread
  /// private).
  std::atomic<std::size_t> live_contexts_{0};
  std::atomic<std::size_t> live_state_tables_{0};

  /// Queued-transaction gauge + high-water mark, refreshed by the loop
  /// thread (gk_queues_ itself is loop-thread private).
  std::atomic<std::size_t> queued_txs_{0};
  std::atomic<std::size_t> queue_high_water_mark_{0};

  Stats stats_;
};

}  // namespace weaver
