#include "shard/shard.h"

#include <algorithm>
#include <cassert>

#include "common/clock.h"

namespace weaver {

namespace {
/// Bound on the finished-program tombstone set (abort-race protection;
/// normal completion never needs it).
constexpr std::size_t kMaxFinishedTombstones = 4096;

/// Wraps an in-process oracle in a local-mode client (Options::oracle
/// form); null when the caller supplied its own client.
std::unique_ptr<OracleClient> MakeLocalClient(TimelineOracle* oracle) {
  if (oracle == nullptr) return nullptr;
  OracleClient::Options co;
  co.local = oracle;
  return std::make_unique<OracleClient>(co);
}
}  // namespace

Shard::Shard(Options options)
    : options_(std::move(options)),
      owned_oracle_client_(MakeLocalClient(options_.oracle)),
      resolver_(options_.oracle_client != nullptr ? options_.oracle_client
                                                  : owned_oracle_client_.get()),
      gk_queues_(options_.num_gatekeepers),
      last_channel_seq_(options_.num_gatekeepers + 64, 0) {
  assert(options_.bus != nullptr);
  assert(options_.oracle != nullptr || options_.oracle_client != nullptr);
  inbox_ = std::make_shared<BlockingQueue<BusMessage>>(options_.inbox_capacity);
  if (options_.reuse_endpoint != kNoEndpoint) {
    endpoint_ = options_.reuse_endpoint;
    options_.bus->ReattachInbox(endpoint_, inbox_);
  } else {
    endpoint_ = options_.bus->RegisterInbox(
        "shard" + std::to_string(options_.id), inbox_);
  }
  ExportMetrics();
}

Shard::~Shard() {
  Stop();
  // The loop thread is joined; the exported callbacks reading this
  // object must go before it does. (Shard recovery destroys + re-creates
  // a Shard with the same id, so the names re-register cleanly.)
  if (options_.metrics != nullptr) {
    options_.metrics->DropPrefix("shard" + std::to_string(options_.id) + ".");
  }
}

void Shard::ExportMetrics() {
  obs::MetricsRegistry* m = options_.metrics;
  if (m == nullptr) return;
  const std::string p = "shard" + std::to_string(options_.id) + ".";
  const auto counter = [&](const char* name,
                           const std::atomic<std::uint64_t>& v) {
    m->AddCounterFn(p + name, [&v] {
      return v.load(std::memory_order_relaxed);
    });
  };
  counter("txs_applied", stats_.txs_applied);
  counter("nops_processed", stats_.nops_processed);
  counter("op_apply_errors", stats_.op_apply_errors);
  counter("waves_executed", stats_.waves_executed);
  counter("wave_delays", stats_.wave_delays);
  counter("vertices_executed", stats_.vertices_executed);
  counter("hops_consumed", stats_.hops_consumed);
  counter("hops_forwarded", stats_.hops_forwarded);
  counter("hop_batches_sent", stats_.hop_batches_sent);
  counter("hops_coalesced", stats_.hops_coalesced);
  counter("hops_pruned", stats_.hops_pruned);
  counter("contexts_installed", stats_.contexts_installed);
  counter("gc_rounds", stats_.gc_rounds);
  counter("seq_violations", stats_.seq_violations);
  counter("oracle_stalls", stats_.oracle_stalls);
  counter("hop_budget_throttles", stats_.hop_budget_throttles);
  counter("busy_ns", stats_.busy_ns);
  counter("op_work_ns", stats_.op_work_ns);
  m->AddGaugeFn(p + "inbox_depth", [this] {
    return static_cast<std::int64_t>(options_.bus->QueueDepth(endpoint_));
  });
  m->AddGaugeFn(p + "queued_txs", [this] {
    return static_cast<std::int64_t>(
        queued_txs_.load(std::memory_order_relaxed));
  });
  m->AddGaugeFn(p + "queue_high_water", [this] {
    return static_cast<std::int64_t>(
        queue_high_water_mark_.load(std::memory_order_relaxed));
  });
  m->AddGaugeFn(p + "live_contexts", [this] {
    return static_cast<std::int64_t>(
        live_contexts_.load(std::memory_order_relaxed));
  });
  m->AddGaugeFn(p + "live_state_tables", [this] {
    return static_cast<std::int64_t>(
        live_state_tables_.load(std::memory_order_relaxed));
  });
}

void Shard::NoteQueueDepth() {
  const std::size_t depth = QueuedTransactions();
  queued_txs_.store(depth, std::memory_order_relaxed);
  std::size_t seen = queue_high_water_mark_.load(std::memory_order_relaxed);
  while (depth > seen && !queue_high_water_mark_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
}

void Shard::OnMetricsRequest(const MetricsRequestMessage& req) {
  auto report = std::make_shared<MetricsReportMessage>();
  report->request_id = req.request_id;
  report->shard = options_.id;
  report->inbox_depth = inbox_->Size();
  if (options_.metrics != nullptr) {
    report->snapshot = options_.metrics->Snapshot();
  }
  // never_block: a scrape reply must not wedge the event loop behind a
  // congested reply path.
  (void)options_.bus->Send(endpoint_, req.reply_to, kMsgMetricsReport,
                           std::move(report), /*never_block=*/true);
}

void Shard::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  loop_thread_ = std::thread([this] { Loop(); });
}

void Shard::Stop() {
  if (!running_.exchange(false)) {
    inbox_->Close();
    if (loop_thread_.joinable()) loop_thread_.join();
    return;
  }
  inbox_->Close();
  if (loop_thread_.joinable()) loop_thread_.join();
}

void Shard::Loop() {
  while (true) {
    std::optional<BusMessage> msg;
    if (HasRunnableProgramWork()) {
      // A capped program cycle left hops pending: keep the loop hot
      // (TryPop) so the worklist drains even on an idle inbox, while
      // still routing whatever arrived (an EndProgram abort must be able
      // to interrupt).
      msg = inbox_->TryPop();
      if (!msg && inbox_->closed()) break;
    } else {
      msg = inbox_->Pop();
      if (!msg) break;  // closed and drained
    }
    const std::uint64_t t0 = NowNanos();
    if (msg) Route(*msg);
    // Drain whatever else is queued before doing ordering work: batches
    // amortize the head comparisons. Over high water the batch drain
    // pauses (the one Pop per iteration still guarantees progress), so
    // backlog shows up as inbox depth and NOP producers throttle.
    while (options_.queue_high_water == 0 ||
           QueuedTransactions() < options_.queue_high_water) {
      auto more = inbox_->TryPop();
      if (!more) break;
      Route(*more);
    }
    NoteQueueDepth();
    ProcessReady();
    stats_.busy_ns.fetch_add(NowNanos() - t0, std::memory_order_relaxed);
  }
}

void Shard::ProcessUntilIdle() {
  const std::uint64_t t0 = NowNanos();
  do {
    while (auto msg = inbox_->TryPop()) Route(*msg);
    NoteQueueDepth();
    ProcessReady();
  } while (HasRunnableProgramWork());
  stats_.busy_ns.fetch_add(NowNanos() - t0, std::memory_order_relaxed);
}

void Shard::Route(const BusMessage& msg) {
  switch (msg.payload_tag) {
    case kMsgTx: {
      auto tx = std::static_pointer_cast<TxMessage>(msg.payload);
      const GatekeeperId gk = tx->ts.gatekeeper;
      if (gk >= gk_queues_.size()) return;
      // FIFO channel check (paper §4.2): sequence numbers from one
      // gatekeeper must arrive in order.
      if (gk < last_channel_seq_.size()) {
        if (msg.channel_seq <= last_channel_seq_[gk] &&
            last_channel_seq_[gk] != 0) {
          stats_.seq_violations.fetch_add(1, std::memory_order_relaxed);
        }
        last_channel_seq_[gk] = msg.channel_seq;
      }
      QueueEntry e;
      e.ts = tx->ts;
      e.ops = std::move(tx->ops);
      e.is_nop = e.ops.empty();
      e.arrival = arrival_counter_++;
      gk_queues_[gk].push_back(std::move(e));
      break;
    }
    case kMsgNop: {
      auto nop = std::static_pointer_cast<NopMessage>(msg.payload);
      const GatekeeperId gk = nop->ts.gatekeeper;
      if (gk >= gk_queues_.size()) return;
      QueueEntry e;
      e.ts = nop->ts;
      e.is_nop = true;
      e.arrival = arrival_counter_++;
      gk_queues_[gk].push_back(std::move(e));
      break;
    }
    case kMsgWaveHops: {
      auto batch = std::static_pointer_cast<WaveHopBatchMessage>(msg.payload);
      OnHopBatch(*batch);
      break;
    }
    case kMsgEndProgram: {
      auto end = std::static_pointer_cast<EndProgramMessage>(msg.payload);
      FinishProgram(end->program_id);
      break;
    }
    case kMsgGc: {
      auto gc = std::static_pointer_cast<GcMessage>(msg.payload);
      RunGc(gc->watermark);
      break;
    }
    case kMsgMetricsRequest: {
      auto req = std::static_pointer_cast<MetricsRequestMessage>(msg.payload);
      OnMetricsRequest(*req);
      break;
    }
    case kMsgShardReset: {
      // A peer process died and is being replaced: forget all wire
      // sequence state toward it. Handled on the event loop, so the
      // reset is serialized with this shard's own sends to the peer --
      // anything sent after the ack uses fresh sequence numbers.
      auto reset = std::static_pointer_cast<ShardResetMessage>(msg.payload);
      options_.bus->ResetPeer(reset->target);
      auto ack = std::make_shared<ShardResetAckMessage>();
      ack->shard = options_.id;
      ack->token = reset->token;
      (void)options_.bus->Send(endpoint_, reset->reply_to, kMsgShardResetAck,
                               std::move(ack), /*never_block=*/true);
      break;
    }
    case kMsgPartitionReplay: {
      // Recovery replay: install vertices of this shard's partition read
      // back from the durable store. The loop thread owns graph_, so
      // direct installation is safe; duplicates (a slice that landed
      // before the crash) overwrite with identical state.
      auto replay =
          std::static_pointer_cast<PartitionReplayMessage>(msg.payload);
      for (auto& [node, blob] : replay->vertices) {
        auto decoded = GraphStore::DeserializeNode(blob);
        if (!decoded.ok()) {
          stats_.op_apply_errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        graph_.InstallNode(std::move(decoded).value());
      }
      break;
    }
    case kMsgStop:
      inbox_->Close();
      break;
    default:
      break;
  }
}

bool Shard::AllQueuesNonEmpty() const {
  for (const auto& q : gk_queues_) {
    if (q.empty()) return false;
  }
  return true;
}

std::size_t Shard::PickMinHead() {
  std::size_t best = 0;
  for (std::size_t i = 1; i < gk_queues_.size(); ++i) {
    const QueueEntry& cand = gk_queues_[i].front();
    const QueueEntry& cur = gk_queues_[best].front();
    // Vector clocks only -- concurrent heads execute in arrival order
    // (paper §4.1: "the oracle will prefer arrival order") WITHOUT asking
    // the oracle to commit that order. Concurrent transactions can never
    // write the same vertex (the gatekeeper's last-update check forces
    // conflicting writes onto comparable timestamps), so their mutual
    // execution order is immaterial, and committing an oracle order per
    // concurrent head pair made a queue backlog O(n^2) oracle work: a NOP
    // flood could then outrun the drain rate for minutes (ordering
    // requests slow with DAG size). Program visibility still resolves
    // write-vs-read pairs through the oracle (VisibilityOrderFn).
    ClockOrder o = cur.ts.Compare(cand.ts);  // order of cur vs cand
    if (o == ClockOrder::kConcurrent) {
      o = cand.arrival < cur.arrival ? ClockOrder::kAfter
                                     : ClockOrder::kBefore;
    }
    if (o == ClockOrder::kAfter) best = i;
  }
  return best;
}

void Shard::ApplyEntry(const QueueEntry& entry) {
  if (entry.is_nop) {
    stats_.nops_processed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t t0 = NowNanos();
  for (const GraphOp& op : entry.ops) {
    const Status st = ApplyGraphOpToStore(&graph_, op, entry.ts);
    if (!st.ok()) {
      // Post-recovery duplicate application is possible and benign (the
      // backing store already validated the transaction); count it.
      stats_.op_apply_errors.fetch_add(1, std::memory_order_relaxed);
    }
  }
  stats_.txs_applied.fetch_add(1, std::memory_order_relaxed);
  stats_.op_work_ns.fetch_add(NowNanos() - t0, std::memory_order_relaxed);
}

bool Shard::WaveEligible(const RefinableTimestamp& prog_ts) {
  // Delay rule (paper §4.1): every queue head must be ordered strictly
  // after the program; concurrent heads are resolved transaction-first, so
  // an unresolved head forces the program to wait for that transaction.
  // All heads go through ONE batched resolution: with a remote oracle the
  // cache/clock misses share a single RPC round trip.
  std::vector<std::pair<RefinableTimestamp, RefinableTimestamp>> pairs;
  pairs.reserve(gk_queues_.size());
  for (auto& q : gk_queues_) pairs.emplace_back(q.front().ts, prog_ts);
  auto orders = resolver_.ResolveBatch(pairs, OrderPreference::kPreferFirst);
  if (!orders.ok()) {
    // Oracle unreachable (failover in progress): park the wave. No order
    // was established, so waiting is always sound, and eligibility is
    // re-checked every drain cycle -- the program resumes once the
    // respawned service answers again.
    stats_.oracle_stalls.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  for (const ClockOrder o : *orders) {
    if (o != ClockOrder::kAfter) return false;  // head <= prog: wait
  }
  return true;
}

void Shard::ProcessReady() {
  // Contexts whose eligibility already latched can run without queue
  // heads: the snapshot guarantee was established when they latched.
  RunEligiblePrograms();
  while (AllQueuesNonEmpty()) {
    // Promote waiting programs first: their timestamps precede every
    // queue head, so they read a snapshot no queued transaction can
    // still change.
    bool promoted = false;
    for (auto& [pid, ctx] : contexts_) {
      if (ctx.eligible || ctx.pending.empty()) continue;
      if (WaveEligible(ctx.ts)) {
        ctx.eligible = true;
        promoted = true;
      } else {
        stats_.wave_delays.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (promoted) RunEligiblePrograms();
    const std::size_t q = PickMinHead();
    ApplyEntry(gk_queues_[q].front());
    gk_queues_[q].pop_front();
  }
  RunEligiblePrograms();
}

OrderFn Shard::VisibilityOrderFn() {
  return [this](const RefinableTimestamp& write_ts,
                const RefinableTimestamp& read_ts) {
    // Writes win ties: a transaction concurrent with a node program is
    // ordered before it unless the oracle already knows otherwise
    // (paper §4.1 -- programs never miss committed writes).
    auto decided = resolver_.TryResolve(write_ts, read_ts,
                                        OrderPreference::kPreferFirst);
    if (decided.ok()) return *decided;
    // Oracle unreachable (failover in progress). Answer with the
    // write-wins order the oracle would have established, but flag the
    // stall so RunProgramCycle aborts this program with a retriable
    // Unavailable -- a fallback answer must never back an acknowledged
    // result. Nothing leaks: the resolver caches only authoritative
    // decisions, and the per-program order memo dies with the aborted
    // context.
    stats_.oracle_stalls.fetch_add(1, std::memory_order_relaxed);
    oracle_stall_ = true;
    return ClockOrder::kBefore;
  };
}

void Shard::OnHopBatch(WaveHopBatchMessage& batch) {
  if (finished_.count(batch.program_id)) return;  // late batch post-abort
  auto it = contexts_.find(batch.program_id);
  if (it == contexts_.end()) {
    // First contact: intern everything per-hop execution needs -- the
    // registry lookup, the timestamp, the visibility order function --
    // once per (shard, program) instead of once per wave.
    ProgramContext ctx;
    ctx.ts = batch.ts;
    ctx.name = batch.program_name;
    ctx.program = options_.programs
                      ? options_.programs->Find(batch.program_name)
                      : nullptr;
    // Visibility order memoized per write timestamp: the read side is
    // pinned to this program's ts, resolutions are committed (stable)
    // once made, and the context only ever runs on this shard's loop
    // thread -- so repeat version checks (every edge scan re-compares
    // the same created/deleted stamps) skip the resolver mutex
    // entirely. This was the dominant per-vertex cost of the old
    // per-wave path, which rebuilt the uncached fn every wave.
    ctx.order = [this, cache = std::make_shared<
                           std::unordered_map<EventId, ClockOrder>>(),
                 base = VisibilityOrderFn()](
                    const RefinableTimestamp& write_ts,
                    const RefinableTimestamp& read_ts) {
      auto [it, fresh] =
          cache->try_emplace(write_ts.event_id(), ClockOrder::kConcurrent);
      if (fresh) it->second = base(write_ts, read_ts);
      return it->second;
    };
    ctx.coordinator = batch.coordinator;
    ctx.states = &program_state_[batch.program_id];
    ctx.visit_once = batch.visit_once;
    it = contexts_.emplace(batch.program_id, std::move(ctx)).first;
    stats_.contexts_installed.fetch_add(1, std::memory_order_relaxed);
    live_contexts_.store(contexts_.size(), std::memory_order_relaxed);
    live_state_tables_.store(program_state_.size(),
                             std::memory_order_relaxed);
  }
  ProgramContext& ctx = it->second;
  for (NextHop& hop : batch.hops) {
    if (!QueueLocalHop(ctx, std::move(hop))) {
      // The sender counted this hop spawned; consume it on the spot so
      // the coordinator's credit count still balances.
      ctx.coalesced_credit++;
    }
  }
  // A batch can coalesce/prune away entirely; with nothing pending no
  // cycle will run here, so the consumption credit must flow back now or
  // the coordinator never reaches quiescence. (Credit with pending
  // company rides the next cycle's delta instead.)
  if (ctx.coalesced_credit > 0 && ctx.pending.empty()) {
    auto acc = std::make_shared<WaveAccountingMessage>();
    acc->program_id = batch.program_id;
    acc->shard = options_.id;
    acc->hops_consumed = ctx.coalesced_credit;
    ctx.coalesced_credit = 0;
    (void)options_.bus->Send(endpoint_, ctx.coordinator, kMsgWaveAccounting,
                             std::move(acc), /*never_block=*/true);
  }
}

bool Shard::QueueLocalHop(ProgramContext& ctx, NextHop hop) {
  // Visited-vertex pruning (VisitOnce programs): a hop to a vertex whose
  // program state is already set -- or that already has a hop pending,
  // whatever its params -- can never do anything; drop it here instead
  // of re-dispatching it. This is where BFS-style fan-in stops costing a
  // full execution per in-edge.
  if (ctx.visit_once) {
    auto sit = ctx.states->find(hop.node);
    if ((sit != ctx.states->end() && sit->second.has_value()) ||
        ctx.pending_keys.count(hop.node) != 0) {
      stats_.hops_pruned.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  auto& entries = ctx.pending_keys[hop.node];
  const std::size_t h = std::hash<std::string>{}(hop.params);
  for (const auto& [queued_hash, queued_params] : entries) {
    // Full compare on hash match only: coalescing must never drop a
    // distinct hop.
    if (queued_hash == h && *queued_params == hop.params) {
      stats_.hops_coalesced.fetch_add(1, std::memory_order_relaxed);
      return false;  // exact duplicate: coalesce
    }
  }
  ctx.pending.push_back(std::move(hop));
  entries.emplace_back(h, &ctx.pending.back().params);
  return true;
}

bool Shard::HasRunnableProgramWork() const {
  for (const auto& [pid, ctx] : contexts_) {
    if (ctx.eligible && !ctx.pending.empty()) return true;
  }
  return false;
}

bool Shard::RunEligiblePrograms() {
  if (contexts_.empty()) return false;
  bool ran = false;
  // Collect ids first: RunProgramCycle sends accounting inline, and the
  // coordinator's handler may complete the program on this thread -- but
  // context teardown always arrives as an EndProgram message through the
  // inbox, so contexts_ itself never mutates under us. Still, keep the
  // iteration robust against future reentrancy.
  std::vector<ProgramId> runnable;
  for (auto& [pid, ctx] : contexts_) {
    if (ctx.eligible && !ctx.pending.empty()) runnable.push_back(pid);
  }
  for (ProgramId pid : runnable) {
    auto it = contexts_.find(pid);
    if (it == contexts_.end() || !it->second.eligible ||
        it->second.pending.empty()) {
      continue;
    }
    RunProgramCycle(pid, it->second);
    ran = true;
  }
  return ran;
}

std::size_t Shard::AdaptiveHopBudget() {
  const std::size_t max_hops =
      std::max<std::size_t>(1, options_.max_hops_per_cycle);
  const std::size_t high_water = options_.queue_high_water;
  if (high_water == 0) return max_hops;  // throttling disabled
  const std::size_t depth = inbox_->Size();
  if (depth == 0) return max_hops;
  // Linear scale-down with inbox depth, clamped to a 1/16th floor: a
  // half-full inbox halves the budget, a full (or over-high-water) one
  // pins it at the floor. Programs still make progress every cycle --
  // the floor is never zero -- but transactional backlog drains sooner.
  const std::size_t floor_hops = std::max<std::size_t>(1, max_hops / 16);
  if (depth >= high_water) {
    stats_.hop_budget_throttles.fetch_add(1, std::memory_order_relaxed);
    return floor_hops;
  }
  const std::size_t scaled = max_hops - (max_hops * depth) / high_water;
  if (scaled >= max_hops) return max_hops;
  stats_.hop_budget_throttles.fetch_add(1, std::memory_order_relaxed);
  return std::max(floor_hops, scaled);
}

void Shard::RunProgramCycle(ProgramId pid, ProgramContext& ctx) {
  const std::uint64_t t0 = NowNanos();
  auto acc = std::make_shared<WaveAccountingMessage>();
  acc->program_id = pid;
  acc->shard = options_.id;
  acc->cycles = 1;
  acc->hops_consumed = ctx.coalesced_credit;
  ctx.coalesced_credit = 0;

  auto& states = *ctx.states;
  std::vector<std::vector<NextHop>> remote(shard_endpoints_.size());
  const std::size_t max_hops = AdaptiveHopBudget();
  std::size_t executed = 0;

  // Armed by VisibilityOrderFn when the oracle cannot be reached: the
  // cycle stops early and the program aborts retriably below.
  oracle_stall_ = false;

  while (!ctx.pending.empty() && executed < max_hops && !oracle_stall_) {
    // Unindex the head BEFORE popping (the index points at the live
    // deque element) so a later identical hop is NOT coalesced -- only
    // pending duplicates are provably redundant. Identity compare: this
    // exact element, no hashing on the pop path.
    {
      const NextHop& head = ctx.pending.front();
      auto key_it = ctx.pending_keys.find(head.node);
      if (key_it != ctx.pending_keys.end()) {
        auto& list = key_it->second;
        for (auto pit = list.begin(); pit != list.end(); ++pit) {
          if (pit->second == &head.params) {
            list.erase(pit);
            break;
          }
        }
        if (list.empty()) ctx.pending_keys.erase(key_it);
      }
    }
    NextHop hop = std::move(ctx.pending.front());
    ctx.pending.pop_front();
    ++executed;
    acc->hops_consumed++;

    const Node* node = graph_.FindNode(hop.node);
    NodeView view(node, ctx.ts, ctx.order);
    std::any& state = states[hop.node];
    ProgramOutput out;
    if (ctx.program != nullptr) {
      ctx.program->Run(view, hop.params, &state, &out);
    }
    acc->vertices_visited++;
    if (out.return_value.has_value()) {
      acc->returns.emplace_back(hop.node, std::move(*out.return_value));
    }
    for (NextHop& next : out.next_hops) {
      auto owner = options_.locator != nullptr
                       ? options_.locator->Lookup(next.node)
                       : std::optional<ShardId>(options_.id);
      if (!owner.has_value()) continue;  // unknown vertex: drop
      if (*owner == options_.id) {
        // Same shard: extend the local worklist -- a traversal that
        // stays here completes in this cycle without any messages. A
        // coalesced or pruned local hop is simply never spawned.
        if (QueueLocalHop(ctx, std::move(next))) {
          acc->hops_spawned++;
        }
      } else if (*owner < remote.size()) {
        // VisitOnce programs forward each remote vertex at most once:
        // the first hop visits it, so every later one is a no-op that
        // need not cross the bus.
        if (ctx.visit_once && !ctx.forwarded.insert(next.node).second) {
          stats_.hops_pruned.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        remote[*owner].push_back(std::move(next));
        acc->hops_spawned++;
        stats_.hops_forwarded.fetch_add(1, std::memory_order_relaxed);
      }
      // else: owner beyond the endpoint table (shrunk redeployment): drop.
    }
  }

  std::uint64_t batches = 0;
  for (const auto& group : remote) {
    if (!group.empty()) ++batches;
  }
  acc->forwarded_batches = batches;
  stats_.waves_executed.fetch_add(1, std::memory_order_relaxed);
  stats_.hops_consumed.fetch_add(acc->hops_consumed,
                                 std::memory_order_relaxed);
  stats_.vertices_executed.fetch_add(acc->vertices_visited,
                                     std::memory_order_relaxed);
  stats_.hop_batches_sent.fetch_add(batches, std::memory_order_relaxed);
  stats_.op_work_ns.fetch_add(NowNanos() - t0, std::memory_order_relaxed);

  // Accounting goes out BEFORE the hop batches: the coordinator must
  // register the spawn credits before any peer can report consuming
  // them, or it could observe a spurious consumed == spawned + starts.
  // The coordinator is an inline-handler endpoint, so this Send runs the
  // merge synchronously on this thread.
  const EndpointId coordinator = ctx.coordinator;
  const RefinableTimestamp ts = ctx.ts;
  const std::string program_name = ctx.name;
  const bool visit_once = ctx.visit_once;
  (void)options_.bus->Send(endpoint_, coordinator, kMsgWaveAccounting,
                           std::move(acc), /*never_block=*/true);

  // NOTE: `ctx` may not be referenced past this point. The accounting
  // send above can complete the program inline (coordinator handler on
  // this thread); teardown arrives as an EndProgram inbox message, so
  // the context is still alive today -- but keep the forwarding loop
  // independent of it so that invariant is not load-bearing.
  Status forward_error = Status::Ok();
  for (std::size_t s = 0; s < remote.size(); ++s) {
    if (remote[s].empty()) continue;
    auto batch = std::make_shared<WaveHopBatchMessage>();
    batch->program_id = pid;
    batch->ts = ts;
    batch->program_name = program_name;
    batch->coordinator = coordinator;
    batch->visit_once = visit_once;
    batch->hops = std::move(remote[s]);
    // never_block: peer shards push into each other from their event
    // loops; blocking on a full peer inbox could deadlock the pair.
    const Status sent =
        options_.bus->Send(endpoint_, shard_endpoints_[s], kMsgWaveHops,
                           std::move(batch), /*never_block=*/true);
    if (!sent.ok()) forward_error = sent;
  }
  if (!forward_error.ok() || oracle_stall_) {
    // A peer shard is down (the spawn credits just reported can never be
    // consumed), or a hop read a version through an oracle-fallback
    // order (the result may be wrong): tell the coordinator to abort the
    // program. The client re-runs it -- same retriable contract as the
    // old frontier liveness check.
    auto err = std::make_shared<WaveAccountingMessage>();
    err->program_id = pid;
    err->shard = options_.id;
    err->error =
        !forward_error.ok()
            ? Status::Unavailable("peer shard is down; re-run the program (" +
                                  forward_error.ToString() + ")")
            : Status::Unavailable(
                  "timeline oracle unreachable during visibility "
                  "resolution (failover in progress?); re-run the program");
    (void)options_.bus->Send(endpoint_, coordinator, kMsgWaveAccounting,
                             std::move(err), /*never_block=*/true);
  }
}

void Shard::FinishProgram(ProgramId pid) {
  contexts_.erase(pid);
  program_state_.erase(pid);
  live_contexts_.store(contexts_.size(), std::memory_order_relaxed);
  live_state_tables_.store(program_state_.size(), std::memory_order_relaxed);
  if (finished_.insert(pid).second) {
    finished_order_.push_back(pid);
    while (finished_order_.size() > kMaxFinishedTombstones) {
      finished_.erase(finished_order_.front());
      finished_order_.pop_front();
    }
  }
}

void Shard::RunGc(const RefinableTimestamp& watermark) {
  // GC visibility is conservative: only vector-clock-certain "before" is
  // collected; concurrent pairs are kept. No oracle commitments are made.
  OrderFn conservative = [](const RefinableTimestamp& a,
                            const RefinableTimestamp& b) {
    const ClockOrder o = a.Compare(b);
    return o == ClockOrder::kConcurrent ? ClockOrder::kAfter : o;
  };
  graph_.CollectBefore(watermark, conservative);
  resolver_.TrimBefore(watermark.clock);
  // Shard-server processes: the oracle view (local oracle or client
  // replica) is ours alone, and this watermark message is the only way
  // the parent's GC reaches it. The durable collect already happened at
  // the service (the parent's CollectService), so trimming the local
  // view is all that is left.
  if (options_.gc_oracle) {
    OracleClient* client = options_.oracle_client != nullptr
                               ? options_.oracle_client
                               : owned_oracle_client_.get();
    client->CollectBefore(watermark.clock);
  }
  stats_.gc_rounds.fetch_add(1, std::memory_order_relaxed);
}

std::size_t Shard::QueuedTransactions() const {
  std::size_t total = 0;
  for (const auto& q : gk_queues_) total += q.size();
  return total;
}

}  // namespace weaver
