#include "shard/shard.h"

#include <cassert>

#include "common/clock.h"

namespace weaver {

Shard::Shard(Options options)
    : options_(std::move(options)),
      resolver_(options_.oracle),
      gk_queues_(options_.num_gatekeepers),
      last_channel_seq_(options_.num_gatekeepers + 64, 0) {
  assert(options_.bus != nullptr);
  assert(options_.oracle != nullptr);
  inbox_ = std::make_shared<BlockingQueue<BusMessage>>(options_.inbox_capacity);
  if (options_.reuse_endpoint != kNoEndpoint) {
    endpoint_ = options_.reuse_endpoint;
    options_.bus->ReattachInbox(endpoint_, inbox_);
  } else {
    endpoint_ = options_.bus->RegisterInbox(
        "shard" + std::to_string(options_.id), inbox_);
  }
}

Shard::~Shard() { Stop(); }

void Shard::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  loop_thread_ = std::thread([this] { Loop(); });
}

void Shard::Stop() {
  if (!running_.exchange(false)) {
    inbox_->Close();
    if (loop_thread_.joinable()) loop_thread_.join();
    return;
  }
  inbox_->Close();
  if (loop_thread_.joinable()) loop_thread_.join();
}

void Shard::Loop() {
  while (auto msg = inbox_->Pop()) {
    const std::uint64_t t0 = NowNanos();
    Route(*msg);
    // Drain whatever else is queued before doing ordering work: batches
    // amortize the head comparisons. Over high water the batch drain
    // pauses (the one Pop per iteration still guarantees progress), so
    // backlog shows up as inbox depth and NOP producers throttle.
    while (options_.queue_high_water == 0 ||
           QueuedTransactions() < options_.queue_high_water) {
      auto more = inbox_->TryPop();
      if (!more) break;
      Route(*more);
    }
    ProcessReady();
    stats_.busy_ns.fetch_add(NowNanos() - t0, std::memory_order_relaxed);
  }
}

void Shard::ProcessUntilIdle() {
  const std::uint64_t t0 = NowNanos();
  while (auto msg = inbox_->TryPop()) Route(*msg);
  ProcessReady();
  stats_.busy_ns.fetch_add(NowNanos() - t0, std::memory_order_relaxed);
}

void Shard::Route(const BusMessage& msg) {
  switch (msg.payload_tag) {
    case kMsgTx: {
      auto tx = std::static_pointer_cast<TxMessage>(msg.payload);
      const GatekeeperId gk = tx->ts.gatekeeper;
      if (gk >= gk_queues_.size()) return;
      // FIFO channel check (paper §4.2): sequence numbers from one
      // gatekeeper must arrive in order.
      if (gk < last_channel_seq_.size()) {
        if (msg.channel_seq <= last_channel_seq_[gk] &&
            last_channel_seq_[gk] != 0) {
          stats_.seq_violations.fetch_add(1, std::memory_order_relaxed);
        }
        last_channel_seq_[gk] = msg.channel_seq;
      }
      QueueEntry e;
      e.ts = tx->ts;
      e.ops = std::move(tx->ops);
      e.is_nop = e.ops.empty();
      e.arrival = arrival_counter_++;
      gk_queues_[gk].push_back(std::move(e));
      break;
    }
    case kMsgNop: {
      auto nop = std::static_pointer_cast<NopMessage>(msg.payload);
      const GatekeeperId gk = nop->ts.gatekeeper;
      if (gk >= gk_queues_.size()) return;
      QueueEntry e;
      e.ts = nop->ts;
      e.is_nop = true;
      e.arrival = arrival_counter_++;
      gk_queues_[gk].push_back(std::move(e));
      break;
    }
    case kMsgWave: {
      auto wave = std::static_pointer_cast<WaveMessage>(msg.payload);
      PendingWave p;
      p.wave = std::move(*wave);
      p.arrival = arrival_counter_++;
      pending_waves_.push_back(std::move(p));
      break;
    }
    case kMsgEndProgram: {
      auto end = std::static_pointer_cast<EndProgramMessage>(msg.payload);
      program_state_.erase(end->program_id);
      break;
    }
    case kMsgGc: {
      auto gc = std::static_pointer_cast<GcMessage>(msg.payload);
      RunGc(gc->watermark);
      break;
    }
    case kMsgStop:
      inbox_->Close();
      break;
    default:
      break;
  }
}

bool Shard::AllQueuesNonEmpty() const {
  for (const auto& q : gk_queues_) {
    if (q.empty()) return false;
  }
  return true;
}

std::size_t Shard::PickMinHead() {
  std::size_t best = 0;
  for (std::size_t i = 1; i < gk_queues_.size(); ++i) {
    const QueueEntry& cand = gk_queues_[i].front();
    const QueueEntry& cur = gk_queues_[best].front();
    // Vector clocks only -- concurrent heads execute in arrival order
    // (paper §4.1: "the oracle will prefer arrival order") WITHOUT asking
    // the oracle to commit that order. Concurrent transactions can never
    // write the same vertex (the gatekeeper's last-update check forces
    // conflicting writes onto comparable timestamps), so their mutual
    // execution order is immaterial, and committing an oracle order per
    // concurrent head pair made a queue backlog O(n^2) oracle work: a NOP
    // flood could then outrun the drain rate for minutes (ordering
    // requests slow with DAG size). Program visibility still resolves
    // write-vs-read pairs through the oracle (VisibilityOrderFn).
    ClockOrder o = cur.ts.Compare(cand.ts);  // order of cur vs cand
    if (o == ClockOrder::kConcurrent) {
      o = cand.arrival < cur.arrival ? ClockOrder::kAfter
                                     : ClockOrder::kBefore;
    }
    if (o == ClockOrder::kAfter) best = i;
  }
  return best;
}

void Shard::ApplyEntry(const QueueEntry& entry) {
  if (entry.is_nop) {
    stats_.nops_processed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t t0 = NowNanos();
  for (const GraphOp& op : entry.ops) {
    const Status st = ApplyGraphOpToStore(&graph_, op, entry.ts);
    if (!st.ok()) {
      // Post-recovery duplicate application is possible and benign (the
      // backing store already validated the transaction); count it.
      stats_.op_apply_errors.fetch_add(1, std::memory_order_relaxed);
    }
  }
  stats_.txs_applied.fetch_add(1, std::memory_order_relaxed);
  stats_.op_work_ns.fetch_add(NowNanos() - t0, std::memory_order_relaxed);
}

bool Shard::WaveEligible(const RefinableTimestamp& prog_ts) {
  // Delay rule (paper §4.1): every queue head must be ordered strictly
  // after the program; concurrent heads are resolved transaction-first, so
  // an unresolved head forces the program to wait for that transaction.
  for (auto& q : gk_queues_) {
    const QueueEntry& head = q.front();
    const ClockOrder o = resolver_.Resolve(head.ts, prog_ts,
                                           OrderPreference::kPreferFirst);
    if (o != ClockOrder::kAfter) return false;  // head <= prog: wait
  }
  return true;
}

void Shard::ProcessReady() {
  while (AllQueuesNonEmpty()) {
    // First give eligible node programs a chance: their timestamps precede
    // every queue head, so they read a snapshot no queued transaction can
    // still change.
    for (std::size_t i = 0; i < pending_waves_.size();) {
      if (WaveEligible(pending_waves_[i].wave.ts)) {
        WaveMessage wave = std::move(pending_waves_[i].wave);
        pending_waves_.erase(pending_waves_.begin() +
                             static_cast<std::ptrdiff_t>(i));
        ExecuteWave(wave);
      } else {
        stats_.wave_delays.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    }
    const std::size_t q = PickMinHead();
    ApplyEntry(gk_queues_[q].front());
    gk_queues_[q].pop_front();
  }
}

OrderFn Shard::VisibilityOrderFn() {
  return [this](const RefinableTimestamp& write_ts,
                const RefinableTimestamp& read_ts) {
    // Writes win ties: a transaction concurrent with a node program is
    // ordered before it unless the oracle already knows otherwise
    // (paper §4.1 -- programs never miss committed writes).
    return resolver_.Resolve(write_ts, read_ts,
                             OrderPreference::kPreferFirst);
  };
}

void Shard::ExecuteWave(const WaveMessage& wave) {
  const std::uint64_t t0 = NowNanos();
  const NodeProgram* program =
      options_.programs ? options_.programs->Find(wave.program_name)
                        : nullptr;
  WaveResult result;
  result.shard = options_.id;
  if (program == nullptr) {
    if (wave.sink) wave.sink(std::move(result));
    return;
  }
  const OrderFn order = VisibilityOrderFn();
  auto& states = program_state_[wave.program_id];
  for (const NextHop& start : wave.starts) {
    const Node* node = graph_.FindNode(start.node);
    NodeView view(node, wave.ts, order);
    std::any& state = states[start.node];
    ProgramOutput out;
    program->Run(view, start.params, &state, &out);
    for (NextHop& hop : out.next_hops) {
      result.next_hops.push_back(std::move(hop));
    }
    if (out.return_value.has_value()) {
      result.returns.emplace_back(start.node, std::move(*out.return_value));
    }
    result.vertices_visited++;
  }
  stats_.waves_executed.fetch_add(1, std::memory_order_relaxed);
  stats_.vertices_executed.fetch_add(result.vertices_visited,
                                     std::memory_order_relaxed);
  stats_.op_work_ns.fetch_add(NowNanos() - t0, std::memory_order_relaxed);
  if (wave.sink) wave.sink(std::move(result));
}

void Shard::RunGc(const RefinableTimestamp& watermark) {
  // GC visibility is conservative: only vector-clock-certain "before" is
  // collected; concurrent pairs are kept. No oracle commitments are made.
  OrderFn conservative = [](const RefinableTimestamp& a,
                            const RefinableTimestamp& b) {
    const ClockOrder o = a.Compare(b);
    return o == ClockOrder::kConcurrent ? ClockOrder::kAfter : o;
  };
  graph_.CollectBefore(watermark, conservative);
  resolver_.TrimBefore(watermark.clock);
  stats_.gc_rounds.fetch_add(1, std::memory_order_relaxed);
}

std::size_t Shard::QueuedTransactions() const {
  std::size_t total = 0;
  for (const auto& q : gk_queues_) total += q.size();
  return total;
}

}  // namespace weaver
