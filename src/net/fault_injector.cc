#include "net/fault_injector.h"

#include <signal.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

namespace weaver {

FaultInjectingTransport::FaultInjectingTransport(
    std::shared_ptr<Transport> inner, FaultPlan plan)
    : inner_(std::move(inner)), plan_(plan) {}

void FaultInjectingTransport::CountFrame() {
  const std::uint64_t seen =
      frames_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (plan_.kind == FaultPlan::Kind::kNone) return;
  if (seen <= plan_.after_frames) return;
  if (plan_.kind == FaultPlan::Kind::kDelay) {
    // Delay applies to every frame from the trigger on; the one-shot
    // latch is only for the destructive kinds.
    fired_.store(true, std::memory_order_relaxed);
    return;
  }
  bool expected = false;
  if (!fired_.compare_exchange_strong(expected, true,
                                      std::memory_order_relaxed)) {
    return;
  }
  Fire();
}

void FaultInjectingTransport::Fire() {
  switch (plan_.kind) {
    case FaultPlan::Kind::kKillPid:
      std::fprintf(stderr,
                   "weaver: fault injector: SIGKILL pid %d at frame %llu\n",
                   static_cast<int>(plan_.pid),
                   static_cast<unsigned long long>(frames()));
      if (plan_.pid > 0) ::kill(plan_.pid, SIGKILL);
      break;
    case FaultPlan::Kind::kDropLink:
      std::fprintf(stderr,
                   "weaver: fault injector: dropping link at frame %llu\n",
                   static_cast<unsigned long long>(frames()));
      inner_->Stop();
      break;
    case FaultPlan::Kind::kNone:
    case FaultPlan::Kind::kDelay:
      break;
  }
}

Status FaultInjectingTransport::SendBytes(std::string_view bytes,
                                          bool never_block) {
  CountFrame();
  if (plan_.kind == FaultPlan::Kind::kDelay &&
      fired_.load(std::memory_order_relaxed) && plan_.delay_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(plan_.delay_micros));
  }
  return inner_->SendBytes(bytes, never_block);
}

void FaultInjectingTransport::WaitWritable() { inner_->WaitWritable(); }

void FaultInjectingTransport::StartReceiver(
    std::function<void(const char* data, std::size_t n)> on_bytes) {
  // Receive-direction traffic counts toward the trigger too: a shard that
  // mostly replies (accounting, metrics) can still be killed at a
  // deterministic point in ITS stream. Chunks are not frames, but the
  // chunk count is just as deterministic for a given workload on a FIFO
  // socket -- good enough for a trigger, and it avoids re-parsing.
  inner_->StartReceiver(
      [this, on_bytes = std::move(on_bytes)](const char* data, std::size_t n) {
        if (data != nullptr) CountFrame();
        on_bytes(data, n);
      });
}

void FaultInjectingTransport::Stop() { inner_->Stop(); }

bool FaultInjectingTransport::closed() const { return inner_->closed(); }

}  // namespace weaver
