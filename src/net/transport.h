// Transport: the pluggable byte-moving layer under the MessageBus
// (docs/transport.md).
//
// A Transport carries opaque, already-framed byte strings between two
// processes with the only property the protocol needs from a link:
// reliable FIFO delivery. The bus encodes messages to remote endpoints
// into wire frames (net/wire.h) and hands them to the endpoint's
// transport; a WireLink (net/wire_link.h) on the receiving side parses
// the stream back into frames and delivers them into the local bus with
// the sender's per-channel sequence numbers intact.
//
// SocketTransport is the real implementation: a connected stream socket
// -- a socketpair() inherited across fork() (the multi-process shard
// harness, src/coord/serverd.h), or a loopback TCP connection. The
// in-process delivery path never touches a Transport at all: local
// endpoints keep the zero-copy shared_ptr fast path and skip encoding.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "common/annotations.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"

namespace weaver {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one frame's bytes. Thread-safe; concurrent frames are written
  /// atomically (never interleaved) and the call order of any one thread
  /// is the delivery order (FIFO link). May block for flow control --
  /// unless `never_block` is set, which carries the bus's ForcePush
  /// contract onto the wire: event-loop actors (shards forwarding hops,
  /// links hub-routing them) must never wedge on a congested link, or
  /// two full peers can deadlock against each other exactly as two full
  /// inboxes could (common/queue.h). Never-block traffic is small and
  /// self-limiting, so the overshoot is bounded in practice.
  /// Unavailable once the peer is gone or Stop() ran.
  virtual Status SendBytes(std::string_view bytes,
                           bool never_block = false) = 0;

  /// Blocks until the link can accept more flow-controlled traffic (or
  /// it closed). Callers that must serialize sends under their own lock
  /// (the bus's per-channel mutex) wait HERE first, then enqueue with
  /// never_block -- otherwise a blocking sender parked inside SendBytes
  /// would hold the channel lock against a never_block sender on the
  /// same channel, defeating the contract. Default: no flow control.
  virtual void WaitWritable() {}

  /// Starts the receive thread; `on_bytes` is invoked from it with raw
  /// chunks at arbitrary boundaries until EOF or Stop(), then exactly
  /// once more with (nullptr, 0) to signal the stream ended. Call at
  /// most once.
  virtual void StartReceiver(
      std::function<void(const char* data, std::size_t n)> on_bytes) = 0;

  /// Shuts the link down: unblocks the receiver (which then exits) and
  /// fails subsequent sends. Idempotent.
  virtual void Stop() = 0;

  /// True once the link stopped or the peer disconnected.
  virtual bool closed() const = 0;
};

/// Stream-socket transport (socketpair or loopback TCP).
class SocketTransport final : public Transport {
 public:
  /// Wraps an already-connected stream socket fd; takes ownership.
  static std::unique_ptr<SocketTransport> Adopt(int fd);

  /// A connected AF_UNIX socketpair: two linked transports in one
  /// process (tests), or the parent/child ends of a fork (the
  /// multi-process harness creates the pair, forks, and each side adopts
  /// its fd).
  static Result<std::pair<std::unique_ptr<SocketTransport>,
                          std::unique_ptr<SocketTransport>>>
  CreatePair();

  /// Raw fds of a connected socketpair, for callers that fork before
  /// constructing any transport (threads do not survive fork).
  static Result<std::pair<int, int>> CreateSocketPairFds();

  /// Loopback TCP: a listener on 127.0.0.1 (port 0 picks a free port;
  /// query with ListenPort), its blocking accept, and the client side.
  static Result<int> ListenLoopback(std::uint16_t port);
  static Result<std::uint16_t> ListenPort(int listen_fd);
  static Result<std::unique_ptr<SocketTransport>> AcceptOne(int listen_fd);
  static Result<std::unique_ptr<SocketTransport>> ConnectLoopback(
      std::uint16_t port);

  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Enqueues the frame onto the outbound queue drained by a dedicated
  /// writer thread (socket writes never run on a sender's thread, so a
  /// full kernel buffer cannot wedge an event loop). Blocking senders
  /// wait while the queue is over kSendQueueHighWater bytes -- the flow
  /// control that paces bulk producers to the link; never_block senders
  /// skip the wait (ForcePush on the wire).
  Status SendBytes(std::string_view bytes, bool never_block = false) override;
  void WaitWritable() override;
  void StartReceiver(
      std::function<void(const char* data, std::size_t n)> on_bytes) override;
  void Stop() override;
  bool closed() const override { return closed_.load(); }

  int fd() const { return fd_; }

  /// Outbound-queue soft bound, in bytes.
  static constexpr std::size_t kSendQueueHighWater = 4u << 20;

 private:
  explicit SocketTransport(int fd) : fd_(fd) {}

  void WriterLoop();

  int fd_;
  std::thread receiver_;
  std::atomic<bool> closed_{false};

  /// Outbound frame queue + its writer thread (started lazily on the
  /// first send, under send_mu_; joined by the destructor, which runs
  /// after every sender is gone).
  Mutex send_mu_;
  std::condition_variable send_cv_;       // writer wakeup + space waiters
  std::deque<std::string> send_queue_ GUARDED_BY(send_mu_);
  std::size_t send_queue_bytes_ GUARDED_BY(send_mu_) = 0;
  bool writer_failed_ GUARDED_BY(send_mu_) = false;
  std::thread writer_ GUARDED_BY(send_mu_);
};

}  // namespace weaver
